package tsgraph_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/experiments"
	"tsgraph/internal/obs"
)

// TestObservabilityEndToEnd exercises the whole obs pipeline the way tsbench
// wires it: a traced in-process run feeds the recorder samples, a loopback
// distributed run feeds the per-peer wire counters, and the HTTP endpoint
// serves a Prometheus scrape plus a loadable Chrome trace of it all.
func TestObservabilityEndToEnd(t *testing.T) {
	road, _ := benchDatasets2(t)

	tracer := obs.NewTracer(0)
	tracer.Enable()
	core.SetDefaultTracer(tracer)
	defer core.SetDefaultTracer(nil)
	reg := obs.NewRegistry(tracer)
	experiments.OnRecorder = reg.ObserveRecorder
	defer func() { experiments.OnRecorder = nil }()

	cfg := bsp.Config{CoresPerHost: 2}
	if _, _, err := experiments.RunAlgo(road, experiments.AlgoTDSP, 3, cfg, 1); err != nil {
		t.Fatal(err)
	}
	res, err := experiments.DistributedSmoke(road, 2, 4, cfg, 1,
		experiments.DistributedSmokeOptions{OnNode: func(n *cluster.Node) { reg.Register(n) }})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if len(rows) != 2 {
		t.Fatalf("distributed smoke returned %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		var frames int64
		for _, ws := range row.Wire {
			frames += ws.FramesSent
		}
		if frames == 0 {
			t.Fatalf("rank %d sent no frames over the mesh", row.Rank)
		}
	}

	srv := httptest.NewServer(obs.NewHandler(reg))
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	scrape := get("/metrics")
	for _, family := range []string{
		"tsgraph_supersteps_total",
		"tsgraph_load_overlap_seconds_total",
		"tsgraph_compute_skew_ratio",
		"tsgraph_wire_frames_sent_total{rank=",
		"tsgraph_wire_bytes_recv_total{rank=",
		"tsgraph_trace_spans_total",
	} {
		if !strings.Contains(scrape, family) {
			t.Fatalf("/metrics scrape missing %q:\n%s", family, scrape)
		}
	}

	trace := get("/debug/trace")
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &parsed); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("/debug/trace has no events")
	}
	if !strings.Contains(trace, `"compute-phase"`) || !strings.Contains(trace, `"barrier"`) {
		t.Fatal("/debug/trace missing superstep phase lanes")
	}

	if rep := tracer.Skew(); rep.Supersteps == 0 {
		t.Fatal("skew report saw no supersteps")
	}
}

// benchDatasets2 reuses the bench fixture cache from a test context.
func benchDatasets2(t *testing.T) (*experiments.Dataset, *experiments.Dataset) {
	t.Helper()
	benchOnce.Do(func() {
		road, sw, err := experiments.BuildDatasets(experiments.Small)
		if err != nil {
			panic(err)
		}
		benchRoad, benchSW = road, sw
	})
	return benchRoad, benchSW
}
