package cluster

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// meshWith is mesh with a per-rank Config hook, for tests that need
// tracers or watchdogs attached to individual nodes.
func meshWith(tb testing.TB, n int, owner []int32, mutate func(rank int, cfg *Config)) []*Node {
	tb.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := Config{Rank: i, Addrs: addrs, Listener: listeners[i], Owner: owner}
		if mutate != nil {
			mutate(i, &cfg)
		}
		node, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		nodes[i] = node
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			errs[i] = node.Start()
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("node %d start: %v", i, err)
		}
	}
	tb.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

// TestGatherTracesMergesFourRankMesh is the tracing acceptance path: a
// 4-rank loopback mesh runs distributed TDSP with a tracer per node, rank
// 0 gathers every shard, and the merged trace must validate — one process
// row per rank, monotonic aligned timestamps, and every receiver exchange
// span resolvable to its sender span.
func TestGatherTracesMergesFourRankMesh(t *testing.T) {
	const k = 4
	f := newDistFixture(t, k)
	tracers := make([]*obs.Tracer, k)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		tracers[rank] = obs.NewTracer(0)
		tracers[rank].Enable()
		cfg.Tracer = tracers[rank]
	})

	total := subgraph.TotalSubgraphs(f.parts)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			prog := algorithms.NewTDSP(local, 0, 20, gen.AttrLatency)
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			_, errs[r] = core.RunWithEngine(&core.Job{
				Template: f.tmpl, Parts: local,
				Source:  core.MemorySource{C: f.coll},
				Program: prog, Pattern: core.SequentiallyDependent,
				Remote: nodes[r], Coordinator: nodes[r],
				GlobalSubgraphs: total,
				Tracer:          tracers[r],
			}, engine)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}

	// Non-zero ranks ship their shards, then rank 0 collects all four.
	for r := 1; r < k; r++ {
		if _, err := nodes[r].GatherTraces(5 * time.Second); err != nil {
			t.Fatalf("rank %d ship: %v", r, err)
		}
	}
	shards, err := nodes[0].GatherTraces(5 * time.Second)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if len(shards) != k {
		t.Fatalf("gathered %d shards, want %d", len(shards), k)
	}
	m := obs.MergeTraces(shards)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if len(m.Ranks) != k {
		t.Fatalf("merged ranks = %v", m.Ranks)
	}
	sends, recvs := 0, 0
	prev := int64(-1)
	for _, sp := range m.Spans {
		if sp.Start < prev {
			t.Fatalf("aligned spans not monotonic: %d after %d", sp.Start, prev)
		}
		prev = sp.Start
		switch sp.Kind {
		case obs.SpanWireSend:
			sends++
		case obs.SpanWireRecv:
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("no cross-rank wire spans recorded (send %d, recv %d)", sends, recvs)
	}

	// The Chrome export must carry one process row per rank.
	var sb strings.Builder
	if err := m.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			procs[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"rank 0 driver", "rank 1 driver", "rank 2 driver", "rank 3 driver"} {
		if !procs[want] {
			t.Fatalf("missing process row %q (have %v)", want, procs)
		}
	}

	// Handshake clock probes must have produced an offset estimate (and an
	// RTT-bounded one: offsets across loopback are sub-second).
	offs := nodes[0].ClockOffsets()
	if len(offs) != k {
		t.Fatalf("ClockOffsets len = %d, want %d", len(offs), k)
	}
	for r := 1; r < k; r++ {
		if d := offs[r]; d < -time.Second || d > time.Second {
			t.Fatalf("implausible loopback offset to rank %d: %v", r, d)
		}
	}
	if nodes[0].OffsetToRank0() != 0 {
		t.Fatal("rank 0 must be its own clock reference")
	}
}

// stallOnce keeps subgraphs active for limit supersteps and injects one
// long sleep at a chosen superstep — the stall the watchdog must catch.
type stallOnce struct {
	at    int
	delay time.Duration
	limit int
	once  sync.Once
}

func (p *stallOnce) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if timestep == 0 && superstep == p.at {
		p.once.Do(func() { time.Sleep(p.delay) })
	}
	if superstep >= p.limit {
		ctx.VoteToHalt()
	}
}

// TestClusterWatchdogNamesStalledRank attaches a watchdog to rank 0's
// barrier and injects a 10x stall on rank 1: exactly one structured
// warning must fire, naming rank 1.
func TestClusterWatchdogNamesStalledRank(t *testing.T) {
	const k = 2
	f := newDistFixture(t, k)
	tracer := obs.NewTracer(0)
	tracer.Enable()
	log := &strings.Builder{}
	var logMu sync.Mutex
	var wd *obs.Watchdog
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		if rank == 0 {
			wd = obs.NewWatchdog(obs.WatchdogConfig{
				Parties: k,
				MinWait: 50 * time.Millisecond,
				Poll:    5 * time.Millisecond,
				Tracer:  tracer,
				Log:     lockedWriter{&logMu, log},
				Describe: func(p int) string {
					return "rank 1 suspect" // only party 1 can stall here
				},
			})
			cfg.Watchdog = wd
		}
	})
	defer wd.Close()

	total := subgraph.TotalSubgraphs(f.parts)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			prog := &stallOnce{limit: 6}
			if r == 1 {
				prog.at = 4
				prog.delay = 500 * time.Millisecond // 10x the 50ms floor
			}
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			_, errs[r] = core.RunWithEngine(&core.Job{
				Template: f.tmpl, Parts: local,
				Source:  core.MemorySource{C: f.coll},
				Program: prog, Pattern: core.SequentiallyDependent,
				Remote: nodes[r], Coordinator: nodes[r],
				GlobalSubgraphs: total,
			}, engine)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}

	warns := wd.Warnings()
	if len(warns) != 1 {
		t.Fatalf("got %d warnings, want exactly 1: %+v", len(warns), warns)
	}
	if warns[0].Party != 1 {
		t.Fatalf("warning blamed party %d, want rank 1: %+v", warns[0].Party, warns[0])
	}
	if warns[0].Step != 4 || warns[0].TS != 0 {
		t.Fatalf("warning at t%d s%d, want t0 s4", warns[0].TS, warns[0].Step)
	}
	logMu.Lock()
	line := log.String()
	logMu.Unlock()
	if !strings.Contains(line, "rank 1 suspect") {
		t.Fatalf("stderr report does not name the suspect: %q", line)
	}
	stalls := 0
	for _, sp := range tracer.Spans() {
		if sp.Kind == obs.SpanStall {
			stalls++
			if sp.Part != 1 {
				t.Fatalf("stall span blames partition %d, want rank 1", sp.Part)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("recorded %d stall spans, want 1", stalls)
	}
}

// lockedWriter serializes watchdog log writes against test reads.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
