package cluster

import (
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// PeerWireStats snapshots one peer link's wire counters: traffic this node
// sent to the peer (with the cumulative flush latency — time spent encoding
// and writing frames, including send-lock contention) and traffic received
// from it. Flush latency is the distributed analogue of the engine's
// simulated flush phase: it is where cross-host "partition overhead"
// actually materializes.
type PeerWireStats struct {
	Peer       int
	FramesSent int64
	BytesSent  int64
	FlushTime  time.Duration
	FramesRecv int64
	BytesRecv  int64
}

// countingWriter counts bytes written through it (the outgoing side of a
// peer connection, counted under the peerConn send lock).
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// countingReader counts bytes read through it (the incoming side; wrapped
// before the gob decoder so handshake and frame bytes are both counted).
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// WireStats returns a per-rank snapshot of the node's wire counters. Entry
// r covers the link to/from rank r; the self entry is zero.
func (n *Node) WireStats() []PeerWireStats {
	out := make([]PeerWireStats, len(n.cfg.Addrs))
	for r := range out {
		out[r].Peer = r
		if pc := n.peers[r]; pc != nil {
			out[r].FramesSent = pc.framesSent.Load()
			out[r].BytesSent = pc.bytesSent.Load()
			out[r].FlushTime = time.Duration(pc.flushNanos.Load())
		}
		out[r].FramesRecv = n.recvFrames[r].Load()
		if cr := n.recvReaders[r].Load(); cr != nil {
			out[r].BytesRecv = cr.n.Load()
		}
	}
	return out
}

// CollectObs implements obs.Collector, exporting the per-peer wire counters
// for /metrics scrapes. The self rank is skipped (no link to count). Samples
// carry both a rank (this node) and peer label so several in-process nodes
// can share one registry, as the loopback smoke experiment does.
func (n *Node) CollectObs(emit func(obs.Sample)) {
	rank := strconv.Itoa(n.cfg.Rank)
	for _, ws := range n.WireStats() {
		if ws.Peer == n.cfg.Rank {
			continue
		}
		labels := []obs.Label{{Key: "rank", Value: rank}, {Key: "peer", Value: strconv.Itoa(ws.Peer)}}
		emit(obs.Sample{Name: "tsgraph_wire_frames_sent_total", Help: "Frames sent to each peer rank.", Kind: "counter", Labels: labels, Value: float64(ws.FramesSent)})
		emit(obs.Sample{Name: "tsgraph_wire_bytes_sent_total", Help: "Bytes sent to each peer rank (gob-encoded frames).", Kind: "counter", Labels: labels, Value: float64(ws.BytesSent)})
		emit(obs.Sample{Name: "tsgraph_wire_flush_seconds_total", Help: "Time spent encoding and writing frames to each peer rank.", Kind: "counter", Labels: labels, Value: ws.FlushTime.Seconds()})
		emit(obs.Sample{Name: "tsgraph_wire_frames_recv_total", Help: "Frames received from each peer rank.", Kind: "counter", Labels: labels, Value: float64(ws.FramesRecv)})
		emit(obs.Sample{Name: "tsgraph_wire_bytes_recv_total", Help: "Bytes received from each peer rank.", Kind: "counter", Labels: labels, Value: float64(ws.BytesRecv)})
	}
	rankOnly := []obs.Label{{Key: "rank", Value: rank}}
	retries, reconnects, dups, recoveries, downTime := n.RecoveryStats()
	emit(obs.Sample{Name: "tsgraph_wire_retries_total", Help: "Frame sends retried after a wire failure.", Kind: "counter", Labels: rankOnly, Value: float64(retries)})
	emit(obs.Sample{Name: "tsgraph_reconnects_total", Help: "Peer connections successfully re-established after a failure.", Kind: "counter", Labels: rankOnly, Value: float64(reconnects)})
	emit(obs.Sample{Name: "tsgraph_wire_dup_frames_total", Help: "Replayed duplicate frames discarded by receive-side dedup.", Kind: "counter", Labels: rankOnly, Value: float64(dups)})
	emit(obs.Sample{Name: "tsgraph_recoveries_total", Help: "Inbound peer connections that went down and came back.", Kind: "counter", Labels: rankOnly, Value: float64(recoveries)})
	emit(obs.Sample{Name: "tsgraph_recovery_seconds_total", Help: "Cumulative time inbound peer connections spent down before recovering.", Kind: "counter", Labels: rankOnly, Value: downTime.Seconds()})
	// The tscluster_* family is the serving-tier view of the same transport:
	// when a shard rank dies under load, these counters are how the failover
	// shows up on /metrics (reconnects, resend-ring replays, nack traffic).
	rc := n.Recovery()
	emit(obs.Sample{Name: "tscluster_retries_total", Help: "Cluster transport sends retried after a wire failure.", Kind: "counter", Labels: rankOnly, Value: float64(rc.Retries)})
	emit(obs.Sample{Name: "tscluster_reconnects_total", Help: "Cluster peer connections re-established after a failure.", Kind: "counter", Labels: rankOnly, Value: float64(rc.Reconnects)})
	emit(obs.Sample{Name: "tscluster_replayed_frames_total", Help: "Frames replayed from the resend ring during reconnects.", Kind: "counter", Labels: rankOnly, Value: float64(rc.ReplayedFrames)})
	emit(obs.Sample{Name: "tscluster_nacks_sent_total", Help: "Inbound-loss notices sent asking a peer to re-dial and replay.", Kind: "counter", Labels: rankOnly, Value: float64(rc.NacksSent)})
	emit(obs.Sample{Name: "tscluster_nacks_received_total", Help: "Inbound-loss notices received from peers that lost our frames.", Kind: "counter", Labels: rankOnly, Value: float64(rc.NacksRecv)})
	emit(obs.Sample{Name: "tscluster_dup_frames_total", Help: "Replayed duplicate frames discarded by receive-side dedup.", Kind: "counter", Labels: rankOnly, Value: float64(rc.DupFrames)})
	emit(obs.Sample{Name: "tscluster_recoveries_total", Help: "Inbound peer connections that went down and came back.", Kind: "counter", Labels: rankOnly, Value: float64(rc.Recoveries)})
	emit(obs.Sample{Name: "tscluster_down_seconds_total", Help: "Cumulative time inbound peer connections spent down before recovering.", Kind: "counter", Labels: rankOnly, Value: rc.DownTime.Seconds()})
	for r, off := range n.ClockOffsets() {
		if r == n.cfg.Rank {
			continue
		}
		emit(obs.Sample{
			Name: "tsgraph_wire_clock_offset_seconds", Help: "Estimated peer clock minus local clock (NTP-midpoint probe, best-RTT sample).",
			Kind:   "gauge",
			Labels: []obs.Label{{Key: "rank", Value: rank}, {Key: "peer", Value: strconv.Itoa(r)}},
			Value:  off.Seconds(),
		})
	}
}
