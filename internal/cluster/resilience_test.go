package cluster

import (
	"sync"
	"testing"
	"time"

	"tsgraph/internal/obs"
)

// TestBackoffSchedule verifies the exponential-with-equal-jitter contract:
// delay n is uniform in [d/2, d] with d = min(Cap, Base·2ⁿ), and the cap is
// never exceeded no matter how many attempts pile up.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name string
		base,
		cap time.Duration
		attempts int
	}{
		{"short-ramp", 10 * time.Millisecond, 2 * time.Second, 12},
		{"cap-equals-base", 50 * time.Millisecond, 50 * time.Millisecond, 6},
		{"cap-below-base-clamps", 80 * time.Millisecond, 20 * time.Millisecond, 4},
		{"long-tail-stays-capped", 1 * time.Millisecond, 64 * time.Millisecond, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBackoff(tc.base, tc.cap, 42)
			// NewBackoff clamps cap up to base when cap < base.
			effCap := tc.cap
			if effCap < tc.base {
				effCap = tc.base
			}
			for i := 0; i < tc.attempts; i++ {
				want := tc.base << uint(i)
				if want > effCap || want <= 0 { // <=0 guards shift overflow
					want = effCap
				}
				got := b.Next()
				if got < want/2 || got > want {
					t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, got, want/2, want)
				}
				if got > effCap {
					t.Fatalf("attempt %d: delay %v exceeds cap %v", i, got, effCap)
				}
			}
		})
	}
}

// TestBackoffResetRestartsSchedule verifies reset-on-success: after Reset
// the next delay is drawn from the base interval again, not from where the
// previous incident left off.
func TestBackoffResetRestartsSchedule(t *testing.T) {
	base, cap := 8*time.Millisecond, 4*time.Second
	b := NewBackoff(base, cap, 7)
	for i := 0; i < 9; i++ {
		b.Next()
	}
	if b.Attempt() != 9 {
		t.Fatalf("Attempt() = %d, want 9", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", b.Attempt())
	}
	d := b.Next()
	if d < base/2 || d > base {
		t.Fatalf("post-Reset delay %v outside base interval [%v, %v]", d, base/2, base)
	}
}

// TestBackoffDeterministicBySeed verifies two schedules with the same seed
// agree exactly (reproducible chaos runs) and different seeds diverge (no
// reconnect lockstep between ranks).
func TestBackoffDeterministicBySeed(t *testing.T) {
	a := NewBackoff(5*time.Millisecond, time.Second, 99)
	b := NewBackoff(5*time.Millisecond, time.Second, 99)
	c := NewBackoff(5*time.Millisecond, time.Second, 100)
	same, diff := true, false
	for i := 0; i < 16; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Error("identical seeds produced different schedules")
	}
	if !diff {
		t.Error("distinct seeds produced identical schedules")
	}
}

// TestGatherTracesLateShardWakesPromptly pins the fix for the gather
// busy-wait: rank 0 blocks with a generous timeout while rank 1 ships its
// shard only after a delay. The waiter must return as soon as the late
// shard lands — far below the timeout — because the arrival broadcasts the
// condition instead of being noticed by a poll tick.
func TestGatherTracesLateShardWakesPromptly(t *testing.T) {
	const k = 2
	tracers := make([]*obs.Tracer, k)
	nodes := meshWith(t, k, []int32{0, 1}, func(rank int, cfg *Config) {
		tracers[rank] = obs.NewTracer(0)
		tracers[rank].Enable()
		cfg.Tracer = tracers[rank]
	})

	const shipDelay = 150 * time.Millisecond
	var wg sync.WaitGroup
	wg.Add(1)
	var elapsed time.Duration
	var gatherErr error
	start := time.Now()
	go func() {
		defer wg.Done()
		_, gatherErr = nodes[0].GatherTraces(30 * time.Second)
		elapsed = time.Since(start)
	}()

	time.Sleep(shipDelay)
	if _, err := nodes[1].GatherTraces(30 * time.Second); err != nil {
		t.Fatalf("rank 1 ship: %v", err)
	}
	wg.Wait()
	if gatherErr != nil {
		t.Fatalf("gather: %v", gatherErr)
	}
	// The wake is a cond broadcast, so the gather should return within
	// scheduler noise of the ship; the margin absorbs loaded CI machines. A
	// waiter that only woke at its deadline would sit the full 30s.
	if elapsed > shipDelay+5*time.Second {
		t.Fatalf("gather took %v, want prompt wake after ~%v", elapsed, shipDelay)
	}
	if elapsed < shipDelay {
		t.Fatalf("gather returned after %v, before the shard shipped at %v", elapsed, shipDelay)
	}
}
