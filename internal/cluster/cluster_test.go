package cluster

import (
	"encoding/gob"
	"math"
	"net"
	"sync"
	"testing"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

func init() {
	gob.Register(map[string]int{}) // test payloads
}

// mesh spins up n nodes on ephemeral localhost ports and returns them
// started (full mesh connected).
func mesh(tb testing.TB, n int, owner []int32) []*Node {
	tb.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := New(Config{Rank: i, Addrs: addrs, Listener: listeners[i], Owner: owner})
		if err != nil {
			tb.Fatal(err)
		}
		nodes[i] = node
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			errs[i] = node.Start()
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("node %d start: %v", i, err)
		}
	}
	tb.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

// distFixture builds a partitioned time-series dataset shared by the
// distributed tests.
type distFixture struct {
	tmpl  *graph.Template
	coll  *graph.Collection
	parts []*subgraph.PartitionData
	owner []int32
}

func newDistFixture(tb testing.TB, k int) *distFixture {
	tb.Helper()
	tmpl := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, RemoveFrac: 0.1, Seed: 9})
	coll, err := gen.RandomLatencies(tmpl, gen.LatencyConfig{
		Timesteps: 12, T0: 0, Delta: 20, Min: 1, Max: 30, Seed: 10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 11}).Partition(tmpl, k)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(tmpl, a)
	if err != nil {
		tb.Fatal(err)
	}
	// One partition per node.
	owner := make([]int32, k)
	for i := range owner {
		owner[i] = int32(i)
	}
	return &distFixture{tmpl: tmpl, coll: coll, parts: parts, owner: owner}
}

// runDistributedTDSP runs TDSP with one node per partition and returns the
// merged template-indexed arrivals.
func runDistributedTDSP(tb testing.TB, f *distFixture, nodes []*Node) []float64 {
	tb.Helper()
	k := len(nodes)
	merged := make([]float64, f.tmpl.NumVertices())
	for i := range merged {
		merged[i] = algorithms.Inf
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, k)
	total := subgraph.TotalSubgraphs(f.parts)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			prog := algorithms.NewTDSP(local, 0, 20, gen.AttrLatency)
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			_, err := core.RunWithEngine(&core.Job{
				Template:        f.tmpl,
				Parts:           local,
				Source:          core.MemorySource{C: f.coll},
				Program:         prog,
				Pattern:         core.SequentiallyDependent,
				Remote:          nodes[r],
				Coordinator:     nodes[r],
				GlobalSubgraphs: total,
			}, engine)
			if err != nil {
				errs[r] = err
				tb.Logf("node %d error: %v", r, err)
				return
			}
			arr := prog.Arrivals(local, f.tmpl)
			mu.Lock()
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					merged[g] = arr[g]
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			tb.Fatalf("node %d: %v", r, err)
		}
	}
	return merged
}

func TestDistributedTDSPMatchesSingleProcess(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	nodes := mesh(t, k, f.owner)

	// Single-process reference over the identical parts.
	refProg := algorithms.NewTDSP(f.parts, 0, 20, gen.AttrLatency)
	if _, err := core.Run(&core.Job{
		Template: f.tmpl, Parts: f.parts,
		Source:  core.MemorySource{C: f.coll},
		Program: refProg, Pattern: core.SequentiallyDependent,
	}); err != nil {
		t.Fatal(err)
	}
	want := refProg.Arrivals(f.parts, f.tmpl)

	got := runDistributedTDSP(t, f, nodes)
	for v := range want {
		if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
			t.Fatalf("vertex %d: distributed %v vs single %v", v, got[v], want[v])
		}
		if !math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9 {
			t.Fatalf("vertex %d: distributed %v vs single %v", v, got[v], want[v])
		}
	}
}

func TestDistributedMemeMatchesSingleProcess(t *testing.T) {
	const k = 3
	tmpl := gen.SmallWorld(gen.SmallWorldConfig{N: 400, M: 2, Seed: 12})
	sir, err := gen.SIRTweets(tmpl, gen.SIRConfig{
		Timesteps: 8, Delta: 10, Memes: []string{"#d"},
		SeedsPerMeme: 2, HitProb: 0.35, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 14}).Partition(tmpl, k)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := subgraph.Build(tmpl, a)
	if err != nil {
		t.Fatal(err)
	}
	owner := []int32{0, 1, 2}
	nodes := mesh(t, k, owner)

	refProg := algorithms.NewMeme(parts, "#d", gen.AttrTweets)
	if _, err := core.Run(&core.Job{
		Template: tmpl, Parts: parts,
		Source:  core.MemorySource{C: sir.Collection},
		Program: refProg, Pattern: core.SequentiallyDependent,
	}); err != nil {
		t.Fatal(err)
	}
	want := refProg.ColoredAt(parts, tmpl)

	got := make([]int32, tmpl.NumVertices())
	for i := range got {
		got[i] = -1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, k)
	total := subgraph.TotalSubgraphs(parts)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := parts[r : r+1]
			prog := algorithms.NewMeme(local, "#d", gen.AttrTweets)
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			_, err := core.RunWithEngine(&core.Job{
				Template: tmpl, Parts: local,
				Source:  core.MemorySource{C: sir.Collection},
				Program: prog, Pattern: core.SequentiallyDependent,
				Remote: nodes[r], Coordinator: nodes[r],
				GlobalSubgraphs: total,
			}, engine)
			if err != nil {
				errs[r] = err
				return
			}
			at := prog.ColoredAt(local, tmpl)
			mu.Lock()
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					got[g] = at[g]
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("vertex %d: distributed colored at %d, single %d", v, got[v], want[v])
		}
	}
}

// votingProgram exercises distributed WhileMode consensus: every subgraph
// keeps the loop alive until a target timestep, then votes to halt.
type votingProgram struct {
	until int
}

func (p *votingProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if timestep < p.until {
		ctx.SendToNextTimestep(int64(timestep))
	} else {
		ctx.VoteToHaltTimestep()
	}
	ctx.VoteToHalt()
}

func TestDistributedWhileModeConsensus(t *testing.T) {
	const k = 2
	f := newDistFixture(t, k)
	nodes := mesh(t, k, f.owner)
	total := subgraph.TotalSubgraphs(f.parts)

	var wg sync.WaitGroup
	results := make([]*core.Result, k)
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			results[r], errs[r] = core.RunWithEngine(&core.Job{
				Template: f.tmpl, Parts: local,
				Source:  core.MemorySource{C: f.coll},
				Program: &votingProgram{until: 4},
				Pattern: core.SequentiallyDependent, WhileMode: true,
				Remote: nodes[r], Coordinator: nodes[r],
				GlobalSubgraphs: total,
			}, engine)
		}(r)
	}
	wg.Wait()
	for r := 0; r < k; r++ {
		if errs[r] != nil {
			t.Fatalf("node %d: %v", r, errs[r])
		}
		if !results[r].HaltedEarly || results[r].TimestepsRun != 5 {
			t.Errorf("node %d: haltedEarly=%v timesteps=%d, want early at 5",
				r, results[r].HaltedEarly, results[r].TimestepsRun)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := New(Config{Rank: 3, Addrs: []string{"a", "b"}}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestSingleNodeMesh(t *testing.T) {
	nodes := mesh(t, 1, []int32{0})
	// A 1-node mesh degenerates to local behavior.
	stats, err := nodes[0].Barrier(0, bsp.BarrierStats{Sent: 3, AllHalted: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 3 || !stats.AllHalted {
		t.Errorf("stats = %+v", stats)
	}
	in, votes, msgs, err := nodes[0].ExchangeTemporal(0, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 0 || votes != 2 || msgs != 0 {
		t.Errorf("exchange = %v %d %d", in, votes, msgs)
	}
}

func TestLocalPartitions(t *testing.T) {
	n, err := New(Config{Rank: 1, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}, Owner: []int32{0, 1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	lp := n.LocalPartitions()
	if len(lp) != 2 || lp[0] != 1 || lp[1] != 2 {
		t.Errorf("LocalPartitions = %v", lp)
	}
	if n.Rank() != 1 || n.NumNodes() != 2 {
		t.Errorf("rank/nodes = %d/%d", n.Rank(), n.NumNodes())
	}
}
