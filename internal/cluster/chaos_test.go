package cluster

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/chaos"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// chaosSeed returns the fault-injection seed: CHAOS_SEED when set (the
// nightly chaos CI job sweeps random seeds through it), 42 otherwise.
func chaosSeed(tb testing.TB) int64 {
	tb.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			tb.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		tb.Logf("CHAOS_SEED=%d", s)
		return s
	}
	return 42
}

// testResilience is a retry config tuned for loopback tests: fast backoff,
// a recovery window generous enough for loaded CI machines.
func testResilience() *Resilience {
	return &Resilience{
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     50 * time.Millisecond,
		RecoveryWindow: 20 * time.Second,
	}
}

// tdspReference computes the single-process arrivals the distributed chaos
// runs must reproduce.
func tdspReference(tb testing.TB, f *distFixture) []float64 {
	tb.Helper()
	refProg := algorithms.NewTDSP(f.parts, 0, 20, gen.AttrLatency)
	if _, err := core.Run(&core.Job{
		Template: f.tmpl, Parts: f.parts,
		Source:  core.MemorySource{C: f.coll},
		Program: refProg, Pattern: core.SequentiallyDependent,
	}); err != nil {
		tb.Fatal(err)
	}
	return refProg.Arrivals(f.parts, f.tmpl)
}

func requireSameArrivals(tb testing.TB, want, got []float64) {
	tb.Helper()
	for v := range want {
		if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) ||
			(!math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9) {
			tb.Fatalf("vertex %d: chaos run arrival %v, reference %v", v, got[v], want[v])
		}
	}
}

// TestChaosSendFaultReconnectsAndMatches severs rank 1's outgoing link on
// its Nth frame send — deterministically, independent of seed — and
// requires the run to retry, reconnect, replay, and still produce the
// single-process TDSP answer.
func TestChaosSendFaultReconnectsAndMatches(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	want := tdspReference(t, f)

	seed := chaosSeed(t)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		cfg.Resilience = testResilience()
		if rank == 1 {
			cfg.Chaos = chaos.New(seed).SetAt(chaos.SiteWireSend, 5)
		}
	})
	got := runDistributedTDSP(t, f, nodes)
	requireSameArrivals(t, want, got)

	retries, reconnects, _, _, _ := nodes[1].RecoveryStats()
	if retries < 1 || reconnects < 1 {
		t.Fatalf("rank 1 retries=%d reconnects=%d, want >=1 each after injected send fault", retries, reconnects)
	}
}

// TestChaosRecvFaultReconnectsAndMatches severs an inbound connection at
// rank 2 mid-stream (the wire.recv site closes the socket after a decode);
// the affected sender must notice on its next send, reconnect, and the
// receiver's sequence dedup must discard the replayed duplicates.
func TestChaosRecvFaultReconnectsAndMatches(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	want := tdspReference(t, f)

	seed := chaosSeed(t)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		cfg.Resilience = testResilience()
		if rank == 2 {
			cfg.Chaos = chaos.New(seed).SetAt(chaos.SiteWireRecv, 10)
		}
	})
	got := runDistributedTDSP(t, f, nodes)
	requireSameArrivals(t, want, got)

	var reconnects int64
	for _, n := range nodes {
		_, rc, _, _, _ := n.RecoveryStats()
		reconnects += rc
	}
	if reconnects < 1 {
		t.Fatalf("no rank reconnected after injected receive fault")
	}
}

// TestChaosBarrierFaultReconnectsAndMatches targets the synchronization
// protocol: rank 0's second EOS/TEOS barrier frame send is severed. Barrier
// consensus must survive the reconnect-and-replay without double-counting
// (the receiver drops replayed frames by sequence).
func TestChaosBarrierFaultReconnectsAndMatches(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	want := tdspReference(t, f)

	seed := chaosSeed(t)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		cfg.Resilience = testResilience()
		if rank == 0 {
			cfg.Chaos = chaos.New(seed).SetAt(chaos.SiteBarrierEOS, 2)
		}
	})
	got := runDistributedTDSP(t, f, nodes)
	requireSameArrivals(t, want, got)

	retries, reconnects, _, _, _ := nodes[0].RecoveryStats()
	if retries < 1 || reconnects < 1 {
		t.Fatalf("rank 0 retries=%d reconnects=%d, want >=1 each after injected barrier fault", retries, reconnects)
	}
}

// TestChaosRandomFaultsStillCorrect is the seed-swept soak: every rank runs
// with probabilistic send and receive faults drawn from CHAOS_SEED. The
// answer must match the fault-free reference regardless of which frames the
// seed happens to hit; whenever a send fault fired, the transport must show
// retry work.
func TestChaosRandomFaultsStillCorrect(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	want := tdspReference(t, f)

	seed := chaosSeed(t)
	injectors := make([]*chaos.Injector, k)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		cfg.Resilience = testResilience()
		injectors[rank] = chaos.New(seed+int64(rank)).
			SetProb(chaos.SiteWireSend, 0.05).
			SetProb(chaos.SiteWireRecv, 0.01).
			SetProb(chaos.SiteBarrierEOS, 0.01)
		cfg.Chaos = injectors[rank]
	})
	got := runDistributedTDSP(t, f, nodes)
	requireSameArrivals(t, want, got)

	for r, inj := range injectors {
		stats := inj.Stats()
		retries, _, _, _, _ := nodes[r].RecoveryStats()
		if fired := stats[chaos.SiteWireSend][1]; fired > 0 && retries == 0 {
			t.Errorf("rank %d: %d send faults fired but no retries recorded", r, fired)
		}
		t.Logf("rank %d: chaos %v, retries %d", r, stats, retries)
	}
}

// chaosKillFixture is the kill/resume dataset: a GoFS-backed time series so
// the gofs.load failpoint and the checkpoint files share a real store.
type chaosKillFixture struct {
	tmpl  *graph.Template
	parts []*subgraph.PartitionData
	owner []int32
	dir   string // GoFS dataset
}

func newChaosKillFixture(tb testing.TB, k int) *chaosKillFixture {
	tb.Helper()
	tmpl := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, RemoveFrac: 0.1, Seed: 9})
	coll, err := gen.RandomLatencies(tmpl, gen.LatencyConfig{
		Timesteps: 12, T0: 0, Delta: 20, Min: 1, Max: 30, Seed: 10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 11}).Partition(tmpl, k)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(tmpl, a)
	if err != nil {
		tb.Fatal(err)
	}
	dir := tb.TempDir()
	if err := gofs.WriteDataset(dir, coll, a, 4, 0); err != nil {
		tb.Fatal(err)
	}
	owner := make([]int32, k)
	for i := range owner {
		owner[i] = int32(i)
	}
	return &chaosKillFixture{tmpl: tmpl, parts: parts, owner: owner, dir: dir}
}

// openLoader opens one rank's view of the GoFS dataset.
func (f *chaosKillFixture) openLoader(tb testing.TB) *gofs.Loader {
	tb.Helper()
	store, err := gofs.Open(f.dir)
	if err != nil {
		tb.Fatal(err)
	}
	return gofs.NewLoader(store)
}

// killRunResult is one rank's outcome from a kill-fixture run.
type killRunResult struct {
	err    error
	res    *core.Result
	loader *gofs.Loader
}

// runTDSPRanks runs distributed TDSP over the kill fixture, one goroutine
// per rank, with per-rank job mutation (checkpoint config, chaos'd loader)
// and an optional per-rank post-run hook (the "kill": closing the failed
// node so peers observe its death). Returns per-rank outcomes and the
// merged arrivals of the ranks that finished.
func runTDSPRanks(
	tb testing.TB,
	f *chaosKillFixture,
	nodes []*Node,
	mutate func(rank int, job *core.Job, loader *gofs.Loader),
	after func(rank int, err error),
) ([]killRunResult, []float64) {
	tb.Helper()
	k := len(nodes)
	merged := make([]float64, f.tmpl.NumVertices())
	for i := range merged {
		merged[i] = algorithms.Inf
	}
	outs := make([]killRunResult, k)
	total := subgraph.TotalSubgraphs(f.parts)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			loader := f.openLoader(tb)
			prog := algorithms.NewTDSP(local, 0, 20, gen.AttrLatency)
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			job := &core.Job{
				Template:        f.tmpl,
				Parts:           local,
				Source:          loader,
				Program:         prog,
				Pattern:         core.SequentiallyDependent,
				Remote:          nodes[r],
				Coordinator:     nodes[r],
				GlobalSubgraphs: total,
			}
			if mutate != nil {
				mutate(r, job, loader)
			}
			res, err := core.RunWithEngine(job, engine)
			outs[r] = killRunResult{err: err, res: res, loader: loader}
			if after != nil {
				after(r, err)
			}
			if err != nil {
				return
			}
			arr := prog.Arrivals(local, f.tmpl)
			mu.Lock()
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					merged[g] = arr[g]
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return outs, merged
}

func gobBytes(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosKillResumeByteIdentical is the fault-tolerance acceptance path:
// a 4-rank run checkpoints at every timestep boundary until an injected
// gofs.load fault kills rank 2 partway through (its node closes, so peers
// die too — a process kill in miniature). A fresh mesh then resumes from
// the checkpoints: ranks agree the cluster-wide resume point over the wire
// and replay only the remaining timesteps. The resumed run's arrival table
// must be byte-identical to an uninterrupted run's.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	const k = 4
	f := newChaosKillFixture(t, k)

	// Uninterrupted reference over the identical GoFS dataset.
	refNodes := meshWith(t, k, f.owner, nil)
	refOuts, refArrivals := runTDSPRanks(t, f, refNodes, nil, nil)
	for r, out := range refOuts {
		if out.err != nil {
			t.Fatalf("reference rank %d: %v", r, out.err)
		}
	}
	want := gobBytes(t, refArrivals)

	// Interrupted run: checkpoint every timestep; rank 2's second pack
	// materialization (timestep 4, pack size 4) raises an injected fault.
	ckdir := t.TempDir()
	seed := chaosSeed(t)
	killNodes := meshWith(t, k, f.owner, nil)
	killOuts, _ := runTDSPRanks(t, f, killNodes,
		func(rank int, job *core.Job, loader *gofs.Loader) {
			job.CheckpointDir = ckdir
			job.CheckpointRank = rank
			if rank == 2 {
				loader.Chaos = chaos.New(seed).SetAt(chaos.SiteGoFSLoad, 2)
			}
		},
		func(rank int, err error) {
			if rank == 2 {
				// The injected fault aborted this rank's run; close its node so
				// the mesh observes the death instead of waiting on barriers.
				// But not immediately: rank 2 reached timestep 4, so every peer
				// *will* finish timestep 3 (rank 2's temporal frames for the
				// t3 barrier are already on the wire) — yet a peer may still be
				// draining that exchange, and an instant Close RSTs delivered-
				// but-unread frames, aborting the peer before it writes its t3
				// checkpoint. Wait for the peers' boundary checkpoints to land
				// on disk, then sever.
				deadline := time.Now().Add(10 * time.Second)
				for r := 0; r < k; r++ {
					if r == 2 {
						continue
					}
					for time.Now().Before(deadline) {
						if ts, _, err := gofs.LatestCheckpoint(ckdir, r); err == nil && ts >= 3 {
							break
						}
						time.Sleep(time.Millisecond)
					}
				}
				killNodes[2].Close()
			}
		})
	if killOuts[2].err == nil || !chaos.IsInjected(killOuts[2].err) {
		t.Fatalf("rank 2 error = %v, want injected gofs.load fault", killOuts[2].err)
	}
	for r, out := range killOuts {
		if r != 2 && out.err == nil {
			t.Fatalf("rank %d finished despite rank 2 dying mid-run", r)
		}
	}
	// Every rank checkpointed through timestep 3 and none past it (timestep
	// 4's boundary is unreachable without rank 2).
	for r := 0; r < k; r++ {
		ts, _, err := gofs.LatestCheckpoint(ckdir, r)
		if err != nil {
			t.Fatalf("rank %d latest checkpoint: %v", r, err)
		}
		if ts != 3 {
			t.Fatalf("rank %d latest checkpoint covers timestep %d, want 3", r, ts)
		}
	}

	// Resume on a fresh mesh: consensus picks the common resume point and
	// the remaining 8 timesteps replay.
	resumeNodes := meshWith(t, k, f.owner, nil)
	resumeOuts, resumeArrivals := runTDSPRanks(t, f, resumeNodes,
		func(rank int, job *core.Job, loader *gofs.Loader) {
			job.CheckpointDir = ckdir
			job.CheckpointRank = rank
			job.Resume = true
			job.ResumeConsensus = resumeNodes[rank].AgreeResume
		}, nil)
	for r, out := range resumeOuts {
		if out.err != nil {
			t.Fatalf("resumed rank %d: %v", r, out.err)
		}
		if out.res.TimestepsRun != 12 {
			t.Fatalf("resumed rank %d ran %d timesteps, want 12", r, out.res.TimestepsRun)
		}
		// Timesteps 0–3 came from the checkpoint: only packs 4–7 and 8–11
		// were materialized.
		if out.loader.PackLoads > 2 {
			t.Errorf("resumed rank %d materialized %d packs, want <=2 (resume skips completed timesteps)", r, out.loader.PackLoads)
		}
	}
	got := gobBytes(t, resumeArrivals)
	if !bytes.Equal(want, got) {
		t.Fatal("resumed run's arrivals differ from the uninterrupted run's")
	}
}
