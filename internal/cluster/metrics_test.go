package cluster

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/chaos"
	"tsgraph/internal/obs"
)

// TestClusterMetricsExposition registers a live 2-node mesh with an obs
// registry and checks the tscluster_* recovery-counter families render as
// legal Prometheus exposition text: HELP/TYPE headers before samples,
// counters ending in _total, legal names and label syntax, parseable
// values, and a rank label on every sample so several in-process nodes can
// share one registry.
func TestClusterMetricsExposition(t *testing.T) {
	nodes := mesh(t, 2, []int32{0, 1})

	reg := obs.NewRegistry(nil)
	reg.Register(nodes[0])

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	wantFamilies := []string{
		"tscluster_retries_total",
		"tscluster_reconnects_total",
		"tscluster_replayed_frames_total",
		"tscluster_nacks_sent_total",
		"tscluster_nacks_received_total",
		"tscluster_dup_frames_total",
		"tscluster_recoveries_total",
		"tscluster_down_seconds_total",
	}

	help := map[string]bool{}
	typ := map[string]string{}
	samples := map[string]string{}
	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLineRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]Inf|-?[0-9.eE+-]+)$`)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			help[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			typ[parts[0]] = parts[1]
			continue
		}
		m := sampleLineRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("sample line does not match the exposition grammar: %q", line)
		}
		if !nameRE.MatchString(m[1]) {
			t.Fatalf("illegal metric name %q", m[1])
		}
		if !help[m[1]] || typ[m[1]] == "" {
			t.Fatalf("sample %q has no preceding HELP/TYPE header", m[1])
		}
		samples[m[1]] = m[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, fam := range wantFamilies {
		if !strings.HasSuffix(fam, "_total") && fam != "tscluster_down_seconds_total" {
			t.Fatalf("family %q is a counter but does not end in _total", fam)
		}
		labels, ok := samples[fam]
		if !ok {
			t.Fatalf("scrape is missing family %q\n%s", fam, out)
		}
		if typ[fam] != "counter" {
			t.Fatalf("family %q has TYPE %q, want counter", fam, typ[fam])
		}
		if !strings.Contains(labels, `rank="0"`) {
			t.Fatalf("family %q sample lacks the rank label: %q", fam, labels)
		}
	}
}

// TestRecoveryCountersNackReplay drives the nack/replay cycle with an
// injected receive fault (rank 2's inbound socket severed mid-stream) and
// requires the new counters to advance: the victim sends a nack, some peer
// receives it, and the answers still match the single-process oracle (the
// existing chaos contract — this test just pins the counter plumbing).
func TestRecoveryCountersNackReplay(t *testing.T) {
	const k = 3
	f := newDistFixture(t, k)
	want := tdspReference(t, f)

	seed := chaosSeed(t)
	nodes := meshWith(t, k, f.owner, func(rank int, cfg *Config) {
		cfg.Resilience = testResilience()
		if rank == 2 {
			cfg.Chaos = chaos.New(seed).SetAt(chaos.SiteWireRecv, 10)
		}
	})
	got := runDistributedTDSP(t, f, nodes)
	requireSameArrivals(t, want, got)

	// The nack is sent over the victim's own healthy outgoing link, but
	// delivery is asynchronous relative to the job's barriers — poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		victim := nodes[2].Recovery()
		var recv, recoveries int64
		for _, n := range nodes {
			rc := n.Recovery()
			recv += rc.NacksRecv
			recoveries += rc.Recoveries
		}
		if victim.NacksSent >= 1 && recv >= 1 && recoveries >= 1 {
			t.Logf("victim=%+v total nacksRecv=%d recoveries=%d", victim, recv, recoveries)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nack counters never advanced: victim=%+v total nacksRecv=%d recoveries=%d", victim, recv, recoveries)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
