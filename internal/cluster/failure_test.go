package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/subgraph"
)

// slowDyingProgram keeps every subgraph active so the run spans many
// supersteps, giving the test a window to kill a peer.
type slowDyingProgram struct{ limit int }

func (p *slowDyingProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	time.Sleep(time.Millisecond)
	if superstep < p.limit {
		return // stay active
	}
	ctx.VoteToHalt()
}

// TestPeerDeathSurfacesError kills one node mid-run; the surviving node
// must fail with a transport error rather than hang at the barrier.
func TestPeerDeathSurfacesError(t *testing.T) {
	const k = 2
	f := newDistFixture(t, k)
	nodes := mesh(t, k, f.owner)
	total := subgraph.TotalSubgraphs(f.parts)

	var wg sync.WaitGroup
	errs := make([]error, k)
	// Node 1 dies shortly after the run starts.
	go func() {
		time.Sleep(30 * time.Millisecond)
		nodes[1].Close()
	}()
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := f.parts[r : r+1]
			engine := bsp.NewEngineRemote(local, bsp.Config{}, nodes[r])
			nodes[r].Bind(engine)
			_, errs[r] = core.RunWithEngine(&core.Job{
				Template: f.tmpl, Parts: local,
				Source:  core.MemorySource{C: f.coll},
				Program: &slowDyingProgram{limit: 500},
				Pattern: core.SequentiallyDependent,
				Remote:  nodes[r], Coordinator: nodes[r],
				GlobalSubgraphs: total,
				Config:          bsp.Config{MaxSupersteps: 1000},
			}, engine)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("surviving node hung after peer death")
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("expected at least one node to report the peer death")
	}
}

// errRemote fails every Send.
type errRemote struct{}

func (errRemote) Send(int, []bsp.Message) error { return errors.New("link down") }
func (errRemote) Barrier(_ int, l bsp.BarrierStats) (bsp.BarrierStats, error) {
	l.Sent++ // force cross-host traffic so Send gets called
	return l, nil
}

func TestEngineSurfacesSendError(t *testing.T) {
	tmpl := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 51})
	f := newDistFixture(t, 2)
	_ = tmpl
	local := f.parts[0:1]
	engine := bsp.NewEngineRemote(local, bsp.Config{}, errRemote{})
	prog := core.Job{
		Template: f.tmpl, Parts: local,
		Source:  core.MemorySource{C: f.coll},
		Program: &pingAcross{}, Pattern: core.SequentiallyDependent,
		Remote: errRemote{}, Coordinator: nopCoord{},
	}
	if _, err := core.RunWithEngine(&prog, engine); err == nil {
		t.Fatal("Send failure not surfaced")
	}
}

// pingAcross sends one message to the other partition's subgraph so the
// engine must use Remote.Send.
type pingAcross struct{}

func (pingAcross) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if superstep == 0 {
		ctx.SendTo(subgraph.MakeID(1, 0), "x")
	}
	ctx.VoteToHalt()
}

// nopCoord is a trivial Coordinator for single-node tests.
type nopCoord struct{}

func (nopCoord) ExchangeTemporal(ts int, out []bsp.Message, votes int) ([]bsp.Message, int, int, error) {
	return out, votes, len(out), nil
}

// TestWireCountersNoDoubleCountOnDisconnect kills a peer mid-flush and
// checks the per-peer framesSent counter advances only for frames that
// actually made it onto the wire: failed encodes — and retries of the same
// frame after the failure — must not inflate it.
func TestWireCountersNoDoubleCountOnDisconnect(t *testing.T) {
	nodes := mesh(t, 2, []int32{0, 1})
	p := nodes[0].peers[1]
	base := p.framesSent.Load()

	f := &frame{Kind: kindPing, Rank: 0, T1: 1}
	var succeeded int64
	for i := 0; i < 3; i++ {
		if err := p.send(f, nil, false); err != nil {
			t.Fatalf("send %d on live peer: %v", i, err)
		}
		succeeded++
	}

	// Sever the transport under the encoder — the sender-side view of a
	// peer dying mid-flush.
	p.conn.Close()
	if err := p.send(f, nil, false); err == nil {
		t.Fatal("send succeeded on a severed connection")
	}
	if got := p.framesSent.Load() - base; got != succeeded {
		t.Fatalf("framesSent advanced by %d, want %d (one per successful flush, none for the failure)", got, succeeded)
	}

	// Retrying the lost frame against the dead connection must not count.
	for i := 0; i < 5; i++ {
		if err := p.send(f, nil, false); err == nil {
			succeeded++
		}
	}
	if got := p.framesSent.Load() - base; got != succeeded {
		t.Fatalf("retries double-counted: framesSent advanced by %d, want %d", got, succeeded)
	}
}
