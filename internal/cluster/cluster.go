// Package cluster runs TI-BSP jobs across multiple processes connected by
// TCP, one node per host, turning the single-process simulation into a
// genuinely distributed execution: every node owns a subset of partitions,
// cross-host BSP messages travel as gob-framed TCP traffic, supersteps
// synchronize through an all-to-all barrier protocol, and temporal messages
// are exchanged between timesteps.
//
// A Node implements both bsp.Remote (superstep messaging and barrier) and
// core.Coordinator (temporal exchange), so plugging a node into a core.Job
// is all a host needs:
//
//	node, _ := cluster.New(cluster.Config{Rank: r, Addrs: addrs, Owner: owner})
//	defer node.Close()
//	engine-bound job := &core.Job{
//	    Parts:  localParts,            // only the partitions Owner assigns to r
//	    Remote: node, Coordinator: node,
//	    GlobalSubgraphs: total,
//	    ...
//	}
//	node.Start()                       // connect the mesh
//	core.Run(job)
//
// The barrier protocol is coordinator-free: each node sends an
// end-of-superstep frame carrying its local stats to every peer over the
// same ordered connection as its data frames, so when a node has collected
// all peers' EOS frames it knows every message addressed to it has arrived,
// and every node computes identical global aggregates.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/chaos"
	"tsgraph/internal/obs"
)

func init() {
	// Base payload types usable over the wire without further registration;
	// algorithm payloads register themselves (see algorithms.init).
	gob.Register(int(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(true)
	gob.Register([]int32(nil))
	gob.Register([]float64(nil))
	gob.Register([]string(nil))
}

// Frame kinds.
const (
	kindData     = 1  // superstep messages
	kindEOS      = 2  // end of superstep + local barrier stats
	kindTemporal = 3  // between-timesteps temporal messages
	kindTEOS     = 4  // end of temporal exchange + votes/message totals
	kindPing     = 5  // clock-offset probe (T1 = origin send time)
	kindPong     = 6  // probe reply (T1 echoed, T2 = responder clock)
	kindShard    = 7  // end-of-run trace shard shipped to the gather rank
	kindResume   = 8  // resume-consensus proposal (latest usable checkpoint)
	kindNack     = 9  // inbound-loss notice: re-dial us and replay your ring
	kindBye      = 10 // end-of-run drain barrier announcement (see Quiesce)
)

// frame is the wire unit. Exactly one payload group is meaningful per kind.
// Every frame carries its trace context — the sender's rank, the TI-BSP
// timestep, and a per-node logical send sequence — so a receiver's wire
// spans resolve back to the sender's (obs.PackWireID pairs Rank and Seq).
type frame struct {
	Kind  uint8
	Step  int // superstep (data/eos) or timestep (temporal/teos)
	Msgs  []bsp.Message
	Stats bsp.BarrierStats
	Votes int
	Count int

	// Trace context, stamped on data/temporal frames.
	Rank int32 // sender rank
	TS   int32 // TI-BSP timestep the sender is executing
	Seq  int64 // sender-wide logical send sequence (0 = unstamped)

	// Clock probe payload (ping/pong).
	T1, T2 int64 // unix nanos: origin send time; responder clock

	// Trace shard payload (kindShard).
	Shard *obs.TraceShard
}

// Config describes one node of the mesh.
type Config struct {
	// Rank is this node's index in Addrs.
	Rank int
	// Addrs lists every node's listen address, rank-ordered.
	Addrs []string
	// Listener optionally supplies the pre-bound listener for
	// Addrs[Rank] (tests use ephemeral ports).
	Listener net.Listener
	// Owner maps template partition -> owning rank.
	Owner []int32
	// DialTimeout bounds the connection phase (default 10s).
	DialTimeout time.Duration
	// Tracer, when non-nil and enabled, records a wire span per data and
	// temporal frame on both sides of every connection (SpanWireSend on the
	// sender, SpanWireRecv on the receiver, linked by the frame's packed
	// wire id) so merged traces resolve cross-rank message flow.
	Tracer *obs.Tracer
	// Watchdog, when non-nil, is fed rank arrivals at every superstep
	// barrier: StepBegin when this node enters the barrier, Arrive per
	// rank's EOS frame, StepEnd when the barrier releases. Its Parties
	// must equal len(Addrs).
	Watchdog *obs.Watchdog
	// Resilience, when non-nil, enables retry/reconnect/replay on the wire
	// (see the Resilience type). Nil keeps the legacy fail-fast transport.
	Resilience *Resilience
	// Chaos, when non-nil, arms the transport failpoints (wire.send,
	// wire.recv, barrier.eos): a firing site severs the affected connection
	// so recovery — or, without Resilience, failure — takes the same path a
	// real network fault would.
	Chaos *chaos.Injector
}

// Node is one host of a distributed run. It implements bsp.Remote and
// core.Coordinator.
type Node struct {
	cfg Config
	ln  net.Listener

	// peers[r] is the outgoing connection to rank r (nil for self).
	peers []*peerConn

	mu     sync.Mutex
	cond   *sync.Cond
	engine *bsp.Engine
	// eos[s] collects peers' barrier stats for superstep s.
	eos map[int][]bsp.BarrierStats
	// temporalIn[t] collects incoming temporal messages for timestep t.
	temporalIn map[int][]bsp.Message
	// teos[t] collects peers' (votes, msgs) for timestep t.
	teos map[int][][2]int
	// resumeIn collects peers' resume-consensus proposals (see AgreeResume).
	resumeIn map[int]int
	byes     map[int]bool
	err      error

	closed  bool
	readers sync.WaitGroup

	// Inbound wire counters, indexed by peer rank (see wire.go).
	recvFrames  []atomic.Int64
	recvReaders []atomic.Pointer[countingReader]

	// sendSeq is the node-wide logical send sequence stamped on outgoing
	// data/temporal frames (wire id = obs.PackWireID(Rank, Seq)).
	sendSeq atomic.Int64
	// curTS is the timestep this node is currently executing, for stamping
	// frames and labeling watchdog warnings.
	curTS atomic.Int32
	// offsetNanos[r] is the best estimate of rank r's clock minus ours
	// (NTP-style midpoint); offsetRTT[r] is the RTT of the sample that
	// produced it — lower RTT bounds the estimate's error tighter, so only
	// lower-RTT samples replace it. Guarded by offMu (not atomics: the pair
	// must update together).
	offMu       sync.Mutex
	offsetNanos []int64
	offsetRTT   []int64
	// shards[r] holds rank r's trace shard once its kindShard frame lands
	// (gather-rank side of GatherTraces); cond is broadcast on arrival.
	shards map[int]*obs.TraceShard

	// res is cfg.Resilience with defaults applied (nil = fail-fast).
	res *Resilience
	// maxSeq[r] is the receive high-water mark of rank r's send sequence:
	// a buffered frame at or below it is a replayed duplicate and dropped.
	maxSeq []atomic.Int64
	// recvGen[r] counts inbound connections accepted from rank r, so a
	// stale read loop's death is not mistaken for the current link failing.
	recvGen []atomic.Int64
	// downSince[r] is when rank r's inbound connection died (unix nanos; 0 =
	// healthy). Set on reader exit, cleared when a replacement lands.
	downSince []atomic.Int64

	retriesTotal    atomic.Int64
	reconnectsTotal atomic.Int64
	dupFrames       atomic.Int64
	recoveries      atomic.Int64
	recoveryNanos   atomic.Int64
	nacksSent       atomic.Int64
	nacksRecv       atomic.Int64
	replayedFrames  atomic.Int64
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder

	// ring is the bounded resend buffer (resilience only): the most recent
	// buffered frames in wire order, replayed after a reconnect. start/count
	// describe the live window; a full ring evicts its oldest frame.
	ring  []frame
	start int
	count int

	// gen counts successful reconnects of this link; reMu serializes them.
	gen  atomic.Int64
	reMu sync.Mutex

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	flushNanos atomic.Int64
}

// send encodes one frame under the connection lock. When seq is non-nil,
// buffered kinds are stamped with a fresh send sequence *inside* the lock,
// so sequence order equals wire order — the invariant receiver-side dedup
// relies on. When buffer is set, the frame enters the resend ring before the
// encode: a frame whose flush fails is still replayable after reconnect.
func (p *peerConn) send(f *frame, seq *atomic.Int64, buffer bool) error {
	start := time.Now()
	p.mu.Lock()
	if seq != nil && f.Seq == 0 && bufferedKind(f.Kind) {
		f.Seq = seq.Add(1)
	}
	if buffer && bufferedKind(f.Kind) {
		p.push(f)
	}
	err := p.enc.Encode(f)
	p.mu.Unlock()
	p.flushNanos.Add(time.Since(start).Nanoseconds())
	// Count only frames that actually made it onto the wire: a failed
	// encode (peer gone mid-flush) must not inflate framesSent, or a retry
	// after reconnect would double-count the frame.
	if err == nil {
		p.framesSent.Add(1)
	}
	return err
}

// push appends a copy of f to the resend ring, evicting the oldest frame
// when full. Caller holds p.mu. The copy is shallow: message slices are
// freshly built per send (see Node.Send) and never reused, so sharing them
// with the ring is safe.
func (p *peerConn) push(f *frame) {
	if len(p.ring) == 0 {
		return
	}
	idx := (p.start + p.count) % len(p.ring)
	p.ring[idx] = *f
	if p.count == len(p.ring) {
		p.start = (p.start + 1) % len(p.ring)
	} else {
		p.count++
	}
}

// sever closes the link's current connection (chaos injection), forcing the
// next send or read on it down the organic failure path.
func (p *peerConn) sever() {
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
}

// New creates a node and binds its listener (unless one was supplied).
func New(cfg Config) (*Node, error) {
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Addrs) {
		return nil, fmt.Errorf("cluster: rank %d outside %d addrs", cfg.Rank, len(cfg.Addrs))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	n := &Node{
		cfg:         cfg,
		eos:         map[int][]bsp.BarrierStats{},
		temporalIn:  map[int][]bsp.Message{},
		teos:        map[int][][2]int{},
		resumeIn:    map[int]int{},
		peers:       make([]*peerConn, len(cfg.Addrs)),
		recvFrames:  make([]atomic.Int64, len(cfg.Addrs)),
		recvReaders: make([]atomic.Pointer[countingReader], len(cfg.Addrs)),
		offsetNanos: make([]int64, len(cfg.Addrs)),
		offsetRTT:   make([]int64, len(cfg.Addrs)),
		shards:      map[int]*obs.TraceShard{},
		res:         cfg.Resilience.withDefaults(cfg.Rank),
		maxSeq:      make([]atomic.Int64, len(cfg.Addrs)),
		recvGen:     make([]atomic.Int64, len(cfg.Addrs)),
		downSince:   make([]atomic.Int64, len(cfg.Addrs)),
	}
	n.cond = sync.NewCond(&n.mu)
	if cfg.Listener != nil {
		n.ln = cfg.Listener
	} else {
		ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d listen: %w", cfg.Rank, err)
		}
		n.ln = ln
	}
	return n, nil
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.cfg.Rank }

// NumNodes returns the mesh size.
func (n *Node) NumNodes() int { return len(n.cfg.Addrs) }

// LocalPartitions returns the partition ids Owner assigns to this rank.
func (n *Node) LocalPartitions() []int {
	var out []int
	for p, r := range n.cfg.Owner {
		if int(r) == n.cfg.Rank {
			out = append(out, p)
		}
	}
	return out
}

// Bind attaches the engine that receives injected messages. Must be called
// before Start.
func (n *Node) Bind(e *bsp.Engine) {
	n.mu.Lock()
	n.engine = e
	n.mu.Unlock()
}

// Start connects the full mesh: accepts one inbound connection from every
// peer and dials every peer (with retries until DialTimeout). It returns
// once all 2·(N−1) connections are up.
func (n *Node) Start() error {
	total := len(n.cfg.Addrs)
	if total == 1 {
		return nil // degenerate single-node mesh
	}

	// Accept inbound connections concurrently with dialing out. Without
	// resilience the loop ends once the mesh is complete (total-1 peers);
	// with it the loop stays up for the life of the node so a peer that lost
	// its outgoing connection can re-dial and hand us a replacement.
	acceptErr := make(chan error, 1)
	go func() {
		for accepted := 0; ; {
			conn, err := n.ln.Accept()
			if err != nil {
				if accepted < total-1 {
					acceptErr <- fmt.Errorf("cluster: rank %d accept: %w", n.cfg.Rank, err)
				}
				return
			}
			// Handshake: the dialer announces its rank.
			var rank int
			cr := &countingReader{r: conn}
			dec := gob.NewDecoder(cr)
			if err := dec.Decode(&rank); err != nil {
				if accepted < total-1 {
					acceptErr <- fmt.Errorf("cluster: rank %d handshake: %w", n.cfg.Rank, err)
					return
				}
				conn.Close()
				continue
			}
			var gen int64
			if rank >= 0 && rank < len(n.recvReaders) {
				// Carry the byte count across reconnects so per-peer traffic
				// totals survive a replacement connection.
				if old := n.recvReaders[rank].Load(); old != nil {
					cr.n.Add(old.n.Load())
				}
				n.recvReaders[rank].Store(cr)
				gen = n.recvGen[rank].Add(1)
				n.peerReturned(rank)
				if n.res != nil {
					// Ack half of the resilient handshake: report our receive
					// high-water mark for this rank so its reconnect replays
					// only the frames we actually lack.
					_ = gob.NewEncoder(conn).Encode(n.maxSeq[rank].Load())
				}
			}
			n.readers.Add(1)
			go n.readLoop(rank, dec, conn, gen)
			if accepted++; accepted == total-1 {
				acceptErr <- nil
				if n.res == nil {
					return
				}
			}
		}
	}()

	// Dial every peer, retrying while their listeners come up.
	deadline := time.Now().Add(n.cfg.DialTimeout)
	for r, addr := range n.cfg.Addrs {
		if r == n.cfg.Rank {
			continue
		}
		var conn net.Conn
		var err error
		for {
			conn, err = net.DialTimeout("tcp", addr, time.Second)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("cluster: rank %d dial rank %d (%s): %w", n.cfg.Rank, r, addr, err)
		}
		pc := &peerConn{conn: conn}
		if n.res != nil {
			pc.ring = make([]frame, n.res.ResendBuffer)
		}
		pc.enc = gob.NewEncoder(&countingWriter{w: conn, n: &pc.bytesSent})
		if err := pc.enc.Encode(n.cfg.Rank); err != nil {
			return fmt.Errorf("cluster: rank %d handshake to %d: %w", n.cfg.Rank, r, err)
		}
		if n.res != nil {
			// Resilient handshakes are two-way (see the accept loop): the
			// acceptor acks with its receive high-water mark — zero on a fresh
			// mesh. Reading it here keeps the initial dial on the same wire
			// protocol as reconnect, so Resilience must be enabled (or not)
			// uniformly across the mesh.
			var ack int64
			if err := gob.NewDecoder(conn).Decode(&ack); err != nil {
				return fmt.Errorf("cluster: rank %d handshake ack from %d: %w", n.cfg.Rank, r, err)
			}
		}
		// Published under mu: a peer's clock probe can arrive on the accept
		// side (and want to reply on this connection) before the dial loop
		// finishes.
		n.mu.Lock()
		n.peers[r] = pc
		n.mu.Unlock()
	}
	if err := <-acceptErr; err != nil {
		return err
	}
	// Seed the per-peer clock-offset estimates with a few probe rounds now
	// that both directions of every pair are up (the pong travels on the
	// responder's own outgoing connection). Later rounds piggyback on the
	// temporal exchange, refreshing the estimate once per timestep.
	n.probeOffsets(3)
	return nil
}

// probeOffsets fires `rounds` ping frames at every peer. Replies are
// absorbed asynchronously by readLoop; a short spacing between rounds lets
// queued frames drain so at least one sample sees a quiet wire.
func (n *Node) probeOffsets(rounds int) {
	for i := 0; i < rounds; i++ {
		for r, pc := range n.peers {
			if pc == nil || r == n.cfg.Rank {
				continue
			}
			_ = pc.send(&frame{Kind: kindPing, Rank: int32(n.cfg.Rank), T1: time.Now().UnixNano()}, nil, false)
		}
		if i < rounds-1 {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// absorbPong folds one probe reply into the peer's offset estimate:
// offset = T2 − (T1+T3)/2, the NTP midpoint, with the sample kept only if
// its RTT is at most the best seen (tighter RTT → tighter error bound).
func (n *Node) absorbPong(rank int, t1, t2 int64) {
	t3 := time.Now().UnixNano()
	rtt := t3 - t1
	if rtt < 0 || rank < 0 || rank >= len(n.offsetNanos) {
		return
	}
	off := t2 - (t1+t3)/2
	n.offMu.Lock()
	if n.offsetRTT[rank] == 0 || rtt <= n.offsetRTT[rank] {
		n.offsetRTT[rank] = rtt
		n.offsetNanos[rank] = off
	}
	n.offMu.Unlock()
}

// ClockOffsets returns the current per-rank clock-offset estimates:
// offsets[r] ≈ rank r's clock − this node's clock (self entry is 0).
func (n *Node) ClockOffsets() []time.Duration {
	out := make([]time.Duration, len(n.cfg.Addrs))
	n.offMu.Lock()
	for r, nanos := range n.offsetNanos {
		out[r] = time.Duration(nanos)
	}
	n.offMu.Unlock()
	return out
}

// OffsetToRank0 returns this node's clock minus rank 0's clock — the
// alignment term a trace merge subtracts to map local timestamps onto rank
// 0's timeline. Zero on rank 0 itself.
func (n *Node) OffsetToRank0() time.Duration {
	if n.cfg.Rank == 0 {
		return 0
	}
	n.offMu.Lock()
	off := n.offsetNanos[0]
	n.offMu.Unlock()
	return -time.Duration(off)
}

// Shard snapshots this node's trace shard: its tracer's spans and stats
// stamped with its rank and rank-0 clock alignment. Serves both the wire
// gather (GatherTraces) and the /debug/trace.shard pull endpoint.
func (n *Node) Shard() obs.TraceShard {
	return n.cfg.Tracer.Shard(n.cfg.Rank, n.OffsetToRank0())
}

// GatherTraces collects every rank's trace shard at the gather rank (rank
// 0): non-zero ranks ship their shard over the mesh and return (nil, nil);
// rank 0 blocks until all N−1 peer shards arrive (bounded by timeout,
// default 10s) and returns the full rank-ordered set, ready for
// obs.MergeTraces. Call after the last timestep, before Close.
func (n *Node) GatherTraces(timeout time.Duration) ([]obs.TraceShard, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	own := n.Shard()
	if n.cfg.Rank != 0 {
		if len(n.cfg.Addrs) == 1 {
			return nil, nil
		}
		if err := n.transmit(0, &frame{Kind: kindShard, Rank: int32(n.cfg.Rank), Shard: &own}); err != nil {
			return nil, fmt.Errorf("cluster: rank %d shipping trace shard: %w", n.cfg.Rank, err)
		}
		return nil, nil
	}
	// The wait is purely event-driven: each arriving shard broadcasts the
	// condition (readLoop's kindShard case), and the deadline timer flips
	// timedOut under the same lock and broadcasts once. No polling — a late
	// shard wakes the waiter the moment its frame lands.
	want := len(n.cfg.Addrs) - 1
	timedOut := false
	deadline := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		timedOut = true
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer deadline.Stop()
	n.mu.Lock()
	for len(n.shards) < want && n.err == nil && !timedOut {
		n.cond.Wait()
	}
	got := len(n.shards)
	out := make([]obs.TraceShard, 0, got+1)
	out = append(out, own)
	for r := 1; r < len(n.cfg.Addrs); r++ {
		if sh := n.shards[r]; sh != nil {
			out = append(out, *sh)
		}
	}
	err := n.err
	n.mu.Unlock()
	if got < want {
		if err != nil {
			return out, fmt.Errorf("cluster: trace gather got %d/%d shards: %w", got, want, err)
		}
		return out, fmt.Errorf("cluster: trace gather timed out with %d/%d shards after %v", got, want, timeout)
	}
	return out, nil
}

// readLoop consumes frames from one peer until the connection closes. gen
// identifies which inbound connection from the rank this loop serves, so a
// superseded loop's exit is not mistaken for the live link failing.
func (n *Node) readLoop(rank int, dec *gob.Decoder, conn net.Conn, gen int64) {
	defer n.readers.Done()
	for {
		var f frame
		if err := dec.Decode(&f); err == nil {
			if rank >= 0 && rank < len(n.recvFrames) {
				n.recvFrames[rank].Add(1)
			}
		} else {
			if rank >= 0 && rank < len(n.recvGen) && n.recvGen[rank].Load() != gen {
				return // a replacement connection already took over
			}
			n.readerExit(rank, err)
			return
		}
		if n.cfg.Chaos.ShouldFail(chaos.SiteWireRecv) {
			// Injected receive fault: sever the link mid-stream. The frame in
			// hand decoded cleanly and is still processed; the next Decode
			// fails and the sender must reconnect.
			conn.Close()
		}
		if n.res != nil && f.Seq != 0 && rank >= 0 && rank < len(n.maxSeq) {
			if !advanceSeq(&n.maxSeq[rank], f.Seq) {
				n.dupFrames.Add(1)
				continue // replayed duplicate: already processed
			}
		}
		switch f.Kind {
		case kindData:
			n.recordWireRecv(&f)
			n.mu.Lock()
			e := n.engine
			n.mu.Unlock()
			if e != nil {
				e.Inject(f.Step, f.Msgs)
			}
		case kindEOS:
			n.cfg.Watchdog.Arrive(f.Step, rank)
			n.mu.Lock()
			n.eos[f.Step] = append(n.eos[f.Step], f.Stats)
			n.cond.Broadcast()
			n.mu.Unlock()
		case kindTemporal:
			n.recordWireRecv(&f)
			n.mu.Lock()
			n.temporalIn[f.Step] = append(n.temporalIn[f.Step], f.Msgs...)
			n.mu.Unlock()
		case kindTEOS:
			n.mu.Lock()
			n.teos[f.Step] = append(n.teos[f.Step], [2]int{f.Votes, f.Count})
			n.cond.Broadcast()
			n.mu.Unlock()
		case kindPing:
			// Reply on our own outgoing connection to the origin — every
			// pair of ranks has both directions, so the probe's round trip
			// is origin→here on their conn, here→origin on ours. The probe
			// can outrun this node's dial loop, so read the peer under mu
			// (nil until dialed: the origin's next round will land).
			if r := int(f.Rank); r >= 0 && r < len(n.peers) {
				n.mu.Lock()
				pc := n.peers[r]
				n.mu.Unlock()
				if pc != nil {
					_ = pc.send(&frame{Kind: kindPong, Rank: int32(n.cfg.Rank), T1: f.T1, T2: time.Now().UnixNano()}, nil, false)
				}
			}
		case kindPong:
			n.absorbPong(int(f.Rank), f.T1, f.T2)
		case kindShard:
			n.mu.Lock()
			if f.Shard != nil {
				n.shards[int(f.Rank)] = f.Shard
			}
			n.cond.Broadcast()
			n.mu.Unlock()
		case kindResume:
			n.mu.Lock()
			n.resumeIn[int(f.Rank)] = f.Step
			n.cond.Broadcast()
			n.mu.Unlock()
		case kindNack:
			// The peer lost its inbound connection from us: frames we wrote
			// may be sitting in dead kernel buffers with nothing left to send
			// that would surface the failure. Re-dial and replay the ring
			// unconditionally; the peer's sequence dedup absorbs whatever did
			// arrive.
			n.nacksRecv.Add(1)
			go n.replayToPeer(int(f.Rank))
		case kindBye:
			n.mu.Lock()
			if n.byes == nil {
				n.byes = map[int]bool{}
			}
			n.byes[int(f.Rank)] = true
			n.cond.Broadcast()
			n.mu.Unlock()
		}
	}
}

// recordWireRecv logs the receive side of a stamped data/temporal frame.
// The span's id packs the *sender's* (rank, seq), matching the sender's
// SpanWireSend, and Part holds the sender rank so merged traces can label
// the edge.
func (n *Node) recordWireRecv(f *frame) {
	t := n.cfg.Tracer
	if !t.Active() || f.Seq == 0 {
		return
	}
	t.RecordSpan(obs.SpanWireRecv, f.Rank, f.TS, int32(f.Step),
		obs.PackWireID(int(f.Rank), f.Seq), time.Now(), 0)
}

// ownerOf returns the owning rank of a partition, or -1.
func (n *Node) ownerOf(pid int) int {
	if pid < 0 || pid >= len(n.cfg.Owner) {
		return -1
	}
	return int(n.cfg.Owner[pid])
}

// Send implements bsp.Remote: ship superstep messages to their owners.
func (n *Node) Send(superstep int, msgs []bsp.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	byRank := map[int][]bsp.Message{}
	for _, m := range msgs {
		r := n.ownerOf(m.To.Partition())
		if r < 0 || r == n.cfg.Rank {
			continue // unowned: drop, mirroring the engine's local policy
		}
		byRank[r] = append(byRank[r], m)
	}
	for r, group := range byRank {
		if err := n.sendTraced(r, &frame{Kind: kindData, Step: superstep, Msgs: group}); err != nil {
			return err
		}
	}
	return nil
}

// sendTraced stamps a data/temporal frame with trace context (sender rank,
// current timestep), records the send span, and ships it through transmit.
// The send sequence is stamped inside the connection lock (see
// peerConn.send) so it is read back off the frame after the send.
func (n *Node) sendTraced(r int, f *frame) error {
	f.Rank = int32(n.cfg.Rank)
	f.TS = n.curTS.Load()
	t := n.cfg.Tracer
	if !t.Active() {
		return n.transmit(r, f)
	}
	start := time.Now()
	err := n.transmit(r, f)
	// Part is the destination rank; the id packs our (rank, seq) so the
	// receiver's SpanWireRecv — which packs the same pair from the frame —
	// resolves to this span in a merged trace.
	t.RecordSpan(obs.SpanWireSend, int32(r), f.TS, int32(f.Step),
		obs.PackWireID(n.cfg.Rank, f.Seq), start, time.Since(start))
	return err
}

// Barrier implements bsp.Remote: all-to-all end-of-superstep exchange.
func (n *Node) Barrier(superstep int, local bsp.BarrierStats) (bsp.BarrierStats, error) {
	wd := n.cfg.Watchdog
	wd.StepBegin(int(n.curTS.Load()), superstep)
	wd.Arrive(superstep, n.cfg.Rank)
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		if err := n.transmit(r, &frame{Kind: kindEOS, Step: superstep, Stats: local, Rank: int32(n.cfg.Rank), TS: n.curTS.Load()}); err != nil {
			return bsp.BarrierStats{}, err
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.eos[superstep]) < want && n.err == nil {
		n.cond.Wait()
	}
	// A peer closing its connection after sending everything we need (its
	// run completed) must not fail an exchange whose frames all arrived.
	if len(n.eos[superstep]) < want {
		return bsp.BarrierStats{}, n.err
	}
	global := local
	for _, s := range n.eos[superstep] {
		global.Sent += s.Sent
		global.AllHalted = global.AllHalted && s.AllHalted
		if s.SimMax > global.SimMax {
			global.SimMax = s.SimMax
		}
	}
	delete(n.eos, superstep)
	wd.StepEnd(superstep)
	return global, nil
}

// ExchangeTemporal implements core.Coordinator: between-timesteps routing
// of temporal messages plus global vote/message consensus.
func (n *Node) ExchangeTemporal(timestep int, outgoing []bsp.Message, haltVotes int) ([]bsp.Message, int, int, error) {
	// The exchange runs between timestep t and t+1: from here on, frames
	// (and watchdog warnings) belong to the next timestep. Refresh the
	// clock-offset estimates once per timestep while the wire is otherwise
	// quiet.
	n.curTS.Store(int32(timestep + 1))
	if len(n.cfg.Addrs) > 1 {
		n.probeOffsets(1)
	}
	var local []bsp.Message
	byRank := map[int][]bsp.Message{}
	for _, m := range outgoing {
		r := n.ownerOf(m.To.Partition())
		switch {
		case r == n.cfg.Rank:
			local = append(local, m)
		case r >= 0:
			byRank[r] = append(byRank[r], m)
		}
	}
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		if group := byRank[r]; len(group) > 0 {
			if err := n.sendTraced(r, &frame{Kind: kindTemporal, Step: timestep, Msgs: group}); err != nil {
				return nil, 0, 0, err
			}
		}
		// The TEOS frame follows the temporal frames on the same ordered
		// connection, so its arrival implies theirs.
		if err := n.transmit(r, &frame{Kind: kindTEOS, Step: timestep, Votes: haltVotes, Count: len(outgoing), Rank: int32(n.cfg.Rank), TS: n.curTS.Load()}); err != nil {
			return nil, 0, 0, err
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.teos[timestep]) < want && n.err == nil {
		n.cond.Wait()
	}
	if len(n.teos[timestep]) < want {
		return nil, 0, 0, n.err
	}
	totalVotes, totalMsgs := haltVotes, len(outgoing)
	for _, vc := range n.teos[timestep] {
		totalVotes += vc[0]
		totalMsgs += vc[1]
	}
	incoming := append(local, n.temporalIn[timestep]...)
	delete(n.teos, timestep)
	delete(n.temporalIn, timestep)
	return incoming, totalVotes, totalMsgs, nil
}

// AgreeResume agrees a cluster-wide resume point: every rank proposes the
// latest timestep its own usable checkpoint covers (-1 for none) and all
// ranks return the minimum. The minimum is the newest state *every* rank
// still holds — ranks can be at most one timestep apart at a kill, and each
// retains its previous checkpoint (gofs keeps two), so the faster ranks can
// always step back to it. Call after Start, before core.Run.
func (n *Node) AgreeResume(local int) (int, error) {
	if len(n.cfg.Addrs) == 1 {
		return local, nil
	}
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		if err := n.transmit(r, &frame{Kind: kindResume, Step: local, Rank: int32(n.cfg.Rank)}); err != nil {
			return 0, fmt.Errorf("cluster: rank %d resume proposal to %d: %w", n.cfg.Rank, r, err)
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.resumeIn) < want && n.err == nil {
		n.cond.Wait()
	}
	if len(n.resumeIn) < want {
		return 0, n.err
	}
	agreed := local
	for _, ts := range n.resumeIn {
		if ts < agreed {
			agreed = ts
		}
	}
	return agreed, nil
}

// Quiesce announces that this rank's run is complete and waits — up to
// timeout — until every peer has announced the same. A process that exits
// while a peer is still mid-exchange resets connections carrying its final
// frames (close of a socket with unread inbound data discards buffered
// outbound data at the peer), so multi-process drivers call this before
// tearing down. Best-effort by design: it reports false on timeout or mesh
// error instead of failing a run that already finished.
func (n *Node) Quiesce(timeout time.Duration) bool {
	if len(n.cfg.Addrs) == 1 {
		return true
	}
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		_ = n.transmit(r, &frame{Kind: kindBye, Rank: int32(n.cfg.Rank)})
	}
	timedOut := false
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		timedOut = true
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.byes) < want && n.err == nil && !n.closed && !timedOut {
		n.cond.Wait()
	}
	return len(n.byes) >= want
}

// Close tears the mesh down.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	var first error
	if n.ln != nil {
		if err := n.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, pc := range n.peers {
		if pc == nil {
			continue
		}
		if err := pc.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
