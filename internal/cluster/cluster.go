// Package cluster runs TI-BSP jobs across multiple processes connected by
// TCP, one node per host, turning the single-process simulation into a
// genuinely distributed execution: every node owns a subset of partitions,
// cross-host BSP messages travel as gob-framed TCP traffic, supersteps
// synchronize through an all-to-all barrier protocol, and temporal messages
// are exchanged between timesteps.
//
// A Node implements both bsp.Remote (superstep messaging and barrier) and
// core.Coordinator (temporal exchange), so plugging a node into a core.Job
// is all a host needs:
//
//	node, _ := cluster.New(cluster.Config{Rank: r, Addrs: addrs, Owner: owner})
//	defer node.Close()
//	engine-bound job := &core.Job{
//	    Parts:  localParts,            // only the partitions Owner assigns to r
//	    Remote: node, Coordinator: node,
//	    GlobalSubgraphs: total,
//	    ...
//	}
//	node.Start()                       // connect the mesh
//	core.Run(job)
//
// The barrier protocol is coordinator-free: each node sends an
// end-of-superstep frame carrying its local stats to every peer over the
// same ordered connection as its data frames, so when a node has collected
// all peers' EOS frames it knows every message addressed to it has arrived,
// and every node computes identical global aggregates.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
)

func init() {
	// Base payload types usable over the wire without further registration;
	// algorithm payloads register themselves (see algorithms.init).
	gob.Register(int(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(true)
	gob.Register([]int32(nil))
	gob.Register([]float64(nil))
	gob.Register([]string(nil))
}

// Frame kinds.
const (
	kindData     = 1 // superstep messages
	kindEOS      = 2 // end of superstep + local barrier stats
	kindTemporal = 3 // between-timesteps temporal messages
	kindTEOS     = 4 // end of temporal exchange + votes/message totals
)

// frame is the wire unit. Exactly one payload group is meaningful per kind.
type frame struct {
	Kind  uint8
	Step  int // superstep (data/eos) or timestep (temporal/teos)
	Msgs  []bsp.Message
	Stats bsp.BarrierStats
	Votes int
	Count int
}

// Config describes one node of the mesh.
type Config struct {
	// Rank is this node's index in Addrs.
	Rank int
	// Addrs lists every node's listen address, rank-ordered.
	Addrs []string
	// Listener optionally supplies the pre-bound listener for
	// Addrs[Rank] (tests use ephemeral ports).
	Listener net.Listener
	// Owner maps template partition -> owning rank.
	Owner []int32
	// DialTimeout bounds the connection phase (default 10s).
	DialTimeout time.Duration
}

// Node is one host of a distributed run. It implements bsp.Remote and
// core.Coordinator.
type Node struct {
	cfg Config
	ln  net.Listener

	// peers[r] is the outgoing connection to rank r (nil for self).
	peers []*peerConn

	mu     sync.Mutex
	cond   *sync.Cond
	engine *bsp.Engine
	// eos[s] collects peers' barrier stats for superstep s.
	eos map[int][]bsp.BarrierStats
	// temporalIn[t] collects incoming temporal messages for timestep t.
	temporalIn map[int][]bsp.Message
	// teos[t] collects peers' (votes, msgs) for timestep t.
	teos map[int][][2]int
	err  error

	closed  bool
	readers sync.WaitGroup

	// Inbound wire counters, indexed by peer rank (see wire.go).
	recvFrames  []atomic.Int64
	recvReaders []atomic.Pointer[countingReader]
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	flushNanos atomic.Int64
}

func (p *peerConn) send(f *frame) error {
	start := time.Now()
	p.mu.Lock()
	err := p.enc.Encode(f)
	p.mu.Unlock()
	p.flushNanos.Add(time.Since(start).Nanoseconds())
	p.framesSent.Add(1)
	return err
}

// New creates a node and binds its listener (unless one was supplied).
func New(cfg Config) (*Node, error) {
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Addrs) {
		return nil, fmt.Errorf("cluster: rank %d outside %d addrs", cfg.Rank, len(cfg.Addrs))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	n := &Node{
		cfg:         cfg,
		eos:         map[int][]bsp.BarrierStats{},
		temporalIn:  map[int][]bsp.Message{},
		teos:        map[int][][2]int{},
		peers:       make([]*peerConn, len(cfg.Addrs)),
		recvFrames:  make([]atomic.Int64, len(cfg.Addrs)),
		recvReaders: make([]atomic.Pointer[countingReader], len(cfg.Addrs)),
	}
	n.cond = sync.NewCond(&n.mu)
	if cfg.Listener != nil {
		n.ln = cfg.Listener
	} else {
		ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d listen: %w", cfg.Rank, err)
		}
		n.ln = ln
	}
	return n, nil
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.cfg.Rank }

// NumNodes returns the mesh size.
func (n *Node) NumNodes() int { return len(n.cfg.Addrs) }

// LocalPartitions returns the partition ids Owner assigns to this rank.
func (n *Node) LocalPartitions() []int {
	var out []int
	for p, r := range n.cfg.Owner {
		if int(r) == n.cfg.Rank {
			out = append(out, p)
		}
	}
	return out
}

// Bind attaches the engine that receives injected messages. Must be called
// before Start.
func (n *Node) Bind(e *bsp.Engine) {
	n.mu.Lock()
	n.engine = e
	n.mu.Unlock()
}

// Start connects the full mesh: accepts one inbound connection from every
// peer and dials every peer (with retries until DialTimeout). It returns
// once all 2·(N−1) connections are up.
func (n *Node) Start() error {
	total := len(n.cfg.Addrs)
	if total == 1 {
		return nil // degenerate single-node mesh
	}

	// Accept inbound connections concurrently with dialing out.
	acceptErr := make(chan error, 1)
	go func() {
		for accepted := 0; accepted < total-1; accepted++ {
			conn, err := n.ln.Accept()
			if err != nil {
				acceptErr <- fmt.Errorf("cluster: rank %d accept: %w", n.cfg.Rank, err)
				return
			}
			// Handshake: the dialer announces its rank.
			var rank int
			cr := &countingReader{r: conn}
			dec := gob.NewDecoder(cr)
			if err := dec.Decode(&rank); err != nil {
				acceptErr <- fmt.Errorf("cluster: rank %d handshake: %w", n.cfg.Rank, err)
				return
			}
			if rank >= 0 && rank < len(n.recvReaders) {
				n.recvReaders[rank].Store(cr)
			}
			n.readers.Add(1)
			go n.readLoop(rank, dec, conn)
		}
		acceptErr <- nil
	}()

	// Dial every peer, retrying while their listeners come up.
	deadline := time.Now().Add(n.cfg.DialTimeout)
	for r, addr := range n.cfg.Addrs {
		if r == n.cfg.Rank {
			continue
		}
		var conn net.Conn
		var err error
		for {
			conn, err = net.DialTimeout("tcp", addr, time.Second)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("cluster: rank %d dial rank %d (%s): %w", n.cfg.Rank, r, addr, err)
		}
		pc := &peerConn{conn: conn}
		pc.enc = gob.NewEncoder(&countingWriter{w: conn, n: &pc.bytesSent})
		if err := pc.enc.Encode(n.cfg.Rank); err != nil {
			return fmt.Errorf("cluster: rank %d handshake to %d: %w", n.cfg.Rank, r, err)
		}
		n.peers[r] = pc
	}
	return <-acceptErr
}

// readLoop consumes frames from one peer until the connection closes.
func (n *Node) readLoop(rank int, dec *gob.Decoder, conn net.Conn) {
	defer n.readers.Done()
	for {
		var f frame
		if err := dec.Decode(&f); err == nil {
			if rank >= 0 && rank < len(n.recvFrames) {
				n.recvFrames[rank].Add(1)
			}
		} else {
			n.mu.Lock()
			if !n.closed && n.err == nil {
				n.err = fmt.Errorf("cluster: rank %d reading from %d: %w", n.cfg.Rank, rank, err)
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			return
		}
		switch f.Kind {
		case kindData:
			n.mu.Lock()
			e := n.engine
			n.mu.Unlock()
			if e != nil {
				e.Inject(f.Step, f.Msgs)
			}
		case kindEOS:
			n.mu.Lock()
			n.eos[f.Step] = append(n.eos[f.Step], f.Stats)
			n.cond.Broadcast()
			n.mu.Unlock()
		case kindTemporal:
			n.mu.Lock()
			n.temporalIn[f.Step] = append(n.temporalIn[f.Step], f.Msgs...)
			n.mu.Unlock()
		case kindTEOS:
			n.mu.Lock()
			n.teos[f.Step] = append(n.teos[f.Step], [2]int{f.Votes, f.Count})
			n.cond.Broadcast()
			n.mu.Unlock()
		}
	}
}

// ownerOf returns the owning rank of a partition, or -1.
func (n *Node) ownerOf(pid int) int {
	if pid < 0 || pid >= len(n.cfg.Owner) {
		return -1
	}
	return int(n.cfg.Owner[pid])
}

// Send implements bsp.Remote: ship superstep messages to their owners.
func (n *Node) Send(superstep int, msgs []bsp.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	byRank := map[int][]bsp.Message{}
	for _, m := range msgs {
		r := n.ownerOf(m.To.Partition())
		if r < 0 || r == n.cfg.Rank {
			continue // unowned: drop, mirroring the engine's local policy
		}
		byRank[r] = append(byRank[r], m)
	}
	for r, group := range byRank {
		if err := n.peers[r].send(&frame{Kind: kindData, Step: superstep, Msgs: group}); err != nil {
			return err
		}
	}
	return nil
}

// Barrier implements bsp.Remote: all-to-all end-of-superstep exchange.
func (n *Node) Barrier(superstep int, local bsp.BarrierStats) (bsp.BarrierStats, error) {
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		if err := pc.send(&frame{Kind: kindEOS, Step: superstep, Stats: local}); err != nil {
			return bsp.BarrierStats{}, err
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.eos[superstep]) < want && n.err == nil {
		n.cond.Wait()
	}
	// A peer closing its connection after sending everything we need (its
	// run completed) must not fail an exchange whose frames all arrived.
	if len(n.eos[superstep]) < want {
		return bsp.BarrierStats{}, n.err
	}
	global := local
	for _, s := range n.eos[superstep] {
		global.Sent += s.Sent
		global.AllHalted = global.AllHalted && s.AllHalted
		if s.SimMax > global.SimMax {
			global.SimMax = s.SimMax
		}
	}
	delete(n.eos, superstep)
	return global, nil
}

// ExchangeTemporal implements core.Coordinator: between-timesteps routing
// of temporal messages plus global vote/message consensus.
func (n *Node) ExchangeTemporal(timestep int, outgoing []bsp.Message, haltVotes int) ([]bsp.Message, int, int, error) {
	var local []bsp.Message
	byRank := map[int][]bsp.Message{}
	for _, m := range outgoing {
		r := n.ownerOf(m.To.Partition())
		switch {
		case r == n.cfg.Rank:
			local = append(local, m)
		case r >= 0:
			byRank[r] = append(byRank[r], m)
		}
	}
	for r, pc := range n.peers {
		if pc == nil || r == n.cfg.Rank {
			continue
		}
		if group := byRank[r]; len(group) > 0 {
			if err := pc.send(&frame{Kind: kindTemporal, Step: timestep, Msgs: group}); err != nil {
				return nil, 0, 0, err
			}
		}
		// The TEOS frame follows the temporal frames on the same ordered
		// connection, so its arrival implies theirs.
		if err := pc.send(&frame{Kind: kindTEOS, Step: timestep, Votes: haltVotes, Count: len(outgoing)}); err != nil {
			return nil, 0, 0, err
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	want := len(n.cfg.Addrs) - 1
	for len(n.teos[timestep]) < want && n.err == nil {
		n.cond.Wait()
	}
	if len(n.teos[timestep]) < want {
		return nil, 0, 0, n.err
	}
	totalVotes, totalMsgs := haltVotes, len(outgoing)
	for _, vc := range n.teos[timestep] {
		totalVotes += vc[0]
		totalMsgs += vc[1]
	}
	incoming := append(local, n.temporalIn[timestep]...)
	delete(n.teos, timestep)
	delete(n.temporalIn, timestep)
	return incoming, totalVotes, totalMsgs, nil
}

// Close tears the mesh down.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	var first error
	if n.ln != nil {
		if err := n.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, pc := range n.peers {
		if pc == nil {
			continue
		}
		if err := pc.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
