package cluster

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"tsgraph/internal/chaos"
)

// Resilience configures the transport's fault tolerance. When a Config
// carries a non-nil Resilience, frame sends that fail are retried with
// exponential backoff: the sender re-dials the peer, replays the tail of its
// traffic from a bounded per-peer resend buffer, and the receiver discards
// the replayed frames it already processed (every buffered frame carries a
// logical send sequence; a frame at or below the peer's high-water mark is a
// duplicate). A nil Resilience is the legacy fail-fast transport: the first
// wire error is fatal to the run. Resilience changes the handshake (the
// acceptor acks with its receive high-water mark), so all ranks of a mesh
// must enable it together or not at all.
type Resilience struct {
	// MaxRetries bounds the reconnect attempts per failed send. <=0 means 8.
	MaxRetries int
	// BackoffBase is the first retry delay; successive delays double up to
	// BackoffCap, each randomized by equal jitter (see Backoff). <=0 means
	// 10ms base, 2s cap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// ResendBuffer is the per-peer resend ring depth in frames. A peer that
	// reconnects after falling further behind than this cannot be caught up.
	// <=0 means 512.
	ResendBuffer int
	// RecoveryWindow bounds how long a lost inbound connection may stay down
	// before the run fails: within the window the rank is reported as
	// recovering (its re-dial is expected); past it the loss is fatal. <=0
	// means 30s.
	RecoveryWindow time.Duration
	// JitterSeed seeds the backoff jitter stream. 0 means derive from the
	// node's rank, so simultaneously failing ranks never share a schedule.
	JitterSeed int64
}

// withDefaults returns a copy with zero fields filled in.
func (r *Resilience) withDefaults(rank int) *Resilience {
	if r == nil {
		return nil
	}
	out := *r
	if out.MaxRetries <= 0 {
		out.MaxRetries = 8
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 10 * time.Millisecond
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = 2 * time.Second
	}
	if out.ResendBuffer <= 0 {
		out.ResendBuffer = 512
	}
	if out.RecoveryWindow <= 0 {
		out.RecoveryWindow = 30 * time.Second
	}
	if out.JitterSeed == 0 {
		out.JitterSeed = int64(rank + 1)
	}
	return &out
}

// Backoff produces a retry delay schedule: exponential doubling from Base,
// capped at Cap, with equal jitter — delay n is uniform in [d/2, d] where
// d = min(Cap, Base·2ⁿ) — so ranks that fail together do not re-dial in
// lockstep. Reset restarts the schedule after a success.
type Backoff struct {
	Base, Cap time.Duration

	rng     *rand.Rand
	attempt int
}

// NewBackoff creates a schedule with a seeded jitter stream (deterministic
// for tests; production seeds by rank).
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{Base: base, Cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay in the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	for i := 0; i < b.attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	b.attempt++
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset restarts the schedule, as after a successful send: the next failure
// backs off from Base again rather than from where the last incident left
// off.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// bufferedKind reports whether a frame kind rides the resend buffer. Clock
// probes are the exception: they are periodic and self-correcting, so a lost
// ping or pong costs one sample, not correctness.
func bufferedKind(k uint8) bool { return k != kindPing && k != kindPong }

// chaosSite maps a frame kind to its injection site: barrier traffic (EOS
// and TEOS consensus frames) has its own site so chaos specs can target the
// synchronization protocol separately from bulk data.
func chaosSite(k uint8) string {
	if k == kindEOS || k == kindTEOS {
		return chaos.SiteBarrierEOS
	}
	return chaos.SiteWireSend
}

// transmit ships one frame to rank r. It is the single choke point for all
// reliable frame traffic: it arms the wire.send/barrier.eos failpoints, and
// — when resilience is enabled — retries a failed send by reconnecting with
// backoff and replaying the resend buffer. With resilience disabled it is a
// plain send whose first error is the caller's to surface (fail-fast).
func (n *Node) transmit(r int, f *frame) error {
	pc := n.peers[r]
	if pc == nil {
		return fmt.Errorf("cluster: rank %d has no connection to rank %d", n.cfg.Rank, r)
	}
	if n.cfg.Chaos.ShouldFail(chaosSite(f.Kind)) {
		// An injected send fault severs the link rather than fabricating an
		// error, so the send below fails the way a real network fault does
		// and recovery exercises the genuine reconnect machinery.
		pc.sever()
	}
	var seq *atomic.Int64
	if n.res != nil || n.cfg.Tracer.Active() {
		seq = &n.sendSeq
	}
	err := pc.send(f, seq, n.res != nil)
	if err == nil || n.res == nil {
		return err
	}

	// The frame is already in the resend ring (send buffers before it
	// encodes), so a successful reconnect's replay delivers it — along with
	// every other frame the dead connection may have swallowed.
	bo := NewBackoff(n.res.BackoffBase, n.res.BackoffCap, n.res.JitterSeed+int64(r))
	gen := pc.gen.Load()
	for attempt := 0; attempt < n.res.MaxRetries; attempt++ {
		if n.isClosed() {
			return err
		}
		n.retriesTotal.Add(1)
		time.Sleep(bo.Next())
		if e := n.reconnect(r, pc, gen); e != nil {
			err = e
			gen = pc.gen.Load()
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: rank %d -> %d: %d reconnect attempts exhausted: %w", n.cfg.Rank, r, n.res.MaxRetries, err)
}

// reconnect re-establishes the outgoing connection to rank r and replays
// the unacknowledged tail of the resend ring on it. failedGen is the
// connection generation the caller observed when its send failed: if another
// sender already reconnected (generation moved on), the link is healthy and
// the caller's frame went out with that replay — nothing to do.
//
// The handshake ack is what makes recovery converge under sustained faults:
// the acceptor reports its receive high-water mark, every ring frame at or
// below it is dropped (the receiver provably processed it — frames arrive in
// seq order, so its received set is always a prefix of ours), and the replay
// carries only the missing tail. Without the ack each replay resends the
// whole ring, and at a high per-frame fault rate a long replay almost never
// survives intact, however often it is retried.
func (n *Node) reconnect(r int, pc *peerConn, failedGen int64) error {
	pc.reMu.Lock()
	defer pc.reMu.Unlock()
	if pc.gen.Load() != failedGen {
		return nil
	}
	conn, err := net.DialTimeout("tcp", n.cfg.Addrs[r], 2*time.Second)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(&countingWriter{w: conn, n: &pc.bytesSent})
	if err := enc.Encode(n.cfg.Rank); err != nil {
		conn.Close()
		return err
	}
	var peerMax int64
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := gob.NewDecoder(conn).Decode(&peerMax); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Time{})
	pc.mu.Lock()
	old := pc.conn
	pc.conn, pc.enc = conn, enc
	for pc.count > 0 && pc.ring[pc.start].Seq <= peerMax {
		pc.start = (pc.start + 1) % len(pc.ring)
		pc.count--
	}
	var replayErr error
	for i := 0; i < pc.count; i++ {
		if err := enc.Encode(&pc.ring[(pc.start+i)%len(pc.ring)]); err != nil {
			replayErr = err
			break
		}
		pc.framesSent.Add(1)
		n.replayedFrames.Add(1)
	}
	pc.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if replayErr != nil {
		return replayErr
	}
	pc.gen.Add(1)
	n.reconnectsTotal.Add(1)
	return nil
}

// readerExit handles a read loop's termination. Without resilience the first
// inbound failure is fatal (legacy fail-fast). With it, the peer is expected
// to re-dial: the rank is marked recovering — the watchdog reports it as
// such instead of stalled — and only if no replacement connection lands
// within RecoveryWindow does the loss become fatal.
func (n *Node) readerExit(rank int, err error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if n.res == nil {
		if n.err == nil {
			n.err = fmt.Errorf("cluster: rank %d reading from %d: %w", n.cfg.Rank, rank, err)
		}
		n.cond.Broadcast()
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if rank < 0 || rank >= len(n.downSince) {
		return
	}
	if !n.downSince[rank].CompareAndSwap(0, time.Now().UnixNano()) {
		return // an earlier exit already opened the recovery window
	}
	n.cfg.Watchdog.SetRecovering(rank, true)
	// A write into a connection that died on our end can "succeed" into a
	// dead kernel buffer; if the sender has nothing further to say to us it
	// would never notice. Tell it over our own outgoing link (the directions
	// are independent connections) to re-dial and replay. Best-effort: the
	// recovery window above is the backstop when the peer is truly gone.
	go func() {
		n.nacksSent.Add(1)
		_ = n.transmit(rank, &frame{Kind: kindNack, Rank: int32(n.cfg.Rank)})
	}()
	window := n.res.RecoveryWindow
	time.AfterFunc(window, func() {
		since := n.downSince[rank].Load()
		if since == 0 || time.Since(time.Unix(0, since)) < window {
			return // recovered (or a newer incident owns the window)
		}
		n.mu.Lock()
		if !n.closed && n.err == nil {
			n.err = fmt.Errorf("cluster: rank %d lost connection from rank %d and it did not recover within %v", n.cfg.Rank, rank, window)
		}
		n.cond.Broadcast()
		n.mu.Unlock()
	})
}

// replayToPeer handles an inbound kindNack: rank r lost the connection this
// node sends on, so frames may be lost in transit with no failed write to
// betray them. Re-dial and replay the resend ring, retrying with backoff;
// the receiver's dedup drops everything it already had. A concurrent
// transmit-driven reconnect advances the generation and makes this a no-op.
func (n *Node) replayToPeer(r int) {
	if n.res == nil || r < 0 || r >= len(n.peers) || r == n.cfg.Rank {
		return
	}
	pc := n.peers[r]
	if pc == nil {
		return
	}
	bo := NewBackoff(n.res.BackoffBase, n.res.BackoffCap, n.res.JitterSeed+int64(r)+1)
	gen := pc.gen.Load()
	for attempt := 0; attempt < n.res.MaxRetries; attempt++ {
		if n.isClosed() {
			return
		}
		if err := n.reconnect(r, pc, gen); err == nil {
			return
		}
		gen = pc.gen.Load()
		time.Sleep(bo.Next())
	}
}

// peerReturned clears a rank's recovery state when a replacement inbound
// connection lands, crediting the outage duration to the recovery metrics.
func (n *Node) peerReturned(rank int) {
	if since := n.downSince[rank].Swap(0); since != 0 {
		n.recoveryNanos.Add(time.Now().UnixNano() - since)
		n.recoveries.Add(1)
		n.cfg.Watchdog.SetRecovering(rank, false)
	}
}

// advanceSeq advances a rank's receive high-water mark to seq, reporting
// false when seq is at or below it — a replayed duplicate to discard.
func advanceSeq(max *atomic.Int64, seq int64) bool {
	for {
		cur := max.Load()
		if seq <= cur {
			return false
		}
		if max.CompareAndSwap(cur, seq) {
			return true
		}
	}
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// RecoveryStats reports the transport's fault-handling counters: send
// retries, successful reconnects, inbound duplicate frames discarded by the
// replay dedup, completed recovery incidents, and the total time spent with
// a peer down.
func (n *Node) RecoveryStats() (retries, reconnects, dups, recoveries int64, downTime time.Duration) {
	return n.retriesTotal.Load(), n.reconnectsTotal.Load(), n.dupFrames.Load(),
		n.recoveries.Load(), time.Duration(n.recoveryNanos.Load())
}

// RecoveryCounters is the full fault-handling counter snapshot, including
// the nack/replay traffic that RecoveryStats predates: nacks tell a sender
// its frames may sit in dead kernel buffers, replayed frames are the
// resend-ring traffic that repairs the loss.
type RecoveryCounters struct {
	Retries        int64
	Reconnects     int64
	DupFrames      int64
	ReplayedFrames int64
	NacksSent      int64
	NacksRecv      int64
	Recoveries     int64
	DownTime       time.Duration
}

// Recovery snapshots every fault-handling counter.
func (n *Node) Recovery() RecoveryCounters {
	return RecoveryCounters{
		Retries:        n.retriesTotal.Load(),
		Reconnects:     n.reconnectsTotal.Load(),
		DupFrames:      n.dupFrames.Load(),
		ReplayedFrames: n.replayedFrames.Load(),
		NacksSent:      n.nacksSent.Load(),
		NacksRecv:      n.nacksRecv.Load(),
		Recoveries:     n.recoveries.Load(),
		DownTime:       time.Duration(n.recoveryNanos.Load()),
	}
}
