package subgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

func TestMakeID(t *testing.T) {
	id := MakeID(3, 17)
	if id.Partition() != 3 || id.Index() != 17 {
		t.Fatalf("MakeID round trip: %d/%d", id.Partition(), id.Index())
	}
	if id.String() != "3/17" {
		t.Errorf("String = %q", id.String())
	}
	big := MakeID(123456, 7890123)
	if big.Partition() != 123456 || big.Index() != 7890123 {
		t.Errorf("large ids: %d/%d", big.Partition(), big.Index())
	}
}

func TestIDOrdering(t *testing.T) {
	if MakeID(0, 5) >= MakeID(1, 0) {
		t.Error("IDs should order by partition first")
	}
	if MakeID(2, 1) >= MakeID(2, 2) {
		t.Error("IDs should order by index second")
	}
}

func buildFor(t *testing.T, g *graph.Template, k int) []*PartitionData {
	t.Helper()
	a, err := (partition.Multilevel{Seed: 9}).Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, parts); err != nil {
		t.Fatal(err)
	}
	return parts
}

func TestBuildRoad(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 20, Cols: 20, RemoveFrac: 0.1, Seed: 2})
	parts := buildFor(t, g, 4)
	if len(parts) != 4 {
		t.Fatalf("%d partitions", len(parts))
	}
	totalV, totalE, totalRemote := 0, 0, 0
	for _, pd := range parts {
		totalV += pd.NumVertices()
		totalE += len(pd.Targets)
		totalRemote += len(pd.Remote)
	}
	if totalV != g.NumVertices() {
		t.Errorf("partitions own %d vertices, template has %d", totalV, g.NumVertices())
	}
	if totalE != g.NumEdges() {
		t.Errorf("partitions carry %d edges, template has %d", totalE, g.NumEdges())
	}
	if totalRemote == 0 {
		t.Error("expected some remote edges for k=4")
	}
	// Remote count must match the assignment's edge cut.
	a, _ := (partition.Multilevel{Seed: 9}).Partition(g, 4)
	cut, _ := a.EdgeCut(g)
	if totalRemote != cut {
		t.Errorf("remote edges %d != edge cut %d", totalRemote, cut)
	}
}

func TestBuildSingletonPartition(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 100, M: 2, Seed: 3})
	parts := buildFor(t, g, 1)
	if len(parts) != 1 {
		t.Fatalf("%d partitions", len(parts))
	}
	if len(parts[0].Remote) != 0 {
		t.Errorf("k=1 should have no remote edges, got %d", len(parts[0].Remote))
	}
	// A connected graph in one partition is a single subgraph.
	if len(parts[0].Subgraphs) != 1 {
		t.Errorf("connected graph in 1 partition: %d subgraphs, want 1", len(parts[0].Subgraphs))
	}
}

func TestSubgraphsAreMaximalComponents(t *testing.T) {
	// Two disjoint triangles plus an isolated vertex, all in one partition:
	// expect 3 subgraphs.
	b := graph.NewBuilder("tri2", nil, nil)
	tri := func(base graph.VertexID) {
		b.AddUndirectedEdge(base, base+1)
		b.AddUndirectedEdge(base+1, base+2)
		b.AddUndirectedEdge(base+2, base)
	}
	tri(0)
	tri(10)
	b.AddVertex(99)
	g := b.MustBuild()
	a := &partition.Assignment{K: 1, Parts: make([]int32, g.NumVertices())}
	parts, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, parts); err != nil {
		t.Fatal(err)
	}
	if len(parts[0].Subgraphs) != 3 {
		t.Fatalf("%d subgraphs, want 3", len(parts[0].Subgraphs))
	}
	if TotalSubgraphs(parts) != 3 {
		t.Errorf("TotalSubgraphs = %d", TotalSubgraphs(parts))
	}
}

func TestRemoteEdgeResolution(t *testing.T) {
	// A 4-cycle split across 2 partitions: each partition has one subgraph
	// of 2 vertices and 2 outgoing remote edge slots per direction pair.
	b := graph.NewBuilder("c4", nil, nil)
	b.AddUndirectedEdge(0, 1)
	b.AddUndirectedEdge(1, 2)
	b.AddUndirectedEdge(2, 3)
	b.AddUndirectedEdge(3, 0)
	g := b.MustBuild()
	parts01 := make([]int32, 4)
	parts01[g.VertexIndex(0)] = 0
	parts01[g.VertexIndex(1)] = 0
	parts01[g.VertexIndex(2)] = 1
	parts01[g.VertexIndex(3)] = 1
	a := &partition.Assignment{K: 2, Parts: parts01}
	parts, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, parts); err != nil {
		t.Fatal(err)
	}
	for p, pd := range parts {
		if len(pd.Subgraphs) != 1 {
			t.Fatalf("partition %d: %d subgraphs, want 1", p, len(pd.Subgraphs))
		}
		sg := pd.Subgraphs[0]
		if sg.RemoteOut != 2 {
			t.Errorf("partition %d subgraph remote out = %d, want 2", p, sg.RemoteOut)
		}
		if len(sg.Neighbors) != 1 {
			t.Fatalf("partition %d: %d neighbor subgraphs, want 1", p, len(sg.Neighbors))
		}
		want := MakeID(1-p, 0)
		if sg.Neighbors[0] != want {
			t.Errorf("partition %d neighbor = %v, want %v", p, sg.Neighbors[0], want)
		}
		for _, re := range pd.Remote {
			if int(re.TargetPartition) != 1-p {
				t.Errorf("remote edge from %d targets partition %d", p, re.TargetPartition)
			}
			if re.TargetSubgraph != 0 {
				t.Errorf("remote edge target subgraph = %d", re.TargetSubgraph)
			}
		}
	}
}

func TestEdgeGlobalMapsAttributes(t *testing.T) {
	// EdgeGlobal must point at the template slot with the same head vertex.
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 4})
	parts := buildFor(t, g, 3)
	for _, pd := range parts {
		for lv := 0; lv < pd.NumVertices(); lv++ {
			lo, hi := pd.OutEdges(lv)
			glo, _ := g.OutEdges(int(pd.GlobalIdx[lv]))
			for e := lo; e < hi; e++ {
				ge := int(pd.EdgeGlobal[e])
				if ge < glo {
					t.Fatalf("edge slot mapping out of range")
				}
				var headGlobal int32
				if remote, ri := pd.IsRemote(e); remote {
					headGlobal = pd.Remote[ri].TargetGlobal
				} else {
					headGlobal = pd.GlobalIdx[pd.Targets[e]]
				}
				if int32(g.Target(ge)) != headGlobal {
					t.Fatalf("EdgeGlobal slot %d: template head %d, local head %d", ge, g.Target(ge), headGlobal)
				}
			}
		}
	}
}

// TestBuildInvariantsRandom is a property test: Build+Validate succeed and
// subgraph counts are sane on random graphs with random assignments.
func TestBuildInvariantsRandom(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		k := 1 + int(kRaw)%4
		if k > n {
			k = n
		}
		b := graph.NewBuilder("rand", nil, nil)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < n; e++ {
			b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		a := &partition.Assignment{K: k, Parts: make([]int32, n)}
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		parts, err := Build(g, a)
		if err != nil {
			return false
		}
		if Validate(g, parts) != nil {
			return false
		}
		// Each partition has between 0 and its vertex count subgraphs.
		for _, pd := range parts {
			if len(pd.Subgraphs) > pd.NumVertices() {
				return false
			}
			if pd.NumVertices() > 0 && len(pd.Subgraphs) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadAssignment(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 1})
	bad := &partition.Assignment{K: 2, Parts: make([]int32, 3)} // wrong length
	if _, err := Build(g, bad); err == nil {
		t.Error("Build should reject an assignment of the wrong size")
	}
}
