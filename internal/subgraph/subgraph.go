// Package subgraph derives the unit of computation of the GoFFish model
// from a partitioned template: within each partition, a subgraph is a
// maximal set of vertices weakly connected through local edges (edges whose
// endpoints are both in the partition). Edges that span partitions are
// "remote" edges; subgraphs communicate across them during BSP supersteps.
package subgraph

import (
	"fmt"
	"sort"

	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// ID identifies a subgraph globally as (partition, index-within-partition).
type ID int64

// MakeID packs a partition number and a subgraph index into an ID.
func MakeID(part, idx int) ID { return ID(int64(part)<<32 | int64(uint32(idx))) }

// Partition returns the partition component of the ID.
func (id ID) Partition() int { return int(id >> 32) }

// Index returns the within-partition index component of the ID.
func (id ID) Index() int { return int(int32(id)) }

// String renders the ID as "p/i".
func (id ID) String() string { return fmt.Sprintf("%d/%d", id.Partition(), id.Index()) }

// RemoteEdge describes an edge from a vertex in this partition to a vertex
// owned by another partition.
type RemoteEdge struct {
	// TargetGlobal is the template vertex index of the remote endpoint.
	TargetGlobal int32
	// TargetPartition owns the remote endpoint.
	TargetPartition int32
	// TargetLocal is the endpoint's local index within its partition.
	TargetLocal int32
	// TargetSubgraph is the endpoint's subgraph index within its partition.
	TargetSubgraph int32
}

// PartitionData is a partition's local view: its vertices re-indexed
// densely, a local CSR over all their out-edges, the remote edge table, and
// the discovered subgraphs.
type PartitionData struct {
	// PID is the partition number in [0, K).
	PID int
	// GlobalIdx maps local vertex index -> template vertex index.
	GlobalIdx []int32

	// Local CSR. Targets[e] >= 0 is a local vertex index; Targets[e] < 0
	// encodes remote edge -(Targets[e]+1) in Remote.
	Offsets    []int64
	Targets    []int32
	EdgeGlobal []int32 // local edge slot -> template edge slot
	Remote     []RemoteEdge

	// SubgraphOf maps local vertex index -> subgraph index in Subgraphs.
	SubgraphOf []int32
	Subgraphs  []*Subgraph
}

// NumVertices returns the number of vertices owned by the partition.
func (p *PartitionData) NumVertices() int { return len(p.GlobalIdx) }

// OutEdges returns the half-open local edge-slot range of local vertex v.
func (p *PartitionData) OutEdges(v int) (lo, hi int) {
	return int(p.Offsets[v]), int(p.Offsets[v+1])
}

// IsRemote reports whether local edge slot e crosses partitions; if so, the
// second return is the index into Remote.
func (p *PartitionData) IsRemote(e int) (bool, int) {
	t := p.Targets[e]
	if t < 0 {
		return true, int(-t - 1)
	}
	return false, 0
}

// Subgraph is one weakly connected component of a partition's local-edge
// graph: the unit on which user Compute methods run.
type Subgraph struct {
	// SID is the subgraph's global identity.
	SID ID
	// Part is the owning partition's local view.
	Part *PartitionData
	// Verts lists the partition-local vertex indices in this subgraph, in
	// ascending order.
	Verts []int32
	// RemoteOut counts the subgraph's outgoing remote edges.
	RemoteOut int
	// Neighbors lists the distinct subgraph IDs reachable over one remote
	// edge, in ascending order.
	Neighbors []ID
}

// NumVertices returns the number of vertices in the subgraph.
func (s *Subgraph) NumVertices() int { return len(s.Verts) }

// Build derives all partitions' local views and subgraphs from a template
// and an assignment, and resolves every remote edge to its target subgraph.
// In the distributed setting this resolution is a boundary-exchange round;
// here all partitions are materialized together so it is a direct lookup.
func Build(t *graph.Template, a *partition.Assignment) ([]*PartitionData, error) {
	if err := a.Validate(t); err != nil {
		return nil, err
	}
	n := t.NumVertices()
	k := a.K

	// Dense local indices per partition, in global order.
	localIdx := make([]int32, n)
	counts := make([]int32, k)
	for v := 0; v < n; v++ {
		p := a.Parts[v]
		localIdx[v] = counts[p]
		counts[p]++
	}
	parts := make([]*PartitionData, k)
	for p := 0; p < k; p++ {
		parts[p] = &PartitionData{
			PID:       p,
			GlobalIdx: make([]int32, 0, counts[p]),
		}
	}
	for v := 0; v < n; v++ {
		p := a.Parts[v]
		parts[p].GlobalIdx = append(parts[p].GlobalIdx, int32(v))
	}

	// Local CSR per partition.
	for p := 0; p < k; p++ {
		pd := parts[p]
		nv := pd.NumVertices()
		pd.Offsets = make([]int64, nv+1)
		for lv := 0; lv < nv; lv++ {
			g := int(pd.GlobalIdx[lv])
			lo, hi := t.OutEdges(g)
			pd.Offsets[lv+1] = pd.Offsets[lv] + int64(hi-lo)
		}
		total := pd.Offsets[nv]
		pd.Targets = make([]int32, total)
		pd.EdgeGlobal = make([]int32, total)
		cursor := int64(0)
		for lv := 0; lv < nv; lv++ {
			g := int(pd.GlobalIdx[lv])
			lo, hi := t.OutEdges(g)
			for e := lo; e < hi; e++ {
				w := t.Target(e)
				pd.EdgeGlobal[cursor] = int32(e)
				if a.Parts[w] == int32(p) {
					pd.Targets[cursor] = localIdx[w]
				} else {
					pd.Targets[cursor] = int32(-(len(pd.Remote) + 1))
					pd.Remote = append(pd.Remote, RemoteEdge{
						TargetGlobal:    int32(w),
						TargetPartition: a.Parts[w],
						TargetLocal:     localIdx[w],
						TargetSubgraph:  -1, // resolved below
					})
				}
				cursor++
			}
		}
	}

	// Subgraphs: WCC of local edges per partition (union-find).
	for p := 0; p < k; p++ {
		pd := parts[p]
		nv := pd.NumVertices()
		uf := newUF(nv)
		for lv := 0; lv < nv; lv++ {
			lo, hi := pd.OutEdges(lv)
			for e := lo; e < hi; e++ {
				if pd.Targets[e] >= 0 {
					uf.union(lv, int(pd.Targets[e]))
				}
			}
		}
		// Deterministic subgraph numbering: by smallest local vertex index.
		rootToSG := make(map[int]int32)
		pd.SubgraphOf = make([]int32, nv)
		for lv := 0; lv < nv; lv++ {
			r := uf.find(lv)
			sgi, ok := rootToSG[r]
			if !ok {
				sgi = int32(len(pd.Subgraphs))
				rootToSG[r] = sgi
				pd.Subgraphs = append(pd.Subgraphs, &Subgraph{
					SID:  MakeID(p, int(sgi)),
					Part: pd,
				})
			}
			pd.SubgraphOf[lv] = sgi
			sg := pd.Subgraphs[sgi]
			sg.Verts = append(sg.Verts, int32(lv))
		}
	}

	// Resolve remote-edge target subgraphs and subgraph neighbor lists.
	for p := 0; p < k; p++ {
		pd := parts[p]
		nbrs := make([]map[ID]struct{}, len(pd.Subgraphs))
		for i := range nbrs {
			nbrs[i] = make(map[ID]struct{})
		}
		for lv := 0; lv < pd.NumVertices(); lv++ {
			lo, hi := pd.OutEdges(lv)
			for e := lo; e < hi; e++ {
				remote, ri := pd.IsRemote(e)
				if !remote {
					continue
				}
				re := &pd.Remote[ri]
				tp := parts[re.TargetPartition]
				re.TargetSubgraph = tp.SubgraphOf[re.TargetLocal]
				srcSG := pd.SubgraphOf[lv]
				pd.Subgraphs[srcSG].RemoteOut++
				nbrs[srcSG][MakeID(int(re.TargetPartition), int(re.TargetSubgraph))] = struct{}{}
			}
		}
		for i, set := range nbrs {
			sg := pd.Subgraphs[i]
			for id := range set {
				sg.Neighbors = append(sg.Neighbors, id)
			}
			sort.Slice(sg.Neighbors, func(a, b int) bool { return sg.Neighbors[a] < sg.Neighbors[b] })
		}
	}
	return parts, nil
}

// Validate checks structural invariants across all partitions: disjoint
// covering vertex sets, consistent CSR, resolved remote edges, and that no
// local edge crosses subgraphs within a partition.
func Validate(t *graph.Template, parts []*PartitionData) error {
	seen := make([]bool, t.NumVertices())
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			if seen[g] {
				return fmt.Errorf("subgraph: template vertex %d owned twice", g)
			}
			seen[g] = true
			if pd.SubgraphOf[lv] < 0 || int(pd.SubgraphOf[lv]) >= len(pd.Subgraphs) {
				return fmt.Errorf("subgraph: partition %d vertex %d has bad subgraph %d", pd.PID, lv, pd.SubgraphOf[lv])
			}
		}
		for lv := 0; lv < pd.NumVertices(); lv++ {
			lo, hi := pd.OutEdges(lv)
			g := int(pd.GlobalIdx[lv])
			glo, ghi := t.OutEdges(g)
			if hi-lo != ghi-glo {
				return fmt.Errorf("subgraph: partition %d vertex %d degree %d, template degree %d", pd.PID, lv, hi-lo, ghi-glo)
			}
			for e := lo; e < hi; e++ {
				if remote, ri := pd.IsRemote(e); remote {
					re := pd.Remote[ri]
					if re.TargetSubgraph < 0 {
						return fmt.Errorf("subgraph: partition %d remote edge %d unresolved", pd.PID, ri)
					}
					if int(re.TargetPartition) == pd.PID {
						return fmt.Errorf("subgraph: partition %d remote edge %d targets itself", pd.PID, ri)
					}
				} else {
					// Local edge must stay within one subgraph.
					if pd.SubgraphOf[lv] != pd.SubgraphOf[pd.Targets[e]] {
						return fmt.Errorf("subgraph: partition %d local edge %d->%d crosses subgraphs", pd.PID, lv, pd.Targets[e])
					}
				}
			}
		}
		// Subgraph vertex lists partition the local vertex set.
		count := 0
		for _, sg := range pd.Subgraphs {
			count += len(sg.Verts)
			for i := 1; i < len(sg.Verts); i++ {
				if sg.Verts[i] <= sg.Verts[i-1] {
					return fmt.Errorf("subgraph: %v vertex list not sorted", sg.SID)
				}
			}
		}
		if count != pd.NumVertices() {
			return fmt.Errorf("subgraph: partition %d subgraphs cover %d of %d vertices", pd.PID, count, pd.NumVertices())
		}
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("subgraph: template vertex %d unowned", g)
		}
	}
	return nil
}

// TotalSubgraphs counts subgraphs across all partitions.
func TotalSubgraphs(parts []*PartitionData) int {
	total := 0
	for _, pd := range parts {
		total += len(pd.Subgraphs)
	}
	return total
}

type uf struct {
	parent []int32
}

func newUF(n int) *uf {
	u := &uf{parent: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *uf) find(x int) int {
	for int(u.parent[x]) != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = int(u.parent[x])
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = int32(ra)
		} else {
			u.parent[ra] = int32(rb)
		}
	}
}
