package graph

import (
	"testing"
	"testing/quick"
)

func weightedLine(n int) *Template {
	vs := MustSchema([]string{"load", "tweets"}, []AttrType{TFloat, TStringList})
	es := MustSchema([]string{"latency", "count"}, []AttrType{TFloat, TInt})
	b := NewBuilder("wline", vs, es)
	for i := 0; i < n; i++ {
		b.AddVertex(VertexID(i))
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	return b.MustBuild()
}

func TestNewInstanceShapes(t *testing.T) {
	g := weightedLine(6)
	ins := NewInstance(g, 0, 1000)
	if err := ins.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(ins.VertexCols) != 2 || len(ins.EdgeCols) != 2 {
		t.Fatalf("columns: %d vertex, %d edge", len(ins.VertexCols), len(ins.EdgeCols))
	}
	if got := ins.VertexFloats(g, "load"); len(got) != 6 {
		t.Errorf("load column length %d, want 6", len(got))
	}
	if got := ins.EdgeFloats(g, "latency"); len(got) != 5 {
		t.Errorf("latency column length %d, want 5", len(got))
	}
	if got := ins.EdgeInts(g, "count"); len(got) != 5 {
		t.Errorf("count column length %d, want 5", len(got))
	}
	if got := ins.VertexStringLists(g, "tweets"); len(got) != 6 {
		t.Errorf("tweets column length %d, want 6", len(got))
	}
}

func TestInstanceAccessorTypeMismatch(t *testing.T) {
	g := weightedLine(3)
	ins := NewInstance(g, 0, 0)
	if ins.VertexFloats(g, "tweets") != nil {
		t.Error("VertexFloats on stringlist column should be nil")
	}
	if ins.VertexInts(g, "load") != nil {
		t.Error("VertexInts on float column should be nil")
	}
	if ins.EdgeFloats(g, "count") != nil {
		t.Error("EdgeFloats on int column should be nil")
	}
	if ins.EdgeFloats(g, "nope") != nil {
		t.Error("EdgeFloats on missing column should be nil")
	}
	if ins.EdgeInts(g, "nope") != nil {
		t.Error("EdgeInts on missing column should be nil")
	}
	if ins.VertexStringLists(g, "load") != nil {
		t.Error("VertexStringLists on float column should be nil")
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	g := weightedLine(3)
	ins := NewInstance(g, 0, 0)

	short := NewInstance(g, 0, 0)
	short.VertexCols[0].Floats = short.VertexCols[0].Floats[:1]
	if short.Validate(g) == nil {
		t.Error("short column should fail validation")
	}

	wrongType := NewInstance(g, 0, 0)
	wrongType.VertexCols[0] = NewColumn(TInt, 3)
	if wrongType.Validate(g) == nil {
		t.Error("wrong column type should fail validation")
	}

	missing := &Instance{Timestep: 0}
	if missing.Validate(g) == nil {
		t.Error("missing columns should fail validation")
	}

	badEdge := NewInstance(g, 0, 0)
	badEdge.EdgeCols = badEdge.EdgeCols[:1]
	if badEdge.Validate(g) == nil {
		t.Error("missing edge column should fail validation")
	}
	_ = ins
}

func TestInstanceClone(t *testing.T) {
	g := weightedLine(4)
	ins := NewInstance(g, 2, 200)
	ins.VertexFloats(g, "load")[1] = 3.5
	ins.EdgeFloats(g, "latency")[0] = 9.0
	lists := ins.VertexStringLists(g, "tweets")
	lists[0] = []string{"#a", "#b"}

	cp := ins.Clone()
	if cp.Timestep != 2 || cp.Time != 200 {
		t.Fatalf("clone meta %d/%d", cp.Timestep, cp.Time)
	}
	// Mutating the clone must not affect the original.
	cp.VertexFloats(g, "load")[1] = -1
	cp.VertexStringLists(g, "tweets")[0][0] = "#zzz"
	if ins.VertexFloats(g, "load")[1] != 3.5 {
		t.Error("clone shares float storage with original")
	}
	if ins.VertexStringLists(g, "tweets")[0][0] != "#a" {
		t.Error("clone shares string list storage with original")
	}
}

func TestColumnAllTypes(t *testing.T) {
	for _, typ := range []AttrType{TInt, TFloat, TString, TStringList, TBool} {
		c := NewColumn(typ, 7)
		if c.Len() != 7 {
			t.Errorf("%v column len %d, want 7", typ, c.Len())
		}
		cl := c.Clone()
		if cl.Len() != 7 || cl.Type != typ {
			t.Errorf("%v clone wrong: len %d type %v", typ, cl.Len(), cl.Type)
		}
	}
	var bad Column
	bad.Type = AttrType(44)
	if bad.Len() != 0 {
		t.Error("invalid column type should have length 0")
	}
}

func TestCollectionAppendAndValidate(t *testing.T) {
	g := weightedLine(4)
	c := NewCollection(g, 100, 5)
	for i := 0; i < 3; i++ {
		ins := NewInstance(g, i, c.TimeOf(i))
		if err := c.Append(ins); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if c.NumInstances() != 3 {
		t.Fatalf("NumInstances = %d", c.NumInstances())
	}
	if c.TimeOf(2) != 110 {
		t.Errorf("TimeOf(2) = %d, want 110", c.TimeOf(2))
	}
	if c.Instance(1).Timestep != 1 {
		t.Errorf("Instance(1).Timestep = %d", c.Instance(1).Timestep)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCollectionAppendRejectsBadOrder(t *testing.T) {
	g := weightedLine(2)
	c := NewCollection(g, 0, 10)
	if err := c.Append(NewInstance(g, 1, 10)); err == nil {
		t.Error("should reject out-of-order timestep")
	}
	wrong := NewInstance(g, 0, 999)
	if err := c.Append(wrong); err == nil {
		t.Error("should reject wrong timestamp")
	}
	bad := NewInstance(g, 0, 0)
	bad.VertexCols = nil
	if err := c.Append(bad); err == nil {
		t.Error("should reject invalid instance")
	}
}

// TestCollectionTimeArithmetic is a property test: TimeOf is affine in the
// timestep for any t0/δ.
func TestCollectionTimeArithmetic(t *testing.T) {
	g := lineGraph(2)
	f := func(t0, delta int32, steps uint8) bool {
		c := NewCollection(g, int64(t0), int64(delta))
		i := int(steps % 64)
		return c.TimeOf(i) == int64(t0)+int64(i)*int64(delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceBoolAndStringAccessors(t *testing.T) {
	vs := MustSchema([]string{"alive", "label"}, []AttrType{TBool, TString})
	es := MustSchema([]string{"isExists", "road"}, []AttrType{TBool, TString})
	b := NewBuilder("mixed", vs, es)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	ins := NewInstance(g, 0, 0)

	if got := ins.VertexBools(g, "alive"); len(got) != 2 {
		t.Errorf("VertexBools length %d", len(got))
	}
	if got := ins.VertexStrings(g, "label"); len(got) != 2 {
		t.Errorf("VertexStrings length %d", len(got))
	}
	if got := ins.EdgeBools(g, "isExists"); len(got) != 1 {
		t.Errorf("EdgeBools length %d", len(got))
	}
	if got := ins.EdgeStrings(g, "road"); len(got) != 1 {
		t.Errorf("EdgeStrings length %d", len(got))
	}
	// Type and name mismatches return nil.
	if ins.VertexBools(g, "label") != nil || ins.VertexStrings(g, "alive") != nil {
		t.Error("vertex accessor type confusion")
	}
	if ins.EdgeBools(g, "road") != nil || ins.EdgeStrings(g, "isExists") != nil {
		t.Error("edge accessor type confusion")
	}
	if ins.VertexBools(g, "nope") != nil || ins.EdgeStrings(g, "nope") != nil {
		t.Error("missing attribute should be nil")
	}

	// Round trip through GoFS covers TBool/TString columns elsewhere; here
	// check mutation visibility.
	ins.EdgeBools(g, "isExists")[0] = true
	if !ins.EdgeCols[g.EdgeSchema().Index("isExists")].Bools[0] {
		t.Error("accessor does not alias storage")
	}
}
