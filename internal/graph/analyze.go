package graph

// Stats summarizes structural properties of a template, mirroring the
// dataset table in §IV-A of the paper.
type Stats struct {
	Name          string
	Vertices      int
	Edges         int // directed edge slots
	MinDegree     int
	MaxDegree     int
	AvgDegree     float64
	DiameterLB    int // lower bound from double-sweep BFS
	LargestWCC    int // vertices in the largest weakly connected component
	NumWCCs       int
	SelfLoops     int
	IsolatedVerts int
}

// ComputeStats derives Stats for a template. Diameter is estimated with a
// multi-round double-sweep BFS over the undirected view, which is exact for
// trees and a tight lower bound in practice; on graphs the size of the
// paper's datasets an exact diameter is infeasible, and the paper itself
// quotes SNAP's estimates.
func ComputeStats(t *Template, sweeps int) Stats {
	s := Stats{Name: t.Name, Vertices: t.NumVertices(), Edges: t.NumEdges()}
	n := t.NumVertices()
	if n == 0 {
		return s
	}
	s.MinDegree = t.Degree(0)
	for i := 0; i < n; i++ {
		d := t.Degree(i)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		lo, hi := t.OutEdges(i)
		for e := lo; e < hi; e++ {
			if t.Target(e) == i {
				s.SelfLoops++
			}
		}
	}
	s.AvgDegree = float64(t.NumEdges()) / float64(n)

	rev := reverseAdjacency(t)
	for i := 0; i < n; i++ {
		if t.Degree(i) == 0 && rev.offsets[i+1] == rev.offsets[i] {
			s.IsolatedVerts++
		}
	}
	comp, sizes := weakComponents(t, rev)
	s.NumWCCs = len(sizes)
	largest := 0
	for c, sz := range sizes {
		if sz > sizes[largest] {
			largest = c
		}
	}
	s.LargestWCC = sizes[largest]

	// Double sweep from a vertex in the largest WCC, repeated.
	start := -1
	for i := 0; i < n; i++ {
		if comp[i] == int32(largest) {
			start = i
			break
		}
	}
	if start >= 0 {
		if sweeps <= 0 {
			sweeps = 2
		}
		dist := make([]int32, n)
		cur := start
		for k := 0; k < sweeps; k++ {
			far, d := bfsFarthest(t, rev, cur, dist)
			if int(d) > s.DiameterLB {
				s.DiameterLB = int(d)
			}
			cur = far
		}
	}
	return s
}

// revAdj is the reverse CSR (in-edges) of a template, used to traverse the
// undirected view.
type revAdj struct {
	offsets []int64
	targets []int32
}

// reverseAdjacency builds the reverse CSR of a template.
func reverseAdjacency(t *Template) (rev revAdj) {
	n := t.NumVertices()
	m := t.NumEdges()
	rev.offsets = make([]int64, n+1)
	rev.targets = make([]int32, m)
	for e := 0; e < m; e++ {
		rev.offsets[t.Target(e)+1]++
	}
	for i := 0; i < n; i++ {
		rev.offsets[i+1] += rev.offsets[i]
	}
	cursor := make([]int64, n)
	copy(cursor, rev.offsets[:n])
	for i := 0; i < n; i++ {
		lo, hi := t.OutEdges(i)
		for e := lo; e < hi; e++ {
			v := t.Target(e)
			rev.targets[cursor[v]] = int32(i)
			cursor[v]++
		}
	}
	return rev
}

// weakComponents labels each vertex with its weakly-connected component and
// returns per-component sizes.
func weakComponents(t *Template, rev revAdj) (comp []int32, sizes []int) {
	n := t.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		c := int32(len(sizes))
		sizes = append(sizes, 0)
		comp[i] = c
		queue = append(queue[:0], int32(i))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			sizes[c]++
			lo, hi := t.OutEdges(int(u))
			for e := lo; e < hi; e++ {
				v := t.Target(e)
				if comp[v] < 0 {
					comp[v] = c
					queue = append(queue, int32(v))
				}
			}
			rlo, rhi := rev.offsets[u], rev.offsets[u+1]
			for e := rlo; e < rhi; e++ {
				v := rev.targets[e]
				if comp[v] < 0 {
					comp[v] = c
					queue = append(queue, v)
				}
			}
		}
	}
	return comp, sizes
}

// bfsFarthest runs an undirected BFS from src, reusing dist as scratch, and
// returns the farthest reached vertex and its distance.
func bfsFarthest(t *Template, rev revAdj, src int, dist []int32) (far int, d int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	next := make([]int32, 0, 1024)
	far, d = src, 0
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			du := dist[u]
			lo, hi := t.OutEdges(int(u))
			for e := lo; e < hi; e++ {
				v := t.Target(e)
				if dist[v] < 0 {
					dist[v] = du + 1
					next = append(next, int32(v))
					if du+1 > d {
						d, far = du+1, v
					}
				}
			}
			rlo, rhi := rev.offsets[u], rev.offsets[u+1]
			for e := rlo; e < rhi; e++ {
				v := rev.targets[e]
				if dist[v] < 0 {
					dist[v] = du + 1
					next = append(next, int32(v))
					if du+1 > d {
						d, far = du+1, int(v)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	return far, d
}

// BFSLevels runs a directed BFS from src over the template and returns the
// level of every vertex (-1 if unreachable). Used by reference
// implementations in tests.
func BFSLevels(t *Template, src int) []int32 {
	n := t.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	var next []int32
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			lo, hi := t.OutEdges(int(u))
			for e := lo; e < hi; e++ {
				v := t.Target(e)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					next = append(next, int32(v))
				}
			}
		}
		frontier, next = next, frontier
	}
	return dist
}
