package graph

import (
	"fmt"
	"sort"
)

// VertexID is the external, application-assigned identifier of a vertex.
// It is stable across all instances of a collection.
type VertexID int64

// EdgeID is the external identifier of an edge, stable across instances.
type EdgeID int64

// Template is the time-invariant part of a time-series graph: the directed
// topology plus the vertex and edge attribute schemas. Topology is stored in
// compressed sparse row (CSR) form over dense internal indices; external ids
// map to internal indices via Index lookups.
//
// Undirected graphs are represented by storing each undirected edge as two
// directed edges; builders may assign both directions the same EdgeID so that
// instance values are shared, or distinct EdgeIDs for per-direction values.
type Template struct {
	// Name identifies the template (e.g. "CARN").
	Name string

	vertexIDs []VertexID       // internal index -> external id
	vertexIdx map[VertexID]int // external id -> internal index

	// CSR topology.
	offsets []int64 // len = NumVertices+1
	targets []int32 // len = NumEdges; neighbor internal vertex index
	edgeIDs []EdgeID

	vattrs *Schema
	eattrs *Schema
}

// NumVertices returns |V̂|.
func (t *Template) NumVertices() int { return len(t.vertexIDs) }

// NumEdges returns |Ê| (directed edge slots).
func (t *Template) NumEdges() int { return len(t.targets) }

// VertexSchema returns the vertex attribute schema.
func (t *Template) VertexSchema() *Schema { return t.vattrs }

// EdgeSchema returns the edge attribute schema.
func (t *Template) EdgeSchema() *Schema { return t.eattrs }

// VertexID returns the external id of the vertex with internal index i.
func (t *Template) VertexID(i int) VertexID { return t.vertexIDs[i] }

// VertexIndex returns the internal index for an external vertex id, or -1.
func (t *Template) VertexIndex(id VertexID) int {
	i, ok := t.vertexIdx[id]
	if !ok {
		return -1
	}
	return i
}

// EdgeID returns the external id of edge slot e.
func (t *Template) EdgeID(e int) EdgeID { return t.edgeIDs[e] }

// Degree returns the out-degree of vertex i.
func (t *Template) Degree(i int) int {
	return int(t.offsets[i+1] - t.offsets[i])
}

// OutEdges returns the half-open edge-slot range [lo, hi) of vertex i. Edge
// slot e in that range points at vertex Target(e).
func (t *Template) OutEdges(i int) (lo, hi int) {
	return int(t.offsets[i]), int(t.offsets[i+1])
}

// Target returns the internal index of the head vertex of edge slot e.
func (t *Template) Target(e int) int { return int(t.targets[e]) }

// Neighbors appends the internal indices of i's out-neighbors to dst and
// returns the extended slice.
func (t *Template) Neighbors(i int, dst []int32) []int32 {
	lo, hi := t.OutEdges(i)
	return append(dst, t.targets[lo:hi]...)
}

// EdgeBetween returns the first edge slot from u to v, or -1 if none exists.
func (t *Template) EdgeBetween(u, v int) int {
	lo, hi := t.OutEdges(u)
	for e := lo; e < hi; e++ {
		if int(t.targets[e]) == v {
			return e
		}
	}
	return -1
}

// Validate checks structural invariants of the template: monotone offsets,
// in-range targets, and a consistent id index. It is O(V+E).
func (t *Template) Validate() error {
	n := t.NumVertices()
	if len(t.offsets) != n+1 {
		return fmt.Errorf("graph: template %q: offsets length %d, want %d", t.Name, len(t.offsets), n+1)
	}
	if t.offsets[0] != 0 {
		return fmt.Errorf("graph: template %q: offsets[0] = %d, want 0", t.Name, t.offsets[0])
	}
	for i := 0; i < n; i++ {
		if t.offsets[i+1] < t.offsets[i] {
			return fmt.Errorf("graph: template %q: offsets not monotone at %d", t.Name, i)
		}
	}
	if int(t.offsets[n]) != len(t.targets) {
		return fmt.Errorf("graph: template %q: offsets[n]=%d but %d targets", t.Name, t.offsets[n], len(t.targets))
	}
	if len(t.edgeIDs) != len(t.targets) {
		return fmt.Errorf("graph: template %q: %d edge ids but %d targets", t.Name, len(t.edgeIDs), len(t.targets))
	}
	for e, tgt := range t.targets {
		if int(tgt) < 0 || int(tgt) >= n {
			return fmt.Errorf("graph: template %q: edge %d target %d out of range [0,%d)", t.Name, e, tgt, n)
		}
	}
	if len(t.vertexIdx) != n {
		return fmt.Errorf("graph: template %q: id index has %d entries, want %d", t.Name, len(t.vertexIdx), n)
	}
	for i, id := range t.vertexIDs {
		if got, ok := t.vertexIdx[id]; !ok || got != i {
			return fmt.Errorf("graph: template %q: id index inconsistent for vertex %d (id %d)", t.Name, i, id)
		}
	}
	return nil
}

// Builder incrementally assembles a Template from (possibly unsorted)
// vertex and edge declarations.
type Builder struct {
	name    string
	vattrs  *Schema
	eattrs  *Schema
	ids     []VertexID
	idx     map[VertexID]int
	srcs    []int32
	dsts    []int32
	edgeIDs []EdgeID
	autoEID EdgeID
	err     error
}

// NewBuilder creates a builder for a template with the given name and
// schemas. Nil schemas are treated as empty.
func NewBuilder(name string, vattrs, eattrs *Schema) *Builder {
	if vattrs == nil {
		vattrs = EmptySchema()
	}
	if eattrs == nil {
		eattrs = EmptySchema()
	}
	return &Builder{
		name:   name,
		vattrs: vattrs,
		eattrs: eattrs,
		idx:    make(map[VertexID]int),
	}
}

// AddVertex declares a vertex with an external id. Re-adding an existing id
// is a no-op. Returns the internal index.
func (b *Builder) AddVertex(id VertexID) int {
	if i, ok := b.idx[id]; ok {
		return i
	}
	i := len(b.ids)
	b.ids = append(b.ids, id)
	b.idx[id] = i
	return i
}

// AddEdge declares a directed edge between two external vertex ids, creating
// the endpoints if necessary, with an auto-assigned EdgeID. Returns the
// assigned EdgeID.
func (b *Builder) AddEdge(src, dst VertexID) EdgeID {
	id := b.autoEID
	b.autoEID++
	b.AddEdgeWithID(src, dst, id)
	return id
}

// AddEdgeWithID declares a directed edge with an explicit EdgeID. Two edge
// slots may share an EdgeID (the undirected-edge convention).
func (b *Builder) AddEdgeWithID(src, dst VertexID, id EdgeID) {
	si := b.AddVertex(src)
	di := b.AddVertex(dst)
	b.srcs = append(b.srcs, int32(si))
	b.dsts = append(b.dsts, int32(di))
	b.edgeIDs = append(b.edgeIDs, id)
	if id >= b.autoEID {
		b.autoEID = id + 1
	}
}

// AddUndirectedEdge declares both directions with a shared auto EdgeID.
func (b *Builder) AddUndirectedEdge(u, v VertexID) EdgeID {
	id := b.autoEID
	b.autoEID++
	b.AddEdgeWithID(u, v, id)
	b.AddEdgeWithID(v, u, id)
	return id
}

// NumVertices returns the number of vertices declared so far.
func (b *Builder) NumVertices() int { return len(b.ids) }

// NumEdges returns the number of directed edge slots declared so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// Build finalizes the CSR template. The builder remains usable but further
// mutation does not affect the returned template.
func (b *Builder) Build() (*Template, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.ids)
	m := len(b.srcs)
	t := &Template{
		Name:      b.name,
		vertexIDs: append([]VertexID(nil), b.ids...),
		vertexIdx: make(map[VertexID]int, n),
		offsets:   make([]int64, n+1),
		targets:   make([]int32, m),
		edgeIDs:   make([]EdgeID, m),
		vattrs:    b.vattrs,
		eattrs:    b.eattrs,
	}
	for i, id := range t.vertexIDs {
		t.vertexIdx[id] = i
	}
	// Counting sort edges by source into CSR.
	for _, s := range b.srcs {
		t.offsets[s+1]++
	}
	for i := 0; i < n; i++ {
		t.offsets[i+1] += t.offsets[i]
	}
	cursor := make([]int64, n)
	copy(cursor, t.offsets[:n])
	for e := 0; e < m; e++ {
		s := b.srcs[e]
		pos := cursor[s]
		cursor[s]++
		t.targets[pos] = b.dsts[e]
		t.edgeIDs[pos] = b.edgeIDs[e]
	}
	// Sort each adjacency run by target for deterministic iteration.
	for i := 0; i < n; i++ {
		lo, hi := t.offsets[i], t.offsets[i+1]
		run := adjRun{t.targets[lo:hi], t.edgeIDs[lo:hi]}
		sort.Sort(run)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Template {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

type adjRun struct {
	targets []int32
	ids     []EdgeID
}

func (r adjRun) Len() int { return len(r.targets) }
func (r adjRun) Less(i, j int) bool {
	if r.targets[i] != r.targets[j] {
		return r.targets[i] < r.targets[j]
	}
	return r.ids[i] < r.ids[j]
}
func (r adjRun) Swap(i, j int) {
	r.targets[i], r.targets[j] = r.targets[j], r.targets[i]
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
}

// RawCSR exposes the internal CSR arrays for zero-copy consumers
// (partitioner, storage). Callers must not mutate the returned slices.
func (t *Template) RawCSR() (offsets []int64, targets []int32, edgeIDs []EdgeID) {
	return t.offsets, t.targets, t.edgeIDs
}

// FromCSR constructs a template directly from CSR arrays. The arrays are
// retained without copying. Intended for storage loaders; Validate is run.
func FromCSR(name string, vertexIDs []VertexID, offsets []int64, targets []int32, edgeIDs []EdgeID, vattrs, eattrs *Schema) (*Template, error) {
	if vattrs == nil {
		vattrs = EmptySchema()
	}
	if eattrs == nil {
		eattrs = EmptySchema()
	}
	t := &Template{
		Name:      name,
		vertexIDs: vertexIDs,
		vertexIdx: make(map[VertexID]int, len(vertexIDs)),
		offsets:   offsets,
		targets:   targets,
		edgeIDs:   edgeIDs,
		vattrs:    vattrs,
		eattrs:    eattrs,
	}
	for i, id := range vertexIDs {
		t.vertexIdx[id] = i
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
