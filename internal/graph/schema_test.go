package graph

import (
	"strings"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema([]string{"a", "b"}, []AttrType{TInt, TFloat})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Name(0) != "a" || s.Type(0) != TInt {
		t.Errorf("attr 0 = %q/%v, want a/int", s.Name(0), s.Type(0))
	}
	if s.Index("b") != 1 {
		t.Errorf("Index(b) = %d, want 1", s.Index("b"))
	}
	if s.Index("zzz") != -1 {
		t.Errorf("Index(zzz) = %d, want -1", s.Index("zzz"))
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name  string
		names []string
		types []AttrType
		want  string
	}{
		{"mismatched lengths", []string{"a"}, nil, "names but"},
		{"empty name", []string{""}, []AttrType{TInt}, "empty name"},
		{"duplicate", []string{"a", "a"}, []AttrType{TInt, TInt}, "duplicate"},
		{"bad type", []string{"a"}, []AttrType{AttrType(99)}, "invalid type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.names, c.types)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema([]string{"x", "y"}, []AttrType{TInt, TString})
	b := MustSchema([]string{"x", "y"}, []AttrType{TInt, TString})
	c := MustSchema([]string{"x", "y"}, []AttrType{TInt, TFloat})
	d := MustSchema([]string{"x"}, []AttrType{TInt})
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should not equal c (type differs)")
	}
	if a.Equal(d) {
		t.Error("a should not equal d (length differs)")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema([]string{"lat", "tags"}, []AttrType{TFloat, TStringList})
	got := s.String()
	if got != "(lat:float, tags:stringlist)" {
		t.Errorf("String() = %q", got)
	}
	if EmptySchema().String() != "()" {
		t.Errorf("empty schema String() = %q", EmptySchema().String())
	}
}

func TestAttrTypeString(t *testing.T) {
	want := map[AttrType]string{
		TInt: "int", TFloat: "float", TString: "string",
		TStringList: "stringlist", TBool: "bool",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(typ), typ.String(), s)
		}
		if !typ.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if AttrType(200).Valid() {
		t.Error("AttrType(200) should be invalid")
	}
	if !strings.Contains(AttrType(200).String(), "200") {
		t.Errorf("unknown type String() = %q", AttrType(200).String())
	}
}

func TestSchemaSortedNames(t *testing.T) {
	s := MustSchema([]string{"z", "a", "m"}, []AttrType{TInt, TInt, TInt})
	got := s.SortedNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("SortedNames = %v", got)
	}
	// Original order must be preserved.
	if s.Name(0) != "z" {
		t.Errorf("sorting mutated schema: Name(0)=%q", s.Name(0))
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid input")
		}
	}()
	MustSchema([]string{"a", "a"}, []AttrType{TInt, TInt})
}
