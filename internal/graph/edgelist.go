package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EdgeListOptions controls edge-list parsing.
type EdgeListOptions struct {
	// Undirected adds both directions for every line (with a shared
	// EdgeID), as needed for SNAP's roadNet-CA.
	Undirected bool
	// Comment is the comment-line prefix (default "#", SNAP's convention).
	Comment string
	// Name names the resulting template.
	Name string
	// VertexSchema and EdgeSchema attach attribute schemas (nil = none).
	VertexSchema, EdgeSchema *Schema
	// MaxEdges aborts after this many lines (0 = unlimited), a guard for
	// accidentally huge files.
	MaxEdges int
}

// ReadEdgeList parses the whitespace-separated "src dst" format used by the
// SNAP datasets the paper evaluates on (roadNet-CA, wiki-Talk) and builds a
// template. Lines starting with the comment prefix are skipped.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*Template, error) {
	comment := opts.Comment
	if comment == "" {
		comment = "#"
	}
	name := opts.Name
	if name == "" {
		name = "edgelist"
	}
	b := NewBuilder(name, opts.VertexSchema, opts.EdgeSchema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	edges := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, comment) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		if opts.Undirected {
			b.AddUndirectedEdge(VertexID(src), VertexID(dst))
		} else {
			b.AddEdge(VertexID(src), VertexID(dst))
		}
		edges++
		if opts.MaxEdges > 0 && edges >= opts.MaxEdges {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// WriteEdgeList emits a template in SNAP edge-list form, one directed edge
// slot per line, with a header comment. Undirected templates (two slots per
// EdgeID) emit each direction, matching how SNAP distributes road networks.
func WriteEdgeList(w io.Writer, t *Template) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n# Nodes: %d Edges: %d\n# FromNodeId\tToNodeId\n",
		t.Name, t.NumVertices(), t.NumEdges())
	for u := 0; u < t.NumVertices(); u++ {
		lo, hi := t.OutEdges(u)
		for e := lo; e < hi; e++ {
			fmt.Fprintf(bw, "%d\t%d\n", t.VertexID(u), t.VertexID(t.Target(e)))
		}
	}
	return bw.Flush()
}
