package graph

import "math"

// Delta summarizes how one instance differs from its predecessor: the
// template vertex indices and edge slots whose attribute values changed
// between Timestep-1 and Timestep. It is the contract between the delta
// storage format and the incremental TI-BSP scheduler: a subgraph none of
// whose vertices or edges appear here saw nothing change and can seed the
// new timestep from its converged state.
//
// A nil *Delta means "unknown" — callers must assume everything changed.
// A non-nil Delta with empty slices means "provably nothing changed".
type Delta struct {
	// Timestep is the instance the delta leads to.
	Timestep int
	// Verts lists changed template vertex indices, ascending.
	Verts []int32
	// Edges lists changed template edge slots, ascending.
	Edges []int32
}

// equalValue reports value equality for one slot of two same-typed columns.
// Floats compare by bit pattern (NaN-safe: a NaN that stays put is not a
// change, which keeps diff∘patch idempotent).
func equalValue(a, b *Column, i int) bool {
	switch a.Type {
	case TInt:
		return a.Ints[i] == b.Ints[i]
	case TFloat:
		return math.Float64bits(a.Floats[i]) == math.Float64bits(b.Floats[i])
	case TString:
		return a.Strings[i] == b.Strings[i]
	case TStringList:
		la, lb := a.StringLists[i], b.StringLists[i]
		if len(la) != len(lb) {
			return false
		}
		for j := range la {
			if la[j] != lb[j] {
				return false
			}
		}
		return true
	case TBool:
		return a.Bools[i] == b.Bools[i]
	default:
		return false
	}
}

// markChanged sets dirty[i] for every index whose value differs between the
// matching column pairs of prev and cur.
func markChanged(prev, cur []Column, dirty []bool) {
	for ci := range cur {
		a, b := &prev[ci], &cur[ci]
		for i := range dirty {
			if !dirty[i] && !equalValue(a, b, i) {
				dirty[i] = true
			}
		}
	}
}

// MarkChanged records into vDirty/eDirty which template vertices and edge
// slots changed between two consecutive instances. The slices must be sized
// to the template's vertex and edge counts; existing true entries are kept,
// so callers can accumulate across sources.
func MarkChanged(prev, cur *Instance, vDirty, eDirty []bool) {
	markChanged(prev.VertexCols, cur.VertexCols, vDirty)
	markChanged(prev.EdgeCols, cur.EdgeCols, eDirty)
}

// DiffInstances computes the delta between two consecutive instances of the
// same template.
func DiffInstances(prev, cur *Instance) *Delta {
	nv, ne := 0, 0
	if len(cur.VertexCols) > 0 {
		nv = cur.VertexCols[0].Len()
	}
	if len(cur.EdgeCols) > 0 {
		ne = cur.EdgeCols[0].Len()
	}
	vDirty := make([]bool, nv)
	eDirty := make([]bool, ne)
	MarkChanged(prev, cur, vDirty, eDirty)
	d := &Delta{Timestep: cur.Timestep}
	for i, set := range vDirty {
		if set {
			d.Verts = append(d.Verts, int32(i))
		}
	}
	for i, set := range eDirty {
		if set {
			d.Edges = append(d.Edges, int32(i))
		}
	}
	return d
}
