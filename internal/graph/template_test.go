package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1.
func lineGraph(n int) *Template {
	b := NewBuilder("line", nil, nil)
	for i := 0; i < n; i++ {
		b.AddVertex(VertexID(i))
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	return b.MustBuild()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("g", nil, nil)
	b.AddEdge(10, 20)
	b.AddEdge(10, 30)
	b.AddEdge(20, 30)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges; want 3, 3", g.NumVertices(), g.NumEdges())
	}
	v10 := g.VertexIndex(10)
	if v10 < 0 {
		t.Fatal("vertex 10 not found")
	}
	if g.Degree(v10) != 2 {
		t.Errorf("degree(10) = %d, want 2", g.Degree(v10))
	}
	if g.VertexIndex(999) != -1 {
		t.Error("VertexIndex(999) should be -1")
	}
	lo, hi := g.OutEdges(v10)
	if hi-lo != 2 {
		t.Fatalf("out edge range size %d, want 2", hi-lo)
	}
	// Targets sorted by internal index; 20 was added before 30 so has
	// smaller index.
	if g.VertexID(g.Target(lo)) != 20 || g.VertexID(g.Target(lo+1)) != 30 {
		t.Errorf("neighbors of 10: %d, %d; want 20, 30",
			g.VertexID(g.Target(lo)), g.VertexID(g.Target(lo+1)))
	}
}

func TestBuilderDuplicateVertex(t *testing.T) {
	b := NewBuilder("g", nil, nil)
	i1 := b.AddVertex(5)
	i2 := b.AddVertex(5)
	if i1 != i2 {
		t.Errorf("duplicate AddVertex returned %d then %d", i1, i2)
	}
	if b.NumVertices() != 1 {
		t.Errorf("NumVertices = %d, want 1", b.NumVertices())
	}
}

func TestUndirectedEdgeSharesID(t *testing.T) {
	b := NewBuilder("g", nil, nil)
	id := b.AddUndirectedEdge(1, 2)
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.EdgeID(0) != id || g.EdgeID(1) != id {
		t.Errorf("edge ids %d, %d; want both %d", g.EdgeID(0), g.EdgeID(1), id)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := lineGraph(4)
	v0, v1, v2 := g.VertexIndex(0), g.VertexIndex(1), g.VertexIndex(2)
	if e := g.EdgeBetween(v0, v1); e < 0 {
		t.Error("edge 0->1 not found")
	}
	if e := g.EdgeBetween(v1, v0); e != -1 {
		t.Errorf("edge 1->0 should not exist, got slot %d", e)
	}
	if e := g.EdgeBetween(v0, v2); e != -1 {
		t.Errorf("edge 0->2 should not exist, got slot %d", e)
	}
}

func TestNeighbors(t *testing.T) {
	b := NewBuilder("g", nil, nil)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.MustBuild()
	nbrs := g.Neighbors(g.VertexIndex(0), nil)
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(nbrs))
	}
}

func TestEmptyTemplate(t *testing.T) {
	g := NewBuilder("empty", nil, nil).MustBuild()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty template has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := ComputeStats(g, 2)
	if s.Vertices != 0 {
		t.Errorf("stats on empty graph: %+v", s)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	g := lineGraph(10)
	off, tgt, eids := g.RawCSR()
	ids := make([]VertexID, g.NumVertices())
	for i := range ids {
		ids[i] = g.VertexID(i)
	}
	g2, err := FromCSR("copy", ids, off, tgt, eids, g.VertexSchema(), g.EdgeSchema())
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed cardinality")
	}
	for i := 0; i < g.NumVertices(); i++ {
		if g.Degree(i) != g2.Degree(i) {
			t.Fatalf("degree mismatch at %d", i)
		}
	}
}

func TestFromCSRRejectsBadInput(t *testing.T) {
	// Target out of range.
	_, err := FromCSR("bad", []VertexID{0, 1}, []int64{0, 1, 1}, []int32{7}, []EdgeID{0}, nil, nil)
	if err == nil {
		t.Error("FromCSR should reject out-of-range target")
	}
	// Non-monotone offsets.
	_, err = FromCSR("bad", []VertexID{0, 1}, []int64{0, 1, 0}, []int32{1}, []EdgeID{0}, nil, nil)
	if err == nil {
		t.Error("FromCSR should reject non-monotone offsets")
	}
	// Duplicate external ids.
	_, err = FromCSR("bad", []VertexID{5, 5}, []int64{0, 0, 0}, nil, nil, nil, nil)
	if err == nil {
		t.Error("FromCSR should reject duplicate vertex ids")
	}
}

// TestBuilderCSRPreservesEdges is a property test: for random edge lists,
// the built CSR contains exactly the declared multiset of edges.
func TestBuilderCSRPreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		m := rng.Intn(120)
		b := NewBuilder("rand", nil, nil)
		for i := 0; i < n; i++ {
			b.AddVertex(VertexID(i))
		}
		type pair struct{ s, d VertexID }
		want := map[pair]int{}
		for e := 0; e < m; e++ {
			s := VertexID(rng.Intn(n))
			d := VertexID(rng.Intn(n))
			b.AddEdge(s, d)
			want[pair{s, d}]++
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		got := map[pair]int{}
		for i := 0; i < g.NumVertices(); i++ {
			lo, hi := g.OutEdges(i)
			for e := lo; e < hi; e++ {
				got[pair{g.VertexID(i), g.VertexID(g.Target(e))}]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderAdjacencySorted is a property test: each adjacency run is
// sorted by target index after Build.
func TestBuilderAdjacencySorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder("rand", nil, nil)
		for e := 0; e < 80; e++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		for i := 0; i < g.NumVertices(); i++ {
			lo, hi := g.OutEdges(i)
			for e := lo + 1; e < hi; e++ {
				if g.Target(e) < g.Target(e-1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSLevelsLine(t *testing.T) {
	g := lineGraph(5)
	dist := BFSLevels(g, g.VertexIndex(0))
	for i := 0; i < 5; i++ {
		if dist[g.VertexIndex(VertexID(i))] != int32(i) {
			t.Errorf("dist[%d] = %d, want %d", i, dist[g.VertexIndex(VertexID(i))], i)
		}
	}
	// Unreachable direction.
	dist = BFSLevels(g, g.VertexIndex(4))
	if dist[g.VertexIndex(0)] != -1 {
		t.Errorf("vertex 0 should be unreachable from 4, dist=%d", dist[g.VertexIndex(0)])
	}
	// Out-of-range source.
	dist = BFSLevels(g, -1)
	for _, d := range dist {
		if d != -1 {
			t.Error("BFS from invalid source should reach nothing")
		}
	}
}

func TestComputeStatsLine(t *testing.T) {
	g := lineGraph(10)
	s := ComputeStats(g, 4)
	if s.Vertices != 10 || s.Edges != 9 {
		t.Fatalf("stats %+v", s)
	}
	if s.DiameterLB != 9 {
		t.Errorf("diameter LB = %d, want 9", s.DiameterLB)
	}
	if s.NumWCCs != 1 || s.LargestWCC != 10 {
		t.Errorf("WCC stats: %d comps, largest %d", s.NumWCCs, s.LargestWCC)
	}
	if s.MaxDegree != 1 || s.MinDegree != 0 {
		t.Errorf("degrees: min %d max %d", s.MinDegree, s.MaxDegree)
	}
}

func TestComputeStatsDisconnected(t *testing.T) {
	b := NewBuilder("two", nil, nil)
	b.AddEdge(0, 1)
	b.AddEdge(10, 11)
	b.AddVertex(99) // isolated
	g := b.MustBuild()
	s := ComputeStats(g, 2)
	if s.NumWCCs != 3 {
		t.Errorf("NumWCCs = %d, want 3", s.NumWCCs)
	}
	if s.IsolatedVerts != 1 {
		t.Errorf("IsolatedVerts = %d, want 1", s.IsolatedVerts)
	}
	if s.LargestWCC != 2 {
		t.Errorf("LargestWCC = %d, want 2", s.LargestWCC)
	}
}

func TestComputeStatsSelfLoop(t *testing.T) {
	b := NewBuilder("loop", nil, nil)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	s := ComputeStats(g, 2)
	if s.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", s.SelfLoops)
	}
}

// TestDiameterGrid checks the double-sweep estimate on a path-of-rings shape
// where the true diameter is known.
func TestDiameterCycle(t *testing.T) {
	// Undirected cycle of 20: diameter 10.
	b := NewBuilder("cycle", nil, nil)
	const n = 20
	for i := 0; i < n; i++ {
		b.AddUndirectedEdge(VertexID(i), VertexID((i+1)%n))
	}
	g := b.MustBuild()
	s := ComputeStats(g, 6)
	if s.DiameterLB != 10 {
		t.Errorf("cycle diameter LB = %d, want 10", s.DiameterLB)
	}
}
