package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const snapSample = `# Directed graph (each unordered pair of nodes is saved once)
# Description: California road network sample
# Nodes: 5 Edges: 4
# FromNodeId	ToNodeId
0	1
0	2
1	3

2	4
`

func TestReadEdgeListDirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(snapSample), EdgeListOptions{Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("%d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Name != "sample" {
		t.Errorf("name %q", g.Name)
	}
	if e := g.EdgeBetween(g.VertexIndex(0), g.VertexIndex(1)); e < 0 {
		t.Error("edge 0->1 missing")
	}
	if e := g.EdgeBetween(g.VertexIndex(1), g.VertexIndex(0)); e >= 0 {
		t.Error("directed read should not add the reverse edge")
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(snapSample), EdgeListOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8 {
		t.Fatalf("%d edge slots, want 8 (both directions)", g.NumEdges())
	}
	if e := g.EdgeBetween(g.VertexIndex(1), g.VertexIndex(0)); e < 0 {
		t.Error("undirected read must add the reverse edge")
	}
	// Shared EdgeID per undirected pair.
	fwd := g.EdgeBetween(g.VertexIndex(0), g.VertexIndex(1))
	rev := g.EdgeBetween(g.VertexIndex(1), g.VertexIndex(0))
	if g.EdgeID(fwd) != g.EdgeID(rev) {
		t.Error("directions of one undirected edge should share an EdgeID")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n"), EdgeListOptions{}); err == nil {
		t.Error("single-field line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), EdgeListOptions{}); err == nil {
		t.Error("non-numeric source accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 b\n"), EdgeListOptions{}); err == nil {
		t.Error("non-numeric target accepted")
	}
}

func TestReadEdgeListMaxEdges(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 3\n"), EdgeListOptions{MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("MaxEdges not honored: %d edges", g.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder("rt", nil, nil)
	b.AddEdge(5, 7)
	b.AddEdge(7, 9)
	b.AddEdge(9, 5)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for u := 0; u < g.NumVertices(); u++ {
		id := g.VertexID(u)
		u2 := g2.VertexIndex(id)
		if u2 < 0 || g.Degree(u) != g2.Degree(u2) {
			t.Fatalf("vertex %d degree mismatch", id)
		}
	}
}

// TestEdgeListRoundTripProperty: random directed graphs survive a
// write/read cycle with the exact edge multiset.
func TestEdgeListRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder("rand", nil, nil)
		type pair struct{ s, d VertexID }
		want := map[pair]int{}
		for e := 0; e < rng.Intn(60); e++ {
			s, d := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			b.AddEdge(s, d)
			want[pair{s, d}]++
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if WriteEdgeList(&buf, g) != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf, EdgeListOptions{})
		if err != nil {
			return false
		}
		got := map[pair]int{}
		for u := 0; u < g2.NumVertices(); u++ {
			lo, hi := g2.OutEdges(u)
			for e := lo; e < hi; e++ {
				got[pair{g2.VertexID(u), g2.VertexID(g2.Target(e))}]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
