package graph

import (
	"fmt"
)

// Column is the storage for one attribute across all vertices (or edges) of
// one graph instance. Exactly one of the value slices is populated, matching
// Type. Columns are indexed by the template's dense internal index.
type Column struct {
	Type        AttrType
	Ints        []int64
	Floats      []float64
	Strings     []string
	StringLists [][]string
	Bools       []bool
}

// NewColumn allocates a zeroed column of the given type and length.
func NewColumn(t AttrType, n int) Column {
	c := Column{Type: t}
	switch t {
	case TInt:
		c.Ints = make([]int64, n)
	case TFloat:
		c.Floats = make([]float64, n)
	case TString:
		c.Strings = make([]string, n)
	case TStringList:
		c.StringLists = make([][]string, n)
	case TBool:
		c.Bools = make([]bool, n)
	}
	return c
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case TInt:
		return len(c.Ints)
	case TFloat:
		return len(c.Floats)
	case TString:
		return len(c.Strings)
	case TStringList:
		return len(c.StringLists)
	case TBool:
		return len(c.Bools)
	default:
		return 0
	}
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() Column {
	out := Column{Type: c.Type}
	switch c.Type {
	case TInt:
		out.Ints = append([]int64(nil), c.Ints...)
	case TFloat:
		out.Floats = append([]float64(nil), c.Floats...)
	case TString:
		out.Strings = append([]string(nil), c.Strings...)
	case TStringList:
		out.StringLists = make([][]string, len(c.StringLists))
		for i, l := range c.StringLists {
			out.StringLists[i] = append([]string(nil), l...)
		}
	case TBool:
		out.Bools = append([]bool(nil), c.Bools...)
	}
	return out
}

// Instance is one timestamped snapshot of attribute values for every vertex
// and edge of a template: g^t = ⟨V^t, E^t, t⟩ in the paper's notation.
type Instance struct {
	// Timestep is the instance's index relative to the first instance.
	Timestep int
	// Time is the absolute timestamp t = t0 + Timestep·δ (epoch seconds or
	// any application unit).
	Time int64

	VertexCols []Column
	EdgeCols   []Column
}

// NewInstance allocates a zeroed instance matching the template's schemas.
func NewInstance(t *Template, timestep int, time int64) *Instance {
	ins := &Instance{Timestep: timestep, Time: time}
	vs, es := t.VertexSchema(), t.EdgeSchema()
	ins.VertexCols = make([]Column, vs.Len())
	for i := 0; i < vs.Len(); i++ {
		ins.VertexCols[i] = NewColumn(vs.Type(i), t.NumVertices())
	}
	ins.EdgeCols = make([]Column, es.Len())
	for i := 0; i < es.Len(); i++ {
		ins.EdgeCols[i] = NewColumn(es.Type(i), t.NumEdges())
	}
	return ins
}

// Validate checks the instance's columns against a template's schemas and
// cardinalities.
func (ins *Instance) Validate(t *Template) error {
	vs, es := t.VertexSchema(), t.EdgeSchema()
	if len(ins.VertexCols) != vs.Len() {
		return fmt.Errorf("graph: instance %d has %d vertex columns, schema wants %d", ins.Timestep, len(ins.VertexCols), vs.Len())
	}
	if len(ins.EdgeCols) != es.Len() {
		return fmt.Errorf("graph: instance %d has %d edge columns, schema wants %d", ins.Timestep, len(ins.EdgeCols), es.Len())
	}
	for i := range ins.VertexCols {
		c := &ins.VertexCols[i]
		if c.Type != vs.Type(i) {
			return fmt.Errorf("graph: instance %d vertex column %q type %v, schema wants %v", ins.Timestep, vs.Name(i), c.Type, vs.Type(i))
		}
		if c.Len() != t.NumVertices() {
			return fmt.Errorf("graph: instance %d vertex column %q has %d values, want %d", ins.Timestep, vs.Name(i), c.Len(), t.NumVertices())
		}
	}
	for i := range ins.EdgeCols {
		c := &ins.EdgeCols[i]
		if c.Type != es.Type(i) {
			return fmt.Errorf("graph: instance %d edge column %q type %v, schema wants %v", ins.Timestep, es.Name(i), c.Type, es.Type(i))
		}
		if c.Len() != t.NumEdges() {
			return fmt.Errorf("graph: instance %d edge column %q has %d values, want %d", ins.Timestep, es.Name(i), c.Len(), t.NumEdges())
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (ins *Instance) Clone() *Instance {
	out := &Instance{Timestep: ins.Timestep, Time: ins.Time}
	out.VertexCols = make([]Column, len(ins.VertexCols))
	for i := range ins.VertexCols {
		out.VertexCols[i] = ins.VertexCols[i].Clone()
	}
	out.EdgeCols = make([]Column, len(ins.EdgeCols))
	for i := range ins.EdgeCols {
		out.EdgeCols[i] = ins.EdgeCols[i].Clone()
	}
	return out
}

// VertexFloats returns the float64 column for the named vertex attribute,
// or nil if it does not exist or has a different type.
func (ins *Instance) VertexFloats(t *Template, name string) []float64 {
	i := t.VertexSchema().Index(name)
	if i < 0 || ins.VertexCols[i].Type != TFloat {
		return nil
	}
	return ins.VertexCols[i].Floats
}

// VertexInts returns the int64 column for the named vertex attribute.
func (ins *Instance) VertexInts(t *Template, name string) []int64 {
	i := t.VertexSchema().Index(name)
	if i < 0 || ins.VertexCols[i].Type != TInt {
		return nil
	}
	return ins.VertexCols[i].Ints
}

// VertexStringLists returns the string-list column for the named vertex
// attribute (e.g. tweets[] in the meme-tracking algorithm).
func (ins *Instance) VertexStringLists(t *Template, name string) [][]string {
	i := t.VertexSchema().Index(name)
	if i < 0 || ins.VertexCols[i].Type != TStringList {
		return nil
	}
	return ins.VertexCols[i].StringLists
}

// EdgeFloats returns the float64 column for the named edge attribute (e.g.
// latency in TDSP).
func (ins *Instance) EdgeFloats(t *Template, name string) []float64 {
	i := t.EdgeSchema().Index(name)
	if i < 0 || ins.EdgeCols[i].Type != TFloat {
		return nil
	}
	return ins.EdgeCols[i].Floats
}

// EdgeInts returns the int64 column for the named edge attribute.
func (ins *Instance) EdgeInts(t *Template, name string) []int64 {
	i := t.EdgeSchema().Index(name)
	if i < 0 || ins.EdgeCols[i].Type != TInt {
		return nil
	}
	return ins.EdgeCols[i].Ints
}

// VertexStrings returns the string column for the named vertex attribute.
func (ins *Instance) VertexStrings(t *Template, name string) []string {
	i := t.VertexSchema().Index(name)
	if i < 0 || ins.VertexCols[i].Type != TString {
		return nil
	}
	return ins.VertexCols[i].Strings
}

// VertexBools returns the bool column for the named vertex attribute (e.g.
// isExists on vertices).
func (ins *Instance) VertexBools(t *Template, name string) []bool {
	i := t.VertexSchema().Index(name)
	if i < 0 || ins.VertexCols[i].Type != TBool {
		return nil
	}
	return ins.VertexCols[i].Bools
}

// EdgeBools returns the bool column for the named edge attribute (e.g. the
// paper's isExists flag used to simulate slow topology change).
func (ins *Instance) EdgeBools(t *Template, name string) []bool {
	i := t.EdgeSchema().Index(name)
	if i < 0 || ins.EdgeCols[i].Type != TBool {
		return nil
	}
	return ins.EdgeCols[i].Bools
}

// EdgeStrings returns the string column for the named edge attribute.
func (ins *Instance) EdgeStrings(t *Template, name string) []string {
	i := t.EdgeSchema().Index(name)
	if i < 0 || ins.EdgeCols[i].Type != TString {
		return nil
	}
	return ins.EdgeCols[i].Strings
}
