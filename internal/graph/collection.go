package graph

import (
	"fmt"
)

// Collection is a time-series graph Γ = ⟨Ĝ, G, t0, δ⟩: a template plus an
// ordered series of instances captured at a constant period.
type Collection struct {
	Template *Template
	// T0 is the absolute time of instance 0.
	T0 int64
	// Delta is the constant period δ between successive instances.
	Delta int64

	instances []*Instance
}

// NewCollection creates an empty collection over a template.
func NewCollection(t *Template, t0, delta int64) *Collection {
	return &Collection{Template: t, T0: t0, Delta: delta}
}

// NumInstances returns the number of instances appended so far.
func (c *Collection) NumInstances() int { return len(c.instances) }

// Instance returns the instance at a timestep.
func (c *Collection) Instance(timestep int) *Instance { return c.instances[timestep] }

// Append validates and appends the next instance; its Timestep must equal
// NumInstances() and its Time must equal T0 + Timestep·Delta.
func (c *Collection) Append(ins *Instance) error {
	if ins.Timestep != len(c.instances) {
		return fmt.Errorf("graph: appending instance with timestep %d, want %d", ins.Timestep, len(c.instances))
	}
	if want := c.T0 + int64(ins.Timestep)*c.Delta; ins.Time != want {
		return fmt.Errorf("graph: instance %d has time %d, want %d (t0=%d δ=%d)", ins.Timestep, ins.Time, want, c.T0, c.Delta)
	}
	if err := ins.Validate(c.Template); err != nil {
		return err
	}
	c.instances = append(c.instances, ins)
	return nil
}

// TimeOf returns the absolute time of a timestep: t0 + i·δ.
func (c *Collection) TimeOf(timestep int) int64 {
	return c.T0 + int64(timestep)*c.Delta
}

// Validate re-checks every instance against the template.
func (c *Collection) Validate() error {
	if err := c.Template.Validate(); err != nil {
		return err
	}
	for i, ins := range c.instances {
		if ins.Timestep != i {
			return fmt.Errorf("graph: instance at position %d has timestep %d", i, ins.Timestep)
		}
		if err := ins.Validate(c.Template); err != nil {
			return err
		}
	}
	return nil
}
