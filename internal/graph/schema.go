// Package graph implements the time-series graph data model from
// "Distributed Programming over Time-series Graphs" (IPPS 2015): a time
// invariant graph Template that captures topology and attribute schemas, and
// a sequence of graph Instances that carry the attribute values of every
// vertex and edge at successive timesteps.
//
// The model is Γ = ⟨Ĝ, G, t0, δ⟩ where Ĝ is the template, G is an ordered
// set of instances, t0 is the epoch of the first instance and δ the constant
// period between instances. See Collection.
package graph

import (
	"fmt"
	"sort"
)

// AttrType enumerates the value types an attribute column may hold.
type AttrType uint8

const (
	// TInt is a 64-bit signed integer attribute.
	TInt AttrType = iota
	// TFloat is a 64-bit floating point attribute.
	TFloat
	// TString is a string attribute.
	TString
	// TStringList is a variable-length list-of-strings attribute (e.g. the
	// hashtags received by a vertex within one timestep).
	TStringList
	// TBool is a boolean attribute (e.g. the isExists attribute the paper
	// uses to simulate slow topology changes).
	TBool
)

// String returns the lowercase name of the attribute type.
func (t AttrType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TStringList:
		return "stringlist"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("AttrType(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined attribute types.
func (t AttrType) Valid() bool { return t <= TBool }

// Schema is an ordered set of named, typed attributes shared by all vertices
// (or all edges) of a template. The id attribute from the paper is implicit:
// every vertex and edge carries a unique int64 identifier in the template
// itself, outside the schema.
type Schema struct {
	names []string
	types []AttrType
	index map[string]int
}

// NewSchema builds a schema from parallel name/type slices. Names must be
// unique and non-empty.
func NewSchema(names []string, types []AttrType) (*Schema, error) {
	if len(names) != len(types) {
		return nil, fmt.Errorf("graph: schema has %d names but %d types", len(names), len(types))
	}
	s := &Schema{
		names: append([]string(nil), names...),
		types: append([]AttrType(nil), types...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("graph: schema attribute %d has empty name", i)
		}
		if !types[i].Valid() {
			return nil, fmt.Errorf("graph: schema attribute %q has invalid type %d", n, types[i])
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("graph: duplicate schema attribute %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error; intended for
// compile-time-constant schemas in tests and examples.
func MustSchema(names []string, types []AttrType) *Schema {
	s, err := NewSchema(names, types)
	if err != nil {
		panic(err)
	}
	return s
}

// EmptySchema returns a schema with no attributes.
func EmptySchema() *Schema {
	return &Schema{index: map[string]int{}}
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Type returns the type of attribute i.
func (s *Schema) Type(i int) AttrType { return s.types[i] }

// Index returns the column index for the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Names returns a copy of the attribute names in column order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Equal reports whether two schemas have identical names and types in the
// same order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.names {
		if s.names[i] != o.names[i] || s.types[i] != o.types[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name:type, ...)".
func (s *Schema) String() string {
	out := "("
	for i := range s.names {
		if i > 0 {
			out += ", "
		}
		out += s.names[i] + ":" + s.types[i].String()
	}
	return out + ")"
}

// SortedNames returns the attribute names in lexicographic order (handy for
// deterministic rendering).
func (s *Schema) SortedNames() []string {
	n := s.Names()
	sort.Strings(n)
	return n
}
