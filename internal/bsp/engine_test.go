package bsp

import (
	"sync"
	"sync/atomic"
	"testing"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// buildParts partitions a template and derives subgraphs.
func buildParts(tb testing.TB, g *graph.Template, k int) []*subgraph.PartitionData {
	tb.Helper()
	a, err := (partition.Multilevel{Seed: 2}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return parts
}

func TestImmediateHalt(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 1})
	e := NewEngine(buildParts(t, g, 3), Config{})
	var calls int64
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		atomic.AddInt64(&calls, 1)
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
	total := 0
	for _, pd := range buildParts(t, g, 3) {
		total += len(pd.Subgraphs)
	}
	if calls != int64(total) {
		t.Errorf("Compute called %d times, want %d (all subgraphs once)", calls, total)
	}
}

func TestMessageDeliveryNextSuperstep(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 2})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})

	var mu sync.Mutex
	received := map[subgraph.ID]int{}
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if superstep == 0 {
			ctx.SendToAllNeighbors("ping")
		} else {
			mu.Lock()
			received[sg.SID] += len(msgs)
			mu.Unlock()
		}
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", res.Supersteps)
	}
	// Every subgraph with neighbors must have received exactly one message
	// per neighbor.
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			mu.Lock()
			got := received[sg.SID]
			mu.Unlock()
			if got != len(sg.Neighbors) {
				t.Errorf("subgraph %v received %d, want %d", sg.SID, got, len(sg.Neighbors))
			}
		}
	}
}

func TestInitialMessagesWakeTargets(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 3})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	target := parts[1].Subgraphs[0].SID

	var gotPayload atomic.Value
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if sg.SID == target && superstep == 0 {
			for _, m := range msgs {
				gotPayload.Store(m.Payload)
			}
		}
		ctx.VoteToHalt()
	})
	initial := []Message{{To: target, Payload: "hello"}}
	if _, err := e.Run(prog, initial, nil); err != nil {
		t.Fatal(err)
	}
	if gotPayload.Load() != "hello" {
		t.Errorf("initial payload = %v, want hello", gotPayload.Load())
	}
}

func TestHaltedSubgraphNotRecalledWithoutMail(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 4})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	// One designated subgraph keeps running 3 supersteps by not halting;
	// everyone else halts at 0 and must not be re-invoked.
	runner := parts[0].Subgraphs[0].SID
	var mu sync.Mutex
	calls := map[subgraph.ID]int{}
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		mu.Lock()
		calls[sg.SID]++
		mu.Unlock()
		if sg.SID == runner && superstep < 2 {
			return // stay active
		}
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", res.Supersteps)
	}
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			want := 1
			if sg.SID == runner {
				want = 3
			}
			if calls[sg.SID] != want {
				t.Errorf("subgraph %v ran %d times, want %d", sg.SID, calls[sg.SID], want)
			}
		}
	}
}

func TestMessageReactivatesHalted(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 5})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	// Pick a subgraph with at least one neighbor.
	var src *subgraph.Subgraph
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			if len(sg.Neighbors) > 0 {
				src = sg
				break
			}
		}
		if src != nil {
			break
		}
	}
	if src == nil {
		t.Skip("no subgraph with neighbors")
	}
	dst := src.Neighbors[0]
	var wokeAt atomic.Int64
	wokeAt.Store(-1)
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if sg.SID == src.SID && superstep == 2 {
			ctx.SendTo(dst, "wake")
		}
		if sg.SID == src.SID && superstep < 2 {
			return // stay active to survive to superstep 2
		}
		if sg.SID == dst && superstep == 3 && len(msgs) == 1 {
			wokeAt.Store(int64(superstep))
		}
		ctx.VoteToHalt()
	})
	if _, err := e.Run(prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	if wokeAt.Load() != 3 {
		t.Errorf("halted subgraph not reactivated by message (wokeAt=%d)", wokeAt.Load())
	}
}

func TestDeterministicMessageOrder(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 200, M: 3, Seed: 6})
	parts := buildParts(t, g, 3)

	run := func() []string {
		e := NewEngine(parts, Config{CoresPerHost: 4})
		var mu sync.Mutex
		var log []string
		prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
			if superstep == 0 {
				for i := 0; i < 3; i++ {
					ctx.SendToAllNeighbors(i)
				}
			} else {
				mu.Lock()
				for _, m := range msgs {
					log = append(log, sg.SID.String()+"<-"+m.From.String()+":"+string(rune('0'+m.Payload.(int))))
				}
				mu.Unlock()
			}
			ctx.VoteToHalt()
		})
		if _, err := e.Run(prog, nil, nil); err != nil {
			t.Fatal(err)
		}
		return log
	}
	// Per-subgraph inbox order must be deterministic; the cross-subgraph
	// interleave in our log is not, so compare sorted-stable per subgraph:
	// simplest check is running twice and comparing per-subgraph sequences.
	extract := func(log []string) map[string][]string {
		m := map[string][]string{}
		for _, entry := range log {
			key := entry[:len(entry)-len("<-0/0:0")] // crude subgraph prefix
			m[key] = append(m[key], entry)
		}
		return m
	}
	a, b := extract(run()), extract(run())
	if len(a) != len(b) {
		t.Fatalf("different subgraph sets across runs")
	}
	for k, av := range a {
		bv := b[k]
		if len(av) != len(bv) {
			t.Fatalf("subgraph %s: %d vs %d messages", k, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("subgraph %s message %d: %q vs %q", k, i, av[i], bv[i])
			}
		}
	}
}

func TestExtrasCollected(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 5, Cols: 5, Seed: 7})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		ctx.Emit("output", sg.SID, sg.NumVertices())
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ex := range res.Extras["output"] {
		total += ex.Data.(int)
	}
	if total != g.NumVertices() {
		t.Errorf("extras total %d, want %d", total, g.NumVertices())
	}
	// Extras sorted by From.
	list := res.Extras["output"]
	for i := 1; i < len(list); i++ {
		if list[i].From < list[i-1].From {
			t.Fatal("extras not sorted by From")
		}
	}
}

func TestMetricsRecorded(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, Seed: 8})
	parts := buildParts(t, g, 3)
	e := NewEngine(parts, Config{})
	rec := metrics.NewRecorder(3)
	tr := rec.BeginTimestep(0)
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if superstep == 0 {
			ctx.SendToAllNeighbors("x")
			ctx.AddCounter("touched", int64(sg.NumVertices()))
		}
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Supersteps != res.Supersteps {
		t.Errorf("record supersteps %d != %d", tr.Supersteps, res.Supersteps)
	}
	if rec.CounterTotal("touched") != int64(g.NumVertices()) {
		t.Errorf("counter total = %d, want %d", rec.CounterTotal("touched"), g.NumVertices())
	}
	var sent int64
	for p := range tr.Parts {
		sent += tr.Parts[p].MsgsSent
	}
	if sent == 0 {
		t.Error("no messages recorded as sent")
	}
	if rec.TotalMessages() != sent {
		t.Errorf("TotalMessages %d != %d", rec.TotalMessages(), sent)
	}
}

func TestComputePanicSurfacesAsError(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 4, Cols: 4, Seed: 9})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		panic("boom")
	})
	if _, err := e.Run(prog, nil, nil); err == nil {
		t.Fatal("panic in Compute should surface as error")
	}
}

func TestMaxSuperstepsEnforced(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 4, Cols: 4, Seed: 10})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{MaxSupersteps: 5})
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		// Never halts.
	})
	if _, err := e.Run(prog, nil, nil); err == nil {
		t.Fatal("non-terminating program should hit MaxSupersteps")
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 5, Cols: 5, Seed: 11})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if superstep == 0 {
			ctx.SendToAllNeighbors(1)
		}
		ctx.VoteToHalt()
	})
	for i := 0; i < 3; i++ {
		res, err := e.Run(prog, nil, nil)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Supersteps != 2 {
			t.Fatalf("run %d: supersteps = %d, want 2", i, res.Supersteps)
		}
	}
}

func TestMessagesToUnknownPartitionDropped(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 4, Cols: 4, Seed: 12})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if superstep == 0 {
			ctx.SendTo(subgraph.MakeID(99, 0), "lost")
		}
		ctx.VoteToHalt()
	})
	// Must terminate (the lost message is dropped, not queued forever).
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps > 2 {
		t.Errorf("supersteps = %d", res.Supersteps)
	}
	nSG := int64(subgraph.TotalSubgraphs(parts))
	if res.MsgsDropped != nSG {
		t.Errorf("MsgsDropped = %d, want %d (one per subgraph)", res.MsgsDropped, nSG)
	}
}
