package bsp

import (
	"sync"
	"testing"

	"tsgraph/internal/gen"
	"tsgraph/internal/subgraph"
)

// memMesh is an in-process Remote implementation connecting several
// engines, for unit-testing the distributed engine paths without sockets.
type memMesh struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	engines []*Engine
	owner   []int32
	// arrivals[superstep] collects every node's local stats; the barrier
	// completes when all n have arrived.
	arrivals map[int][]BarrierStats
	released map[int]int // how many nodes consumed the result
}

func newMemMesh(n int, owner []int32) *memMesh {
	m := &memMesh{
		n:        n,
		owner:    owner,
		engines:  make([]*Engine, n),
		arrivals: map[int][]BarrierStats{},
		released: map[int]int{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

type memNode struct {
	mesh *memMesh
	rank int
	// gen distinguishes repeated superstep numbers across engine runs.
	gen int
}

func (nd *memNode) key(superstep int) int { return nd.gen*1_000_000 + superstep }

func (nd *memNode) Send(superstep int, msgs []Message) error {
	byRank := map[int][]Message{}
	for _, msg := range msgs {
		r := int(nd.mesh.owner[msg.To.Partition()])
		byRank[r] = append(byRank[r], msg)
	}
	nd.mesh.mu.Lock()
	engines := append([]*Engine(nil), nd.mesh.engines...)
	nd.mesh.mu.Unlock()
	for r, group := range byRank {
		engines[r].Inject(superstep, group)
	}
	return nil
}

func (nd *memNode) Barrier(superstep int, local BarrierStats) (BarrierStats, error) {
	m := nd.mesh
	k := nd.key(superstep)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arrivals[k] = append(m.arrivals[k], local)
	m.cond.Broadcast()
	for len(m.arrivals[k]) < m.n {
		m.cond.Wait()
	}
	global := BarrierStats{AllHalted: true}
	for _, s := range m.arrivals[k] {
		global.Sent += s.Sent
		global.AllHalted = global.AllHalted && s.AllHalted
		if s.SimMax > global.SimMax {
			global.SimMax = s.SimMax
		}
	}
	m.released[k]++
	if m.released[k] == m.n {
		delete(m.arrivals, k)
		delete(m.released, k)
	}
	return global, nil
}

// TestRemoteEnginesExchangeMessages runs a ping program split across two
// engines connected by the in-memory mesh and checks cross-engine delivery
// and synchronized termination.
func TestRemoteEnginesExchangeMessages(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, Seed: 31})
	parts := buildParts(t, g, 2)
	owner := []int32{0, 1}
	mesh := newMemMesh(2, owner)

	var mu sync.Mutex
	received := map[subgraph.ID]int{}
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if superstep == 0 {
			ctx.SendToAllNeighbors("ping")
		} else {
			mu.Lock()
			received[sg.SID] += len(msgs)
			mu.Unlock()
		}
		ctx.VoteToHalt()
	})

	engines := make([]*Engine, 2)
	nodes := make([]*memNode, 2)
	for r := 0; r < 2; r++ {
		nodes[r] = &memNode{mesh: mesh, rank: r}
		engines[r] = NewEngineRemote(parts[r:r+1], Config{}, nodes[r])
		mesh.engines[r] = engines[r]
	}

	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = engines[r].Run(prog, nil, nil)
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("engine %d: %v", r, errs[r])
		}
	}
	if results[0].Supersteps != results[1].Supersteps {
		t.Errorf("superstep counts diverge: %d vs %d", results[0].Supersteps, results[1].Supersteps)
	}
	// Every subgraph must have received one ping per neighbor, including
	// across the engine boundary.
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			mu.Lock()
			got := received[sg.SID]
			mu.Unlock()
			if got != len(sg.Neighbors) {
				t.Errorf("subgraph %v received %d, want %d", sg.SID, got, len(sg.Neighbors))
			}
		}
	}
}

// TestRemoteTerminationNeedsGlobalConsensus: one engine's subgraphs keep
// running longer than the other's; both engines must run the same number of
// supersteps.
func TestRemoteTerminationNeedsGlobalConsensus(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 32})
	parts := buildParts(t, g, 2)
	mesh := newMemMesh(2, []int32{0, 1})

	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		// Partition 1's subgraphs stay active until superstep 3.
		if sg.SID.Partition() == 1 && superstep < 3 {
			return
		}
		ctx.VoteToHalt()
	})
	engines := make([]*Engine, 2)
	for r := 0; r < 2; r++ {
		engines[r] = NewEngineRemote(parts[r:r+1], Config{}, &memNode{mesh: mesh, rank: r})
		mesh.engines[r] = engines[r]
	}
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], _ = engines[r].Run(prog, nil, nil)
		}(r)
	}
	wg.Wait()
	if results[0] == nil || results[1] == nil {
		t.Fatal("missing results")
	}
	if results[0].Supersteps != 4 || results[1].Supersteps != 4 {
		t.Errorf("supersteps = %d/%d, want 4/4 (global consensus)", results[0].Supersteps, results[1].Supersteps)
	}
}

func TestRemoteRejectsNonLocalInitial(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 33})
	parts := buildParts(t, g, 2)
	mesh := newMemMesh(1, []int32{0, 1})
	e := NewEngineRemote(parts[0:1], Config{}, &memNode{mesh: mesh})
	mesh.engines[0] = e
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		ctx.VoteToHalt()
	})
	initial := []Message{{To: subgraph.MakeID(1, 0), Payload: "x"}}
	if _, err := e.Run(prog, initial, nil); err == nil {
		t.Fatal("non-local initial message accepted in distributed mode")
	}
}

// phantomRemote simulates a peer that sent one message during superstep 0:
// its barrier contribution keeps the superstep loop alive so the staged
// message is consumed at superstep 1.
type phantomRemote struct{}

func (phantomRemote) Send(int, []Message) error { return nil }

func (phantomRemote) Barrier(superstep int, local BarrierStats) (BarrierStats, error) {
	if superstep == 0 {
		local.Sent++
	}
	return local, nil
}

// TestStagedPromotionTiming: messages injected with sender superstep s must
// not be visible before superstep s+1 even when injected very early.
func TestStagedPromotionTiming(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 34})
	parts := buildParts(t, g, 2)
	e := NewEngineRemote(parts[0:1], Config{}, phantomRemote{})

	target := parts[0].Subgraphs[0].SID
	// Inject a "superstep 0" message before the run even starts (a fast
	// peer could do this right after the previous barrier).
	e.Inject(0, []Message{{From: subgraph.MakeID(1, 0), To: target, Payload: "early"}})

	var mu sync.Mutex
	seenAt := -1
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		if sg.SID == target && len(msgs) > 0 {
			mu.Lock()
			if seenAt < 0 {
				seenAt = superstep
			}
			mu.Unlock()
		}
		ctx.VoteToHalt()
	})
	if _, err := e.Run(prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	if seenAt != 1 {
		t.Errorf("early-injected superstep-0 message surfaced at superstep %d, want 1", seenAt)
	}
}
