package bsp

import (
	"sync"
	"testing"

	"tsgraph/internal/gen"
	"tsgraph/internal/subgraph"
)

func TestInitialHaltedSkipsSuperstepZero(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 6})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	skipped := parts[0].Subgraphs[0].SID

	var mu sync.Mutex
	calls := map[subgraph.ID]int{}
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		mu.Lock()
		calls[sg.SID]++
		mu.Unlock()
		ctx.VoteToHalt()
	})

	// A pre-halted subgraph with no mail never runs; the others run once.
	e.SetInitialHalted([]subgraph.ID{skipped})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
	if calls[skipped] != 0 {
		t.Errorf("pre-halted subgraph ran %d times, want 0", calls[skipped])
	}
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			if sg.SID != skipped && calls[sg.SID] != 1 {
				t.Errorf("subgraph %v ran %d times, want 1", sg.SID, calls[sg.SID])
			}
		}
	}

	// Mail overrides the pre-halt: an initial message wakes it at superstep 0.
	calls = map[subgraph.ID]int{}
	if _, err := e.Run(prog, []Message{{To: skipped, Payload: "wake"}}, nil); err != nil {
		t.Fatal(err)
	}
	if calls[skipped] != 1 {
		t.Errorf("pre-halted subgraph with mail ran %d times, want 1", calls[skipped])
	}

	// The halt set persists across Runs until changed; clearing restores
	// everyone-active-at-superstep-0.
	calls = map[subgraph.ID]int{}
	e.SetInitialHalted(nil)
	if _, err := e.Run(prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	if calls[skipped] != 1 {
		t.Errorf("after clearing, subgraph ran %d times, want 1", calls[skipped])
	}
}

func TestInitialHaltedAllTerminatesImmediately(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 7})
	parts := buildParts(t, g, 2)
	e := NewEngine(parts, Config{})
	var all []subgraph.ID
	for _, pd := range parts {
		for _, sg := range pd.Subgraphs {
			all = append(all, sg.SID)
		}
	}
	e.SetInitialHalted(all)
	ran := false
	prog := ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		ran = true
		ctx.VoteToHalt()
	})
	res, err := e.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("Compute ran despite all subgraphs pre-halted")
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", res.Supersteps)
	}
}
