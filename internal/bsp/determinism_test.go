package bsp

import (
	"reflect"
	"runtime"
	"testing"

	"tsgraph/internal/gen"
	"tsgraph/internal/subgraph"
)

// orderSensitiveProg builds a Program whose emissions depend on the exact
// order messages are presented to Compute: each subgraph folds its inbox
// payloads into a positional hash, gossips the hash to all neighbors, and
// emits the final value. Any deviation in inbox ordering between two runs
// produces different Extras.
func orderSensitiveProg(supersteps int) Program {
	return ComputeFunc(func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
		h := int64(sg.SID) * 1315423911
		for _, m := range msgs {
			h = h*31 + int64(m.From) + m.Payload.(int64)*7
		}
		if superstep < supersteps-1 {
			ctx.SendToAllNeighbors(h)
			return
		}
		ctx.Emit("hash", sg.SID, h)
		ctx.VoteToHalt()
	})
}

// runOnce executes the order-sensitive program on a fresh engine under cfg
// and returns the emitted Extras.
func runOnce(t *testing.T, cfg Config) map[string][]Extra {
	t.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.15, Seed: 21})
	e := NewEngine(buildParts(t, g, 4), cfg)
	res, err := e.Run(orderSensitiveProg(6), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 6 {
		t.Fatalf("supersteps = %d, want 6", res.Supersteps)
	}
	return res.Extras
}

// TestDeterministicAcrossConcurrency runs the same job serial vs pooled,
// with few vs many cores, and at GOMAXPROCS 1 vs many, asserting identical
// Outputs/Extras ordering every time. This pins the engine's determinism
// contract: inboxes sorted by (From, Seq) and extras merged in worker
// order, regardless of scheduling.
func TestDeterministicAcrossConcurrency(t *testing.T) {
	serialOn, serialOff := true, false
	baseline := runOnce(t, Config{CoresPerHost: 1, SerialMeasure: &serialOn})
	if len(baseline["hash"]) == 0 {
		t.Fatal("baseline produced no emissions")
	}

	configs := []struct {
		name string
		cfg  Config
	}{
		{"pooled-1core", Config{CoresPerHost: 1, SerialMeasure: &serialOff}},
		{"pooled-4core", Config{CoresPerHost: 4, SerialMeasure: &serialOff}},
		{"serial-4core", Config{CoresPerHost: 4, SerialMeasure: &serialOn}},
		{"default", Config{}},
	}
	for _, tc := range configs {
		got := runOnce(t, tc.cfg)
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("%s: Extras differ from serial baseline", tc.name)
		}
	}

	// Repeat under a different GOMAXPROCS so goroutine scheduling actually
	// varies (CI machines may default to 1).
	prev := runtime.GOMAXPROCS(0)
	next := 4
	if prev != 1 {
		next = 1
	}
	runtime.GOMAXPROCS(next)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range configs {
		got := runOnce(t, tc.cfg)
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("%s at GOMAXPROCS=%d: Extras differ from serial baseline", tc.name, next)
		}
	}
}

// TestDeterministicRepeatedRuns re-runs the same engine instance and
// demands identical results, guarding the buffer-recycling paths (stale
// inbox slots, pooled slices) against cross-run leakage.
func TestDeterministicRepeatedRuns(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.15, Seed: 21})
	e := NewEngine(buildParts(t, g, 4), Config{CoresPerHost: 2})
	var first map[string][]Extra
	for run := 0; run < 3; run++ {
		res, err := e.Run(orderSensitiveProg(5), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = res.Extras
			continue
		}
		if !reflect.DeepEqual(first, res.Extras) {
			t.Errorf("run %d: Extras differ from run 0", run)
		}
	}
}
