package bsp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/metrics"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// Program is the user logic of one BSP execution (one TI-BSP timestep).
type Program interface {
	// Compute is invoked on every active subgraph in every superstep.
	// Subgraphs of the same partition may run concurrently; the
	// paper's contract (and this engine's) is that a Compute invocation
	// only touches its own subgraph's state. The msgs slice is only valid
	// for the duration of the call: the engine recycles inbox storage
	// across supersteps, so implementations must copy anything they keep.
	Compute(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message)
}

// ComputeFunc adapts a function to the Program interface.
type ComputeFunc func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message)

// Compute implements Program.
func (f ComputeFunc) Compute(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
	f(ctx, sg, superstep, msgs)
}

// Context is handed to each Compute invocation; it carries the message
// emission and halt-voting primitives. A Context is only valid for the
// duration of the invocation it was created for (the engine reuses one
// Context per subgraph across supersteps).
type Context struct {
	worker    *worker
	sg        *subgraph.Subgraph
	superstep int
	seq       int64
	out       []Message
	halted    bool
	// extra collects out-of-band emissions (temporal messages, merge
	// messages, outputs) consumed by the TI-BSP layer.
	extra map[string][]Extra
}

// Extra is an out-of-band emission recorded by a Compute call for a named
// channel (used by the TI-BSP layer for temporal and merge messaging).
type Extra struct {
	From subgraph.ID
	To   subgraph.ID // meaning depends on the channel
	Data any
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// SendTo sends a payload to another subgraph; it is delivered at the start
// of the next superstep.
func (c *Context) SendTo(dst subgraph.ID, payload any) {
	c.out = append(c.out, Message{From: c.sg.SID, To: dst, Seq: c.seq, Payload: payload})
	c.seq++
}

// SendToAllNeighbors sends a payload to every subgraph that shares a remote
// edge with this one.
func (c *Context) SendToAllNeighbors(payload any) {
	for _, nb := range c.sg.Neighbors {
		c.SendTo(nb, payload)
	}
}

// VoteToHalt marks this subgraph inactive; it will not run in the next
// superstep unless a message arrives for it. The BSP ends when all
// subgraphs are halted and no messages are in flight.
func (c *Context) VoteToHalt() { c.halted = true }

// Emit records an out-of-band payload on a named channel for the layer
// driving the engine (the TI-BSP runner uses channels "next-timestep",
// "next-timestep-targeted", "merge" and "output").
func (c *Context) Emit(channel string, to subgraph.ID, data any) {
	if c.extra == nil {
		c.extra = make(map[string][]Extra)
	}
	c.extra[channel] = append(c.extra[channel], Extra{From: c.sg.SID, To: to, Data: data})
}

// AddCounter accumulates a named per-partition metric counter (e.g. number
// of vertices finalized this timestep).
func (c *Context) AddCounter(name string, delta int64) {
	if c.worker.step == nil {
		return
	}
	c.worker.counterMu.Lock()
	c.worker.step.AddCounter(name, delta)
	c.worker.counterMu.Unlock()
}

// Config parameterizes an Engine.
type Config struct {
	// CoresPerHost bounds concurrent Compute calls within one partition
	// worker. Zero means 2 (the paper's m3.large has 2 cores).
	CoresPerHost int
	// MaxSupersteps aborts a BSP that fails to terminate. Zero means 10^6.
	MaxSupersteps int
	// SuperstepLatency is a modeled per-superstep cluster coordination
	// cost (barrier + bulk message exchange) added to the simulated
	// cluster time. Zero models an infinitely fast interconnect.
	SuperstepLatency time.Duration
	// ProfileLabels stamps each compute-pool goroutine with pprof labels
	// ("timestep", "superstep", "partition") whenever its superstep
	// changes, so CPU profiles taken through the obs endpoint attribute
	// samples to graph work. Off by default: label updates allocate (a
	// label set and context per worker goroutine per superstep), which
	// would break the zero-allocation hot-path budget; CLIs enable it
	// together with the pprof endpoint.
	ProfileLabels bool
	// SerialMeasure forces user Compute calls to execute one at a time so
	// their measured durations are exact. Defaults to automatic: enabled
	// when GOMAXPROCS is 1, where concurrent goroutines would otherwise
	// interleave inside each other's timing windows and corrupt the
	// simulated schedule. The simulated cluster still schedules the
	// measured durations onto CoresPerHost cores per host.
	SerialMeasure *bool
}

func (c Config) cores() int {
	if c.CoresPerHost <= 0 {
		return 2
	}
	return c.CoresPerHost
}

func (c Config) maxSupersteps() int {
	if c.MaxSupersteps <= 0 {
		return 1_000_000
	}
	return c.MaxSupersteps
}

func (c Config) serialMeasure() bool {
	if c.SerialMeasure != nil {
		return *c.SerialMeasure
	}
	return runtime.GOMAXPROCS(0) == 1
}

// msgSlicePool recycles outgoing message buffers across Compute invocations
// and supersteps: a Context checks a slice out at invocation start and the
// worker returns it after the flush phase, so steady-state supersteps do not
// allocate for messaging.
var msgSlicePool = sync.Pool{New: func() any { return new([]Message) }}

// worker is one simulated host: it owns one partition and its subgraphs'
// inboxes, halt flags, and all per-superstep scratch state. The scratch is
// allocated once (in NewEngine / the first Run) and recycled every
// superstep, which is what keeps the hot path allocation-free.
type worker struct {
	pid  int
	pos  int // index into Engine.workers (and stepSim)
	part *subgraph.PartitionData

	// Double-buffered, slice-indexed inboxes. fill receives messages
	// flushed during the current superstep (guarded by inboxMu); read is
	// the snapshot consumed by this superstep's Compute calls (owned by
	// the worker, no lock). At each superstep boundary the two are
	// swapped, so inbox storage is recycled instead of reallocated.
	inboxMu sync.Mutex
	fill    [][]Message
	read    [][]Message

	halted []bool

	// step is the metrics slot for the current timestep. Numeric fields
	// (MsgsSent/MsgsRecv) are updated with atomics; counterMu only guards
	// the named-counter map.
	step      *metrics.PartitionStep
	counterMu sync.Mutex

	// Per-superstep scratch, reused across supersteps.
	superstep int
	ctxs      []Context            // one reusable Context per subgraph
	active    []int                // active subgraph indices
	outs      [][]Message          // per-active outgoing messages
	outPtrs   []*[]Message         // pool tickets backing outs
	extras    []map[string][]Extra // per-active out-of-band emissions
	durs      []time.Duration      // per-active measured compute durations
	avail     []time.Duration      // makespan scheduling scratch (cores)
	routeBuf  [][]Message          // flush grouping scratch, by worker pos
	remoteOut []Message            // flush scratch for non-local messages
	extraAcc  map[string][]Extra   // per-run accumulated extras
	tasks     chan uint64          // feeds the persistent compute pool
	wg        sync.WaitGroup       // per-superstep compute completion

	// Tracing scratch. tracing is latched once per superstep before compute
	// dispatch (read by the pool goroutines); phaseStart is the first
	// compute call's start timestamp, written by the goroutine running the
	// superstep's first task and read by loop after wg.Wait.
	tracing    bool
	phaseStart time.Time
}

// enqueue delivers messages into the worker's fill buffer; idx is the
// destination subgraph index. Returns false when idx is out of range (an
// unknown subgraph — the message is dropped and counted by the caller).
func (w *worker) enqueue(idx int, m Message) bool {
	if idx < 0 || idx >= len(w.fill) {
		return false
	}
	w.fill[idx] = append(w.fill[idx], m)
	return true
}

// snapshot swaps the fill and read buffers at a superstep boundary. The
// caller must have reset every read slot to length zero beforehand.
func (w *worker) snapshot() {
	w.inboxMu.Lock()
	w.fill, w.read = w.read, w.fill
	w.inboxMu.Unlock()
}

// BarrierStats is the per-superstep state exchanged across hosts in a
// distributed execution: outgoing message count, halt consensus, and the
// slowest host's simulated (compute + flush) time.
type BarrierStats struct {
	Sent      int64
	AllHalted bool
	SimMax    time.Duration
}

// Remote connects an engine that owns only a subset of partitions to its
// peers in a distributed run. Implementations (see internal/cluster) route
// cross-host messages and realize the global superstep barrier.
type Remote interface {
	// Send transmits messages addressed to partitions this engine does not
	// own. Called once per superstep, after local compute and flush.
	Send(superstep int, msgs []Message) error
	// Barrier blocks until every peer has finished flushing the superstep
	// (so all messages addressed here have been delivered via Inject) and
	// returns the globally aggregated stats: Sent summed, AllHalted ANDed,
	// SimMax maxed.
	Barrier(superstep int, local BarrierStats) (BarrierStats, error)
}

// Engine executes BSP programs over a fixed set of partitions. An Engine is
// reusable across Runs (the TI-BSP layer runs one BSP per timestep on the
// same engine) but a single Engine must not execute two Runs concurrently.
type Engine struct {
	cfg     Config
	workers []*worker
	byPID   map[int]*worker
	// remote is non-nil in distributed executions that own a partition
	// subset.
	remote Remote
	// remoteMu guards remoteBuf, the per-superstep buffer of cross-host
	// messages.
	remoteMu  sync.Mutex
	remoteBuf []Message
	// staged holds messages received from peers, keyed by the sender's
	// superstep; they become visible in superstep s+1, mirroring the
	// in-process snapshot barrier.
	stagedMu sync.Mutex
	staged   map[int][]Message
	// sgCount is the total number of local subgraphs.
	sgCount int
	// serialMu serializes user Compute calls under SerialMeasure.
	serialMu sync.Mutex

	// Per-run state, allocated once and recycled across Runs.
	stepSim []hostStep // per-worker simulated timing, indexed by pos
	// stepBar releases workers into a superstep after the coordinator has
	// published the stop decision (and routed initial / promoted
	// messages); snapBar guarantees every worker has snapshotted its
	// inbox before any worker flushes new messages; endBar is the BSP
	// synchronization point whose wait is the paper's "sync overhead".
	stepBar *cyclicBarrier // workers + coordinator
	snapBar *cyclicBarrier // workers only
	endBar  *cyclicBarrier // workers + coordinator
	// stopping is published by the coordinator before it arrives at
	// stepBar; the barrier's lock provides the happens-before edge.
	stopping bool
	// serial caches cfg.serialMeasure() for the current Run.
	serial   bool
	stepSent atomic.Int64
	dropped  atomic.Int64
	panicMu  sync.Mutex
	panics   []error
	prog     Program

	// tracer, when set and enabled, receives per-superstep phase spans and
	// per-subgraph compute spans; traceTS labels them with the TI-BSP
	// timestep driving this Run (-1 for raw engine runs). Both are written
	// only between Runs, so workers read them without synchronization.
	tracer  *obs.Tracer
	traceTS int32
	// watchdog, when set, observes superstep progress: the coordinator
	// brackets each superstep and every worker reports its barrier arrival,
	// so a partition whose Compute never returns is named instead of
	// hanging silently. Written only between Runs.
	watchdog *obs.Watchdog
	// initialHalted lists subgraphs that start the next Run already halted:
	// they stay idle until a message arrives for them. Written only between
	// Runs (see SetInitialHalted).
	initialHalted []subgraph.ID
}

// SetWatchdog attaches a stall watchdog; nil (the default) detaches it. The
// hooks cost one predicted nil-check per superstep per worker when
// detached, preserving the zero-allocation hot path. Must not be called
// while a Run is in flight. For distributed runs attach the watchdog to the
// cluster node instead, where parties are ranks rather than partitions.
func (e *Engine) SetWatchdog(wd *obs.Watchdog) { e.watchdog = wd }

// SetTracer attaches an observability tracer; nil (the default) detaches
// it. A disabled tracer costs one predicted branch per instrumentation
// site, preserving the zero-allocation superstep hot path. Must not be
// called while a Run is in flight.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetTraceTimestep labels subsequent Runs' spans with a TI-BSP timestep
// (the core runner calls this before each timestep's Run). Must not be
// called while a Run is in flight.
func (e *Engine) SetTraceTimestep(ts int) { e.traceTS = int32(ts) }

// SetInitialHalted marks subgraphs that begin subsequent Runs in the halted
// state: they skip superstep 0 (and all later supersteps) until a message
// arrives for them, at which point they participate normally. The TI-BSP
// incremental scheduler uses this to keep subgraphs untouched by a
// timestep's delta out of the initial frontier. The engine retains ids
// (without copying) until the next call; nil or empty restores the default
// everyone-active-at-superstep-0 behavior. Unknown IDs are ignored. Must
// not be called while a Run is in flight.
func (e *Engine) SetInitialHalted(ids []subgraph.ID) { e.initialHalted = ids }

// NewEngine builds an engine over partition data from subgraph.Build.
func NewEngine(parts []*subgraph.PartitionData, cfg Config) *Engine {
	return NewEngineRemote(parts, cfg, nil)
}

// NewEngineRemote builds an engine owning only the given partitions of a
// larger distributed execution; messages to other partitions are routed
// through remote, and termination is decided by the global barrier. A nil
// remote yields a standalone engine.
func NewEngineRemote(parts []*subgraph.PartitionData, cfg Config, remote Remote) *Engine {
	e := &Engine{cfg: cfg, remote: remote, byPID: make(map[int]*worker, len(parts)), staged: make(map[int][]Message), traceTS: -1}
	cores := cfg.cores()
	for pos, pd := range parts {
		n := len(pd.Subgraphs)
		w := &worker{
			pid:      pd.PID,
			pos:      pos,
			part:     pd,
			fill:     make([][]Message, n),
			read:     make([][]Message, n),
			halted:   make([]bool, n),
			ctxs:     make([]Context, n),
			active:   make([]int, 0, n),
			outs:     make([][]Message, n),
			outPtrs:  make([]*[]Message, n),
			extras:   make([]map[string][]Extra, n),
			durs:     make([]time.Duration, n),
			avail:    make([]time.Duration, cores),
			routeBuf: make([][]Message, len(parts)),
		}
		for i := range w.ctxs {
			w.ctxs[i].worker = w
			w.ctxs[i].sg = pd.Subgraphs[i]
		}
		e.workers = append(e.workers, w)
		e.byPID[pd.PID] = w
		e.sgCount += n
	}
	nw := len(e.workers)
	e.stepSim = make([]hostStep, nw)
	e.stepBar = newCyclicBarrier(nw + 1)
	e.snapBar = newCyclicBarrier(nw)
	e.endBar = newCyclicBarrier(nw + 1)
	return e
}

// Inject stages messages arriving from peers, tagged with the sender's
// superstep; the engine makes them visible at the start of superstep
// senderSuperstep+1, mirroring the in-process snapshot barrier (a fast peer
// may flush superstep s before this host has even snapshotted s's inbox).
// Safe to call from transport reader goroutines at any time. Messages for
// partitions not owned here are dropped at promotion (and counted in
// Result.MsgsDropped).
func (e *Engine) Inject(senderSuperstep int, msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	e.stagedMu.Lock()
	e.staged[senderSuperstep] = append(e.staged[senderSuperstep], msgs...)
	e.stagedMu.Unlock()
}

// promoteStaged moves peers' superstep-s messages into the local inboxes;
// called after the global barrier for s, before the snapshot of s+1.
func (e *Engine) promoteStaged(superstep int) {
	e.stagedMu.Lock()
	msgs := e.staged[superstep]
	delete(e.staged, superstep)
	e.stagedMu.Unlock()
	e.routeLocal(msgs)
}

// NumPartitions returns the number of partition workers.
func (e *Engine) NumPartitions() int { return len(e.workers) }

// Result summarizes one BSP execution.
type Result struct {
	Supersteps int
	// SimTime is the simulated cluster time of the run: per superstep, the
	// slowest host's compute makespan (its subgraphs' measured durations
	// scheduled onto CoresPerHost cores) plus its flush time, summed over
	// supersteps. See metrics.TimestepRecord.SimWall.
	SimTime time.Duration
	// Extras aggregates the out-of-band emissions of all Compute calls,
	// per channel, in deterministic (From, emission) order.
	Extras map[string][]Extra
	// MsgsDropped counts messages addressed to unknown destinations (a
	// partition this engine does not know, or a subgraph index outside the
	// destination partition) that were silently discarded during routing —
	// a program bug made visible.
	MsgsDropped int64
}

// Run executes prog to completion on one graph instance: supersteps proceed
// until every subgraph has voted to halt and no messages are in flight.
// Initial messages are delivered in superstep 0 (and all subgraphs are
// active in superstep 0 regardless). rec, if non-nil, receives the timing
// decomposition for this timestep.
//
// Run spawns a persistent compute pool — one dispatcher goroutine per
// partition worker plus CoresPerHost compute goroutines per worker — that
// lives for the whole Run; supersteps are coordinated with reusable cyclic
// barriers and recycled scratch buffers, so steady-state supersteps perform
// no heap allocation in the engine.
func (e *Engine) Run(prog Program, initial []Message, rec *metrics.TimestepRecord) (*Result, error) {
	// Reset per-run state, halt flags, and deliver initial messages.
	e.serial = e.cfg.serialMeasure()
	e.dropped.Store(0)
	e.stepSent.Store(0)
	e.panics = e.panics[:0]
	e.stopping = false
	e.prog = prog
	for _, w := range e.workers {
		for i := range w.halted {
			w.halted[i] = false
			// An errored previous Run may have left undelivered messages
			// behind; a fresh Run starts with clean inboxes.
			w.fill[i] = w.fill[i][:0]
			w.read[i] = w.read[i][:0]
		}
		if rec != nil {
			w.step = &rec.Parts[w.pid]
		} else {
			w.step = nil
		}
	}
	for _, sid := range e.initialHalted {
		if w, ok := e.byPID[sid.Partition()]; ok {
			if i := sid.Index(); i >= 0 && i < len(w.halted) {
				w.halted[i] = true
			}
		}
	}
	if e.remote != nil {
		for _, m := range initial {
			if _, ok := e.byPID[m.To.Partition()]; !ok {
				return nil, fmt.Errorf("bsp: initial message to non-local partition %d in distributed run; route temporal messages through the coordinator", m.To.Partition())
			}
		}
	}
	e.routeLocal(initial)

	// Launch the per-run compute pool: a dispatcher goroutine per worker
	// and cores compute goroutines per worker, all living until the run's
	// stop decision.
	cores := e.cfg.cores()
	var pool sync.WaitGroup
	for _, w := range e.workers {
		w.tasks = make(chan uint64, len(w.part.Subgraphs))
		for c := 0; c < cores; c++ {
			pool.Add(1)
			go func(w *worker) {
				defer pool.Done()
				w.computeLoop(e)
			}(w)
		}
		pool.Add(1)
		go func(w *worker) {
			defer pool.Done()
			w.loop(e)
		}(w)
	}
	shutdown := func() {
		e.stopping = true
		e.stepBar.await()
		for _, w := range e.workers {
			close(w.tasks)
		}
		pool.Wait()
		e.prog = nil
	}

	res := &Result{Extras: make(map[string][]Extra)}
	maxSupersteps := e.cfg.maxSupersteps()
	for superstep := 0; ; superstep++ {
		if superstep >= maxSupersteps {
			shutdown()
			return nil, fmt.Errorf("bsp: exceeded %d supersteps without terminating", maxSupersteps)
		}
		// Release workers into the superstep, then wait for every worker
		// to finish computing and flushing it.
		e.watchdog.StepBegin(int(e.traceTS), superstep)
		e.stepBar.await()
		e.endBar.await()

		if len(e.panics) > 0 {
			err := e.panics[0]
			shutdown()
			return nil, err
		}

		// Simulated cluster accounting: the superstep ends when the
		// slowest host finishes computing and flushing; every other host
		// idles at the barrier for the difference.
		var localSimMax time.Duration
		for p := range e.stepSim {
			if t := e.stepSim[p].compute + e.stepSim[p].flush; t > localSimMax {
				localSimMax = t
			}
		}
		localHalted := true
		for _, w := range e.workers {
			for _, h := range w.halted {
				if !h {
					localHalted = false
					break
				}
			}
		}

		stats := BarrierStats{Sent: e.stepSent.Swap(0), AllHalted: localHalted, SimMax: localSimMax}
		if e.remote != nil {
			// Ship cross-host messages, then synchronize the global
			// superstep barrier and adopt the aggregated stats.
			e.remoteMu.Lock()
			out := e.remoteBuf
			e.remoteBuf = nil
			e.remoteMu.Unlock()
			if err := e.remote.Send(superstep, out); err != nil {
				shutdown()
				return nil, fmt.Errorf("bsp: superstep %d send: %w", superstep, err)
			}
			global, err := e.remote.Barrier(superstep, stats)
			if err != nil {
				shutdown()
				return nil, fmt.Errorf("bsp: superstep %d barrier: %w", superstep, err)
			}
			stats = global
			// Every peer has flushed superstep `superstep`; its messages
			// become visible in the next superstep's snapshot.
			e.promoteStaged(superstep)
		}

		clusterStep := stats.SimMax + e.cfg.SuperstepLatency
		res.SimTime += clusterStep
		if tr := e.tracer; tr.Active() {
			// The simulated per-superstep decomposition feeds skew
			// analysis: each worker's barrier share is how long it idled
			// behind the superstep's straggler on the simulated cluster.
			for _, w := range e.workers {
				c := e.stepSim[w.pos].compute
				f := e.stepSim[w.pos].flush
				tr.RecordStepStat(e.traceTS, int32(superstep), int32(w.pid), c, f, clusterStep-c-f)
			}
		}
		if rec != nil {
			rec.SimWall += clusterStep
			for _, w := range e.workers {
				ps := &rec.Parts[w.pid]
				ps.Compute += e.stepSim[w.pos].compute
				ps.Flush += e.stepSim[w.pos].flush
				ps.Barrier += clusterStep - e.stepSim[w.pos].compute - e.stepSim[w.pos].flush
			}
		}
		res.Supersteps = superstep + 1
		if rec != nil {
			rec.Supersteps = res.Supersteps
		}
		e.watchdog.StepEnd(superstep)

		// Termination: nothing sent anywhere and everything halted.
		if stats.Sent == 0 && stats.AllHalted {
			break
		}
	}
	shutdown()

	// Merge each worker's accumulated extras in worker order, then order
	// deterministically across partitions.
	for _, w := range e.workers {
		for ch, list := range w.extraAcc {
			res.Extras[ch] = append(res.Extras[ch], list...)
		}
		w.extraAcc = nil
	}
	for ch := range res.Extras {
		list := res.Extras[ch]
		sortExtras(list)
		res.Extras[ch] = list
	}
	res.MsgsDropped = e.dropped.Load()
	if rec != nil {
		rec.MsgsDropped += res.MsgsDropped
	}
	return res, nil
}

// loop is a worker's per-run dispatcher: it drives every superstep for its
// partition — snapshot, active-set construction, compute dispatch, flush,
// and timing — using only recycled scratch state.
func (w *worker) loop(e *Engine) {
	// The barrier span of superstep s is only closed when superstep s+1's
	// first compute dispatches (or the run stops), so it is recorded one
	// iteration late from these carried timestamps — this costs zero extra
	// clock reads on the hot path.
	var prevFlushDone time.Time
	prevStep := int32(-1)
	for superstep := 0; ; superstep++ {
		// The coordinator publishes the stop decision (and finishes
		// routing initial / promoted messages) before arriving here.
		e.stepBar.await()
		if e.stopping {
			if prevStep >= 0 && e.tracer.Active() {
				e.tracer.RecordSpan(obs.SpanBarrier, int32(w.pid), e.traceTS, prevStep, 0, prevFlushDone, time.Since(prevFlushDone))
			}
			return
		}
		w.superstep = superstep
		w.snapshot()
		e.snapBar.await()
		tracing := e.tracer.Active()
		w.tracing = tracing
		w.phaseStart = time.Time{}

		// Active set: subgraphs with mail or not halted. Halt flags reset to
		// false at Run start (except those pre-halted via SetInitialHalted),
		// so superstep 0 runs everything by default.
		active := w.active[:0]
		for i := range w.part.Subgraphs {
			if len(w.read[i]) > 0 || !w.halted[i] {
				active = append(active, i)
			}
		}
		w.active = active

		w.wg.Add(len(active))
		for ai, sgi := range active {
			w.tasks <- uint64(ai)<<32 | uint64(uint32(sgi))
		}
		w.wg.Wait()
		computeDone := time.Now()
		simCompute := makespan(w.durs[:len(active)], w.avail)

		// Flush phase: route outgoing messages ("partition overhead" in
		// the paper's terminology), then recycle the message buffers and
		// the consumed inbox snapshot.
		var sent int64
		for ai := range active {
			out := w.outs[ai]
			if len(out) > 0 {
				sent += int64(len(out))
				e.flushFrom(w, out)
			}
			if w.outPtrs[ai] != nil {
				*w.outPtrs[ai] = out[:0]
				msgSlicePool.Put(w.outPtrs[ai])
				w.outPtrs[ai] = nil
			}
			w.outs[ai] = nil
		}
		for i := range w.read {
			w.read[i] = w.read[i][:0]
		}
		flushDone := time.Now()

		// Merge extras into the per-run accumulator in active order.
		for ai := range active {
			ex := w.extras[ai]
			if ex == nil {
				continue
			}
			if w.extraAcc == nil {
				w.extraAcc = make(map[string][]Extra)
			}
			for ch, list := range ex {
				w.extraAcc[ch] = append(w.extraAcc[ch], list...)
			}
			w.extras[ai] = nil
		}

		e.stepSim[w.pos] = hostStep{compute: simCompute, flush: flushDone.Sub(computeDone)}
		e.stepSent.Add(sent)
		if w.step != nil {
			atomic.AddInt64(&w.step.MsgsSent, sent)
		}
		if tracing {
			phaseStart := w.phaseStart
			if phaseStart.IsZero() {
				phaseStart = computeDone // no active subgraphs this superstep
			}
			if prevStep >= 0 {
				e.tracer.RecordSpan(obs.SpanBarrier, int32(w.pid), e.traceTS, prevStep, 0, prevFlushDone, phaseStart.Sub(prevFlushDone))
			}
			e.tracer.RecordPhases(int32(w.pid), e.traceTS, int32(superstep), phaseStart, computeDone, flushDone)
			prevFlushDone, prevStep = flushDone, int32(superstep)
		} else {
			prevStep = -1
		}

		// Barrier ("sync overhead" is derived from the simulated schedule
		// by the coordinator; the barrier itself only synchronizes).
		e.watchdog.Arrive(superstep, w.pid)
		e.endBar.await()
	}
}

// computeLoop is one core of the worker's persistent compute pool.
func (w *worker) computeLoop(e *Engine) {
	lastStep := -1
	for packed := range w.tasks {
		// Attribute CPU samples to (timestep, superstep, partition): the
		// worker publishes w.superstep before feeding tasks, so reading it
		// after the channel receive is ordered. Labels are refreshed only
		// when the superstep changes (one allocation per goroutine per
		// superstep, and only when ProfileLabels is opted in).
		if e.cfg.ProfileLabels && w.superstep != lastStep {
			lastStep = w.superstep
			setComputeLabels(int(e.traceTS), lastStep, w.pid)
		}
		w.runCompute(e, int(packed>>32), int(uint32(packed)))
		w.wg.Done()
	}
}

// labelInts caches decimal strings for small non-negative ints so superstep
// label refreshes don't also pay a strconv allocation.
var labelInts = func() (s [1024]string) {
	for i := range s {
		s[i] = strconv.Itoa(i)
	}
	return
}()

func labelInt(n int) string {
	if n >= 0 && n < len(labelInts) {
		return labelInts[n]
	}
	return strconv.Itoa(n)
}

// setComputeLabels stamps the calling goroutine with the pprof labels CPU
// profiles group by.
func setComputeLabels(ts, step, part int) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("timestep", labelInt(ts), "superstep", labelInt(step), "partition", labelInt(part))))
}

// runCompute executes one Compute invocation on subgraph index sgi (the
// ai-th active subgraph of the superstep), reusing the subgraph's Context
// and a pooled outgoing-message buffer.
func (w *worker) runCompute(e *Engine, ai, sgi int) {
	defer func() {
		if r := recover(); r != nil {
			e.panicMu.Lock()
			e.panics = append(e.panics, fmt.Errorf("bsp: Compute panic on subgraph %v superstep %d: %v", w.part.Subgraphs[sgi].SID, w.superstep, r))
			e.panicMu.Unlock()
		}
	}()
	msgs := w.read[sgi]
	sortMessages(msgs)
	outPtr := msgSlicePool.Get().(*[]Message)
	ctx := &w.ctxs[sgi]
	ctx.superstep = w.superstep
	ctx.seq = 0
	ctx.out = (*outPtr)[:0]
	ctx.halted = false
	ctx.extra = nil
	var callStart time.Time
	dur := func() time.Duration {
		if e.serial {
			e.serialMu.Lock()
			defer e.serialMu.Unlock()
		}
		callStart = time.Now()
		e.prog.Compute(ctx, w.part.Subgraphs[sgi], w.superstep, msgs)
		return time.Since(callStart)
	}()
	w.durs[ai] = dur
	if w.tracing {
		if ai == 0 {
			// First dispatched task: its start is the compute phase's start
			// (tasks are fed and consumed in order), so loop never needs an
			// extra clock read for the phase span.
			w.phaseStart = callStart
		}
		e.tracer.RecordSpan(obs.SpanCompute, int32(w.pid), e.traceTS, int32(w.superstep), int64(w.part.Subgraphs[sgi].SID), callStart, dur)
	}
	w.halted[sgi] = ctx.halted
	w.outs[ai] = ctx.out
	w.outPtrs[ai] = outPtr
	w.extras[ai] = ctx.extra
	ctx.out = nil
}

// flushFrom delivers one subgraph's outgoing messages using the sending
// worker's grouping scratch: local messages are bucketed per destination
// worker so each inbox lock is taken once, non-local ones are buffered for
// the superstep's cross-host send. Messages to unknown destinations are
// dropped and counted.
func (e *Engine) flushFrom(w *worker, msgs []Message) {
	for _, m := range msgs {
		dst, ok := e.byPID[m.To.Partition()]
		if !ok {
			if e.remote != nil {
				w.remoteOut = append(w.remoteOut, m)
			} else {
				e.dropped.Add(1)
			}
			continue
		}
		w.routeBuf[dst.pos] = append(w.routeBuf[dst.pos], m)
	}
	for pos, group := range w.routeBuf {
		if len(group) == 0 {
			continue
		}
		dst := e.workers[pos]
		var delivered int64
		dst.inboxMu.Lock()
		for _, m := range group {
			if dst.enqueue(m.To.Index(), m) {
				delivered++
			}
		}
		dst.inboxMu.Unlock()
		if int64(len(group)) > delivered {
			e.dropped.Add(int64(len(group)) - delivered)
		}
		if delivered > 0 && dst.step != nil {
			atomic.AddInt64(&dst.step.MsgsRecv, delivered)
		}
		w.routeBuf[pos] = group[:0]
	}
	if len(w.remoteOut) > 0 {
		e.remoteMu.Lock()
		e.remoteBuf = append(e.remoteBuf, w.remoteOut...)
		e.remoteMu.Unlock()
		w.remoteOut = w.remoteOut[:0]
	}
}

// routeLocal delivers messages to locally owned partitions outside the
// superstep hot path (initial messages, staged promotions). Messages to
// unknown destinations are dropped and counted in MsgsDropped.
func (e *Engine) routeLocal(msgs []Message) {
	for _, m := range msgs {
		w, ok := e.byPID[m.To.Partition()]
		if !ok {
			e.dropped.Add(1)
			continue
		}
		w.inboxMu.Lock()
		delivered := w.enqueue(m.To.Index(), m)
		w.inboxMu.Unlock()
		if !delivered {
			e.dropped.Add(1)
			continue
		}
		if w.step != nil {
			atomic.AddInt64(&w.step.MsgsRecv, 1)
		}
	}
}

// cyclicBarrier is a reusable generation-counted barrier: await blocks
// until n parties have arrived, then all are released and the barrier
// resets for the next phase. Unlike a one-shot channel barrier it is
// allocated once per engine and reused for every superstep.
type cyclicBarrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await blocks until all n parties have arrived in this generation.
func (b *cyclicBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// hostStep is one host's simulated timing for one superstep.
type hostStep struct {
	compute time.Duration
	flush   time.Duration
}

// makespan schedules task durations onto len(avail) identical cores
// greedily in order (the engine's dispatch order) and returns the
// completion time of the last task — the host's simulated compute time for
// the superstep. avail is caller-owned scratch, one slot per core.
func makespan(durs []time.Duration, avail []time.Duration) time.Duration {
	if len(avail) == 0 {
		avail = make([]time.Duration, 1)
	}
	for i := range avail {
		avail[i] = 0
	}
	for _, d := range durs {
		min := 0
		for c := 1; c < len(avail); c++ {
			if avail[c] < avail[min] {
				min = c
			}
		}
		avail[min] += d
	}
	var span time.Duration
	for _, a := range avail {
		if a > span {
			span = a
		}
	}
	return span
}
