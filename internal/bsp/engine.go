package bsp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// Program is the user logic of one BSP execution (one TI-BSP timestep).
type Program interface {
	// Compute is invoked on every active subgraph in every superstep.
	// Subgraphs of the same partition may run concurrently; the
	// paper's contract (and this engine's) is that a Compute invocation
	// only touches its own subgraph's state.
	Compute(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message)
}

// ComputeFunc adapts a function to the Program interface.
type ComputeFunc func(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message)

// Compute implements Program.
func (f ComputeFunc) Compute(ctx *Context, sg *subgraph.Subgraph, superstep int, msgs []Message) {
	f(ctx, sg, superstep, msgs)
}

// Context is handed to each Compute invocation; it carries the message
// emission and halt-voting primitives. A Context is only valid for the
// duration of the invocation it was created for.
type Context struct {
	worker    *worker
	sg        *subgraph.Subgraph
	superstep int
	seq       int64
	out       []Message
	halted    bool
	// extra collects out-of-band emissions (temporal messages, merge
	// messages, outputs) consumed by the TI-BSP layer.
	extra map[string][]Extra
}

// Extra is an out-of-band emission recorded by a Compute call for a named
// channel (used by the TI-BSP layer for temporal and merge messaging).
type Extra struct {
	From subgraph.ID
	To   subgraph.ID // meaning depends on the channel
	Data any
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// SendTo sends a payload to another subgraph; it is delivered at the start
// of the next superstep.
func (c *Context) SendTo(dst subgraph.ID, payload any) {
	c.out = append(c.out, Message{From: c.sg.SID, To: dst, Seq: c.seq, Payload: payload})
	c.seq++
}

// SendToAllNeighbors sends a payload to every subgraph that shares a remote
// edge with this one.
func (c *Context) SendToAllNeighbors(payload any) {
	for _, nb := range c.sg.Neighbors {
		c.SendTo(nb, payload)
	}
}

// VoteToHalt marks this subgraph inactive; it will not run in the next
// superstep unless a message arrives for it. The BSP ends when all
// subgraphs are halted and no messages are in flight.
func (c *Context) VoteToHalt() { c.halted = true }

// Emit records an out-of-band payload on a named channel for the layer
// driving the engine (the TI-BSP runner uses channels "next-timestep",
// "next-timestep-targeted", "merge" and "output").
func (c *Context) Emit(channel string, to subgraph.ID, data any) {
	if c.extra == nil {
		c.extra = make(map[string][]Extra)
	}
	c.extra[channel] = append(c.extra[channel], Extra{From: c.sg.SID, To: to, Data: data})
}

// AddCounter accumulates a named per-partition metric counter (e.g. number
// of vertices finalized this timestep).
func (c *Context) AddCounter(name string, delta int64) {
	if c.worker.step == nil {
		return
	}
	c.worker.counterMu.Lock()
	c.worker.step.AddCounter(name, delta)
	c.worker.counterMu.Unlock()
}

// Config parameterizes an Engine.
type Config struct {
	// CoresPerHost bounds concurrent Compute calls within one partition
	// worker. Zero means 2 (the paper's m3.large has 2 cores).
	CoresPerHost int
	// MaxSupersteps aborts a BSP that fails to terminate. Zero means 10^6.
	MaxSupersteps int
	// SuperstepLatency is a modeled per-superstep cluster coordination
	// cost (barrier + bulk message exchange) added to the simulated
	// cluster time. Zero models an infinitely fast interconnect.
	SuperstepLatency time.Duration
	// SerialMeasure forces user Compute calls to execute one at a time so
	// their measured durations are exact. Defaults to automatic: enabled
	// when GOMAXPROCS is 1, where concurrent goroutines would otherwise
	// interleave inside each other's timing windows and corrupt the
	// simulated schedule. The simulated cluster still schedules the
	// measured durations onto CoresPerHost cores per host.
	SerialMeasure *bool
}

func (c Config) cores() int {
	if c.CoresPerHost <= 0 {
		return 2
	}
	return c.CoresPerHost
}

func (c Config) maxSupersteps() int {
	if c.MaxSupersteps <= 0 {
		return 1_000_000
	}
	return c.MaxSupersteps
}

func (c Config) serialMeasure() bool {
	if c.SerialMeasure != nil {
		return *c.SerialMeasure
	}
	return runtime.GOMAXPROCS(0) == 1
}

// worker is one simulated host: it owns one partition and its subgraphs'
// inboxes and halt flags.
type worker struct {
	pid  int
	part *subgraph.PartitionData

	inboxMu sync.Mutex
	inbox   map[int][]Message // subgraph index -> pending messages

	halted []bool

	// step is the metrics slot for the current timestep.
	step      *metrics.PartitionStep
	counterMu sync.Mutex
}

func (w *worker) enqueue(msgs []Message) {
	w.inboxMu.Lock()
	for _, m := range msgs {
		idx := m.To.Index()
		w.inbox[idx] = append(w.inbox[idx], m)
	}
	w.inboxMu.Unlock()
}

// takeInbox removes and returns all pending messages, keyed by subgraph.
func (w *worker) takeInbox() map[int][]Message {
	w.inboxMu.Lock()
	in := w.inbox
	w.inbox = make(map[int][]Message)
	w.inboxMu.Unlock()
	return in
}

// BarrierStats is the per-superstep state exchanged across hosts in a
// distributed execution: outgoing message count, halt consensus, and the
// slowest host's simulated (compute + flush) time.
type BarrierStats struct {
	Sent      int64
	AllHalted bool
	SimMax    time.Duration
}

// Remote connects an engine that owns only a subset of partitions to its
// peers in a distributed run. Implementations (see internal/cluster) route
// cross-host messages and realize the global superstep barrier.
type Remote interface {
	// Send transmits messages addressed to partitions this engine does not
	// own. Called once per superstep, after local compute and flush.
	Send(superstep int, msgs []Message) error
	// Barrier blocks until every peer has finished flushing the superstep
	// (so all messages addressed here have been delivered via Inject) and
	// returns the globally aggregated stats: Sent summed, AllHalted ANDed,
	// SimMax maxed.
	Barrier(superstep int, local BarrierStats) (BarrierStats, error)
}

// Engine executes BSP programs over a fixed set of partitions.
type Engine struct {
	cfg     Config
	workers []*worker
	byPID   map[int]*worker
	// remote is non-nil in distributed executions that own a partition
	// subset.
	remote Remote
	// remoteMu guards remoteBuf, the per-superstep buffer of cross-host
	// messages.
	remoteMu  sync.Mutex
	remoteBuf []Message
	// staged holds messages received from peers, keyed by the sender's
	// superstep; they become visible in superstep s+1, mirroring the
	// in-process snapshot barrier.
	stagedMu sync.Mutex
	staged   map[int][]Message
	// sgCount is the total number of local subgraphs.
	sgCount int
	// serialMu serializes user Compute calls under SerialMeasure.
	serialMu sync.Mutex
}

// NewEngine builds an engine over partition data from subgraph.Build.
func NewEngine(parts []*subgraph.PartitionData, cfg Config) *Engine {
	return NewEngineRemote(parts, cfg, nil)
}

// NewEngineRemote builds an engine owning only the given partitions of a
// larger distributed execution; messages to other partitions are routed
// through remote, and termination is decided by the global barrier. A nil
// remote yields a standalone engine.
func NewEngineRemote(parts []*subgraph.PartitionData, cfg Config, remote Remote) *Engine {
	e := &Engine{cfg: cfg, remote: remote, byPID: make(map[int]*worker, len(parts)), staged: make(map[int][]Message)}
	for _, pd := range parts {
		w := &worker{
			pid:    pd.PID,
			part:   pd,
			inbox:  make(map[int][]Message),
			halted: make([]bool, len(pd.Subgraphs)),
		}
		e.workers = append(e.workers, w)
		e.byPID[pd.PID] = w
		e.sgCount += len(pd.Subgraphs)
	}
	return e
}

// Inject stages messages arriving from peers, tagged with the sender's
// superstep; the engine makes them visible at the start of superstep
// senderSuperstep+1, mirroring the in-process snapshot barrier (a fast peer
// may flush superstep s before this host has even snapshotted s's inbox).
// Safe to call from transport reader goroutines at any time. Messages for
// partitions not owned here are dropped at promotion.
func (e *Engine) Inject(senderSuperstep int, msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	e.stagedMu.Lock()
	e.staged[senderSuperstep] = append(e.staged[senderSuperstep], msgs...)
	e.stagedMu.Unlock()
}

// promoteStaged moves peers' superstep-s messages into the local inboxes;
// called after the global barrier for s, before the snapshot of s+1.
func (e *Engine) promoteStaged(superstep int) {
	e.stagedMu.Lock()
	msgs := e.staged[superstep]
	delete(e.staged, superstep)
	e.stagedMu.Unlock()
	e.routeLocal(msgs)
}

// NumPartitions returns the number of partition workers.
func (e *Engine) NumPartitions() int { return len(e.workers) }

// Result summarizes one BSP execution.
type Result struct {
	Supersteps int
	// SimTime is the simulated cluster time of the run: per superstep, the
	// slowest host's compute makespan (its subgraphs' measured durations
	// scheduled onto CoresPerHost cores) plus its flush time, summed over
	// supersteps. See metrics.TimestepRecord.SimWall.
	SimTime time.Duration
	// Extras aggregates the out-of-band emissions of all Compute calls,
	// per channel, in deterministic (From, emission) order.
	Extras map[string][]Extra
}

// Run executes prog to completion on one graph instance: supersteps proceed
// until every subgraph has voted to halt and no messages are in flight.
// Initial messages are delivered in superstep 0 (and all subgraphs are
// active in superstep 0 regardless). rec, if non-nil, receives the timing
// decomposition for this timestep.
func (e *Engine) Run(prog Program, initial []Message, rec *metrics.TimestepRecord) (*Result, error) {
	// Reset halt flags and deliver initial messages.
	for _, w := range e.workers {
		for i := range w.halted {
			w.halted[i] = false
		}
		if rec != nil {
			w.step = &rec.Parts[w.pid]
		} else {
			w.step = nil
		}
	}
	if e.remote != nil {
		for _, m := range initial {
			if _, ok := e.byPID[m.To.Partition()]; !ok {
				return nil, fmt.Errorf("bsp: initial message to non-local partition %d in distributed run; route temporal messages through the coordinator", m.To.Partition())
			}
		}
	}
	e.route(initial, nil)

	res := &Result{Extras: make(map[string][]Extra)}
	for superstep := 0; ; superstep++ {
		if superstep >= e.cfg.maxSupersteps() {
			return nil, fmt.Errorf("bsp: exceeded %d supersteps without terminating", e.cfg.maxSupersteps())
		}
		var (
			wg        sync.WaitGroup
			doneMu    sync.Mutex
			totalSent int64
			panics    []error
		)
		stepSim := make([]hostStep, len(e.workers))
		workerPos := make(map[int]int, len(e.workers))
		for i, w := range e.workers {
			workerPos[w.pid] = i
		}
		// Two barriers per superstep: snapBarrier guarantees every worker
		// has snapshotted its inbox before any worker flushes new messages
		// (messages sent in superstep S are visible only in S+1);
		// endBarrier is the BSP synchronization point whose wait time is
		// the paper's "sync overhead".
		snapBarrier := newBarrier(len(e.workers))
		endBarrier := newBarrier(len(e.workers))
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				in := w.takeInbox()
				snapBarrier.arrive()
				start := time.Now()

				// Active set: everything in superstep 0, else subgraphs
				// with mail or not halted.
				var active []int
				for i := range w.part.Subgraphs {
					if superstep == 0 || len(in[i]) > 0 || !w.halted[i] {
						active = append(active, i)
					}
				}

				outs := make([][]Message, len(active))
				extras := make([]map[string][]Extra, len(active))
				durs := make([]time.Duration, len(active))
				sem := make(chan struct{}, e.cfg.cores())
				var cwg sync.WaitGroup
				for ai, sgi := range active {
					cwg.Add(1)
					sem <- struct{}{}
					go func(ai, sgi int) {
						defer func() {
							if r := recover(); r != nil {
								doneMu.Lock()
								panics = append(panics, fmt.Errorf("bsp: Compute panic on subgraph %v superstep %d: %v", w.part.Subgraphs[sgi].SID, superstep, r))
								doneMu.Unlock()
							}
							<-sem
							cwg.Done()
						}()
						msgs := in[sgi]
						sortMessages(msgs)
						ctx := &Context{
							worker:    w,
							sg:        w.part.Subgraphs[sgi],
							superstep: superstep,
						}
						durs[ai] = func() time.Duration {
							if e.cfg.serialMeasure() {
								e.serialMu.Lock()
								defer e.serialMu.Unlock()
							}
							callStart := time.Now()
							prog.Compute(ctx, w.part.Subgraphs[sgi], superstep, msgs)
							return time.Since(callStart)
						}()
						w.halted[sgi] = ctx.halted
						outs[ai] = ctx.out
						extras[ai] = ctx.extra
					}(ai, sgi)
				}
				cwg.Wait()
				computeDone := time.Now()
				simCompute := makespan(durs, e.cfg.cores())

				// Flush phase: route outgoing messages ("partition
				// overhead" in the paper's terminology).
				var sent int64
				for _, out := range outs {
					sent += int64(len(out))
					e.route(out, w)
				}
				flushDone := time.Now()

				// Merge extras deterministically by active order.
				merged := make(map[string][]Extra)
				for _, ex := range extras {
					for ch, list := range ex {
						merged[ch] = append(merged[ch], list...)
					}
				}

				doneMu.Lock()
				totalSent += sent
				for ch, list := range merged {
					res.Extras[ch] = append(res.Extras[ch], list...)
				}
				stepSim[workerPos[w.pid]] = hostStep{compute: simCompute, flush: flushDone.Sub(computeDone)}
				doneMu.Unlock()

				// Barrier ("sync overhead" is derived from the simulated
				// schedule below; the barrier itself only synchronizes).
				endBarrier.arrive()

				if w.step != nil {
					w.counterMu.Lock()
					w.step.MsgsSent += sent
					w.counterMu.Unlock()
				}
				_ = start
			}(w)
		}
		wg.Wait()
		if len(panics) > 0 {
			return nil, panics[0]
		}

		// Simulated cluster accounting: the superstep ends when the slowest
		// host finishes computing and flushing; every other host idles at
		// the barrier for the difference.
		var localSimMax time.Duration
		for p := range stepSim {
			if t := stepSim[p].compute + stepSim[p].flush; t > localSimMax {
				localSimMax = t
			}
		}
		localHalted := true
		for _, w := range e.workers {
			for _, h := range w.halted {
				if !h {
					localHalted = false
					break
				}
			}
		}

		stats := BarrierStats{Sent: totalSent, AllHalted: localHalted, SimMax: localSimMax}
		if e.remote != nil {
			// Ship cross-host messages, then synchronize the global
			// superstep barrier and adopt the aggregated stats.
			e.remoteMu.Lock()
			out := e.remoteBuf
			e.remoteBuf = nil
			e.remoteMu.Unlock()
			if err := e.remote.Send(superstep, out); err != nil {
				return nil, fmt.Errorf("bsp: superstep %d send: %w", superstep, err)
			}
			global, err := e.remote.Barrier(superstep, stats)
			if err != nil {
				return nil, fmt.Errorf("bsp: superstep %d barrier: %w", superstep, err)
			}
			stats = global
			// Every peer has flushed superstep `superstep`; its messages
			// become visible in the next superstep's snapshot.
			e.promoteStaged(superstep)
		}

		clusterStep := stats.SimMax + e.cfg.SuperstepLatency
		res.SimTime += clusterStep
		if rec != nil {
			rec.SimWall += clusterStep
			for _, w := range e.workers {
				pos := workerPos[w.pid]
				ps := &rec.Parts[w.pid]
				ps.Compute += stepSim[pos].compute
				ps.Flush += stepSim[pos].flush
				ps.Barrier += clusterStep - stepSim[pos].compute - stepSim[pos].flush
			}
		}
		res.Supersteps = superstep + 1
		if rec != nil {
			rec.Supersteps = res.Supersteps
		}

		// Termination: nothing sent anywhere and everything halted.
		if stats.Sent == 0 && stats.AllHalted {
			break
		}
	}

	// Deterministic ordering of extras across partitions.
	for ch := range res.Extras {
		list := res.Extras[ch]
		sortExtras(list)
		res.Extras[ch] = list
	}
	return res, nil
}

// route delivers messages to their destination partitions' inboxes; in a
// distributed run, messages to non-local partitions are buffered for the
// superstep's cross-host send.
func (e *Engine) route(msgs []Message, from *worker) {
	if len(msgs) == 0 {
		return
	}
	if e.remote == nil {
		e.routeLocal(msgs)
		return
	}
	local := msgs[:0:0]
	var remote []Message
	for _, m := range msgs {
		if _, ok := e.byPID[m.To.Partition()]; ok {
			local = append(local, m)
		} else {
			remote = append(remote, m)
		}
	}
	e.routeLocal(local)
	if len(remote) > 0 {
		e.remoteMu.Lock()
		e.remoteBuf = append(e.remoteBuf, remote...)
		e.remoteMu.Unlock()
	}
}

// routeLocal delivers messages to locally owned partitions, dropping any
// for unknown destinations (a program bug; the TI-BSP layer validates).
func (e *Engine) routeLocal(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	// Group by destination partition to take each lock once.
	byPart := make(map[int][]Message)
	for _, m := range msgs {
		p := m.To.Partition()
		byPart[p] = append(byPart[p], m)
	}
	for p, group := range byPart {
		w, ok := e.byPID[p]
		if !ok {
			continue
		}
		w.enqueue(group)
		if w.step != nil {
			w.counterMu.Lock()
			w.step.MsgsRecv += int64(len(group))
			w.counterMu.Unlock()
		}
	}
}

// barrier is a simple reusable completion barrier for one superstep.
type barrier struct {
	mu    sync.Mutex
	count int
	total int
	ch    chan struct{}
}

func newBarrier(total int) *barrier {
	return &barrier{total: total, ch: make(chan struct{})}
}

// arrive blocks until all workers have arrived.
func (b *barrier) arrive() {
	b.mu.Lock()
	b.count++
	if b.count == b.total {
		close(b.ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-b.ch
}

// hostStep is one host's simulated timing for one superstep.
type hostStep struct {
	compute time.Duration
	flush   time.Duration
}

// makespan schedules task durations onto `cores` identical cores greedily
// in order (the engine's dispatch order) and returns the completion time of
// the last task — the host's simulated compute time for the superstep.
func makespan(durs []time.Duration, cores int) time.Duration {
	if cores < 1 {
		cores = 1
	}
	avail := make([]time.Duration, cores)
	for _, d := range durs {
		min := 0
		for c := 1; c < cores; c++ {
			if avail[c] < avail[min] {
				min = c
			}
		}
		avail[min] += d
	}
	var span time.Duration
	for _, a := range avail {
		if a > span {
			span = a
		}
	}
	return span
}
