// Package bsp implements the subgraph-centric Bulk Synchronous Parallel
// engine underneath the TI-BSP abstraction (§II-C of the paper): the user's
// Compute method runs once per subgraph per superstep, subgraphs exchange
// messages that are delivered in bulk at superstep boundaries, and execution
// stops when every subgraph has voted to halt and no messages are in flight.
//
// The engine simulates the paper's cluster inside one process: each
// partition is a worker ("host") whose subgraph computations run on a
// bounded number of goroutines ("cores", default 2 to match the paper's
// m3.large VMs). The timing decomposition the paper reports — compute,
// partition overhead (message flushing), sync overhead (barrier wait) — is
// recorded per partition per timestep.
package bsp

import (
	"slices"
	"sort"

	"tsgraph/internal/subgraph"
)

// Message is a unit of communication between subgraphs within a BSP
// execution. Payloads are application-defined; for the TCP transport they
// must be gob-encodable and registered with RegisterPayload.
type Message struct {
	// From is the sending subgraph (the zero value for application inputs).
	From subgraph.ID
	// To is the destination subgraph.
	To subgraph.ID
	// Seq orders messages from the same sender; together with From it gives
	// every inbox a deterministic order regardless of goroutine scheduling.
	Seq int64
	// Payload is the application data.
	Payload any
}

// sortMessages orders an inbox deterministically by (From, Seq). It uses
// slices.SortFunc rather than sort.Slice so the superstep hot path does not
// allocate (sort.Slice boxes its arguments through reflection).
func sortMessages(msgs []Message) {
	slices.SortFunc(msgs, func(a, b Message) int {
		if a.From != b.From {
			if a.From < b.From {
				return -1
			}
			return 1
		}
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
}

// sortExtras orders out-of-band emissions deterministically: by emitting
// subgraph, preserving each subgraph's emission order (which follows
// superstep order).
func sortExtras(extras []Extra) {
	sort.SliceStable(extras, func(i, j int) bool {
		return extras[i].From < extras[j].From
	})
}
