package ingest

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
)

// Options configures an Ingester.
type Options struct {
	// RetainBytes bounds the superseded tail-pack generations kept on disk
	// as a grace window for slow readers (<= 0 keeps none beyond the two
	// always-protected generations per bin).
	RetainBytes int64
	// WALRotateRecords is how many appends may accumulate in the WAL
	// before it is reset (every logged record is already covered by
	// durable packs, so the reset only bounds replay work and file size).
	// 0 means the default of 64.
	WALRotateRecords int
	// GroupCommitWindow, when positive, holds each WAL fsync open this
	// long so concurrent appends can join the commit group and share one
	// fsync. Zero still group-commits opportunistically: appends arriving
	// while an fsync is in flight are covered together by the next one.
	GroupCommitWindow time.Duration
	// Metrics receives the ingest instrumentation; allocated internally
	// when nil. Register it (or Ingester.Metrics()) with the obs.Registry.
	Metrics *Metrics
}

// Ingester is the live-append pipeline over an open dataset:
//
//	validate → WAL stage → fold against head → publish packs → WAL sync
//
// The ack point is the WAL group fsync: once Apply returns, a crash
// anywhere — including mid-pack-write — replays into byte-identical
// packs, because the fold and the gofs.Appender are both deterministic
// functions of (dataset prefix, mutation sequence). Staging before the
// fold and fsyncing after it is safe because the pack publish is itself
// durable (slices and manifest are fsynced): on replay, records whose
// timestep the packs already cover are skipped, and a torn unsynced
// record belongs to an append that was never acked. The manifest publish
// is the visibility point: queries never see a timestep whose bytes are
// not fully on disk.
//
// Deferring the fsync to after the mutex is released is what makes group
// commit work: concurrent Apply calls serialize their stage+fold under
// the lock, then coalesce their fsyncs into one (see gofs.WAL.Sync).
//
// All mutation is serialized under one mutex; reads (Watermark, the
// query path through the Store) are lock-free.
type Ingester struct {
	store *gofs.Store
	met   *Metrics
	opt   Options

	mu         sync.Mutex
	app        *gofs.Appender
	wal        *gofs.WAL
	broken     error // set when WAL and packs may disagree; refuses further appends
	sinceReset int
}

// WALPath returns the conventional WAL location for a dataset directory.
func WALPath(datasetDir string) string {
	return filepath.Join(datasetDir, gofs.WALName)
}

// Open starts an ingest session on a store, replaying any WAL left by a
// crash before returning: recovered mutations for timesteps the packs
// already cover are skipped (they were published before the crash), the
// rest are folded and published, and the WAL is then reset. When Open
// returns, packs, manifest, and WAL agree and the store's watermark is
// the recovered head.
func Open(store *gofs.Store, opt Options) (*Ingester, error) {
	if opt.WALRotateRecords <= 0 {
		opt.WALRotateRecords = 64
	}
	met := opt.Metrics
	if met == nil {
		met = &Metrics{}
	}
	app, err := gofs.NewAppender(store)
	if err != nil {
		return nil, err
	}
	wal, recovered, err := gofs.OpenWAL(WALPath(store.Dir()))
	if err != nil {
		return nil, err
	}
	wal.OnFsync = met.walFsync.observe
	wal.GroupWindow = opt.GroupCommitWindow
	ing := &Ingester{store: store, met: met, opt: opt, app: app, wal: wal}
	for _, payload := range recovered {
		var mut Mutation
		if err := json.Unmarshal(payload, &mut); err != nil {
			wal.Close()
			return nil, fmt.Errorf("ingest: corrupt WAL payload: %w", err)
		}
		if mut.Timestep == nil {
			wal.Close()
			return nil, fmt.Errorf("ingest: WAL payload without timestep")
		}
		head := store.Timesteps()
		if *mut.Timestep < head {
			continue // already folded and published before the crash
		}
		if *mut.Timestep > head {
			wal.Close()
			return nil, fmt.Errorf("ingest: WAL replay gap: record for timestep %d, head %d", *mut.Timestep, head)
		}
		if _, err := ing.foldLocked(&mut); err != nil {
			wal.Close()
			return nil, fmt.Errorf("ingest: WAL replay at timestep %d: %w", *mut.Timestep, err)
		}
	}
	if len(recovered) > 0 {
		if err := wal.Reset(nil); err != nil {
			wal.Close()
			return nil, err
		}
	}
	met.watermark.Store(int64(store.Timesteps()))
	met.walBytes.Store(wal.Size())
	return ing, nil
}

// Metrics returns the ingest instrumentation (never nil).
func (i *Ingester) Metrics() *Metrics { return i.met }

// Watermark returns the published watermark: every timestep below it is
// durably on disk and visible to queries.
func (i *Ingester) Watermark() int { return i.store.Timesteps() }

// WALFsyncs returns how many fsync batches the WAL has issued since open;
// with group commit, concurrent appends share batches, so this is below
// the append count under write concurrency.
func (i *Ingester) WALFsyncs() int64 { return i.wal.Fsyncs() }

// SecondsSinceLastAppend reports the watermark lag for anomaly detection.
func (i *Ingester) SecondsSinceLastAppend() float64 {
	return i.met.SecondsSinceLastAppend()
}

// Apply runs one mutation through the full pipeline and returns the new
// watermark. Concurrency-safe; mutations are serialized through the stage
// and fold, then concurrent callers share one WAL fsync (group commit)
// before any of them is acked.
func (i *Ingester) Apply(mut *Mutation) (watermark int, err error) {
	defer func() {
		if err != nil {
			i.met.failures.Add(1)
		}
	}()
	i.mu.Lock()
	wm, seq, walDur, err := i.applyLocked(mut)
	i.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// Durability point. The packs for this mutation are already published
	// (durably), but the ack contract is that the WAL record also survives:
	// a reported-successful append must replay even if the publish had been
	// torn. Waiting here, outside the mutex, is what lets concurrent
	// appends coalesce into one fsync.
	syncStart := time.Now()
	if serr := i.wal.Sync(seq); serr != nil {
		// The fsync failed, so the WAL's on-disk state is unknown; refuse
		// further appends rather than risk a replay that disagrees with the
		// packs. This mutation itself is durable via its published packs —
		// a retry after restart is rejected with ErrTimestepGap, not
		// double-applied.
		i.mu.Lock()
		if i.broken == nil {
			i.broken = serr
		}
		i.mu.Unlock()
		return 0, serr
	}
	i.met.observeStage(stageWAL, walDur+time.Since(syncStart))
	return wm, nil
}

// applyLocked validates, stages the WAL record, folds, and publishes one
// mutation. Callers hold i.mu and must then Sync the returned sequence
// before acking. walDur is the time spent writing the WAL frame.
func (i *Ingester) applyLocked(mut *Mutation) (watermark int, seq int64, walDur time.Duration, err error) {
	if i.broken != nil {
		return 0, 0, 0, fmt.Errorf("ingest: halted after earlier failure: %w", i.broken)
	}

	head := i.store.Timesteps()
	if mut.Timestep != nil && *mut.Timestep != head {
		return 0, 0, 0, fmt.Errorf("%w: mutation for timestep %d, next is %d", ErrTimestepGap, *mut.Timestep, head)
	}

	// Validate and compile before anything touches disk: a WAL record is
	// only written for a mutation that is guaranteed to fold on replay.
	stageStart := time.Now()
	if _, err := compile(i.store.Template(), mut); err != nil {
		return 0, 0, 0, err
	}
	i.met.observeStage(stageValidate, time.Since(stageStart))

	ts := head
	mut.Timestep = &ts
	payload, err := json.Marshal(mut)
	if err != nil {
		return 0, 0, 0, err
	}
	stageStart = time.Now()
	seq, err = i.wal.Stage(payload)
	if err != nil {
		return 0, 0, 0, err
	}
	walDur = time.Since(stageStart)
	i.met.walBytes.Store(i.wal.Size())

	wm, err := i.foldLocked(mut)
	if err != nil {
		// The WAL now holds a staged record the packs will never cover.
		// Drop it so a later replay cannot resurrect a mutation whose
		// append was reported failed; if even that fails, refuse further
		// appends rather than risk divergence.
		if rerr := i.wal.Reset(nil); rerr != nil {
			i.broken = rerr
		}
		return 0, 0, 0, err
	}

	i.sinceReset++
	if i.sinceReset >= i.opt.WALRotateRecords {
		// Every logged record is covered by durable packs; the reset only
		// bounds replay work. Failure is not fatal — the log just grows.
		// A reset also marks this call's own record synced (its packs are
		// published), so the Sync after the lock returns immediately.
		if err := i.wal.Reset(nil); err == nil {
			i.sinceReset = 0
		}
		if i.opt.RetainBytes >= 0 {
			if _, freed, err := i.store.TrimSuperseded(i.opt.RetainBytes); err == nil {
				i.met.trimmedBytes.Add(freed)
			}
		}
	}
	i.met.walBytes.Store(i.wal.Size())
	return wm, seq, walDur, nil
}

// foldLocked folds one validated mutation into a new head instance and
// publishes it. Callers hold i.mu.
func (i *Ingester) foldLocked(mut *Mutation) (int, error) {
	t := i.store.Template()
	m := i.store.Manifest()
	head := m.Timesteps

	stageStart := time.Now()
	ops, err := compile(t, mut)
	if err != nil {
		return 0, err
	}
	var ins *graph.Instance
	if prev := i.app.Head(); prev != nil {
		ins = prev.Clone()
		ins.Timestep = head
		ins.Time = m.T0 + int64(head)*m.Delta
	} else {
		ins = graph.NewInstance(t, head, m.T0)
	}
	apply(ins, ops)
	i.met.observeStage(stageFold, time.Since(stageStart))

	stageStart = time.Now()
	if err := i.app.Append(ins); err != nil {
		return 0, err
	}
	i.met.observeStage(stagePublish, time.Since(stageStart))
	wm := i.store.Timesteps()
	i.met.watermark.Store(int64(wm))
	i.met.lastAppendNS.Store(time.Now().UnixNano())
	i.met.appends.Add(1)
	return wm, nil
}

// Close closes the WAL. The dataset itself needs no closing.
func (i *Ingester) Close() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.wal.Close()
}
