package ingest

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// maxMutationBytes bounds one POST /ingest body. Far below the WAL's own
// record limit; a timestep's mutations should be a delta, not a dataset.
const maxMutationBytes = 8 << 20

// WatermarkHeader names the response header carrying the dataset
// watermark, mirrored by the serving layer on query responses.
const WatermarkHeader = "X-Tsserve-Watermark"

// ingestResponse is the success body of POST /ingest.
type ingestResponse struct {
	// Timestep is the timestep this mutation created.
	Timestep int `json:"timestep"`
	// Watermark is the published watermark after the append (Timestep+1).
	Watermark int `json:"watermark"`
}

// Handler returns the POST /ingest endpoint: decode one Mutation, run it
// through the pipeline, answer with the created timestep and the new
// watermark. Client errors are 400 (bad mutation) or 409 (timestep gap);
// anything else is a 500 with the watermark header still set so clients
// can observe where the head stands.
func (i *Ingester) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var mut Mutation
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutationBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&mut); err != nil {
			w.Header().Set(WatermarkHeader, strconv.Itoa(i.Watermark()))
			http.Error(w, "bad mutation body: "+err.Error(), http.StatusBadRequest)
			return
		}
		wm, err := i.Apply(&mut)
		if err != nil {
			w.Header().Set(WatermarkHeader, strconv.Itoa(i.Watermark()))
			switch {
			case errors.Is(err, ErrBadMutation):
				http.Error(w, err.Error(), http.StatusBadRequest)
			case errors.Is(err, ErrTimestepGap):
				http.Error(w, err.Error(), http.StatusConflict)
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set(WatermarkHeader, strconv.Itoa(wm))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ingestResponse{Timestep: wm - 1, Watermark: wm})
	})
}
