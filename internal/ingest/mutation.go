// Package ingest turns a read-only tsserve dataset into a live one: it
// accepts per-timestep mutations over HTTP, stages them through a
// CRC-checked write-ahead log, folds them into a new instance against the
// current head, and publishes the result through gofs's append path. The
// dataset watermark (the manifest's Timesteps) advances monotonically; a
// crash at any point replays the WAL into byte-identical packs.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"

	"tsgraph/internal/graph"
)

// ErrBadMutation marks client errors — unknown attributes, unresolvable
// vertices or edges, type mismatches — that an HTTP front end should map
// to 400 rather than 500.
var ErrBadMutation = errors.New("ingest: bad mutation")

// ErrTimestepGap marks a mutation addressed to a timestep that is neither
// already durable nor the next one — the client and server disagree about
// the head, which an HTTP front end maps to 409.
var ErrTimestepGap = errors.New("ingest: timestep gap")

// Mutation is one timestep's worth of attribute changes, the unit the WAL
// logs and the fold applies. Unset attributes carry over from the head
// instance unchanged (timestep 0 of an empty dataset starts from zero
// values). Timestep, when present, must name the timestep the client
// expects to create — a cheap optimistic-concurrency check; when absent
// the server stamps the next timestep.
type Mutation struct {
	Timestep *int        `json:"timestep,omitempty"`
	Vertices []VertexSet `json:"vertices,omitempty"`
	Edges    []EdgeSet   `json:"edges,omitempty"`
}

// VertexSet assigns one vertex attribute. ID is the external vertex id
// from the template (not the dense internal index).
type VertexSet struct {
	ID    int64           `json:"id"`
	Attr  string          `json:"attr"`
	Value json.RawMessage `json:"value"`
}

// EdgeSet assigns one edge attribute on the (first) edge from Src to Dst,
// both external vertex ids.
type EdgeSet struct {
	Src   int64           `json:"src"`
	Dst   int64           `json:"dst"`
	Attr  string          `json:"attr"`
	Value json.RawMessage `json:"value"`
}

// patchOp is one compiled, fully resolved assignment.
type patchOp struct {
	vertex bool
	col    int
	idx    int
	ival   int64
	fval   float64
	sval   string
	lval   []string
	bval   bool
}

// compile resolves a mutation against a template into patch ops, doing all
// validation up front so a WAL record is only ever written for a mutation
// that will fold cleanly (replay must not be able to fail on content).
func compile(t *graph.Template, mut *Mutation) ([]patchOp, error) {
	ops := make([]patchOp, 0, len(mut.Vertices)+len(mut.Edges))
	vs, es := t.VertexSchema(), t.EdgeSchema()
	for i := range mut.Vertices {
		m := &mut.Vertices[i]
		vi := t.VertexIndex(graph.VertexID(m.ID))
		if vi < 0 {
			return nil, fmt.Errorf("%w: unknown vertex id %d", ErrBadMutation, m.ID)
		}
		ci := vs.Index(m.Attr)
		if ci < 0 {
			return nil, fmt.Errorf("%w: unknown vertex attribute %q", ErrBadMutation, m.Attr)
		}
		op := patchOp{vertex: true, col: ci, idx: vi}
		if err := parseValue(&op, vs.Type(ci), m.Value); err != nil {
			return nil, fmt.Errorf("%w: vertex %d attr %q: %v", ErrBadMutation, m.ID, m.Attr, err)
		}
		ops = append(ops, op)
	}
	for i := range mut.Edges {
		m := &mut.Edges[i]
		ui := t.VertexIndex(graph.VertexID(m.Src))
		if ui < 0 {
			return nil, fmt.Errorf("%w: unknown vertex id %d", ErrBadMutation, m.Src)
		}
		di := t.VertexIndex(graph.VertexID(m.Dst))
		if di < 0 {
			return nil, fmt.Errorf("%w: unknown vertex id %d", ErrBadMutation, m.Dst)
		}
		e := t.EdgeBetween(ui, di)
		if e < 0 {
			return nil, fmt.Errorf("%w: no edge %d->%d in template", ErrBadMutation, m.Src, m.Dst)
		}
		ci := es.Index(m.Attr)
		if ci < 0 {
			return nil, fmt.Errorf("%w: unknown edge attribute %q", ErrBadMutation, m.Attr)
		}
		op := patchOp{col: ci, idx: e}
		if err := parseValue(&op, es.Type(ci), m.Value); err != nil {
			return nil, fmt.Errorf("%w: edge %d->%d attr %q: %v", ErrBadMutation, m.Src, m.Dst, m.Attr, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// parseValue decodes a JSON value into the op slot matching the schema
// type. Strict: a float for an int attribute is an error, not a cast.
func parseValue(op *patchOp, typ graph.AttrType, raw json.RawMessage) error {
	if len(raw) == 0 {
		return errors.New("missing value")
	}
	switch typ {
	case graph.TInt:
		return json.Unmarshal(raw, &op.ival)
	case graph.TFloat:
		return json.Unmarshal(raw, &op.fval)
	case graph.TString:
		return json.Unmarshal(raw, &op.sval)
	case graph.TStringList:
		if err := json.Unmarshal(raw, &op.lval); err != nil {
			return err
		}
		if op.lval == nil {
			op.lval = []string{}
		}
		return nil
	case graph.TBool:
		return json.Unmarshal(raw, &op.bval)
	default:
		return fmt.Errorf("unsupported attribute type %d", typ)
	}
}

// apply folds compiled ops into an instance (columns already sized by the
// template; ops already bounds-checked by compile).
func apply(ins *graph.Instance, ops []patchOp) {
	for i := range ops {
		op := &ops[i]
		cols := ins.EdgeCols
		if op.vertex {
			cols = ins.VertexCols
		}
		c := &cols[op.col]
		switch c.Type {
		case graph.TInt:
			c.Ints[op.idx] = op.ival
		case graph.TFloat:
			c.Floats[op.idx] = op.fval
		case graph.TString:
			c.Strings[op.idx] = op.sval
		case graph.TStringList:
			c.StringLists[op.idx] = op.lval
		case graph.TBool:
			c.Bools[op.idx] = op.bval
		}
	}
}
