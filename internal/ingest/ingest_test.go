package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// seedDataset writes a small delta-encoded dataset (latency edge floats +
// tweets vertex string-lists) and returns its template.
func seedDataset(t *testing.T, dir string, steps int) *graph.Template {
	t.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, RemoveFrac: 0.1, Seed: 3})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: steps, T0: 1000, Delta: 60, Min: 1, Max: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sir, err := gen.SIRTweets(g, gen.SIRConfig{Timesteps: steps, T0: 1000, Delta: 60, Memes: []string{"#m"}, HitProb: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ti := g.VertexSchema().Index(gen.AttrTweets)
	for s := 0; s < steps; s++ {
		c.Instance(s).VertexCols[ti] = sir.Collection.Instance(s).VertexCols[ti]
	}
	a, err := (partition.Multilevel{Seed: 6}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gofs.WriteDatasetOptions(dir, c, a, gofs.Options{Pack: 4, Bin: 2, SnapshotEvery: 3}); err != nil {
		t.Fatal(err)
	}
	return g
}

// testMutation builds a deterministic mutation for one appended timestep:
// a couple of vertex tweet-list changes and one edge latency change.
func testMutation(g *graph.Template, step int) *Mutation {
	v1 := step % g.NumVertices()
	v2 := (step * 7) % g.NumVertices()
	// Any vertex with at least one out-edge.
	src := v1
	lo, hi := g.OutEdges(src)
	for hi == lo {
		src = (src + 1) % g.NumVertices()
		lo, hi = g.OutEdges(src)
	}
	dst := g.Target(lo)
	return &Mutation{
		Vertices: []VertexSet{
			{ID: int64(g.VertexID(v1)), Attr: gen.AttrTweets,
				Value: json.RawMessage(fmt.Sprintf(`["#m","s%d"]`, step))},
			{ID: int64(g.VertexID(v2)), Attr: gen.AttrTweets,
				Value: json.RawMessage(`[]`)},
		},
		Edges: []EdgeSet{
			{Src: int64(g.VertexID(src)), Dst: int64(g.VertexID(dst)),
				Attr: gen.AttrLatency, Value: json.RawMessage(fmt.Sprintf(`%d.5`, step))},
		},
	}
}

// datasetBytes snapshots manifest + every slice file (the WAL is excluded:
// it is allowed to differ between an interrupted and a clean run).
func datasetBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	man, err := os.ReadFile(filepath.Join(dir, "manifest.gofs"))
	if err != nil {
		t.Fatal(err)
	}
	out["manifest.gofs"] = man
	entries, err := os.ReadDir(filepath.Join(dir, "slices"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "slices", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out["slices/"+e.Name()] = data
	}
	return out
}

// TestIngestCrashConsistency is the tentpole acceptance test: ingest K
// timesteps; separately, ingest K-1, "crash" after the Kth mutation's WAL
// record is durable but before any pack write (plus a torn partial record
// behind it), and reopen. The recovered dataset must be byte-identical to
// the uninterrupted run — manifest and every slice file.
func TestIngestCrashConsistency(t *testing.T) {
	const seedSteps, appended = 5, 6
	muts := func(g *graph.Template) []*Mutation {
		var ms []*Mutation
		for i := 0; i < appended; i++ {
			ms = append(ms, testMutation(g, seedSteps+i))
		}
		return ms
	}

	// Run A: uninterrupted.
	dirA := t.TempDir()
	gA := seedDataset(t, dirA, seedSteps)
	storeA, err := gofs.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	ingA, err := Open(storeA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts(gA) {
		if _, err := ingA.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := ingA.Watermark(); got != seedSteps+appended {
		t.Fatalf("watermark = %d, want %d", got, seedSteps+appended)
	}
	ingA.Close()

	// Run B: apply all but the last mutation, then simulate a SIGKILL that
	// happened after the final mutation's WAL fsync but before its fold.
	dirB := t.TempDir()
	gB := seedDataset(t, dirB, seedSteps)
	storeB, err := gofs.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	ingB, err := Open(storeB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	msB := muts(gB)
	for _, m := range msB[:appended-1] {
		if _, err := ingB.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	ingB.Close()
	last := msB[appended-1]
	ts := seedSteps + appended - 1
	last.Timestep = &ts
	payload, err := json.Marshal(last)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := gofs.OpenWAL(WALPath(dirB))
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(payload); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	// A torn half-record behind it, as a crash mid-write would leave.
	f, err := os.OpenFile(WALPath(dirB), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("GoWL\x01\x00\x00")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: replay folds the last mutation and discards the torn tail.
	storeB2, err := gofs.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	ingB2, err := Open(storeB2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ingB2.Close()
	if got := ingB2.Watermark(); got != seedSteps+appended {
		t.Fatalf("recovered watermark = %d, want %d", got, seedSteps+appended)
	}

	wantFiles := datasetBytes(t, dirA)
	gotFiles := datasetBytes(t, dirB)
	if len(wantFiles) != len(gotFiles) {
		t.Fatalf("file sets differ: clean %d files, recovered %d", len(wantFiles), len(gotFiles))
	}
	for name, want := range wantFiles {
		got, ok := gotFiles[name]
		if !ok {
			t.Fatalf("recovered run missing %s", name)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs between clean and recovered run", name)
		}
	}

	// And both datasets answer identically to a full offline read.
	cA, err := storeA.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	cB, err := storeB2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if cA.NumInstances() != cB.NumInstances() {
		t.Fatalf("instance counts differ: %d vs %d", cA.NumInstances(), cB.NumInstances())
	}
}

// TestIngestReplayIsIdempotent: reopening without a crash (empty or fully
// covered WAL) changes nothing.
func TestIngestReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 5)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{WALRotateRecords: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ing.Apply(testMutation(g, 5+i)); err != nil {
			t.Fatal(err)
		}
	}
	ing.Close()
	before := datasetBytes(t, dir)

	store2, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := Open(store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if ing2.Watermark() != 8 {
		t.Fatalf("watermark = %d, want 8", ing2.Watermark())
	}
	after := datasetBytes(t, dir)
	for name, want := range before {
		if !bytes.Equal(want, after[name]) {
			t.Errorf("%s changed across a clean reopen", name)
		}
	}
}

// TestIngestValidation: bad mutations are rejected with ErrBadMutation,
// stale/future timesteps with ErrTimestepGap, and neither advances the
// watermark or leaves WAL records behind.
func TestIngestValidation(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 5)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	bad := []*Mutation{
		{Vertices: []VertexSet{{ID: 999999, Attr: gen.AttrTweets, Value: json.RawMessage(`[]`)}}},
		{Vertices: []VertexSet{{ID: int64(g.VertexID(0)), Attr: "nope", Value: json.RawMessage(`[]`)}}},
		{Vertices: []VertexSet{{ID: int64(g.VertexID(0)), Attr: gen.AttrTweets, Value: json.RawMessage(`3`)}}},
		{Edges: []EdgeSet{{Src: int64(g.VertexID(0)), Dst: int64(g.VertexID(0)), Attr: gen.AttrLatency, Value: json.RawMessage(`1`)}}},
	}
	for i, m := range bad {
		if _, err := ing.Apply(m); err == nil {
			t.Errorf("bad mutation %d accepted", i)
		} else if !strings.Contains(err.Error(), "bad mutation") {
			t.Errorf("bad mutation %d: unexpected error %v", i, err)
		}
	}
	wrong := testMutation(g, 5)
	ts := 7
	wrong.Timestep = &ts
	if _, err := ing.Apply(wrong); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("timestep gap not rejected: %v", err)
	}
	if ing.Watermark() != 5 {
		t.Fatalf("failed mutations advanced watermark to %d", ing.Watermark())
	}
	if got, _, err := gofs.ReplayWAL(WALPath(dir)); err != nil || len(got) != 0 {
		t.Fatalf("failed mutations left %d WAL records (err %v)", len(got), err)
	}
	if ing.Metrics().failures.Load() != 5 {
		t.Fatalf("failures counter = %d, want 5", ing.Metrics().failures.Load())
	}
}

// TestIngestRetention: with an aggressive rotate cadence and a zero byte
// budget, superseded tail-pack generations are trimmed as ingestion
// proceeds and the trimmed-bytes counter advances.
func TestIngestRetention(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 5)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{WALRotateRecords: 1, RetainBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	for i := 0; i < 8; i++ {
		if _, err := ing.Apply(testMutation(g, 5+i)); err != nil {
			t.Fatal(err)
		}
	}
	if ing.Metrics().trimmedBytes.Load() <= 0 {
		t.Fatal("retention trimmed nothing")
	}
	if _, err := store.LoadAll(); err != nil {
		t.Fatalf("dataset unreadable after retention: %v", err)
	}
}

// TestIngestHTTP drives the handler end to end: accepted mutations answer
// 200 with the watermark header, malformed bodies 400, gaps 409, and
// non-POST methods 405.
func TestIngestHTTP(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 5)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	srv := httptest.NewServer(ing.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	m, _ := json.Marshal(testMutation(g, 5))
	resp := post(string(m))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good mutation: status %d", resp.StatusCode)
	}
	if wm := resp.Header.Get(WatermarkHeader); wm != "6" {
		t.Fatalf("watermark header = %q, want 6", wm)
	}
	var body ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Timestep != 5 || body.Watermark != 6 {
		t.Fatalf("response = %+v", body)
	}

	if resp := post(`{"bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"vertices":[{"id":1,"attr":"nope","value":[]}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown attr: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"timestep":99}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("gap: status %d, want 409", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", getResp.StatusCode)
	}
}

// tagCountProgram is a minimal incremental-safe TI-BSP program (same shape
// as core's own incremental tests): each subgraph retains its max tag
// count across timesteps.
type tagCountProgram struct {
	attr string
	mu   sync.Mutex
	best map[subgraph.ID]int
}

func (p *tagCountProgram) IncrementalSafe() {}

func (p *tagCountProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	tweets := ctx.Instance().VertexStringLists(ctx.Template(), p.attr)
	count := 0
	for _, lv := range sg.Verts {
		count += len(tweets[sg.Part.GlobalIdx[lv]])
	}
	p.mu.Lock()
	if count > p.best[sg.SID] {
		p.best[sg.SID] = count
	}
	p.mu.Unlock()
	ctx.VoteToHalt()
}

func (p *tagCountProgram) EndOfTimestep(ctx *core.EndContext, sg *subgraph.Subgraph, timestep int) {
	p.mu.Lock()
	best := p.best[sg.SID]
	p.mu.Unlock()
	ctx.Output(best)
}

// TestIngestComposesWithIncremental: a dataset grown by live ingestion
// carries change summaries the incremental scheduler can consume —
// Job.Incremental over the appended prefix skips clean subgraphs yet
// produces outputs identical to a full recompute.
func TestIngestComposesWithIncremental(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 5)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	// Alternate real changes with empty "tick" timesteps (the clock
	// advances, nothing changed): ticks on delta-encoded steps yield empty
	// change summaries every subgraph can skip.
	for i := 0; i < 6; i++ {
		mut := &Mutation{}
		if i%2 == 0 {
			mut.Vertices = []VertexSet{{
				ID: int64(g.VertexID(i % 3)), Attr: gen.AttrTweets,
				Value: json.RawMessage(fmt.Sprintf(`["#m","live%d"]`, i)),
			}}
		}
		if _, err := ing.Apply(mut); err != nil {
			t.Fatal(err)
		}
	}

	parts, err := subgraph.Build(g, store.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	run := func(incremental bool) (*tagCountProgram, *core.Result) {
		s, err := gofs.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		prog := &tagCountProgram{attr: gen.AttrTweets, best: map[subgraph.ID]int{}}
		res, err := core.Run(&core.Job{
			Template: g, Parts: parts,
			Source:      gofs.NewLoader(s),
			Program:     prog,
			Pattern:     core.SequentiallyDependent,
			Incremental: incremental,
		})
		if err != nil {
			t.Fatal(err)
		}
		return prog, res
	}
	fullProg, fullRes := run(false)
	incProg, incRes := run(true)
	if incRes.SubgraphsSkipped == 0 {
		t.Error("incremental run over ingested deltas skipped nothing")
	}
	if len(fullRes.Outputs) != len(incRes.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(fullRes.Outputs), len(incRes.Outputs))
	}
	for sid, want := range fullProg.best {
		if incProg.best[sid] != want {
			t.Errorf("subgraph %v best = %d, want %d", sid, incProg.best[sid], want)
		}
	}
}

// TestIngestConcurrentAppends: concurrent Apply calls (no pinned timestep)
// serialize into consecutive timesteps, all succeed, and group commit
// coalesces their WAL fsyncs — strictly fewer fsyncs than appends once the
// commit window lets writers pile up.
func TestIngestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	g := seedDataset(t, dir, 3)
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := Open(store, Options{GroupCommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	const writers, perWriter = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < perWriter; r++ {
				mut := testMutation(g, w*perWriter+r)
				mut.Timestep = nil // ride the head
				if _, err := ing.Apply(mut); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = writers * perWriter
	if wm := ing.Watermark(); wm != 3+total {
		t.Fatalf("watermark = %d, want %d", wm, 3+total)
	}
	fsyncs := ing.wal.Fsyncs()
	if fsyncs >= total {
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d appends", fsyncs, total)
	}
	t.Logf("group commit: %d appends in %d fsyncs", total, fsyncs)

	// The dataset must still replay clean: reopen and check the head.
	store2, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := store2.Timesteps(); got != 3+total {
		t.Fatalf("reopened store has %d timesteps, want %d", got, 3+total)
	}
}
