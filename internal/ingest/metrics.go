package ingest

import (
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// Ingest-stage indices for the per-stage latency histograms.
const (
	stageValidate = iota
	stageWAL
	stageFold
	stagePublish
	numStages
)

var stageNames = [numStages]string{"validate", "wal", "fold", "publish"}

// Metrics is the ingest tier's instrumentation: append counters, per-stage
// latency histograms (validate → wal → fold → publish), WAL fsync latency
// and size, the published watermark, and the watermark lag (seconds since
// the last successful append — the signal the anomaly detector watches).
// All fields are atomics; one Metrics is shared by the Ingester and the
// obs.Registry scraping it.
type Metrics struct {
	appends      atomic.Uint64
	failures     atomic.Uint64
	stages       [numStages]ingestHist
	walFsync     ingestHist
	walBytes     atomic.Int64
	watermark    atomic.Int64
	lastAppendNS atomic.Int64 // wall clock of the last successful append, 0 = never
	trimmedBytes atomic.Int64
}

// observeStage records one stage's wall time.
func (m *Metrics) observeStage(stage int, d time.Duration) {
	if m == nil {
		return
	}
	m.stages[stage].observe(d)
}

// SecondsSinceLastAppend returns the watermark lag: how long ago the last
// successful append published, 0 when nothing was ever appended (a fresh
// dataset is not lagging, it is idle).
func (m *Metrics) SecondsSinceLastAppend() float64 {
	if m == nil {
		return 0
	}
	ns := m.lastAppendNS.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns)).Seconds()
}

// CollectObs implements obs.Collector with the tsingest_* families.
func (m *Metrics) CollectObs(emit func(obs.Sample)) {
	emit(obs.Sample{Name: "tsingest_appends_total",
		Help: "Timesteps successfully folded and published.",
		Kind: "counter", Value: float64(m.appends.Load())})
	emit(obs.Sample{Name: "tsingest_append_failures_total",
		Help: "Mutations rejected or failed at any ingest stage.",
		Kind: "counter", Value: float64(m.failures.Load())})
	for i := range m.stages {
		m.stages[i].emit(emit, "tsingest_stage_seconds",
			"Wall time per ingest stage (validate, wal, fold, publish).",
			[]obs.Label{{Key: "stage", Value: stageNames[i]}})
	}
	m.walFsync.emit(emit, "tsingest_wal_fsync_seconds",
		"Wall time of the WAL fsync on each append.", nil)
	emit(obs.Sample{Name: "tsingest_wal_bytes",
		Help: "Current size of the ingest write-ahead log.",
		Kind: "gauge", Value: float64(m.walBytes.Load())})
	emit(obs.Sample{Name: "tsingest_watermark",
		Help: "Published dataset watermark (timesteps durably visible to queries).",
		Kind: "gauge", Value: float64(m.watermark.Load())})
	emit(obs.Sample{Name: "tsingest_watermark_lag_seconds",
		Help: "Seconds since the watermark last advanced (0 = never appended).",
		Kind: "gauge", Value: m.SecondsSinceLastAppend()})
	emit(obs.Sample{Name: "tsingest_retention_trimmed_bytes_total",
		Help: "Bytes of superseded tail-pack generations deleted by retention.",
		Kind: "counter", Value: float64(m.trimmedBytes.Load())})
}

// ingestHist is the same compact log-2 latency histogram gofs's telemetry
// uses (20 doubling buckets from 16µs plus overflow), duplicated because
// that one is unexported and deliberately package-local.
const (
	numIngestBuckets = 20
	baseIngestBucket = 16 * time.Microsecond
)

type ingestHist struct {
	counts [numIngestBuckets + 1]atomic.Uint64
	sumNS  atomic.Int64
	count  atomic.Uint64
}

var ingestBounds = func() [numIngestBuckets]int64 {
	var b [numIngestBuckets]int64
	bound := int64(baseIngestBucket)
	for i := range b {
		b[i] = bound
		bound *= 2
	}
	return b
}()

func (h *ingestHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < numIngestBuckets && ns > ingestBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

func (h *ingestHist) emit(emitFn func(obs.Sample), family, help string, labels []obs.Label) {
	les := make([]float64, numIngestBuckets)
	cum := make([]uint64, numIngestBuckets)
	var running uint64
	for i := 0; i < numIngestBuckets; i++ {
		les[i] = time.Duration(ingestBounds[i]).Seconds()
		running += h.counts[i].Load()
		cum[i] = running
	}
	count := running + h.counts[numIngestBuckets].Load()
	obs.EmitHistogram(emitFn, family, help, labels, les, cum,
		time.Duration(h.sumNS.Load()).Seconds(), count)
}
