// Package gen generates synthetic time-series graph datasets that stand in
// for the paper's two SNAP templates (California road network, Wikipedia
// talk network) and its two instance generators (uniform random road
// latencies, SIR-model meme tweets). The SNAP downloads are unavailable
// offline; these generators reproduce the structural regimes that drive the
// paper's results — a large-diameter, uniform-small-degree planar-ish graph
// versus a small-world, power-law graph with tiny diameter.
//
// All generators are deterministic given a seed.
package gen

import (
	"math/rand"

	"tsgraph/internal/graph"
)

// Standard attribute names used across the repository. Every generated
// template carries both vertex and edge attributes so the same template can
// be paired with either instance generator, exactly as in the paper (CARN
// and WIKI are each run with both the Road and Tweet generators).
const (
	// AttrTweets is the vertex string-list attribute holding the hashtags
	// received by a vertex during one timestep interval.
	AttrTweets = "tweets"
	// AttrLoad is a vertex float attribute (e.g. power consumption, traffic
	// count); filled by RandomLoads, zero otherwise.
	AttrLoad = "load"
	// AttrLatency is the edge float attribute giving the travel time across
	// the edge during one timestep interval.
	AttrLatency = "latency"
)

// StandardSchemas returns the vertex and edge schemas shared by all
// generated templates.
func StandardSchemas() (vs, es *graph.Schema) {
	vs = graph.MustSchema([]string{AttrTweets, AttrLoad}, []graph.AttrType{graph.TStringList, graph.TFloat})
	es = graph.MustSchema([]string{AttrLatency}, []graph.AttrType{graph.TFloat})
	return vs, es
}

// RoadConfig parameterizes the road-network generator.
type RoadConfig struct {
	// Rows and Cols give the underlying lattice dimensions; the template has
	// Rows*Cols vertices.
	Rows, Cols int
	// RemoveFrac is the fraction of lattice edges randomly removed (the
	// generator re-adds any removal that would disconnect the graph), which
	// thins the degree distribution toward a real road network's ~2.8
	// average degree. Must be in [0, 1).
	RemoveFrac float64
	// ShortcutFrac adds this fraction (of lattice edge count) of short
	// diagonal edges, modelling highway ramps. Typically small (≤0.02).
	ShortcutFrac float64
	// Seed drives all randomness.
	Seed int64
	// Name overrides the template name (default "ROAD").
	Name string
}

// RoadNetwork generates an undirected perturbed 2-D lattice: large diameter
// (≈ Rows+Cols), uniform small degree, single connected component — the
// structural regime of the paper's CARN template.
func RoadNetwork(cfg RoadConfig) *graph.Template {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		panic("gen: RoadNetwork requires positive Rows and Cols")
	}
	name := cfg.Name
	if name == "" {
		name = "ROAD"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vs, es := StandardSchemas()
	b := graph.NewBuilder(name, vs, es)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cfg.Cols + c) }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			b.AddVertex(id(r, c))
		}
	}

	type edge struct{ u, v graph.VertexID }
	var lattice []edge
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				lattice = append(lattice, edge{id(r, c), id(r, c+1)})
			}
			if r+1 < cfg.Rows {
				lattice = append(lattice, edge{id(r, c), id(r+1, c)})
			}
		}
	}

	// Randomly drop RemoveFrac of lattice edges, but keep the graph
	// connected: removals are decided first, then any removed edge whose
	// endpoints ended up in different components is restored.
	uf := newUnionFind(cfg.Rows * cfg.Cols)
	var removed []edge
	for _, e := range lattice {
		if rng.Float64() < cfg.RemoveFrac {
			removed = append(removed, e)
			continue
		}
		b.AddUndirectedEdge(e.u, e.v)
		uf.union(int(e.u), int(e.v))
	}
	for _, e := range removed {
		if uf.find(int(e.u)) != uf.find(int(e.v)) {
			b.AddUndirectedEdge(e.u, e.v)
			uf.union(int(e.u), int(e.v))
		}
	}

	// Short diagonal shortcuts.
	nShort := int(float64(len(lattice)) * cfg.ShortcutFrac)
	for k := 0; k < nShort; k++ {
		r := rng.Intn(cfg.Rows - 1)
		c := rng.Intn(cfg.Cols - 1)
		b.AddUndirectedEdge(id(r, c), id(r+1, c+1))
	}
	return b.MustBuild()
}

// SmallWorldConfig parameterizes the small-world generator.
type SmallWorldConfig struct {
	// N is the number of vertices.
	N int
	// M is the number of edges each arriving vertex attaches with
	// (preferential attachment), giving average degree ≈ 2M and a power-law
	// degree distribution.
	M int
	// Seed drives all randomness.
	Seed int64
	// Name overrides the template name (default "SMALLWORLD").
	Name string
}

// SmallWorld generates an undirected preferential-attachment graph: power
// law degree distribution, tiny diameter — the structural regime of the
// paper's WIKI template.
func SmallWorld(cfg SmallWorldConfig) *graph.Template {
	if cfg.N < 2 {
		panic("gen: SmallWorld requires N >= 2")
	}
	m := cfg.M
	if m < 1 {
		m = 1
	}
	name := cfg.Name
	if name == "" {
		name = "SMALLWORLD"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vs, es := StandardSchemas()
	b := graph.NewBuilder(name, vs, es)
	for i := 0; i < cfg.N; i++ {
		b.AddVertex(graph.VertexID(i))
	}

	// Repeated-vertex list: each vertex appears once per incident edge, so
	// uniform sampling from the list is degree-proportional sampling.
	repeated := make([]int32, 0, 2*m*cfg.N)
	addEdge := func(u, v int) {
		b.AddUndirectedEdge(graph.VertexID(u), graph.VertexID(v))
		repeated = append(repeated, int32(u), int32(v))
	}
	addEdge(0, 1)
	for v := 2; v < cfg.N; v++ {
		k := m
		if v < m {
			k = v
		}
		seen := make(map[int]bool, k)
		for len(seen) < k {
			var u int
			if rng.Float64() < 0.15 {
				// Small uniform component keeps the tail from collapsing
				// into a pure star and keeps diameter tiny but non-trivial.
				u = rng.Intn(v)
			} else {
				u = int(repeated[rng.Intn(len(repeated))])
			}
			if u == v || seen[u] {
				continue
			}
			seen[u] = true
			addEdge(u, v)
		}
	}
	return b.MustBuild()
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for int(uf.parent[x]) != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = int(uf.parent[x])
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
