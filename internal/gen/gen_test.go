package gen

import (
	"testing"
	"testing/quick"

	"tsgraph/internal/graph"
)

func TestRoadNetworkStructure(t *testing.T) {
	g := RoadNetwork(RoadConfig{Rows: 30, Cols: 40, RemoveFrac: 0.2, ShortcutFrac: 0.01, Seed: 7})
	if g.NumVertices() != 1200 {
		t.Fatalf("vertices = %d, want 1200", g.NumVertices())
	}
	s := graph.ComputeStats(g, 4)
	if s.NumWCCs != 1 {
		t.Fatalf("road network must stay connected, got %d WCCs", s.NumWCCs)
	}
	// Diameter must be lattice-scale (large), not small-world.
	if s.DiameterLB < 30 {
		t.Errorf("diameter LB = %d, expected lattice-scale (>=30)", s.DiameterLB)
	}
	// Degree must be uniform-small: max degree bounded by lattice + diagonals.
	if s.MaxDegree > 12 {
		t.Errorf("max degree = %d, expected small uniform degree", s.MaxDegree)
	}
	if s.AvgDegree < 2.0 || s.AvgDegree > 4.5 {
		t.Errorf("avg degree = %v, expected road-like 2..4.5", s.AvgDegree)
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	a := RoadNetwork(RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.3, Seed: 42})
	b := RoadNetwork(RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.3, Seed: 42})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	c := RoadNetwork(RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.3, Seed: 43})
	if a.NumEdges() == c.NumEdges() {
		t.Log("different seeds produced equal edge counts (possible but unlikely)")
	}
}

// TestRoadNetworkAlwaysConnected is a property test: removal repair keeps
// the lattice connected for any removal fraction and seed.
func TestRoadNetworkAlwaysConnected(t *testing.T) {
	f := func(seed int64, frac uint8) bool {
		g := RoadNetwork(RoadConfig{
			Rows: 8, Cols: 9,
			RemoveFrac: float64(frac%90) / 100.0,
			Seed:       seed,
		})
		return graph.ComputeStats(g, 2).NumWCCs == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldStructure(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 3000, M: 2, Seed: 11})
	if g.NumVertices() != 3000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	s := graph.ComputeStats(g, 4)
	if s.NumWCCs != 1 {
		t.Fatalf("small world must be connected, got %d WCCs", s.NumWCCs)
	}
	if s.DiameterLB > 15 {
		t.Errorf("diameter LB = %d, expected small-world (<=15)", s.DiameterLB)
	}
	// Power law: hubs should exist.
	if s.MaxDegree < 20 {
		t.Errorf("max degree = %d, expected hubs from preferential attachment", s.MaxDegree)
	}
}

func TestSmallWorldPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SmallWorld should panic for N < 2")
		}
	}()
	SmallWorld(SmallWorldConfig{N: 1})
}

func TestRoadNetworkPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RoadNetwork should panic for zero dims")
		}
	}()
	RoadNetwork(RoadConfig{Rows: 0, Cols: 5})
}

func TestRandomLatencies(t *testing.T) {
	g := RoadNetwork(RoadConfig{Rows: 5, Cols: 5, Seed: 1})
	c, err := RandomLatencies(g, LatencyConfig{Timesteps: 8, T0: 0, Delta: 300, Min: 1, Max: 600, Seed: 3})
	if err != nil {
		t.Fatalf("RandomLatencies: %v", err)
	}
	if c.NumInstances() != 8 {
		t.Fatalf("instances = %d, want 8", c.NumInstances())
	}
	for s := 0; s < 8; s++ {
		lat := c.Instance(s).EdgeFloats(g, AttrLatency)
		if len(lat) != g.NumEdges() {
			t.Fatalf("step %d: %d latencies, want %d", s, len(lat), g.NumEdges())
		}
		for e, v := range lat {
			if v < 1 || v >= 600 {
				t.Fatalf("step %d edge %d latency %v outside [1,600)", s, e, v)
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("collection Validate: %v", err)
	}
}

func TestRandomLatenciesErrors(t *testing.T) {
	g := RoadNetwork(RoadConfig{Rows: 3, Cols: 3, Seed: 1})
	if _, err := RandomLatencies(g, LatencyConfig{Timesteps: 0}); err == nil {
		t.Error("zero timesteps should error")
	}
	if _, err := RandomLatencies(g, LatencyConfig{Timesteps: 1, Min: 10, Max: 1}); err == nil {
		t.Error("inverted bounds should error")
	}
	bare := graph.NewBuilder("bare", nil, nil).MustBuild()
	if _, err := RandomLatencies(bare, LatencyConfig{Timesteps: 1, Max: 1}); err == nil {
		t.Error("template without latency attribute should error")
	}
}

func TestSIRTweetsPropagation(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 500, M: 3, Seed: 5})
	res, err := SIRTweets(g, SIRConfig{
		Timesteps: 20, Delta: 300,
		Memes:        []string{"#viral"},
		SeedsPerMeme: 3,
		HitProb:      0.5,
		Seed:         9,
	})
	if err != nil {
		t.Fatalf("SIRTweets: %v", err)
	}
	c := res.Collection
	if c.NumInstances() != 20 {
		t.Fatalf("instances = %d", c.NumInstances())
	}
	// The meme must spread beyond the seeds.
	total := 0
	for _, n := range res.NewPerStep["#viral"] {
		total += n
	}
	if total < 50 {
		t.Errorf("meme reached only %d vertices with HitProb 0.5 on small world", total)
	}
	// FirstInfected consistency: every vertex counted in NewPerStep has a
	// matching FirstInfected timestep, and the meme appears in its tweets at
	// that timestep.
	fi := res.FirstInfected["#viral"]
	counted := 0
	for v, step := range fi {
		if step < 0 {
			continue
		}
		counted++
		tweets := c.Instance(int(step)).VertexStringLists(g, AttrTweets)[v]
		found := false
		for _, tag := range tweets {
			if tag == "#viral" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vertex %d first infected at %d but meme not in tweets", v, step)
		}
		// And it must NOT appear earlier.
		for s := 0; s < int(step); s++ {
			for _, tag := range c.Instance(s).VertexStringLists(g, AttrTweets)[v] {
				if tag == "#viral" {
					t.Fatalf("vertex %d tweeted meme at %d before FirstInfected %d", v, s, step)
				}
			}
		}
	}
	if counted != total {
		t.Errorf("FirstInfected count %d != NewPerStep total %d", counted, total)
	}
}

func TestSIRTweetsMonotoneFrontier(t *testing.T) {
	// With HitProb 1 on a line graph and long recovery, the meme advances
	// exactly one hop per timestep from the seed in each direction.
	b := graph.NewBuilder("line", graph.MustSchema([]string{AttrTweets, AttrLoad}, []graph.AttrType{graph.TStringList, graph.TFloat}), graph.MustSchema([]string{AttrLatency}, []graph.AttrType{graph.TFloat}))
	const n = 12
	for i := 0; i+1 < n; i++ {
		b.AddUndirectedEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.MustBuild()
	res, err := SIRTweets(g, SIRConfig{
		Timesteps: n + 2, Delta: 1,
		Memes: []string{"#m"}, SeedsPerMeme: 1,
		HitProb: 1.0, RecoverAfter: 100, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fi := res.FirstInfected["#m"]
	// Find the seed.
	seed := -1
	for v, s := range fi {
		if s == 0 {
			seed = v
		}
	}
	if seed < 0 {
		t.Fatal("no seed infected at step 0")
	}
	for v, s := range fi {
		want := seed - v
		if want < 0 {
			want = -want
		}
		if int(s) != want {
			t.Errorf("vertex %d first infected at %d, want hop distance %d", v, s, want)
		}
	}
}

func TestSIRTweetsErrors(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 10, M: 1, Seed: 1})
	if _, err := SIRTweets(g, SIRConfig{Timesteps: 0, Memes: []string{"#x"}}); err == nil {
		t.Error("zero timesteps should error")
	}
	if _, err := SIRTweets(g, SIRConfig{Timesteps: 1}); err == nil {
		t.Error("no memes should error")
	}
	if _, err := SIRTweets(g, SIRConfig{Timesteps: 1, Memes: []string{"#x"}, HitProb: 2}); err == nil {
		t.Error("HitProb > 1 should error")
	}
	bare := graph.NewBuilder("bare", nil, nil).MustBuild()
	if _, err := SIRTweets(bare, SIRConfig{Timesteps: 1, Memes: []string{"#x"}}); err == nil {
		t.Error("template without tweets attribute should error")
	}
}

func TestSIRBackgroundTags(t *testing.T) {
	g := SmallWorld(SmallWorldConfig{N: 1000, M: 2, Seed: 2})
	res, err := SIRTweets(g, SIRConfig{
		Timesteps: 3, Delta: 1, Memes: []string{"#m"},
		HitProb: 0.1, BackgroundTags: 100, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := 0
	for s := 0; s < 3; s++ {
		for _, tags := range res.Collection.Instance(s).VertexStringLists(g, AttrTweets) {
			for _, tag := range tags {
				if tag != "#m" {
					bg++
				}
			}
		}
	}
	if bg == 0 {
		t.Error("BackgroundTags produced no background hashtags")
	}
}

func TestRandomLoads(t *testing.T) {
	g := RoadNetwork(RoadConfig{Rows: 4, Cols: 4, Seed: 1})
	c, err := RandomLatencies(g, LatencyConfig{Timesteps: 2, Delta: 1, Min: 0, Max: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := RandomLoads(c, 3, 10, 20); err != nil {
		t.Fatalf("RandomLoads: %v", err)
	}
	for s := 0; s < 2; s++ {
		for _, v := range c.Instance(s).VertexFloats(g, AttrLoad) {
			if v < 10 || v >= 20 {
				t.Fatalf("load %v outside [10,20)", v)
			}
		}
	}
	if err := RandomLoads(c, 3, 5, 1); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(10)
	if !uf.union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.union(0, 1) {
		t.Error("second union should be a no-op")
	}
	uf.union(1, 2)
	uf.union(3, 4)
	if uf.find(0) != uf.find(2) {
		t.Error("0 and 2 should be connected")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("0 and 3 should be disjoint")
	}
}

// TestUnionFindMatchesNaive is a property test against a naive labelling.
func TestUnionFindMatchesNaive(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 16
		uf := newUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for _, op := range ops {
			a, b := int(op>>8)%n, int(op&0xff)%n
			uf.union(a, b)
			relabel(labels[a], labels[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (labels[i] == labels[j]) != (uf.find(i) == uf.find(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
