package gen

import (
	"fmt"
	"math/rand"

	"tsgraph/internal/graph"
)

// LatencyConfig parameterizes the road-data instance generator (§IV-A):
// "a random value for travel latency for each edge of the graph, and across
// timesteps. There is no correlation between the values in space or time."
type LatencyConfig struct {
	Timesteps int
	T0, Delta int64
	// Min and Max bound the uniform latency distribution; Delta-scale values
	// (e.g. Min=1, Max=2·Delta) make waiting-vs-driving tradeoffs real.
	Min, Max float64
	Seed     int64
	// Churn, when in (0,1), is the per-timestep fraction of edges whose
	// latency is re-randomized; the rest keep their previous value, giving
	// the temporal correlation that delta storage exploits. Timestep 0 is
	// always fully random. 0 and values ≥1 keep the paper's uncorrelated
	// behavior, byte-identical to the generator before this knob existed.
	Churn float64
}

// RandomLatencies builds a collection whose instances carry uncorrelated
// uniform random values in the edge "latency" attribute.
func RandomLatencies(t *graph.Template, cfg LatencyConfig) (*graph.Collection, error) {
	if cfg.Timesteps <= 0 {
		return nil, fmt.Errorf("gen: Timesteps must be positive, got %d", cfg.Timesteps)
	}
	if cfg.Max < cfg.Min {
		return nil, fmt.Errorf("gen: latency Max %v < Min %v", cfg.Max, cfg.Min)
	}
	li := t.EdgeSchema().Index(AttrLatency)
	if li < 0 || t.EdgeSchema().Type(li) != graph.TFloat {
		return nil, fmt.Errorf("gen: template %q lacks float edge attribute %q", t.Name, AttrLatency)
	}
	if cfg.Churn < 0 {
		return nil, fmt.Errorf("gen: Churn %v negative", cfg.Churn)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := graph.NewCollection(t, cfg.T0, cfg.Delta)
	span := cfg.Max - cfg.Min
	churning := cfg.Churn > 0 && cfg.Churn < 1
	for step := 0; step < cfg.Timesteps; step++ {
		ins := graph.NewInstance(t, step, c.TimeOf(step))
		lat := ins.EdgeCols[li].Floats
		if churning && step > 0 {
			prev := c.Instance(step - 1).EdgeCols[li].Floats
			for e := range lat {
				if rng.Float64() < cfg.Churn {
					lat[e] = cfg.Min + rng.Float64()*span
				} else {
					lat[e] = prev[e]
				}
			}
		} else {
			for e := range lat {
				lat[e] = cfg.Min + rng.Float64()*span
			}
		}
		if err := c.Append(ins); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SIRConfig parameterizes the tweet-data generator (§IV-A), which uses the
// SIR epidemiology model to propagate memes (#hashtags) across instances.
type SIRConfig struct {
	Timesteps int
	T0, Delta int64
	// Memes are the hashtags to propagate (at least one).
	Memes []string
	// SeedsPerMeme is the number of initially-infected vertices per meme.
	SeedsPerMeme int
	// HitProb is the per-edge, per-timestep probability an infected vertex
	// passes the meme to a susceptible neighbor (0.30 for the paper's CARN,
	// 0.02 for WIKI).
	HitProb float64
	// RecoverAfter is how many timesteps a vertex stays infectious before
	// entering the Removed state. Values ≤0 default to 3.
	RecoverAfter int
	// BackgroundTags, if positive, adds that expected number of random
	// non-meme hashtags per 1000 vertices per timestep, to give the hashtag
	// aggregation algorithm realistic noise.
	BackgroundTags int
	Seed           int64
}

// SIRResult reports ground truth from the generator for validating the meme
// tracking algorithm.
type SIRResult struct {
	Collection *graph.Collection
	// FirstInfected[meme][vertexIndex] is the timestep at which the vertex
	// first carried the meme, or -1 if never.
	FirstInfected map[string][]int32
	// NewPerStep[meme][t] counts vertices first infected at timestep t.
	NewPerStep map[string][]int
}

// SIRTweets builds a collection whose instances carry, in the vertex
// "tweets" attribute, the hashtags received by each vertex during each
// timestep interval, produced by an SIR process per meme.
func SIRTweets(t *graph.Template, cfg SIRConfig) (*SIRResult, error) {
	if cfg.Timesteps <= 0 {
		return nil, fmt.Errorf("gen: Timesteps must be positive, got %d", cfg.Timesteps)
	}
	if len(cfg.Memes) == 0 {
		return nil, fmt.Errorf("gen: at least one meme required")
	}
	if cfg.HitProb < 0 || cfg.HitProb > 1 {
		return nil, fmt.Errorf("gen: HitProb %v outside [0,1]", cfg.HitProb)
	}
	ti := t.VertexSchema().Index(AttrTweets)
	if ti < 0 || t.VertexSchema().Type(ti) != graph.TStringList {
		return nil, fmt.Errorf("gen: template %q lacks string-list vertex attribute %q", t.Name, AttrTweets)
	}
	seeds := cfg.SeedsPerMeme
	if seeds <= 0 {
		seeds = 1
	}
	recoverAfter := cfg.RecoverAfter
	if recoverAfter <= 0 {
		recoverAfter = 3
	}
	n := t.NumVertices()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := graph.NewCollection(t, cfg.T0, cfg.Delta)
	res := &SIRResult{
		Collection:    c,
		FirstInfected: make(map[string][]int32, len(cfg.Memes)),
		NewPerStep:    make(map[string][]int, len(cfg.Memes)),
	}

	// Per-meme SIR state: -1 susceptible, >=0 timestep infected, -2 removed.
	const susceptible, removed = -1, -2
	state := make(map[string][]int32, len(cfg.Memes))
	infectedAt := make(map[string][]int32, len(cfg.Memes))
	for _, m := range cfg.Memes {
		st := make([]int32, n)
		at := make([]int32, n)
		fi := make([]int32, n)
		for i := range st {
			st[i] = susceptible
			fi[i] = -1
		}
		state[m] = st
		infectedAt[m] = at
		res.FirstInfected[m] = fi
		res.NewPerStep[m] = make([]int, cfg.Timesteps)
	}

	for step := 0; step < cfg.Timesteps; step++ {
		ins := graph.NewInstance(t, step, c.TimeOf(step))
		tweets := ins.VertexCols[ti].StringLists

		for _, m := range cfg.Memes {
			st, at, fi := state[m], infectedAt[m], res.FirstInfected[m]
			if step == 0 {
				for k := 0; k < seeds && k < n; k++ {
					v := rng.Intn(n)
					if st[v] == susceptible {
						st[v] = int32(step)
						at[v] = int32(step)
					}
				}
			} else {
				// Infections computed from the previous step's infectious
				// set so propagation advances one hop per timestep.
				var newly []int32
				for v := 0; v < n; v++ {
					if st[v] < 0 {
						continue
					}
					if step-int(at[v]) >= recoverAfter {
						st[v] = removed
						continue
					}
					lo, hi := t.OutEdges(v)
					for e := lo; e < hi; e++ {
						w := t.Target(e)
						if st[w] == susceptible && rng.Float64() < cfg.HitProb {
							newly = append(newly, int32(w))
						}
					}
				}
				for _, w := range newly {
					if st[w] == susceptible {
						st[w] = int32(step)
						at[w] = int32(step)
					}
				}
			}
			// Every currently-infectious vertex tweets the meme this step.
			for v := 0; v < n; v++ {
				if st[v] >= 0 {
					tweets[v] = append(tweets[v], m)
					if fi[v] < 0 {
						fi[v] = int32(step)
						res.NewPerStep[m][step]++
					}
				}
			}
		}

		if cfg.BackgroundTags > 0 {
			count := cfg.BackgroundTags * n / 1000
			for k := 0; k < count; k++ {
				v := rng.Intn(n)
				tag := fmt.Sprintf("#bg%d", rng.Intn(50))
				tweets[v] = append(tweets[v], tag)
			}
		}

		if err := c.Append(ins); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RandomLoads fills the vertex "load" attribute of an existing collection
// with uncorrelated uniform random values in [min, max), for workloads that
// aggregate vertex statistics.
func RandomLoads(c *graph.Collection, seed int64, min, max float64) error {
	t := c.Template
	li := t.VertexSchema().Index(AttrLoad)
	if li < 0 || t.VertexSchema().Type(li) != graph.TFloat {
		return fmt.Errorf("gen: template %q lacks float vertex attribute %q", t.Name, AttrLoad)
	}
	if max < min {
		return fmt.Errorf("gen: load max %v < min %v", max, min)
	}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < c.NumInstances(); s++ {
		col := c.Instance(s).VertexCols[li].Floats
		for i := range col {
			col[i] = min + rng.Float64()*(max-min)
		}
	}
	return nil
}
