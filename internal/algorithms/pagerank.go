package algorithms

import (
	"fmt"
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// RankBatch carries summed PageRank contributions for vertices of the
// destination subgraph's partition (partition-local indices).
type RankBatch struct {
	Vertices []int32
	Mass     []float64
}

// PageRankProgram is subgraph-centric PageRank in the spirit of the
// SubgraphRank work the paper builds on (its reference [12]): every
// superstep is one global Jacobi iteration — each subgraph folds the remote
// contributions that arrived as messages with the local contributions it
// buffered last superstep, updates its vertices' ranks, and emits fresh
// contributions (local ones buffered, remote ones batched per neighbor
// subgraph with sender-side summing).
//
// Dangling vertices (out-degree 0) leak their mass, the common Pregel
// simplification; on the undirected templates this repository generates
// there are none.
type PageRankProgram struct {
	// Damping is the PageRank damping factor d (typically 0.85).
	Damping float64
	// Iterations is the fixed iteration count (the classic Pregel
	// formulation; global convergence detection would need a master
	// aggregate).
	Iterations int

	n float64 // vertex count of the template

	// Per-partition state, PID-indexed; each subgraph touches only its own
	// vertices' slots.
	rank [][]float64
	// localContrib[p][lv] accumulates contributions to local vertex lv
	// computed in the previous superstep.
	localContrib [][]float64
}

// NewPageRank builds the program over partitioned data.
func NewPageRank(t *graph.Template, parts []*subgraph.PartitionData, damping float64, iterations int) (*PageRankProgram, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("algorithms: damping %v outside (0,1)", damping)
	}
	if iterations < 1 {
		return nil, fmt.Errorf("algorithms: iterations must be >= 1, got %d", iterations)
	}
	p := &PageRankProgram{Damping: damping, Iterations: iterations, n: float64(t.NumVertices())}
	m := maxPID(parts)
	p.rank = make([][]float64, m)
	p.localContrib = make([][]float64, m)
	for _, pd := range parts {
		p.rank[pd.PID] = make([]float64, pd.NumVertices())
		p.localContrib[pd.PID] = make([]float64, pd.NumVertices())
	}
	return p, nil
}

// Compute implements core.Program on a single instance.
func (p *PageRankProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	rank := p.rank[pd.PID]
	contrib := p.localContrib[pd.PID]

	if superstep == 0 {
		init := 1.0 / p.n
		for _, lv := range sg.Verts {
			rank[lv] = init
			contrib[lv] = 0
		}
	} else {
		// Fold last iteration's contributions: local buffer + remote
		// messages, then update ranks.
		for _, m := range msgs {
			b := m.Payload.(RankBatch)
			for i, lv := range b.Vertices {
				contrib[lv] += b.Mass[i]
			}
		}
		base := (1 - p.Damping) / p.n
		for _, lv := range sg.Verts {
			rank[lv] = base + p.Damping*contrib[lv]
			contrib[lv] = 0
		}
	}

	if superstep >= p.Iterations {
		ctx.VoteToHalt()
		return
	}

	// Emit this iteration's contributions.
	remote := make(map[subgraph.ID]map[int32]float64)
	for _, lv := range sg.Verts {
		lo, hi := pd.OutEdges(int(lv))
		deg := hi - lo
		if deg == 0 {
			continue // dangling: mass leaks (documented)
		}
		share := rank[lv] / float64(deg)
		for e := lo; e < hi; e++ {
			if isRemote, ri := pd.IsRemote(e); isRemote {
				re := &pd.Remote[ri]
				dst := subgraph.MakeID(int(re.TargetPartition), int(re.TargetSubgraph))
				if remote[dst] == nil {
					remote[dst] = make(map[int32]float64)
				}
				remote[dst][re.TargetLocal] += share
			} else {
				contrib[pd.Targets[e]] += share
			}
		}
	}
	dsts := make([]subgraph.ID, 0, len(remote))
	for dst := range remote {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		masses := remote[dst]
		verts := make([]int32, 0, len(masses))
		for lv := range masses {
			verts = append(verts, lv)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		b := RankBatch{Vertices: verts, Mass: make([]float64, len(verts))}
		for i, lv := range verts {
			b.Mass[i] = masses[lv]
		}
		ctx.SendTo(dst, b)
	}
	// Stay active: the next superstep applies these contributions even if
	// no remote messages arrive.
}

// Ranks gathers the final PageRank vector, template-indexed.
func (p *PageRankProgram) Ranks(parts []*subgraph.PartitionData, t *graph.Template) []float64 {
	out := make([]float64, t.NumVertices())
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			out[g] = p.rank[pd.PID][lv]
		}
	}
	return out
}

// RunPageRank runs subgraph-centric PageRank for a fixed number of
// iterations over the template (the first instance of the source drives the
// single timestep) and returns the template-indexed rank vector.
func RunPageRank(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	source core.InstanceSource,
	damping float64,
	iterations int,
	cfg bsp.Config,
) ([]float64, *core.Result, error) {
	prog, err := NewPageRank(t, parts, damping, iterations)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Run(&core.Job{
		Template:  t,
		Parts:     parts,
		Source:    source,
		Program:   prog,
		Pattern:   core.SequentiallyDependent,
		Timesteps: 1,
		Config:    cfg,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog.Ranks(parts, t), res, nil
}

func init() {
	registerPayload(RankBatch{})
}
