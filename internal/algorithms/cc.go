package algorithms

import (
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// CCProgram computes weakly connected components subgraph-centrically: each
// subgraph is internally one component by construction, so the label of a
// subgraph starts as the minimum global vertex index it contains, and
// subgraphs exchange labels across remote edges until a fixpoint — far
// fewer supersteps than vertex-centric label propagation, one of the
// paper's motivating wins for the subgraph-centric model.
type CCProgram struct {
	// labels[p][lv] is the component label (a global vertex index).
	labels [][]int64
	// sgLabel[p][sgIdx] is the subgraph's current label.
	sgLabel [][]int64
}

// NewCC builds a connected components program.
func NewCC(parts []*subgraph.PartitionData) *CCProgram {
	p := &CCProgram{}
	n := maxPID(parts)
	p.labels = make([][]int64, n)
	p.sgLabel = make([][]int64, n)
	for _, pd := range parts {
		p.labels[pd.PID] = make([]int64, pd.NumVertices())
		p.sgLabel[pd.PID] = make([]int64, len(pd.Subgraphs))
	}
	return p
}

// Compute implements core.Program on a single instance.
func (p *CCProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	idx := sg.SID.Index()
	cur := p.sgLabel[pd.PID][idx]

	if superstep == 0 {
		cur = int64(^uint64(0) >> 1)
		for _, lv := range sg.Verts {
			if g := int64(pd.GlobalIdx[lv]); g < cur {
				cur = g
			}
		}
	}

	improved := superstep == 0
	for _, m := range msgs {
		if l := m.Payload.(int64); l < cur {
			cur = l
			improved = true
		}
	}
	if improved {
		p.sgLabel[pd.PID][idx] = cur
		for _, lv := range sg.Verts {
			p.labels[pd.PID][lv] = cur
		}
		// Propagate to neighbor subgraphs, deterministically ordered.
		nbrs := append([]subgraph.ID(nil), sg.Neighbors...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			ctx.SendTo(nb, cur)
		}
	}
	ctx.VoteToHalt()
}

// Labels gathers component labels into a template-indexed array.
func (p *CCProgram) Labels(parts []*subgraph.PartitionData, t *graph.Template) []int64 {
	out := make([]int64, t.NumVertices())
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			out[g] = p.labels[pd.PID][lv]
		}
	}
	return out
}

// RunCC computes weakly connected components over the template (instance
// data is unused; the first instance of the source drives the single
// timestep). Returns template-indexed component labels.
func RunCC(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	source core.InstanceSource,
	cfg bsp.Config,
) ([]int64, *core.Result, error) {
	prog := NewCC(parts)
	res, err := core.Run(&core.Job{
		Template:  t,
		Parts:     parts,
		Source:    source,
		Program:   prog,
		Pattern:   core.SequentiallyDependent,
		Timesteps: 1,
		Config:    cfg,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog.Labels(parts, t), res, nil
}
