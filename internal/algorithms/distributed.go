package algorithms

import (
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// Distributed drivers for the serving tier's sharded sweeps. Each rank of
// a shard group calls one of these with the SAME program inputs (queries,
// meme tag) and its OWN local partitions; the cluster mesh exchanges
// boundary messages, and afterwards each rank reads answers for the
// vertices it owns.
//
// Two deliberate differences from the single-process drivers:
//
//   - Programs are built over allParts (every partition of the dataset),
//     not just the local ones: NewBatchTDSP resolves source and target
//     vertices through the full partition set, and per-source bookkeeping
//     must agree across ranks. Only Job.Parts is local.
//
//   - No HaltCondition. The single-process RunBatchTDSP stops early once
//     every target is finalized, summing CounterTargetsDone from the
//     timestep record — but a distributed record covers only local
//     partitions, so ranks would disagree about when to stop and deadlock
//     the barrier protocol. The program's VoteToHaltTimestep consensus
//     (all sources final, merged across ranks by the temporal exchange)
//     provides the same early exit safely, and target arrivals are
//     finalized before a source retires, so answers are unchanged.

// RunBatchTDSPDistributed runs one multi-source TDSP sweep as this rank's
// share of a distributed micro-batch. The engine must be built over
// localParts with bsp.NewEngineRemote and bound to the coordinator's node
// before the call; reusing one engine across sequential sweeps is safe
// because every barrier drains its step's frames completely.
func RunBatchTDSPDistributed(
	t *graph.Template,
	allParts []*subgraph.PartitionData,
	localParts []*subgraph.PartitionData,
	queries []BatchQuery,
	depart int,
	source core.InstanceSource,
	delta float64,
	weightAttr string,
	cfg bsp.Config,
	remote bsp.Remote,
	coord core.Coordinator,
	engine *bsp.Engine,
	tracer *obs.Tracer,
) (*BatchTDSPProgram, *core.Result, error) {
	prog, err := NewBatchTDSP(allParts, queries, depart, delta, weightAttr)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.RunWithEngine(&core.Job{
		Template:        t,
		Parts:           localParts,
		Source:          source,
		Program:         prog,
		Pattern:         core.SequentiallyDependent,
		StartTimestep:   depart,
		Config:          cfg,
		Tracer:          tracer,
		Remote:          remote,
		Coordinator:     coord,
		GlobalSubgraphs: subgraph.TotalSubgraphs(allParts),
	}, engine)
	if err != nil {
		return nil, nil, err
	}
	return prog, res, nil
}

// RunMemeDistributed runs one meme spread as this rank's share of a
// distributed sweep. Afterwards ColoredAt over localParts yields this
// rank's authoritative colorings (-1 entries for vertices it does not
// own).
func RunMemeDistributed(
	t *graph.Template,
	allParts []*subgraph.PartitionData,
	localParts []*subgraph.PartitionData,
	meme string,
	tweetsAttr string,
	source core.InstanceSource,
	cfg bsp.Config,
	remote bsp.Remote,
	coord core.Coordinator,
	engine *bsp.Engine,
	tracer *obs.Tracer,
) ([]int32, *core.Result, error) {
	prog := NewMeme(allParts, meme, tweetsAttr)
	res, err := core.RunWithEngine(&core.Job{
		Template:        t,
		Parts:           localParts,
		Source:          source,
		Program:         prog,
		Pattern:         core.SequentiallyDependent,
		Config:          cfg,
		Tracer:          tracer,
		Remote:          remote,
		Coordinator:     coord,
		GlobalSubgraphs: subgraph.TotalSubgraphs(allParts),
	}, engine)
	if err != nil {
		return nil, nil, err
	}
	return prog.ColoredAt(localParts, t), res, nil
}
