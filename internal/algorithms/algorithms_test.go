package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

func buildParts(tb testing.TB, g *graph.Template, k int) []*subgraph.PartitionData {
	tb.Helper()
	a, err := (partition.Multilevel{Seed: 11}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return parts
}

func latencyFixture(tb testing.TB, g *graph.Template, steps int, delta int64, maxLat float64) *graph.Collection {
	tb.Helper()
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{
		Timesteps: steps, T0: 0, Delta: delta,
		Min: 1, Max: maxLat, Seed: 21,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, RemoveFrac: 0.1, Seed: 1})
	parts := buildParts(t, g, 3)
	c := latencyFixture(t, g, 1, 300, 100)
	src := g.NumVertices() / 3
	dist, _, err := RunSSSP(g, parts, src, core.MemorySource{C: c}, 0, gen.AttrLatency, bsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refDijkstra(g, src, c.Instance(0).EdgeFloats(g, gen.AttrLatency))
	for v := range dist {
		if math.Abs(dist[v]-want[v]) > 1e-9 && !(math.IsInf(dist[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("vertex %d: %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestSSSPUnweightedIsBFS(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 400, M: 2, Seed: 2})
	parts := buildParts(t, g, 2)
	c := latencyFixture(t, g, 1, 300, 10)
	src := 7
	dist, _, err := RunSSSP(g, parts, src, core.MemorySource{C: c}, 0, "", bsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	levels := graph.BFSLevels(g, src)
	for v := range dist {
		switch {
		case levels[v] < 0 && !math.IsInf(dist[v], 1):
			t.Fatalf("vertex %d unreachable but dist %v", v, dist[v])
		case levels[v] >= 0 && dist[v] != float64(levels[v]):
			t.Fatalf("vertex %d dist %v, want %d", v, dist[v], levels[v])
		}
	}
}

// TestSSSPFewerSuperstepsThanDiameter verifies the headline claim of the
// subgraph-centric model: supersteps scale with the number of subgraph
// crossings, not the graph diameter.
func TestSSSPFewerSuperstepsThanDiameter(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 20, Cols: 20, Seed: 3})
	parts := buildParts(t, g, 2)
	c := latencyFixture(t, g, 1, 300, 10)
	_, res, err := RunSSSP(g, parts, 0, core.MemorySource{C: c}, 0, "", bsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Diameter is ~40; with 2 partitions the traversal crosses boundaries a
	// handful of times.
	if res.Supersteps > 15 {
		t.Errorf("subgraph-centric SSSP took %d supersteps; expected far below diameter 40", res.Supersteps)
	}
}

func TestTDSPMatchesReference(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, RemoveFrac: 0.15, Seed: 4})
	parts := buildParts(t, g, 3)
	// Latencies up to 2δ so multi-timestep travel and waiting both matter.
	c := latencyFixture(t, g, 30, 10, 20)
	src := 0
	got, _, err := RunTDSP(g, parts, src, core.MemorySource{C: c}, 10, gen.AttrLatency, bsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refTDSP(c, src, gen.AttrLatency, 10)
	for v := range got {
		if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
			t.Fatalf("vertex %d: finality mismatch %v vs %v", v, got[v], want[v])
		}
		if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
}

// TestTDSPRandomProperty cross-checks the distributed TDSP against the
// global reference on random graphs, assignments and latencies.
func TestTDSPRandomProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		k := 1 + int(kRaw)%4
		if k > n {
			k = n
		}
		vs, es := gen.StandardSchemas()
		b := graph.NewBuilder("rand", vs, es)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < 2*n; e++ {
			b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		c, err := gen.RandomLatencies(g, gen.LatencyConfig{
			Timesteps: 8, Delta: 5, Min: 1, Max: 12, Seed: seed + 1,
		})
		if err != nil {
			return false
		}
		a := &partition.Assignment{K: k, Parts: make([]int32, n)}
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		parts, err := subgraph.Build(g, a)
		if err != nil {
			return false
		}
		src := rng.Intn(n)
		got, _, err := RunTDSP(g, parts, src, core.MemorySource{C: c}, 5, gen.AttrLatency, bsp.Config{}, nil)
		if err != nil {
			return false
		}
		want := refTDSP(c, src, gen.AttrLatency, 5)
		for v := range got {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				return false
			}
			if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTDSPWaitingBeatsGreedy reconstructs the paper's Fig 5a scenario: the
// optimal time-dependent route waits at an intermediate vertex for a cheap
// future edge, beating the path that a static SSSP on the first instance
// would pick.
func TestTDSPWaitingBeatsGreedy(t *testing.T) {
	// Vertices: S=0, A=1, E=2, C=3. δ=5.
	//   g0: S→A=5, S→E=5, E→C=2 (but E is only reached at t=5, see below),
	//       A→C=30.
	//   g1: E→C=100, A→C=30.
	//   g2: A→C=4, E→C=100.
	// Static SSSP on g0 picks S→E→C (estimate 7); but E is reached at t=5,
	// the boundary, when E→C has become 100 → actual arrival 105.
	// TDSP: S→A by t=5, wait during g1, then A→C in 4 → arrival 14.
	vs, es := gen.StandardSchemas()
	b := graph.NewBuilder("fig5a", vs, es)
	const S, A, E, C = 0, 1, 2, 3
	sa := b.AddEdge(S, A)
	se := b.AddEdge(S, E)
	ec := b.AddEdge(E, C)
	ac := b.AddEdge(A, C)
	g := b.MustBuild()
	slot := func(id graph.EdgeID) int {
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeID(e) == id {
				return e
			}
		}
		t.Fatalf("edge %d not found", id)
		return -1
	}
	const delta = 5
	col := graph.NewCollection(g, 0, delta)
	lat := [][4]float64{
		// [sa, se, ec, ac] per timestep
		{5, 5, 2, 30},
		{100, 100, 100, 30},
		{100, 100, 100, 4},
		{100, 100, 100, 100},
	}
	li := g.EdgeSchema().Index(gen.AttrLatency)
	for ts := range lat {
		ins := graph.NewInstance(g, ts, col.TimeOf(ts))
		ins.EdgeCols[li].Floats[slot(sa)] = lat[ts][0]
		ins.EdgeCols[li].Floats[slot(se)] = lat[ts][1]
		ins.EdgeCols[li].Floats[slot(ec)] = lat[ts][2]
		ins.EdgeCols[li].Floats[slot(ac)] = lat[ts][3]
		if err := col.Append(ins); err != nil {
			t.Fatal(err)
		}
	}
	a := &partition.Assignment{K: 2, Parts: []int32{0, 0, 1, 1}}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunTDSP(g, parts, g.VertexIndex(S), core.MemorySource{C: col}, delta, gen.AttrLatency, bsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[g.VertexIndex(C)] != 14 {
		t.Errorf("TDSP(C) = %v, want 14 (wait at A, then A→C)", got[g.VertexIndex(C)])
	}
	if got[g.VertexIndex(A)] != 5 {
		t.Errorf("TDSP(A) = %v, want 5", got[g.VertexIndex(A)])
	}
	// The greedy estimate on g0 alone would have been 7 via E; confirm the
	// naive route is actually worse in the time-dependent model.
	if got[g.VertexIndex(E)] != 5 {
		t.Errorf("TDSP(E) = %v, want 5", got[g.VertexIndex(E)])
	}
}

func TestTDSPStopsEarlyWhenAllFinalized(t *testing.T) {
	// A small-world graph with generous latencies finalizes everything
	// quickly; the run must stop well before the timestep bound.
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 200, M: 3, Seed: 5})
	parts := buildParts(t, g, 2)
	c := latencyFixture(t, g, 40, 100, 30)
	rec := metrics.NewRecorder(2)
	_, res, err := RunTDSP(g, parts, 0, core.MemorySource{C: c}, 100, gen.AttrLatency, bsp.Config{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedEarly {
		t.Error("expected early halt once all vertices finalized")
	}
	if res.TimestepsRun >= 40 {
		t.Errorf("ran %d timesteps; expected early convergence", res.TimestepsRun)
	}
	if rec.CounterTotal(CounterFinalized) != int64(g.NumVertices()) {
		t.Errorf("finalized counter %d, want %d", rec.CounterTotal(CounterFinalized), g.NumVertices())
	}
}

func TestTDSPOutputsMatchArrivals(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 6})
	parts := buildParts(t, g, 2)
	c := latencyFixture(t, g, 20, 10, 15)
	prog := NewTDSP(parts, 0, 10, gen.AttrLatency)
	res, err := core.Run(&core.Job{
		Template: g, Parts: parts,
		Source:  core.MemorySource{C: c},
		Program: prog, Pattern: core.SequentiallyDependent,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.Arrivals(parts, g)
	seen := map[graph.VertexID]bool{}
	for _, o := range res.Outputs {
		r, ok := o.Data.(TDSPResult)
		if !ok {
			continue
		}
		if seen[r.Vertex] {
			t.Fatalf("vertex %d finalized twice", r.Vertex)
		}
		seen[r.Vertex] = true
		if arr[g.VertexIndex(r.Vertex)] != r.Arrival {
			t.Fatalf("vertex %d: output %v, state %v", r.Vertex, r.Arrival, arr[g.VertexIndex(r.Vertex)])
		}
		if r.Timestep != int(r.Arrival/10) && r.Arrival != float64(r.Timestep+1)*10 {
			t.Fatalf("vertex %d finalized at ts %d with arrival %v outside its horizon", r.Vertex, r.Timestep, r.Arrival)
		}
	}
	finals := 0
	for v := range arr {
		if !math.IsInf(arr[v], 1) {
			finals++
		}
	}
	if len(seen) != finals {
		t.Errorf("%d outputs but %d finalized vertices", len(seen), finals)
	}
}

func memeFixture(tb testing.TB, g *graph.Template, steps int, hitProb float64) *gen.SIRResult {
	tb.Helper()
	res, err := gen.SIRTweets(g, gen.SIRConfig{
		Timesteps: steps, T0: 0, Delta: 60,
		Memes: []string{"#viral"}, SeedsPerMeme: 2,
		HitProb: hitProb, RecoverAfter: 4, Seed: 31,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func TestMemeMatchesReference(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 600, M: 2, Seed: 7})
	parts := buildParts(t, g, 3)
	sir := memeFixture(t, g, 15, 0.2)
	got, _, err := RunMeme(g, parts, "#viral", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refMeme(sir.Collection, "#viral", gen.AttrTweets)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d colored at %d, want %d", v, got[v], want[v])
		}
	}
}

// TestMemeRandomProperty cross-checks meme tracking against the reference
// on random graphs and partitions.
func TestMemeRandomProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		k := 1 + int(kRaw)%4
		vs, es := gen.StandardSchemas()
		b := graph.NewBuilder("rand", vs, es)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < 2*n; e++ {
			b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		sir, err := gen.SIRTweets(g, gen.SIRConfig{
			Timesteps: 6, Delta: 1, Memes: []string{"#m"},
			SeedsPerMeme: 2, HitProb: 0.4, Seed: seed,
		})
		if err != nil {
			return false
		}
		a := &partition.Assignment{K: k, Parts: make([]int32, n)}
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		parts, err := subgraph.Build(g, a)
		if err != nil {
			return false
		}
		got, _, err := RunMeme(g, parts, "#m", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, nil)
		if err != nil {
			return false
		}
		want := refMeme(sir.Collection, "#m", gen.AttrTweets)
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMemeCountersMatchColoring(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 300, M: 2, Seed: 8})
	parts := buildParts(t, g, 2)
	sir := memeFixture(t, g, 10, 0.3)
	rec := metrics.NewRecorder(2)
	got, _, err := RunMeme(g, parts, "#viral", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	coloredTotal := 0
	for _, at := range got {
		if at >= 0 {
			coloredTotal++
		}
	}
	if rec.CounterTotal(CounterColored) != int64(coloredTotal) {
		t.Errorf("colored counter %d, want %d", rec.CounterTotal(CounterColored), coloredTotal)
	}
}

func TestHashtagMatchesDirectCount(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 400, M: 2, Seed: 9})
	parts := buildParts(t, g, 3)
	sir := memeFixture(t, g, 12, 0.25)
	stats, _, err := RunHashtag(g, parts, "#viral", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := refHashtagCounts(sir.Collection, "#viral", gen.AttrTweets)
	if len(stats.Counts) != len(want) {
		t.Fatalf("counts length %d, want %d", len(stats.Counts), len(want))
	}
	var total int64
	for ts := range want {
		if stats.Counts[ts] != want[ts] {
			t.Fatalf("timestep %d count %d, want %d", ts, stats.Counts[ts], want[ts])
		}
		total += want[ts]
	}
	if stats.Total != total {
		t.Errorf("total %d, want %d", stats.Total, total)
	}
	if stats.Counts[stats.PeakTimestep] < stats.Counts[0] {
		t.Error("peak timestep is not the maximum")
	}
}

func TestHashtagTemporalParallelismEquivalent(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 300, M: 2, Seed: 10})
	parts := buildParts(t, g, 2)
	sir := memeFixture(t, g, 8, 0.3)
	seqStats, _, err := RunHashtag(g, parts, "#viral", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	parStats, _, err := RunHashtag(g, parts, "#viral", gen.AttrTweets, core.MemorySource{C: sir.Collection}, bsp.Config{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ts := range seqStats.Counts {
		if seqStats.Counts[ts] != parStats.Counts[ts] {
			t.Fatalf("timestep %d: sequential %d != parallel %d", ts, seqStats.Counts[ts], parStats.Counts[ts])
		}
	}
}

func TestCCMatchesStats(t *testing.T) {
	// Build a graph with several components: three separate road patches.
	vs, es := gen.StandardSchemas()
	b := graph.NewBuilder("multi", vs, es)
	addPatch := func(base graph.VertexID, n int) {
		for i := 0; i+1 < n; i++ {
			b.AddUndirectedEdge(base+graph.VertexID(i), base+graph.VertexID(i+1))
		}
	}
	addPatch(0, 10)
	addPatch(100, 7)
	addPatch(200, 3)
	g := b.MustBuild()
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 1, Delta: 1, Min: 0, Max: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.BFSGrow{}).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := RunCC(g, parts, core.MemorySource{C: c}, bsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	comps := map[int64]int{}
	for _, l := range labels {
		comps[l]++
	}
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	// Vertices in the same patch share labels.
	if labels[g.VertexIndex(0)] != labels[g.VertexIndex(9)] {
		t.Error("patch 1 split")
	}
	if labels[g.VertexIndex(100)] == labels[g.VertexIndex(200)] {
		t.Error("patches merged")
	}
}

func TestMasterSubgraphSelection(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 10, Cols: 10, Seed: 12})
	parts := buildParts(t, g, 3)
	m := masterSubgraph(parts)
	if m.Partition() != 0 {
		t.Errorf("master in partition %d, want 0", m.Partition())
	}
	size := parts[0].Subgraphs[m.Index()].NumVertices()
	for _, sg := range parts[0].Subgraphs {
		if sg.NumVertices() > size {
			t.Errorf("master is not the largest subgraph of partition 0")
		}
	}
	if masterSubgraph(nil) != subgraph.MakeID(0, 0) {
		t.Error("empty parts should give 0/0")
	}
}
