package algorithms

import (
	"container/heap"

	"tsgraph/internal/graph"
)

// Reference (global, non-distributed) implementations of the paper's
// algorithms, used to validate the distributed TI-BSP versions.

// refDijkstra is plain Dijkstra over the template with per-edge-slot
// weights (nil = unweighted).
func refDijkstra(g *graph.Template, src int, weights []float64) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= g.NumVertices() {
		return dist
	}
	dist[src] = 0
	h := pq{{v: int32(src), d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		lo, hi := g.OutEdges(int(it.v))
		for e := lo; e < hi; e++ {
			w := 1.0
			if weights != nil {
				w = weights[e]
			}
			nd := it.d + w
			v := g.Target(e)
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&h, pqItem{v: int32(v), d: nd})
			}
		}
	}
	return dist
}

// refTDSP is the global discrete-time TDSP: per timestep, Dijkstra from the
// finalized set (seeded at ts·δ by the idling edges) capped at the horizon
// (ts+1)·δ, finalizing newly reached vertices.
func refTDSP(c *graph.Collection, src int, attr string, delta float64) []float64 {
	g := c.Template
	n := g.NumVertices()
	final := make([]float64, n)
	isFinal := make([]bool, n)
	for i := range final {
		final[i] = Inf
	}
	dist := make([]float64, n)
	for ts := 0; ts < c.NumInstances(); ts++ {
		horizon := float64(ts+1) * delta
		weights := c.Instance(ts).EdgeFloats(g, attr)
		var h pq
		for i := range dist {
			dist[i] = Inf
		}
		if ts == 0 && src >= 0 && src < n {
			dist[src] = 0
			h = append(h, pqItem{v: int32(src), d: 0})
		}
		seed := float64(ts) * delta
		for v := 0; v < n; v++ {
			if isFinal[v] {
				dist[v] = seed
				h = append(h, pqItem{v: int32(v), d: seed})
			}
		}
		heap.Init(&h)
		for h.Len() > 0 {
			it := heap.Pop(&h).(pqItem)
			if it.d > dist[it.v] {
				continue
			}
			lo, hi := g.OutEdges(int(it.v))
			for e := lo; e < hi; e++ {
				nd := it.d + weights[e]
				if nd > horizon {
					continue
				}
				v := g.Target(e)
				if isFinal[v] {
					continue
				}
				if nd < dist[v] {
					dist[v] = nd
					heap.Push(&h, pqItem{v: int32(v), d: nd})
				}
			}
		}
		for v := 0; v < n; v++ {
			if !isFinal[v] && dist[v] != Inf {
				isFinal[v] = true
				final[v] = dist[v]
			}
		}
	}
	return final
}

// refMeme is the global temporal meme BFS: first-colored timestep per
// vertex, -1 if never.
func refMeme(c *graph.Collection, meme, attr string) []int32 {
	g := c.Template
	n := g.NumVertices()
	coloredAt := make([]int32, n)
	colored := make([]bool, n)
	for i := range coloredAt {
		coloredAt[i] = -1
	}
	carrier := func(ts, v int) bool {
		for _, tag := range c.Instance(ts).VertexStringLists(g, attr)[v] {
			if tag == meme {
				return true
			}
		}
		return false
	}
	for ts := 0; ts < c.NumInstances(); ts++ {
		var queue []int32
		if ts == 0 {
			for v := 0; v < n; v++ {
				if carrier(ts, v) {
					colored[v] = true
					coloredAt[v] = 0
					queue = append(queue, int32(v))
				}
			}
		} else {
			for v := 0; v < n; v++ {
				if colored[v] {
					queue = append(queue, int32(v))
				}
			}
		}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			lo, hi := g.OutEdges(int(u))
			for e := lo; e < hi; e++ {
				w := g.Target(e)
				if colored[w] || !carrier(ts, w) {
					continue
				}
				colored[w] = true
				coloredAt[w] = int32(ts)
				queue = append(queue, int32(w))
			}
		}
	}
	return coloredAt
}

// refHashtagCounts counts a hashtag per timestep over all vertices.
func refHashtagCounts(c *graph.Collection, hashtag, attr string) []int64 {
	g := c.Template
	out := make([]int64, c.NumInstances())
	for ts := 0; ts < c.NumInstances(); ts++ {
		lists := c.Instance(ts).VertexStringLists(g, attr)
		for _, tags := range lists {
			for _, tag := range tags {
				if tag == hashtag {
					out[ts]++
				}
			}
		}
	}
	return out
}
