package algorithms

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// CounterFinalized is the per-partition metric TDSP accumulates: the number
// of vertices whose time-dependent shortest path was finalized in a
// timestep (the paper's Fig 7a).
const CounterFinalized = "finalized"

// TDSPResult is one finalized vertex: the earliest time it can be reached
// from the source starting at t0.
type TDSPResult struct {
	Vertex   graph.VertexID
	Timestep int
	Arrival  float64
}

// TDSPProgram implements Algorithm 2 of the paper: discrete-time
// Time-Dependent Shortest Path over a sequentially dependent TI-BSP run.
// Each timestep runs a horizon-capped SSSP over that instance's edge
// latencies; vertices reached within the current interval are finalized and
// become, via the uni-directional temporal ("idling") edges, the seeds of
// the next timestep at label timestep·δ.
//
// TDSPProgram deliberately does NOT implement core.IncrementalProgram: a
// subgraph whose edge latencies are unchanged still does new work every
// timestep, because the horizon (ts+1)·δ grows — previously out-of-reach
// vertices become reachable over identical latencies, and the finalized
// frontier re-seeds at the new label timestep·δ. A delta-clean subgraph is
// therefore not a convergence-clean subgraph, which is exactly the property
// incremental skipping relies on.
type TDSPProgram struct {
	// Source is the template vertex index of the source s.
	Source int
	// Delta is the instance period δ; the timestep-ts horizon is (ts+1)·δ.
	Delta float64
	// WeightAttr names the float edge attribute carrying travel times.
	WeightAttr string
	// ExistsAttr optionally names a bool edge attribute (the paper's
	// isExists); edges absent in an instance cannot be traversed during
	// that interval.
	ExistsAttr string

	// Per-partition state, written only by the owning subgraph's Compute.
	labels [][]float64
	final  [][]bool
	// roots accumulated at superstep 0 for reseeding from the temporal
	// message within the timestep.
	finalArrival [][]float64 // recorded arrival time per finalized vertex
}

// NewTDSP builds a TDSP program over partitioned data.
func NewTDSP(parts []*subgraph.PartitionData, source int, delta float64, weightAttr string) *TDSPProgram {
	p := &TDSPProgram{Source: source, Delta: delta, WeightAttr: weightAttr}
	n := maxPID(parts)
	p.labels = make([][]float64, n)
	p.final = make([][]bool, n)
	p.finalArrival = make([][]float64, n)
	for _, pd := range parts {
		p.labels[pd.PID] = make([]float64, pd.NumVertices())
		p.final[pd.PID] = make([]bool, pd.NumVertices())
		p.finalArrival[pd.PID] = make([]float64, pd.NumVertices())
	}
	return p
}

func (p *TDSPProgram) weightFn(ctx *core.Context, sg *subgraph.Subgraph) func(int) float64 {
	col := ctx.Instance().EdgeFloats(ctx.Template(), p.WeightAttr)
	if col == nil {
		panic(fmt.Sprintf("algorithms: template lacks float edge attribute %q", p.WeightAttr))
	}
	eg := sg.Part.EdgeGlobal
	exists := existsFn(ctx, p.ExistsAttr)
	return func(e int) float64 {
		if !exists(int(eg[e])) {
			return skipEdge
		}
		return col[eg[e]]
	}
}

// Compute implements core.Program (Alg 2, lines 1–25).
func (p *TDSPProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	labels := p.labels[pd.PID]
	final := p.final[pd.PID]
	horizon := float64(timestep+1) * p.Delta
	var roots []int32

	switch {
	case superstep == 0 && timestep == 0:
		// Lines 3–7: labels ← ∞; seed the source.
		for _, lv := range sg.Verts {
			labels[lv] = Inf
			final[lv] = false
		}
		for _, lv := range sg.Verts {
			if int(pd.GlobalIdx[lv]) == p.Source {
				labels[lv] = 0
				roots = append(roots, lv)
				break
			}
		}
	case superstep == 0:
		// Lines 8–11: rebuild the timestep's state from the temporal
		// message: F = finalized set, seeded at timestep·δ by the idling
		// edges; all other labels are discarded (edge values changed).
		for _, lv := range sg.Verts {
			labels[lv] = Inf
			final[lv] = false
		}
		seed := float64(timestep) * p.Delta
		for _, m := range msgs {
			f := m.Payload.(VertexSet)
			for _, lv := range f.Vertices {
				labels[lv] = seed
				final[lv] = true
				roots = append(roots, lv)
			}
		}
	default:
		// Lines 13–18: boundary updates from other subgraphs.
		for _, m := range msgs {
			b := m.Payload.(LabelBatch)
			for i, lv := range b.Vertices {
				if final[lv] {
					continue
				}
				if b.Labels[i] < labels[lv] {
					labels[lv] = b.Labels[i]
					roots = append(roots, lv)
				}
			}
		}
	}

	if len(roots) > 0 {
		remote := modifiedSSSP(sg, labels, final, roots, horizon, p.weightFn(ctx, sg))
		sendBatches(ctx.SendTo, remote)
	}
	ctx.VoteToHalt()
}

// EndOfTimestep implements Alg 2 lines 26–31: finalize newly reached
// vertices, emit their TDSP values, and pass the full finalized set along
// the temporal edge.
func (p *TDSPProgram) EndOfTimestep(ctx *core.EndContext, sg *subgraph.Subgraph, timestep int) {
	pd := sg.Part
	labels := p.labels[pd.PID]
	final := p.final[pd.PID]
	arrival := p.finalArrival[pd.PID]

	var newly []int32
	for _, lv := range sg.Verts {
		if !final[lv] && labels[lv] != Inf {
			final[lv] = true
			arrival[lv] = labels[lv]
			newly = append(newly, lv)
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	ctx.AddCounter(CounterFinalized, int64(len(newly)))
	for _, lv := range newly {
		ctx.Output(TDSPResult{
			Vertex:   ctx.Template().VertexID(int(pd.GlobalIdx[lv])),
			Timestep: timestep,
			Arrival:  arrival[lv],
		})
	}

	// F ← F ∪ F_timestep; send to next timestep.
	var all []int32
	for _, lv := range sg.Verts {
		if final[lv] {
			all = append(all, lv)
		}
	}
	if len(all) > 0 {
		ctx.SendToNextTimestep(VertexSet{Vertices: all})
	}
	if len(all) == sg.NumVertices() {
		// Everything here is finalized; if every subgraph agrees the
		// application can stop early.
		ctx.VoteToHaltTimestep()
	}
}

// tdspCheckpoint is the gob payload of a TDSP checkpoint: the accumulators
// that outlive a timestep. Labels are rebuilt from the temporal message at
// superstep 0 and need no persistence.
type tdspCheckpoint struct {
	Final   [][]bool
	Arrival [][]float64
}

// CheckpointState implements core.Checkpointer.
func (p *TDSPProgram) CheckpointState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tdspCheckpoint{Final: p.final, Arrival: p.finalArrival}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint implements core.Checkpointer.
func (p *TDSPProgram) RestoreCheckpoint(data []byte) error {
	var st tdspCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("algorithms: tdsp restore: %w", err)
	}
	if len(st.Final) != len(p.final) || len(st.Arrival) != len(p.finalArrival) {
		return fmt.Errorf("algorithms: tdsp restore: checkpoint has %d partitions, program has %d", len(st.Final), len(p.final))
	}
	p.final, p.finalArrival = st.Final, st.Arrival
	return nil
}

// Arrivals gathers finalized arrival times into a template-indexed array
// (Inf for vertices never reached within the processed range).
func (p *TDSPProgram) Arrivals(parts []*subgraph.PartitionData, t *graph.Template) []float64 {
	out := make([]float64, t.NumVertices())
	for i := range out {
		out[i] = Inf
	}
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			if p.final[pd.PID][lv] {
				out[g] = p.finalArrival[pd.PID][lv]
			}
		}
	}
	return out
}

// RunTDSP runs TDSP from src over all instances of a source. It stops early
// once every vertex is finalized (the paper's WIKI run converges in 4 of 50
// timesteps). Returns template-indexed arrival times plus the run result.
func RunTDSP(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	src int,
	source core.InstanceSource,
	delta float64,
	weightAttr string,
	cfg bsp.Config,
	rec *metrics.Recorder,
) ([]float64, *core.Result, error) {
	prog := NewTDSP(parts, src, delta, weightAttr)
	// Master-style global termination: stop once every vertex's TDSP is
	// finalized (the paper's WIKI run converges after 4 of 50 instances).
	var finalized int64
	halt := func(ts int, tr *metrics.TimestepRecord) bool {
		if tr == nil {
			return false
		}
		for p := range tr.Parts {
			finalized += tr.Parts[p].Counters[CounterFinalized]
		}
		return finalized >= int64(t.NumVertices())
	}
	res, err := core.Run(&core.Job{
		Template:      t,
		Parts:         parts,
		Source:        source,
		Program:       prog,
		Pattern:       core.SequentiallyDependent,
		Config:        cfg,
		Recorder:      rec,
		HaltCondition: halt,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog.Arrivals(parts, t), res, nil
}
