package algorithms

import (
	"fmt"
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// VertexValue pairs a vertex with an attribute value for ranking.
type VertexValue struct {
	Vertex graph.VertexID
	Value  float64
}

// TopNResult is one subgraph's local top-N for one timestep.
type TopNResult struct {
	Timestep int
	Top      []VertexValue
}

// TopNProgram implements the paper's independent-pattern example (§II-B):
// "finding the daily Top-N central vertices in a year … can be done in a
// pleasingly temporally parallel manner". Every instance is processed in
// isolation: each subgraph emits its local top-N vertices by a float
// attribute, and the driver merges the per-subgraph lists into the global
// per-timestep ranking. No messages cross subgraphs or timesteps.
type TopNProgram struct {
	// Attr names the float vertex attribute to rank by.
	Attr string
	// N is the ranking depth.
	N int
}

// Compute implements core.Program.
func (p *TopNProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	vals := ctx.Instance().VertexFloats(ctx.Template(), p.Attr)
	if vals == nil {
		panic(fmt.Sprintf("algorithms: template lacks float vertex attribute %q", p.Attr))
	}
	pd := sg.Part
	local := make([]VertexValue, 0, len(sg.Verts))
	for _, lv := range sg.Verts {
		g := pd.GlobalIdx[lv]
		local = append(local, VertexValue{Vertex: ctx.Template().VertexID(int(g)), Value: vals[g]})
	}
	sort.Slice(local, func(i, j int) bool {
		if local[i].Value != local[j].Value {
			return local[i].Value > local[j].Value
		}
		return local[i].Vertex < local[j].Vertex
	})
	if len(local) > p.N {
		local = local[:p.N]
	}
	ctx.Output(TopNResult{Timestep: timestep, Top: local})
	ctx.VoteToHalt()
}

// RunTopN ranks vertices by a float attribute independently per timestep
// and returns, for each timestep, the global top-N. temporalParallelism > 1
// processes several instances concurrently (the independent pattern's
// temporal concurrency).
func RunTopN(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	attr string,
	n int,
	source core.InstanceSource,
	cfg bsp.Config,
	rec *metrics.Recorder,
	temporalParallelism int,
) ([][]VertexValue, *core.Result, error) {
	return RunTopNRange(t, parts, attr, n, source, 0, 0, cfg, rec, temporalParallelism)
}

// RunTopNRange is RunTopN over the instance window [from, from+count)
// (count <= 0 means through the last instance), the serving layer's
// windowed ranking entry point. Element i of the returned slice is the
// global top-N of timestep from+i.
func RunTopNRange(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	attr string,
	n int,
	source core.InstanceSource,
	from, count int,
	cfg bsp.Config,
	rec *metrics.Recorder,
	temporalParallelism int,
) ([][]VertexValue, *core.Result, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("algorithms: top-N needs N >= 1, got %d", n)
	}
	prog := &TopNProgram{Attr: attr, N: n}
	res, err := core.Run(&core.Job{
		Template:            t,
		Parts:               parts,
		Source:              source,
		Program:             prog,
		Pattern:             core.Independent,
		StartTimestep:       from,
		Timesteps:           count,
		Config:              cfg,
		Recorder:            rec,
		TemporalParallelism: temporalParallelism,
	})
	if err != nil {
		return nil, nil, err
	}
	// Merge per-subgraph lists into global top-N per timestep.
	perStep := make([][]VertexValue, res.TimestepsRun-from)
	for _, o := range res.Outputs {
		r, ok := o.Data.(TopNResult)
		if !ok || r.Timestep < from || r.Timestep-from >= len(perStep) {
			continue
		}
		perStep[r.Timestep-from] = append(perStep[r.Timestep-from], r.Top...)
	}
	for ts := range perStep {
		sort.Slice(perStep[ts], func(i, j int) bool {
			if perStep[ts][i].Value != perStep[ts][j].Value {
				return perStep[ts][i].Value > perStep[ts][j].Value
			}
			return perStep[ts][i].Vertex < perStep[ts][j].Vertex
		})
		if len(perStep[ts]) > n {
			perStep[ts] = perStep[ts][:n]
		}
	}
	return perStep, res, nil
}
