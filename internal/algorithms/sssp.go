package algorithms

import (
	"fmt"
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// sendBatches emits one LabelBatch message per destination subgraph, in
// deterministic order (sorted destinations, sorted vertices within each
// batch).
func sendBatches(send func(dst subgraph.ID, payload any), remote map[remoteKey]remoteCand) {
	batches := batchRemote(remote)
	dsts := make([]subgraph.ID, 0, len(batches))
	for dst := range batches {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		b := batches[dst]
		order := make([]int, len(b.Vertices))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return b.Vertices[order[i]] < b.Vertices[order[j]] })
		sorted := &LabelBatch{
			Vertices: make([]int32, len(order)),
			Labels:   make([]float64, len(order)),
		}
		for i, o := range order {
			sorted.Vertices[i] = b.Vertices[o]
			sorted.Labels[i] = b.Labels[o]
		}
		send(dst, *sorted)
	}
}

// SSSPProgram is the subgraph-centric single-source shortest path of the
// GoFFish model: each superstep runs Dijkstra inside every active subgraph
// and exchanges boundary labels with neighboring subgraphs. On a single
// instance it is the paper's "GoFFish SSSP" baseline (Fig 5b); with nil
// weights it degenerates to BFS.
type SSSPProgram struct {
	// Source is the template vertex index of the source.
	Source int
	// WeightAttr names the float edge attribute holding travel times;
	// empty means unweighted (BFS).
	WeightAttr string
	// ExistsAttr optionally names a bool edge attribute (the paper's
	// isExists); edges with a false value in the current instance are
	// skipped, capturing slow topology change.
	ExistsAttr string

	// labels[p][lv] is the tentative distance of partition p's local
	// vertex lv. Written only by the owning subgraph's Compute.
	labels [][]float64
}

// NewSSSP builds an SSSP program over partitioned data.
func NewSSSP(parts []*subgraph.PartitionData, source int, weightAttr string) *SSSPProgram {
	p := &SSSPProgram{Source: source, WeightAttr: weightAttr}
	p.labels = make([][]float64, maxPID(parts))
	for _, pd := range parts {
		p.labels[pd.PID] = make([]float64, pd.NumVertices())
	}
	return p
}

// weightFn builds the local-edge weight function for the current instance,
// honoring the optional isExists attribute.
func (p *SSSPProgram) weightFn(ctx *core.Context, sg *subgraph.Subgraph) func(int) float64 {
	eg := sg.Part.EdgeGlobal
	exists := existsFn(ctx, p.ExistsAttr)
	if p.WeightAttr == "" {
		return func(e int) float64 {
			if !exists(int(eg[e])) {
				return skipEdge
			}
			return 1
		}
	}
	col := ctx.Instance().EdgeFloats(ctx.Template(), p.WeightAttr)
	if col == nil {
		panic(fmt.Sprintf("algorithms: template lacks float edge attribute %q", p.WeightAttr))
	}
	return func(e int) float64 {
		if !exists(int(eg[e])) {
			return skipEdge
		}
		return col[eg[e]]
	}
}

// existsFn resolves the optional isExists bool edge column of the current
// instance into a predicate over template edge slots.
func existsFn(ctx *core.Context, attr string) func(int) bool {
	if attr == "" {
		return func(int) bool { return true }
	}
	t := ctx.Template()
	i := t.EdgeSchema().Index(attr)
	if i < 0 || t.EdgeSchema().Type(i) != graph.TBool {
		panic(fmt.Sprintf("algorithms: template lacks bool edge attribute %q", attr))
	}
	col := ctx.Instance().EdgeCols[i].Bools
	return func(slot int) bool { return col[slot] }
}

// Compute implements core.Program.
func (p *SSSPProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	labels := p.labels[pd.PID]
	var roots []int32

	if superstep == 0 {
		for _, lv := range sg.Verts {
			labels[lv] = Inf
		}
		if p.Source >= 0 {
			// The source is in this subgraph iff we own its partition-local
			// slot.
			for _, lv := range sg.Verts {
				if int(pd.GlobalIdx[lv]) == p.Source {
					labels[lv] = 0
					roots = append(roots, lv)
					break
				}
			}
		}
	} else {
		for _, m := range msgs {
			b := m.Payload.(LabelBatch)
			for i, lv := range b.Vertices {
				if b.Labels[i] < labels[lv] {
					labels[lv] = b.Labels[i]
					roots = append(roots, lv)
				}
			}
		}
	}

	if len(roots) > 0 {
		remote := modifiedSSSP(sg, labels, nil, roots, Inf, p.weightFn(ctx, sg))
		sendBatches(ctx.SendTo, remote)
	}
	ctx.VoteToHalt()
}

// Distances gathers the final labels into a template-indexed array.
func (p *SSSPProgram) Distances(parts []*subgraph.PartitionData, t *graph.Template) []float64 {
	out := make([]float64, t.NumVertices())
	for i := range out {
		out[i] = Inf
	}
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			out[g] = p.labels[pd.PID][lv]
		}
	}
	return out
}

// RunSSSP runs subgraph-centric SSSP on one instance of a collection and
// returns template-indexed distances plus the TI-BSP result.
func RunSSSP(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	src int,
	source core.InstanceSource,
	timestep int,
	weightAttr string,
	cfg bsp.Config,
) ([]float64, *core.Result, error) {
	prog := NewSSSP(parts, src, weightAttr)
	// A single-instance window over the requested timestep.
	win := windowSource{src: source, offset: timestep, n: 1}
	res, err := core.Run(&core.Job{
		Template:  t,
		Parts:     parts,
		Source:    win,
		Program:   prog,
		Pattern:   core.SequentiallyDependent,
		Timesteps: 1,
		Config:    cfg,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog.Distances(parts, t), res, nil
}

// windowSource exposes a sub-range of another source.
type windowSource struct {
	src    core.InstanceSource
	offset int
	n      int
}

// Timesteps implements core.InstanceSource.
func (w windowSource) Timesteps() int { return w.n }

// Load implements core.InstanceSource.
func (w windowSource) Load(step int) (*graph.Instance, error) {
	return w.src.Load(w.offset + step)
}
