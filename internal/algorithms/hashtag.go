package algorithms

import (
	"fmt"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// HashtagStats is the Merge output of hashtag aggregation: the hashtag's
// occurrence count per timestep across the whole graph, plus derived
// summary statistics (§III-A: "the count of that hashtag across time or the
// rate of change of occurrence").
type HashtagStats struct {
	Hashtag string
	// Counts[t] is the number of occurrences in timestep t.
	Counts []int64
	// Total across all timesteps.
	Total int64
	// PeakTimestep is the timestep with the highest count (first on ties).
	PeakTimestep int
	// MaxRate is the largest increase between consecutive timesteps.
	MaxRate int64
}

// HashtagProgram implements the eventually dependent Hashtag Aggregation
// of §III-A: every timestep each subgraph counts the hashtag among its
// vertices' tweets and forwards the count to Merge; Merge assembles each
// subgraph's per-timestep vector and funnels them to the largest subgraph
// of the first partition (the paper's stand-in for Master.Compute), which
// aggregates and emits the statistics.
type HashtagProgram struct {
	// Hashtag to count.
	Hashtag string
	// TweetsAttr names the string-list vertex attribute holding tweets.
	TweetsAttr string
	// Master is the aggregation target (largest subgraph of partition 0).
	Master subgraph.ID
}

// NewHashtag builds the program, selecting the master subgraph.
func NewHashtag(parts []*subgraph.PartitionData, hashtag, tweetsAttr string) *HashtagProgram {
	return &HashtagProgram{
		Hashtag:    hashtag,
		TweetsAttr: tweetsAttr,
		Master:     masterSubgraph(parts),
	}
}

// Compute implements core.Program: one superstep per instance counting
// occurrences among this subgraph's vertices.
func (p *HashtagProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	tweets := ctx.Instance().VertexStringLists(ctx.Template(), p.TweetsAttr)
	if tweets == nil {
		panic(fmt.Sprintf("algorithms: template lacks string-list vertex attribute %q", p.TweetsAttr))
	}
	pd := sg.Part
	var count int64
	for _, lv := range sg.Verts {
		for _, tag := range tweets[pd.GlobalIdx[lv]] {
			if tag == p.Hashtag {
				count++
			}
		}
	}
	ctx.SendMessageToMerge(StepCount{Timestep: int32(timestep), Count: count})
	ctx.VoteToHalt()
}

// Merge implements core.Merger. Superstep 0: each subgraph receives its own
// per-timestep StepCounts, assembles hash[] and sends it to the master.
// Superstep 1: the master sums the vectors and emits HashtagStats.
func (p *HashtagProgram) Merge(ctx *core.MergeContext, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
	if superstep == 0 {
		var counts []int64
		for _, m := range msgs {
			sc := m.Payload.(StepCount)
			for int(sc.Timestep) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[sc.Timestep] += sc.Count
		}
		if len(counts) > 0 || sg.SID == p.Master {
			ctx.SendTo(p.Master, CountVector{Counts: counts})
		}
		ctx.VoteToHalt()
		return
	}
	if sg.SID == p.Master {
		var total []int64
		for _, m := range msgs {
			cv := m.Payload.(CountVector)
			for len(total) < len(cv.Counts) {
				total = append(total, 0)
			}
			for i, c := range cv.Counts {
				total[i] += c
			}
		}
		stats := HashtagStats{Hashtag: p.Hashtag, Counts: total}
		for t, c := range total {
			stats.Total += c
			if c > total[stats.PeakTimestep] {
				stats.PeakTimestep = t
			}
			if t > 0 {
				if rate := c - total[t-1]; rate > stats.MaxRate {
					stats.MaxRate = rate
				}
			}
		}
		ctx.Output(stats)
	}
	ctx.VoteToHalt()
}

// RunHashtag aggregates a hashtag over every instance and returns the
// merged statistics plus the run result.
func RunHashtag(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	hashtag string,
	tweetsAttr string,
	source core.InstanceSource,
	cfg bsp.Config,
	rec *metrics.Recorder,
	temporalParallelism int,
) (*HashtagStats, *core.Result, error) {
	prog := NewHashtag(parts, hashtag, tweetsAttr)
	res, err := core.Run(&core.Job{
		Template:            t,
		Parts:               parts,
		Source:              source,
		Program:             prog,
		Merger:              prog,
		Pattern:             core.EventuallyDependent,
		Config:              cfg,
		Recorder:            rec,
		TemporalParallelism: temporalParallelism,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, o := range res.Outputs {
		if stats, ok := o.Data.(HashtagStats); ok {
			return &stats, res, nil
		}
	}
	return nil, nil, fmt.Errorf("algorithms: merge produced no HashtagStats")
}
