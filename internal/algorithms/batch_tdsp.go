package algorithms

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// CounterTargetsDone is the per-partition metric a batched TDSP run
// accumulates: the number of (query, target) pairs finalized in a timestep.
// RunBatchTDSP's halt condition stops the sweep once every target of every
// query is resolved.
const CounterTargetsDone = "targets-finalized"

// BatchQuery is one source of a multi-source TDSP batch, with the target
// vertices its clients asked about.
type BatchQuery struct {
	// Source is the template vertex index of the departure vertex.
	Source int
	// Targets are template vertex indices whose arrivals the batch must
	// resolve. The run halts early once every target of every query is
	// finalized; a query with no targets disables early halting and runs
	// its source to the end of the window.
	Targets []int
}

// BatchLabelBatch is a LabelBatch tagged with the batch query it belongs to
// (the boundary-update payload of a multi-source sweep).
type BatchLabelBatch struct {
	Source   int32
	Vertices []int32
	Labels   []float64
}

// BatchVertexSet is a VertexSet tagged with the batch query it belongs to
// (the per-source finalized set riding the temporal edge).
type BatchVertexSet struct {
	Source   int32
	Vertices []int32
}

func init() {
	registerPayload(BatchLabelBatch{})
	registerPayload(BatchVertexSet{})
}

// vloc locates a template vertex inside the partitioned view.
type vloc struct {
	pid int
	lv  int32
}

// srcSeed is one batch query's source vertex inside a partition.
type srcSeed struct {
	si int
	lv int32
}

// BatchTDSPProgram runs Algorithm 2 for many sources simultaneously over
// ONE sequentially dependent TI-BSP sweep: per-source label/finalized state
// is kept side by side (flattened [source][vertex] arrays per partition),
// messages are tagged with their source, and each timestep's ModifiedSSSP
// runs once per source with roots. The per-timestep fixed costs — instance
// load, superstep barriers, engine setup — are paid once for the whole
// batch, which is what makes micro-batched serving (internal/serve) win
// over one sweep per query. Arrivals are identical to running TDSPProgram
// once per source with the same departure timestep.
type BatchTDSPProgram struct {
	// Queries are the batch members; sources must be distinct.
	Queries []BatchQuery
	// Depart is the departure timestep shared by the whole batch; the run
	// must start at this timestep (core.Job.StartTimestep).
	Depart int
	// Delta is the instance period δ; the timestep-ts horizon is (ts+1)·δ.
	Delta float64
	// WeightAttr names the float edge attribute carrying travel times.
	WeightAttr string
	// ExistsAttr optionally names a bool edge attribute (the paper's
	// isExists); edges absent in an instance cannot be traversed then.
	ExistsAttr string

	nsrc int
	// Per-partition state, flattened [si*numVertices + lv]; written only by
	// the owning subgraph's Compute/EndOfTimestep.
	labels       [][]float64
	final        [][]bool
	finalArrival [][]float64
	finalAt      [][]int32 // timestep each slot finalized at; -1 until then
	// srcLocal lists, per partition, the batch sources it owns.
	srcLocal map[int][]srcSeed
	// targetsOf maps, per partition, a local vertex to the query indices
	// probing it (for the targets-finalized counter).
	targetsOf map[int]map[int32][]int32
	// loc locates every source and target vertex named by the batch.
	loc map[int]vloc
	// remaining counts each query's unresolved targets; -1 marks a query
	// with no targets (it runs the window out). A query whose count reaches
	// zero is retired: from the next timestep on it is skipped entirely, so
	// a resolved batch member stops paying sweep work just like a
	// single-query run halting early. Decremented under EndOfTimestep (any
	// partition may own the target), read after the timestep barrier.
	remaining []atomic.Int32
	// active snapshots, per partition, which queries were live at the
	// current timestep's start (written once at superstep 0, so the
	// decision is barrier-aligned and deterministic).
	active [][]bool
}

// NewBatchTDSP builds a multi-source TDSP program over partitioned data.
// Query sources must be distinct (a serving layer deduplicates before
// batching); duplicate targets within a query are deduplicated here.
func NewBatchTDSP(parts []*subgraph.PartitionData, queries []BatchQuery, depart int, delta float64, weightAttr string) (*BatchTDSPProgram, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("algorithms: batch TDSP needs at least one query")
	}
	if depart < 0 {
		return nil, fmt.Errorf("algorithms: negative departure timestep %d", depart)
	}
	p := &BatchTDSPProgram{
		Queries:    queries,
		Depart:     depart,
		Delta:      delta,
		WeightAttr: weightAttr,
		nsrc:       len(queries),
		srcLocal:   make(map[int][]srcSeed),
		targetsOf:  make(map[int]map[int32][]int32),
		loc:        make(map[int]vloc),
	}
	needed := make(map[int]bool)
	seenSrc := make(map[int]bool)
	for i := range queries {
		q := &queries[i]
		if seenSrc[q.Source] {
			return nil, fmt.Errorf("algorithms: batch TDSP sources must be distinct (vertex index %d repeats)", q.Source)
		}
		seenSrc[q.Source] = true
		needed[q.Source] = true
		dedup := q.Targets[:0]
		seenTgt := make(map[int]bool, len(q.Targets))
		for _, tgt := range q.Targets {
			if seenTgt[tgt] {
				continue
			}
			seenTgt[tgt] = true
			needed[tgt] = true
			dedup = append(dedup, tgt)
		}
		q.Targets = dedup
	}
	p.remaining = make([]atomic.Int32, p.nsrc)
	for i := range queries {
		if len(queries[i].Targets) == 0 {
			p.remaining[i].Store(-1)
		} else {
			p.remaining[i].Store(int32(len(queries[i].Targets)))
		}
	}
	n := maxPID(parts)
	p.labels = make([][]float64, n)
	p.final = make([][]bool, n)
	p.finalArrival = make([][]float64, n)
	p.finalAt = make([][]int32, n)
	p.active = make([][]bool, n)
	for _, pd := range parts {
		nv := pd.NumVertices()
		p.labels[pd.PID] = make([]float64, p.nsrc*nv)
		p.final[pd.PID] = make([]bool, p.nsrc*nv)
		p.finalArrival[pd.PID] = make([]float64, p.nsrc*nv)
		at := make([]int32, p.nsrc*nv)
		for i := range at {
			at[i] = -1
		}
		p.finalAt[pd.PID] = at
		p.active[pd.PID] = make([]bool, p.nsrc)
		for lv, g := range pd.GlobalIdx {
			if needed[int(g)] {
				p.loc[int(g)] = vloc{pid: pd.PID, lv: int32(lv)}
			}
		}
	}
	for si, q := range queries {
		l, ok := p.loc[q.Source]
		if !ok {
			return nil, fmt.Errorf("algorithms: batch TDSP source vertex index %d not in the partitioned view", q.Source)
		}
		p.srcLocal[l.pid] = append(p.srcLocal[l.pid], srcSeed{si: si, lv: l.lv})
		for _, tgt := range q.Targets {
			tl, ok := p.loc[tgt]
			if !ok {
				return nil, fmt.Errorf("algorithms: batch TDSP target vertex index %d not in the partitioned view", tgt)
			}
			m := p.targetsOf[tl.pid]
			if m == nil {
				m = make(map[int32][]int32)
				p.targetsOf[tl.pid] = m
			}
			m[tl.lv] = append(m[tl.lv], int32(si))
		}
	}
	return p, nil
}

// edgeWeightFn builds the per-instance edge-weight closure shared by the
// TDSP variants: weightAttr travel times with optional existsAttr gating.
func edgeWeightFn(ctx *core.Context, sg *subgraph.Subgraph, weightAttr, existsAttr string) func(int) float64 {
	col := ctx.Instance().EdgeFloats(ctx.Template(), weightAttr)
	if col == nil {
		panic(fmt.Sprintf("algorithms: template lacks float edge attribute %q", weightAttr))
	}
	eg := sg.Part.EdgeGlobal
	exists := existsFn(ctx, existsAttr)
	return func(e int) float64 {
		if !exists(int(eg[e])) {
			return skipEdge
		}
		return col[eg[e]]
	}
}

// Compute implements core.Program: Alg 2 lines 1–25, once per batch member,
// over shared supersteps.
func (p *BatchTDSPProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	nv := pd.NumVertices()
	labels := p.labels[pd.PID]
	final := p.final[pd.PID]
	horizon := float64(timestep+1) * p.Delta
	rootsBySrc := make(map[int][]int32)

	// Snapshot which queries are still live. Retirement counts only change
	// under EndOfTimestep, so reading them at superstep 0 — after the
	// timestep barrier — is race-free and every partition agrees.
	act := p.active[pd.PID]
	if superstep == 0 {
		for si := range act {
			act[si] = p.remaining[si].Load() != 0
		}
	}

	switch {
	case superstep == 0 && timestep == p.Depart:
		// First timestep of the window: labels ← ∞, seed each source that
		// lives in this subgraph at the departure time.
		for si := 0; si < p.nsrc; si++ {
			base := si * nv
			for _, lv := range sg.Verts {
				labels[base+int(lv)] = Inf
				final[base+int(lv)] = false
			}
		}
		if seeds := p.srcLocal[pd.PID]; len(seeds) > 0 {
			in := make(map[int32]bool, len(sg.Verts))
			for _, lv := range sg.Verts {
				in[lv] = true
			}
			depart := float64(p.Depart) * p.Delta
			for _, s := range seeds {
				if in[s.lv] {
					labels[s.si*nv+int(s.lv)] = depart
					rootsBySrc[s.si] = append(rootsBySrc[s.si], s.lv)
				}
			}
		}
	case superstep == 0:
		// Rebuild each live source's state from its temporal message: the
		// finalized set re-seeds at timestep·δ via the idling edges.
		// Retired queries are skipped wholesale — no rebuild, no re-seed,
		// no expansion — which is what keeps a batch member's cost
		// proportional to its own resolution time, not the batch's.
		for si := 0; si < p.nsrc; si++ {
			if !act[si] {
				continue
			}
			base := si * nv
			for _, lv := range sg.Verts {
				labels[base+int(lv)] = Inf
				final[base+int(lv)] = false
			}
		}
		seed := float64(timestep) * p.Delta
		for _, m := range msgs {
			f := m.Payload.(BatchVertexSet)
			if !act[int(f.Source)] {
				continue
			}
			base := int(f.Source) * nv
			for _, lv := range f.Vertices {
				labels[base+int(lv)] = seed
				final[base+int(lv)] = true
				rootsBySrc[int(f.Source)] = append(rootsBySrc[int(f.Source)], lv)
			}
		}
	default:
		// Boundary updates from other subgraphs, per source.
		for _, m := range msgs {
			b := m.Payload.(BatchLabelBatch)
			if !act[int(b.Source)] {
				continue
			}
			base := int(b.Source) * nv
			for i, lv := range b.Vertices {
				idx := base + int(lv)
				if final[idx] {
					continue
				}
				if b.Labels[i] < labels[idx] {
					labels[idx] = b.Labels[i]
					rootsBySrc[int(b.Source)] = append(rootsBySrc[int(b.Source)], lv)
				}
			}
		}
	}

	if len(rootsBySrc) > 0 {
		weight := edgeWeightFn(ctx, sg, p.WeightAttr, p.ExistsAttr)
		sis := make([]int, 0, len(rootsBySrc))
		for si := range rootsBySrc {
			sis = append(sis, si)
		}
		sort.Ints(sis)
		for _, si := range sis {
			base := si * nv
			remote := modifiedSSSP(sg, labels[base:base+nv], final[base:base+nv], rootsBySrc[si], horizon, weight)
			sendTaggedBatches(ctx.SendTo, int32(si), remote)
		}
	}
	ctx.VoteToHalt()
}

// sendTaggedBatches is sendBatches with a source tag: one sorted
// BatchLabelBatch per destination subgraph, deterministic emission order.
func sendTaggedBatches(send func(dst subgraph.ID, payload any), si int32, remote map[remoteKey]remoteCand) {
	batches := batchRemote(remote)
	dsts := make([]subgraph.ID, 0, len(batches))
	for dst := range batches {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		b := batches[dst]
		order := make([]int, len(b.Vertices))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return b.Vertices[order[i]] < b.Vertices[order[j]] })
		sorted := BatchLabelBatch{
			Source:   si,
			Vertices: make([]int32, len(order)),
			Labels:   make([]float64, len(order)),
		}
		for i, o := range order {
			sorted.Vertices[i] = b.Vertices[o]
			sorted.Labels[i] = b.Labels[o]
		}
		send(dst, sorted)
	}
}

// EndOfTimestep implements Alg 2 lines 26–31 per batch member: finalize
// newly reached vertices, count resolved targets, and pass each source's
// finalized set along the temporal edge.
func (p *BatchTDSPProgram) EndOfTimestep(ctx *core.EndContext, sg *subgraph.Subgraph, timestep int) {
	pd := sg.Part
	nv := pd.NumVertices()
	labels := p.labels[pd.PID]
	final := p.final[pd.PID]
	arrival := p.finalArrival[pd.PID]
	at := p.finalAt[pd.PID]
	targets := p.targetsOf[pd.PID]

	var targetsDone int64
	allFinal := true
	act := p.active[pd.PID]
	for si := 0; si < p.nsrc; si++ {
		if !act[si] {
			continue // retired this timestep or earlier: state is frozen
		}
		base := si * nv
		for _, lv := range sg.Verts {
			idx := base + int(lv)
			if !final[idx] && labels[idx] != Inf {
				final[idx] = true
				arrival[idx] = labels[idx]
				at[idx] = int32(timestep)
				for _, tsi := range targets[lv] {
					if int(tsi) == si {
						targetsDone++
						p.remaining[si].Add(-1)
					}
				}
			}
		}
		var all []int32
		for _, lv := range sg.Verts {
			if final[base+int(lv)] {
				all = append(all, lv)
			}
		}
		if len(all) > 0 {
			ctx.SendToNextTimestep(BatchVertexSet{Source: int32(si), Vertices: all})
		}
		if len(all) != sg.NumVertices() {
			allFinal = false
		}
	}
	ctx.AddCounter(CounterTargetsDone, targetsDone)
	if allFinal {
		ctx.VoteToHaltTimestep()
	}
}

// Arrival returns query si's earliest arrival at a template vertex index
// that the batch named as a source or target, plus the timestep it
// finalized in. ok is false if the vertex was never reached within the
// processed window (or was not named by the batch).
func (p *BatchTDSPProgram) Arrival(si int, vertex int) (arrival float64, timestep int, ok bool) {
	l, found := p.loc[vertex]
	if !found || si < 0 || si >= p.nsrc {
		return Inf, -1, false
	}
	nv := len(p.final[l.pid]) / p.nsrc
	idx := si*nv + int(l.lv)
	if !p.final[l.pid][idx] {
		return Inf, -1, false
	}
	return p.finalArrival[l.pid][idx], int(p.finalAt[l.pid][idx]), true
}

// ArrivalsOf gathers query si's finalized arrivals into a template-indexed
// array (Inf when unreached), mirroring TDSPProgram.Arrivals. For a query
// with targets, the array reflects the timesteps processed before the query
// retired (all targets resolved); arrivals at the named targets themselves
// are always exact.
func (p *BatchTDSPProgram) ArrivalsOf(si int, parts []*subgraph.PartitionData, t *graph.Template) []float64 {
	out := make([]float64, t.NumVertices())
	for i := range out {
		out[i] = Inf
	}
	for _, pd := range parts {
		nv := pd.NumVertices()
		base := si * nv
		for lv, g := range pd.GlobalIdx {
			if p.final[pd.PID][base+lv] {
				out[g] = p.finalArrival[pd.PID][base+lv]
			}
		}
	}
	return out
}

// RunBatchTDSP sweeps the instance window [depart, end) once, resolving
// every query of the batch. When every query names targets, the run halts
// as soon as all of them are finalized (Master-style global termination on
// CounterTargetsDone); otherwise it runs the window out. The returned
// program answers Arrival lookups.
func RunBatchTDSP(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	queries []BatchQuery,
	depart int,
	source core.InstanceSource,
	delta float64,
	weightAttr string,
	cfg bsp.Config,
	rec *metrics.Recorder,
	tracer *obs.Tracer,
) (*BatchTDSPProgram, *core.Result, error) {
	prog, err := NewBatchTDSP(parts, queries, depart, delta, weightAttr)
	if err != nil {
		return nil, nil, err
	}
	wantTargets := int64(0)
	allHaveTargets := true
	for _, q := range queries {
		if len(q.Targets) == 0 {
			allHaveTargets = false
		}
		wantTargets += int64(len(q.Targets))
	}
	var halt func(int, *metrics.TimestepRecord) bool
	if allHaveTargets {
		var done int64
		halt = func(ts int, tr *metrics.TimestepRecord) bool {
			if tr == nil {
				return false
			}
			for i := range tr.Parts {
				done += tr.Parts[i].Counters[CounterTargetsDone]
			}
			return done >= wantTargets
		}
	}
	res, err := core.Run(&core.Job{
		Template:      t,
		Parts:         parts,
		Source:        source,
		Program:       prog,
		Pattern:       core.SequentiallyDependent,
		StartTimestep: depart,
		Config:        cfg,
		Recorder:      rec,
		Tracer:        tracer,
		HaltCondition: halt,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog, res, nil
}
