// Package algorithms implements the paper's three time-series graph
// algorithms on the TI-BSP abstraction — Time-Dependent Shortest Path
// (Alg 2), Meme Tracking (Alg 1) and Hashtag Aggregation (§III-A) — plus
// single-instance subgraph-centric SSSP/BFS and connected components used
// as baselines and building blocks.
package algorithms

import (
	"container/heap"
	"encoding/gob"
	"math"

	"tsgraph/internal/subgraph"
)

// skipEdge is the weight an edge-weight function returns for an edge that
// does not exist in the current instance (the paper's isExists attribute);
// traversals skip such edges entirely.
var skipEdge = math.Inf(1)

// Inf labels an unreached vertex.
var Inf = math.Inf(1)

// LabelBatch carries tentative labels for vertices of the destination
// subgraph's partition, identified by partition-local index. It is the
// boundary-update payload of SSSP-style traversals.
type LabelBatch struct {
	Vertices []int32
	Labels   []float64
}

// VertexSet carries partition-local vertex indices of the destination
// subgraph's partition (meme notifications, colored sets).
type VertexSet struct {
	Vertices []int32
}

// StepCount is one timestep's statistic from one subgraph (hashtag
// aggregation merge messages).
type StepCount struct {
	Timestep int32
	Count    int64
}

// CountVector is a per-timestep count array exchanged during Merge.
type CountVector struct {
	Counts []int64
}

// registerPayload makes a payload type transportable over the gob-framed
// TCP transport.
func registerPayload(v any) { gob.Register(v) }

func init() {
	registerPayload(LabelBatch{})
	registerPayload(VertexSet{})
	registerPayload(StepCount{})
	registerPayload(CountVector{})
	// Output records ride inside timestep-boundary checkpoints (gob-encoded
	// core.Output.Data), so result types register too.
	registerPayload(TDSPResult{})
	registerPayload(MemeResult{})
}

// maxPID returns 1 + the largest partition id in parts, so per-partition
// state arrays stay PID-indexed even when a host owns only a subset of the
// partitions (distributed runs).
func maxPID(parts []*subgraph.PartitionData) int {
	m := 0
	for _, pd := range parts {
		if pd.PID+1 > m {
			m = pd.PID + 1
		}
	}
	return m
}

// masterSubgraph picks the paper's aggregation target: the largest subgraph
// in the first partition (ties broken by lowest index), mimicking
// Master.Compute in vertex-centric frameworks.
func masterSubgraph(parts []*subgraph.PartitionData) subgraph.ID {
	best := subgraph.MakeID(0, 0)
	bestSize := -1
	if len(parts) == 0 {
		return best
	}
	for i, sg := range parts[0].Subgraphs {
		if sg.NumVertices() > bestSize {
			bestSize = sg.NumVertices()
			best = subgraph.MakeID(0, i)
		}
	}
	return best
}

// pqItem and pq implement the binary heap used by in-subgraph Dijkstra.
type pqItem struct {
	v int32 // partition-local vertex index
	d float64
}

type pq []pqItem

func (h pq) Len() int           { return len(h) }
func (h pq) Less(i, j int) bool { return h[i].d < h[j].d }
func (h pq) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *pq) Push(x any) { *h = append(*h, x.(pqItem)) }

// Pop implements heap.Interface.
func (h *pq) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// remoteKey identifies a remote target vertex by (partition, local index).
type remoteKey struct {
	part  int32
	local int32
}

// remoteCand is the best candidate label found for a remote vertex plus its
// subgraph, accumulated during one local Dijkstra.
type remoteCand struct {
	label float64
	sgIdx int32
}

// modifiedSSSP runs Dijkstra inside one subgraph from the given roots,
// settling only labels ≤ horizon (the paper's ModifiedSSSP). labels is the
// partition-local label array shared by the partition's subgraphs (each
// touches only its own vertices); final vertices are never relaxed.
// It returns the best candidate label per remote neighbor vertex.
//
// weight(e) returns the travel time of partition-local edge slot e.
func modifiedSSSP(
	sg *subgraph.Subgraph,
	labels []float64,
	final []bool,
	roots []int32,
	horizon float64,
	weight func(localEdge int) float64,
) map[remoteKey]remoteCand {
	pd := sg.Part
	h := make(pq, 0, len(roots))
	for _, r := range roots {
		h = append(h, pqItem{v: r, d: labels[r]})
	}
	heap.Init(&h)
	remote := make(map[remoteKey]remoteCand)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if it.d > labels[it.v] {
			continue // stale entry
		}
		lo, hi := pd.OutEdges(int(it.v))
		for e := lo; e < hi; e++ {
			w := weight(e)
			if math.IsInf(w, 1) {
				continue // edge absent in this instance (isExists=false)
			}
			nd := it.d + w
			if nd > horizon {
				continue
			}
			if isRemote, ri := pd.IsRemote(e); isRemote {
				re := &pd.Remote[ri]
				key := remoteKey{part: re.TargetPartition, local: re.TargetLocal}
				if cur, ok := remote[key]; !ok || nd < cur.label {
					remote[key] = remoteCand{label: nd, sgIdx: re.TargetSubgraph}
				}
				continue
			}
			tgt := pd.Targets[e]
			if final != nil && final[tgt] {
				continue // finalized TDSP values are immutable
			}
			if nd < labels[tgt] {
				labels[tgt] = nd
				heap.Push(&h, pqItem{v: tgt, d: nd})
			}
		}
	}
	return remote
}

// batchRemote converts the remote candidate map into one LabelBatch per
// destination subgraph.
func batchRemote(remote map[remoteKey]remoteCand) map[subgraph.ID]*LabelBatch {
	out := make(map[subgraph.ID]*LabelBatch)
	for key, cand := range remote {
		dst := subgraph.MakeID(int(key.part), int(cand.sgIdx))
		b := out[dst]
		if b == nil {
			b = &LabelBatch{}
			out[dst] = b
		}
		b.Vertices = append(b.Vertices, key.local)
		b.Labels = append(b.Labels, cand.label)
	}
	return out
}
