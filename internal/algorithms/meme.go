package algorithms

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// CounterColored is the per-partition metric meme tracking accumulates: the
// number of vertices colored (first seen carrying the meme) per timestep
// (the paper's Fig 7c).
const CounterColored = "colored"

// MemeResult records the first timestep at which a vertex carried the meme
// and was reachable from the spreading frontier — the PrintHorizon output of
// Alg 1.
type MemeResult struct {
	Vertex   graph.VertexID
	Timestep int
}

// MemeProgram implements Algorithm 1: temporal BFS of a meme µ over space
// and time. At timestep 0 the roots are all vertices whose tweets contain
// µ; MemeBFS colors contiguous runs of meme-carrying vertices, crossing to
// neighbor subgraphs over remote edges; the colored set C* accumulates
// across timesteps via the temporal edge and seeds the next instance.
type MemeProgram struct {
	// Meme is the hashtag µ to track.
	Meme string
	// TweetsAttr names the string-list vertex attribute holding tweets.
	TweetsAttr string

	// colored[p][lv] marks vertices in C* (accumulated) or C_t (this
	// timestep). Written only by the owning subgraph's Compute.
	colored [][]bool
	// coloredAt[p][lv] is the timestep the vertex was first colored.
	coloredAt [][]int32
}

// NewMeme builds a meme tracking program.
func NewMeme(parts []*subgraph.PartitionData, meme, tweetsAttr string) *MemeProgram {
	p := &MemeProgram{Meme: meme, TweetsAttr: tweetsAttr}
	n := maxPID(parts)
	p.colored = make([][]bool, n)
	p.coloredAt = make([][]int32, n)
	for _, pd := range parts {
		p.colored[pd.PID] = make([]bool, pd.NumVertices())
		p.coloredAt[pd.PID] = make([]int32, pd.NumVertices())
		for j := range p.coloredAt[pd.PID] {
			p.coloredAt[pd.PID][j] = -1
		}
	}
	return p
}

// IncrementalSafe marks MemeProgram for core.Job.Incremental scheduling.
// Both contract clauses of core.IncrementalProgram hold: (1) superstep-0
// reseeding is idempotent — reset-and-recolor from the temporal C* set
// rebuilds exactly the colored/coloredAt state a clean subgraph already
// holds, and the remote notifications it re-sends only re-offer vertices
// that were offered last timestep, which a clean receiver already resolved
// (colored, or not a carrier) — and (2) the only self-addressed temporal
// message is the subgraph's own C* set, re-derivable from its retained
// colored array (EndOfTimestep re-emits it every timestep from that array).
func (p *MemeProgram) IncrementalSafe() {}

// hasMeme reports whether vertex lv carries µ in the current instance.
func (p *MemeProgram) hasMeme(tweets [][]string, pd *subgraph.PartitionData, lv int32) bool {
	for _, tag := range tweets[pd.GlobalIdx[lv]] {
		if tag == p.Meme {
			return true
		}
	}
	return false
}

// Compute implements core.Program (Alg 1, lines 1–15).
func (p *MemeProgram) Compute(ctx *core.Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	pd := sg.Part
	colored := p.colored[pd.PID]
	tweets := ctx.Instance().VertexStringLists(ctx.Template(), p.TweetsAttr)
	if tweets == nil {
		panic(fmt.Sprintf("algorithms: template lacks string-list vertex attribute %q", p.TweetsAttr))
	}
	var roots []int32

	switch {
	case superstep == 0 && timestep == 0:
		// Line 4: roots are this instance's meme carriers.
		for _, lv := range sg.Verts {
			colored[lv] = false
		}
		for _, lv := range sg.Verts {
			if p.hasMeme(tweets, pd, lv) {
				roots = append(roots, lv)
			}
		}
	case superstep == 0:
		// Line 6: C* arrives over the temporal edge and seeds the BFS.
		for _, lv := range sg.Verts {
			colored[lv] = false
		}
		for _, m := range msgs {
			set := m.Payload.(VertexSet)
			for _, lv := range set.Vertices {
				colored[lv] = true
				roots = append(roots, lv)
			}
		}
	default:
		// Line 8: remote notifications; traverse only carriers.
		for _, m := range msgs {
			set := m.Payload.(VertexSet)
			for _, lv := range set.Vertices {
				if !colored[lv] && p.hasMeme(tweets, pd, lv) {
					roots = append(roots, lv)
				}
			}
		}
	}

	if len(roots) > 0 {
		remote := p.memeBFS(sg, tweets, roots, timestep)
		p.sendNotifications(ctx, remote)
	}
	ctx.VoteToHalt()
}

// memeBFS (Alg 1 line 10) colors contiguous meme-carrying vertices from the
// roots and returns the remote vertices touched from colored frontier
// vertices, grouped by destination subgraph.
func (p *MemeProgram) memeBFS(sg *subgraph.Subgraph, tweets [][]string, roots []int32, timestep int) map[subgraph.ID]map[int32]struct{} {
	pd := sg.Part
	colored := p.colored[pd.PID]
	coloredAt := p.coloredAt[pd.PID]
	remote := make(map[subgraph.ID]map[int32]struct{})
	queue := make([]int32, 0, len(roots))
	for _, r := range roots {
		// Roots from temporal seeding are pre-colored; fresh roots (meme
		// carriers) get colored now.
		if !colored[r] {
			colored[r] = true
			if coloredAt[r] < 0 {
				coloredAt[r] = int32(timestep)
			}
		}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo, hi := pd.OutEdges(int(u))
		for e := lo; e < hi; e++ {
			if isRemote, ri := pd.IsRemote(e); isRemote {
				re := &pd.Remote[ri]
				dst := subgraph.MakeID(int(re.TargetPartition), int(re.TargetSubgraph))
				if remote[dst] == nil {
					remote[dst] = make(map[int32]struct{})
				}
				remote[dst][re.TargetLocal] = struct{}{}
				continue
			}
			w := pd.Targets[e]
			if colored[w] || !p.hasMeme(tweets, pd, w) {
				continue
			}
			colored[w] = true
			if coloredAt[w] < 0 {
				coloredAt[w] = int32(timestep)
			}
			queue = append(queue, w)
		}
	}
	return remote
}

// sendNotifications emits one VertexSet per destination subgraph (Alg 1
// lines 11–13), deterministically ordered.
func (p *MemeProgram) sendNotifications(ctx *core.Context, remote map[subgraph.ID]map[int32]struct{}) {
	dsts := make([]subgraph.ID, 0, len(remote))
	for dst := range remote {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		set := remote[dst]
		verts := make([]int32, 0, len(set))
		for lv := range set {
			verts = append(verts, lv)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		ctx.SendTo(dst, VertexSet{Vertices: verts})
	}
}

// EndOfTimestep implements Alg 1 lines 16–21: print the newly colored
// horizon C_t, fold it into C*, and pass C* along the temporal edge.
func (p *MemeProgram) EndOfTimestep(ctx *core.EndContext, sg *subgraph.Subgraph, timestep int) {
	pd := sg.Part
	colored := p.colored[pd.PID]
	coloredAt := p.coloredAt[pd.PID]

	var newCount int64
	var all []int32
	for _, lv := range sg.Verts {
		if !colored[lv] {
			continue
		}
		all = append(all, lv)
		if coloredAt[lv] == int32(timestep) {
			newCount++
			ctx.Output(MemeResult{
				Vertex:   ctx.Template().VertexID(int(pd.GlobalIdx[lv])),
				Timestep: timestep,
			})
		}
	}
	ctx.AddCounter(CounterColored, newCount)
	if len(all) > 0 {
		ctx.SendToNextTimestep(VertexSet{Vertices: all})
	}
}

// memeCheckpoint is the gob payload of a meme-tracking checkpoint: C* and
// the first-colored timesteps, the only state that crosses timesteps.
type memeCheckpoint struct {
	Colored   [][]bool
	ColoredAt [][]int32
}

// CheckpointState implements core.Checkpointer.
func (p *MemeProgram) CheckpointState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(memeCheckpoint{Colored: p.colored, ColoredAt: p.coloredAt}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint implements core.Checkpointer.
func (p *MemeProgram) RestoreCheckpoint(data []byte) error {
	var st memeCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("algorithms: meme restore: %w", err)
	}
	if len(st.Colored) != len(p.colored) || len(st.ColoredAt) != len(p.coloredAt) {
		return fmt.Errorf("algorithms: meme restore: checkpoint has %d partitions, program has %d", len(st.Colored), len(p.colored))
	}
	p.colored, p.coloredAt = st.Colored, st.ColoredAt
	return nil
}

// ColoredAt gathers first-colored timesteps into a template-indexed array
// (-1 = never colored).
func (p *MemeProgram) ColoredAt(parts []*subgraph.PartitionData, t *graph.Template) []int32 {
	out := make([]int32, t.NumVertices())
	for i := range out {
		out[i] = -1
	}
	for _, pd := range parts {
		for lv, g := range pd.GlobalIdx {
			out[g] = p.coloredAt[pd.PID][lv]
		}
	}
	return out
}

// RunMeme tracks a meme over every instance of a source and returns the
// template-indexed first-colored timesteps plus the run result.
func RunMeme(
	t *graph.Template,
	parts []*subgraph.PartitionData,
	meme string,
	tweetsAttr string,
	source core.InstanceSource,
	cfg bsp.Config,
	rec *metrics.Recorder,
) ([]int32, *core.Result, error) {
	prog := NewMeme(parts, meme, tweetsAttr)
	res, err := core.Run(&core.Job{
		Template: t,
		Parts:    parts,
		Source:   source,
		Program:  prog,
		Pattern:  core.SequentiallyDependent,
		Config:   cfg,
		Recorder: rec,
	})
	if err != nil {
		return nil, nil, err
	}
	return prog.ColoredAt(parts, t), res, nil
}
