package algorithms

import (
	"math"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/metrics"
)

func TestBatchTDSPMatchesSingleSourceRuns(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, RemoveFrac: 0.1, Seed: 41})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 8, Delta: 60, Min: 1, Max: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 3)
	src := core.MemorySource{C: c}
	sources := []int{0, 17, 40, 63}
	queries := make([]BatchQuery, len(sources))
	for i, s := range sources {
		queries[i] = BatchQuery{Source: s} // no targets: run the window out
	}
	prog, _, err := RunBatchTDSP(g, parts, queries, 0, src, 60, gen.AttrLatency, bsp.Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range sources {
		want, _, err := RunTDSP(g, parts, s, src, 60, gen.AttrLatency, bsp.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := prog.ArrivalsOf(si, parts, g)
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("source %d vertex %d: batch arrival %v, single-source arrival %v", s, v, got[v], want[v])
			}
		}
	}
}

func TestBatchTDSPTargetHaltAndArrival(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 43})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 10, Delta: 60, Min: 1, Max: 50, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	src := core.MemorySource{C: c}
	queries := []BatchQuery{
		{Source: 0, Targets: []int{63, 63, 12}}, // duplicate target deduped
		{Source: 30, Targets: []int{5}},
	}
	rec := metrics.NewRecorder(len(parts))
	prog, res, err := RunBatchTDSP(g, parts, queries, 0, src, 60, gen.AttrLatency, bsp.Config{}, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := RunTDSP(g, parts, 0, src, 60, gen.AttrLatency, bsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []int{63, 12} {
		arr, at, ok := prog.Arrival(0, tgt)
		if !ok {
			t.Fatalf("target %d unresolved", tgt)
		}
		if arr != full[tgt] {
			t.Fatalf("target %d: batch arrival %v, offline %v", tgt, arr, full[tgt])
		}
		if at < 0 || at >= res.TimestepsRun {
			t.Fatalf("target %d finalized at timestep %d outside run (%d)", tgt, at, res.TimestepsRun)
		}
	}
	if !res.HaltedEarly && res.TimestepsRun == 10 {
		t.Log("run used the full window (graph converged late); halt condition untested")
	}
	// A vertex the batch never named is not resolvable.
	if _, _, ok := prog.Arrival(0, 33); ok {
		t.Error("unnamed vertex resolved")
	}
}

func TestBatchTDSPNonZeroDeparture(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 45})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 8, Delta: 60, Min: 1, Max: 50, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	src := core.MemorySource{C: c}
	const depart = 3
	prog, _, err := RunBatchTDSP(g, parts, []BatchQuery{{Source: 0}}, depart, src, 60, gen.AttrLatency, bsp.Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.ArrivalsOf(0, parts, g)
	// Reference: the same departure simulated by truncating the collection
	// to [depart, end) and shifting labels by depart·δ. Instead of
	// re-deriving that, check the invariants a later departure implies.
	if got[0] != float64(depart)*60 {
		t.Fatalf("source departs at %v, want %v", got[0], float64(depart)*60)
	}
	reached := 0
	for v := range got {
		if !math.IsInf(got[v], 1) {
			if got[v] < float64(depart)*60 {
				t.Fatalf("vertex %d arrival %v precedes departure", v, got[v])
			}
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("only %d vertices reached from a timestep-%d departure", reached, depart)
	}
}

func TestBatchTDSPValidation(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 47})
	parts := buildParts(t, g, 1)
	if _, err := NewBatchTDSP(parts, nil, 0, 60, gen.AttrLatency); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := NewBatchTDSP(parts, []BatchQuery{{Source: 1}, {Source: 1}}, 0, 60, gen.AttrLatency); err == nil {
		t.Error("duplicate sources accepted")
	}
	if _, err := NewBatchTDSP(parts, []BatchQuery{{Source: 0}}, -1, 60, gen.AttrLatency); err == nil {
		t.Error("negative departure accepted")
	}
	if _, err := NewBatchTDSP(parts, []BatchQuery{{Source: 99}}, 0, 60, gen.AttrLatency); err == nil {
		t.Error("out-of-range source accepted")
	}
}
