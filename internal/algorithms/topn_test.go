package algorithms

import (
	"sort"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
)

func TestTopNMatchesDirectRanking(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 13})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 6, Delta: 1, Min: 0, Max: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 15, 0, 100); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 3)
	const n = 5
	got, res, err := RunTopN(g, parts, gen.AttrLoad, n, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 6 || len(got) != 6 {
		t.Fatalf("timesteps: %d / %d", res.TimestepsRun, len(got))
	}
	for ts := 0; ts < 6; ts++ {
		loads := c.Instance(ts).VertexFloats(g, gen.AttrLoad)
		ranked := make([]VertexValue, g.NumVertices())
		for v := range loads {
			ranked[v] = VertexValue{Vertex: g.VertexID(v), Value: loads[v]}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Value != ranked[j].Value {
				return ranked[i].Value > ranked[j].Value
			}
			return ranked[i].Vertex < ranked[j].Vertex
		})
		if len(got[ts]) != n {
			t.Fatalf("timestep %d: top list has %d entries", ts, len(got[ts]))
		}
		for i := 0; i < n; i++ {
			if got[ts][i] != ranked[i] {
				t.Fatalf("timestep %d rank %d: got %+v, want %+v", ts, i, got[ts][i], ranked[i])
			}
		}
	}
}

func TestTopNTemporalParallelismEquivalent(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 16})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 8, Delta: 1, Min: 0, Max: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 18, 0, 50); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	seq, _, err := RunTopN(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunTopN(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, bsp.Config{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ts := range seq {
		for i := range seq[ts] {
			if seq[ts][i] != par[ts][i] {
				t.Fatalf("timestep %d rank %d differs under temporal parallelism", ts, i)
			}
		}
	}
}

func TestTopNValidation(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 19})
	c, _ := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 1, Delta: 1, Min: 0, Max: 1, Seed: 20})
	parts := buildParts(t, g, 1)
	if _, _, err := RunTopN(g, parts, gen.AttrLoad, 0, core.MemorySource{C: c}, bsp.Config{}, nil, 1); err == nil {
		t.Error("N=0 should error")
	}
}
