package algorithms

import (
	"sort"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
)

func TestTopNMatchesDirectRanking(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, Seed: 13})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 6, Delta: 1, Min: 0, Max: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 15, 0, 100); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 3)
	const n = 5
	got, res, err := RunTopN(g, parts, gen.AttrLoad, n, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 6 || len(got) != 6 {
		t.Fatalf("timesteps: %d / %d", res.TimestepsRun, len(got))
	}
	for ts := 0; ts < 6; ts++ {
		loads := c.Instance(ts).VertexFloats(g, gen.AttrLoad)
		ranked := make([]VertexValue, g.NumVertices())
		for v := range loads {
			ranked[v] = VertexValue{Vertex: g.VertexID(v), Value: loads[v]}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Value != ranked[j].Value {
				return ranked[i].Value > ranked[j].Value
			}
			return ranked[i].Vertex < ranked[j].Vertex
		})
		if len(got[ts]) != n {
			t.Fatalf("timestep %d: top list has %d entries", ts, len(got[ts]))
		}
		for i := 0; i < n; i++ {
			if got[ts][i] != ranked[i] {
				t.Fatalf("timestep %d rank %d: got %+v, want %+v", ts, i, got[ts][i], ranked[i])
			}
		}
	}
}

func TestTopNTemporalParallelismEquivalent(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 6, Cols: 6, Seed: 16})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 8, Delta: 1, Min: 0, Max: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 18, 0, 50); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	seq, _, err := RunTopN(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunTopN(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, bsp.Config{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ts := range seq {
		for i := range seq[ts] {
			if seq[ts][i] != par[ts][i] {
				t.Fatalf("timestep %d rank %d differs under temporal parallelism", ts, i)
			}
		}
	}
}

func TestTopNValidation(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 19})
	c, _ := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 1, Delta: 1, Min: 0, Max: 1, Seed: 20})
	parts := buildParts(t, g, 1)
	if _, _, err := RunTopN(g, parts, gen.AttrLoad, 0, core.MemorySource{C: c}, bsp.Config{}, nil, 1); err == nil {
		t.Error("N=0 should error")
	}
}

func TestTopNKExceedsVertexCount(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 21})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 2, Delta: 1, Min: 0, Max: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 23, 0, 10); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	// N far beyond the vertex count: every vertex appears, fully ranked.
	got, _, err := RunTopN(g, parts, gen.AttrLoad, 50, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ts := range got {
		if len(got[ts]) != g.NumVertices() {
			t.Fatalf("timestep %d: %d entries, want all %d vertices", ts, len(got[ts]), g.NumVertices())
		}
		for i := 1; i < len(got[ts]); i++ {
			prev, cur := got[ts][i-1], got[ts][i]
			if cur.Value > prev.Value || (cur.Value == prev.Value && cur.Vertex < prev.Vertex) {
				t.Fatalf("timestep %d: rank %d out of order (%+v before %+v)", ts, i, prev, cur)
			}
		}
	}
}

func TestTopNTiesAtCutLine(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 24})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 1, Delta: 1, Min: 0, Max: 1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 26, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Loads in tied groups of three: vertices 0-2 -> 0, 3-5 -> 1, 6-8 -> 2.
	loads := c.Instance(0).VertexFloats(g, gen.AttrLoad)
	for v := range loads {
		loads[v] = float64(v / 3)
	}
	parts := buildParts(t, g, 3)
	// The cut at N=4 lands inside the value-1 tie group; the winner among
	// equals must be the lowest vertex id, deterministically.
	got, _, err := RunTopN(g, parts, gen.AttrLoad, 4, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []VertexValue{
		{Vertex: g.VertexID(6), Value: 2}, {Vertex: g.VertexID(7), Value: 2},
		{Vertex: g.VertexID(8), Value: 2}, {Vertex: g.VertexID(3), Value: 1},
	}
	if len(got[0]) != len(want) {
		t.Fatalf("top list %v, want %v", got[0], want)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v (tie at the cut must break by vertex id)", i, got[0][i], want[i])
		}
	}
}

func TestTopNWindowed(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 4, Cols: 4, Seed: 27})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 6, Delta: 1, Min: 0, Max: 1, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RandomLoads(c, 29, 0, 100); err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 2)
	full, _, err := RunTopN(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, bsp.Config{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	win, _, err := RunTopNRange(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, 2, 3, bsp.Config{}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 3 {
		t.Fatalf("window produced %d timesteps, want 3", len(win))
	}
	for i := range win {
		for j := range win[i] {
			if win[i][j] != full[2+i][j] {
				t.Fatalf("window step %d rank %d: got %+v, want %+v", i, j, win[i][j], full[2+i][j])
			}
		}
	}
}

func TestTopNEmptyWindow(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 30})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 2, Delta: 1, Min: 0, Max: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	parts := buildParts(t, g, 1)
	// A window starting past the last instance is an error, not a hang or
	// an empty sweep.
	if _, _, err := RunTopNRange(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, 2, 1, bsp.Config{}, nil, 1); err == nil {
		t.Error("window starting past the source should error")
	}
	if _, _, err := RunTopNRange(g, parts, gen.AttrLoad, 3, core.MemorySource{C: c}, -1, 1, bsp.Config{}, nil, 1); err == nil {
		t.Error("negative window start should error")
	}
}
