package algorithms

import (
	"fmt"
	"testing"

	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// memeModes runs meme tracking over the same collection through a full-format
// store, a delta-encoded store, and a delta-encoded store with incremental
// scheduling, and requires identical results from all three. This is the
// determinism contract of core.Job.Incremental: skipping delta-clean
// subgraphs must be invisible in every deliverable (ColoredAt, Outputs).
func testMemeIncrementalIdentical(t *testing.T, seed int64, hitProb float64) {
	t.Helper()
	// Many partitions keep subgraphs small, so an SIR wave spreading from a
	// single seed leaves distant subgraphs delta-clean for many timesteps
	// (and every subgraph clean once the epidemic burns out).
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 16, Cols: 16, RemoveFrac: 0.1, Seed: seed})
	sir, err := gen.SIRTweets(g, gen.SIRConfig{
		Timesteps: 20, T0: 0, Delta: 60,
		Memes: []string{"#m"}, SeedsPerMeme: 1, HitProb: hitProb, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: seed + 2}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}

	fullDir, deltaDir := t.TempDir(), t.TempDir()
	if err := gofs.WriteDatasetOptions(fullDir, sir.Collection, a, gofs.Options{Pack: 5, Bin: 2}); err != nil {
		t.Fatal(err)
	}
	if err := gofs.WriteDatasetOptions(deltaDir, sir.Collection, a, gofs.Options{Pack: 5, Bin: 2, SnapshotEvery: 5}); err != nil {
		t.Fatal(err)
	}

	type mode struct {
		name        string
		dir         string
		incremental bool
	}
	modes := []mode{
		{"full-store", fullDir, false},
		{"delta-store", deltaDir, false},
		{"delta+incremental", deltaDir, true},
	}

	var wantColored []int32
	var wantOut map[string]struct{}
	for _, m := range modes {
		store, err := gofs.Open(m.dir)
		if err != nil {
			t.Fatal(err)
		}
		prog := NewMeme(parts, "#m", gen.AttrTweets)
		res, err := core.Run(&core.Job{
			Template:    g,
			Parts:       parts,
			Source:      gofs.NewLoader(store),
			Program:     prog,
			Pattern:     core.SequentiallyDependent,
			Incremental: m.incremental,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		colored := prog.ColoredAt(parts, g)
		out := make(map[string]struct{}, len(res.Outputs))
		for _, o := range res.Outputs {
			mr := o.Data.(MemeResult)
			out[fmt.Sprintf("%d/%v", mr.Timestep, mr.Vertex)] = struct{}{}
		}
		if wantColored == nil {
			wantColored, wantOut = colored, out
			continue
		}
		for v := range colored {
			if colored[v] != wantColored[v] {
				t.Fatalf("%s: vertex %d colored at %d, full run says %d", m.name, v, colored[v], wantColored[v])
			}
		}
		if len(out) != len(wantOut) {
			t.Fatalf("%s: %d outputs, full run has %d", m.name, len(out), len(wantOut))
		}
		for k := range out {
			if _, ok := wantOut[k]; !ok {
				t.Fatalf("%s: output %s missing from full run", m.name, k)
			}
		}
		if m.incremental && res.SubgraphsSkipped == 0 {
			t.Errorf("%s: skipped nothing on a localized-churn dataset", m.name)
		}
	}
}

func TestMemeIncrementalIdentical(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		hit  float64
	}{{31, 0.3}, {47, 0.5}, {63, 0.15}} {
		t.Run(fmt.Sprintf("seed%d", tc.seed), func(t *testing.T) {
			testMemeIncrementalIdentical(t, tc.seed, tc.hit)
		})
	}
}
