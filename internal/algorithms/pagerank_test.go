package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// refPageRank is the global power iteration with identical semantics
// (fixed iterations, dangling mass leaks).
func refPageRank(g *graph.Template, damping float64, iterations int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iterations; it++ {
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			lo, hi := g.OutEdges(u)
			if hi == lo {
				continue
			}
			share := rank[u] / float64(hi-lo)
			for e := lo; e < hi; e++ {
				next[g.Target(e)] += share
			}
		}
		for v := range rank {
			rank[v] = base + damping*next[v]
		}
	}
	return rank
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := gen.SmallWorld(gen.SmallWorldConfig{N: 500, M: 3, Seed: 21})
	parts := buildParts(t, g, 3)
	c := latencyFixture(t, g, 1, 1, 2)
	got, res, err := RunPageRank(g, parts, core.MemorySource{C: c}, 0.85, 20, bsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refPageRank(g, 0.85, 20)
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
	// Rank mass conserved (no dangling vertices on undirected graphs).
	sum := 0.0
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank mass = %v, want 1", sum)
	}
	if res.Supersteps < 20 {
		t.Errorf("supersteps = %d, want >= iterations", res.Supersteps)
	}
	// Hubs outrank leaves on a power-law graph.
	stats := graph.ComputeStats(g, 2)
	hub := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) == stats.MaxDegree {
			hub = v
			break
		}
	}
	leaf := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) <= 2 {
			leaf = v
			break
		}
	}
	if got[hub] <= got[leaf] {
		t.Errorf("hub rank %v not above leaf rank %v", got[hub], got[leaf])
	}
}

// TestPageRankRandomProperty cross-checks against the reference on random
// graphs, partition counts and iteration counts.
func TestPageRankRandomProperty(t *testing.T) {
	f := func(seed int64, kRaw, itRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		k := 1 + int(kRaw)%4
		if k > n {
			k = n
		}
		iters := 1 + int(itRaw)%10
		vs, es := gen.StandardSchemas()
		b := graph.NewBuilder("rand", vs, es)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < 3*n; e++ {
			b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: 1, Delta: 1, Min: 0, Max: 1, Seed: seed})
		if err != nil {
			return false
		}
		a := &partition.Assignment{K: k, Parts: make([]int32, n)}
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		parts, err := subgraph.Build(g, a)
		if err != nil {
			return false
		}
		got, _, err := RunPageRank(g, parts, core.MemorySource{C: c}, 0.85, iters, bsp.Config{})
		if err != nil {
			return false
		}
		want := refPageRank(g, 0.85, iters)
		for v := range got {
			if math.Abs(got[v]-want[v]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankValidation(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 3, Cols: 3, Seed: 1})
	parts := buildParts(t, g, 1)
	if _, err := NewPageRank(g, parts, 0, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, err := NewPageRank(g, parts, 1.5, 10); err == nil {
		t.Error("damping > 1 accepted")
	}
	if _, err := NewPageRank(g, parts, 0.85, 0); err == nil {
		t.Error("0 iterations accepted")
	}
}

// TestIsExistsEdgeAppears demonstrates the paper's isExists mechanism for
// slow topology change: a bridge edge exists only from timestep 2 on, so
// TDSP can reach the far side only by waiting for the bridge to appear.
func TestIsExistsEdgeAppears(t *testing.T) {
	vs, _ := gen.StandardSchemas()
	es := graph.MustSchema(
		[]string{gen.AttrLatency, "exists"},
		[]graph.AttrType{graph.TFloat, graph.TBool},
	)
	b := graph.NewBuilder("bridge", vs, es)
	// 0 -- 1 == bridge ==> 2 -- 3 (undirected chain; the 1-2 bridge opens
	// at timestep 2).
	b.AddUndirectedEdge(0, 1)
	bridge := b.AddUndirectedEdge(1, 2)
	b.AddUndirectedEdge(2, 3)
	g := b.MustBuild()

	const delta = 10
	c := graph.NewCollection(g, 0, delta)
	li := g.EdgeSchema().Index(gen.AttrLatency)
	xi := g.EdgeSchema().Index("exists")
	for ts := 0; ts < 5; ts++ {
		ins := graph.NewInstance(g, ts, c.TimeOf(ts))
		for e := 0; e < g.NumEdges(); e++ {
			ins.EdgeCols[li].Floats[e] = 2
			ins.EdgeCols[xi].Bools[e] = g.EdgeID(e) != bridge || ts >= 2
		}
		if err := c.Append(ins); err != nil {
			t.Fatal(err)
		}
	}
	a := &partition.Assignment{K: 2, Parts: []int32{0, 0, 1, 1}}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewTDSP(parts, g.VertexIndex(0), delta, gen.AttrLatency)
	prog.ExistsAttr = "exists"
	res, err := core.Run(&core.Job{
		Template: g, Parts: parts,
		Source:  core.MemorySource{C: c},
		Program: prog, Pattern: core.SequentiallyDependent,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	arr := prog.Arrivals(parts, g)
	if arr[g.VertexIndex(1)] != 2 {
		t.Errorf("vertex 1 arrival %v, want 2", arr[g.VertexIndex(1)])
	}
	// Vertex 2 is only reachable once the bridge opens at t=20: wait at 1,
	// cross for 2 → arrival 22.
	if arr[g.VertexIndex(2)] != 22 {
		t.Errorf("vertex 2 arrival %v, want 22 (bridge opens at 20)", arr[g.VertexIndex(2)])
	}
	if arr[g.VertexIndex(3)] != 24 {
		t.Errorf("vertex 3 arrival %v, want 24", arr[g.VertexIndex(3)])
	}

	// Without honoring isExists the greedy traversal would cross at t=2.
	naive := NewTDSP(parts, g.VertexIndex(0), delta, gen.AttrLatency)
	if _, err := core.Run(&core.Job{
		Template: g, Parts: parts,
		Source:  core.MemorySource{C: c},
		Program: naive, Pattern: core.SequentiallyDependent,
	}); err != nil {
		t.Fatal(err)
	}
	wrong := naive.Arrivals(parts, g)
	if wrong[g.VertexIndex(2)] != 4 {
		t.Errorf("ignoring isExists should cross immediately (got %v)", wrong[g.VertexIndex(2)])
	}
}

// TestIsExistsSSSP checks single-instance SSSP honors existence too.
func TestIsExistsSSSP(t *testing.T) {
	vs, _ := gen.StandardSchemas()
	es := graph.MustSchema(
		[]string{gen.AttrLatency, "exists"},
		[]graph.AttrType{graph.TFloat, graph.TBool},
	)
	b := graph.NewBuilder("cut", vs, es)
	b.AddUndirectedEdge(0, 1)
	dead := b.AddUndirectedEdge(1, 2)
	g := b.MustBuild()
	c := graph.NewCollection(g, 0, 1)
	ins := graph.NewInstance(g, 0, 0)
	li := g.EdgeSchema().Index(gen.AttrLatency)
	xi := g.EdgeSchema().Index("exists")
	for e := 0; e < g.NumEdges(); e++ {
		ins.EdgeCols[li].Floats[e] = 1
		ins.EdgeCols[xi].Bools[e] = g.EdgeID(e) != dead
	}
	if err := c.Append(ins); err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{K: 1, Parts: []int32{0, 0, 0}}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewSSSP(parts, g.VertexIndex(0), gen.AttrLatency)
	prog.ExistsAttr = "exists"
	if _, err := core.Run(&core.Job{
		Template: g, Parts: parts,
		Source:  core.MemorySource{C: c},
		Program: prog, Pattern: core.SequentiallyDependent, Timesteps: 1,
	}); err != nil {
		t.Fatal(err)
	}
	dist := prog.Distances(parts, g)
	if !math.IsInf(dist[g.VertexIndex(2)], 1) {
		t.Errorf("vertex 2 should be unreachable over a non-existent edge, got %v", dist[g.VertexIndex(2)])
	}
	if dist[g.VertexIndex(1)] != 1 {
		t.Errorf("vertex 1 dist %v, want 1", dist[g.VertexIndex(1)])
	}
}
