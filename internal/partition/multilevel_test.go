package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
)

// randWGraph builds a random symmetrized weighted graph for coarsening
// tests.
func randWGraph(seed int64, n int) *wgraph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder("w", nil, nil)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < 3*n; e++ {
		b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return symmetrize(b.MustBuild())
}

// totalEdgeWeight sums adjacency weights (each undirected edge counted from
// both endpoints).
func totalEdgeWeight(g *wgraph) int64 {
	var s int64
	for _, w := range g.adjwgt {
		s += w
	}
	return s
}

// TestContractConservesWeight: contraction preserves total vertex weight
// and never increases cross-edge weight (internal edges collapse, parallel
// coarse edges merge).
func TestContractConservesWeight(t *testing.T) {
	f := func(seed int64) bool {
		g := randWGraph(seed, 20+int(seed%37+37)%37)
		rng := rand.New(rand.NewSource(seed + 1))
		cmap, coarseN := heavyEdgeMatch(g, rng)
		coarse := contract(g, cmap, coarseN)
		if coarse.totalVWgt() != g.totalVWgt() {
			return false
		}
		if totalEdgeWeight(coarse) > totalEdgeWeight(g) {
			return false
		}
		// Coarse adjacency must be symmetric in weight: weight(u,v) ==
		// weight(v,u).
		w := func(u, v int32) int64 {
			for e := coarse.xadj[u]; e < coarse.xadj[u+1]; e++ {
				if coarse.adjncy[e] == v {
					return coarse.adjwgt[e]
				}
			}
			return 0
		}
		for u := 0; u < coarse.n(); u++ {
			for e := coarse.xadj[u]; e < coarse.xadj[u+1]; e++ {
				v := coarse.adjncy[e]
				if w(int32(u), v) != w(v, int32(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCutNeverWorseThanUnrefined: boundary refinement must not increase the
// edge cut it starts from (balance moves may trade cut for balance, so
// compare against a balanced starting point).
func TestRefineImprovesOrKeepsCut(t *testing.T) {
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 25, Cols: 25, RemoveFrac: 0.1, Seed: 3})
	w := symmetrize(g)
	const k = 4
	// Balanced striped start.
	parts := make([]int32, w.n())
	for v := range parts {
		parts[v] = int32(v * k / w.n())
	}
	cutOf := func(parts []int32) int64 {
		var cut int64
		for u := 0; u < w.n(); u++ {
			for e := w.xadj[u]; e < w.xadj[u+1]; e++ {
				if parts[w.adjncy[e]] != parts[u] {
					cut += w.adjwgt[e]
				}
			}
		}
		return cut
	}
	before := cutOf(parts)
	refineBoundary(w, parts, k, 1.03, 8)
	after := cutOf(parts)
	if after > before {
		t.Errorf("refinement worsened cut: %d -> %d", before, after)
	}
	// Balance respected.
	weights := make([]int64, k)
	for v := 0; v < w.n(); v++ {
		weights[parts[v]] += w.vwgt[v]
	}
	maxW := int64(float64(w.totalVWgt()) / k * 1.03)
	for p, wt := range weights {
		if wt > maxW+1 {
			t.Errorf("partition %d weight %d exceeds cap %d", p, wt, maxW)
		}
	}
}

// TestMatchingIsMatching: heavyEdgeMatch pairs each vertex at most once.
func TestMatchingIsMatching(t *testing.T) {
	f := func(seed int64) bool {
		g := randWGraph(seed, 30)
		rng := rand.New(rand.NewSource(seed))
		cmap, coarseN := heavyEdgeMatch(g, rng)
		members := make(map[int32][]int, coarseN)
		for v, c := range cmap {
			members[c] = append(members[c], v)
		}
		for c, vs := range members {
			if len(vs) < 1 || len(vs) > 2 {
				return false
			}
			// A merged pair must actually share an edge.
			if len(vs) == 2 {
				found := false
				for e := g.xadj[vs[0]]; e < g.xadj[vs[0]+1]; e++ {
					if int(g.adjncy[e]) == vs[1] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			_ = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGrowInitialCoversAll: the initial partitioning assigns every coarse
// vertex.
func TestGrowInitialCoversAll(t *testing.T) {
	g := randWGraph(9, 60)
	rng := rand.New(rand.NewSource(9))
	parts := growInitial(g, 5, 1.03, rng)
	for v, p := range parts {
		if p < 0 || int(p) >= 5 {
			t.Fatalf("vertex %d unassigned or out of range: %d", v, p)
		}
	}
}
