package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"tsgraph/internal/graph"
)

// Multilevel is a from-scratch multilevel k-way partitioner in the style of
// METIS: heavy-edge-matching coarsening, greedy region growing on the
// coarsest graph, and boundary Kernighan–Lin/FM refinement during
// uncoarsening. The balance constraint is a vertex-count load factor
// (default 1.03, as in the paper's METIS configuration).
type Multilevel struct {
	// Imbalance is the allowed load factor (>1). Zero means
	// DefaultImbalance.
	Imbalance float64
	// Seed drives matching and seed-selection randomness; a fixed seed makes
	// partitioning deterministic.
	Seed int64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (≥ 4k enforced). Zero means 40·k.
	CoarsenTo int
	// RefinePasses bounds boundary refinement sweeps per level. Zero
	// means 8.
	RefinePasses int
	// Debug prints per-level diagnostics.
	Debug bool
}

// Name implements Partitioner.
func (Multilevel) Name() string { return "multilevel" }

// wgraph is a weighted undirected graph used on the coarsening hierarchy.
// Adjacency is symmetric; self-loops are dropped during contraction.
type wgraph struct {
	xadj   []int64
	adjncy []int32
	adjwgt []int64
	vwgt   []int64
}

func (g *wgraph) n() int { return len(g.vwgt) }

func (g *wgraph) totalVWgt() int64 {
	var s int64
	for _, w := range g.vwgt {
		s += w
	}
	return s
}

// Partition implements Partitioner.
func (m Multilevel) Partition(t *graph.Template, k int) (*Assignment, error) {
	if err := checkArgs(t, k); err != nil {
		return nil, err
	}
	n := t.NumVertices()
	a := &Assignment{K: k, Parts: make([]int32, n)}
	if n == 0 {
		return a, nil
	}
	if k == 1 {
		return a, nil
	}

	imb := m.Imbalance
	if imb <= 1 {
		imb = DefaultImbalance
	}
	coarsenTo := m.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 40 * k
	}
	if coarsenTo < 4*k {
		coarsenTo = 4 * k
	}
	passes := m.RefinePasses
	if passes <= 0 {
		passes = 8
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Level 0: symmetrized weighted view of the template.
	g0 := symmetrize(t)

	// Coarsening phase: heavy-edge matching until small or stagnating.
	graphs := []*wgraph{g0}
	var maps [][]int32 // maps[i]: vertex of graphs[i] -> vertex of graphs[i+1]
	for graphs[len(graphs)-1].n() > coarsenTo {
		cur := graphs[len(graphs)-1]
		cmap, coarseN := heavyEdgeMatch(cur, rng)
		if coarseN >= cur.n()*9/10 {
			break // stagnating: matching no longer shrinks the graph
		}
		coarse := contract(cur, cmap, coarseN)
		graphs = append(graphs, coarse)
		maps = append(maps, cmap)
	}

	// Initial partitioning of the coarsest graph.
	coarsest := graphs[len(graphs)-1]
	parts := growInitial(coarsest, k, imb, rng)
	if m.Debug {
		fmt.Println("levels:", len(graphs), "coarsest n:", coarsest.n(), "init weights:", partWeights(coarsest, parts, k))
	}
	refineBoundary(coarsest, parts, k, imb, passes)
	if m.Debug {
		fmt.Println("after refine coarsest:", partWeights(coarsest, parts, k))
	}

	// Uncoarsening with refinement at every level.
	for lvl := len(graphs) - 2; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		fineParts := make([]int32, fine.n())
		cmap := maps[lvl]
		for v := range fineParts {
			fineParts[v] = parts[cmap[v]]
		}
		parts = fineParts
		refineBoundary(fine, parts, k, imb, passes)
		if m.Debug {
			fmt.Println("level", lvl, "n", fine.n(), "weights:", partWeights(fine, parts, k))
		}
	}

	copy(a.Parts, parts)
	return a, nil
}

// symmetrize builds the undirected weighted view of a template: every
// directed edge contributes weight 1 in both directions; parallel edges
// accumulate weight; self-loops are dropped.
func symmetrize(t *graph.Template) *wgraph {
	n := t.NumVertices()
	deg := make([]int64, n+1)
	for u := 0; u < n; u++ {
		lo, hi := t.OutEdges(u)
		for e := lo; e < hi; e++ {
			v := t.Target(e)
			if v == u {
				continue
			}
			deg[u+1]++
			deg[v+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]int32, deg[n])
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for u := 0; u < n; u++ {
		lo, hi := t.OutEdges(u)
		for e := lo; e < hi; e++ {
			v := t.Target(e)
			if v == u {
				continue
			}
			adj[cursor[u]] = int32(v)
			cursor[u]++
			adj[cursor[v]] = int32(u)
			cursor[v]++
		}
	}
	// Deduplicate parallel arcs, summing weights.
	g := &wgraph{
		xadj: make([]int64, n+1),
		vwgt: make([]int64, n),
	}
	for i := range g.vwgt {
		g.vwgt[i] = 1
	}
	adjncy := make([]int32, 0, len(adj))
	adjwgt := make([]int64, 0, len(adj))
	for u := 0; u < n; u++ {
		run := adj[deg[u]:deg[u+1]]
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		for i := 0; i < len(run); {
			j := i
			for j < len(run) && run[j] == run[i] {
				j++
			}
			adjncy = append(adjncy, run[i])
			adjwgt = append(adjwgt, int64(j-i))
			i = j
		}
		g.xadj[u+1] = int64(len(adjncy))
	}
	g.adjncy = adjncy
	g.adjwgt = adjwgt
	return g
}

// heavyEdgeMatch computes a matching preferring heavy edges and returns the
// fine→coarse vertex map plus the coarse vertex count. Unmatched vertices
// map to singleton coarse vertices.
func heavyEdgeMatch(g *wgraph, rng *rand.Rand) (cmap []int32, coarseN int) {
	n := g.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for e := g.xadj[u]; e < g.xadj[u+1]; e++ {
			v := g.adjncy[e]
			if match[v] >= 0 || int(v) == u {
				continue
			}
			if g.adjwgt[e] > bestW {
				bestW = g.adjwgt[e]
				best = v
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
		} else {
			match[u] = int32(u) // self-matched singleton
		}
	}
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for u := 0; u < n; u++ {
		if cmap[u] >= 0 {
			continue
		}
		cmap[u] = next
		if int(match[u]) != u {
			cmap[match[u]] = next
		}
		next++
	}
	return cmap, int(next)
}

// contract builds the coarse graph induced by a matching map.
func contract(g *wgraph, cmap []int32, coarseN int) *wgraph {
	coarse := &wgraph{
		xadj: make([]int64, coarseN+1),
		vwgt: make([]int64, coarseN),
	}
	for u := 0; u < g.n(); u++ {
		coarse.vwgt[cmap[u]] += g.vwgt[u]
	}
	// Aggregate adjacency per coarse vertex with a scatter buffer.
	pos := make(map[int32]int64) // reused per coarse vertex
	// Group fine vertices by coarse id.
	members := make([][]int32, coarseN)
	for u := 0; u < g.n(); u++ {
		members[cmap[u]] = append(members[cmap[u]], int32(u))
	}
	var adjncy []int32
	var adjwgt []int64
	for c := 0; c < coarseN; c++ {
		for key := range pos {
			delete(pos, key)
		}
		for _, u := range members[c] {
			for e := g.xadj[u]; e < g.xadj[u+1]; e++ {
				cv := cmap[g.adjncy[e]]
				if int(cv) == c {
					continue // internal edge collapses
				}
				if idx, ok := pos[cv]; ok {
					adjwgt[idx] += g.adjwgt[e]
				} else {
					pos[cv] = int64(len(adjncy))
					adjncy = append(adjncy, cv)
					adjwgt = append(adjwgt, g.adjwgt[e])
				}
			}
		}
		coarse.xadj[c+1] = int64(len(adjncy))
	}
	coarse.adjncy = adjncy
	coarse.adjwgt = adjwgt
	return coarse
}

// growInitial produces a k-way partition of the coarsest graph by greedy
// BFS region growing over vertex weight, then assigns leftovers to the
// lightest partition.
func growInitial(g *wgraph, k int, imb float64, rng *rand.Rand) []int32 {
	n := g.n()
	parts := make([]int32, n)
	for i := range parts {
		parts[i] = -1
	}
	total := g.totalVWgt()
	target := float64(total) / float64(k)
	weights := make([]int64, k)

	unassigned := n
	for p := 0; p < k; p++ {
		// Pick an unassigned seed (random probes, then linear scan).
		seed := -1
		for probe := 0; probe < 16; probe++ {
			c := rng.Intn(n)
			if parts[c] < 0 {
				seed = c
				break
			}
		}
		if seed < 0 {
			for v := 0; v < n; v++ {
				if parts[v] < 0 {
					seed = v
					break
				}
			}
		}
		if seed < 0 {
			break
		}
		// BFS-grow until target weight.
		queue := []int32{int32(seed)}
		for len(queue) > 0 && float64(weights[p]) < target {
			v := queue[0]
			queue = queue[1:]
			if parts[v] >= 0 {
				continue
			}
			parts[v] = int32(p)
			weights[p] += g.vwgt[v]
			unassigned--
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				w := g.adjncy[e]
				if parts[w] < 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	// Leftovers: attach to the lightest neighbor partition, else lightest
	// overall.
	for v := 0; v < n; v++ {
		if parts[v] >= 0 {
			continue
		}
		best := -1
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			p := parts[g.adjncy[e]]
			if p >= 0 && (best < 0 || weights[p] < weights[best]) {
				best = int(p)
			}
		}
		if best < 0 {
			best = 0
			for p := 1; p < k; p++ {
				if weights[p] < weights[best] {
					best = p
				}
			}
		}
		parts[v] = int32(best)
		weights[best] += g.vwgt[v]
	}
	return parts
}

// refineBoundary performs greedy boundary refinement: repeated sweeps over
// boundary vertices, moving each to the adjacent partition with the highest
// edge-weight gain, subject to the balance constraint. Each vertex moves at
// most once per sweep; sweeps stop when no move improves the cut.
func refineBoundary(g *wgraph, parts []int32, k int, imb float64, passes int) {
	n := g.n()
	total := g.totalVWgt()
	maxW := int64(float64(total) / float64(k) * imb)
	if maxW < 1 {
		maxW = 1
	}
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[parts[v]] += g.vwgt[v]
	}
	// conn[v*k+p] would be O(nk) memory; instead recompute per vertex.
	connBuf := make([]int64, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			home := parts[v]
			// Compute connectivity to each partition.
			for p := range connBuf {
				connBuf[p] = 0
			}
			boundary := false
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				p := parts[g.adjncy[e]]
				connBuf[p] += g.adjwgt[e]
				if p != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestP := home
			bestGain := int64(0)
			for p := 0; p < k; p++ {
				if int32(p) == home {
					continue
				}
				if weights[p]+g.vwgt[v] > maxW {
					continue
				}
				gain := connBuf[p] - connBuf[home]
				if gain > bestGain || (gain == bestGain && gain > 0 && weights[p] < weights[bestP]) {
					bestGain = gain
					bestP = int32(p)
				}
			}
			// An overweight home must shed vertices even at a cut loss.
			// The target only needs to be strictly lighter (not under
			// maxW): that lets mass flow in chains through saturated
			// partitions toward underweight ones, and since every such
			// move strictly decreases Σ weights², the process converges.
			if bestP == home && weights[home] > maxW {
				var lossGain int64
				first := true
				for p := 0; p < k; p++ {
					if int32(p) == home || connBuf[p] == 0 {
						continue
					}
					if weights[p]+g.vwgt[v] >= weights[home] {
						continue
					}
					gain := connBuf[p] - connBuf[home]
					if first || gain > lossGain || (gain == lossGain && weights[p] < weights[bestP]) {
						lossGain = gain
						bestP = int32(p)
						first = false
					}
				}
			}
			if bestP != home && (bestGain > 0 || weights[home] > maxW) {
				weights[home] -= g.vwgt[v]
				weights[bestP] += g.vwgt[v]
				parts[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

func partWeights(g *wgraph, parts []int32, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < g.n(); v++ {
		w[parts[v]] += g.vwgt[v]
	}
	return w
}
