package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
)

func roadT(tb testing.TB, rows, cols int) *graph.Template {
	tb.Helper()
	return gen.RoadNetwork(gen.RoadConfig{Rows: rows, Cols: cols, RemoveFrac: 0.1, Seed: 1})
}

func swT(tb testing.TB, n int) *graph.Template {
	tb.Helper()
	return gen.SmallWorld(gen.SmallWorldConfig{N: n, M: 2, Seed: 1})
}

func allPartitioners() []Partitioner {
	return []Partitioner{Hash{}, BFSGrow{}, Multilevel{Seed: 7}}
}

func TestPartitionersCoverAllVertices(t *testing.T) {
	g := roadT(t, 20, 20)
	for _, p := range allPartitioners() {
		t.Run(p.Name(), func(t *testing.T) {
			for _, k := range []int{1, 2, 3, 6, 9} {
				a, err := p.Partition(g, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if err := a.Validate(g); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				sizes := a.Sizes()
				nonEmpty := 0
				for _, s := range sizes {
					if s > 0 {
						nonEmpty++
					}
				}
				if nonEmpty == 0 {
					t.Fatalf("k=%d: all partitions empty", k)
				}
			}
		})
	}
}

func TestPartitionArgErrors(t *testing.T) {
	g := roadT(t, 3, 3)
	for _, p := range allPartitioners() {
		if _, err := p.Partition(g, 0); err == nil {
			t.Errorf("%s: k=0 should error", p.Name())
		}
		if _, err := p.Partition(g, g.NumVertices()+1); err == nil {
			t.Errorf("%s: k>n should error", p.Name())
		}
	}
}

func TestMultilevelBalance(t *testing.T) {
	g := roadT(t, 40, 40)
	for _, k := range []int{3, 6, 9} {
		a, err := Multilevel{Seed: 3}.Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := a.Imbalance(); imb > 1.10 {
			t.Errorf("k=%d: imbalance %.3f exceeds 1.10", k, imb)
		}
	}
}

func TestMultilevelBeatsHashOnRoad(t *testing.T) {
	g := roadT(t, 50, 50)
	ml, err := Multilevel{Seed: 1}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hash{}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	mlCut := ml.CutFraction(g)
	hCut := h.CutFraction(g)
	if mlCut >= hCut/4 {
		t.Errorf("multilevel cut %.4f not substantially better than hash cut %.4f", mlCut, hCut)
	}
	// Road networks partition extremely well: expect < 5% cut.
	if mlCut > 0.05 {
		t.Errorf("multilevel cut on road = %.4f, want < 0.05", mlCut)
	}
}

// TestEdgeCutContrast reproduces the paper's §IV-B observation: the road
// network cuts far less than the small world at every k, and the small
// world's cut grows with k.
func TestEdgeCutContrast(t *testing.T) {
	road := roadT(t, 45, 45)
	sw := swT(t, 2000)
	ml := Multilevel{Seed: 5}
	var roadCuts, swCuts []float64
	for _, k := range []int{3, 6, 9} {
		ra, err := ml.Partition(road, k)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := ml.Partition(sw, k)
		if err != nil {
			t.Fatal(err)
		}
		roadCuts = append(roadCuts, ra.CutFraction(road))
		swCuts = append(swCuts, sa.CutFraction(sw))
	}
	for i := range roadCuts {
		if roadCuts[i] >= swCuts[i] {
			t.Errorf("k=%d: road cut %.4f not below small-world cut %.4f", []int{3, 6, 9}[i], roadCuts[i], swCuts[i])
		}
	}
	if !(swCuts[0] < swCuts[2]) {
		t.Errorf("small-world cut should grow with k: %v", swCuts)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := roadT(t, 20, 25)
	a, _ := Multilevel{Seed: 42}.Partition(g, 4)
	b, _ := Multilevel{Seed: 42}.Partition(g, 4)
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("same seed produced different assignment at vertex %d", v)
		}
	}
}

func TestMultilevelK1(t *testing.T) {
	g := roadT(t, 5, 5)
	a, err := Multilevel{}.Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut, _ := a.EdgeCut(g); cut != 0 {
		t.Errorf("k=1 cut = %d, want 0", cut)
	}
	if a.Imbalance() != 1 {
		t.Errorf("k=1 imbalance = %v", a.Imbalance())
	}
}

func TestHashBalanced(t *testing.T) {
	g := swT(t, 1000)
	a, err := Hash{}.Partition(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	for _, s := range sizes {
		if s < 1000/7-1 || s > 1000/7+1 {
			t.Errorf("hash sizes unbalanced: %v", sizes)
		}
	}
}

func TestBFSGrowContiguousOnLine(t *testing.T) {
	b := graph.NewBuilder("line", nil, nil)
	const n = 30
	for i := 0; i+1 < n; i++ {
		b.AddUndirectedEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.MustBuild()
	a, err := BFSGrow{}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	// A line partitioned into contiguous runs has cut fraction ≈ (k-1)*2/m.
	cut, _ := a.EdgeCut(g)
	if cut > 8 {
		t.Errorf("BFS grow on line: cut %d directed edges, want small", cut)
	}
}

func TestBFSGrowDisconnected(t *testing.T) {
	b := graph.NewBuilder("islands", nil, nil)
	for i := 0; i < 12; i++ {
		b.AddVertex(graph.VertexID(i)) // no edges at all
	}
	g := b.MustBuild()
	a, err := BFSGrow{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionInvariants is a property test: for random graphs, every
// partitioner yields a valid assignment whose EdgeCut is symmetric-bounded
// and whose sizes sum to n.
func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		k := 1 + int(kRaw)%5
		if k > n {
			k = n
		}
		b := graph.NewBuilder("rand", nil, nil)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i))
		}
		for e := 0; e < n*2; e++ {
			b.AddUndirectedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		for _, p := range allPartitioners() {
			a, err := p.Partition(g, k)
			if err != nil {
				return false
			}
			if a.Validate(g) != nil {
				return false
			}
			sum := 0
			for _, s := range a.Sizes() {
				sum += s
			}
			if sum != n {
				return false
			}
			cut, total := a.EdgeCut(g)
			if cut < 0 || cut > total {
				return false
			}
			// Undirected template: each cut edge is counted once per
			// direction, so cut must be even.
			if cut%2 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraphPartition(t *testing.T) {
	g := graph.NewBuilder("empty", nil, nil).MustBuild()
	a, err := Multilevel{}.Partition(g, 3)
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if len(a.Parts) != 0 {
		t.Errorf("empty graph assignment has %d parts", len(a.Parts))
	}
	if a.CutFraction(g) != 0 {
		t.Error("empty graph cut fraction should be 0")
	}
}

func TestSymmetrizeDedup(t *testing.T) {
	b := graph.NewBuilder("multi", nil, nil)
	// Parallel edges 0->1 twice plus a self loop.
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	g := b.MustBuild()
	w := symmetrize(g)
	if w.n() != 2 {
		t.Fatalf("n = %d", w.n())
	}
	// Vertex 0 must have exactly one neighbor (1) with weight 2.
	if w.xadj[1]-w.xadj[0] != 1 {
		t.Fatalf("vertex 0 has %d distinct neighbors, want 1", w.xadj[1]-w.xadj[0])
	}
	if w.adjwgt[0] != 2 {
		t.Errorf("merged weight = %d, want 2", w.adjwgt[0])
	}
}

func TestHeavyEdgeMatchProducesValidMap(t *testing.T) {
	g := swT(t, 300)
	w := symmetrize(g)
	rng := rand.New(rand.NewSource(1))
	cmap, coarseN := heavyEdgeMatch(w, rng)
	if coarseN <= 0 || coarseN > w.n() {
		t.Fatalf("coarseN = %d", coarseN)
	}
	seen := make([]int, coarseN)
	for _, c := range cmap {
		if c < 0 || int(c) >= coarseN {
			t.Fatalf("cmap value %d out of range", c)
		}
		seen[c]++
	}
	for c, cnt := range seen {
		if cnt < 1 || cnt > 2 {
			t.Fatalf("coarse vertex %d has %d members, want 1 or 2", c, cnt)
		}
	}
	// Contraction preserves total vertex weight.
	coarse := contract(w, cmap, coarseN)
	if coarse.totalVWgt() != w.totalVWgt() {
		t.Errorf("contract changed total vertex weight: %d -> %d", w.totalVWgt(), coarse.totalVWgt())
	}
}
