// Package partition assigns the vertices of a graph template to k hosts.
// The paper partitions its datasets with METIS (k-way, load factor 1.03,
// minimum edge cut); this package provides a from-scratch multilevel k-way
// partitioner with the same objective, plus hash and BFS-growing baselines
// used for ablations.
package partition

import (
	"fmt"

	"tsgraph/internal/graph"
)

// DefaultImbalance is the allowed vertex-count load factor, matching the
// METIS configuration quoted in the paper (1.03).
const DefaultImbalance = 1.03

// Assignment maps every vertex of a template to a partition in [0, K).
type Assignment struct {
	K     int
	Parts []int32 // vertex internal index -> partition
}

// Validate checks that the assignment covers every vertex with an in-range
// partition.
func (a *Assignment) Validate(t *graph.Template) error {
	if a.K <= 0 {
		return fmt.Errorf("partition: K = %d", a.K)
	}
	if len(a.Parts) != t.NumVertices() {
		return fmt.Errorf("partition: assignment covers %d vertices, template has %d", len(a.Parts), t.NumVertices())
	}
	for v, p := range a.Parts {
		if p < 0 || int(p) >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to %d, want [0,%d)", v, p, a.K)
		}
	}
	return nil
}

// Sizes returns the vertex count of each partition.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.K)
	for _, p := range a.Parts {
		sizes[p]++
	}
	return sizes
}

// EdgeCut returns the number of directed edges whose endpoints lie in
// different partitions, and the total directed edge count.
func (a *Assignment) EdgeCut(t *graph.Template) (cut, total int) {
	n := t.NumVertices()
	for u := 0; u < n; u++ {
		lo, hi := t.OutEdges(u)
		for e := lo; e < hi; e++ {
			if a.Parts[u] != a.Parts[t.Target(e)] {
				cut++
			}
		}
	}
	return cut, t.NumEdges()
}

// CutFraction returns EdgeCut as a fraction of total edges (0 when the
// template has no edges).
func (a *Assignment) CutFraction(t *graph.Template) float64 {
	cut, total := a.EdgeCut(t)
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// Imbalance returns max partition size divided by the ideal size.
func (a *Assignment) Imbalance() float64 {
	sizes := a.Sizes()
	maxSz := 0
	totalSz := 0
	for _, s := range sizes {
		totalSz += s
		if s > maxSz {
			maxSz = s
		}
	}
	if totalSz == 0 {
		return 1
	}
	ideal := float64(totalSz) / float64(a.K)
	return float64(maxSz) / ideal
}

// Partitioner produces an Assignment of a template over k hosts.
type Partitioner interface {
	// Name identifies the strategy for reports and ablations.
	Name() string
	// Partition assigns every vertex of t to one of k partitions.
	Partition(t *graph.Template, k int) (*Assignment, error)
}

func checkArgs(t *graph.Template, k int) error {
	if k <= 0 {
		return fmt.Errorf("partition: k must be positive, got %d", k)
	}
	if t.NumVertices() == 0 && k > 0 {
		return nil
	}
	if k > t.NumVertices() {
		return fmt.Errorf("partition: k=%d exceeds vertex count %d", k, t.NumVertices())
	}
	return nil
}

// Hash is the trivial baseline: vertex internal index modulo k. It produces
// balanced partitions with terrible edge cut, and anchors the partitioner
// ablation.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(t *graph.Template, k int) (*Assignment, error) {
	if err := checkArgs(t, k); err != nil {
		return nil, err
	}
	a := &Assignment{K: k, Parts: make([]int32, t.NumVertices())}
	for v := range a.Parts {
		a.Parts[v] = int32(v % k)
	}
	return a, nil
}

// BFSGrow grows k contiguous regions breadth-first from spread-out seeds.
// Contiguity gives it a respectable cut on planar-ish graphs; it ignores
// edge weights and does no refinement.
type BFSGrow struct{}

// Name implements Partitioner.
func (BFSGrow) Name() string { return "bfs" }

// Partition implements Partitioner.
func (BFSGrow) Partition(t *graph.Template, k int) (*Assignment, error) {
	if err := checkArgs(t, k); err != nil {
		return nil, err
	}
	n := t.NumVertices()
	a := &Assignment{K: k, Parts: make([]int32, n)}
	for v := range a.Parts {
		a.Parts[v] = -1
	}
	if n == 0 {
		return a, nil
	}
	target := (n + k - 1) / k
	// Seeds spread across the index space.
	queues := make([][]int32, k)
	sizes := make([]int, k)
	for p := 0; p < k; p++ {
		seed := int32(p * n / k)
		queues[p] = append(queues[p], seed)
	}
	assigned := 0
	// Round-robin BFS growth: each partition claims one frontier vertex per
	// turn until it reaches its target size.
	for assigned < n {
		progress := false
		for p := 0; p < k && assigned < n; p++ {
			if sizes[p] >= target {
				continue
			}
			for len(queues[p]) > 0 {
				v := queues[p][0]
				queues[p] = queues[p][1:]
				if a.Parts[v] >= 0 {
					continue
				}
				a.Parts[v] = int32(p)
				sizes[p]++
				assigned++
				progress = true
				lo, hi := t.OutEdges(int(v))
				for e := lo; e < hi; e++ {
					w := t.Target(e)
					if a.Parts[w] < 0 {
						queues[p] = append(queues[p], int32(w))
					}
				}
				break
			}
		}
		if !progress {
			// All frontiers exhausted (disconnected graph or all at target);
			// sweep remaining vertices into the smallest partitions.
			for v := 0; v < n; v++ {
				if a.Parts[v] >= 0 {
					continue
				}
				best := 0
				for p := 1; p < k; p++ {
					if sizes[p] < sizes[best] {
						best = p
					}
				}
				a.Parts[v] = int32(best)
				sizes[best]++
				assigned++
				// Seed the partition's queue so its neighbors follow it.
				queues[best] = append(queues[best], int32(v))
				break
			}
		}
	}
	return a, nil
}
