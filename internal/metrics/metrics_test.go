package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(3)
	if r.K() != 3 {
		t.Fatalf("K = %d", r.K())
	}
	rec := r.BeginTimestep(0)
	rec.Supersteps = 4
	rec.Wall = 100 * time.Millisecond
	rec.SimWall = 40 * time.Millisecond
	rec.Load = 10 * time.Millisecond
	rec.Parts[0].Compute = 20 * time.Millisecond
	rec.Parts[0].Flush = 5 * time.Millisecond
	rec.Parts[0].Barrier = 15 * time.Millisecond
	rec.Parts[1].AddCounter("finalized", 7)
	rec.Parts[0].MsgsSent = 12

	rec2 := r.BeginTimestep(1)
	rec2.Supersteps = 2
	rec2.Wall = 50 * time.Millisecond
	rec2.SimWall = 20 * time.Millisecond
	rec2.Parts[1].AddCounter("finalized", 3)
	rec2.Parts[2].AddCounter("colored", 1)

	if r.NumTimesteps() != 2 {
		t.Fatalf("NumTimesteps = %d", r.NumTimesteps())
	}
	if r.TotalWall() != 150*time.Millisecond {
		t.Errorf("TotalWall = %v", r.TotalWall())
	}
	if r.TotalSimWall() != 60*time.Millisecond {
		t.Errorf("TotalSimWall = %v", r.TotalSimWall())
	}
	if r.TotalSupersteps() != 6 {
		t.Errorf("TotalSupersteps = %d", r.TotalSupersteps())
	}
	if r.TotalMessages() != 12 {
		t.Errorf("TotalMessages = %d", r.TotalMessages())
	}
	if r.CounterTotal("finalized") != 10 {
		t.Errorf("CounterTotal = %d", r.CounterTotal("finalized"))
	}
	series := r.CounterSeries(1, "finalized")
	if len(series) != 2 || series[0] != 7 || series[1] != 3 {
		t.Errorf("CounterSeries = %v", series)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "colored" || names[1] != "finalized" {
		t.Errorf("CounterNames = %v", names)
	}
	walls := r.WallSeries()
	if walls[0] != 100*time.Millisecond || walls[1] != 50*time.Millisecond {
		t.Errorf("WallSeries = %v", walls)
	}
	sims := r.SimWallSeries()
	if sims[0] != 40*time.Millisecond {
		t.Errorf("SimWallSeries = %v", sims)
	}
}

func TestStepReturnsCopy(t *testing.T) {
	r := NewRecorder(2)
	rec := r.BeginTimestep(0)
	rec.Parts[0].Compute = time.Second
	cp := r.Step(0)
	cp.Parts[0].Compute = 5 * time.Second
	if r.Step(0).Parts[0].Compute != time.Second {
		t.Error("Step returned shared storage")
	}
}

func TestUtilizationFractions(t *testing.T) {
	u := Utilization{Compute: 60, Flush: 20, Barrier: 20}
	if u.Total() != 100 {
		t.Fatalf("Total = %v", u.Total())
	}
	if u.ComputeFrac() != 0.6 || u.FlushFrac() != 0.2 || u.BarrierFrac() != 0.2 {
		t.Errorf("fractions: %v %v %v", u.ComputeFrac(), u.FlushFrac(), u.BarrierFrac())
	}
	var zero Utilization
	if zero.ComputeFrac() != 0 || zero.FlushFrac() != 0 || zero.BarrierFrac() != 0 {
		t.Error("zero utilization should have zero fractions")
	}
}

func TestUtilizationsAggregate(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		rec := r.BeginTimestep(i)
		rec.Parts[0].Compute = 10 * time.Millisecond
		rec.Parts[1].Barrier = 10 * time.Millisecond
	}
	utils := r.Utilizations()
	if utils[0].Compute != 30*time.Millisecond {
		t.Errorf("partition 0 compute = %v", utils[0].Compute)
	}
	if utils[1].Barrier != 30*time.Millisecond {
		t.Errorf("partition 1 barrier = %v", utils[1].Barrier)
	}
	if utils[0].Partition != 0 || utils[1].Partition != 1 {
		t.Error("partition ids wrong")
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(1)
	rec := r.BeginTimestep(0)
	rec.Supersteps = 3
	s := r.Summary()
	if !strings.Contains(s, "timesteps=1") || !strings.Contains(s, "supersteps=3") {
		t.Errorf("Summary = %q", s)
	}
}

func TestCounterOnNilMap(t *testing.T) {
	var ps PartitionStep
	if ps.counter("x") != 0 {
		t.Error("counter on empty step should be 0")
	}
	ps.AddCounter("x", 5)
	ps.AddCounter("x", 2)
	if ps.counter("x") != 7 {
		t.Errorf("counter = %d", ps.counter("x"))
	}
}
