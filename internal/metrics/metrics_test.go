package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(3)
	if r.K() != 3 {
		t.Fatalf("K = %d", r.K())
	}
	rec := r.BeginTimestep(0)
	rec.Supersteps = 4
	rec.Wall = 100 * time.Millisecond
	rec.SimWall = 40 * time.Millisecond
	rec.Load = 10 * time.Millisecond
	rec.Parts[0].Compute = 20 * time.Millisecond
	rec.Parts[0].Flush = 5 * time.Millisecond
	rec.Parts[0].Barrier = 15 * time.Millisecond
	rec.Parts[1].AddCounter("finalized", 7)
	rec.Parts[0].MsgsSent = 12

	rec2 := r.BeginTimestep(1)
	rec2.Supersteps = 2
	rec2.Wall = 50 * time.Millisecond
	rec2.SimWall = 20 * time.Millisecond
	rec2.Parts[1].AddCounter("finalized", 3)
	rec2.Parts[2].AddCounter("colored", 1)

	if r.NumTimesteps() != 2 {
		t.Fatalf("NumTimesteps = %d", r.NumTimesteps())
	}
	if r.TotalWall() != 150*time.Millisecond {
		t.Errorf("TotalWall = %v", r.TotalWall())
	}
	if r.TotalSimWall() != 60*time.Millisecond {
		t.Errorf("TotalSimWall = %v", r.TotalSimWall())
	}
	if r.TotalSupersteps() != 6 {
		t.Errorf("TotalSupersteps = %d", r.TotalSupersteps())
	}
	if r.TotalMessages() != 12 {
		t.Errorf("TotalMessages = %d", r.TotalMessages())
	}
	if r.CounterTotal("finalized") != 10 {
		t.Errorf("CounterTotal = %d", r.CounterTotal("finalized"))
	}
	series := r.CounterSeries(1, "finalized")
	if len(series) != 2 || series[0] != 7 || series[1] != 3 {
		t.Errorf("CounterSeries = %v", series)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "colored" || names[1] != "finalized" {
		t.Errorf("CounterNames = %v", names)
	}
	walls := r.WallSeries()
	if walls[0] != 100*time.Millisecond || walls[1] != 50*time.Millisecond {
		t.Errorf("WallSeries = %v", walls)
	}
	sims := r.SimWallSeries()
	if sims[0] != 40*time.Millisecond {
		t.Errorf("SimWallSeries = %v", sims)
	}
}

func TestStepReturnsCopy(t *testing.T) {
	r := NewRecorder(2)
	rec := r.BeginTimestep(0)
	rec.Parts[0].Compute = time.Second
	cp := r.Step(0)
	cp.Parts[0].Compute = 5 * time.Second
	if r.Step(0).Parts[0].Compute != time.Second {
		t.Error("Step returned shared storage")
	}
}

func TestUtilizationFractions(t *testing.T) {
	u := Utilization{Compute: 60, Flush: 20, Barrier: 20}
	if u.Total() != 100 {
		t.Fatalf("Total = %v", u.Total())
	}
	if u.ComputeFrac() != 0.6 || u.FlushFrac() != 0.2 || u.BarrierFrac() != 0.2 {
		t.Errorf("fractions: %v %v %v", u.ComputeFrac(), u.FlushFrac(), u.BarrierFrac())
	}
	var zero Utilization
	if zero.ComputeFrac() != 0 || zero.FlushFrac() != 0 || zero.BarrierFrac() != 0 {
		t.Error("zero utilization should have zero fractions")
	}
}

func TestUtilizationsAggregate(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		rec := r.BeginTimestep(i)
		rec.Parts[0].Compute = 10 * time.Millisecond
		rec.Parts[1].Barrier = 10 * time.Millisecond
	}
	utils := r.Utilizations()
	if utils[0].Compute != 30*time.Millisecond {
		t.Errorf("partition 0 compute = %v", utils[0].Compute)
	}
	if utils[1].Barrier != 30*time.Millisecond {
		t.Errorf("partition 1 barrier = %v", utils[1].Barrier)
	}
	if utils[0].Partition != 0 || utils[1].Partition != 1 {
		t.Error("partition ids wrong")
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(1)
	rec := r.BeginTimestep(0)
	rec.Supersteps = 3
	s := r.Summary()
	if !strings.Contains(s, "timesteps=1") || !strings.Contains(s, "supersteps=3") {
		t.Errorf("Summary = %q", s)
	}
}

func TestSparseOutOfOrderTimesteps(t *testing.T) {
	r := NewRecorder(2)
	// Begin out of order with a gap: 5, then 2; 0,1,3,4 never run.
	rec5 := r.BeginTimestep(5)
	rec5.Supersteps = 3
	rec5.Wall = 30 * time.Millisecond
	rec5.SimWall = 10 * time.Millisecond
	rec5.Parts[1].AddCounter("done", 4)
	rec2 := r.BeginTimestep(2)
	rec2.Supersteps = 1
	rec2.Wall = 10 * time.Millisecond
	rec2.Parts[0].MsgsSent = 3

	if got := r.NumTimesteps(); got != 6 {
		t.Fatalf("NumTimesteps = %d, want 6 (highest begun + 1)", got)
	}
	if got := r.RecordedTimesteps(); got != 2 {
		t.Fatalf("RecordedTimesteps = %d, want 2", got)
	}
	// Gaps read as empty records, not panics.
	for _, i := range []int{0, 1, 3, 4, 7, -1} {
		st := r.Step(i)
		if st.Supersteps != 0 || st.Wall != 0 {
			t.Errorf("Step(%d) not empty: %+v", i, st)
		}
		if len(st.Parts) != 2 {
			t.Errorf("Step(%d) has %d parts, want 2", i, len(st.Parts))
		}
	}
	if st := r.Step(5); st.Supersteps != 3 {
		t.Errorf("Step(5).Supersteps = %d", st.Supersteps)
	}
	// Aggregations skip gaps.
	if got := r.TotalSupersteps(); got != 4 {
		t.Errorf("TotalSupersteps = %d", got)
	}
	if got := r.TotalWall(); got != 40*time.Millisecond {
		t.Errorf("TotalWall = %v", got)
	}
	if got := r.TotalSimWall(); got != 10*time.Millisecond {
		t.Errorf("TotalSimWall = %v", got)
	}
	if got := r.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d", got)
	}
	// Series span the full range with zeros at gaps.
	walls := r.WallSeries()
	if len(walls) != 6 || walls[2] != 10*time.Millisecond || walls[5] != 30*time.Millisecond || walls[0] != 0 {
		t.Errorf("WallSeries = %v", walls)
	}
	series := r.CounterSeries(1, "done")
	if len(series) != 6 || series[5] != 4 || series[0] != 0 {
		t.Errorf("CounterSeries = %v", series)
	}
	// Re-beginning returns the same record.
	if again := r.BeginTimestep(5); again != rec5 {
		t.Error("BeginTimestep(5) did not return the existing record")
	}
}

func TestBeginTimestepNegativeDetached(t *testing.T) {
	r := NewRecorder(2)
	rec := r.BeginTimestep(-1)
	rec.Supersteps = 9
	rec.Parts[1].Compute = time.Second
	if r.NumTimesteps() != 0 {
		t.Errorf("negative timestep leaked into the index: %d", r.NumTimesteps())
	}
	if r.TotalSupersteps() != 0 {
		t.Errorf("detached record aggregated: %d", r.TotalSupersteps())
	}
}

func TestZeroTimestepRecorder(t *testing.T) {
	r := NewRecorder(3)
	if r.NumTimesteps() != 0 || r.RecordedTimesteps() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	if r.TotalWall() != 0 || r.TotalSimWall() != 0 || r.TotalSupersteps() != 0 ||
		r.TotalMessages() != 0 || r.TotalMsgsDropped() != 0 || r.TotalLoad() != 0 ||
		r.TotalLoadFetch() != 0 || r.TotalLoadOverlap() != 0 || r.PrefetchedTimesteps() != 0 {
		t.Error("zero-timestep totals not all zero")
	}
	if got := r.ComputeSkew(); got != 0 {
		t.Errorf("ComputeSkew = %v on empty recorder", got)
	}
	utils := r.Utilizations()
	if len(utils) != 3 {
		t.Fatalf("Utilizations len = %d", len(utils))
	}
	for _, u := range utils {
		if u.Total() != 0 {
			t.Errorf("partition %d not empty: %+v", u.Partition, u)
		}
	}
	sent, recv := r.PartMessages()
	if len(sent) != 3 || len(recv) != 3 {
		t.Errorf("PartMessages lengths: %d %d", len(sent), len(recv))
	}
	if len(r.WallSeries()) != 0 || len(r.CounterSeries(0, "x")) != 0 || len(r.CounterNames()) != 0 {
		t.Error("zero-timestep series not empty")
	}
	if s := r.Summary(); !strings.Contains(s, "timesteps=0") {
		t.Errorf("Summary = %q", s)
	}
}

func TestSinglePartitionAggregations(t *testing.T) {
	r := NewRecorder(1)
	rec := r.BeginTimestep(0)
	rec.Parts[0].Compute = 40 * time.Millisecond
	rec.Parts[0].Flush = 10 * time.Millisecond
	rec.Parts[0].Barrier = 50 * time.Millisecond
	rec.Parts[0].MsgsSent = 6
	rec.Parts[0].MsgsRecv = 6
	rec.SimWall = 100 * time.Millisecond
	utils := r.Utilizations()
	if len(utils) != 1 || utils[0].Compute != 40*time.Millisecond {
		t.Fatalf("Utilizations = %+v", utils)
	}
	if utils[0].ComputeFrac() != 0.4 || utils[0].BarrierFrac() != 0.5 {
		t.Errorf("fractions: %v %v", utils[0].ComputeFrac(), utils[0].BarrierFrac())
	}
	sent, recv := r.PartMessages()
	if sent[0] != 6 || recv[0] != 6 {
		t.Errorf("PartMessages = %v %v", sent, recv)
	}
	// Single partition: max == median, perfectly balanced by definition.
	if got := r.ComputeSkew(); got != 1.0 {
		t.Errorf("ComputeSkew = %v, want 1.0", got)
	}
	if got := r.TotalSimWall(); got != 100*time.Millisecond {
		t.Errorf("TotalSimWall = %v", got)
	}
}

func TestCounterSeriesOutOfRangePartition(t *testing.T) {
	r := NewRecorder(2)
	r.BeginTimestep(0).Parts[1].AddCounter("x", 2)
	if s := r.CounterSeries(-1, "x"); len(s) != 1 || s[0] != 0 {
		t.Errorf("CounterSeries(-1) = %v", s)
	}
	if s := r.CounterSeries(9, "x"); len(s) != 1 || s[0] != 0 {
		t.Errorf("CounterSeries(9) = %v", s)
	}
}

func TestLoadAndPrefetchTotals(t *testing.T) {
	r := NewRecorder(1)
	a := r.BeginTimestep(0)
	a.Load = 8 * time.Millisecond
	a.LoadFetch = 8 * time.Millisecond
	b := r.BeginTimestep(1)
	b.Load = 1 * time.Millisecond
	b.LoadFetch = 9 * time.Millisecond
	b.LoadOverlapped = 8 * time.Millisecond
	b.Prefetched = true
	if got := r.TotalLoad(); got != 9*time.Millisecond {
		t.Errorf("TotalLoad = %v", got)
	}
	if got := r.TotalLoadFetch(); got != 17*time.Millisecond {
		t.Errorf("TotalLoadFetch = %v", got)
	}
	if got := r.TotalLoadOverlap(); got != 8*time.Millisecond {
		t.Errorf("TotalLoadOverlap = %v", got)
	}
	if got := r.PrefetchedTimesteps(); got != 1 {
		t.Errorf("PrefetchedTimesteps = %d", got)
	}
	overlaps := r.LoadOverlapSeries()
	if len(overlaps) != 2 || overlaps[1] != 8*time.Millisecond {
		t.Errorf("LoadOverlapSeries = %v", overlaps)
	}
}

func TestComputeSkew(t *testing.T) {
	r := NewRecorder(3)
	rec := r.BeginTimestep(0)
	rec.Parts[0].Compute = 10 * time.Millisecond
	rec.Parts[1].Compute = 20 * time.Millisecond // median
	rec.Parts[2].Compute = 60 * time.Millisecond // straggler
	if got := r.ComputeSkew(); got != 3.0 {
		t.Errorf("ComputeSkew = %v, want 3.0", got)
	}
	if s := r.Summary(); !strings.Contains(s, "skew=3.00") {
		t.Errorf("Summary missing skew: %q", s)
	}

	// Degenerate: median partition idle but one partition computed.
	r2 := NewRecorder(3)
	r2.BeginTimestep(0).Parts[2].Compute = time.Millisecond
	if got := r2.ComputeSkew(); got != 3.0 {
		t.Errorf("degenerate ComputeSkew = %v, want k=3", got)
	}
}

func TestCounterOnNilMap(t *testing.T) {
	var ps PartitionStep
	if ps.counter("x") != 0 {
		t.Error("counter on empty step should be 0")
	}
	ps.AddCounter("x", 5)
	ps.AddCounter("x", 2)
	if ps.counter("x") != 7 {
		t.Errorf("counter = %d", ps.counter("x"))
	}
}
