// Package metrics records the timing decomposition and algorithm-progress
// counters the paper analyzes in §IV-D/E: per-partition compute time,
// partition overhead (message flushing after compute), sync overhead
// (barrier wait), and per-timestep application counters such as the number
// of vertices finalized or colored.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PartitionStep is one partition's accounting for one BSP timestep.
type PartitionStep struct {
	// Compute is the time spent inside user Compute calls (summed across
	// the partition's subgraphs and supersteps; concurrent subgraph
	// executions all contribute).
	Compute time.Duration
	// Flush is the partition overhead: time spent routing and delivering
	// outgoing messages after compute completes.
	Flush time.Duration
	// Barrier is the sync overhead: time spent waiting on the global
	// superstep barrier (includes idling while other partitions compute).
	Barrier time.Duration
	// MsgsSent and MsgsRecv count messages crossing this partition's
	// boundary in either direction.
	MsgsSent int64
	MsgsRecv int64
	// Counters holds application-defined per-timestep counters (e.g.
	// "finalized" for TDSP, "colored" for meme tracking).
	Counters map[string]int64
}

func (p *PartitionStep) counter(name string) int64 {
	if p.Counters == nil {
		return 0
	}
	return p.Counters[name]
}

// AddCounter accumulates an application counter.
func (p *PartitionStep) AddCounter(name string, delta int64) {
	if p.Counters == nil {
		p.Counters = make(map[string]int64)
	}
	p.Counters[name] += delta
}

// TimestepRecord is the accounting for one TI-BSP timestep across all
// partitions.
type TimestepRecord struct {
	Timestep   int
	Supersteps int
	// Wall is the end-to-end wall time of the timestep, including instance
	// loading.
	Wall time.Duration
	// Load is the time the runner was blocked materializing the timestep's
	// graph instance (GoFS slice reads show up here as the paper's
	// every-10th-step spike). With instance prefetching enabled this is
	// only the residual wait; the full decode cost is LoadFetch.
	Load time.Duration
	// LoadFetch is the full decode cost of the timestep's instance,
	// whether it was paid inline (then LoadFetch == Load) or on the
	// prefetcher's background goroutine.
	LoadFetch time.Duration
	// LoadOverlapped is the portion of LoadFetch hidden behind the
	// previous timesteps' compute by the prefetching instance source
	// (max(LoadFetch-Load, 0) when prefetched, else 0).
	LoadOverlapped time.Duration
	// Prefetched reports that the instance was served by a prefetching
	// source's pipeline rather than loaded inline.
	Prefetched bool
	// MsgsDropped counts messages addressed to unknown destinations that
	// the BSP engine discarded during this timestep (a program bug made
	// visible; see bsp.Result.MsgsDropped).
	MsgsDropped int64
	// Mallocs and AllocBytes are the timestep's heap-allocation deltas
	// (runtime.MemStats), recorded when allocation tracking is enabled on
	// the job; they quantify the engine's steady-state allocation
	// discipline alongside the §IV-D time decomposition.
	Mallocs    uint64
	AllocBytes uint64
	// Checkpoint is the time spent persisting the timestep-boundary
	// checkpoint (program-state serialization plus the GoFS write), zero
	// when checkpointing is off.
	Checkpoint time.Duration
	// SubgraphsSkipped counts subgraphs the incremental scheduler kept out
	// of this timestep's initial frontier (delta-clean and unaddressed);
	// zero on non-incremental runs.
	SubgraphsSkipped int
	// SimWall is the simulated cluster wall time of the timestep: the sum
	// over supersteps of the slowest host's (compute-makespan + flush),
	// plus the per-host share of instance loading and any synchronized GC
	// pause. On a single test machine the partitions execute interleaved,
	// so real Wall cannot show distributed scaling; SimWall is derived
	// from per-task measured durations scheduled onto the simulated
	// cluster (K hosts × CoresPerHost).
	SimWall time.Duration
	// Parts has one entry per partition.
	Parts []PartitionStep
}

// Recorder accumulates TimestepRecords for a whole TI-BSP run. It is safe
// for concurrent use by partition workers: each partition writes only its
// own PartitionStep slot, and record boundaries are serialized by the
// engine's barriers; the mutex protects the record list itself.
//
// Records are indexed by timestep and the index tolerates gaps: a run may
// begin timesteps sparsely or out of order (WhileMode early exits, halted
// distributed hosts, window-sampled replays) and every aggregation treats a
// never-begun timestep as an empty record rather than panicking.
type Recorder struct {
	mu sync.Mutex
	k  int
	// steps is indexed by timestep; nil entries are gaps.
	steps []*TimestepRecord
}

// NewRecorder creates a recorder for k partitions.
func NewRecorder(k int) *Recorder {
	return &Recorder{k: k}
}

// K returns the partition count the recorder was created with.
func (r *Recorder) K() int { return r.k }

// BeginTimestep returns the record for a timestep, creating it on first
// use. Timesteps may be begun in any order and with gaps; re-beginning a
// timestep returns the existing record. Records are heap-allocated
// individually, so the returned pointer stays valid (and safely writable by
// its own timestep's goroutine) even while concurrent timesteps grow the
// index. A negative timestep returns a detached record that is never
// aggregated (callers probing out-of-range steps get a safe sink).
func (r *Recorder) BeginTimestep(timestep int) *TimestepRecord {
	if timestep < 0 {
		return &TimestepRecord{Timestep: timestep, Parts: make([]PartitionStep, r.k)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.steps) <= timestep {
		r.steps = append(r.steps, nil)
	}
	if r.steps[timestep] == nil {
		r.steps[timestep] = &TimestepRecord{
			Timestep: timestep,
			Parts:    make([]PartitionStep, r.k),
		}
	}
	return r.steps[timestep]
}

// NumTimesteps returns the recorded timestep range: the highest begun
// timestep plus one. Gaps inside the range read as empty records.
func (r *Recorder) NumTimesteps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.steps)
}

// RecordedTimesteps returns how many timesteps were actually begun
// (excluding gaps).
func (r *Recorder) RecordedTimesteps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.steps {
		if r.steps[i] != nil {
			n++
		}
	}
	return n
}

// Step returns a copy of the i-th timestep record. Gaps and out-of-range
// indices return an empty record rather than panicking, so callers can
// iterate [0, NumTimesteps()) without tracking which timesteps ran.
func (r *Recorder) Step(i int) TimestepRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.steps) || r.steps[i] == nil {
		return TimestepRecord{Timestep: i, Parts: make([]PartitionStep, r.k)}
	}
	rec := *r.steps[i]
	rec.Parts = append([]PartitionStep(nil), r.steps[i].Parts...)
	return rec
}

// forEach invokes f on every non-gap record with the lock held.
func (r *Recorder) forEach(f func(*TimestepRecord)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.steps {
		if r.steps[i] != nil {
			f(r.steps[i])
		}
	}
}

// series extracts one duration field per timestep (gaps read as zero).
func (r *Recorder) series(get func(*TimestepRecord) time.Duration) []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.steps))
	for i := range r.steps {
		if r.steps[i] != nil {
			out[i] = get(r.steps[i])
		}
	}
	return out
}

// TotalWall sums wall time across all timesteps.
func (r *Recorder) TotalWall() time.Duration {
	var total time.Duration
	r.forEach(func(rec *TimestepRecord) { total += rec.Wall })
	return total
}

// WallSeries returns the per-timestep wall times (Fig 6).
func (r *Recorder) WallSeries() []time.Duration {
	return r.series(func(rec *TimestepRecord) time.Duration { return rec.Wall })
}

// LoadSeries returns the per-timestep blocked instance-load times.
func (r *Recorder) LoadSeries() []time.Duration {
	return r.series(func(rec *TimestepRecord) time.Duration { return rec.Load })
}

// LoadOverlapSeries returns the per-timestep decode time hidden behind
// compute by the prefetching instance source (zero without prefetching).
func (r *Recorder) LoadOverlapSeries() []time.Duration {
	return r.series(func(rec *TimestepRecord) time.Duration { return rec.LoadOverlapped })
}

// TotalLoadOverlap sums the decode time hidden behind compute across all
// timesteps.
func (r *Recorder) TotalLoadOverlap() time.Duration {
	var total time.Duration
	r.forEach(func(rec *TimestepRecord) { total += rec.LoadOverlapped })
	return total
}

// TotalLoad sums the blocked instance-load time across all timesteps.
func (r *Recorder) TotalLoad() time.Duration {
	var total time.Duration
	r.forEach(func(rec *TimestepRecord) { total += rec.Load })
	return total
}

// TotalLoadFetch sums the full instance decode cost (inline or prefetched)
// across all timesteps.
func (r *Recorder) TotalLoadFetch() time.Duration {
	var total time.Duration
	r.forEach(func(rec *TimestepRecord) { total += rec.LoadFetch })
	return total
}

// PrefetchedTimesteps counts timesteps whose instance was served by a
// prefetching source's pipeline.
func (r *Recorder) PrefetchedTimesteps() int {
	n := 0
	r.forEach(func(rec *TimestepRecord) {
		if rec.Prefetched {
			n++
		}
	})
	return n
}

// TotalMsgsDropped sums dropped-message counts across all timesteps.
func (r *Recorder) TotalMsgsDropped() int64 {
	var total int64
	r.forEach(func(rec *TimestepRecord) { total += rec.MsgsDropped })
	return total
}

// TotalMallocs sums the per-timestep heap-allocation counts (zero unless
// allocation tracking was enabled on the job).
func (r *Recorder) TotalMallocs() uint64 {
	var total uint64
	r.forEach(func(rec *TimestepRecord) { total += rec.Mallocs })
	return total
}

// SimWallSeries returns the per-timestep simulated cluster times (Fig 6).
func (r *Recorder) SimWallSeries() []time.Duration {
	return r.series(func(rec *TimestepRecord) time.Duration { return rec.SimWall })
}

// TotalSimWall sums simulated cluster time across all timesteps.
func (r *Recorder) TotalSimWall() time.Duration {
	var total time.Duration
	r.forEach(func(rec *TimestepRecord) { total += rec.SimWall })
	return total
}

// CounterSeries returns, for one partition, the per-timestep values of a
// named counter (Fig 7a/7c). Gaps and out-of-range partitions read as zero.
func (r *Recorder) CounterSeries(part int, name string) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.steps))
	if part < 0 {
		return out
	}
	for i := range r.steps {
		if r.steps[i] != nil && part < len(r.steps[i].Parts) {
			out[i] = r.steps[i].Parts[part].counter(name)
		}
	}
	return out
}

// CounterTotal sums a named counter over all partitions and timesteps.
func (r *Recorder) CounterTotal(name string) int64 {
	var total int64
	r.forEach(func(rec *TimestepRecord) {
		for p := range rec.Parts {
			total += rec.Parts[p].counter(name)
		}
	})
	return total
}

// Utilization is one partition's aggregate time split (Fig 7b/7d).
type Utilization struct {
	Partition int
	Compute   time.Duration
	Flush     time.Duration
	Barrier   time.Duration
}

// Total returns the sum of the three components.
func (u Utilization) Total() time.Duration { return u.Compute + u.Flush + u.Barrier }

// ComputeFrac returns the compute share in [0,1] (0 when empty).
func (u Utilization) ComputeFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Compute) / float64(t)
}

// FlushFrac returns the partition-overhead share.
func (u Utilization) FlushFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Flush) / float64(t)
}

// BarrierFrac returns the sync-overhead share.
func (u Utilization) BarrierFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Barrier) / float64(t)
}

// Utilizations aggregates the time split per partition over all timesteps.
func (r *Recorder) Utilizations() []Utilization {
	out := make([]Utilization, r.k)
	for p := 0; p < r.k; p++ {
		out[p].Partition = p
	}
	r.forEach(func(rec *TimestepRecord) {
		for p := range rec.Parts {
			if p >= len(out) {
				break
			}
			ps := &rec.Parts[p]
			out[p].Compute += ps.Compute
			out[p].Flush += ps.Flush
			out[p].Barrier += ps.Barrier
		}
	})
	return out
}

// PartMessages returns per-partition totals of messages sent and received.
func (r *Recorder) PartMessages() (sent, recv []int64) {
	sent = make([]int64, r.k)
	recv = make([]int64, r.k)
	r.forEach(func(rec *TimestepRecord) {
		for p := range rec.Parts {
			if p >= r.k {
				break
			}
			sent[p] += rec.Parts[p].MsgsSent
			recv[p] += rec.Parts[p].MsgsRecv
		}
	})
	return sent, recv
}

// ComputeSkew returns the straggler ratio of the run: the maximum
// partition's total compute time divided by the median partition's. 1.0 is
// a perfectly balanced run; 0 means no compute was recorded. The
// per-superstep refinement (which superstep, which subgraph) lives in
// internal/obs.SkewReport.
func (r *Recorder) ComputeSkew() float64 {
	utils := r.Utilizations()
	if len(utils) == 0 {
		return 0
	}
	computes := make([]time.Duration, len(utils))
	for i, u := range utils {
		computes[i] = u.Compute
	}
	sort.Slice(computes, func(i, j int) bool { return computes[i] < computes[j] })
	med := computes[len(computes)/2]
	max := computes[len(computes)-1]
	if med <= 0 {
		if max > 0 {
			return float64(len(computes)) // degenerate: median partition idle
		}
		return 0
	}
	return float64(max) / float64(med)
}

// TotalSubgraphsSkipped sums the incremental scheduler's skip counts across
// all timesteps (zero on non-incremental runs).
func (r *Recorder) TotalSubgraphsSkipped() int {
	total := 0
	r.forEach(func(rec *TimestepRecord) { total += rec.SubgraphsSkipped })
	return total
}

// TotalSupersteps sums supersteps across timesteps.
func (r *Recorder) TotalSupersteps() int {
	total := 0
	r.forEach(func(rec *TimestepRecord) { total += rec.Supersteps })
	return total
}

// TotalMessages sums messages sent across all partitions and timesteps.
func (r *Recorder) TotalMessages() int64 {
	var total int64
	r.forEach(func(rec *TimestepRecord) {
		for p := range rec.Parts {
			total += rec.Parts[p].MsgsSent
		}
	})
	return total
}

// CounterNames returns the sorted union of counter names seen anywhere.
func (r *Recorder) CounterNames() []string {
	set := map[string]struct{}{}
	r.forEach(func(rec *TimestepRecord) {
		for p := range rec.Parts {
			for name := range rec.Parts[p].Counters {
				set[name] = struct{}{}
			}
		}
	})
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summary renders a one-line human summary of the run, including the
// dropped-message count (a visible program bug) and the compute skew ratio
// (max/median partition compute; the straggler headline of §IV-D).
func (r *Recorder) Summary() string {
	s := fmt.Sprintf("timesteps=%d supersteps=%d wall=%v msgs=%d dropped=%d",
		r.NumTimesteps(), r.TotalSupersteps(), r.TotalWall().Round(time.Millisecond),
		r.TotalMessages(), r.TotalMsgsDropped())
	if skew := r.ComputeSkew(); skew > 0 {
		s += fmt.Sprintf(" skew=%.2f", skew)
	}
	return s
}
