// Package metrics records the timing decomposition and algorithm-progress
// counters the paper analyzes in §IV-D/E: per-partition compute time,
// partition overhead (message flushing after compute), sync overhead
// (barrier wait), and per-timestep application counters such as the number
// of vertices finalized or colored.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PartitionStep is one partition's accounting for one BSP timestep.
type PartitionStep struct {
	// Compute is the time spent inside user Compute calls (summed across
	// the partition's subgraphs and supersteps; concurrent subgraph
	// executions all contribute).
	Compute time.Duration
	// Flush is the partition overhead: time spent routing and delivering
	// outgoing messages after compute completes.
	Flush time.Duration
	// Barrier is the sync overhead: time spent waiting on the global
	// superstep barrier (includes idling while other partitions compute).
	Barrier time.Duration
	// MsgsSent and MsgsRecv count messages crossing this partition's
	// boundary in either direction.
	MsgsSent int64
	MsgsRecv int64
	// Counters holds application-defined per-timestep counters (e.g.
	// "finalized" for TDSP, "colored" for meme tracking).
	Counters map[string]int64
}

func (p *PartitionStep) counter(name string) int64 {
	if p.Counters == nil {
		return 0
	}
	return p.Counters[name]
}

// AddCounter accumulates an application counter.
func (p *PartitionStep) AddCounter(name string, delta int64) {
	if p.Counters == nil {
		p.Counters = make(map[string]int64)
	}
	p.Counters[name] += delta
}

// TimestepRecord is the accounting for one TI-BSP timestep across all
// partitions.
type TimestepRecord struct {
	Timestep   int
	Supersteps int
	// Wall is the end-to-end wall time of the timestep, including instance
	// loading.
	Wall time.Duration
	// Load is the time the runner was blocked materializing the timestep's
	// graph instance (GoFS slice reads show up here as the paper's
	// every-10th-step spike). With instance prefetching enabled this is
	// only the residual wait; the full decode cost is LoadFetch.
	Load time.Duration
	// LoadFetch is the full decode cost of the timestep's instance,
	// whether it was paid inline (then LoadFetch == Load) or on the
	// prefetcher's background goroutine.
	LoadFetch time.Duration
	// LoadOverlapped is the portion of LoadFetch hidden behind the
	// previous timesteps' compute by the prefetching instance source
	// (max(LoadFetch-Load, 0) when prefetched, else 0).
	LoadOverlapped time.Duration
	// Prefetched reports that the instance was served by a prefetching
	// source's pipeline rather than loaded inline.
	Prefetched bool
	// MsgsDropped counts messages addressed to unknown destinations that
	// the BSP engine discarded during this timestep (a program bug made
	// visible; see bsp.Result.MsgsDropped).
	MsgsDropped int64
	// Mallocs and AllocBytes are the timestep's heap-allocation deltas
	// (runtime.MemStats), recorded when allocation tracking is enabled on
	// the job; they quantify the engine's steady-state allocation
	// discipline alongside the §IV-D time decomposition.
	Mallocs    uint64
	AllocBytes uint64
	// SimWall is the simulated cluster wall time of the timestep: the sum
	// over supersteps of the slowest host's (compute-makespan + flush),
	// plus the per-host share of instance loading and any synchronized GC
	// pause. On a single test machine the partitions execute interleaved,
	// so real Wall cannot show distributed scaling; SimWall is derived
	// from per-task measured durations scheduled onto the simulated
	// cluster (K hosts × CoresPerHost).
	SimWall time.Duration
	// Parts has one entry per partition.
	Parts []PartitionStep
}

// Recorder accumulates TimestepRecords for a whole TI-BSP run. It is safe
// for concurrent use by partition workers: each partition writes only its
// own PartitionStep slot, and record boundaries are serialized by the
// engine's barriers; the mutex protects the record list itself.
type Recorder struct {
	mu    sync.Mutex
	k     int
	steps []*TimestepRecord
}

// NewRecorder creates a recorder for k partitions.
func NewRecorder(k int) *Recorder {
	return &Recorder{k: k}
}

// K returns the partition count the recorder was created with.
func (r *Recorder) K() int { return r.k }

// BeginTimestep appends a new record and returns it for the engine to fill.
// Records are heap-allocated individually, so the returned pointer stays
// valid (and safely writable by its own timestep's goroutine) even while
// concurrent timesteps append further records.
func (r *Recorder) BeginTimestep(timestep int) *TimestepRecord {
	rec := &TimestepRecord{
		Timestep: timestep,
		Parts:    make([]PartitionStep, r.k),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps = append(r.steps, rec)
	return rec
}

// NumTimesteps returns how many timesteps have been recorded.
func (r *Recorder) NumTimesteps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.steps)
}

// Step returns a copy of the i-th timestep record.
func (r *Recorder) Step(i int) TimestepRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := *r.steps[i]
	rec.Parts = append([]PartitionStep(nil), r.steps[i].Parts...)
	return rec
}

// TotalWall sums wall time across all timesteps.
func (r *Recorder) TotalWall() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for i := range r.steps {
		total += r.steps[i].Wall
	}
	return total
}

// WallSeries returns the per-timestep wall times (Fig 6).
func (r *Recorder) WallSeries() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.steps))
	for i := range r.steps {
		out[i] = r.steps[i].Wall
	}
	return out
}

// LoadSeries returns the per-timestep blocked instance-load times.
func (r *Recorder) LoadSeries() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.steps))
	for i := range r.steps {
		out[i] = r.steps[i].Load
	}
	return out
}

// LoadOverlapSeries returns the per-timestep decode time hidden behind
// compute by the prefetching instance source (zero without prefetching).
func (r *Recorder) LoadOverlapSeries() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.steps))
	for i := range r.steps {
		out[i] = r.steps[i].LoadOverlapped
	}
	return out
}

// TotalLoadOverlap sums the decode time hidden behind compute across all
// timesteps.
func (r *Recorder) TotalLoadOverlap() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for i := range r.steps {
		total += r.steps[i].LoadOverlapped
	}
	return total
}

// TotalMsgsDropped sums dropped-message counts across all timesteps.
func (r *Recorder) TotalMsgsDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for i := range r.steps {
		total += r.steps[i].MsgsDropped
	}
	return total
}

// TotalMallocs sums the per-timestep heap-allocation counts (zero unless
// allocation tracking was enabled on the job).
func (r *Recorder) TotalMallocs() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for i := range r.steps {
		total += r.steps[i].Mallocs
	}
	return total
}

// SimWallSeries returns the per-timestep simulated cluster times (Fig 6).
func (r *Recorder) SimWallSeries() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.steps))
	for i := range r.steps {
		out[i] = r.steps[i].SimWall
	}
	return out
}

// TotalSimWall sums simulated cluster time across all timesteps.
func (r *Recorder) TotalSimWall() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for i := range r.steps {
		total += r.steps[i].SimWall
	}
	return total
}

// CounterSeries returns, for one partition, the per-timestep values of a
// named counter (Fig 7a/7c).
func (r *Recorder) CounterSeries(part int, name string) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.steps))
	for i := range r.steps {
		out[i] = r.steps[i].Parts[part].counter(name)
	}
	return out
}

// CounterTotal sums a named counter over all partitions and timesteps.
func (r *Recorder) CounterTotal(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for i := range r.steps {
		for p := range r.steps[i].Parts {
			total += r.steps[i].Parts[p].counter(name)
		}
	}
	return total
}

// Utilization is one partition's aggregate time split (Fig 7b/7d).
type Utilization struct {
	Partition int
	Compute   time.Duration
	Flush     time.Duration
	Barrier   time.Duration
}

// Total returns the sum of the three components.
func (u Utilization) Total() time.Duration { return u.Compute + u.Flush + u.Barrier }

// ComputeFrac returns the compute share in [0,1] (0 when empty).
func (u Utilization) ComputeFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Compute) / float64(t)
}

// FlushFrac returns the partition-overhead share.
func (u Utilization) FlushFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Flush) / float64(t)
}

// BarrierFrac returns the sync-overhead share.
func (u Utilization) BarrierFrac() float64 {
	t := u.Total()
	if t == 0 {
		return 0
	}
	return float64(u.Barrier) / float64(t)
}

// Utilizations aggregates the time split per partition over all timesteps.
func (r *Recorder) Utilizations() []Utilization {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Utilization, r.k)
	for p := 0; p < r.k; p++ {
		out[p].Partition = p
	}
	for i := range r.steps {
		for p := range r.steps[i].Parts {
			ps := &r.steps[i].Parts[p]
			out[p].Compute += ps.Compute
			out[p].Flush += ps.Flush
			out[p].Barrier += ps.Barrier
		}
	}
	return out
}

// TotalSupersteps sums supersteps across timesteps.
func (r *Recorder) TotalSupersteps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for i := range r.steps {
		total += r.steps[i].Supersteps
	}
	return total
}

// TotalMessages sums messages sent across all partitions and timesteps.
func (r *Recorder) TotalMessages() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for i := range r.steps {
		for p := range r.steps[i].Parts {
			total += r.steps[i].Parts[p].MsgsSent
		}
	}
	return total
}

// CounterNames returns the sorted union of counter names seen anywhere.
func (r *Recorder) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := map[string]struct{}{}
	for i := range r.steps {
		for p := range r.steps[i].Parts {
			for name := range r.steps[i].Parts[p].Counters {
				set[name] = struct{}{}
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summary renders a one-line human summary of the run.
func (r *Recorder) Summary() string {
	return fmt.Sprintf("timesteps=%d supersteps=%d wall=%v msgs=%d",
		r.NumTimesteps(), r.TotalSupersteps(), r.TotalWall().Round(time.Millisecond), r.TotalMessages())
}
