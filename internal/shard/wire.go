package shard

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/serve"
)

// Request kinds, mirroring the serving tier's query classes.
const (
	reqTDSP = 1 + iota
	reqTopN
	reqMeme
)

// Request is one sweep scattered to every member of a replica group. All
// members receive the identical request; each executes its share over its
// owned partitions (joining the group mesh for TDSP/meme) and reports the
// partial it is authoritative for.
type Request struct {
	// ID is the router's sweep serial, echoed in the response.
	ID int64
	// Kind selects the sweep (reqTDSP, reqTopN, reqMeme).
	Kind int
	// WM is the watermark: the sweep sees exactly the first WM timesteps.
	WM int

	// TDSP: canonical batch queries departing at Depart.
	Depart  int
	Queries []algorithms.BatchQuery

	// TopN: rank vertices by Attr, N entries per step, Count steps from From.
	Attr  string
	N     int
	From  int
	Count int

	// Meme: spread of Tag; Probes are template vertex indices, sorted.
	Tag    string
	Probes []int32
}

// Arrival is one (source, target) TDSP answer from the target's owner.
type Arrival struct {
	SI      int32 // batch query index
	Target  int32 // template vertex index
	Arr     float64
	At      int32
	Reached bool
}

// probeNotOwned marks a ProbeAt slot answered by a different member.
const probeNotOwned = -2

// Response is one member's partial answer. TDSP arrivals and meme probes
// cover only the vertices whose partitions the member owns, so the union
// across a group's responses is exact with no overlap.
type Response struct {
	ID  int64
	Err string

	Arrivals []Arrival           // TDSP
	Steps    [][]serve.RankEntry // TopN: local per-step top-N
	Colored  int                 // Meme: colored count over owned partitions
	ProbeAt  []int32             // Meme: aligned with Request.Probes; probeNotOwned elsewhere

	// SweepNS is the member's wall-clock sweep time, for SpanShard spans.
	SweepNS int64
	// Rank is the responding global rank.
	Rank int
}

// memberClient is the router's connection to one rank's RPC endpoint.
// Calls are serialized per member (the group lock already serializes
// sweeps, so there is never more than one request in flight per conn).
type memberClient struct {
	rank int
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (m *memberClient) resetLocked() {
	if m.conn != nil {
		m.conn.Close()
	}
	m.conn, m.enc, m.dec = nil, nil, nil
}

// call sends one request and waits for its response, bounded by timeout.
// A stale connection (the rank restarted, or an idle conn died) fails the
// first encode; one redial retries it. A failure after the request went
// out is returned as-is — the router fails the whole group over to a
// replica rather than guessing about a half-executed sweep.
func (m *memberClient) call(req *Request, timeout time.Duration) (*Response, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if m.conn == nil {
			conn, err := net.DialTimeout("tcp", m.addr, 2*time.Second)
			if err != nil {
				return nil, fmt.Errorf("shard: rank %d: %w", m.rank, err)
			}
			m.conn, m.enc, m.dec = conn, gob.NewEncoder(conn), gob.NewDecoder(conn)
		}
		m.conn.SetDeadline(time.Now().Add(timeout))
		if err := m.enc.Encode(req); err != nil {
			m.resetLocked()
			if attempt == 0 {
				continue
			}
			return nil, fmt.Errorf("shard: rank %d: send: %w", m.rank, err)
		}
		var resp Response
		if err := m.dec.Decode(&resp); err != nil {
			m.resetLocked()
			return nil, fmt.Errorf("shard: rank %d: recv: %w", m.rank, err)
		}
		m.conn.SetDeadline(time.Time{})
		if resp.ID != req.ID {
			m.resetLocked()
			return nil, fmt.Errorf("shard: rank %d: response %d for request %d", m.rank, resp.ID, req.ID)
		}
		return &resp, nil
	}
}

func (m *memberClient) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resetLocked()
}
