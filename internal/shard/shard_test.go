package shard

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/serve"
	"tsgraph/internal/subgraph"
)

const (
	fixSteps = 8
	fixDelta = 60
	fixMeme  = "#storm"
	fixParts = 4
)

// fixture builds a small road network with latencies, loads, and SIR
// tweets over fixParts partitions, so every query class has data and
// groups of 2 members own 2 partitions each.
func fixture(tb testing.TB) (*graph.Template, []*subgraph.PartitionData, *partition.Assignment, core.MemorySource) {
	tb.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, RemoveFrac: 0.1, Seed: 7})
	sir, err := gen.SIRTweets(g, gen.SIRConfig{
		Timesteps: fixSteps, T0: 0, Delta: fixDelta,
		Memes: []string{fixMeme}, SeedsPerMeme: 2, HitProb: 0.35, Seed: 9,
	})
	if err != nil {
		tb.Fatal(err)
	}
	c := sir.Collection
	lat, err := gen.RandomLatencies(g, gen.LatencyConfig{
		Timesteps: fixSteps, T0: 0, Delta: fixDelta, Min: 1, Max: 50, Seed: 10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	li := g.EdgeSchema().Index(gen.AttrLatency)
	for s := 0; s < fixSteps; s++ {
		c.Instance(s).EdgeCols[li] = lat.Instance(s).EdgeCols[li]
	}
	if err := gen.RandomLoads(c, 11, 0, 100); err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 11}).Partition(g, fixParts)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return g, parts, a, core.MemorySource{C: c}
}

func TestLayoutAssignmentRoundTrip(t *testing.T) {
	for _, tc := range []struct{ ranks, replicas int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 3}, {4, 0},
	} {
		addrs := make([]string, tc.ranks)
		for i := range addrs {
			addrs[i] = "h"
		}
		l := Layout{Ranks: addrs, Mesh: addrs, Replicas: tc.replicas}
		groups := l.Groups()
		if len(groups) != l.NumGroups() {
			t.Fatalf("%+v: %d groups, want %d", tc, len(groups), l.NumGroups())
		}
		seen := make(map[int]bool)
		for gi, g := range groups {
			for mi, rank := range g {
				if seen[rank] {
					t.Fatalf("%+v: rank %d in two groups", tc, rank)
				}
				seen[rank] = true
				// GroupOf inverts Groups.
				gg, mm, members := l.GroupOf(rank)
				if gg != gi || mm != mi || len(members) != len(g) {
					t.Fatalf("%+v: GroupOf(%d) = (%d,%d,%d members), want (%d,%d,%d)",
						tc, rank, gg, mm, len(members), gi, mi, len(g))
				}
			}
		}
		if len(seen) != tc.ranks {
			t.Fatalf("%+v: groups cover %d of %d ranks", tc, len(seen), tc.ranks)
		}
		// Every partition is owned by exactly one member per group, and
		// LocalParts partitions the partition set within each group.
		const numParts = 7
		for _, g := range groups {
			owned := make(map[int]bool)
			for _, rank := range g {
				for _, p := range LocalParts(l, rank, numParts) {
					if owned[p] {
						t.Fatalf("%+v: partition %d owned twice in group", tc, p)
					}
					owned[p] = true
				}
			}
			if len(owned) != numParts {
				t.Fatalf("%+v: group owns %d of %d partitions", tc, len(owned), numParts)
			}
		}
	}
}

// bootShard starts ranks in-process on loopback listeners and returns the
// layout plus the live ranks, rank-indexed.
func bootShard(tb testing.TB, g *graph.Template, parts []*subgraph.PartitionData, a *partition.Assignment, src core.InstanceSource, numRanks, replicas int) (Layout, []*Rank) {
	tb.Helper()
	l := Layout{Replicas: replicas}
	rpcLns := make([]net.Listener, numRanks)
	meshLns := make([]net.Listener, numRanks)
	for i := 0; i < numRanks; i++ {
		var err error
		if rpcLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			tb.Fatal(err)
		}
		if meshLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			tb.Fatal(err)
		}
		l.Ranks = append(l.Ranks, rpcLns[i].Addr().String())
		l.Mesh = append(l.Mesh, meshLns[i].Addr().String())
	}
	ranks := make([]*Rank, numRanks)
	for i := 0; i < numRanks; i++ {
		r, err := NewRank(RankConfig{
			Layout: l, Rank: i,
			Template: g, Parts: parts, Assign: a, Source: src,
			Delta: fixDelta, WeightAttr: gen.AttrLatency, TweetsAttr: gen.AttrTweets,
			Cores:      2,
			Resilience: &cluster.Resilience{BackoffBase: 2 * time.Millisecond, BackoffCap: 50 * time.Millisecond, RecoveryWindow: 2 * time.Second},
			Listener:   rpcLns[i], MeshListener: meshLns[i],
		})
		if err != nil {
			tb.Fatal(err)
		}
		ranks[i] = r
		tb.Cleanup(func() { r.Close() })
	}
	// Mesh members block in Start until their whole group is up.
	var wg sync.WaitGroup
	errs := make([]error, numRanks)
	for i, r := range ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			errs[i] = r.Start()
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("rank %d start: %v", i, err)
		}
	}
	return l, ranks
}

func shardServer(tb testing.TB, g *graph.Template, parts []*subgraph.PartitionData, a *partition.Assignment, src core.InstanceSource, l Layout) (*serve.Server, *Router) {
	tb.Helper()
	router, err := NewRouter(RouterConfig{
		Layout: l, Template: g, Assign: a,
		Timeout: 10 * time.Second, DownCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(router.Close)
	srv, err := serve.New(serve.Options{
		Template: g, Parts: parts, Source: src,
		Delta: fixDelta, WeightAttr: gen.AttrLatency, TweetsAttr: gen.AttrTweets,
		Sweeper: router,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = srv.Close() })
	return srv, router
}

func oracleQueries() []serve.Query {
	v0, v63 := int64(0), int64(63)
	return []serve.Query{
		{Kind: "tdsp", Source: 0, Target: 63, Depart: 0},
		{Kind: "tdsp", Source: 63, Target: 0, Depart: 2},
		{Kind: "tdsp", Source: 9, Target: 54, Depart: 1},
		{Kind: "topn", Attr: gen.AttrLoad, N: 5, From: 1, Count: 3},
		{Kind: "topn", Attr: gen.AttrLoad, N: 3},
		{Kind: "meme", Tag: fixMeme},
		{Kind: "meme", Tag: fixMeme, Vertex: &v0},
		{Kind: "meme", Tag: fixMeme, Vertex: &v63},
		{Kind: "meme", Tag: "#nosuch", Vertex: &v0},
	}
}

// answerBytes runs one query and returns its canonical JSON, the exact
// bytes the HTTP layer writes.
func answerBytes(tb testing.TB, srv *serve.Server, q serve.Query) []byte {
	tb.Helper()
	ans, err := srv.Submit(context.Background(), q)
	if err != nil {
		tb.Fatalf("query %+v: %v", q, err)
	}
	b, err := json.Marshal(ans)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestShardedByteIdentical is the core acceptance check: every query class
// answered through a 3-rank, 2-replica shard (one 2-member mesh group and
// one single-member group) is byte-identical to the single-process server.
func TestShardedByteIdentical(t *testing.T) {
	g, parts, a, src := fixture(t)
	l, _ := bootShard(t, g, parts, a, src, 3, 2)
	sharded, _ := shardServer(t, g, parts, a, src, l)
	local, err := serve.New(serve.Options{
		Template: g, Parts: parts, Source: src,
		Delta: fixDelta, WeightAttr: gen.AttrLatency, TweetsAttr: gen.AttrTweets,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	// Submit everything twice: the round-robin cursor lands each sweep on
	// a different replica group, so both the mesh group and the
	// single-member group must produce the oracle answer.
	for round := 0; round < 2; round++ {
		for _, q := range oracleQueries() {
			want := answerBytes(t, local, q)
			got := answerBytes(t, sharded, q)
			if string(got) != string(want) {
				t.Fatalf("round %d query %+v:\nsharded %s\nlocal   %s", round, q, got, want)
			}
		}
	}
}

// TestRouterFailover kills every member of one replica group and checks
// that queries keep getting byte-identical answers from the replica, with
// the failover visible in the router's counters.
func TestRouterFailover(t *testing.T) {
	g, parts, a, src := fixture(t)
	l, ranks := bootShard(t, g, parts, a, src, 4, 2)
	sharded, router := shardServer(t, g, parts, a, src, l)
	local, err := serve.New(serve.Options{
		Template: g, Parts: parts, Source: src,
		Delta: fixDelta, WeightAttr: gen.AttrLatency, TweetsAttr: gen.AttrTweets,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	queries := oracleQueries()
	want := make([][]byte, len(queries))
	for i, q := range queries {
		want[i] = answerBytes(t, local, q)
		if got := answerBytes(t, sharded, q); string(got) != string(want[i]) {
			t.Fatalf("pre-kill query %+v: %s != %s", q, got, want[i])
		}
	}

	// Group 0 is ranks {0,1}; killing both forces every sweep onto group 1.
	ranks[0].Close()
	ranks[1].Close()
	for round := 0; round < 2; round++ {
		for i, q := range queries {
			if got := answerBytes(t, sharded, q); string(got) != string(want[i]) {
				t.Fatalf("post-kill query %+v: %s != %s", q, got, want[i])
			}
		}
	}
	if router.failovers.Load() == 0 {
		t.Fatal("no failovers recorded after killing a replica group")
	}
}

// TestRouterAllDownRejects checks the 429 path: with every replica group
// dead the router rejects (retryable) instead of erroring.
func TestRouterAllDownRejects(t *testing.T) {
	g, parts, a, src := fixture(t)
	l, ranks := bootShard(t, g, parts, a, src, 1, 1)
	sharded, _ := shardServer(t, g, parts, a, src, l)
	if got := answerBytes(t, sharded, serve.Query{Kind: "tdsp", Source: 0, Target: 63}); len(got) == 0 {
		t.Fatal("empty answer while rank alive")
	}
	ranks[0].Close()
	_, err := sharded.Submit(context.Background(), serve.Query{Kind: "tdsp", Source: 0, Target: 63, Depart: 1})
	var rej *serve.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectError with all groups down, got %v", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("reject without Retry-After: %+v", rej)
	}
}
