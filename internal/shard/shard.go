// Package shard runs the tsserve query engine across N ranks of the
// cluster mesh. Each rank loads only the instance data of the partitions
// it owns; a stateless router accepts the unchanged HTTP/JSON query API,
// scatters every admitted sweep to the partition owners of one replica
// group over a gob wire protocol, and merges the per-rank partials into
// answers byte-identical to a single-process tsserve.
//
// Topology: the layout splits the N ranks into Replicas contiguous groups.
// Every group holds a full copy of the dataset; within a group of M
// members, partition p is owned by member p % M. TDSP and meme sweeps that
// cross partitions run as distributed micro-batches over the group's
// private cluster mesh (internal/cluster); top-N is embarrassingly
// parallel per partition and never touches the mesh. The router pins one
// watermark per query batch and fans it out, so every member bounds its
// sweep at the same snapshot.
//
// Failure model: groups are static. When any member of a group fails an
// RPC, the router quarantines the whole group and retries the sweep on the
// next replica group — sweeps are read-only, so re-execution is always
// safe and the replica's answer is byte-identical. A permanently dead rank
// therefore downs its group for good (the surviving members' mesh cannot
// re-form); the replication factor is what buys availability.
package shard

import (
	"errors"
	"fmt"

	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
)

// Layout describes the rank topology of one sharded serving deployment.
// All processes — every rank and the router — must be started with the
// same layout; assignment of partitions to ranks is a pure function of it.
type Layout struct {
	// Ranks lists every rank's shard RPC address, rank-ordered.
	Ranks []string
	// Mesh lists every rank's cluster mesh listen address, rank-ordered.
	// May be empty when every group has a single member (no mesh needed).
	Mesh []string
	// Replicas is the number of replica groups the ranks split into.
	// 0 or 1 means one group holding the only copy.
	Replicas int
}

// NumRanks returns the number of ranks in the layout.
func (l Layout) NumRanks() int { return len(l.Ranks) }

// NumGroups returns the number of replica groups, clamped to [1, NumRanks].
func (l Layout) NumGroups() int {
	g := l.Replicas
	if g < 1 {
		g = 1
	}
	if n := len(l.Ranks); g > n {
		g = n
	}
	return g
}

// Groups splits the ranks into NumGroups contiguous groups. The first
// NumRanks%NumGroups groups get the extra member, so group sizes differ by
// at most one (3 ranks, 2 replicas -> {0,1} and {2}).
func (l Layout) Groups() [][]int {
	n, g := l.NumRanks(), l.NumGroups()
	base, extra := n/g, n%g
	groups := make([][]int, g)
	next := 0
	for i := range groups {
		size := base
		if i < extra {
			size++
		}
		groups[i] = make([]int, size)
		for j := range groups[i] {
			groups[i][j] = next
			next++
		}
	}
	return groups
}

// GroupOf locates a rank within the layout: its replica group index, its
// member index within that group, and the global ranks of all members.
func (l Layout) GroupOf(rank int) (group, member int, members []int) {
	for gi, g := range l.Groups() {
		for mi, r := range g {
			if r == rank {
				return gi, mi, g
			}
		}
	}
	return -1, -1, nil
}

// OwnerMember returns which member of an M-member group owns partition p.
// This is the deterministic partition->rank assignment every process
// derives independently from the shared layout.
func OwnerMember(part, members int) int {
	if members <= 1 {
		return 0
	}
	return part % members
}

// Validate rejects layouts the processes could not agree on.
func (l Layout) Validate() error {
	if len(l.Ranks) == 0 {
		return errors.New("shard: layout needs at least one rank")
	}
	if len(l.Mesh) != 0 && len(l.Mesh) != len(l.Ranks) {
		return fmt.Errorf("shard: %d mesh addrs for %d ranks", len(l.Mesh), len(l.Ranks))
	}
	if len(l.Mesh) == 0 {
		for _, g := range l.Groups() {
			if len(g) > 1 {
				return fmt.Errorf("shard: group of %d members needs mesh addresses", len(g))
			}
		}
	}
	return nil
}

// HeadSource adapts a store to core.InstanceSource for the router process.
// The router only ever reads the watermark — sweeps execute on the ranks —
// so instance loads are a bug, not a fallback.
func HeadSource(s *gofs.Store) core.InstanceSource { return headSource{s} }

type headSource struct{ s *gofs.Store }

func (h headSource) Timesteps() int { return h.s.Timesteps() }

func (h headSource) Load(timestep int) (*graph.Instance, error) {
	return nil, fmt.Errorf("shard: router must not load instances (timestep %d)", timestep)
}

// prefixSource pins a rank's sweep to the router-chosen watermark, exactly
// like the serving tier's bounded source: published instances are
// immutable, so every member of the group reads the same snapshot.
type prefixSource struct {
	src   core.InstanceSource
	steps int
}

func (p prefixSource) Timesteps() int { return p.steps }

func (p prefixSource) Load(timestep int) (*graph.Instance, error) {
	return p.src.Load(timestep)
}

// Delta passes through change summaries when the underlying source has
// them; nil means unknown and is always safe.
func (p prefixSource) Delta(timestep int) *graph.Delta {
	if ds, ok := p.src.(core.DeltaSource); ok {
		return ds.Delta(timestep)
	}
	return nil
}
