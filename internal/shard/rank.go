package shard

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/partition"
	"tsgraph/internal/serve"
	"tsgraph/internal/subgraph"
)

// RankConfig configures one serving rank.
type RankConfig struct {
	// Layout is the shared deployment topology; Rank is this process's
	// index into it.
	Layout Layout
	Rank   int

	// Template and Parts describe the FULL dataset: programs are built
	// over every partition so source/target resolution and per-source
	// bookkeeping agree across the group. Only instance data is sharded.
	Template *graph.Template
	Parts    []*subgraph.PartitionData
	// Assign maps template vertex -> partition.
	Assign *partition.Assignment

	// Source loads instances for the owned partitions; restrict it with
	// gofs.InstanceCache.Restrict(LocalParts(...)) so non-owned columns
	// are never decoded.
	Source core.InstanceSource

	// Delta, WeightAttr, TweetsAttr mirror the serve.Options of the
	// single-process server.
	Delta      float64
	WeightAttr string
	TweetsAttr string
	// Cores bounds concurrent Compute calls per sweep.
	Cores int

	// Tracer, when enabled, traces the rank's BSP execution.
	Tracer *obs.Tracer
	// Resilience tunes the group mesh's retry/reconnect/replay (nil keeps
	// the fail-fast transport; serving groups should set one).
	Resilience *cluster.Resilience

	// Listener accepts the router's RPC connections (required).
	Listener net.Listener
	// MeshListener is this rank's cluster mesh listener; required when
	// the rank's group has more than one member.
	MeshListener net.Listener
}

// LocalParts returns the partition numbers a rank owns under a layout: the
// member-local slice of the deterministic p % members assignment.
func LocalParts(l Layout, rank, numParts int) []int {
	_, member, members := l.GroupOf(rank)
	if members == nil {
		return nil
	}
	var owned []int
	for p := 0; p < numParts; p++ {
		if OwnerMember(p, len(members)) == member {
			owned = append(owned, p)
		}
	}
	return owned
}

// Rank is one serving rank: it answers the router's scattered sweeps over
// the partitions it owns, joining its replica group's cluster mesh for
// cross-partition TDSP and meme sweeps.
type Rank struct {
	cfg    RankConfig
	group  int
	member int
	ranks  []int // global ranks of my group, member-ordered
	local  []*subgraph.PartitionData
	bspCfg bsp.Config
	node   *cluster.Node // nil for single-member groups

	ln      net.Listener
	sweepMu sync.Mutex
	connMu  sync.Mutex
	conns   map[net.Conn]bool
	wg      sync.WaitGroup
	closed  atomic.Bool

	sweeps  [4]atomic.Int64 // indexed by request kind
	sweepNS atomic.Int64
}

// NewRank validates the topology and builds the rank. Start connects the
// mesh and begins serving.
func NewRank(cfg RankConfig) (*Rank, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Layout.NumRanks() {
		return nil, fmt.Errorf("shard: rank %d outside layout of %d", cfg.Rank, cfg.Layout.NumRanks())
	}
	if cfg.Template == nil || len(cfg.Parts) == 0 || cfg.Assign == nil || cfg.Source == nil {
		return nil, fmt.Errorf("shard: rank needs template, parts, assignment, and source")
	}
	if cfg.Listener == nil {
		return nil, fmt.Errorf("shard: rank needs an RPC listener")
	}
	group, member, ranks := cfg.Layout.GroupOf(cfg.Rank)
	r := &Rank{
		cfg:    cfg,
		group:  group,
		member: member,
		ranks:  ranks,
		bspCfg: bsp.Config{CoresPerHost: cfg.Cores},
		ln:     cfg.Listener,
		conns:  make(map[net.Conn]bool),
	}
	for _, pd := range cfg.Parts {
		if OwnerMember(pd.PID, len(ranks)) == member {
			r.local = append(r.local, pd)
		}
	}
	if len(ranks) > 1 {
		if cfg.MeshListener == nil {
			return nil, fmt.Errorf("shard: rank %d needs a mesh listener (group of %d)", cfg.Rank, len(ranks))
		}
		owner := make([]int32, len(cfg.Parts))
		for p := range owner {
			owner[p] = int32(OwnerMember(p, len(ranks)))
		}
		addrs := make([]string, len(ranks))
		for i, gr := range ranks {
			addrs[i] = cfg.Layout.Mesh[gr]
		}
		node, err := cluster.New(cluster.Config{
			Rank:       member,
			Addrs:      addrs,
			Listener:   cfg.MeshListener,
			Owner:      owner,
			Tracer:     cfg.Tracer,
			Resilience: cfg.Resilience,
		})
		if err != nil {
			return nil, err
		}
		r.node = node
	}
	return r, nil
}

// Node returns the rank's mesh node for metrics registration (nil when the
// group has a single member).
func (r *Rank) Node() *cluster.Node { return r.node }

// Addr returns the RPC listen address.
func (r *Rank) Addr() net.Addr { return r.ln.Addr() }

// LocalParts returns the partition numbers this rank owns.
func (r *Rank) LocalParts() []int {
	owned := make([]int, len(r.local))
	for i, pd := range r.local {
		owned[i] = pd.PID
	}
	return owned
}

// Start connects the group mesh (blocking until every member is up, when
// the group has one) and then serves RPCs in the background.
func (r *Rank) Start() error {
	if r.node != nil {
		if err := r.node.Start(); err != nil {
			return err
		}
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return nil
}

// Close stops serving: the listener and every open connection close, the
// mesh node shuts down, and in-flight handlers are waited out.
func (r *Rank) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.ln.Close()
	r.connMu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.connMu.Unlock()
	if r.node != nil {
		r.node.Close()
	}
	r.wg.Wait()
	return nil
}

func (r *Rank) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.connMu.Lock()
		if r.closed.Load() {
			r.connMu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = true
		r.connMu.Unlock()
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

func (r *Rank) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.connMu.Lock()
		delete(r.conns, conn)
		r.connMu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := r.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one sweep. Sweeps are serialized per rank: the engine
// and the mesh node carry per-sweep state, and the router never pipelines
// requests into one group anyway.
func (r *Rank) handle(req *Request) *Response {
	resp := &Response{ID: req.ID, Rank: r.cfg.Rank}
	r.sweepMu.Lock()
	defer r.sweepMu.Unlock()
	start := time.Now()
	var err error
	switch req.Kind {
	case reqTDSP:
		err = r.tdsp(req, resp)
	case reqTopN:
		err = r.topn(req, resp)
	case reqMeme:
		err = r.meme(req, resp)
	default:
		err = fmt.Errorf("shard: unknown request kind %d", req.Kind)
	}
	dur := time.Since(start)
	resp.SweepNS = dur.Nanoseconds()
	if req.Kind >= 1 && req.Kind < len(r.sweeps) {
		r.sweeps[req.Kind].Add(1)
	}
	r.sweepNS.Add(dur.Nanoseconds())
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// ownsVertex reports whether this rank is authoritative for a template
// vertex (its partition's instance data lives here).
func (r *Rank) ownsVertex(v int) bool {
	return OwnerMember(int(r.cfg.Assign.Parts[v]), len(r.ranks)) == r.member
}

func (r *Rank) tdsp(req *Request, resp *Response) error {
	src := prefixSource{r.cfg.Source, req.WM}
	var prog *algorithms.BatchTDSPProgram
	var err error
	if len(r.ranks) > 1 {
		engine := bsp.NewEngineRemote(r.local, r.bspCfg, r.node)
		r.node.Bind(engine)
		prog, _, err = algorithms.RunBatchTDSPDistributed(
			r.cfg.Template, r.cfg.Parts, r.local, req.Queries, req.Depart,
			src, r.cfg.Delta, r.cfg.WeightAttr, r.bspCfg,
			r.node, r.node, engine, r.cfg.Tracer)
	} else {
		prog, _, err = algorithms.RunBatchTDSP(
			r.cfg.Template, r.local, req.Queries, req.Depart,
			src, r.cfg.Delta, r.cfg.WeightAttr, r.bspCfg, nil, r.cfg.Tracer)
	}
	if err != nil {
		return err
	}
	for si, q := range req.Queries {
		for _, tgt := range q.Targets {
			if !r.ownsVertex(tgt) {
				continue
			}
			arr, at, ok := prog.Arrival(si, tgt)
			resp.Arrivals = append(resp.Arrivals, Arrival{
				SI: int32(si), Target: int32(tgt), Arr: arr, At: int32(at), Reached: ok,
			})
		}
	}
	return nil
}

func (r *Rank) topn(req *Request, resp *Response) error {
	par := r.cfg.Cores
	if par < 1 {
		par = 1
	}
	if par > 4 {
		par = 4
	}
	if req.Count < par {
		par = req.Count
	}
	steps, _, err := algorithms.RunTopNRange(
		r.cfg.Template, r.local, req.Attr, req.N,
		prefixSource{r.cfg.Source, req.WM},
		req.From, req.Count, r.bspCfg, nil, par)
	if err != nil {
		return err
	}
	resp.Steps = make([][]serve.RankEntry, len(steps))
	for i, vv := range steps {
		resp.Steps[i] = make([]serve.RankEntry, len(vv))
		for j, e := range vv {
			resp.Steps[i][j] = serve.RankEntry{Vertex: int64(e.Vertex), Value: e.Value}
		}
	}
	return nil
}

func (r *Rank) meme(req *Request, resp *Response) error {
	src := prefixSource{r.cfg.Source, req.WM}
	var coloredAt []int32
	var err error
	if len(r.ranks) > 1 {
		engine := bsp.NewEngineRemote(r.local, r.bspCfg, r.node)
		r.node.Bind(engine)
		coloredAt, _, err = algorithms.RunMemeDistributed(
			r.cfg.Template, r.cfg.Parts, r.local, req.Tag, r.cfg.TweetsAttr,
			src, r.bspCfg, r.node, r.node, engine, r.cfg.Tracer)
	} else {
		coloredAt, _, err = algorithms.RunMeme(
			r.cfg.Template, r.local, req.Tag, r.cfg.TweetsAttr, src, r.bspCfg, nil)
	}
	if err != nil {
		return err
	}
	// ColoredAt is template-indexed with -1 for both uncolored and
	// non-owned vertices, so counting >= 0 entries counts exactly the
	// owned colored vertices; the group total is the plain sum.
	for _, at := range coloredAt {
		if at >= 0 {
			resp.Colored++
		}
	}
	resp.ProbeAt = make([]int32, len(req.Probes))
	for i, v := range req.Probes {
		if r.ownsVertex(int(v)) {
			resp.ProbeAt[i] = coloredAt[v]
		} else {
			resp.ProbeAt[i] = probeNotOwned
		}
	}
	return nil
}

// CollectObs exports the rank's sweep counters.
func (r *Rank) CollectObs(emit func(obs.Sample)) {
	rank := []obs.Label{{Key: "rank", Value: fmt.Sprint(r.cfg.Rank)}}
	kinds := [4]string{"", "tdsp", "topn", "meme"}
	for k := 1; k < len(r.sweeps); k++ {
		emit(obs.Sample{
			Name: "tsshard_rank_sweeps_total", Kind: "counter",
			Help:   "Sweeps executed by this rank, by query class.",
			Labels: append([]obs.Label{{Key: "class", Value: kinds[k]}}, rank...),
			Value:  float64(r.sweeps[k].Load()),
		})
	}
	emit(obs.Sample{
		Name: "tsshard_rank_sweep_seconds_total", Kind: "counter",
		Help:   "Wall-clock seconds this rank spent executing sweeps.",
		Labels: rank,
		Value:  float64(r.sweepNS.Load()) / 1e9,
	})
}
