package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/graph"
	"tsgraph/internal/obs"
	"tsgraph/internal/partition"
	"tsgraph/internal/serve"
)

// RouterConfig configures the stateless scatter/gather router.
type RouterConfig struct {
	// Layout is the shared deployment topology.
	Layout Layout
	// Template and Assign let the router resolve vertex ownership for
	// merging; it never loads instance data.
	Template *graph.Template
	Assign   *partition.Assignment
	// Tracer, when enabled, records one SpanShard per member per sweep
	// (Part = executing rank, TS = query class, SID = sweep serial) so
	// flight-recorder traces stitch the rank-side work into the query.
	Tracer *obs.Tracer
	// Timeout bounds each member RPC (default 15s).
	Timeout time.Duration
	// DownCooldown quarantines a group after a failed scatter; retries go
	// to the replicas until it expires (default 5s).
	DownCooldown time.Duration
}

type group struct {
	id        int
	ranks     []int
	members   []*memberClient
	mu        sync.Mutex // serializes sweeps into the group
	downUntil atomic.Int64
}

func (g *group) down(now time.Time) bool { return now.UnixNano() < g.downUntil.Load() }

// Router scatters each admitted sweep to every member of one replica
// group and merges the partials. It implements serve.Sweeper, so the
// whole serving tier above the sweep seam — admission, batching, result
// cache, watermark pinning, HTTP — is the unmodified single-process code.
type Router struct {
	cfg      RouterConfig
	timeout  time.Duration
	cooldown time.Duration
	groups   []*group

	rr  atomic.Int64 // round-robin group cursor
	seq atomic.Int64 // sweep serial

	sweeps    [4]atomic.Int64 // by request kind
	failovers atomic.Int64
	rpcs      []atomic.Int64 // by global rank
	rpcErrs   []atomic.Int64
	rankNS    []atomic.Int64
}

// NewRouter builds a router over the layout. Connections to ranks are
// dialed lazily on the first sweep, so boot order is free.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cfg.Template == nil || cfg.Assign == nil {
		return nil, errors.New("shard: router needs template and assignment")
	}
	r := &Router{
		cfg:      cfg,
		timeout:  cfg.Timeout,
		cooldown: cfg.DownCooldown,
		rpcs:     make([]atomic.Int64, cfg.Layout.NumRanks()),
		rpcErrs:  make([]atomic.Int64, cfg.Layout.NumRanks()),
		rankNS:   make([]atomic.Int64, cfg.Layout.NumRanks()),
	}
	if r.timeout <= 0 {
		r.timeout = 15 * time.Second
	}
	if r.cooldown <= 0 {
		r.cooldown = 5 * time.Second
	}
	for gi, ranks := range cfg.Layout.Groups() {
		g := &group{id: gi, ranks: ranks}
		for _, rank := range ranks {
			g.members = append(g.members, &memberClient{rank: rank, addr: cfg.Layout.Ranks[rank]})
		}
		r.groups = append(r.groups, g)
	}
	return r, nil
}

// Close drops every rank connection.
func (r *Router) Close() {
	for _, g := range r.groups {
		for _, m := range g.members {
			m.close()
		}
	}
}

// scatter picks a live replica group round-robin, sends the request to
// every member, and gathers their partials. Any member failure quarantines
// the group and fails the sweep over to the next replica; sweeps are
// read-only, so re-execution on a replica is safe and byte-identical.
// With every group down or failed the sweep is rejected (HTTP 429 with
// Retry-After) rather than erroring, because replicas recovering within
// the cooldown make a retry meaningful.
func (r *Router) scatter(req *Request) ([]*Response, *group, error) {
	req.ID = r.seq.Add(1)
	if req.Kind >= 1 && req.Kind < len(r.sweeps) {
		r.sweeps[req.Kind].Add(1)
	}
	n := len(r.groups)
	start := int(r.rr.Add(1)-1) % n
	var lastErr error
	for i := 0; i < n; i++ {
		g := r.groups[(start+i)%n]
		if g.down(time.Now()) {
			continue
		}
		resps, err := r.scatterGroup(g, req)
		if err == nil {
			return resps, g, nil
		}
		lastErr = err
		g.downUntil.Store(time.Now().Add(r.cooldown).UnixNano())
		r.failovers.Add(1)
	}
	reason := "all replica groups down"
	if lastErr != nil {
		reason = fmt.Sprintf("all replica groups failed: %v", lastErr)
	}
	return nil, nil, &serve.RejectError{Reason: reason, RetryAfter: r.cooldown}
}

func (r *Router) scatterGroup(g *group, req *Request) ([]*Response, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sweepStart := time.Now()
	resps := make([]*Response, len(g.members))
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		wg.Add(1)
		go func(i int, m *memberClient) {
			defer wg.Done()
			r.rpcs[m.rank].Add(1)
			resp, err := m.call(req, r.timeout)
			if err == nil && resp.Err != "" {
				err = fmt.Errorf("shard: rank %d: %s", m.rank, resp.Err)
			}
			if err != nil {
				r.rpcErrs[m.rank].Add(1)
				errs[i] = err
				return
			}
			resps[i] = resp
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	tr := r.cfg.Tracer
	for i, resp := range resps {
		r.rankNS[g.ranks[i]].Add(resp.SweepNS)
		if tr.Active() {
			tr.RecordSpan(obs.SpanShard, int32(g.ranks[i]), int32(req.Kind), -1,
				req.ID, sweepStart, time.Duration(resp.SweepNS))
		}
	}
	return resps, nil
}

// SweepTDSP implements serve.Sweeper: every member runs the identical
// multi-source sweep over the group mesh; each (source, target) answer is
// reported exactly once, by the target's partition owner.
func (r *Router) SweepTDSP(_ context.Context, watermark, depart int, queries []algorithms.BatchQuery) (serve.TDSPLookup, error) {
	resps, _, err := r.scatter(&Request{Kind: reqTDSP, WM: watermark, Depart: depart, Queries: queries})
	if err != nil {
		return nil, err
	}
	type key struct{ si, v int }
	m := make(map[key]Arrival)
	for _, resp := range resps {
		for _, a := range resp.Arrivals {
			m[key{int(a.SI), int(a.Target)}] = a
		}
	}
	return func(si, vertex int) (float64, int, bool) {
		a, ok := m[key{si, vertex}]
		if !ok || !a.Reached {
			return 0, -1, false
		}
		return a.Arr, int(a.At), true
	}, nil
}

// SweepTopN implements serve.Sweeper: members rank their owned partitions
// locally; the merge re-applies the algorithm's exact comparator (value
// descending, vertex ascending) and truncation, so the merged list is the
// list a single process would have produced.
func (r *Router) SweepTopN(_ context.Context, watermark int, attr string, n, from, count int) ([][]serve.RankEntry, error) {
	resps, _, err := r.scatter(&Request{Kind: reqTopN, WM: watermark, Attr: attr, N: n, From: from, Count: count})
	if err != nil {
		return nil, err
	}
	out := make([][]serve.RankEntry, count)
	for ts := range out {
		var merged []serve.RankEntry
		for _, resp := range resps {
			if ts < len(resp.Steps) {
				merged = append(merged, resp.Steps[ts]...)
			}
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].Value != merged[j].Value {
				return merged[i].Value > merged[j].Value
			}
			return merged[i].Vertex < merged[j].Vertex
		})
		if len(merged) > n {
			merged = merged[:n]
		}
		out[ts] = merged
	}
	return out, nil
}

// SweepMeme implements serve.Sweeper: the colored count is the sum of the
// members' disjoint owned counts, and each probe is read from its
// partition owner.
func (r *Router) SweepMeme(_ context.Context, watermark int, tag string, probes []int) (*serve.MemeSpread, error) {
	wire := make([]int32, len(probes))
	for i, v := range probes {
		wire[i] = int32(v)
	}
	resps, g, err := r.scatter(&Request{Kind: reqMeme, WM: watermark, Tag: tag, Probes: wire})
	if err != nil {
		return nil, err
	}
	sp := &serve.MemeSpread{ProbeAt: make([]int, len(probes))}
	for _, resp := range resps {
		sp.Colored += resp.Colored
	}
	for i, v := range probes {
		owner := OwnerMember(int(r.cfg.Assign.Parts[v]), len(g.members))
		sp.ProbeAt[i] = int(resps[owner].ProbeAt[i])
	}
	return sp, nil
}

// CollectObs exports the router's scatter/gather counters.
func (r *Router) CollectObs(emit func(obs.Sample)) {
	kinds := [4]string{"", "tdsp", "topn", "meme"}
	for k := 1; k < len(r.sweeps); k++ {
		emit(obs.Sample{
			Name: "tsshard_sweeps_total", Kind: "counter",
			Help:   "Sweeps scattered by the shard router, by query class.",
			Labels: []obs.Label{{Key: "class", Value: kinds[k]}},
			Value:  float64(r.sweeps[k].Load()),
		})
	}
	emit(obs.Sample{
		Name: "tsshard_failovers_total", Kind: "counter",
		Help:  "Sweeps retried on a replica group after a member failure.",
		Value: float64(r.failovers.Load()),
	})
	now := time.Now()
	downGroups := 0
	for _, g := range r.groups {
		if g.down(now) {
			downGroups++
		}
	}
	emit(obs.Sample{
		Name: "tsshard_groups_down", Kind: "gauge",
		Help:  "Replica groups currently quarantined after a failure.",
		Value: float64(downGroups),
	})
	for rank := range r.rpcs {
		labels := []obs.Label{{Key: "rank", Value: fmt.Sprint(rank)}}
		emit(obs.Sample{
			Name: "tsshard_rpcs_total", Kind: "counter",
			Help:   "Sweep RPCs sent to each rank.",
			Labels: labels,
			Value:  float64(r.rpcs[rank].Load()),
		})
		emit(obs.Sample{
			Name: "tsshard_rpc_errors_total", Kind: "counter",
			Help:   "Sweep RPCs that failed per rank (dial, timeout, or remote error).",
			Labels: labels,
			Value:  float64(r.rpcErrs[rank].Load()),
		})
		emit(obs.Sample{
			Name: "tsshard_rank_sweep_seconds_total", Kind: "counter",
			Help:   "Rank-reported sweep seconds, as gathered by the router.",
			Labels: labels,
			Value:  float64(r.rankNS[rank].Load()) / 1e9,
		})
	}
}
