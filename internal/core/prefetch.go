package core

import (
	"fmt"
	"sync"
	"time"

	"tsgraph/internal/graph"
)

// prefetchItem is one decoded instance travelling through the pipeline.
type prefetchItem struct {
	timestep int
	ins      *graph.Instance
	err      error
	fetch    time.Duration // decode wall time on the background goroutine
	// delta is the change summary leading into timestep, captured from a
	// DeltaSource immediately after its Load (the underlying loader keeps
	// only one pack resident, so the summary must be taken before the
	// pipeline moves on); nil for non-delta sources.
	delta *graph.Delta
}

// PrefetchSource wraps an InstanceSource with a pipelined lookahead: while
// the caller computes on timestep t, a background goroutine decodes t+1 (up
// to Depth instances ahead), hiding the GoFS pack-load spikes of §IV-D
// behind compute. It assumes mostly-sequential access — the pattern of the
// sequentially dependent TI-BSP runner — and transparently restarts the
// pipeline on out-of-order requests.
//
// PrefetchSource serializes all access to the underlying source, so it is
// safe for concurrent callers even when the wrapped source (e.g.
// gofs.Loader) is not. Load errors from the background goroutine are
// propagated to the Load call for the failing timestep, and the pipeline
// never requests a timestep outside [0, Timesteps()).
type PrefetchSource struct {
	src InstanceSource
	// depth bounds how many decoded instances may be buffered ahead of
	// the consumer (the fetcher may additionally have one decode in
	// flight).
	depth int

	mu      sync.Mutex
	results chan prefetchItem
	cancel  chan struct{}
	done    chan struct{}
	running bool
	head    int // timestep of the next item the pipeline will deliver

	lastWait  time.Duration
	lastFetch time.Duration
	lastHit   bool
	hits      int64
	misses    int64

	lastDelta   *graph.Delta
	lastDeltaTS int
}

// NewPrefetchSource wraps src with a background pipeline holding at most
// depth decoded instances (minimum 1).
func NewPrefetchSource(src InstanceSource, depth int) *PrefetchSource {
	if depth < 1 {
		depth = 1
	}
	return &PrefetchSource{src: src, depth: depth}
}

// Timesteps implements InstanceSource.
func (p *PrefetchSource) Timesteps() int { return p.src.Timesteps() }

// Load implements InstanceSource. Sequential requests are served from the
// pipeline; a request that does not match the pipeline position restarts it
// at the requested timestep.
func (p *PrefetchSource) Load(timestep int) (*graph.Instance, error) {
	if timestep < 0 || timestep >= p.src.Timesteps() {
		return nil, fmt.Errorf("core: timestep %d outside [0,%d)", timestep, p.src.Timesteps())
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	if !p.running || p.head != timestep {
		p.stopLocked()
		p.startLocked(timestep)
	}

	waitStart := time.Now()
	var item prefetchItem
	hit := true
	select {
	case item = <-p.results:
	default:
		hit = false
		item = <-p.results
	}
	wait := time.Since(waitStart)

	p.head = timestep + 1
	p.lastWait = wait
	p.lastFetch = item.fetch
	p.lastHit = hit
	p.lastDelta, p.lastDeltaTS = item.delta, item.timestep
	if hit {
		p.hits++
	} else {
		p.misses++
	}
	if item.err != nil {
		// The fetcher stops after delivering an error; a later Load
		// restarts it.
		p.stopLocked()
		return nil, item.err
	}
	if item.timestep != timestep {
		// Defensive: the pipeline is strictly sequential, so this would
		// be an internal bug rather than a data error.
		p.stopLocked()
		return nil, fmt.Errorf("core: prefetch pipeline delivered timestep %d, want %d", item.timestep, timestep)
	}
	return item.ins, nil
}

// startLocked launches a fetcher goroutine delivering start, start+1, ...
// Caller holds p.mu.
func (p *PrefetchSource) startLocked(start int) {
	p.results = make(chan prefetchItem, p.depth)
	p.cancel = make(chan struct{})
	p.done = make(chan struct{})
	p.running = true
	p.head = start
	go p.fetch(start, p.results, p.cancel, p.done)
}

// stopLocked cancels the running fetcher and waits for it to exit, so the
// underlying source is never accessed by two goroutines at once. Caller
// holds p.mu.
func (p *PrefetchSource) stopLocked() {
	if !p.running {
		return
	}
	close(p.cancel)
	<-p.done
	p.running = false
	p.results = nil
	p.cancel = nil
	p.done = nil
}

// fetch sequentially decodes instances from start until the end of the
// source, a cancellation, or a load error. The bounded results channel
// provides the lookahead backpressure.
func (p *PrefetchSource) fetch(start int, results chan<- prefetchItem, cancel <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for t := start; t < p.src.Timesteps(); t++ {
		select {
		case <-cancel:
			return
		default:
		}
		fetchStart := time.Now()
		ins, err := p.src.Load(t)
		item := prefetchItem{timestep: t, ins: ins, err: err, fetch: time.Since(fetchStart)}
		if err == nil {
			if ds, ok := p.src.(DeltaSource); ok {
				item.delta = ds.Delta(t)
			}
		}
		select {
		case results <- item:
		case <-cancel:
			return
		}
		if err != nil {
			return
		}
	}
}

// Close stops the background pipeline. The source remains usable — the next
// Load restarts it — but callers that are done should Close to release the
// goroutine promptly.
func (p *PrefetchSource) Close() {
	p.mu.Lock()
	p.stopLocked()
	p.mu.Unlock()
}

// Delta implements DeltaSource: it returns the change summary captured for
// the most recently Loaded timestep, nil (assume everything changed) for
// any other timestep or when the wrapped source is not a DeltaSource. That
// is exactly the access pattern of the incremental TI-BSP runner, which
// asks for Delta(t) right after Load(t).
func (p *PrefetchSource) Delta(timestep int) *graph.Delta {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastDeltaTS != timestep {
		return nil
	}
	return p.lastDelta
}

// LastLoadStats reports the most recent Load's pipeline interaction: how
// long the caller was blocked, the instance's full decode cost on the
// background goroutine, and whether the instance was already buffered when
// requested.
func (p *PrefetchSource) LastLoadStats() (wait, fetch time.Duration, hit bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastWait, p.lastFetch, p.lastHit
}

// Stats returns how many Loads were served from the buffer (hit) versus had
// to block on an in-flight or fresh decode (miss).
func (p *PrefetchSource) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
