package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

func init() {
	gob.Register(int64(0)) // accumProgram outputs ride inside checkpoints
}

// accumProgram is a minimal Checkpointer: each subgraph keeps a running sum
// across timesteps (the cross-timestep state a checkpoint must persist),
// forwards it over the temporal edge, and cross-checks the received value
// against its own accumulator — so a bad restore shows up as a hard error,
// not just a wrong output.
type accumProgram struct {
	mu  sync.Mutex
	sum map[subgraph.ID]int64
	err error
}

func newAccumProgram() *accumProgram {
	return &accumProgram{sum: make(map[subgraph.ID]int64)}
}

func (p *accumProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if superstep == 0 {
		p.mu.Lock()
		if timestep > 0 {
			var got int64 = -1
			for _, m := range msgs {
				got = m.Payload.(int64)
			}
			if got != p.sum[sg.SID] && p.err == nil {
				p.err = fmt.Errorf("subgraph %v timestep %d: temporal message %d, accumulator %d", sg.SID, timestep, got, p.sum[sg.SID])
			}
		}
		p.sum[sg.SID] += int64(timestep + 1)
		total := p.sum[sg.SID]
		p.mu.Unlock()
		ctx.SendToNextTimestep(total)
	}
	ctx.VoteToHalt()
}

func (p *accumProgram) EndOfTimestep(ctx *EndContext, sg *subgraph.Subgraph, timestep int) {
	p.mu.Lock()
	total := p.sum[sg.SID]
	p.mu.Unlock()
	ctx.Output(total)
}

func (p *accumProgram) CheckpointState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.sum); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *accumProgram) RestoreCheckpoint(data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&p.sum)
}

// killSource injects one load failure at a chosen timestep (once) — the
// single-process stand-in for a process kill between timesteps.
type killSource struct {
	src    InstanceSource
	failAt int
	fired  bool
}

func (s *killSource) Timesteps() int { return s.src.Timesteps() }

func (s *killSource) Load(ts int) (*graph.Instance, error) {
	if ts == s.failAt && !s.fired {
		s.fired = true
		return nil, fmt.Errorf("injected load failure at timestep %d", ts)
	}
	return s.src.Load(ts)
}

// loggingSource records which timesteps were materialized, proving a resume
// skipped the completed prefix.
type loggingSource struct {
	src    InstanceSource
	loaded []int
}

func (s *loggingSource) Timesteps() int { return s.src.Timesteps() }

func (s *loggingSource) Load(ts int) (*graph.Instance, error) {
	s.loaded = append(s.loaded, ts)
	return s.src.Load(ts)
}

// TestCheckpointResumeMatchesUninterrupted kills a run at timestep 5 of 8,
// resumes it from the on-disk checkpoints, and requires the stitched run to
// reproduce the uninterrupted run exactly: same outputs, same accumulator
// state, and no re-execution of completed timesteps.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	f := newFixture(t, 8, 3)

	ref := newAccumProgram()
	refRes, err := Run(f.job(ref, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	if ref.err != nil {
		t.Fatal(ref.err)
	}

	dir := t.TempDir()
	killed := newAccumProgram()
	killJob := f.job(killed, SequentiallyDependent)
	killJob.CheckpointDir = dir
	killJob.Source = &killSource{src: MemorySource{C: f.c}, failAt: 5}
	if _, err := Run(killJob); err == nil {
		t.Fatal("interrupted run finished cleanly, want injected failure")
	}

	resumed := newAccumProgram()
	src := &loggingSource{src: MemorySource{C: f.c}}
	resJob := f.job(resumed, SequentiallyDependent)
	resJob.CheckpointDir = dir
	resJob.Resume = true
	resJob.Source = src
	res, err := Run(resJob)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.err != nil {
		t.Fatal(resumed.err)
	}

	// Timesteps 0–4 completed and checkpointed before the kill; the resumed
	// run must start at 5.
	for _, ts := range src.loaded {
		if ts < 5 {
			t.Fatalf("resumed run re-materialized timestep %d (loaded %v)", ts, src.loaded)
		}
	}
	if res.TimestepsRun != refRes.TimestepsRun {
		t.Fatalf("resumed TimestepsRun = %d, reference %d", res.TimestepsRun, refRes.TimestepsRun)
	}
	if !reflect.DeepEqual(res.Outputs, refRes.Outputs) {
		t.Fatalf("resumed outputs differ from reference:\n got %v\nwant %v", res.Outputs, refRes.Outputs)
	}
	if !reflect.DeepEqual(resumed.sum, ref.sum) {
		t.Fatalf("resumed accumulators = %v, reference %v", resumed.sum, ref.sum)
	}
}

// TestResumeWithNoCheckpointStartsFresh covers the cold-start path: Resume
// against an empty directory is a plain run from timestep 0.
func TestResumeWithNoCheckpointStartsFresh(t *testing.T) {
	f := newFixture(t, 4, 2)

	ref := newAccumProgram()
	refRes, err := Run(f.job(ref, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}

	prog := newAccumProgram()
	job := f.job(prog, SequentiallyDependent)
	job.CheckpointDir = t.TempDir()
	job.Resume = true
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if prog.err != nil {
		t.Fatal(prog.err)
	}
	if res.TimestepsRun != refRes.TimestepsRun || !reflect.DeepEqual(res.Outputs, refRes.Outputs) {
		t.Fatalf("fresh-start resume diverged from plain run")
	}
}

// TestCheckpointValidation pins the Job validation: checkpointing demands a
// Checkpointer program and the sequentially dependent pattern, and Resume
// demands a CheckpointDir.
func TestCheckpointValidation(t *testing.T) {
	f := newFixture(t, 2, 2)

	nonCkpt := f.job(&countingProgram{}, SequentiallyDependent)
	nonCkpt.CheckpointDir = t.TempDir()
	if _, err := Run(nonCkpt); err == nil {
		t.Error("checkpointing accepted a program without Checkpointer")
	}

	indep := f.job(newAccumProgram(), Independent)
	indep.CheckpointDir = t.TempDir()
	if _, err := Run(indep); err == nil {
		t.Error("checkpointing accepted the independent pattern")
	}

	noDir := f.job(newAccumProgram(), SequentiallyDependent)
	noDir.Resume = true
	if _, err := Run(noDir); err == nil {
		t.Error("Resume accepted without a CheckpointDir")
	}
}

// TestCheckpointEveryThinsCadence checks CheckpointEvery=N writes only every
// Nth boundary (plus nothing else), and a resume from a thinned run still
// reproduces the reference.
func TestCheckpointEveryThinsCadence(t *testing.T) {
	f := newFixture(t, 8, 2)

	ref := newAccumProgram()
	refRes, err := Run(f.job(ref, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	killed := newAccumProgram()
	job := f.job(killed, SequentiallyDependent)
	job.CheckpointDir = dir
	job.CheckpointEvery = 2
	job.Source = &killSource{src: MemorySource{C: f.c}, failAt: 5}
	if _, err := Run(job); err == nil {
		t.Fatal("interrupted run finished cleanly")
	}

	// Boundaries after timesteps 1 and 3 were written (every 2nd); resume
	// restarts at 4 and replays 4 before failing point onward.
	resumed := newAccumProgram()
	src := &loggingSource{src: MemorySource{C: f.c}}
	resJob := f.job(resumed, SequentiallyDependent)
	resJob.CheckpointDir = dir
	resJob.Resume = true
	resJob.Source = src
	res, err := Run(resJob)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.loaded) == 0 || src.loaded[0] != 4 {
		t.Fatalf("thinned resume started at %v, want timestep 4", src.loaded)
	}
	if !reflect.DeepEqual(res.Outputs, refRes.Outputs) {
		t.Fatal("thinned resume outputs differ from reference")
	}
}
