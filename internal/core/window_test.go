package core

import (
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/subgraph"
)

// windowProgram records which absolute timesteps were executed.
type windowProgram struct {
	mu   sync.Mutex
	seen map[int]int // timestep -> compute invocations at superstep 0
}

func (p *windowProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if superstep == 0 {
		p.mu.Lock()
		if p.seen == nil {
			p.seen = map[int]int{}
		}
		p.seen[timestep]++
		p.mu.Unlock()
		ctx.Output(timestep)
	}
	ctx.VoteToHalt()
}

func TestStartTimestepWindowsSequential(t *testing.T) {
	f := newFixture(t, 6, 2)
	prog := &windowProgram{}
	job := f.job(prog, SequentiallyDependent)
	job.StartTimestep = 2
	job.Timesteps = 3
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 5 {
		t.Fatalf("TimestepsRun = %d, want 5 (through timestep 4)", res.TimestepsRun)
	}
	nSG := subgraph.TotalSubgraphs(f.parts)
	for ts := 0; ts < 6; ts++ {
		want := 0
		if ts >= 2 && ts < 5 {
			want = nSG
		}
		if prog.seen[ts] != want {
			t.Errorf("timestep %d executed %d times, want %d", ts, prog.seen[ts], want)
		}
	}
	for _, o := range res.Outputs {
		if o.Timestep < 2 || o.Timestep >= 5 {
			t.Errorf("output carries timestep %d outside window [2,5)", o.Timestep)
		}
	}
}

func TestStartTimestepWindowsTemporallyParallel(t *testing.T) {
	f := newFixture(t, 6, 2)
	prog := &windowProgram{}
	job := f.job(prog, Independent)
	job.StartTimestep = 3
	job.TemporalParallelism = 2
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 6 {
		t.Fatalf("TimestepsRun = %d, want 6", res.TimestepsRun)
	}
	nSG := subgraph.TotalSubgraphs(f.parts)
	for ts := 0; ts < 6; ts++ {
		want := 0
		if ts >= 3 {
			want = nSG
		}
		if prog.seen[ts] != want {
			t.Errorf("timestep %d executed %d times, want %d", ts, prog.seen[ts], want)
		}
	}
}

func TestStartTimestepValidation(t *testing.T) {
	f := newFixture(t, 4, 2)
	job := f.job(&windowProgram{}, SequentiallyDependent)
	job.StartTimestep = -1
	if _, err := Run(job); err == nil {
		t.Error("negative StartTimestep accepted")
	}
	job.StartTimestep = 4 // == Source.Timesteps()
	if _, err := Run(job); err == nil {
		t.Error("StartTimestep past the source accepted")
	}
}
