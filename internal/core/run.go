package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// defaultTracer receives runner and engine spans for jobs that do not set
// their own Tracer. CLI entry points install it once at startup.
var defaultTracer *obs.Tracer

// SetDefaultTracer installs the process-wide tracer used when Job.Tracer is
// nil. Not safe to call concurrently with running jobs.
func SetDefaultTracer(t *obs.Tracer) { defaultTracer = t }

// InstanceSource supplies graph instances by timestep. The in-memory
// MemorySource and the GoFS lazy loader both satisfy it.
type InstanceSource interface {
	// Timesteps returns the number of instances available.
	Timesteps() int
	// Load returns the instance at a timestep.
	Load(timestep int) (*graph.Instance, error)
}

// MemorySource adapts an in-memory collection to InstanceSource.
type MemorySource struct{ C *graph.Collection }

// Timesteps implements InstanceSource.
func (m MemorySource) Timesteps() int { return m.C.NumInstances() }

// Load implements InstanceSource.
func (m MemorySource) Load(timestep int) (*graph.Instance, error) {
	if timestep < 0 || timestep >= m.C.NumInstances() {
		return nil, fmt.Errorf("core: timestep %d outside [0,%d)", timestep, m.C.NumInstances())
	}
	return m.C.Instance(timestep), nil
}

// Job describes a TI-BSP application run.
type Job struct {
	// Template is the time-invariant topology.
	Template *graph.Template
	// Parts is the partitioned, subgraph-annotated view from
	// subgraph.Build.
	Parts []*subgraph.PartitionData
	// Source supplies instances.
	Source InstanceSource
	// Program is the user logic.
	Program Program
	// Merger runs the Merge phase (required for EventuallyDependent).
	Merger Merger
	// Pattern selects the design pattern.
	Pattern Pattern
	// Timesteps bounds the run; 0 means all instances in Source (from
	// StartTimestep on).
	Timesteps int
	// StartTimestep offsets the run window: execution covers source
	// timesteps [StartTimestep, StartTimestep+Timesteps), preserving
	// absolute timestep indices in Compute calls, Outputs, and metrics.
	// It is the entry point for windowed and departure-time queries
	// (internal/serve) that sweep a sub-range of a resident time-series
	// without re-wrapping the source. Incompatible with Resume.
	StartTimestep int
	// WhileMode stops the timestep loop early once all subgraphs
	// VoteToHaltTimestep in a timestep and emit no temporal messages
	// (the paper's While-loop semantics). Only for SequentiallyDependent.
	WhileMode bool
	// Incremental enables delta-driven timestep scheduling: subgraphs whose
	// instance data a timestep's delta does not touch (and whose
	// out-neighbors' it does not touch, and that no cross-subgraph temporal
	// message addresses) seed the timestep from their converged previous
	// state and stay out of the initial frontier. Requires the sequentially
	// dependent pattern, a Source implementing DeltaSource, and a Program
	// implementing IncrementalProgram; incompatible with WhileMode and
	// distributed execution. On full-format datasets (Delta returns nil)
	// every subgraph runs, matching non-incremental behavior exactly.
	Incremental bool
	// Initial messages: delivered at superstep 0 of timestep 0 for
	// sequentially dependent runs, and at superstep 0 of every timestep
	// for independent / eventually dependent runs (the paper's
	// "application input messages").
	Initial []bsp.Message
	// Engine configuration (cores per host, superstep bound).
	Config bsp.Config
	// Recorder, if non-nil, receives per-timestep metrics.
	Recorder *metrics.Recorder
	// Tracer, if non-nil, receives hierarchical spans (timestep → load →
	// superstep phases → per-subgraph compute). When nil, the process-wide
	// tracer installed via SetDefaultTracer (if any) is used. A nil or
	// disabled tracer costs one predicted branch per instrumentation site.
	Tracer *obs.Tracer
	// Watchdog, if non-nil, monitors superstep progress on sequentially
	// dependent runs: the engine brackets each superstep and every
	// partition worker reports its barrier arrival, so a Compute call that
	// never returns is named (one structured warning per stalled
	// partition) instead of hanging silently. Parties are partitions; in a
	// distributed run attach the watchdog to the cluster node instead,
	// where parties are ranks.
	Watchdog *obs.Watchdog
	// ForceGCEvery triggers a synchronized runtime.GC() every N timesteps,
	// mirroring the paper's synchronized System.gc() engineering (§IV-D);
	// 0 disables.
	ForceGCEvery int
	// PrefetchDepth enables pipelined instance prefetching: while timestep
	// t computes, a background goroutine decodes up to PrefetchDepth
	// instances ahead, overlapping GoFS pack loads with compute. 0
	// disables (every Load is paid inline, the paper's behavior). The
	// wrapper also serializes Source access, so non-thread-safe sources
	// (gofs.Loader) become safe under temporal parallelism.
	PrefetchDepth int
	// TrackAllocs records per-timestep heap-allocation deltas
	// (runtime.MemStats Mallocs/TotalAlloc) into the Recorder, quantifying
	// the engine's allocation discipline alongside the time decomposition.
	// It reads MemStats once per timestep, which briefly stops the world;
	// leave it off outside perf experiments. Requires a Recorder.
	TrackAllocs bool
	// TemporalParallelism is how many instances run concurrently for the
	// Independent and EventuallyDependent patterns (≤1 means sequential,
	// which is what the paper's GoFFish implementation does).
	TemporalParallelism int
	// HaltCondition, if set, is evaluated on the runner after each
	// sequentially dependent timestep — a Master.Compute-style global
	// check over that timestep's metrics record (counters are collected
	// even when no Recorder is configured). Returning true ends the run.
	// In a distributed run the record covers only this host's partitions.
	HaltCondition func(timestep int, rec *metrics.TimestepRecord) bool

	// Checkpointing (sequentially dependent pattern only). CheckpointDir,
	// when non-empty, persists a checkpoint after each timestep's temporal
	// barrier (see internal/gofs checkpoint files); the Program must then
	// implement Checkpointer. CheckpointEvery thins the cadence to every Nth
	// boundary (<=1 means every timestep). CheckpointRank names this
	// process's files (the cluster rank; 0 standalone). Resume restores the
	// newest usable checkpoint before running; ResumeConsensus, when set, is
	// the cluster-wide agreement hook (cluster.Node.AgreeResume) mapping this
	// rank's local candidate timestep to the one all ranks resume from.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointRank  int
	Resume          bool
	ResumeConsensus func(local int) (int, error)

	// Distributed execution (all three set together; see internal/cluster).
	// Remote is handed to the BSP engine for cross-host superstep
	// messaging; Coordinator exchanges temporal messages and halt votes
	// between timesteps; GlobalSubgraphs is the subgraph count across all
	// hosts (WhileMode consensus). Parts then holds only this host's
	// partitions. Only the SequentiallyDependent pattern is supported
	// distributed.
	Remote          bsp.Remote
	Coordinator     Coordinator
	GlobalSubgraphs int
}

// Coordinator realizes the between-timesteps synchronization of a
// distributed sequentially dependent run.
type Coordinator interface {
	// ExchangeTemporal routes the host's outgoing temporal messages (both
	// locally- and remotely-addressed; implementations deliver local ones
	// back directly), blocks until every host has contributed, and returns
	// the messages addressed to this host plus the global halt-vote and
	// temporal-message totals.
	ExchangeTemporal(timestep int, outgoing []bsp.Message, haltVotes int) (incoming []bsp.Message, totalVotes int, totalMsgs int, err error)
}

// Result carries a completed run's outputs.
type Result struct {
	// TimestepsRun is 1 + the highest timestep executed. For runs starting
	// at timestep 0 (StartTimestep unset) it equals the number of timesteps
	// executed.
	TimestepsRun int
	// Supersteps is the total superstep count across timesteps.
	Supersteps int
	// Outputs are all records emitted via Output, in (timestep, subgraph)
	// order. Merge outputs carry Timestep = -1 and sort last.
	Outputs []Output
	// SimTime is the simulated cluster time of the whole run (see
	// metrics.TimestepRecord.SimWall).
	SimTime time.Duration
	// HaltedEarly reports that WhileMode ended the loop before the
	// timestep bound.
	HaltedEarly bool
	// SubgraphsSkipped totals, over all timesteps, the subgraphs the
	// incremental scheduler kept out of the initial frontier (always zero
	// unless Job.Incremental).
	SubgraphsSkipped int
}

// Run executes a TI-BSP job.
func Run(job *Job) (*Result, error) { return RunWithEngine(job, nil) }

// RunWithEngine executes a TI-BSP job over a pre-built BSP engine. It
// exists for distributed runs (the transport node must be bound to the
// engine before execution); engine may be nil, in which case one is built
// from the job. Only the sequentially dependent pattern accepts a
// pre-built engine.
func RunWithEngine(job *Job, engine *bsp.Engine) (*Result, error) {
	if job.Template == nil || len(job.Parts) == 0 {
		return nil, fmt.Errorf("core: job needs a template and partitions")
	}
	if job.Program == nil {
		return nil, fmt.Errorf("core: job needs a Program")
	}
	if job.Source == nil {
		return nil, fmt.Errorf("core: job needs an InstanceSource")
	}
	if job.Pattern == EventuallyDependent && job.Merger == nil {
		return nil, fmt.Errorf("core: eventually dependent pattern needs a Merger")
	}
	if job.Source.Timesteps() == 0 {
		return nil, fmt.Errorf("core: source has no instances")
	}
	if job.StartTimestep < 0 || job.StartTimestep >= job.Source.Timesteps() {
		return nil, fmt.Errorf("core: StartTimestep %d outside source's [0,%d)", job.StartTimestep, job.Source.Timesteps())
	}
	if job.Resume && job.StartTimestep != 0 {
		return nil, fmt.Errorf("core: Resume and StartTimestep are incompatible")
	}
	avail := job.Source.Timesteps() - job.StartTimestep
	steps := job.Timesteps
	if steps <= 0 || steps > avail {
		steps = avail
	}
	if (job.Remote == nil) != (job.Coordinator == nil) {
		return nil, fmt.Errorf("core: distributed jobs need both Remote and Coordinator")
	}
	if job.Coordinator != nil && job.Pattern != SequentiallyDependent {
		return nil, fmt.Errorf("core: distributed execution supports the sequentially dependent pattern only")
	}
	if job.CheckpointDir != "" {
		if job.Pattern != SequentiallyDependent {
			return nil, fmt.Errorf("core: checkpointing supports the sequentially dependent pattern only")
		}
		if _, ok := job.Program.(Checkpointer); !ok {
			return nil, fmt.Errorf("core: checkpointing needs a Program implementing Checkpointer")
		}
	}
	if job.Resume && job.CheckpointDir == "" {
		return nil, fmt.Errorf("core: Resume needs a CheckpointDir")
	}
	if job.Incremental {
		if job.Pattern != SequentiallyDependent {
			return nil, fmt.Errorf("core: Incremental supports the sequentially dependent pattern only")
		}
		if job.WhileMode {
			return nil, fmt.Errorf("core: Incremental and WhileMode are incompatible (skipped subgraphs cast no halt votes)")
		}
		if job.Remote != nil || job.Coordinator != nil {
			return nil, fmt.Errorf("core: Incremental is not supported in distributed runs")
		}
		if _, ok := job.Source.(DeltaSource); !ok {
			return nil, fmt.Errorf("core: Incremental needs a Source implementing DeltaSource (a delta-encoded GoFS store)")
		}
		if _, ok := job.Program.(IncrementalProgram); !ok {
			return nil, fmt.Errorf("core: Incremental needs a Program implementing IncrementalProgram")
		}
	}
	switch job.Pattern {
	case SequentiallyDependent:
		return runSequential(job, steps, engine)
	case Independent, EventuallyDependent:
		if engine != nil {
			return nil, fmt.Errorf("core: pre-built engines are only supported for the sequentially dependent pattern")
		}
		return runTemporallyParallel(job, steps)
	default:
		return nil, fmt.Errorf("core: unknown pattern %d", job.Pattern)
	}
}

// timestepProgram adapts the user Program to the engine for one timestep.
type timestepProgram struct {
	job      *Job
	instance *graph.Instance
	timestep int
}

func (p *timestepProgram) Compute(bctx *bsp.Context, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
	ctx := &Context{
		bspCtx:   bctx,
		template: p.job.Template,
		instance: p.instance,
		timestep: p.timestep,
		sid:      sg.SID,
	}
	p.job.Program.Compute(ctx, sg, p.timestep, superstep, msgs)
}

// tracer resolves the job's tracer: its own, else the process default.
func (job *Job) tracer() *obs.Tracer {
	if job.Tracer != nil {
		return job.Tracer
	}
	return defaultTracer
}

// runSequential implements the sequentially dependent pattern: one BSP per
// instance, in order, threading temporal messages between them.
func runSequential(job *Job, steps int, engine *bsp.Engine) (*Result, error) {
	if engine == nil {
		engine = bsp.NewEngineRemote(job.Parts, job.Config, job.Remote)
	}
	tracer := job.tracer()
	engine.SetTracer(tracer)
	if job.Watchdog != nil && job.Remote == nil {
		// Distributed runs watch rank arrivals at the cluster node; the
		// engine-level hooks would double-report with partition parties.
		engine.SetWatchdog(job.Watchdog)
	}
	source := job.Source
	// Recognize a source the caller already wrapped, so its overlap stats
	// still flow into the per-timestep records.
	prefetch, _ := source.(*PrefetchSource)
	if prefetch == nil && job.PrefetchDepth > 0 {
		prefetch = NewPrefetchSource(source, job.PrefetchDepth)
		defer prefetch.Close()
		source = prefetch
	}
	res := &Result{}
	var inc *incrementalState
	if job.Incremental {
		// The wrapped source is the one Load goes through, so its Delta is
		// the one in sync with the loads (PrefetchSource forwards deltas
		// from its pipeline).
		ds, ok := source.(DeltaSource)
		if !ok {
			return nil, fmt.Errorf("core: Incremental needs a Source implementing DeltaSource")
		}
		var err error
		if inc, err = newIncrementalState(job, ds); err != nil {
			return nil, err
		}
	}
	pending := append([]bsp.Message(nil), job.Initial...)
	sgCount := subgraph.TotalSubgraphs(job.Parts)
	if job.GlobalSubgraphs > 0 {
		sgCount = job.GlobalSubgraphs
	}

	// A private recorder keeps counters flowing to HaltCondition even when
	// the caller did not ask for metrics.
	privateRec := job.Recorder
	if privateRec == nil && job.HaltCondition != nil {
		privateRec = metrics.NewRecorder(len(job.Parts))
	}

	var memBefore runtime.MemStats
	trackAllocs := job.TrackAllocs && privateRec != nil
	if trackAllocs {
		runtime.ReadMemStats(&memBefore)
	}

	startTS := job.StartTimestep
	end := job.StartTimestep + steps
	if job.Resume {
		var err error
		if startTS, err = resumeFromCheckpoint(job, &pending, res); err != nil {
			return nil, err
		}
	}

	for ts := startTS; ts < end; ts++ {
		var rec *metrics.TimestepRecord
		if privateRec != nil {
			rec = privateRec.BeginTimestep(ts)
		}
		engine.SetTraceTimestep(ts)
		wallStart := time.Now()

		loadStart := time.Now()
		ins, err := source.Load(ts)
		if err != nil {
			return nil, fmt.Errorf("core: loading instance %d: %w", ts, err)
		}
		loadDur := time.Since(loadStart)
		if tracer.Active() {
			tracer.RecordSpan(obs.SpanLoad, -1, int32(ts), -1, 0, loadStart, loadDur)
		}
		if rec != nil {
			rec.LoadFetch = loadDur
			if prefetch != nil {
				_, fetch, hit := prefetch.LastLoadStats()
				rec.LoadFetch = fetch
				rec.Prefetched = hit
				if overlap := fetch - loadDur; overlap > 0 {
					rec.LoadOverlapped = overlap
				}
			}
		}

		if inc != nil {
			// The first executed timestep always runs in full: there is no
			// converged previous state to reuse. Afterwards the delta leading
			// into ts decides who can sit out, and withheld self-addressed
			// temporal messages are dropped from pending.
			var skip []subgraph.ID
			if ts > startTS {
				skip, pending = inc.plan(inc.src.Delta(ts), pending)
			}
			engine.SetInitialHalted(skip)
			if rec != nil {
				rec.SubgraphsSkipped = len(skip)
			}
			res.SubgraphsSkipped += len(skip)
		}

		prog := &timestepProgram{job: job, instance: ins, timestep: ts}
		bres, err := engine.Run(prog, pending, rec)
		if err != nil {
			return nil, fmt.Errorf("core: timestep %d: %w", ts, err)
		}
		res.Supersteps += bres.Supersteps
		// Each simulated host loads only its own slices: charge a 1/K share
		// of the measured (serial) load time to the cluster clock.
		simLoad := loadDur / time.Duration(len(job.Parts))
		res.SimTime += bres.SimTime + simLoad
		if rec != nil {
			rec.SimWall += simLoad
		}

		// EndOfTimestep hook.
		endExtras, err := runEndOfTimestep(job, ins, ts, rec)
		if err != nil {
			return nil, err
		}

		// Collect outputs.
		for _, ex := range bres.Extras[chanOutput] {
			res.Outputs = append(res.Outputs, Output{Timestep: ts, From: ex.From, Data: ex.Data})
		}
		for _, ex := range endExtras.out {
			res.Outputs = append(res.Outputs, Output{Timestep: ts, From: ex.From, Data: ex.Data})
		}

		// Assemble next timestep's initial messages from temporal sends.
		pending = pending[:0]
		var seq int64
		addTemporal := func(list []bsp.Extra) {
			for _, ex := range list {
				pending = append(pending, bsp.Message{From: ex.From, To: ex.To, Seq: seq, Payload: ex.Data})
				seq++
			}
		}
		addTemporal(bres.Extras[chanNext])
		addTemporal(bres.Extras[chanNextTo])
		addTemporal(endExtras.next)
		addTemporal(endExtras.nextTo)

		// Early termination under While semantics.
		halts := len(bres.Extras[chanHaltStep]) + endExtras.haltVotes
		globalPending := len(pending)
		if job.Coordinator != nil {
			exchStart := time.Now()
			incoming, votes, msgs, err := job.Coordinator.ExchangeTemporal(ts, pending, halts)
			if err != nil {
				return nil, fmt.Errorf("core: timestep %d temporal exchange: %w", ts, err)
			}
			if tracer.Active() {
				tracer.RecordSpan(obs.SpanExchange, -1, int32(ts), -1, 0, exchStart, time.Since(exchStart))
			}
			pending = incoming
			halts = votes
			globalPending = msgs
		}
		res.TimestepsRun = ts + 1

		// Timestep-boundary checkpoint: the temporal barrier just completed,
		// so `pending` is exactly what seeds ts+1 and no superstep state is
		// in flight — the cheapest consistent cut this runtime has.
		if job.CheckpointDir != "" && (job.CheckpointEvery <= 1 || (ts+1)%job.CheckpointEvery == 0) {
			ckptStart := time.Now()
			if err := checkpointTimestep(job, ts, pending, res); err != nil {
				return nil, err
			}
			if rec != nil {
				rec.Checkpoint = time.Since(ckptStart)
			}
		}

		if job.ForceGCEvery > 0 && ts > 0 && ts%job.ForceGCEvery == 0 {
			// The paper's synchronized System.gc(): every host pauses
			// together, so the full pause lands on the cluster clock.
			gcStart := time.Now()
			runtime.GC()
			gcDur := time.Since(gcStart)
			res.SimTime += gcDur
			if rec != nil {
				rec.SimWall += gcDur
			}
		}
		if rec != nil {
			rec.Load = loadDur
			rec.Wall = time.Since(wallStart)
		}
		if tracer.Active() {
			tracer.RecordSpan(obs.SpanTimestep, -1, int32(ts), -1, 0, wallStart, time.Since(wallStart))
		}
		if trackAllocs && rec != nil {
			var memAfter runtime.MemStats
			runtime.ReadMemStats(&memAfter)
			rec.Mallocs = memAfter.Mallocs - memBefore.Mallocs
			rec.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
			memBefore = memAfter
		}

		if job.WhileMode && halts >= sgCount && globalPending == 0 {
			res.HaltedEarly = true
			break
		}
		if job.HaltCondition != nil && job.HaltCondition(ts, rec) {
			res.HaltedEarly = true
			break
		}
	}
	return res, nil
}

// endExtrasResult aggregates EndOfTimestep emissions across subgraphs.
type endExtrasResult struct {
	next      []bsp.Extra
	nextTo    []bsp.Extra
	merge     []bsp.Extra
	out       []bsp.Extra
	haltVotes int
}

// runEndOfTimestep invokes the optional EndOfTimestep hook on every
// subgraph, in parallel per partition with bounded cores, and aggregates
// emissions deterministically (partition, subgraph) order.
func runEndOfTimestep(job *Job, ins *graph.Instance, ts int, rec *metrics.TimestepRecord) (*endExtrasResult, error) {
	agg := &endExtrasResult{}
	ender, ok := job.Program.(EndOfTimestepper)
	if !ok {
		return agg, nil
	}
	// One context per subgraph, filled concurrently, merged in order.
	type slot struct {
		ctx *EndContext
	}
	var slots [][]slot
	var wg sync.WaitGroup
	cores := job.Config.CoresPerHost
	if cores <= 0 {
		cores = 2
	}
	var panicErr error
	var panicMu sync.Mutex
	for _, pd := range job.Parts {
		ss := make([]slot, len(pd.Subgraphs))
		slots = append(slots, ss)
		wg.Add(1)
		go func(pd *subgraph.PartitionData, ss []slot) {
			defer wg.Done()
			sem := make(chan struct{}, cores)
			var cwg sync.WaitGroup
			for i := range pd.Subgraphs {
				cwg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicErr == nil {
								panicErr = fmt.Errorf("core: EndOfTimestep panic on %v: %v", pd.Subgraphs[i].SID, r)
							}
							panicMu.Unlock()
						}
						<-sem
						cwg.Done()
					}()
					ctx := &EndContext{
						template: job.Template,
						instance: ins,
						timestep: ts,
						sid:      pd.Subgraphs[i].SID,
					}
					if rec != nil {
						pidSlot := &rec.Parts[pd.PID]
						ctx.counters = func(name string, delta int64) {
							panicMu.Lock()
							pidSlot.AddCounter(name, delta)
							panicMu.Unlock()
						}
					}
					ender.EndOfTimestep(ctx, pd.Subgraphs[i], ts)
					ss[i] = slot{ctx: ctx}
				}(i)
			}
			cwg.Wait()
		}(pd, ss)
	}
	wg.Wait()
	if panicErr != nil {
		return nil, panicErr
	}
	for _, ss := range slots {
		for _, s := range ss {
			if s.ctx == nil {
				continue
			}
			agg.next = append(agg.next, s.ctx.next...)
			agg.nextTo = append(agg.nextTo, s.ctx.nextTo...)
			agg.merge = append(agg.merge, s.ctx.merge...)
			agg.out = append(agg.out, s.ctx.out...)
			if s.ctx.haltTS {
				agg.haltVotes++
			}
		}
	}
	return agg, nil
}

// runTemporallyParallel implements the independent and eventually dependent
// patterns. Timesteps execute in isolation — optionally several at a time —
// and, for EventuallyDependent, a Merge BSP runs at the end.
func runTemporallyParallel(job *Job, steps int) (*Result, error) {
	tracer := job.tracer()
	start := job.StartTimestep
	end := start + steps
	par := job.TemporalParallelism
	if par < 1 {
		par = 1
	}
	if par > steps {
		par = steps
	}
	source := job.Source
	if job.PrefetchDepth > 0 {
		// The pipeline shines on sequential access, but it also serializes
		// the underlying source, making non-thread-safe loaders usable
		// under temporal parallelism; out-of-order requests restart it.
		prefetch := NewPrefetchSource(source, job.PrefetchDepth)
		defer prefetch.Close()
		source = prefetch
	}

	type stepResult struct {
		outputs []Output
		merge   []bsp.Extra
		sups    int
		sim     time.Duration
		err     error
	}
	results := make([]stepResult, steps)

	// Each concurrent slot gets its own engine (its own inboxes and halt
	// flags) over the shared, read-only partition data.
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for ts := start; ts < end; ts++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ts int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			var rec *metrics.TimestepRecord
			if job.Recorder != nil {
				rec = job.Recorder.BeginTimestep(ts)
			}
			wallStart := time.Now()
			loadStart := time.Now()
			ins, err := source.Load(ts)
			if err != nil {
				results[ts-start].err = fmt.Errorf("core: loading instance %d: %w", ts, err)
				return
			}
			loadDur := time.Since(loadStart)
			if tracer.Active() {
				tracer.RecordSpan(obs.SpanLoad, -1, int32(ts), -1, 0, loadStart, loadDur)
			}
			engine := bsp.NewEngine(job.Parts, job.Config)
			engine.SetTracer(tracer)
			engine.SetTraceTimestep(ts)
			prog := &timestepProgram{job: job, instance: ins, timestep: ts}
			initial := make([]bsp.Message, len(job.Initial))
			copy(initial, job.Initial)
			bres, err := engine.Run(prog, initial, rec)
			if err != nil {
				results[ts-start].err = fmt.Errorf("core: timestep %d: %w", ts, err)
				return
			}
			endExtras, err := runEndOfTimestep(job, ins, ts, rec)
			if err != nil {
				results[ts-start].err = err
				return
			}
			sr := &results[ts-start]
			sr.sups = bres.Supersteps
			sr.sim = bres.SimTime + loadDur/time.Duration(len(job.Parts))
			if rec != nil {
				rec.SimWall += loadDur / time.Duration(len(job.Parts))
			}
			for _, ex := range bres.Extras[chanOutput] {
				sr.outputs = append(sr.outputs, Output{Timestep: ts, From: ex.From, Data: ex.Data})
			}
			for _, ex := range endExtras.out {
				sr.outputs = append(sr.outputs, Output{Timestep: ts, From: ex.From, Data: ex.Data})
			}
			sr.merge = append(sr.merge, bres.Extras[chanMerge]...)
			sr.merge = append(sr.merge, endExtras.merge...)
			if rec != nil {
				rec.Load = loadDur
				rec.Wall = time.Since(wallStart)
			}
			if tracer.Active() {
				tracer.RecordSpan(obs.SpanTimestep, -1, int32(ts), -1, 0, wallStart, time.Since(wallStart))
			}
		}(ts)
	}
	wg.Wait()

	res := &Result{TimestepsRun: end}
	var mergeMsgs []bsp.Message
	var seq int64
	for i := 0; i < steps; i++ {
		if results[i].err != nil {
			return nil, results[i].err
		}
		res.Supersteps += results[i].sups
		res.SimTime += results[i].sim
		res.Outputs = append(res.Outputs, results[i].outputs...)
		for _, ex := range results[i].merge {
			mergeMsgs = append(mergeMsgs, bsp.Message{From: ex.From, To: ex.To, Seq: seq, Payload: ex.Data})
			seq++
		}
	}

	if job.Pattern == EventuallyDependent {
		engine := bsp.NewEngine(job.Parts, job.Config)
		engine.SetTracer(tracer)
		engine.SetTraceTimestep(end) // merge phase traced as one more "timestep"
		var rec *metrics.TimestepRecord
		if job.Recorder != nil {
			rec = job.Recorder.BeginTimestep(end) // merge phase recorded as one more "timestep"
		}
		wallStart := time.Now()
		mprog := bsp.ComputeFunc(func(bctx *bsp.Context, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
			mctx := &MergeContext{bspCtx: bctx, template: job.Template, sid: sg.SID}
			job.Merger.Merge(mctx, sg, superstep, msgs)
		})
		bres, err := engine.Run(mprog, mergeMsgs, rec)
		if err != nil {
			return nil, fmt.Errorf("core: merge phase: %w", err)
		}
		res.Supersteps += bres.Supersteps
		res.SimTime += bres.SimTime
		for _, ex := range bres.Extras[chanOutput] {
			res.Outputs = append(res.Outputs, Output{Timestep: -1, From: ex.From, Data: ex.Data})
		}
		if rec != nil {
			rec.Wall = time.Since(wallStart)
		}
	}
	return res, nil
}
