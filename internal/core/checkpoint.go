package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gofs"
)

// Checkpointer is implemented by Programs whose state outlives a timestep.
// The TI-BSP runner checkpoints at the timestep boundary — after the
// temporal barrier, when no superstep is in flight and the only live state
// is the pending temporal messages plus whatever the program accumulates
// across timesteps (TDSP's finalized arrivals, meme tracking's colored-at
// table). CheckpointState serializes that cross-timestep state;
// RestoreCheckpoint reinstates it before a resumed run's first timestep.
// Per-timestep state (labels rebuilt at superstep 0) needs no persistence.
type Checkpointer interface {
	CheckpointState() ([]byte, error)
	RestoreCheckpoint(data []byte) error
}

// resumeState is the runner's checkpoint payload: everything needed to
// restart the timestep loop at Timestep+1 and still produce the same final
// Result as an uninterrupted run.
type resumeState struct {
	// Timestep is the last completed timestep this checkpoint covers.
	Timestep int
	// Pending are the temporal messages addressed to Timestep+1 (already
	// exchanged: in a distributed run these are the post-routing incoming
	// messages, so a resumed rank needs no peer traffic to restart).
	Pending []bsp.Message
	// Prog is the program's Checkpointer payload.
	Prog []byte
	// Result accumulators as of the boundary.
	Supersteps   int
	SimTimeNanos int64
	TimestepsRun int
	Outputs      []Output
}

// checkpointTimestep persists one timestep boundary. Called after the
// temporal exchange, so pending holds exactly what timestep ts+1 will be
// seeded with.
func checkpointTimestep(job *Job, ts int, pending []bsp.Message, res *Result) error {
	cp := job.Program.(Checkpointer) // validated in RunWithEngine
	progState, err := cp.CheckpointState()
	if err != nil {
		return fmt.Errorf("core: timestep %d program checkpoint: %w", ts, err)
	}
	st := resumeState{
		Timestep:     ts,
		Pending:      append([]bsp.Message(nil), pending...),
		Prog:         progState,
		Supersteps:   res.Supersteps,
		SimTimeNanos: int64(res.SimTime),
		TimestepsRun: res.TimestepsRun,
		Outputs:      res.Outputs,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("core: timestep %d checkpoint encode: %w", ts, err)
	}
	if err := gofs.WriteCheckpoint(job.CheckpointDir, job.CheckpointRank, ts, buf.Bytes()); err != nil {
		return fmt.Errorf("core: timestep %d: %w", ts, err)
	}
	return nil
}

// resumeFromCheckpoint finds the run's resume point and reinstates it,
// returning the timestep the loop should start at (0 when no usable
// checkpoint exists — a fresh start). The local candidate is the newest
// checkpoint that loads cleanly (corrupt files fall back to the previous
// one); with a ResumeConsensus — the distributed case — every rank proposes
// its candidate and all adopt the minimum, then load *that* timestep's file,
// which the retention window guarantees each rank still holds.
func resumeFromCheckpoint(job *Job, pending *[]bsp.Message, res *Result) (int, error) {
	local, payload, err := gofs.LatestCheckpoint(job.CheckpointDir, job.CheckpointRank)
	if err != nil {
		return 0, fmt.Errorf("core: resume: %w", err)
	}
	agreed := local
	if job.ResumeConsensus != nil {
		agreed, err = job.ResumeConsensus(local)
		if err != nil {
			return 0, fmt.Errorf("core: resume consensus: %w", err)
		}
		if agreed > local {
			return 0, fmt.Errorf("core: resume consensus agreed on timestep %d but this rank only has %d", agreed, local)
		}
	}
	if agreed < 0 {
		return 0, nil // some rank (or this one) has nothing: fresh start
	}
	if agreed != local {
		if payload, err = gofs.ReadCheckpoint(job.CheckpointDir, job.CheckpointRank, agreed); err != nil {
			return 0, fmt.Errorf("core: resume at agreed timestep %d: %w", agreed, err)
		}
	}
	var st resumeState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return 0, fmt.Errorf("core: resume decode (timestep %d): %w", agreed, err)
	}
	if st.Timestep != agreed {
		return 0, fmt.Errorf("core: resume payload covers timestep %d, expected %d", st.Timestep, agreed)
	}
	if err := job.Program.(Checkpointer).RestoreCheckpoint(st.Prog); err != nil {
		return 0, fmt.Errorf("core: resume program restore (timestep %d): %w", agreed, err)
	}
	*pending = append((*pending)[:0], st.Pending...)
	res.Supersteps = st.Supersteps
	res.SimTime = time.Duration(st.SimTimeNanos)
	res.TimestepsRun = st.TimestepsRun
	res.Outputs = st.Outputs
	return agreed + 1, nil
}
