package core

import (
	"errors"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/subgraph"
)

// panickyEnd panics in EndOfTimestep.
type panickyEnd struct{}

func (panickyEnd) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	ctx.VoteToHalt()
}

func (panickyEnd) EndOfTimestep(ctx *EndContext, sg *subgraph.Subgraph, timestep int) {
	panic("end boom")
}

func TestEndOfTimestepPanicSurfaces(t *testing.T) {
	f := newFixture(t, 2, 2)
	if _, err := Run(f.job(panickyEnd{}, SequentiallyDependent)); err == nil {
		t.Fatal("EndOfTimestep panic not surfaced")
	}
}

// failingSource errors on a specific timestep.
type failingSource struct {
	inner InstanceSource
	bad   int
}

func (f failingSource) Timesteps() int { return f.inner.Timesteps() }
func (f failingSource) Load(ts int) (*graph.Instance, error) {
	if ts == f.bad {
		return nil, errors.New("disk gone")
	}
	return f.inner.Load(ts)
}

func TestLoadFailureMidRunSurfaces(t *testing.T) {
	f := newFixture(t, 5, 2)
	prog := &countingProgram{}
	job := f.job(prog, SequentiallyDependent)
	job.Source = failingSource{inner: MemorySource{C: f.c}, bad: 3}
	_, err := Run(job)
	if err == nil {
		t.Fatal("load failure not surfaced")
	}
}

func TestLoadFailureIndependentSurfaces(t *testing.T) {
	f := newFixture(t, 5, 2)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		ctx.VoteToHalt()
	})
	job := f.job(prog, Independent)
	job.Source = failingSource{inner: MemorySource{C: f.c}, bad: 2}
	job.TemporalParallelism = 3
	if _, err := Run(job); err == nil {
		t.Fatal("load failure not surfaced under temporal parallelism")
	}
}

func TestHaltConditionWithoutRecorder(t *testing.T) {
	f := newFixture(t, 6, 2)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		ctx.AddCounter("work", 1)
		ctx.VoteToHalt()
	})
	job := f.job(prog, SequentiallyDependent)
	// No Recorder configured: the runner must still collect counters
	// privately for the halt condition.
	var seen int64
	job.HaltCondition = func(ts int, rec *metrics.TimestepRecord) bool {
		if rec == nil {
			t.Fatal("halt condition got nil record without a Recorder")
		}
		for p := range rec.Parts {
			seen += rec.Parts[p].Counters["work"]
		}
		return ts >= 2
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedEarly || res.TimestepsRun != 3 {
		t.Errorf("haltedEarly=%v timesteps=%d, want early at 3", res.HaltedEarly, res.TimestepsRun)
	}
	if seen == 0 {
		t.Error("no counters flowed to the halt condition")
	}
}

func TestForceGCEveryRuns(t *testing.T) {
	f := newFixture(t, 6, 2)
	prog := &countingProgram{}
	job := f.job(prog, SequentiallyDependent)
	job.ForceGCEvery = 2
	rec := metrics.NewRecorder(2)
	job.Recorder = rec
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	// GC'd timesteps carry the (synchronized) pause on the cluster clock:
	// they should generally be slower than their neighbors, but at minimum
	// the run completes and records all steps.
	if rec.NumTimesteps() != 6 {
		t.Fatalf("recorded %d timesteps", rec.NumTimesteps())
	}
}

func TestDistributedValidation(t *testing.T) {
	f := newFixture(t, 2, 2)
	job := f.job(&countingProgram{}, SequentiallyDependent)
	job.Coordinator = nopCoordinator{}
	if _, err := Run(job); err == nil {
		t.Error("Coordinator without Remote accepted")
	}
	job = f.job(&countingProgram{}, Independent)
	job.Coordinator = nopCoordinator{}
	job.Remote = nopRemote{}
	if _, err := Run(job); err == nil {
		t.Error("distributed independent pattern accepted")
	}
	job = f.job(&countingProgram{}, Independent)
	if _, err := RunWithEngine(job, bsp.NewEngine(f.parts, bsp.Config{})); err == nil {
		t.Error("pre-built engine accepted for independent pattern")
	}
}

type nopCoordinator struct{}

func (nopCoordinator) ExchangeTemporal(ts int, out []bsp.Message, votes int) ([]bsp.Message, int, int, error) {
	return out, votes, len(out), nil
}

type nopRemote struct{}

func (nopRemote) Send(int, []bsp.Message) error { return nil }
func (nopRemote) Barrier(_ int, l bsp.BarrierStats) (bsp.BarrierStats, error) {
	return l, nil
}
