package core

import (
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/subgraph"
)

// contextProbe exercises every Context accessor and messaging primitive.
type contextProbe struct {
	mu      sync.Mutex
	samples []string
}

func (p *contextProbe) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	p.mu.Lock()
	if ctx.Timestep() != timestep {
		p.samples = append(p.samples, "timestep mismatch")
	}
	if ctx.Superstep() != superstep {
		p.samples = append(p.samples, "superstep mismatch")
	}
	if ctx.Template() == nil || ctx.Instance() == nil {
		p.samples = append(p.samples, "nil template or instance")
	}
	if ctx.Instance().Timestep != timestep {
		p.samples = append(p.samples, "wrong instance bound")
	}
	p.mu.Unlock()

	if superstep == 0 {
		ctx.SendToAllNeighbors("n")
		ctx.SendToSubgraphInNextTimestep(sg.SID, "targeted")
		ctx.AddCounter("probe", 1)
	}
	ctx.VoteToHalt()
}

func TestContextAccessors(t *testing.T) {
	f := newFixture(t, 3, 2)
	probe := &contextProbe{}
	res, err := Run(f.job(probe, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.samples) != 0 {
		t.Fatalf("context inconsistencies: %v", probe.samples)
	}
	if res.TimestepsRun != 3 {
		t.Fatalf("ran %d timesteps", res.TimestepsRun)
	}
}

// targetedTemporal verifies SendToSubgraphInNextTimestep reaches a
// *different* subgraph in the next timestep.
type targetedTemporal struct {
	target subgraph.ID
	mu     sync.Mutex
	gotAt  []int
}

func (p *targetedTemporal) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if superstep == 0 && sg.SID == p.target {
		for _, m := range msgs {
			if m.Payload == "hello" {
				p.mu.Lock()
				p.gotAt = append(p.gotAt, timestep)
				p.mu.Unlock()
			}
		}
	}
	if superstep == 0 && sg.SID != p.target {
		ctx.SendToSubgraphInNextTimestep(p.target, "hello")
	}
	ctx.VoteToHalt()
}

func TestSendToSubgraphInNextTimestep(t *testing.T) {
	f := newFixture(t, 3, 2)
	// Pick a target and ensure at least one other subgraph exists.
	if subgraph.TotalSubgraphs(f.parts) < 2 {
		t.Skip("need at least two subgraphs")
	}
	target := f.parts[1].Subgraphs[0].SID
	prog := &targetedTemporal{target: target}
	if _, err := Run(f.job(prog, SequentiallyDependent)); err != nil {
		t.Fatal(err)
	}
	// Senders at timesteps 0 and 1 reach the target at 1 and 2.
	if len(prog.gotAt) == 0 {
		t.Fatal("targeted temporal message never arrived")
	}
	for _, ts := range prog.gotAt {
		if ts == 0 {
			t.Error("message arrived in the same timestep it was sent")
		}
	}
}

// mergeEcho checks MergeContext accessors.
type mergeEcho struct {
	mu   sync.Mutex
	seen int
}

func (p *mergeEcho) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	ctx.SendMessageToMerge(1)
	ctx.VoteToHalt()
}

func (p *mergeEcho) Merge(ctx *MergeContext, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
	if ctx.Template() == nil {
		panic("nil template in merge")
	}
	if ctx.Superstep() != superstep {
		panic("superstep mismatch in merge")
	}
	if superstep == 0 {
		p.mu.Lock()
		p.seen += len(msgs)
		p.mu.Unlock()
		ctx.SendToAllNeighbors("m")
	}
	ctx.VoteToHalt()
}

func TestMergeContext(t *testing.T) {
	f := newFixture(t, 4, 2)
	prog := &mergeEcho{}
	job := f.job(prog, EventuallyDependent)
	job.Merger = prog
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	nSG := subgraph.TotalSubgraphs(f.parts)
	if prog.seen != 4*nSG {
		t.Errorf("merge saw %d messages, want %d", prog.seen, 4*nSG)
	}
}

func TestPatternString(t *testing.T) {
	if SequentiallyDependent.String() != "sequentially-dependent" ||
		Independent.String() != "independent" ||
		EventuallyDependent.String() != "eventually-dependent" {
		t.Error("pattern names wrong")
	}
	if Pattern(99).String() != "unknown" {
		t.Error("unknown pattern name")
	}
}

func TestComputePanicSurfaces(t *testing.T) {
	f := newFixture(t, 2, 2)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		panic("compute boom")
	})
	if _, err := Run(f.job(prog, SequentiallyDependent)); err == nil {
		t.Fatal("Compute panic not surfaced")
	}
}
