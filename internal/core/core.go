// Package core implements the paper's primary contribution: the Temporally
// Iterative Bulk Synchronous Parallel (TI-BSP) programming abstraction for
// time-series graphs (§II-D). A TI-BSP application is a sequence of BSP
// timesteps, one per graph instance; each timestep is itself a
// subgraph-centric BSP execution of supersteps. The execution order of
// timesteps and the messaging between them realizes one of three design
// patterns:
//
//   - Independent: every instance is processed in isolation; results are
//     the union of per-instance outputs. Timesteps may run with temporal
//     parallelism.
//   - EventuallyDependent: instances are processed independently, then a
//     Merge BSP aggregates messages sent via SendMessageToMerge.
//   - SequentiallyDependent: instance i+1's superstep 0 receives the
//     messages instance i sent via SendToNextTimestep /
//     SendToSubgraphInNextTimestep; only one timestep is active at a time.
package core

import (
	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// Pattern selects one of the paper's three design patterns.
type Pattern int

const (
	// SequentiallyDependent runs timesteps in order, passing temporal
	// messages between consecutive instances.
	SequentiallyDependent Pattern = iota
	// Independent runs every timestep in isolation.
	Independent
	// EventuallyDependent runs timesteps independently, then a Merge BSP.
	EventuallyDependent
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case SequentiallyDependent:
		return "sequentially-dependent"
	case Independent:
		return "independent"
	case EventuallyDependent:
		return "eventually-dependent"
	default:
		return "unknown"
	}
}

// Extra channel names used between core and the BSP engine.
const (
	chanNext     = "next-timestep"
	chanNextTo   = "next-timestep-targeted"
	chanMerge    = "merge"
	chanOutput   = "output"
	chanHaltStep = "halt-timestep"
)

// Program is the user logic of a TI-BSP application, mirroring the paper's
// method signatures:
//
//	Compute(Subgraph sg, int timestep, int superstep, Message[] msgs)
//	EndOfTimestep(Subgraph sg, int timestep)
//
// Supersteps are 0-based as in the paper's pseudocode: messages received at
// superstep 0 of timestep 0 are application inputs; at superstep 0 of a
// later timestep of a sequentially dependent run they are the previous
// instance's temporal messages; at superstep > 0 they come from other
// subgraphs within the current BSP.
type Program interface {
	Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message)
}

// EndOfTimestepper is optionally implemented by Programs that need the
// paper's EndOfTimestep(sg, timestep) hook, invoked once per subgraph after
// a timestep's BSP completes.
type EndOfTimestepper interface {
	EndOfTimestep(ctx *EndContext, sg *subgraph.Subgraph, timestep int)
}

// Merger is implemented by eventually-dependent applications; Merge runs as
// its own BSP after all timesteps, seeded with the messages sent via
// SendMessageToMerge (each subgraph receives what it itself sent across
// timesteps, in timestep order).
type Merger interface {
	Merge(ctx *MergeContext, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message)
}

// Output is one record emitted by a Compute, EndOfTimestep or Merge call.
type Output struct {
	// Timestep is the emitting timestep, or -1 for Merge outputs.
	Timestep int
	// From is the emitting subgraph.
	From subgraph.ID
	// Data is the application payload.
	Data any
}

// Context is passed to Compute: it extends the BSP context with the current
// instance's attribute data and the temporal messaging primitives of §II-D.
type Context struct {
	bspCtx   *bsp.Context
	template *graph.Template
	instance *graph.Instance
	timestep int
	sid      subgraph.ID
}

// Template returns the time-invariant topology and schemas.
func (c *Context) Template() *graph.Template { return c.template }

// Instance returns the current timestep's attribute values.
func (c *Context) Instance() *graph.Instance { return c.instance }

// Timestep returns the current timestep index.
func (c *Context) Timestep() int { return c.timestep }

// Superstep returns the current superstep within this timestep's BSP.
func (c *Context) Superstep() int { return c.bspCtx.Superstep() }

// SendTo sends a payload to another subgraph within the current BSP; it is
// delivered in the next superstep.
func (c *Context) SendTo(dst subgraph.ID, payload any) { c.bspCtx.SendTo(dst, payload) }

// SendToAllNeighbors sends a payload to every subgraph sharing a remote
// edge with this one.
func (c *Context) SendToAllNeighbors(payload any) { c.bspCtx.SendToAllNeighbors(payload) }

// VoteToHalt ends this subgraph's participation in the current timestep's
// BSP (until a message arrives), as in the subgraph-centric model.
func (c *Context) VoteToHalt() { c.bspCtx.VoteToHalt() }

// SendToNextTimestep passes a message along the temporal edge to this same
// subgraph in the next instance, available at superstep 0 of the next
// timestep. Only meaningful in the sequentially dependent pattern.
func (c *Context) SendToNextTimestep(payload any) {
	c.bspCtx.Emit(chanNext, c.sid, payload)
}

// SendToSubgraphInNextTimestep targets another subgraph in the next
// timestep: messaging across both space and time.
func (c *Context) SendToSubgraphInNextTimestep(dst subgraph.ID, payload any) {
	c.bspCtx.Emit(chanNextTo, dst, payload)
}

// SendMessageToMerge forwards a payload to this subgraph's Merge invocation
// after all timesteps complete (eventually dependent pattern).
func (c *Context) SendMessageToMerge(payload any) {
	c.bspCtx.Emit(chanMerge, c.sid, payload)
}

// VoteToHaltTimestep requests that the TI-BSP application stop iterating
// timesteps; the run ends early once every subgraph has voted in the same
// timestep and no temporal messages were emitted.
func (c *Context) VoteToHaltTimestep() {
	c.bspCtx.Emit(chanHaltStep, c.sid, nil)
}

// Output emits an application result record.
func (c *Context) Output(data any) {
	c.bspCtx.Emit(chanOutput, c.sid, data)
}

// AddCounter accumulates a named per-partition, per-timestep metric (e.g.
// "finalized" in TDSP, "colored" in meme tracking).
func (c *Context) AddCounter(name string, delta int64) { c.bspCtx.AddCounter(name, delta) }

// EndContext is passed to EndOfTimestep; it supports temporal and merge
// messaging plus outputs, but no intra-BSP sends (the BSP has completed).
type EndContext struct {
	template *graph.Template
	instance *graph.Instance
	timestep int
	sid      subgraph.ID
	counters func(name string, delta int64)

	next   []bsp.Extra
	nextTo []bsp.Extra
	merge  []bsp.Extra
	out    []bsp.Extra
	haltTS bool
}

// AddCounter accumulates a named per-partition, per-timestep metric from
// the EndOfTimestep hook (e.g. the number of vertices finalized).
func (c *EndContext) AddCounter(name string, delta int64) {
	if c.counters != nil {
		c.counters(name, delta)
	}
}

// Template returns the time-invariant topology and schemas.
func (c *EndContext) Template() *graph.Template { return c.template }

// Instance returns the completed timestep's attribute values.
func (c *EndContext) Instance() *graph.Instance { return c.instance }

// Timestep returns the completed timestep index.
func (c *EndContext) Timestep() int { return c.timestep }

// SendToNextTimestep passes state to this subgraph's next instance.
func (c *EndContext) SendToNextTimestep(payload any) {
	c.next = append(c.next, bsp.Extra{From: c.sid, To: c.sid, Data: payload})
}

// SendToSubgraphInNextTimestep targets another subgraph in the next
// timestep.
func (c *EndContext) SendToSubgraphInNextTimestep(dst subgraph.ID, payload any) {
	c.nextTo = append(c.nextTo, bsp.Extra{From: c.sid, To: dst, Data: payload})
}

// SendMessageToMerge forwards a payload to the Merge phase.
func (c *EndContext) SendMessageToMerge(payload any) {
	c.merge = append(c.merge, bsp.Extra{From: c.sid, To: c.sid, Data: payload})
}

// VoteToHaltTimestep requests early termination of the timestep loop.
func (c *EndContext) VoteToHaltTimestep() { c.haltTS = true }

// Output emits an application result record.
func (c *EndContext) Output(data any) {
	c.out = append(c.out, bsp.Extra{From: c.sid, To: c.sid, Data: data})
}

// MergeContext is passed to Merge: a plain BSP context over the subgraph
// template (no instance data) plus Output.
type MergeContext struct {
	bspCtx   *bsp.Context
	template *graph.Template
	sid      subgraph.ID
}

// Template returns the time-invariant topology and schemas.
func (c *MergeContext) Template() *graph.Template { return c.template }

// Superstep returns the Merge BSP's superstep.
func (c *MergeContext) Superstep() int { return c.bspCtx.Superstep() }

// SendTo sends a payload to another subgraph in the next Merge superstep.
func (c *MergeContext) SendTo(dst subgraph.ID, payload any) { c.bspCtx.SendTo(dst, payload) }

// SendToAllNeighbors sends to every subgraph sharing a remote edge.
func (c *MergeContext) SendToAllNeighbors(payload any) { c.bspCtx.SendToAllNeighbors(payload) }

// VoteToHalt ends this subgraph's participation in the Merge BSP; the
// application terminates when all subgraphs halt.
func (c *MergeContext) VoteToHalt() { c.bspCtx.VoteToHalt() }

// Output emits an application result record (Timestep = -1).
func (c *MergeContext) Output(data any) {
	c.bspCtx.Emit(chanOutput, c.sid, data)
}
