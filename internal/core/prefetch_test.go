package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// recordingSource wraps an InstanceSource and records every Load request,
// optionally failing at a chosen timestep.
type recordingSource struct {
	mu     sync.Mutex
	src    InstanceSource
	loads  []int
	failAt int // -1 disables
}

func newRecordingSource(src InstanceSource) *recordingSource {
	return &recordingSource{src: src, failAt: -1}
}

func (r *recordingSource) Timesteps() int { return r.src.Timesteps() }

func (r *recordingSource) Load(timestep int) (*graph.Instance, error) {
	r.mu.Lock()
	r.loads = append(r.loads, timestep)
	fail := r.failAt >= 0 && timestep == r.failAt
	r.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("injected failure at %d", timestep)
	}
	return r.src.Load(timestep)
}

func (r *recordingSource) requested() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.loads...)
}

func testCollection(t *testing.T, steps int) *graph.Collection {
	t.Helper()
	return newFixture(t, steps, 2).c
}

func TestPrefetchSequentialServesSameInstances(t *testing.T) {
	coll := testCollection(t, 12)
	base := MemorySource{C: coll}
	pf := NewPrefetchSource(base, 2)
	defer pf.Close()
	for ts := 0; ts < 12; ts++ {
		want, err := base.Load(ts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pf.Load(ts)
		if err != nil {
			t.Fatalf("timestep %d: %v", ts, err)
		}
		if got != want {
			t.Fatalf("timestep %d: prefetch returned a different instance", ts)
		}
	}
	hits, misses := pf.Stats()
	if hits+misses != 12 {
		t.Errorf("hits+misses = %d, want 12", hits+misses)
	}
}

func TestPrefetchNeverReadsPastTimesteps(t *testing.T) {
	coll := testCollection(t, 5)
	rec := newRecordingSource(MemorySource{C: coll})
	pf := NewPrefetchSource(rec, 3)
	defer pf.Close()
	for ts := 0; ts < 5; ts++ {
		if _, err := pf.Load(ts); err != nil {
			t.Fatalf("timestep %d: %v", ts, err)
		}
	}
	// Give the pipeline no chance to overrun: Close joins the fetcher.
	pf.Close()
	for _, ts := range rec.requested() {
		if ts < 0 || ts >= 5 {
			t.Fatalf("pipeline requested out-of-range timestep %d", ts)
		}
	}
	if _, err := pf.Load(5); err == nil {
		t.Fatal("Load(5) beyond Timesteps should fail")
	}
	if _, err := pf.Load(-1); err == nil {
		t.Fatal("Load(-1) should fail")
	}
}

func TestPrefetchPropagatesLoadErrors(t *testing.T) {
	coll := testCollection(t, 8)
	rec := newRecordingSource(MemorySource{C: coll})
	rec.failAt = 3
	pf := NewPrefetchSource(rec, 2)
	defer pf.Close()
	for ts := 0; ts < 3; ts++ {
		if _, err := pf.Load(ts); err != nil {
			t.Fatalf("timestep %d: %v", ts, err)
		}
	}
	if _, err := pf.Load(3); err == nil {
		t.Fatal("expected the injected failure to propagate to Load(3)")
	}
	// The source recovers; the pipeline must restart cleanly.
	rec.mu.Lock()
	rec.failAt = -1
	rec.mu.Unlock()
	if _, err := pf.Load(3); err != nil {
		t.Fatalf("recovered Load(3): %v", err)
	}
	for ts := 4; ts < 8; ts++ {
		if _, err := pf.Load(ts); err != nil {
			t.Fatalf("timestep %d after recovery: %v", ts, err)
		}
	}
}

func TestPrefetchOutOfOrderRestarts(t *testing.T) {
	coll := testCollection(t, 10)
	base := MemorySource{C: coll}
	pf := NewPrefetchSource(base, 2)
	defer pf.Close()
	order := []int{0, 1, 7, 2, 3, 9, 0}
	for _, ts := range order {
		want, err := base.Load(ts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pf.Load(ts)
		if err != nil {
			t.Fatalf("timestep %d: %v", ts, err)
		}
		if got != want {
			t.Fatalf("timestep %d: wrong instance after out-of-order access", ts)
		}
	}
}

func TestPrefetchConcurrentCallers(t *testing.T) {
	coll := testCollection(t, 16)
	pf := NewPrefetchSource(MemorySource{C: coll}, 2)
	defer pf.Close()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for ts := 0; ts < 16; ts++ {
		wg.Add(1)
		go func(ts int) {
			defer wg.Done()
			ins, err := pf.Load(ts)
			if err == nil && ins.Timestep != ts {
				err = errors.New("wrong instance")
			}
			errs[ts] = err
		}(ts)
	}
	wg.Wait()
	for ts, err := range errs {
		if err != nil {
			t.Fatalf("timestep %d: %v", ts, err)
		}
	}
}

func TestRunSequentialWithPrefetchMatchesInline(t *testing.T) {
	outputProg := func() Program {
		return programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
			if superstep == 0 {
				ctx.Output(sg.SID.Partition()*1_000_000 + sg.SID.Index()*1_000 + timestep)
				ctx.SendToNextTimestep(timestep)
			}
			ctx.VoteToHalt()
		})
	}
	base, err := Run(newFixture(t, 10, 2).job(outputProg(), SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	jobPf := newFixture(t, 10, 2).job(outputProg(), SequentiallyDependent)
	jobPf.PrefetchDepth = 2
	pf, err := Run(jobPf)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Outputs) != len(pf.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(base.Outputs), len(pf.Outputs))
	}
	for i := range base.Outputs {
		if base.Outputs[i] != pf.Outputs[i] {
			t.Fatalf("output %d differs: %+v vs %+v", i, base.Outputs[i], pf.Outputs[i])
		}
	}
	if base.TimestepsRun != pf.TimestepsRun || base.Supersteps != pf.Supersteps {
		t.Fatalf("run shape differs: %d/%d vs %d/%d",
			base.TimestepsRun, base.Supersteps, pf.TimestepsRun, pf.Supersteps)
	}
}
