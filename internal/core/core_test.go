package core

import (
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// fixture bundles a small dataset ready for TI-BSP runs.
type fixture struct {
	g     *graph.Template
	c     *graph.Collection
	parts []*subgraph.PartitionData
}

func newFixture(tb testing.TB, steps, k int) *fixture {
	tb.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 8, Cols: 8, RemoveFrac: 0.1, Seed: 3})
	c, err := gen.RandomLatencies(g, gen.LatencyConfig{Timesteps: steps, T0: 0, Delta: 60, Min: 1, Max: 50, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 5}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return &fixture{g: g, c: c, parts: parts}
}

func (f *fixture) job(p Program, pattern Pattern) *Job {
	return &Job{
		Template: f.g,
		Parts:    f.parts,
		Source:   MemorySource{C: f.c},
		Program:  p,
		Pattern:  pattern,
	}
}

// countingProgram records the (timestep, superstep) pairs at which each
// subgraph ran, and forwards a running counter via SendToNextTimestep.
type countingProgram struct {
	mu       sync.Mutex
	invokes  map[subgraph.ID][][2]int
	received map[int][]int // timestep -> payloads received at superstep 0
}

func (p *countingProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	p.mu.Lock()
	if p.invokes == nil {
		p.invokes = map[subgraph.ID][][2]int{}
		p.received = map[int][]int{}
	}
	p.invokes[sg.SID] = append(p.invokes[sg.SID], [2]int{timestep, superstep})
	if superstep == 0 {
		for _, m := range msgs {
			p.received[timestep] = append(p.received[timestep], m.Payload.(int))
		}
	}
	p.mu.Unlock()
	if superstep == 0 {
		ctx.SendToNextTimestep(timestep * 10)
	}
	ctx.VoteToHalt()
}

func TestSequentialTemporalMessaging(t *testing.T) {
	f := newFixture(t, 4, 2)
	prog := &countingProgram{}
	res, err := Run(f.job(prog, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 4 {
		t.Fatalf("ran %d timesteps, want 4", res.TimestepsRun)
	}
	// Each subgraph sends timestep*10 to itself in the next timestep: at
	// timestep ts>0, superstep 0, each subgraph receives (ts-1)*10.
	nSG := subgraph.TotalSubgraphs(f.parts)
	for ts := 1; ts < 4; ts++ {
		got := prog.received[ts]
		if len(got) != nSG {
			t.Fatalf("timestep %d received %d temporal messages, want %d", ts, len(got), nSG)
		}
		for _, v := range got {
			if v != (ts-1)*10 {
				t.Errorf("timestep %d received %d, want %d", ts, v, (ts-1)*10)
			}
		}
	}
	if len(prog.received[0]) != 0 {
		t.Errorf("timestep 0 received %d messages, want 0", len(prog.received[0]))
	}
	// Every subgraph ran exactly once per timestep.
	for sid, inv := range prog.invokes {
		if len(inv) != 4 {
			t.Errorf("subgraph %v ran %d times, want 4", sid, len(inv))
		}
	}
}

func TestInitialMessagesSequential(t *testing.T) {
	f := newFixture(t, 3, 2)
	target := f.parts[0].Subgraphs[0].SID
	var mu sync.Mutex
	byTimestep := map[int]int{}
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		if superstep == 0 && sg.SID == target {
			mu.Lock()
			byTimestep[timestep] += len(msgs)
			mu.Unlock()
		}
		ctx.VoteToHalt()
	})
	job := f.job(prog, SequentiallyDependent)
	job.Initial = []bsp.Message{{To: target, Payload: "in"}}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	if byTimestep[0] != 1 {
		t.Errorf("timestep 0 got %d initial messages, want 1", byTimestep[0])
	}
	if byTimestep[1] != 0 || byTimestep[2] != 0 {
		t.Errorf("later timesteps got initial messages: %v", byTimestep)
	}
}

func TestInitialMessagesIndependentDeliveredEachTimestep(t *testing.T) {
	f := newFixture(t, 3, 2)
	target := f.parts[0].Subgraphs[0].SID
	var mu sync.Mutex
	byTimestep := map[int]int{}
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		if superstep == 0 && sg.SID == target {
			mu.Lock()
			byTimestep[timestep] += len(msgs)
			mu.Unlock()
		}
		ctx.VoteToHalt()
	})
	job := f.job(prog, Independent)
	job.Initial = []bsp.Message{{To: target, Payload: "in"}}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < 3; ts++ {
		if byTimestep[ts] != 1 {
			t.Errorf("timestep %d got %d app inputs, want 1", ts, byTimestep[ts])
		}
	}
}

// programFunc adapts a function to Program.
type programFunc func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message)

func (f programFunc) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	f(ctx, sg, timestep, superstep, msgs)
}

func TestOutputsCollectedInOrder(t *testing.T) {
	f := newFixture(t, 3, 2)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		ctx.Output(timestep)
		ctx.VoteToHalt()
	})
	res, err := Run(f.job(prog, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	nSG := subgraph.TotalSubgraphs(f.parts)
	if len(res.Outputs) != 3*nSG {
		t.Fatalf("%d outputs, want %d", len(res.Outputs), 3*nSG)
	}
	for i, o := range res.Outputs {
		if o.Timestep != i/nSG {
			t.Fatalf("output %d has timestep %d, want %d (timestep-major order)", i, o.Timestep, i/nSG)
		}
		if o.Data.(int) != o.Timestep {
			t.Fatalf("output data %v at timestep %d", o.Data, o.Timestep)
		}
	}
}

func TestWhileModeStopsEarly(t *testing.T) {
	f := newFixture(t, 10, 2)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		if timestep < 3 {
			ctx.SendToNextTimestep("keep going")
		} else {
			ctx.VoteToHaltTimestep()
		}
		ctx.VoteToHalt()
	})
	job := f.job(prog, SequentiallyDependent)
	job.WhileMode = true
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedEarly {
		t.Error("expected early halt")
	}
	if res.TimestepsRun != 4 {
		t.Errorf("ran %d timesteps, want 4 (0..3)", res.TimestepsRun)
	}
}

func TestWhileModeRequiresAllVotes(t *testing.T) {
	f := newFixture(t, 5, 2)
	// Only one subgraph votes to halt: the loop must run all timesteps.
	voter := f.parts[0].Subgraphs[0].SID
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		if sg.SID == voter {
			ctx.VoteToHaltTimestep()
		}
		ctx.VoteToHalt()
	})
	job := f.job(prog, SequentiallyDependent)
	job.WhileMode = true
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltedEarly || res.TimestepsRun != 5 {
		t.Errorf("haltedEarly=%v timesteps=%d, want full 5", res.HaltedEarly, res.TimestepsRun)
	}
}

// endProgram exercises the EndOfTimestep hook.
type endProgram struct {
	mu    sync.Mutex
	ends  map[subgraph.ID][]int
	state map[int][]string // timestep -> temporal payloads seen at ss 0
}

func (p *endProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	if superstep == 0 && timestep > 0 {
		p.mu.Lock()
		for _, m := range msgs {
			p.state[timestep] = append(p.state[timestep], m.Payload.(string))
		}
		p.mu.Unlock()
	}
	ctx.VoteToHalt()
}

func (p *endProgram) EndOfTimestep(ctx *EndContext, sg *subgraph.Subgraph, timestep int) {
	p.mu.Lock()
	p.ends[sg.SID] = append(p.ends[sg.SID], timestep)
	p.mu.Unlock()
	ctx.SendToNextTimestep("from-end")
	ctx.Output("end-output")
}

func TestEndOfTimestepHook(t *testing.T) {
	f := newFixture(t, 3, 2)
	prog := &endProgram{ends: map[subgraph.ID][]int{}, state: map[int][]string{}}
	res, err := Run(f.job(prog, SequentiallyDependent))
	if err != nil {
		t.Fatal(err)
	}
	nSG := subgraph.TotalSubgraphs(f.parts)
	for sid, ts := range prog.ends {
		if len(ts) != 3 {
			t.Errorf("subgraph %v EndOfTimestep ran %d times, want 3", sid, len(ts))
		}
		for i, v := range ts {
			if v != i {
				t.Errorf("subgraph %v EndOfTimestep order %v", sid, ts)
			}
		}
	}
	// Temporal messages from EndOfTimestep arrive next timestep.
	for ts := 1; ts < 3; ts++ {
		if len(prog.state[ts]) != nSG {
			t.Errorf("timestep %d: %d temporal messages from EndOfTimestep, want %d", ts, len(prog.state[ts]), nSG)
		}
	}
	// Outputs from EndOfTimestep are recorded.
	endOutputs := 0
	for _, o := range res.Outputs {
		if o.Data == "end-output" {
			endOutputs++
		}
	}
	if endOutputs != 3*nSG {
		t.Errorf("%d end outputs, want %d", endOutputs, 3*nSG)
	}
}

// mergeProgram exercises the eventually dependent pattern: each subgraph
// sends its per-timestep vertex count to merge; Merge sums everything at a
// designated subgraph.
type mergeProgram struct{}

func (mergeProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	ctx.SendMessageToMerge(sg.NumVertices())
	ctx.VoteToHalt()
}

func (mergeProgram) Merge(ctx *MergeContext, sg *subgraph.Subgraph, superstep int, msgs []bsp.Message) {
	// Superstep 0: each subgraph receives its own per-timestep messages and
	// forwards their sum to the designated root subgraph 0/0.
	root := subgraph.MakeID(0, 0)
	if superstep == 0 {
		sum := 0
		for _, m := range msgs {
			sum += m.Payload.(int)
		}
		ctx.SendTo(root, sum)
		ctx.VoteToHalt()
		return
	}
	if sg.SID == root {
		total := 0
		for _, m := range msgs {
			total += m.Payload.(int)
		}
		ctx.Output(total)
	}
	ctx.VoteToHalt()
}

func TestEventuallyDependentMerge(t *testing.T) {
	f := newFixture(t, 4, 2)
	p := mergeProgram{}
	job := f.job(p, EventuallyDependent)
	job.Merger = p
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var mergeOutputs []Output
	for _, o := range res.Outputs {
		if o.Timestep == -1 {
			mergeOutputs = append(mergeOutputs, o)
		}
	}
	if len(mergeOutputs) != 1 {
		t.Fatalf("%d merge outputs, want 1", len(mergeOutputs))
	}
	// Each subgraph sent its vertex count once per timestep.
	want := 4 * f.g.NumVertices()
	if got := mergeOutputs[0].Data.(int); got != want {
		t.Errorf("merged total = %d, want %d", got, want)
	}
}

func TestEventuallyDependentNeedsMerger(t *testing.T) {
	f := newFixture(t, 2, 2)
	job := f.job(mergeProgram{}, EventuallyDependent)
	job.Merger = nil
	if _, err := Run(job); err == nil {
		t.Fatal("missing Merger should error")
	}
}

func TestTemporalParallelismMatchesSequentialOutputs(t *testing.T) {
	f := newFixture(t, 6, 2)
	mk := func(par int) map[int]int {
		prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
			// Output depends on instance data to prove the right instance
			// is bound to each timestep.
			lat := ctx.Instance().EdgeFloats(ctx.Template(), gen.AttrLatency)
			sum := 0
			for _, lv := range sg.Verts {
				lo, hi := sg.Part.OutEdges(int(lv))
				for e := lo; e < hi; e++ {
					sum += int(lat[sg.Part.EdgeGlobal[e]])
				}
			}
			ctx.Output(sum)
			ctx.VoteToHalt()
		})
		job := f.job(prog, Independent)
		job.TemporalParallelism = par
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		sums := map[int]int{}
		for _, o := range res.Outputs {
			sums[o.Timestep] += o.Data.(int)
		}
		return sums
	}
	seq := mk(1)
	par := mk(4)
	if len(seq) != 6 || len(par) != 6 {
		t.Fatalf("timestep coverage: %d vs %d", len(seq), len(par))
	}
	for ts := range seq {
		if seq[ts] != par[ts] {
			t.Errorf("timestep %d: sequential %d != parallel %d", ts, seq[ts], par[ts])
		}
	}
}

func TestTimestepsBound(t *testing.T) {
	f := newFixture(t, 8, 2)
	prog := &countingProgram{}
	job := f.job(prog, SequentiallyDependent)
	job.Timesteps = 3
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 3 {
		t.Errorf("ran %d, want 3", res.TimestepsRun)
	}
}

func TestRunValidation(t *testing.T) {
	f := newFixture(t, 2, 2)
	if _, err := Run(&Job{}); err == nil {
		t.Error("empty job should error")
	}
	job := f.job(nil, SequentiallyDependent)
	if _, err := Run(job); err == nil {
		t.Error("nil program should error")
	}
	job = f.job(&countingProgram{}, SequentiallyDependent)
	job.Source = nil
	if _, err := Run(job); err == nil {
		t.Error("nil source should error")
	}
	empty := graph.NewCollection(f.g, 0, 1)
	job = f.job(&countingProgram{}, SequentiallyDependent)
	job.Source = MemorySource{C: empty}
	if _, err := Run(job); err == nil {
		t.Error("empty source should error")
	}
}

func TestMetricsPerTimestep(t *testing.T) {
	f := newFixture(t, 5, 3)
	rec := metrics.NewRecorder(3)
	prog := programFunc(func(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
		ctx.AddCounter("visited", int64(sg.NumVertices()))
		ctx.VoteToHalt()
	})
	job := f.job(prog, SequentiallyDependent)
	job.Recorder = rec
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	if rec.NumTimesteps() != 5 {
		t.Fatalf("recorded %d timesteps", rec.NumTimesteps())
	}
	if rec.CounterTotal("visited") != int64(5*f.g.NumVertices()) {
		t.Errorf("visited total = %d, want %d", rec.CounterTotal("visited"), 5*f.g.NumVertices())
	}
	for i := 0; i < 5; i++ {
		if rec.Step(i).Wall <= 0 {
			t.Errorf("timestep %d wall = %v", i, rec.Step(i).Wall)
		}
	}
	if len(rec.CounterNames()) != 1 || rec.CounterNames()[0] != "visited" {
		t.Errorf("counter names = %v", rec.CounterNames())
	}
}

func TestGoFSBackedRun(t *testing.T) {
	f := newFixture(t, 12, 2)
	dir := t.TempDir()
	a, err := (partition.Multilevel{Seed: 5}).Partition(f.g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gofs.WriteDataset(dir, f.c, a, 5, 3); err != nil {
		t.Fatal(err)
	}
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := gofs.NewLoader(store)
	prog := &countingProgram{}
	job := f.job(prog, SequentiallyDependent)
	job.Source = loader
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimestepsRun != 12 {
		t.Errorf("ran %d timesteps, want 12", res.TimestepsRun)
	}
	// Loader performed pack loads: 12 steps / pack 5 = 3 packs.
	if loader.Loads == 0 {
		t.Error("GoFS loader performed no slice reads")
	}
}
