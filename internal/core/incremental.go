package core

import (
	"fmt"

	"tsgraph/internal/bsp"
	"tsgraph/internal/graph"
	"tsgraph/internal/subgraph"
)

// DeltaSource is an InstanceSource that can report what changed between
// consecutive timesteps — delta-encoded GoFS stores (gofs.Loader,
// gofs.InstanceCache) and the prefetch pipeline over them. Delta(t) is
// valid after Load(t) and until a later Load leaves t's pack; nil means
// unknown (full-format stores, the first timestep) and forces a full
// recompute of that timestep.
type DeltaSource interface {
	InstanceSource
	Delta(timestep int) *graph.Delta
}

// IncrementalProgram marks a Program as safe for incremental timestep
// scheduling (Job.Incremental). The marker asserts two properties the
// runner cannot check itself:
//
//  1. Superstep-0 reseeding is idempotent on clean subgraphs: if a
//     subgraph's instance data did not change and it would receive exactly
//     the self-addressed temporal messages it emitted last timestep, its
//     superstep-0 work rebuilds state it already retains, and the messages
//     it would send are no-ops at every receiver whose instance data also
//     did not change.
//  2. Self-addressed temporal messages (From == To) are re-derivable from
//     the subgraph's retained state, so withholding them from a skipped
//     subgraph loses nothing.
//
// Cross-subgraph temporal messages (From != To) are never withheld: their
// payload may be unreconstructible by the receiver, so they always pull
// the receiver into the initial frontier.
type IncrementalProgram interface {
	Program
	// IncrementalSafe is a marker method; implementations are empty.
	IncrementalSafe()
}

// incrementalState holds the per-run lookup tables of the incremental
// scheduler: ownership of every template vertex and edge slot by a dense
// subgraph index, and the out-neighbor relation between subgraphs.
type incrementalState struct {
	src       DeltaSource
	ids       []subgraph.ID       // dense index -> subgraph ID
	idx       map[subgraph.ID]int // subgraph ID -> dense index
	vertOwner []int32             // template vertex -> dense owner
	edgeOwner []int32             // template edge slot -> dense owner (its source vertex's subgraph)
	nbrs      [][]int32           // dense index -> out-neighbor dense indices
	dirty     []bool              // scratch: subgraph saw instance changes at this timestep
	wake      []bool              // scratch: subgraph got a cross-subgraph temporal message
	skipFlag  []bool              // scratch: subgraph is skipped this timestep
	skip      []subgraph.ID       // scratch: skip list handed to the engine
}

func newIncrementalState(job *Job, src DeltaSource) (*incrementalState, error) {
	s := &incrementalState{
		src:       src,
		idx:       make(map[subgraph.ID]int),
		vertOwner: make([]int32, job.Template.NumVertices()),
		edgeOwner: make([]int32, job.Template.NumEdges()),
	}
	for _, pd := range job.Parts {
		for _, sg := range pd.Subgraphs {
			s.idx[sg.SID] = len(s.ids)
			s.ids = append(s.ids, sg.SID)
		}
	}
	n := len(s.ids)
	s.nbrs = make([][]int32, n)
	s.dirty = make([]bool, n)
	s.wake = make([]bool, n)
	s.skipFlag = make([]bool, n)
	for _, pd := range job.Parts {
		for lv := 0; lv < pd.NumVertices(); lv++ {
			owner := int32(s.idx[subgraph.MakeID(pd.PID, int(pd.SubgraphOf[lv]))])
			s.vertOwner[pd.GlobalIdx[lv]] = owner
			lo, hi := pd.OutEdges(lv)
			for e := lo; e < hi; e++ {
				// An edge belongs to its source vertex's subgraph: only the
				// source side ever reads the slot's attribute values.
				s.edgeOwner[pd.EdgeGlobal[e]] = owner
			}
		}
		for _, sg := range pd.Subgraphs {
			d := s.idx[sg.SID]
			for _, nid := range sg.Neighbors {
				nd, ok := s.idx[nid]
				if !ok {
					return nil, fmt.Errorf("core: incremental scheduling needs all subgraphs local, %v is not", nid)
				}
				s.nbrs[d] = append(s.nbrs[d], int32(nd))
			}
		}
	}
	return s, nil
}

// plan decides which subgraphs stay out of timestep ts's initial frontier
// and filters the pending temporal messages accordingly. A subgraph is
// skipped iff its own instance data is clean, every out-neighbor's is clean
// (its superstep-0 messages could otherwise matter to a dirty receiver),
// and no cross-subgraph temporal message addresses it. Self-addressed
// temporal messages to skipped subgraphs are withheld — by the
// IncrementalProgram contract they only rebuild state the subgraph kept.
//
// The returned skip slice is scratch, valid until the next plan call; the
// returned messages reuse pending's backing array.
func (s *incrementalState) plan(delta *graph.Delta, pending []bsp.Message) ([]subgraph.ID, []bsp.Message) {
	if delta == nil {
		return nil, pending
	}
	for i := range s.dirty {
		s.dirty[i] = false
		s.wake[i] = false
		s.skipFlag[i] = false
	}
	for _, v := range delta.Verts {
		s.dirty[s.vertOwner[v]] = true
	}
	for _, e := range delta.Edges {
		s.dirty[s.edgeOwner[e]] = true
	}
	for i := range pending {
		if m := &pending[i]; m.From != m.To {
			if d, ok := s.idx[m.To]; ok {
				s.wake[d] = true
			}
		}
	}
	skip := s.skip[:0]
	for d := range s.dirty {
		if s.dirty[d] || s.wake[d] {
			continue
		}
		clean := true
		for _, nd := range s.nbrs[d] {
			if s.dirty[nd] {
				clean = false
				break
			}
		}
		if clean {
			s.skipFlag[d] = true
			skip = append(skip, s.ids[d])
		}
	}
	s.skip = skip
	if len(skip) == 0 {
		return nil, pending
	}
	kept := pending[:0]
	for _, m := range pending {
		if m.From == m.To {
			if d, ok := s.idx[m.To]; ok && s.skipFlag[d] {
				continue
			}
		}
		kept = append(kept, m)
	}
	return skip, kept
}
