package core

import (
	"fmt"
	"sync"
	"testing"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// maxTagsProgram is a minimal incremental-safe program: each subgraph
// retains the maximum (over timesteps) of its total tweet-tag count. A
// timestep whose instance data is unchanged recomputes the same count and
// the max is a no-op — exactly the idempotence core.IncrementalProgram
// demands. EndOfTimestep (which runs for every subgraph every timestep,
// skipped or not) outputs the retained state, so outputs must be identical
// between full and incremental runs.
type maxTagsProgram struct {
	attr string

	mu   sync.Mutex
	best map[subgraph.ID]int
	ran  map[int][]subgraph.ID // timestep -> subgraphs that computed
}

func newMaxTags(attr string) *maxTagsProgram {
	return &maxTagsProgram{attr: attr, best: map[subgraph.ID]int{}, ran: map[int][]subgraph.ID{}}
}

func (p *maxTagsProgram) IncrementalSafe() {}

func (p *maxTagsProgram) Compute(ctx *Context, sg *subgraph.Subgraph, timestep, superstep int, msgs []bsp.Message) {
	tweets := ctx.Instance().VertexStringLists(ctx.Template(), p.attr)
	count := 0
	for _, lv := range sg.Verts {
		count += len(tweets[sg.Part.GlobalIdx[lv]])
	}
	p.mu.Lock()
	p.ran[timestep] = append(p.ran[timestep], sg.SID)
	if count > p.best[sg.SID] {
		p.best[sg.SID] = count
	}
	p.mu.Unlock()
	ctx.VoteToHalt()
}

func (p *maxTagsProgram) EndOfTimestep(ctx *EndContext, sg *subgraph.Subgraph, timestep int) {
	p.mu.Lock()
	best := p.best[sg.SID]
	p.mu.Unlock()
	ctx.Output(best)
}

// sirDataset writes a GoFS dataset whose tweet changes are localized (an
// SIR meme spreading with no background noise), so most subgraphs are
// delta-clean at most timesteps.
func sirDataset(tb testing.TB, dir string, steps, k, snapEvery int) (*graph.Template, []*subgraph.PartitionData) {
	tb.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Rows: 12, Cols: 12, RemoveFrac: 0.1, Seed: 3})
	sir, err := gen.SIRTweets(g, gen.SIRConfig{
		Timesteps: steps, T0: 0, Delta: 60,
		Memes: []string{"#m"}, SeedsPerMeme: 1, HitProb: 0.3, Seed: 9,
	})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := (partition.Multilevel{Seed: 5}).Partition(g, k)
	if err != nil {
		tb.Fatal(err)
	}
	if err := gofs.WriteDatasetOptions(dir, sir.Collection, a, gofs.Options{
		Pack: 4, Bin: 2, SnapshotEvery: snapEvery,
	}); err != nil {
		tb.Fatal(err)
	}
	parts, err := subgraph.Build(g, a)
	if err != nil {
		tb.Fatal(err)
	}
	return g, parts
}

func runMaxTags(tb testing.TB, g *graph.Template, parts []*subgraph.PartitionData, dir string, incremental bool, prefetch int) (*maxTagsProgram, *Result, *metrics.Recorder) {
	tb.Helper()
	store, err := gofs.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	prog := newMaxTags(gen.AttrTweets)
	rec := metrics.NewRecorder(len(parts))
	res, err := Run(&Job{
		Template:      g,
		Parts:         parts,
		Source:        gofs.NewLoader(store),
		Program:       prog,
		Pattern:       SequentiallyDependent,
		Incremental:   incremental,
		PrefetchDepth: prefetch,
		Recorder:      rec,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return prog, res, rec
}

func outputKey(o Output) string { return fmt.Sprintf("%d/%v", o.Timestep, o.From) }

func TestIncrementalMatchesFullRecompute(t *testing.T) {
	const steps = 12
	dir := t.TempDir()
	g, parts := sirDataset(t, dir, steps, 3, 4)

	fullProg, fullRes, _ := runMaxTags(t, g, parts, dir, false, 0)
	incProg, incRes, incRec := runMaxTags(t, g, parts, dir, true, 0)

	if fullRes.SubgraphsSkipped != 0 {
		t.Errorf("full run skipped %d subgraphs", fullRes.SubgraphsSkipped)
	}
	if incRes.SubgraphsSkipped == 0 {
		t.Fatal("incremental run skipped nothing on a localized-churn dataset")
	}
	if got := incRec.TotalSubgraphsSkipped(); got != incRes.SubgraphsSkipped {
		t.Errorf("recorder skip total %d != result %d", got, incRes.SubgraphsSkipped)
	}
	if incRec.Step(0).SubgraphsSkipped != 0 {
		t.Error("first executed timestep must run in full")
	}

	// Skipped subgraphs really did not compute.
	total := 0
	for _, pd := range parts {
		total += len(pd.Subgraphs)
	}
	ranLess := 0
	for ts := 0; ts < steps; ts++ {
		if len(fullProg.ran[ts]) != total {
			t.Fatalf("full run computed %d subgraphs at ts %d, want %d", len(fullProg.ran[ts]), ts, total)
		}
		if want := total - incRec.Step(ts).SubgraphsSkipped; len(incProg.ran[ts]) != want {
			t.Errorf("incremental computed %d subgraphs at ts %d, want %d", len(incProg.ran[ts]), ts, want)
		}
		if len(incProg.ran[ts]) < total {
			ranLess++
		}
	}
	if ranLess == 0 {
		t.Error("no timestep ran a reduced frontier")
	}

	// Deliverable state is identical: same outputs at every (timestep,
	// subgraph) and same final per-subgraph maxima.
	if len(fullRes.Outputs) != len(incRes.Outputs) {
		t.Fatalf("output counts differ: full %d, incremental %d", len(fullRes.Outputs), len(incRes.Outputs))
	}
	fullOut := map[string]any{}
	for _, o := range fullRes.Outputs {
		fullOut[outputKey(o)] = o.Data
	}
	for _, o := range incRes.Outputs {
		if want, ok := fullOut[outputKey(o)]; !ok || want != o.Data {
			t.Fatalf("output %s = %v, full run has %v", outputKey(o), o.Data, want)
		}
	}
	for sid, want := range fullProg.best {
		if incProg.best[sid] != want {
			t.Errorf("subgraph %v best = %d, want %d", sid, incProg.best[sid], want)
		}
	}
}

func TestIncrementalWithPrefetchMatches(t *testing.T) {
	dir := t.TempDir()
	g, parts := sirDataset(t, dir, 12, 3, 4)
	fullProg, _, _ := runMaxTags(t, g, parts, dir, false, 0)
	incProg, incRes, _ := runMaxTags(t, g, parts, dir, true, 3)
	if incRes.SubgraphsSkipped == 0 {
		t.Fatal("prefetched incremental run skipped nothing")
	}
	for sid, want := range fullProg.best {
		if incProg.best[sid] != want {
			t.Errorf("subgraph %v best = %d, want %d", sid, incProg.best[sid], want)
		}
	}
}

func TestIncrementalFullFormatRunsEverything(t *testing.T) {
	// A v1 (full-format) dataset yields nil deltas: incremental mode is
	// legal but must degrade to running every subgraph every timestep.
	dir := t.TempDir()
	g, parts := sirDataset(t, dir, 8, 2, 0)
	prog, res, _ := runMaxTags(t, g, parts, dir, true, 0)
	if res.SubgraphsSkipped != 0 {
		t.Errorf("full-format dataset skipped %d subgraphs", res.SubgraphsSkipped)
	}
	total := 0
	for _, pd := range parts {
		total += len(pd.Subgraphs)
	}
	for ts := 0; ts < 8; ts++ {
		if len(prog.ran[ts]) != total {
			t.Errorf("ts %d computed %d subgraphs, want %d", ts, len(prog.ran[ts]), total)
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	f := newFixture(t, 4, 2)
	base := func() *Job {
		j := f.job(newMaxTags(gen.AttrTweets), SequentiallyDependent)
		j.Incremental = true
		return j
	}

	// MemorySource is not a DeltaSource.
	if _, err := Run(base()); err == nil {
		t.Error("Incremental with a non-DeltaSource should error")
	}

	dir := t.TempDir()
	a, err := (partition.Multilevel{Seed: 5}).Partition(f.g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gofs.WriteDatasetOptions(dir, f.c, a, gofs.Options{Pack: 2, Bin: 2, SnapshotEvery: 2}); err != nil {
		t.Fatal(err)
	}
	store, err := gofs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	job := base()
	job.Source = gofs.NewLoader(store)
	job.Program = &countingProgram{} // no IncrementalSafe marker
	if _, err := Run(job); err == nil {
		t.Error("Incremental with an unmarked Program should error")
	}

	job = base()
	job.Source = gofs.NewLoader(store)
	job.WhileMode = true
	if _, err := Run(job); err == nil {
		t.Error("Incremental with WhileMode should error")
	}

	job = base()
	job.Source = gofs.NewLoader(store)
	job.Pattern = Independent
	if _, err := Run(job); err == nil {
		t.Error("Incremental with the Independent pattern should error")
	}
}
