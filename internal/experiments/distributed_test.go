package experiments

import (
	"testing"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/obs"
)

// TestDistributedSmokeTracedFourRanks runs the acceptance path end to end:
// a 4-rank loopback mesh with tracing on, whose merged trace must carry
// all four ranks, validate (monotonic aligned timestamps, every receiver
// exchange span resolvable to its sender), and decompose cluster skew.
func TestDistributedSmokeTracedFourRanks(t *testing.T) {
	road, err := BuildRoad(testScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DistributedSmoke(road, 4, 4, bsp.Config{}, 1, DistributedSmokeOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no result rows")
	}
	if res.Merged == nil {
		t.Fatal("tracing on but no merged trace")
	}
	if err := res.Merged.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if got := len(res.Merged.Ranks); got != 4 {
		t.Fatalf("merged trace carries %d ranks, want 4", got)
	}
	if len(res.Shards) != 4 {
		t.Fatalf("kept %d shards, want 4", len(res.Shards))
	}
	if res.Skew.Ranks != 4 || res.Skew.Supersteps == 0 {
		t.Fatalf("cluster skew not populated: %+v", res.Skew)
	}
	if len(res.Offsets) != 4 {
		t.Fatalf("clock offsets = %v, want 4 entries", res.Offsets)
	}
	if len(res.Stalls) != 0 {
		t.Fatalf("healthy smoke fired stalls: %+v", res.Stalls)
	}
}

// TestDistributedSmokeWatchdogQuiet checks a watchdog-armed healthy run
// stays silent when thresholds are generous.
func TestDistributedSmokeWatchdogQuiet(t *testing.T) {
	road, err := BuildRoad(testScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DistributedSmoke(road, 2, 2, bsp.Config{}, 1, DistributedSmokeOptions{
		Watchdog: &obs.WatchdogConfig{MinWait: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stalls) != 0 {
		t.Fatalf("watchdog fired on a healthy run: %+v", res.Stalls)
	}
}
