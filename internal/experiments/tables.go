package experiments

import (
	"fmt"
	"io"

	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
)

// DatasetRow is one line of the paper's §IV-A dataset table.
type DatasetRow struct {
	Name      string
	Vertices  int
	Edges     int
	Diameter  int // double-sweep lower bound
	AvgDegree float64
	MaxDegree int
}

// DatasetTable reproduces the dataset table: vertex/edge counts and
// diameter for both templates, showing the large-diameter/small-degree vs
// small-world/power-law contrast.
func DatasetTable(datasets ...*Dataset) []DatasetRow {
	rows := make([]DatasetRow, 0, len(datasets))
	for _, ds := range datasets {
		s := graph.ComputeStats(ds.Template, 6)
		rows = append(rows, DatasetRow{
			Name:      ds.Name,
			Vertices:  s.Vertices,
			Edges:     s.Edges,
			Diameter:  s.DiameterLB,
			AvgDegree: s.AvgDegree,
			MaxDegree: s.MaxDegree,
		})
	}
	return rows
}

// RenderDatasetTable writes the table as text.
func RenderDatasetTable(w io.Writer, rows []DatasetRow) {
	fmt.Fprintf(w, "== Dataset table (paper §IV-A) ==\n")
	fmt.Fprintf(w, "%-12s %10s %10s %9s %8s %8s\n", "Template", "Vertices", "Edges", "Diameter", "AvgDeg", "MaxDeg")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %10d %9d %8.2f %8d\n",
			r.Name, r.Vertices, r.Edges, r.Diameter, r.AvgDegree, r.MaxDegree)
	}
}

// EdgeCutRow is one cell of the §IV-B edge-cut table.
type EdgeCutRow struct {
	Graph  string
	K      int
	CutPct float64
}

// EdgeCutTable reproduces the "% edges cut across partitions" table with
// the multilevel partitioner at the paper's partition counts.
func EdgeCutTable(datasets []*Dataset, ks []int, seed int64) ([]EdgeCutRow, error) {
	var rows []EdgeCutRow
	for _, ds := range datasets {
		for _, k := range ks {
			a, err := (partition.Multilevel{Seed: seed}).Partition(ds.Template, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, EdgeCutRow{
				Graph:  ds.Name,
				K:      k,
				CutPct: a.CutFraction(ds.Template) * 100,
			})
		}
	}
	return rows, nil
}

// RenderEdgeCutTable writes the table as text, grouped like the paper's.
func RenderEdgeCutTable(w io.Writer, rows []EdgeCutRow, ks []int) {
	fmt.Fprintf(w, "== Percentage of edges cut across graph partitions (paper §IV-B) ==\n")
	fmt.Fprintf(w, "%-12s", "Graph")
	for _, k := range ks {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%d parts", k))
	}
	fmt.Fprintln(w)
	byGraph := map[string]map[int]float64{}
	var order []string
	for _, r := range rows {
		if byGraph[r.Graph] == nil {
			byGraph[r.Graph] = map[int]float64{}
			order = append(order, r.Graph)
		}
		byGraph[r.Graph][r.K] = r.CutPct
	}
	for _, g := range order {
		fmt.Fprintf(w, "%-12s", g)
		for _, k := range ks {
			fmt.Fprintf(w, " %9.3f%%", byGraph[g][k])
		}
		fmt.Fprintln(w)
	}
}
