package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/vertex"
)

// PageRankModelRow compares the two programming models on the same
// algorithm: vertex-centric PageRank ships one message per edge per
// iteration, subgraph-centric PageRank batches all contributions crossing a
// subgraph boundary into one message — the communication argument of the
// subgraph-centric line of work the paper builds on.
type PageRankModelRow struct {
	Model      string
	Graph      string
	Iterations int
	Messages   int64
	Supersteps int
	SimTime    time.Duration
	// MaxRankDiff is the largest per-vertex difference between the two
	// models' rank vectors (should be ~0: same math).
	MaxRankDiff float64
}

// PageRankModelAblation runs both PageRank implementations at the same
// partitioning and iteration count.
func PageRankModelAblation(ds *Dataset, k, iterations int, cfg bsp.Config, seed int64) ([]PageRankModelRow, error) {
	parts, a, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}

	vcfg := vertex.Config{CoresPerHost: cfg.CoresPerHost}
	vRanks, vres, err := vertex.PageRank(ds.Template, a, vcfg, 0.85, iterations)
	if err != nil {
		return nil, err
	}

	prog, err := algorithms.NewPageRank(ds.Template, parts, 0.85, iterations)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(k)
	res, err := core.Run(&core.Job{
		Template:  ds.Template,
		Parts:     parts,
		Source:    core.MemorySource{C: ds.Latencies},
		Program:   prog,
		Pattern:   core.SequentiallyDependent,
		Timesteps: 1,
		Config:    cfg,
		Recorder:  rec,
	})
	if err != nil {
		return nil, err
	}
	sRanks := prog.Ranks(parts, ds.Template)

	var maxDiff float64
	for v := range sRanks {
		if d := math.Abs(sRanks[v] - vRanks[v]); d > maxDiff {
			maxDiff = d
		}
	}
	return []PageRankModelRow{
		{
			Model: "vertex-centric", Graph: ds.Name, Iterations: iterations,
			Messages: vres.Messages, Supersteps: vres.Supersteps,
			SimTime: vres.SimTime, MaxRankDiff: maxDiff,
		},
		{
			Model: "subgraph-centric", Graph: ds.Name, Iterations: iterations,
			Messages: rec.TotalMessages(), Supersteps: res.Supersteps,
			SimTime: res.SimTime, MaxRankDiff: maxDiff,
		},
	}, nil
}

// RenderPageRankModel writes the ablation as text.
func RenderPageRankModel(w io.Writer, rows []PageRankModelRow) {
	fmt.Fprintf(w, "== Ablation: PageRank under both programming models (same math, same partitions) ==\n")
	fmt.Fprintf(w, "%-18s %-12s %6s %12s %10s %12s\n", "Model", "Graph", "Iters", "Messages", "Supersteps", "SimTime")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-12s %6d %12d %10d %12s\n",
			r.Model, r.Graph, r.Iterations, r.Messages, r.Supersteps, r.SimTime.Round(time.Millisecond))
	}
	if len(rows) == 2 && rows[1].Messages > 0 {
		fmt.Fprintf(w, "message reduction: %.1fx (max rank deviation %.2e)\n",
			float64(rows[0].Messages)/float64(rows[1].Messages), rows[0].MaxRankDiff)
	}
}

// ElasticHeadroomRow quantifies the paper's §IV-E research suggestion
// ("partitions which are active at a given timestep can pass some of their
// subgraphs to an idle partition … or use elastic scaling on Clouds"): per
// timestep, the gap between the busiest host's compute and the fleet
// average is the time a perfect rebalancer or elastic scaler could
// reclaim.
type ElasticHeadroomRow struct {
	Algo  string
	Graph string
	K     int
	// Actual is the simulated compute-bound cluster time (sum over
	// timesteps of the slowest host's compute).
	Actual time.Duration
	// Balanced is the idealized time with compute perfectly spread (sum of
	// per-timestep mean host compute).
	Balanced time.Duration
	// IdleSteps counts (timestep, host) pairs whose compute is under 5% of
	// that timestep's busiest host — the near-idle VMs the paper suggests
	// spinning down or stealing subgraphs from.
	IdleSteps  int
	TotalPairs int
}

// Headroom returns the fraction of compute time an ideal rebalancer
// reclaims.
func (r ElasticHeadroomRow) Headroom() float64 {
	if r.Actual == 0 {
		return 0
	}
	return 1 - float64(r.Balanced)/float64(r.Actual)
}

// ElasticHeadroom replays an algorithm and derives the rebalancing headroom
// from the per-partition compute recordings.
func ElasticHeadroom(ds *Dataset, algo string, k int, cfg bsp.Config, seed int64) (*ElasticHeadroomRow, error) {
	_, rec, err := RunAlgo(ds, algo, k, cfg, seed)
	if err != nil {
		return nil, err
	}
	row := &ElasticHeadroomRow{Algo: algo, Graph: ds.Name, K: k}
	for i := 0; i < rec.NumTimesteps(); i++ {
		step := rec.Step(i)
		var maxC, sumC time.Duration
		for p := range step.Parts {
			c := step.Parts[p].Compute
			sumC += c
			if c > maxC {
				maxC = c
			}
		}
		for p := range step.Parts {
			row.TotalPairs++
			if maxC > 0 && step.Parts[p].Compute < maxC/20 {
				row.IdleSteps++
			}
		}
		row.Actual += maxC
		row.Balanced += sumC / time.Duration(k)
	}
	return row, nil
}

// PrefetchRow is one configuration of the instance-prefetch ablation: the
// same GoFS-backed job with loads paid inline (Depth 0, the paper's §IV-D
// behavior with its periodic pack-load spikes) versus decoded ahead on a
// background goroutine (Depth > 0).
type PrefetchRow struct {
	Algo  string
	Graph string
	K     int
	// Depth is the prefetch lookahead; 0 means loads are inline.
	Depth int
	// SimTime is the simulated cluster time including the load share.
	SimTime time.Duration
	// LoadWait is the wall time the runner was blocked on Load across all
	// timesteps.
	LoadWait time.Duration
	// LoadFetch is the full decode cost across all timesteps, whether paid
	// inline or on the background goroutine.
	LoadFetch time.Duration
	// Overlapped is the portion of LoadFetch hidden behind compute.
	Overlapped time.Duration
	// Prefetched counts timesteps whose instance was already buffered when
	// requested.
	Prefetched int
	// PackLoads counts GoFS pack materializations.
	PackLoads int
	Timesteps int
}

// HiddenFrac returns the fraction of decode cost hidden behind compute.
func (r PrefetchRow) HiddenFrac() float64 {
	if r.LoadFetch == 0 {
		return 0
	}
	return float64(r.Overlapped) / float64(r.LoadFetch)
}

// PrefetchAblation writes a GoFS dataset, then runs the same algorithm once
// with inline loads and once per requested lookahead depth, quantifying how
// much of the pack-decode cost the pipelined source hides behind compute.
func PrefetchAblation(ds *Dataset, algo string, k int, depths []int, dir string, pack, bin int, cfg bsp.Config, seed int64) ([]PrefetchRow, error) {
	if pack <= 0 {
		pack = gofs.DefaultPack
	}
	if bin <= 0 {
		bin = gofs.DefaultBin
	}
	coll := ds.Latencies
	if algo == AlgoMeme || algo == AlgoHash {
		coll = ds.Tweets
	}
	parts, a, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	dsDir := filepath.Join(dir, fmt.Sprintf("%s_%s_k%d_prefetch", strings.ToLower(ds.Name), strings.ToLower(algo), k))
	if err := gofs.WriteDataset(dsDir, coll, a, pack, bin); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dsDir)

	var out []PrefetchRow
	for _, depth := range append([]int{0}, depths...) {
		store, err := gofs.Open(dsDir)
		if err != nil {
			return nil, err
		}
		loader := gofs.NewLoader(store)
		rec := newRecorder(k)
		job := &core.Job{
			Template:      ds.Template,
			Parts:         parts,
			Source:        loader,
			Pattern:       core.SequentiallyDependent,
			Config:        cfg,
			Recorder:      rec,
			PrefetchDepth: depth,
		}
		switch algo {
		case AlgoTDSP:
			job.Program = algorithms.NewTDSP(parts, ds.SourceVertex, ds.Delta, "latency")
		case AlgoMeme:
			job.Program = algorithms.NewMeme(parts, ds.Meme, "tweets")
		default:
			return nil, fmt.Errorf("experiments: prefetch ablation supports TDSP and MEME, not %q", algo)
		}
		res, err := core.Run(job)
		if err != nil {
			return nil, err
		}
		row := PrefetchRow{
			Algo: algo, Graph: ds.Name, K: k, Depth: depth,
			SimTime:    res.SimTime,
			Overlapped: rec.TotalLoadOverlap(),
			PackLoads:  loader.PackLoads,
			Timesteps:  rec.NumTimesteps(),
		}
		for i := 0; i < rec.NumTimesteps(); i++ {
			step := rec.Step(i)
			row.LoadWait += step.Load
			row.LoadFetch += step.LoadFetch
			if step.Prefetched {
				row.Prefetched++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderPrefetch writes the prefetch ablation as text.
func RenderPrefetch(w io.Writer, rows []PrefetchRow) {
	fmt.Fprintf(w, "== Extension: pipelined GoFS instance prefetch (hiding §IV-D load spikes behind compute) ==\n")
	fmt.Fprintf(w, "%-6s %-12s %4s %6s %12s %12s %12s %10s %10s %6s\n",
		"Algo", "Graph", "K", "depth", "load wait", "load fetch", "overlapped", "hidden", "prefetched", "packs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-12s %4d %6d %12s %12s %12s %9.1f%% %6d/%-3d %6d\n",
			r.Algo, r.Graph, r.K, r.Depth,
			r.LoadWait.Round(time.Microsecond), r.LoadFetch.Round(time.Microsecond),
			r.Overlapped.Round(time.Microsecond), r.HiddenFrac()*100,
			r.Prefetched, r.Timesteps, r.PackLoads)
	}
}

// RenderElasticHeadroom writes the analysis as text.
func RenderElasticHeadroom(w io.Writer, rows []*ElasticHeadroomRow) {
	fmt.Fprintf(w, "== Extension: elastic-scaling headroom (paper §IV-E future work) ==\n")
	fmt.Fprintf(w, "%-6s %-12s %4s %12s %12s %10s %12s\n",
		"Algo", "Graph", "K", "actual", "balanced", "headroom", "idle hostxts")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-12s %4d %12s %12s %9.1f%% %6d/%d\n",
			r.Algo, r.Graph, r.K,
			r.Actual.Round(time.Microsecond), r.Balanced.Round(time.Microsecond),
			r.Headroom()*100, r.IdleSteps, r.TotalPairs)
	}
}
