// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on synthetic datasets that match the structural regimes
// of the originals. Each experiment has a typed result plus a text
// renderer; cmd/tsbench drives them and EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Because the harness runs on a single machine, distributed scaling is
// reported in simulated cluster time (see metrics.TimestepRecord.SimWall):
// every Compute invocation is individually measured and scheduled onto the
// simulated cluster of K hosts × CoresPerHost cores, exactly the paper's
// deployment shape (one partition per m3.large VM with 2 cores).
package experiments

import (
	"fmt"

	"tsgraph/internal/gen"
	"tsgraph/internal/graph"
)

// Scale selects dataset sizes. The paper's templates have ~2M vertices;
// the default Medium scale keeps the full suite in minutes on one machine
// while preserving every structural contrast the results depend on.
type Scale struct {
	Name               string
	RoadRows, RoadCols int
	SWN, SWM           int
	Timesteps          int
	Seed               int64
}

// Predefined scales.
var (
	// Small keeps unit tests and go-test benchmarks fast.
	Small = Scale{Name: "small", RoadRows: 40, RoadCols: 40, SWN: 1500, SWM: 2, Timesteps: 20, Seed: 42}
	// Medium is the tsbench default.
	Medium = Scale{Name: "medium", RoadRows: 120, RoadCols: 120, SWN: 30000, SWM: 2, Timesteps: 50, Seed: 42}
	// Large approaches the paper's regime while staying single-machine
	// feasible.
	Large = Scale{Name: "large", RoadRows: 260, RoadCols: 260, SWN: 120000, SWM: 2, Timesteps: 50, Seed: 42}
)

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (small|medium|large)", name)
	}
}

// Latency distribution for the road-data generator.
const (
	latMin = 1.0
	latMax = 20.0
)

// Dataset bundles one template with both of the paper's instance datasets:
// road data (uncorrelated random latencies, for TDSP/SSSP) and tweet data
// (SIR meme propagation, for MEME/HASH).
type Dataset struct {
	Name     string
	Template *graph.Template
	// Latencies is the road-data collection (edge attribute "latency").
	Latencies *graph.Collection
	// Tweets is the tweet-data collection (vertex attribute "tweets").
	Tweets *graph.Collection
	// Delta is the instance period δ used by the latency collection.
	Delta float64
	// Meme is the hashtag the SIR generator propagated.
	Meme string
	// SourceVertex is the TDSP/SSSP source (template index).
	SourceVertex int
}

// roadDelta picks δ so the TDSP frontier needs most of the timestep range
// to sweep the road network (the paper's CARN finishes at 47 of 50), while
// the small world finishes within a few timesteps (WIKI: 4 of 50).
func roadDelta(sc Scale) float64 {
	ecc := float64(sc.RoadRows + sc.RoadCols) // corner-source eccentricity in hops
	avgLat := (latMin + latMax) / 2
	// The 1.4 factor is an empirical calibration: diagonal shortcuts and
	// Dijkstra's metric (distance, not hops) make the frontier ~40% faster
	// than the hop estimate, and we want the road sweep to use ~90% of the
	// timestep range, as CARN does in the paper (47 of 50).
	hopsPerStep := ecc / (1.4 * float64(sc.Timesteps))
	d := hopsPerStep * avgLat
	if d < latMax {
		d = latMax // never make a single edge uncrossable on average
	}
	return float64(int(d + 1))
}

// BuildRoad generates the CARN-analogue dataset.
func BuildRoad(sc Scale) (*Dataset, error) {
	t := gen.RoadNetwork(gen.RoadConfig{
		Rows: sc.RoadRows, Cols: sc.RoadCols,
		RemoveFrac: 0.15, ShortcutFrac: 0.01,
		Seed: sc.Seed, Name: "ROAD",
	})
	delta := roadDelta(sc)
	lat, err := gen.RandomLatencies(t, gen.LatencyConfig{
		Timesteps: sc.Timesteps, T0: 0, Delta: int64(delta),
		Min: latMin, Max: latMax, Seed: sc.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	// The paper uses a 30% hit probability on CARN.
	sir, err := gen.SIRTweets(t, gen.SIRConfig{
		Timesteps: sc.Timesteps, T0: 0, Delta: int64(delta),
		Memes: []string{"#meme"}, SeedsPerMeme: 5,
		HitProb: 0.30, RecoverAfter: 3, BackgroundTags: 20,
		Seed: sc.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name: "ROAD", Template: t,
		Latencies: lat, Tweets: sir.Collection,
		Delta: delta, Meme: "#meme", SourceVertex: 0,
	}, nil
}

// BuildSmallWorld generates the WIKI-analogue dataset. It shares δ with the
// road dataset of the same scale (the paper uses one generator setup), so
// its tiny diameter makes TDSP converge in a handful of timesteps.
func BuildSmallWorld(sc Scale) (*Dataset, error) {
	t := gen.SmallWorld(gen.SmallWorldConfig{
		N: sc.SWN, M: sc.SWM, Seed: sc.Seed + 10, Name: "SMALLWORLD",
	})
	delta := roadDelta(sc)
	lat, err := gen.RandomLatencies(t, gen.LatencyConfig{
		Timesteps: sc.Timesteps, T0: 0, Delta: int64(delta),
		Min: latMin, Max: latMax, Seed: sc.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	// The paper uses 2% on the real WIKI, whose hubs have tens of
	// thousands of followers; our synthetic hubs top out in the hundreds,
	// so — like the paper, which tuned the hit probability per graph "to
	// get a stable propagation across 50 time steps" — we raise it until
	// R0 exceeds 1 on this template.
	sir, err := gen.SIRTweets(t, gen.SIRConfig{
		Timesteps: sc.Timesteps, T0: 0, Delta: int64(delta),
		Memes: []string{"#meme"}, SeedsPerMeme: 10,
		HitProb: 0.15, RecoverAfter: 3, BackgroundTags: 20,
		Seed: sc.Seed + 12,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name: "SMALLWORLD", Template: t,
		Latencies: lat, Tweets: sir.Collection,
		Delta: delta, Meme: "#meme", SourceVertex: 0,
	}, nil
}

// BuildDatasets generates both datasets for a scale.
func BuildDatasets(sc Scale) (road, sw *Dataset, err error) {
	road, err = BuildRoad(sc)
	if err != nil {
		return nil, nil, err
	}
	sw, err = BuildSmallWorld(sc)
	if err != nil {
		return nil, nil, err
	}
	return road, sw, nil
}
