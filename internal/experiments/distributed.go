package experiments

import (
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/obs"
	"tsgraph/internal/subgraph"
)

// DistributedSmokeRow is one rank of the loopback-cluster smoke run: the
// rank's run shape plus its aggregate wire traffic (frames/bytes sent and
// received, cumulative flush latency), proving the TCP mesh carried the run
// and surfacing the per-peer wire counters the observability endpoint
// exports.
type DistributedSmokeRow struct {
	Rank         int
	Partitions   int
	TimestepsRun int
	Supersteps   int
	Wall         time.Duration
	Reached      int // TDSP-reached vertices owned by this rank
	Wire         []cluster.PeerWireStats
}

// DistributedSmokeOptions tunes the loopback smoke run's observability.
type DistributedSmokeOptions struct {
	// OnNode, when non-nil, sees every node before the run starts (tsbench
	// registers them with its obs registry so /metrics scrapes include the
	// per-peer wire counters).
	OnNode func(*cluster.Node)
	// Trace gives every rank its own enabled tracer, gathers the per-rank
	// shards over the mesh at rank 0 after the run, and returns the
	// clock-aligned merged trace plus its cluster skew decomposition.
	Trace bool
	// Watchdog, when non-nil, attaches a cluster-level stall watchdog to
	// every rank (parties are ranks; warnings are collected in the result).
	Watchdog *obs.WatchdogConfig
}

// DistributedSmokeResult is the full outcome of a loopback smoke run.
type DistributedSmokeResult struct {
	Rows []DistributedSmokeRow
	// Merged is the clock-aligned cross-rank trace and Shards the raw
	// per-rank inputs it was built from (nil unless Options.Trace was set).
	Merged *obs.MergedTrace
	Shards []obs.TraceShard
	// Skew decomposes imbalance into intra-rank compute skew vs inter-rank
	// barrier wait (zero value unless Options.Trace was set).
	Skew obs.ClusterSkewReport
	// Offsets is rank 0's clock view: Offsets[r] ≈ rank r's clock minus
	// rank 0's clock (nil unless Options.Trace was set).
	Offsets []time.Duration
	// Stalls are the watchdog warnings fired across all ranks, if any.
	Stalls []obs.StallWarning
}

// DistributedSmoke runs TDSP as a genuine nodes-way distributed execution
// inside one process: one cluster.Node per rank over loopback TCP, each
// owning a round-robin share of the partitions.
func DistributedSmoke(ds *Dataset, nodesN, k int, cfg bsp.Config, seed int64, opts DistributedSmokeOptions) (*DistributedSmokeResult, error) {
	if nodesN < 2 {
		nodesN = 2
	}
	parts, _, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	owner := make([]int32, k)
	for p := range owner {
		owner[p] = int32(p % nodesN)
	}

	// Loopback mesh on ephemeral ports.
	listeners := make([]net.Listener, nodesN)
	addrs := make([]string, nodesN)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tracers := make([]*obs.Tracer, nodesN)
	watchdogs := make([]*obs.Watchdog, nodesN)
	nodes := make([]*cluster.Node, nodesN)
	for i := range nodes {
		if opts.Trace {
			tracers[i] = obs.NewTracer(0)
			tracers[i].Enable()
		}
		if opts.Watchdog != nil {
			wcfg := *opts.Watchdog
			wcfg.Parties = nodesN
			wcfg.Tracer = tracers[i]
			if wcfg.Describe == nil {
				rank := i
				wcfg.Describe = func(party int) string {
					return fmt.Sprintf("rank %d (seen from rank %d)", party, rank)
				}
			}
			watchdogs[i] = obs.NewWatchdog(wcfg)
		}
		n, err := cluster.New(cluster.Config{
			Rank: i, Addrs: addrs, Listener: listeners[i], Owner: owner,
			Tracer: tracers[i], Watchdog: watchdogs[i],
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		if opts.OnNode != nil {
			opts.OnNode(n)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, wd := range watchdogs {
			if wd != nil {
				wd.Close()
			}
		}
	}()

	var startWG sync.WaitGroup
	startErrs := make([]error, nodesN)
	for i, n := range nodes {
		startWG.Add(1)
		go func(i int, n *cluster.Node) {
			defer startWG.Done()
			startErrs[i] = n.Start()
		}(i, n)
	}
	startWG.Wait()
	for i, err := range startErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: node %d start: %w", i, err)
		}
	}

	total := subgraph.TotalSubgraphs(parts)
	rows := make([]DistributedSmokeRow, nodesN)
	errs := make([]error, nodesN)
	var wg sync.WaitGroup
	for r := 0; r < nodesN; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var local []*subgraph.PartitionData
			for _, pd := range parts {
				if int(owner[pd.PID]) == r {
					local = append(local, pd)
				}
			}
			prog := algorithms.NewTDSP(local, ds.SourceVertex, ds.Delta, "latency")
			engine := bsp.NewEngineRemote(local, cfg, nodes[r])
			nodes[r].Bind(engine)
			wallStart := time.Now()
			res, err := core.RunWithEngine(&core.Job{
				Template:        ds.Template,
				Parts:           local,
				Source:          core.MemorySource{C: ds.Latencies},
				Program:         prog,
				Pattern:         core.SequentiallyDependent,
				Config:          cfg,
				Remote:          nodes[r],
				Coordinator:     nodes[r],
				GlobalSubgraphs: total,
				Tracer:          tracers[r],
			}, engine)
			if err != nil {
				errs[r] = err
				return
			}
			arr := prog.Arrivals(local, ds.Template)
			reached := 0
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					if !math.IsInf(arr[g], 1) {
						reached++
					}
				}
			}
			rows[r] = DistributedSmokeRow{
				Rank: r, Partitions: len(local),
				TimestepsRun: res.TimestepsRun, Supersteps: res.Supersteps,
				Wall: time.Since(wallStart), Reached: reached,
				Wire: nodes[r].WireStats(),
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: distributed smoke rank %d: %w", r, err)
		}
	}

	result := &DistributedSmokeResult{Rows: rows}
	for _, wd := range watchdogs {
		result.Stalls = append(result.Stalls, wd.Warnings()...)
	}
	if opts.Trace {
		// Non-zero ranks ship their shards first (non-blocking sends), then
		// rank 0 collects — exercising the same wire path a multi-process
		// deployment uses.
		for r := 1; r < nodesN; r++ {
			if _, err := nodes[r].GatherTraces(0); err != nil {
				return nil, fmt.Errorf("experiments: rank %d trace gather: %w", r, err)
			}
		}
		shards, err := nodes[0].GatherTraces(0)
		if err != nil {
			return nil, fmt.Errorf("experiments: trace gather: %w", err)
		}
		merged := obs.MergeTraces(shards)
		result.Merged = merged
		result.Shards = shards
		result.Skew = *merged.ClusterSkew()
		result.Offsets = nodes[0].ClockOffsets()
	}
	return result, nil
}

// RenderDistributedSmoke writes the loopback-cluster smoke table.
func RenderDistributedSmoke(w io.Writer, rows []DistributedSmokeRow) {
	fmt.Fprintf(w, "== Distributed smoke: TDSP over a %d-node loopback TCP mesh ==\n", len(rows))
	fmt.Fprintf(w, "%5s %6s %6s %6s %8s %8s %11s %11s %11s\n",
		"rank", "parts", "steps", "sups", "reached", "wall", "sent", "recv", "flush")
	for _, r := range rows {
		var framesSent, bytesSent, framesRecv, bytesRecv int64
		var flush time.Duration
		for _, ws := range r.Wire {
			framesSent += ws.FramesSent
			bytesSent += ws.BytesSent
			framesRecv += ws.FramesRecv
			bytesRecv += ws.BytesRecv
			flush += ws.FlushTime
		}
		fmt.Fprintf(w, "%5d %6d %6d %6d %8d %8s %11s %11s %11s\n",
			r.Rank, r.Partitions, r.TimestepsRun, r.Supersteps, r.Reached,
			r.Wall.Round(time.Millisecond),
			fmt.Sprintf("%df/%dB", framesSent, bytesSent),
			fmt.Sprintf("%df/%dB", framesRecv, bytesRecv),
			flush.Round(time.Microsecond))
	}
}
