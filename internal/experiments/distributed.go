package experiments

import (
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/subgraph"
)

// DistributedSmokeRow is one rank of the loopback-cluster smoke run: the
// rank's run shape plus its aggregate wire traffic (frames/bytes sent and
// received, cumulative flush latency), proving the TCP mesh carried the run
// and surfacing the per-peer wire counters the observability endpoint
// exports.
type DistributedSmokeRow struct {
	Rank         int
	Partitions   int
	TimestepsRun int
	Supersteps   int
	Wall         time.Duration
	Reached      int // TDSP-reached vertices owned by this rank
	Wire         []cluster.PeerWireStats
}

// DistributedSmoke runs TDSP as a genuine nodes-way distributed execution
// inside one process: one cluster.Node per rank over loopback TCP, each
// owning a round-robin share of the partitions. onNode, when non-nil, sees
// every node before the run starts (tsbench registers them with its obs
// registry so /metrics scrapes include the per-peer wire counters).
func DistributedSmoke(ds *Dataset, nodesN, k int, cfg bsp.Config, seed int64, onNode func(*cluster.Node)) ([]DistributedSmokeRow, error) {
	if nodesN < 2 {
		nodesN = 2
	}
	parts, _, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	owner := make([]int32, k)
	for p := range owner {
		owner[p] = int32(p % nodesN)
	}

	// Loopback mesh on ephemeral ports.
	listeners := make([]net.Listener, nodesN)
	addrs := make([]string, nodesN)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*cluster.Node, nodesN)
	for i := range nodes {
		n, err := cluster.New(cluster.Config{Rank: i, Addrs: addrs, Listener: listeners[i], Owner: owner})
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		if onNode != nil {
			onNode(n)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	var startWG sync.WaitGroup
	startErrs := make([]error, nodesN)
	for i, n := range nodes {
		startWG.Add(1)
		go func(i int, n *cluster.Node) {
			defer startWG.Done()
			startErrs[i] = n.Start()
		}(i, n)
	}
	startWG.Wait()
	for i, err := range startErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: node %d start: %w", i, err)
		}
	}

	total := subgraph.TotalSubgraphs(parts)
	rows := make([]DistributedSmokeRow, nodesN)
	errs := make([]error, nodesN)
	var wg sync.WaitGroup
	for r := 0; r < nodesN; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var local []*subgraph.PartitionData
			for _, pd := range parts {
				if int(owner[pd.PID]) == r {
					local = append(local, pd)
				}
			}
			prog := algorithms.NewTDSP(local, ds.SourceVertex, ds.Delta, "latency")
			engine := bsp.NewEngineRemote(local, cfg, nodes[r])
			nodes[r].Bind(engine)
			wallStart := time.Now()
			res, err := core.RunWithEngine(&core.Job{
				Template:        ds.Template,
				Parts:           local,
				Source:          core.MemorySource{C: ds.Latencies},
				Program:         prog,
				Pattern:         core.SequentiallyDependent,
				Config:          cfg,
				Remote:          nodes[r],
				Coordinator:     nodes[r],
				GlobalSubgraphs: total,
			}, engine)
			if err != nil {
				errs[r] = err
				return
			}
			arr := prog.Arrivals(local, ds.Template)
			reached := 0
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					if !math.IsInf(arr[g], 1) {
						reached++
					}
				}
			}
			rows[r] = DistributedSmokeRow{
				Rank: r, Partitions: len(local),
				TimestepsRun: res.TimestepsRun, Supersteps: res.Supersteps,
				Wall: time.Since(wallStart), Reached: reached,
				Wire: nodes[r].WireStats(),
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: distributed smoke rank %d: %w", r, err)
		}
	}
	return rows, nil
}

// RenderDistributedSmoke writes the loopback-cluster smoke table.
func RenderDistributedSmoke(w io.Writer, rows []DistributedSmokeRow) {
	fmt.Fprintf(w, "== Distributed smoke: TDSP over a %d-node loopback TCP mesh ==\n", len(rows))
	fmt.Fprintf(w, "%5s %6s %6s %6s %8s %8s %11s %11s %11s\n",
		"rank", "parts", "steps", "sups", "reached", "wall", "sent", "recv", "flush")
	for _, r := range rows {
		var framesSent, bytesSent, framesRecv, bytesRecv int64
		var flush time.Duration
		for _, ws := range r.Wire {
			framesSent += ws.FramesSent
			bytesSent += ws.BytesSent
			framesRecv += ws.FramesRecv
			bytesRecv += ws.BytesRecv
			flush += ws.FlushTime
		}
		fmt.Fprintf(w, "%5d %6d %6d %6d %8d %8s %11s %11s %11s\n",
			r.Rank, r.Partitions, r.TimestepsRun, r.Supersteps, r.Reached,
			r.Wall.Round(time.Millisecond),
			fmt.Sprintf("%df/%dB", framesSent, bytesSent),
			fmt.Sprintf("%df/%dB", framesRecv, bytesRecv),
			flush.Round(time.Microsecond))
	}
}
