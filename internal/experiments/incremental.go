package experiments

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
)

// IncrementalStorageRow compares the full (v1) and delta-encoded (v2) GoFS
// formats on the same latency collection at one churn rate: on-disk bytes
// and the wall time of one sequential loader sweep over every timestep.
// At low churn the delta format stores and decodes only what changed, so
// both columns shrink roughly with the churn rate.
type IncrementalStorageRow struct {
	Churn     float64
	Timesteps int
	// FullBytes / DeltaBytes count the instance slice files only: the
	// template, assignment and manifest are format-invariant fixed costs
	// shared byte-for-byte by both datasets.
	FullBytes  int64
	DeltaBytes int64
	// FullSweep / DeltaSweep are the wall times of decoding every timestep
	// in order through a fresh Loader.
	FullSweep  time.Duration
	DeltaSweep time.Duration
}

// Shrink is the on-disk size ratio full/delta.
func (r IncrementalStorageRow) Shrink() float64 {
	if r.DeltaBytes == 0 {
		return 0
	}
	return float64(r.FullBytes) / float64(r.DeltaBytes)
}

// Speedup is the sequential-sweep wall ratio full/delta.
func (r IncrementalStorageRow) Speedup() float64 {
	if r.DeltaSweep == 0 {
		return 0
	}
	return float64(r.FullSweep) / float64(r.DeltaSweep)
}

// IncrementalComputeRow is one configuration of the recompute ablation: the
// same meme-tracking job over the same localized-churn tweet collection,
// varying the store format and the scheduler.
type IncrementalComputeRow struct {
	Mode  string // full-store | delta-store | delta+incremental
	Store string // v1 | v2
	// Wall is the end-to-end wall time of core.Run.
	Wall time.Duration
	// SimTime is the simulated cluster time.
	SimTime time.Duration
	// Skipped counts (timestep, subgraph) slots the incremental scheduler
	// proved clean and never ran; Slots is the total number of such slots.
	Skipped int
	Slots   int
	// Identical reports whether every deliverable (per-vertex coloring
	// times) matched the full-recompute baseline exactly.
	Identical bool
}

// IncrementalResult bundles both tables of the -exp incremental ablation.
type IncrementalResult struct {
	Graph     string
	Pack      int
	Bin       int
	SnapEvery int
	K         int
	Storage   []IncrementalStorageRow
	Compute   []IncrementalComputeRow
}

// dirBytes sums the sizes of all regular files under root.
func dirBytes(root string) (int64, error) {
	var n int64
	err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			n += info.Size()
		}
		return nil
	})
	return n, err
}

// sweepDataset decodes every timestep in order through a fresh Loader and
// returns the wall time; the minimum of three sweeps is kept (the suite's
// convention for timing cells).
func sweepDataset(dir string) (time.Duration, error) {
	var best time.Duration
	for rep := 0; rep < 3; rep++ {
		store, err := gofs.Open(dir)
		if err != nil {
			return 0, err
		}
		loader := gofs.NewLoader(store)
		start := time.Now()
		for t := 0; t < loader.Timesteps(); t++ {
			if _, err := loader.Load(t); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// IncrementalAblation quantifies the delta-encoded store and the
// incremental scheduler (DESIGN.md's storage section).
//
// The storage table regenerates the dataset's latency collection at each
// churn rate (the fraction of edge latencies re-randomized per timestep;
// the suite's standard datasets use 1.0, the paper's fully uncorrelated
// behavior), writes it in both formats, and measures on-disk bytes plus a
// sequential decode sweep.
//
// The compute table runs meme tracking over a localized SIR collection
// (one seed, no background noise — the regime where instance churn is
// spatially concentrated) through a full-format store, a delta store, and
// a delta store with core.Job.Incremental, verifying that every mode
// produces identical colorings while the incremental run skips the
// delta-clean subgraphs.
func IncrementalAblation(ds *Dataset, churns []float64, k int, dir string, pack, bin, snapEvery int, cfg bsp.Config, seed int64) (*IncrementalResult, error) {
	if pack <= 0 {
		pack = gofs.DefaultPack
	}
	if bin <= 0 {
		bin = gofs.DefaultBin
	}
	if snapEvery <= 0 {
		snapEvery = pack
	}
	steps := ds.Latencies.NumInstances()
	res := &IncrementalResult{
		Graph: ds.Name, Pack: pack, Bin: bin, SnapEvery: snapEvery, K: k,
	}
	parts, a, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	scratch := filepath.Join(dir, fmt.Sprintf("%s_k%d_incremental", strings.ToLower(ds.Name), k))
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	for _, churn := range churns {
		lat, err := gen.RandomLatencies(ds.Template, gen.LatencyConfig{
			Timesteps: steps, T0: 0, Delta: int64(ds.Delta),
			Min: latMin, Max: latMax, Seed: seed + 11, Churn: churn,
		})
		if err != nil {
			return nil, err
		}
		fullDir := filepath.Join(scratch, fmt.Sprintf("churn%g_full", churn))
		deltaDir := filepath.Join(scratch, fmt.Sprintf("churn%g_delta", churn))
		if err := gofs.WriteDatasetOptions(fullDir, lat, a, gofs.Options{Pack: pack, Bin: bin}); err != nil {
			return nil, err
		}
		if err := gofs.WriteDatasetOptions(deltaDir, lat, a, gofs.Options{Pack: pack, Bin: bin, SnapshotEvery: snapEvery}); err != nil {
			return nil, err
		}
		row := IncrementalStorageRow{Churn: churn, Timesteps: steps}
		if row.FullBytes, err = dirBytes(filepath.Join(fullDir, "slices")); err != nil {
			return nil, err
		}
		if row.DeltaBytes, err = dirBytes(filepath.Join(deltaDir, "slices")); err != nil {
			return nil, err
		}
		if row.FullSweep, err = sweepDataset(fullDir); err != nil {
			return nil, err
		}
		if row.DeltaSweep, err = sweepDataset(deltaDir); err != nil {
			return nil, err
		}
		res.Storage = append(res.Storage, row)
		os.RemoveAll(fullDir)
		os.RemoveAll(deltaDir)
	}

	// Localized tweet churn: one SIR seed, no background tags, so distant
	// subgraphs stay delta-clean until the wave reaches them and every
	// subgraph is clean after it burns out.
	sir, err := gen.SIRTweets(ds.Template, gen.SIRConfig{
		Timesteps: steps, T0: 0, Delta: int64(ds.Delta),
		Memes: []string{ds.Meme}, SeedsPerMeme: 1,
		HitProb: 0.30, RecoverAfter: 3, Seed: seed + 12,
	})
	if err != nil {
		return nil, err
	}
	fullDir := filepath.Join(scratch, "sir_full")
	deltaDir := filepath.Join(scratch, "sir_delta")
	if err := gofs.WriteDatasetOptions(fullDir, sir.Collection, a, gofs.Options{Pack: pack, Bin: bin}); err != nil {
		return nil, err
	}
	if err := gofs.WriteDatasetOptions(deltaDir, sir.Collection, a, gofs.Options{Pack: pack, Bin: bin, SnapshotEvery: snapEvery}); err != nil {
		return nil, err
	}
	slots := 0
	for _, pd := range parts {
		slots += len(pd.Subgraphs) * steps
	}
	modes := []struct {
		mode, store, dir string
		incremental      bool
	}{
		{"full-store", "v1", fullDir, false},
		{"delta-store", "v2", deltaDir, false},
		{"delta+incremental", "v2", deltaDir, true},
	}
	var baseline []int32
	for _, m := range modes {
		store, err := gofs.Open(m.dir)
		if err != nil {
			return nil, err
		}
		prog := algorithms.NewMeme(parts, ds.Meme, "tweets")
		rec := newRecorder(k)
		start := time.Now()
		run, err := core.Run(&core.Job{
			Template:    ds.Template,
			Parts:       parts,
			Source:      gofs.NewLoader(store),
			Program:     prog,
			Pattern:     core.SequentiallyDependent,
			Config:      cfg,
			Recorder:    rec,
			Incremental: m.incremental,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: incremental %s: %w", m.mode, err)
		}
		row := IncrementalComputeRow{
			Mode: m.mode, Store: m.store,
			Wall: time.Since(start), SimTime: run.SimTime,
			Skipped: run.SubgraphsSkipped, Slots: slots,
		}
		colored := prog.ColoredAt(parts, ds.Template)
		if baseline == nil {
			baseline = colored
			row.Identical = true
		} else {
			row.Identical = true
			for v := range colored {
				if colored[v] != baseline[v] {
					row.Identical = false
					break
				}
			}
		}
		res.Compute = append(res.Compute, row)
	}
	return res, nil
}

// RenderIncremental writes the ablation as text.
func RenderIncremental(w io.Writer, r *IncrementalResult) {
	fmt.Fprintf(w, "== Extension: delta-encoded GoFS instances + incremental recompute ==\n")
	fmt.Fprintf(w, "storage (%s latencies, %d timesteps, pack=%d bin=%d, snapshot every %d):\n",
		r.Graph, rowTimesteps(r.Storage), r.Pack, r.Bin, r.SnapEvery)
	fmt.Fprintf(w, "%8s %12s %12s %8s %12s %12s %8s\n",
		"churn", "full slices", "delta slices", "shrink", "full sweep", "delta sweep", "speedup")
	for _, s := range r.Storage {
		fmt.Fprintf(w, "%7.2f%% %12d %12d %7.1fx %12s %12s %7.1fx\n",
			s.Churn*100, s.FullBytes, s.DeltaBytes, s.Shrink(),
			s.FullSweep.Round(time.Microsecond), s.DeltaSweep.Round(time.Microsecond), s.Speedup())
	}
	fmt.Fprintf(w, "compute (MEME over localized SIR churn, k=%d):\n", r.K)
	fmt.Fprintf(w, "%-18s %-5s %12s %12s %14s %10s\n",
		"mode", "store", "wall", "sim time", "skipped", "identical")
	for _, c := range r.Compute {
		fmt.Fprintf(w, "%-18s %-5s %12s %12s %8d/%-5d %10v\n",
			c.Mode, c.Store, c.Wall.Round(time.Microsecond), c.SimTime.Round(time.Microsecond),
			c.Skipped, c.Slots, c.Identical)
	}
}

func rowTimesteps(rows []IncrementalStorageRow) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Timesteps
}
