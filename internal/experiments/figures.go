package experiments

import (
	"fmt"
	"io"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/metrics"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
	"tsgraph/internal/vertex"
)

// Algo names used across the harness.
const (
	AlgoHash = "HASH"
	AlgoMeme = "MEME"
	AlgoTDSP = "TDSP"
)

// OnRecorder, when set, observes every metrics recorder the harness creates
// (tsbench points it at an obs.Registry so /metrics scrapes always reflect
// the experiment currently running). Set before running experiments; not
// safe to change concurrently with them.
var OnRecorder func(*metrics.Recorder)

// newRecorder creates a recorder for k partitions and hands it to OnRecorder.
func newRecorder(k int) *metrics.Recorder {
	rec := metrics.NewRecorder(k)
	if OnRecorder != nil {
		OnRecorder(rec)
	}
	return rec
}

// buildParts partitions a dataset's template for k hosts.
func buildParts(ds *Dataset, k int, seed int64) ([]*subgraph.PartitionData, *partition.Assignment, error) {
	a, err := (partition.Multilevel{Seed: seed}).Partition(ds.Template, k)
	if err != nil {
		return nil, nil, err
	}
	parts, err := subgraph.Build(ds.Template, a)
	if err != nil {
		return nil, nil, err
	}
	return parts, a, nil
}

// ScalabilityCell is one bar of Fig 5a: total time for one algorithm on one
// dataset at one partition count.
type ScalabilityCell struct {
	Algo  string
	Graph string
	K     int
	// SimTime is the simulated cluster time of the run.
	SimTime time.Duration
	// Wall is the real single-machine wall time (total work).
	Wall time.Duration
	// TimestepsRun counts executed timesteps (TDSP may converge early).
	TimestepsRun int
	Supersteps   int
}

// RunAlgo executes one of the paper's three algorithms on a dataset over k
// partitions and returns the cell plus the recorder for deeper analysis.
func RunAlgo(ds *Dataset, algo string, k int, cfg bsp.Config, seed int64) (*ScalabilityCell, *metrics.Recorder, error) {
	parts, _, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, nil, err
	}
	rec := newRecorder(k)
	wallStart := time.Now()
	var res *core.Result
	switch algo {
	case AlgoHash:
		_, res, err = algorithms.RunHashtag(ds.Template, parts, ds.Meme, "tweets",
			core.MemorySource{C: ds.Tweets}, cfg, rec, 1)
	case AlgoMeme:
		_, res, err = algorithms.RunMeme(ds.Template, parts, ds.Meme, "tweets",
			core.MemorySource{C: ds.Tweets}, cfg, rec)
	case AlgoTDSP:
		_, res, err = algorithms.RunTDSP(ds.Template, parts, ds.SourceVertex,
			core.MemorySource{C: ds.Latencies}, ds.Delta, "latency", cfg, rec)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, nil, err
	}
	return &ScalabilityCell{
		Algo: algo, Graph: ds.Name, K: k,
		SimTime: res.SimTime, Wall: time.Since(wallStart),
		TimestepsRun: res.TimestepsRun, Supersteps: res.Supersteps,
	}, rec, nil
}

// Scalability reproduces Fig 5a: every algorithm × dataset × partition
// count. Each cell runs `repeats` times (≥1) and keeps the minimum
// simulated time — the standard defense against scheduler noise when the
// whole simulated cluster shares one physical machine.
func Scalability(datasets []*Dataset, ks []int, cfg bsp.Config, seed int64, repeats int) ([]ScalabilityCell, error) {
	if repeats < 1 {
		repeats = 1
	}
	var cells []ScalabilityCell
	for _, algo := range []string{AlgoHash, AlgoMeme, AlgoTDSP} {
		for _, ds := range datasets {
			for _, k := range ks {
				var best *ScalabilityCell
				for r := 0; r < repeats; r++ {
					cell, _, err := RunAlgo(ds, algo, k, cfg, seed)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/k=%d: %w", algo, ds.Name, k, err)
					}
					if best == nil || cell.SimTime < best.SimTime {
						best = cell
					}
				}
				cells = append(cells, *best)
			}
		}
	}
	return cells, nil
}

// RenderScalability writes Fig 5a as a text table with speedups.
func RenderScalability(w io.Writer, cells []ScalabilityCell, ks []int) {
	fmt.Fprintf(w, "== Fig 5a: total time per algorithm/dataset/partitions (simulated cluster time) ==\n")
	fmt.Fprintf(w, "%-6s %-12s", "Algo", "Graph")
	for _, k := range ks {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d parts", k))
	}
	fmt.Fprintf(w, " %14s %9s\n", "speedup", "steps")
	type key struct {
		algo, g string
	}
	byKey := map[key]map[int]ScalabilityCell{}
	var order []key
	for _, c := range cells {
		kk := key{c.Algo, c.Graph}
		if byKey[kk] == nil {
			byKey[kk] = map[int]ScalabilityCell{}
			order = append(order, kk)
		}
		byKey[kk][c.K] = c
	}
	for _, kk := range order {
		fmt.Fprintf(w, "%-6s %-12s", kk.algo, kk.g)
		for _, k := range ks {
			fmt.Fprintf(w, " %12s", byKey[kk][k].SimTime.Round(time.Millisecond))
		}
		first, last := byKey[kk][ks[0]], byKey[kk][ks[len(ks)-1]]
		speedup := 0.0
		if last.SimTime > 0 {
			speedup = float64(first.SimTime) / float64(last.SimTime)
		}
		fmt.Fprintf(w, " %9.2fx %d->%d %6d\n", speedup, ks[0], ks[len(ks)-1], last.TimestepsRun)
	}
}

// BaselineRow is one bar of Fig 5b.
type BaselineRow struct {
	System     string // "vertex-centric SSSP 1x", "subgraph SSSP 1x", "subgraph TDSP Nx"
	Graph      string
	SimTime    time.Duration
	Wall       time.Duration
	Supersteps int
	Instances  int
}

// Per-superstep coordination costs for the Fig 5b comparison. A
// Giraph-class system pays Hadoop/ZooKeeper coordination on every
// superstep (hundreds of ms even for empty supersteps — consistent with the
// paper's Giraph SSSP on CARN taking ~100s over its ~216 BFS supersteps),
// whereas GoFFish's lean socket barrier across a handful of VMs costs
// milliseconds. These model the frameworks' coordination, not the graphs.
const (
	GiraphSuperstepLatency  = 150 * time.Millisecond
	GoFFishSuperstepLatency = 5 * time.Millisecond
)

// Baseline reproduces Fig 5b: vertex-centric (Giraph-like) SSSP on one
// unweighted instance vs subgraph-centric SSSP on one instance vs
// subgraph-centric TDSP over all instances, all at the same partition
// count (the paper uses 6 VMs).
func Baseline(datasets []*Dataset, k int, cfg bsp.Config, seed int64) ([]BaselineRow, error) {
	cfg.SuperstepLatency = GoFFishSuperstepLatency
	var rows []BaselineRow
	for _, ds := range datasets {
		parts, a, err := buildParts(ds, k, seed)
		if err != nil {
			return nil, err
		}
		// Vertex-centric unweighted SSSP (= BFS, favoring the baseline just
		// as the paper notes).
		vcfg := vertex.Config{CoresPerHost: cfg.CoresPerHost, SuperstepLatency: GiraphSuperstepLatency}
		wallStart := time.Now()
		_, vres, err := vertex.BFS(ds.Template, a, vcfg, ds.SourceVertex)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			System: "vertex-centric SSSP 1x", Graph: ds.Name,
			SimTime: vres.SimTime, Wall: time.Since(wallStart),
			Supersteps: vres.Supersteps, Instances: 1,
		})

		wallStart = time.Now()
		_, sres, err := algorithms.RunSSSP(ds.Template, parts, ds.SourceVertex,
			core.MemorySource{C: ds.Latencies}, 0, "", cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			System: "subgraph SSSP 1x", Graph: ds.Name,
			SimTime: sres.SimTime, Wall: time.Since(wallStart),
			Supersteps: sres.Supersteps, Instances: 1,
		})

		wallStart = time.Now()
		_, tres, err := algorithms.RunTDSP(ds.Template, parts, ds.SourceVertex,
			core.MemorySource{C: ds.Latencies}, ds.Delta, "latency", cfg, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			System: fmt.Sprintf("subgraph TDSP %dx", tres.TimestepsRun), Graph: ds.Name,
			SimTime: tres.SimTime, Wall: time.Since(wallStart),
			Supersteps: tres.Supersteps, Instances: tres.TimestepsRun,
		})
	}
	return rows, nil
}

// RenderBaseline writes Fig 5b as text.
func RenderBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintf(w, "== Fig 5b: vertex-centric (Giraph-like) vs subgraph-centric (GoFFish) ==\n")
	fmt.Fprintf(w, "%-12s %-24s %12s %10s %10s\n", "Graph", "System", "SimTime", "Supersteps", "Instances")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-24s %12s %10d %10d\n",
			r.Graph, r.System, r.SimTime.Round(time.Millisecond), r.Supersteps, r.Instances)
	}
}
