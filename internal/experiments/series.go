package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/metrics"
)

// TimestepSeries is Fig 6: per-timestep time for one algorithm/dataset at
// several partition counts, with GoFS slice loading (spike every pack) and
// synchronized GC (spike every ForceGCEvery) active.
type TimestepSeries struct {
	Algo    string
	Graph   string
	K       int
	PerStep []time.Duration // simulated cluster time per timestep
	Loads   []time.Duration // instance-load share per timestep
}

// RunTimestepSeries executes one algorithm over a GoFS-backed dataset and
// returns its per-timestep series. The dataset is written under dir with
// the paper's packing parameters (pack=10, bin=5) unless overridden.
func RunTimestepSeries(ds *Dataset, algo string, ks []int, dir string, pack, bin, gcEvery int, cfg bsp.Config, seed int64) ([]TimestepSeries, error) {
	if pack <= 0 {
		pack = gofs.DefaultPack
	}
	if bin <= 0 {
		bin = gofs.DefaultBin
	}
	coll := ds.Latencies
	if algo == AlgoMeme || algo == AlgoHash {
		coll = ds.Tweets
	}
	var out []TimestepSeries
	for _, k := range ks {
		parts, a, err := buildParts(ds, k, seed)
		if err != nil {
			return nil, err
		}
		dsDir := filepath.Join(dir, fmt.Sprintf("%s_%s_k%d_p%d", strings.ToLower(ds.Name), strings.ToLower(algo), k, pack))
		if err := gofs.WriteDataset(dsDir, coll, a, pack, bin); err != nil {
			return nil, err
		}
		store, err := gofs.Open(dsDir)
		if err != nil {
			return nil, err
		}
		loader := gofs.NewLoader(store)
		rec := newRecorder(k)
		job := &core.Job{
			Template:     ds.Template,
			Parts:        parts,
			Source:       loader,
			Pattern:      core.SequentiallyDependent,
			Config:       cfg,
			Recorder:     rec,
			ForceGCEvery: gcEvery,
		}
		switch algo {
		case AlgoTDSP:
			job.Program = algorithms.NewTDSP(parts, ds.SourceVertex, ds.Delta, "latency")
		case AlgoMeme:
			job.Program = algorithms.NewMeme(parts, ds.Meme, "tweets")
		default:
			return nil, fmt.Errorf("experiments: timestep series supports TDSP and MEME, not %q", algo)
		}
		if _, err := core.Run(job); err != nil {
			return nil, err
		}
		series := TimestepSeries{Algo: algo, Graph: ds.Name, K: k}
		for i := 0; i < rec.NumTimesteps(); i++ {
			step := rec.Step(i)
			series.PerStep = append(series.PerStep, step.SimWall)
			series.Loads = append(series.Loads, step.Load/time.Duration(k))
		}
		out = append(out, series)
		os.RemoveAll(dsDir)
	}
	return out, nil
}

// RenderTimestepSeries writes Fig 6 as a text matrix (one row per
// timestep, one column per partition count).
func RenderTimestepSeries(w io.Writer, series []TimestepSeries) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "== Fig 6: time per timestep, %s on %s (simulated cluster ms; GoFS pack loads and synchronized GC show as spikes) ==\n",
		series[0].Algo, series[0].Graph)
	fmt.Fprintf(w, "%8s", "timestep")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d parts", s.K))
	}
	fmt.Fprintf(w, " %12s\n", "load (ms)")
	steps := len(series[0].PerStep)
	for i := 0; i < steps; i++ {
		fmt.Fprintf(w, "%8d", i)
		for _, s := range series {
			if i < len(s.PerStep) {
				fmt.Fprintf(w, " %12.3f", s.PerStep[i].Seconds()*1000)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintf(w, " %12.3f\n", series[0].Loads[i].Seconds()*1000)
	}
}

// ProgressSeries is Fig 7a/7c: a per-partition, per-timestep counter
// (vertices finalized by TDSP, vertices colored by MEME).
type ProgressSeries struct {
	Algo    string
	Graph   string
	K       int
	Counter string
	// PerPart[p][t] is partition p's counter at timestep t.
	PerPart [][]int64
}

// RunProgress executes one algorithm at k partitions and extracts the
// per-partition progress counter series.
func RunProgress(ds *Dataset, algo string, k int, cfg bsp.Config, seed int64) (*ProgressSeries, *metrics.Recorder, error) {
	cell, rec, err := RunAlgo(ds, algo, k, cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	counter := algorithms.CounterFinalized
	if algo == AlgoMeme {
		counter = algorithms.CounterColored
	}
	ps := &ProgressSeries{Algo: algo, Graph: ds.Name, K: k, Counter: counter}
	for p := 0; p < k; p++ {
		ps.PerPart = append(ps.PerPart, rec.CounterSeries(p, counter))
	}
	_ = cell
	return ps, rec, nil
}

// RenderProgress writes Fig 7a/7c as a text matrix.
func RenderProgress(w io.Writer, ps *ProgressSeries) {
	fmt.Fprintf(w, "== Fig 7: vertices %s per timestep per partition, %s on %s (%d parts) ==\n",
		ps.Counter, ps.Algo, ps.Graph, ps.K)
	fmt.Fprintf(w, "%8s", "timestep")
	for p := range ps.PerPart {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("part %d", p))
	}
	fmt.Fprintln(w)
	if len(ps.PerPart) == 0 {
		return
	}
	for t := 0; t < len(ps.PerPart[0]); t++ {
		fmt.Fprintf(w, "%8d", t)
		for p := range ps.PerPart {
			fmt.Fprintf(w, " %10d", ps.PerPart[p][t])
		}
		fmt.Fprintln(w)
	}
}

// UtilizationReport is Fig 7b/7d: per-partition compute / partition
// overhead / sync overhead shares.
type UtilizationReport struct {
	Algo  string
	Graph string
	K     int
	Utils []metrics.Utilization
	// Skew is the straggler ratio: max/median per-partition total compute
	// time (1.0 = perfectly balanced; see metrics.Recorder.ComputeSkew).
	Skew float64
}

// RunUtilization executes one algorithm and aggregates the per-partition
// time decomposition.
func RunUtilization(ds *Dataset, algo string, k int, cfg bsp.Config, seed int64) (*UtilizationReport, error) {
	_, rec, err := RunAlgo(ds, algo, k, cfg, seed)
	if err != nil {
		return nil, err
	}
	return &UtilizationReport{
		Algo: algo, Graph: ds.Name, K: k,
		Utils: rec.Utilizations(), Skew: rec.ComputeSkew(),
	}, nil
}

// RenderUtilization writes Fig 7b/7d as text.
func RenderUtilization(w io.Writer, ur *UtilizationReport) {
	fmt.Fprintf(w, "== Fig 7: compute vs overhead per partition, %s on %s (%d parts) ==\n", ur.Algo, ur.Graph, ur.K)
	fmt.Fprintf(w, "%10s %10s %12s %10s\n", "partition", "compute%", "part-ovhd%", "sync%")
	for _, u := range ur.Utils {
		fmt.Fprintf(w, "%10d %9.1f%% %11.1f%% %9.1f%%\n",
			u.Partition, u.ComputeFrac()*100, u.FlushFrac()*100, u.BarrierFrac()*100)
	}
	if ur.Skew > 0 {
		fmt.Fprintf(w, "compute skew (max/median partition): %.2fx\n", ur.Skew)
	}
}
