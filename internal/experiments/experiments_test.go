package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tsgraph/internal/bsp"
)

// testScale is smaller than Small to keep the suite snappy.
var testScale = Scale{Name: "test", RoadRows: 30, RoadCols: 30, SWN: 1200, SWM: 2, Timesteps: 12, Seed: 7}

func datasets(tb testing.TB) (*Dataset, *Dataset) {
	tb.Helper()
	road, sw, err := BuildDatasets(testScale)
	if err != nil {
		tb.Fatal(err)
	}
	return road, sw
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestDatasetTableShape(t *testing.T) {
	road, sw := datasets(t)
	rows := DatasetTable(road, sw)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Diameter <= 4*rows[1].Diameter {
		t.Errorf("road diameter %d should dwarf small-world %d", rows[0].Diameter, rows[1].Diameter)
	}
	if rows[1].MaxDegree <= 3*rows[0].MaxDegree {
		t.Errorf("small-world hubs (%d) should dwarf road max degree (%d)", rows[1].MaxDegree, rows[0].MaxDegree)
	}
	var buf bytes.Buffer
	RenderDatasetTable(&buf, rows)
	if !strings.Contains(buf.String(), "ROAD") {
		t.Error("render missing ROAD row")
	}
}

func TestEdgeCutContrast(t *testing.T) {
	road, sw := datasets(t)
	ks := []int{3, 6, 9}
	rows, err := EdgeCutTable([]*Dataset{road, sw}, ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut := map[string]map[int]float64{"ROAD": {}, "SMALLWORLD": {}}
	for _, r := range rows {
		cut[r.Graph][r.K] = r.CutPct
	}
	for _, k := range ks {
		if cut["ROAD"][k] >= cut["SMALLWORLD"][k] {
			t.Errorf("k=%d: road cut %.2f%% not below small-world %.2f%%", k, cut["ROAD"][k], cut["SMALLWORLD"][k])
		}
	}
	if cut["SMALLWORLD"][3] >= cut["SMALLWORLD"][9] {
		t.Errorf("small-world cut should grow with k: %v", cut["SMALLWORLD"])
	}
	var buf bytes.Buffer
	RenderEdgeCutTable(&buf, rows, ks)
	if !strings.Contains(buf.String(), "%") {
		t.Error("render missing percentages")
	}
}

func TestScalabilityShapes(t *testing.T) {
	road, sw := datasets(t)
	ks := []int{3, 6}
	cells, err := Scalability([]*Dataset{road, sw}, ks, bsp.Config{CoresPerHost: 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ScalabilityCell{}
	for _, c := range cells {
		byKey[c.Algo+"/"+c.Graph+string(rune('0'+c.K))] = c
	}
	// TDSP: road uses most of the timestep range, small world a fraction.
	roadSteps := byKey["TDSP/ROAD3"].TimestepsRun
	swSteps := byKey["TDSP/SMALLWORLD3"].TimestepsRun
	if roadSteps < testScale.Timesteps/2 {
		t.Errorf("TDSP road converged in %d of %d steps; want a long sweep", roadSteps, testScale.Timesteps)
	}
	if swSteps > testScale.Timesteps/3 {
		t.Errorf("TDSP small-world took %d steps; want rapid convergence", swSteps)
	}
	// Every cell ran and recorded simulated time.
	for key, c := range byKey {
		if c.SimTime <= 0 {
			t.Errorf("%s: no simulated time recorded", key)
		}
	}
	var buf bytes.Buffer
	RenderScalability(&buf, cells, ks)
	if !strings.Contains(buf.String(), "TDSP") {
		t.Error("render missing TDSP")
	}
}

func TestBaselineOrdering(t *testing.T) {
	road, sw := datasets(t)
	rows, err := Baseline([]*Dataset{road, sw}, 3, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	byGraph := map[string][]BaselineRow{}
	for _, r := range rows {
		byGraph[r.Graph] = append(byGraph[r.Graph], r)
	}
	for g, rs := range byGraph {
		vertexRow, ssspRow, tdspRow := rs[0], rs[1], rs[2]
		// The paper's headline: even Giraph SSSP on ONE instance exceeds
		// GoFFish TDSP over ALL instances.
		if vertexRow.SimTime <= tdspRow.SimTime {
			t.Errorf("%s: vertex-centric SSSP (%v) should exceed subgraph TDSP (%v)", g, vertexRow.SimTime, tdspRow.SimTime)
		}
		if ssspRow.SimTime >= tdspRow.SimTime {
			t.Errorf("%s: single-instance subgraph SSSP (%v) should undercut TDSP over all instances (%v)", g, ssspRow.SimTime, tdspRow.SimTime)
		}
		// Structural cause on the road graph: superstep explosion.
		if g == "ROAD" && vertexRow.Supersteps < 5*ssspRow.Supersteps {
			t.Errorf("road: vertex supersteps %d should dwarf subgraph %d", vertexRow.Supersteps, ssspRow.Supersteps)
		}
	}
	var buf bytes.Buffer
	RenderBaseline(&buf, rows)
	if !strings.Contains(buf.String(), "vertex-centric") {
		t.Error("render missing baseline rows")
	}
}

func TestTimestepSeriesSpikes(t *testing.T) {
	road, _ := datasets(t)
	dir := t.TempDir()
	series, err := RunTimestepSeries(road, AlgoTDSP, []int{3}, dir, 5, 3, 0, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("%d series", len(series))
	}
	s := series[0]
	if len(s.PerStep) == 0 {
		t.Fatal("empty series")
	}
	// Pack boundaries (steps 0, 5, 10) must carry the load; interior steps
	// must not.
	if s.Loads[0] == 0 {
		t.Error("no load at pack start")
	}
	for _, i := range []int{1, 2, 3, 4} {
		if i < len(s.Loads) && s.Loads[i] >= s.Loads[0] && s.Loads[i] != 0 {
			t.Errorf("interior step %d load %v not below pack-boundary load %v", i, s.Loads[i], s.Loads[0])
		}
	}
	if len(s.Loads) > 5 && s.Loads[5] == 0 {
		t.Error("no load spike at second pack boundary")
	}
	var buf bytes.Buffer
	RenderTimestepSeries(&buf, series)
	if !strings.Contains(buf.String(), "timestep") {
		t.Error("render missing header")
	}
}

func TestMemeSeriesRuns(t *testing.T) {
	_, sw := datasets(t)
	dir := t.TempDir()
	series, err := RunTimestepSeries(sw, AlgoMeme, []int{3}, dir, 0, 0, 4, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series[0].PerStep) != testScale.Timesteps {
		t.Errorf("series length %d, want %d", len(series[0].PerStep), testScale.Timesteps)
	}
}

func TestTimestepSeriesRejectsHash(t *testing.T) {
	road, _ := datasets(t)
	if _, err := RunTimestepSeries(road, AlgoHash, []int{2}, t.TempDir(), 0, 0, 0, bsp.Config{}, 1); err == nil {
		t.Error("HASH series should be rejected")
	}
}

func TestProgressSeries(t *testing.T) {
	road, _ := datasets(t)
	ps, rec, err := RunProgress(road, AlgoTDSP, 3, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.PerPart) != 3 {
		t.Fatalf("%d partitions", len(ps.PerPart))
	}
	var total int64
	for p := range ps.PerPart {
		for _, v := range ps.PerPart[p] {
			total += v
		}
	}
	if total != rec.CounterTotal(ps.Counter) {
		t.Errorf("series total %d != recorder total %d", total, rec.CounterTotal(ps.Counter))
	}
	if total == 0 {
		t.Error("no progress recorded")
	}
	// The wave: the source's partition finalizes vertices at timestep 0,
	// some other partition does not.
	firstStepTotal := int64(0)
	for p := range ps.PerPart {
		firstStepTotal += ps.PerPart[p][0]
	}
	if firstStepTotal == 0 {
		t.Error("nothing finalized at timestep 0")
	}
	var buf bytes.Buffer
	RenderProgress(&buf, ps)
	if !strings.Contains(buf.String(), "part 0") {
		t.Error("render missing partitions")
	}
}

func TestUtilizationReport(t *testing.T) {
	road, _ := datasets(t)
	ur, err := RunUtilization(road, AlgoMeme, 3, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ur.Utils) != 3 {
		t.Fatalf("%d partitions", len(ur.Utils))
	}
	for _, u := range ur.Utils {
		sum := u.ComputeFrac() + u.FlushFrac() + u.BarrierFrac()
		if u.Total() > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("partition %d fractions sum to %v", u.Partition, sum)
		}
	}
	var buf bytes.Buffer
	RenderUtilization(&buf, ur)
	if !strings.Contains(buf.String(), "compute%") {
		t.Error("render missing header")
	}
}

func TestPartitionerAblation(t *testing.T) {
	road, _ := datasets(t)
	rows, err := PartitionerAblation(road, 3, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	cut := map[string]float64{}
	for _, r := range rows {
		cut[r.Partitioner] = r.CutPct
	}
	if cut["multilevel"] >= cut["hash"] {
		t.Errorf("multilevel cut %.2f%% should beat hash %.2f%%", cut["multilevel"], cut["hash"])
	}
	var buf bytes.Buffer
	RenderPartitionerAblation(&buf, rows)
	if !strings.Contains(buf.String(), "multilevel") {
		t.Error("render missing partitioners")
	}
}

func TestTemporalParallelismAblation(t *testing.T) {
	_, sw := datasets(t)
	rows, err := TemporalParallelismAblation(sw, 3, []int{1, 4}, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].SimTime >= rows[0].SimTime {
		t.Errorf("temporal parallelism 4 (%v) should model faster than 1 (%v)", rows[1].SimTime, rows[0].SimTime)
	}
	var buf bytes.Buffer
	RenderTemporalParallelism(&buf, rows)
	if !strings.Contains(buf.String(), "Parallelism") {
		t.Error("render missing header")
	}
}

func TestPackingAblation(t *testing.T) {
	road, _ := datasets(t)
	rows, err := PackingAblation(road, 3, []int{1, 6}, t.TempDir(), bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].SliceReads <= rows[1].SliceReads {
		t.Errorf("pack=1 reads (%d) should exceed pack=6 reads (%d)", rows[0].SliceReads, rows[1].SliceReads)
	}
	var buf bytes.Buffer
	RenderPackingAblation(&buf, rows)
	if !strings.Contains(buf.String(), "pack") {
		t.Error("render missing header")
	}
}

func TestPageRankModelAblation(t *testing.T) {
	_, sw := datasets(t)
	rows, err := PageRankModelAblation(sw, 3, 8, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Messages <= rows[1].Messages {
		t.Errorf("vertex-centric messages (%d) should exceed subgraph-centric (%d)",
			rows[0].Messages, rows[1].Messages)
	}
	if rows[0].MaxRankDiff > 1e-9 {
		t.Errorf("models diverge: max rank diff %v", rows[0].MaxRankDiff)
	}
	var buf bytes.Buffer
	RenderPageRankModel(&buf, rows)
	if !strings.Contains(buf.String(), "message reduction") {
		t.Error("render missing reduction line")
	}
}

func TestPrefetchAblation(t *testing.T) {
	road, _ := datasets(t)
	rows, err := PrefetchAblation(road, AlgoTDSP, 3, []int{2}, t.TempDir(), 4, 2, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	inline, pf := rows[0], rows[1]
	if inline.Depth != 0 || pf.Depth != 2 {
		t.Fatalf("row depths = %d,%d", inline.Depth, pf.Depth)
	}
	if inline.Prefetched != 0 || inline.Overlapped != 0 {
		t.Errorf("inline row reports prefetching: %d hits, %v overlapped", inline.Prefetched, inline.Overlapped)
	}
	// After the first timestep the pipeline runs ahead, so most loads hit.
	if pf.Prefetched < pf.Timesteps/2 {
		t.Errorf("prefetched %d of %d timesteps, want at least half", pf.Prefetched, pf.Timesteps)
	}
	if inline.PackLoads == 0 || pf.PackLoads != inline.PackLoads {
		t.Errorf("pack loads differ: inline %d, prefetch %d", inline.PackLoads, pf.PackLoads)
	}
	var buf bytes.Buffer
	RenderPrefetch(&buf, rows)
	if !strings.Contains(buf.String(), "prefetch") {
		t.Error("render missing header")
	}
}

func TestElasticHeadroom(t *testing.T) {
	road, _ := datasets(t)
	row, err := ElasticHeadroom(road, AlgoTDSP, 3, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The TDSP wave leaves hosts idle: headroom must be positive and some
	// (host, timestep) pairs fully idle.
	if row.Headroom() <= 0 {
		t.Errorf("headroom = %v, want > 0 for the skewed TDSP wave", row.Headroom())
	}
	if row.IdleSteps == 0 {
		t.Error("expected idle host-timesteps during the wave")
	}
	if row.Balanced >= row.Actual {
		t.Errorf("balanced %v not below actual %v", row.Balanced, row.Actual)
	}
	var buf bytes.Buffer
	RenderElasticHeadroom(&buf, []*ElasticHeadroomRow{row})
	if !strings.Contains(buf.String(), "headroom") {
		t.Error("render missing header")
	}
}

func TestCompressionAblation(t *testing.T) {
	_, sw := datasets(t)
	rows, err := CompressionAblation(sw, 3, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]int64{}
	for _, r := range rows {
		key := r.Data
		if r.Compress {
			key += "+gz"
		}
		byKey[key] = r.Bytes
	}
	// Sparse tweet columns must compress substantially.
	if byKey["tweets+gz"] >= byKey["tweets"] {
		t.Errorf("tweets did not compress: %d -> %d", byKey["tweets"], byKey["tweets+gz"])
	}
	var buf bytes.Buffer
	RenderCompressionAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Compress") {
		t.Error("render missing header")
	}
}

func TestIncrementalAblation(t *testing.T) {
	road, _ := datasets(t)
	res, err := IncrementalAblation(road, []float64{0.01, 1}, 6, t.TempDir(), 4, 2, 4, bsp.Config{CoresPerHost: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Storage) != 2 {
		t.Fatalf("%d storage rows", len(res.Storage))
	}
	low, high := res.Storage[0], res.Storage[1]
	if low.Churn != 0.01 || high.Churn != 1 {
		t.Fatalf("row churns = %v,%v", low.Churn, high.Churn)
	}
	// At 1% churn the delta format must shrink the dataset substantially;
	// at full churn every timestep still pays snapshot-sized deltas.
	if low.Shrink() < 2 {
		t.Errorf("shrink at 1%% churn = %.2fx, want >= 2x", low.Shrink())
	}
	if low.Shrink() < high.Shrink() {
		t.Errorf("shrink should fall with churn: %.2fx at 1%% vs %.2fx at 100%%", low.Shrink(), high.Shrink())
	}
	if len(res.Compute) != 3 {
		t.Fatalf("%d compute rows", len(res.Compute))
	}
	for _, c := range res.Compute {
		if !c.Identical {
			t.Errorf("%s: results diverged from the full-store baseline", c.Mode)
		}
		if c.Mode != "delta+incremental" && c.Skipped != 0 {
			t.Errorf("%s skipped %d subgraphs", c.Mode, c.Skipped)
		}
	}
	inc := res.Compute[2]
	if inc.Mode != "delta+incremental" || inc.Skipped == 0 {
		t.Errorf("incremental row skipped %d of %d slots, want > 0", inc.Skipped, inc.Slots)
	}
	var buf bytes.Buffer
	RenderIncremental(&buf, res)
	if !strings.Contains(buf.String(), "incremental recompute") {
		t.Error("render missing header")
	}
}
