package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/serve"
	"tsgraph/internal/subgraph"
)

// ServeRow is one cell of the serving benchmark: closed-loop clients at a
// fixed concurrency against one server configuration.
type ServeRow struct {
	Concurrency int
	// MaxBatch is the server's micro-batch bound; 1 disables coalescing.
	MaxBatch int
	Queries  int
	Elapsed  time.Duration
	// QPS is Queries / Elapsed.
	QPS float64
	// P50/P95/P99 are client-observed round-trip latencies.
	P50, P95, P99 time.Duration
	// Sweeps counts TI-BSP executions the server ran; AvgBatch is
	// Queries / Sweeps, the realized coalescing factor.
	Sweeps   int64
	AvgBatch float64
}

// serveScale keeps every cell of the 4x2 grid tractable: the grid runs
// 8 server configurations x ~hundreds of TDSP sweeps each, so the dataset
// is deliberately smaller than the Small evaluation scale.
var serveScale = Scale{Name: "serve", RoadRows: 48, RoadCols: 48, Timesteps: 16, Seed: 42}

// ServeConcurrencies is the closed-loop client grid of the serving
// benchmark.
var ServeConcurrencies = []int{1, 8, 64, 256}

// serveSourcePool is the number of distinct departure vertices in the
// benchmark workload. Serving traffic on a road network has hot sources
// (many clients leaving the same hub for different destinations), and
// source sharing is what a multi-source sweep amortizes: the server merges
// same-source queries into one BatchQuery and runs all sources in one
// TI-BSP execution.
const serveSourcePool = 8

// ServeBench measures online-serving throughput and latency: for each
// concurrency level and each batching mode, closed-loop clients submit
// point-to-point TDSP queries (a pool of hot source vertices x distinct
// targets, one shared departure timestep) directly to a serve.Server and
// wait for answers. The result cache is disabled so every cell measures
// sweep execution, not cache hits; the contrast between MaxBatch 1 and
// MaxBatch 64 is the win from coalescing compatible queries into
// multi-source sweeps.
func ServeBench(concurrencies []int, queriesPerCell int, cfg bsp.Config, seed int64) ([]ServeRow, error) {
	ds, err := BuildRoad(serveScale)
	if err != nil {
		return nil, err
	}
	parts, _, err := buildParts(ds, 3, seed)
	if err != nil {
		return nil, err
	}
	src := core.MemorySource{C: ds.Latencies}
	if queriesPerCell <= 0 {
		queriesPerCell = 256
	}

	// A fixed pool of query endpoints, reused identically in every cell so
	// the cells are comparable. Distinct (source, target) pairs keep the
	// result cache irrelevant even if it were on; the shared departure
	// timestep makes the queries batch-compatible.
	nv := ds.Template.NumVertices()
	pairs := make([][2]int64, queriesPerCell)
	for i := range pairs {
		si := ((i % serveSourcePool) * 97) % nv
		ti := (nv - 1 - (i*53)%nv)
		if ti == si {
			ti = (ti + 1) % nv
		}
		pairs[i] = [2]int64{
			int64(ds.Template.VertexID(si)),
			int64(ds.Template.VertexID(ti)),
		}
	}

	var rows []ServeRow
	for _, conc := range concurrencies {
		for _, maxBatch := range []int{1, 64} {
			row, err := serveCell(ds, parts, src, cfg, pairs, conc, maxBatch)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func serveCell(ds *Dataset, parts []*subgraph.PartitionData, src core.InstanceSource, cfg bsp.Config, pairs [][2]int64, conc, maxBatch int) (ServeRow, error) {
	linger := time.Duration(0)
	if maxBatch > 1 && conc > 1 {
		// Give a short batch a moment to fill; closed-loop clients re-submit
		// as soon as answers return, so without this the first worker pop
		// sees only a partial wave.
		linger = 2 * time.Millisecond
	}
	s, err := serve.New(serve.Options{
		Template:    ds.Template,
		Parts:       parts,
		Source:      src,
		Delta:       ds.Delta,
		WeightAttr:  gen.AttrLatency,
		Cores:       cfg.CoresPerHost,
		MaxBatch:    maxBatch,
		BatchLinger: linger,
		QueueCap:    len(pairs) + conc, // admission never rejects: measure service, not shedding
		Workers:     2,
		// Cache off: every query must be answered by sweep execution.
		ResultCacheSize: 0,
		DefaultDeadline: 10 * time.Minute,
	})
	if err != nil {
		return ServeRow{}, err
	}
	defer s.Close()

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]time.Duration, 0, len(pairs))
		execErr error
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				q := serve.Query{Kind: "tdsp", Source: pairs[i][0], Target: pairs[i][1]}
				t0 := time.Now()
				_, err := s.Submit(context.Background(), q)
				d := time.Since(t0)
				mu.Lock()
				if err != nil && execErr == nil {
					execErr = err
				}
				lats = append(lats, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if execErr != nil {
		return ServeRow{}, fmt.Errorf("serve cell c=%d batch=%d: %w", conc, maxBatch, execErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	sweeps := s.Metrics().Sweeps(serve.ClassTDSP)
	row := ServeRow{
		Concurrency: conc,
		MaxBatch:    maxBatch,
		Queries:     len(pairs),
		Elapsed:     elapsed,
		QPS:         float64(len(pairs)) / elapsed.Seconds(),
		P50:         q(0.50),
		P95:         q(0.95),
		P99:         q(0.99),
		Sweeps:      sweeps,
	}
	if sweeps > 0 {
		row.AvgBatch = float64(len(pairs)) / float64(sweeps)
	}
	return row, nil
}

// RenderServeBench writes the serving benchmark as text.
func RenderServeBench(w io.Writer, rows []ServeRow) {
	fmt.Fprintf(w, "== Extension: online serving (tsserve) — closed-loop TDSP clients, batching on/off ==\n")
	fmt.Fprintf(w, "%-5s %-6s %7s %10s %9s %10s %10s %10s %7s %9s\n",
		"conc", "batch", "queries", "elapsed", "qps", "p50", "p95", "p99", "sweeps", "avg batch")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5d %-6d %7d %10s %9.1f %10s %10s %10s %7d %9.1f\n",
			r.Concurrency, r.MaxBatch, r.Queries,
			r.Elapsed.Round(time.Millisecond), r.QPS,
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.Sweeps, r.AvgBatch)
	}
}
