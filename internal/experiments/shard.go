package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/cluster"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/partition"
	"tsgraph/internal/serve"
	"tsgraph/internal/shard"
	"tsgraph/internal/subgraph"
)

// ShardRow is one cell of the sharded-serving benchmark: closed-loop
// clients against a router over an in-process rank topology.
type ShardRow struct {
	// Ranks and Replicas define the topology: Ranks processes split into
	// Replicas groups, each holding a full dataset copy.
	Ranks, Replicas int
	// Groups is the resulting replica-group count (sweep parallelism).
	Groups      int
	Concurrency int
	Queries     int
	Elapsed     time.Duration
	QPS         float64
	P50, P99    time.Duration
	// Sweeps counts router scatter/gathers (TDSP class).
	Sweeps int64
}

// shardScale mirrors the serving benchmark's scale; the per-rank pack
// budget below keeps the dataset larger than any one rank's cache.
var shardScale = Scale{Name: "shard", RoadRows: 48, RoadCols: 48, Timesteps: 16, Seed: 42}

// shardCachePacks is each rank's resident-pack budget. The dataset packs
// into shardScale.Timesteps/shardPackLen = 4 pack-sets, so a budget of 2
// means no rank can hold the working set — aggregate throughput has to
// come from adding ranks, not from one hot cache.
const (
	shardCachePacks = 2
	shardPackLen    = 4
)

// ShardGrid is the (ranks, replicas) topology grid of the benchmark.
var ShardGrid = []struct{ Ranks, Replicas int }{
	{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4},
}

// ShardBench measures sharded-serving throughput scaling: one GoFS dataset
// on disk, a grid of in-process rank topologies over it, and the same
// hot-source closed-loop TDSP workload as the serving benchmark submitted
// through a router-backed server. Contrasts worth reading off the grid:
// (1,1) vs (2,2) vs (4,4) is replica-group scaling (more groups sweep
// concurrently); (2,1) vs (1,1) is the cost of meshing one sweep across
// two ranks; (4,2) holds group size at 2 while doubling groups.
func ShardBench(queriesPerCell, clients int, cfg bsp.Config, seed int64) ([]ShardRow, error) {
	ds, err := BuildRoad(shardScale)
	if err != nil {
		return nil, err
	}
	parts, a, err := buildParts(ds, 4, seed)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tsbench-shard-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := gofs.WriteDatasetOptions(dir, ds.Latencies, a, gofs.Options{
		Pack: shardPackLen, Bin: 2,
	}); err != nil {
		return nil, err
	}
	store, err := gofs.Open(dir)
	if err != nil {
		return nil, err
	}
	if queriesPerCell <= 0 {
		queriesPerCell = 256
	}
	if clients <= 0 {
		clients = 64
	}

	// The serving benchmark's workload: a pool of hot sources times
	// distinct targets, batch-compatible on one departure timestep.
	nv := ds.Template.NumVertices()
	pairs := make([][2]int64, queriesPerCell)
	for i := range pairs {
		si := ((i % serveSourcePool) * 97) % nv
		ti := (nv - 1 - (i*53)%nv)
		if ti == si {
			ti = (ti + 1) % nv
		}
		pairs[i] = [2]int64{
			int64(ds.Template.VertexID(si)),
			int64(ds.Template.VertexID(ti)),
		}
	}

	var rows []ShardRow
	for _, g := range ShardGrid {
		row, err := shardCell(ds, parts, a, store, cfg, pairs, g.Ranks, g.Replicas, clients)
		if err != nil {
			return nil, fmt.Errorf("shard cell ranks=%d replicas=%d: %w", g.Ranks, g.Replicas, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func shardCell(ds *Dataset, parts []*subgraph.PartitionData, a *partition.Assignment,
	store *gofs.Store, cfg bsp.Config, pairs [][2]int64, ranksN, replicasN, clients int) (ShardRow, error) {
	layout := shard.Layout{Replicas: replicasN}
	rpcLns := make([]net.Listener, ranksN)
	meshLns := make([]net.Listener, ranksN)
	for i := 0; i < ranksN; i++ {
		var err error
		if rpcLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return ShardRow{}, err
		}
		if meshLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return ShardRow{}, err
		}
		layout.Ranks = append(layout.Ranks, rpcLns[i].Addr().String())
		layout.Mesh = append(layout.Mesh, meshLns[i].Addr().String())
	}
	ranks := make([]*shard.Rank, ranksN)
	for i := 0; i < ranksN; i++ {
		// Each rank gets its own bounded cache, restricted to the
		// partitions it owns: the sharded deployment's memory model.
		cache := gofs.NewInstanceCache(store, shardCachePacks)
		cache.Restrict(shard.LocalParts(layout, i, a.K))
		r, err := shard.NewRank(shard.RankConfig{
			Layout: layout, Rank: i,
			Template: ds.Template, Parts: parts, Assign: a, Source: cache,
			Delta: ds.Delta, WeightAttr: gen.AttrLatency,
			Cores: cfg.CoresPerHost,
			Resilience: &cluster.Resilience{
				BackoffBase: 2 * time.Millisecond, BackoffCap: 100 * time.Millisecond,
				RecoveryWindow: 5 * time.Second,
			},
			Listener: rpcLns[i], MeshListener: meshLns[i],
		})
		if err != nil {
			return ShardRow{}, err
		}
		ranks[i] = r
		defer r.Close()
	}
	var bootWG sync.WaitGroup
	bootErrs := make([]error, ranksN)
	for i, r := range ranks {
		bootWG.Add(1)
		go func(i int, r *shard.Rank) {
			defer bootWG.Done()
			bootErrs[i] = r.Start()
		}(i, r)
	}
	bootWG.Wait()
	for _, err := range bootErrs {
		if err != nil {
			return ShardRow{}, err
		}
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Layout: layout, Template: ds.Template, Assign: a,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		return ShardRow{}, err
	}
	defer router.Close()
	s, err := serve.New(serve.Options{
		Template: ds.Template, Parts: parts,
		Source:     shard.HeadSource(store),
		Delta:      ds.Delta,
		WeightAttr: gen.AttrLatency,
		Cores:      cfg.CoresPerHost,
		MaxBatch:   64, BatchLinger: 2 * time.Millisecond,
		QueueCap: len(pairs) + clients,
		// One worker per replica group, so group-level sweep parallelism
		// is reachable (workers beyond the group count just contend).
		Workers: max(2, layout.NumGroups()),
		// Cache off: every query is a routed sweep.
		ResultCacheSize: 0,
		DefaultDeadline: 10 * time.Minute,
		Sweeper:         router,
	})
	if err != nil {
		return ShardRow{}, err
	}
	defer s.Close()

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]time.Duration, 0, len(pairs))
		execErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				q := serve.Query{Kind: "tdsp", Source: pairs[i][0], Target: pairs[i][1]}
				t0 := time.Now()
				_, err := s.Submit(context.Background(), q)
				d := time.Since(t0)
				mu.Lock()
				if err != nil && execErr == nil {
					execErr = err
				}
				lats = append(lats, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if execErr != nil {
		return ShardRow{}, execErr
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	return ShardRow{
		Ranks: ranksN, Replicas: replicasN, Groups: layout.NumGroups(),
		Concurrency: clients,
		Queries:     len(pairs),
		Elapsed:     elapsed,
		QPS:         float64(len(pairs)) / elapsed.Seconds(),
		P50:         q(0.50),
		P99:         q(0.99),
		Sweeps:      s.Metrics().Sweeps(serve.ClassTDSP),
	}, nil
}

// RenderShardBench writes the sharded-serving benchmark as text.
func RenderShardBench(w io.Writer, rows []ShardRow) {
	fmt.Fprintf(w, "== Extension: sharded serving (tsserve -router) — closed-loop TDSP clients over rank topologies ==\n")
	fmt.Fprintf(w, "%-6s %-9s %-7s %5s %8s %10s %9s %10s %10s %7s\n",
		"ranks", "replicas", "groups", "conc", "queries", "elapsed", "qps", "p50", "p99", "sweeps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-9d %-7d %5d %8d %10s %9.1f %10s %10s %7d\n",
			r.Ranks, r.Replicas, r.Groups, r.Concurrency, r.Queries,
			r.Elapsed.Round(time.Millisecond), r.QPS,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Sweeps)
	}
}
