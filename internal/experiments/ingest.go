package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/ingest"
	"tsgraph/internal/serve"
)

// IngestRow is one cell of the live-ingestion benchmark: a single writer
// sustaining timestep appends through the full WAL→fold→publish pipeline
// while closed-loop clients query the advancing head.
type IngestRow struct {
	// Concurrency is the number of query clients; 0 measures the append
	// pipeline alone.
	Concurrency int
	// Writers is the number of concurrent append clients (1 = the classic
	// single-writer pipeline).
	Writers int
	// GroupWindow is the WAL group-commit window; 0 disables batching, so
	// the delta between window-off and window-on rows at equal Writers is
	// the group-commit headroom.
	GroupWindow time.Duration
	// Fsyncs counts WAL fsync batches; group commit drives it below
	// Appends under write concurrency.
	Fsyncs  int64
	Appends int
	Elapsed time.Duration
	// AppendsPerSec is the sustained append (watermark-advance) rate.
	AppendsPerSec float64
	// AppendP50/P99 are per-append latencies: validate + WAL fsync + fold +
	// pack write + manifest publish.
	AppendP50, AppendP99 time.Duration
	// Queries ran concurrently with the appends; QueryP50/P99 are their
	// client-observed round trips (zero when Concurrency is 0).
	Queries            int
	QueryP50, QueryP99 time.Duration
	// FinalWatermark is the published watermark when the writer stopped.
	FinalWatermark int
}

// ingestScale keeps each cell tractable: every append rewrites the tail
// pack's slices, so the dataset is deliberately small and the seed prefix
// short.
var ingestScale = Scale{Name: "ingest", RoadRows: 48, RoadCols: 48, Timesteps: 8, Seed: 42}

// IngestConcurrencies is the query-client grid of the ingestion benchmark.
var IngestConcurrencies = []int{0, 8, 64}

// IngestBench measures sustained live-append throughput against query
// latency: for each concurrency level, a fresh delta-encoded dataset is
// seeded on disk, an Ingester appends timesteps as fast as the pipeline
// allows, and closed-loop TDSP clients query the live head throughout.
// The contrast across cells is the interference in both directions —
// what querying costs the writer, and what a moving watermark costs the
// readers.
func IngestBench(concurrencies []int, appendsPerCell int, cfg bsp.Config, seed int64) ([]IngestRow, error) {
	ds, err := BuildRoad(ingestScale)
	if err != nil {
		return nil, err
	}
	if appendsPerCell <= 0 {
		appendsPerCell = 64
	}

	// A pool of edges to mutate and sources to query, identical per cell.
	type edge struct{ src, dst int64 }
	var edges []edge
	t := ds.Template
	for v := 0; v < t.NumVertices() && len(edges) < 32; v += 17 {
		if lo, hi := t.OutEdges(v); hi > lo {
			edges = append(edges, edge{int64(t.VertexID(v)), int64(t.VertexID(t.Target(lo)))})
		}
	}
	nv := t.NumVertices()
	cells := make([]ingestCellSpec, 0, len(concurrencies)+2)
	for _, conc := range concurrencies {
		cells = append(cells, ingestCellSpec{conc: conc, writers: 1})
	}
	// Group-commit contrast: concurrent writers with the fsync window off
	// and on, no query load. The appends/s delta between these two rows is
	// the WAL group-commit headroom.
	cells = append(cells,
		ingestCellSpec{writers: 4, window: 0},
		ingestCellSpec{writers: 4, window: 2 * time.Millisecond},
	)
	var rows []IngestRow
	for _, c := range cells {
		dir, err := os.MkdirTemp("", "tsbench-ingest-*")
		if err != nil {
			return nil, err
		}
		row, err := ingestCell(ds, dir, cfg, edges[0].src, c, appendsPerCell, nv, seed)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ingestCellSpec selects one benchmark cell: conc query clients against
// writers concurrent appenders under a WAL group-commit window.
type ingestCellSpec struct {
	conc, writers int
	window        time.Duration
}

func ingestCell(ds *Dataset, dir string, cfg bsp.Config, mutSrc int64, spec ingestCellSpec, appends, nv int, seed int64) (IngestRow, error) {
	conc := spec.conc
	writers := spec.writers
	if writers < 1 {
		writers = 1
	}
	parts, a, err := buildParts(ds, 3, seed)
	if err != nil {
		return IngestRow{}, err
	}
	if err := gofs.WriteDatasetOptions(dir, ds.Latencies, a, gofs.Options{
		Pack: 8, Bin: 2, SnapshotEvery: 4,
	}); err != nil {
		return IngestRow{}, err
	}
	store, err := gofs.Open(dir)
	if err != nil {
		return IngestRow{}, err
	}
	ing, err := ingest.Open(store, ingest.Options{
		RetainBytes: 64 << 20, GroupCommitWindow: spec.window,
	})
	if err != nil {
		return IngestRow{}, err
	}
	defer ing.Close()

	cache := gofs.NewInstanceCache(store, 4)
	s, err := serve.New(serve.Options{
		Template: ds.Template, Parts: parts, Source: cache,
		Delta: ds.Delta, WeightAttr: gen.AttrLatency,
		Cores: cfg.CoresPerHost, MaxBatch: 64, Workers: 2,
		QueueCap:        4096, // measure service under churn, not shedding
		ResultCacheSize: 0,    // the moving watermark defeats it anyway; measure sweeps
		DefaultDeadline: 10 * time.Minute,
	})
	if err != nil {
		return IngestRow{}, err
	}
	defer s.Close()

	var (
		writerDone atomic.Bool
		qmu        sync.Mutex
		qlats      []time.Duration
		qerr       error
		wg         sync.WaitGroup
	)
	tmpl := ds.Template
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !writerDone.Load(); i++ {
				si := ((c*131 + i*97) % (nv - 1)) + 1
				q := serve.Query{Kind: "tdsp",
					Source: int64(tmpl.VertexID(si)),
					Target: int64(tmpl.VertexID(0))}
				t0 := time.Now()
				_, err := s.Submit(context.Background(), q)
				d := time.Since(t0)
				qmu.Lock()
				if err != nil && qerr == nil {
					qerr = err
				}
				qlats = append(qlats, d)
				qmu.Unlock()
			}
		}(c)
	}

	alats := make([]time.Duration, 0, appends)
	srcIdx := tmpl.VertexIndex(graph.VertexID(mutSrc))
	lo, hi := tmpl.OutEdges(srcIdx)
	var (
		amu      sync.Mutex
		aerr     error
		nextApp  atomic.Int64
		writerWG sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				i := int(nextApp.Add(1)) - 1
				if i >= appends {
					return
				}
				// Rotate the mutated edge so deltas stay small but
				// non-trivial; head-riding mutations (no Timestep) let
				// concurrent writers share one append stream.
				e := lo + i%(hi-lo)
				mut := &ingest.Mutation{Edges: []ingest.EdgeSet{{
					Src: mutSrc, Dst: int64(tmpl.VertexID(tmpl.Target(e))),
					Attr:  gen.AttrLatency,
					Value: json.RawMessage(fmt.Sprintf("%.3f", latMin+float64(i%16))),
				}}}
				t0 := time.Now()
				_, err := ing.Apply(mut)
				amu.Lock()
				if err != nil && aerr == nil {
					aerr = fmt.Errorf("ingest cell conc=%d writers=%d append %d: %w", conc, writers, i, err)
				}
				alats = append(alats, time.Since(t0))
				amu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	writerWG.Wait()
	elapsed := time.Since(start)
	writerDone.Store(true)
	wg.Wait()
	if aerr != nil {
		return IngestRow{}, aerr
	}
	if qerr != nil {
		return IngestRow{}, fmt.Errorf("ingest cell conc=%d query: %w", conc, qerr)
	}

	row := IngestRow{
		Concurrency:    conc,
		Writers:        writers,
		GroupWindow:    spec.window,
		Fsyncs:         ing.WALFsyncs(),
		Appends:        appends,
		Elapsed:        elapsed,
		AppendsPerSec:  float64(appends) / elapsed.Seconds(),
		AppendP50:      quantileDur(alats, 0.50),
		AppendP99:      quantileDur(alats, 0.99),
		Queries:        len(qlats),
		FinalWatermark: ing.Watermark(),
	}
	if len(qlats) > 0 {
		row.QueryP50 = quantileDur(qlats, 0.50)
		row.QueryP99 = quantileDur(qlats, 0.99)
	}
	return row, nil
}

func quantileDur(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

// RenderIngestBench writes the live-ingestion benchmark as text.
func RenderIngestBench(w io.Writer, rows []IngestRow) {
	fmt.Fprintf(w, "== Extension: live ingestion (tsserve -ingest) — sustained appends vs query latency ==\n")
	fmt.Fprintf(w, "%-5s %7s %8s %8s %7s %10s %11s %10s %10s %8s %10s %10s %6s\n",
		"conc", "writers", "window", "appends", "fsyncs", "elapsed", "appends/s", "app p50", "app p99", "queries", "qry p50", "qry p99", "wm")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5d %7d %8s %8d %7d %10s %11.1f %10s %10s %8d %10s %10s %6d\n",
			r.Concurrency, r.Writers, r.GroupWindow, r.Appends, r.Fsyncs,
			r.Elapsed.Round(time.Millisecond), r.AppendsPerSec,
			r.AppendP50.Round(time.Microsecond), r.AppendP99.Round(time.Microsecond),
			r.Queries, r.QueryP50.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond),
			r.FinalWatermark)
	}
}
