package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/gen"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/ingest"
	"tsgraph/internal/serve"
)

// IngestRow is one cell of the live-ingestion benchmark: a single writer
// sustaining timestep appends through the full WAL→fold→publish pipeline
// while closed-loop clients query the advancing head.
type IngestRow struct {
	// Concurrency is the number of query clients; 0 measures the append
	// pipeline alone.
	Concurrency int
	Appends     int
	Elapsed     time.Duration
	// AppendsPerSec is the sustained append (watermark-advance) rate.
	AppendsPerSec float64
	// AppendP50/P99 are per-append latencies: validate + WAL fsync + fold +
	// pack write + manifest publish.
	AppendP50, AppendP99 time.Duration
	// Queries ran concurrently with the appends; QueryP50/P99 are their
	// client-observed round trips (zero when Concurrency is 0).
	Queries            int
	QueryP50, QueryP99 time.Duration
	// FinalWatermark is the published watermark when the writer stopped.
	FinalWatermark int
}

// ingestScale keeps each cell tractable: every append rewrites the tail
// pack's slices, so the dataset is deliberately small and the seed prefix
// short.
var ingestScale = Scale{Name: "ingest", RoadRows: 48, RoadCols: 48, Timesteps: 8, Seed: 42}

// IngestConcurrencies is the query-client grid of the ingestion benchmark.
var IngestConcurrencies = []int{0, 8, 64}

// IngestBench measures sustained live-append throughput against query
// latency: for each concurrency level, a fresh delta-encoded dataset is
// seeded on disk, an Ingester appends timesteps as fast as the pipeline
// allows, and closed-loop TDSP clients query the live head throughout.
// The contrast across cells is the interference in both directions —
// what querying costs the writer, and what a moving watermark costs the
// readers.
func IngestBench(concurrencies []int, appendsPerCell int, cfg bsp.Config, seed int64) ([]IngestRow, error) {
	ds, err := BuildRoad(ingestScale)
	if err != nil {
		return nil, err
	}
	if appendsPerCell <= 0 {
		appendsPerCell = 64
	}

	// A pool of edges to mutate and sources to query, identical per cell.
	type edge struct{ src, dst int64 }
	var edges []edge
	t := ds.Template
	for v := 0; v < t.NumVertices() && len(edges) < 32; v += 17 {
		if lo, hi := t.OutEdges(v); hi > lo {
			edges = append(edges, edge{int64(t.VertexID(v)), int64(t.VertexID(t.Target(lo)))})
		}
	}
	nv := t.NumVertices()
	var rows []IngestRow
	for _, conc := range concurrencies {
		dir, err := os.MkdirTemp("", "tsbench-ingest-*")
		if err != nil {
			return nil, err
		}
		row, err := ingestCell(ds, dir, cfg, edges[0].src, conc, appendsPerCell, nv, seed)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func ingestCell(ds *Dataset, dir string, cfg bsp.Config, mutSrc int64, conc, appends, nv int, seed int64) (IngestRow, error) {
	parts, a, err := buildParts(ds, 3, seed)
	if err != nil {
		return IngestRow{}, err
	}
	if err := gofs.WriteDatasetOptions(dir, ds.Latencies, a, gofs.Options{
		Pack: 8, Bin: 2, SnapshotEvery: 4,
	}); err != nil {
		return IngestRow{}, err
	}
	store, err := gofs.Open(dir)
	if err != nil {
		return IngestRow{}, err
	}
	ing, err := ingest.Open(store, ingest.Options{RetainBytes: 64 << 20})
	if err != nil {
		return IngestRow{}, err
	}
	defer ing.Close()

	cache := gofs.NewInstanceCache(store, 4)
	s, err := serve.New(serve.Options{
		Template: ds.Template, Parts: parts, Source: cache,
		Delta: ds.Delta, WeightAttr: gen.AttrLatency,
		Cores: cfg.CoresPerHost, MaxBatch: 64, Workers: 2,
		QueueCap:        4096, // measure service under churn, not shedding
		ResultCacheSize: 0,    // the moving watermark defeats it anyway; measure sweeps
		DefaultDeadline: 10 * time.Minute,
	})
	if err != nil {
		return IngestRow{}, err
	}
	defer s.Close()

	var (
		writerDone atomic.Bool
		qmu        sync.Mutex
		qlats      []time.Duration
		qerr       error
		wg         sync.WaitGroup
	)
	tmpl := ds.Template
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !writerDone.Load(); i++ {
				si := ((c*131 + i*97) % (nv - 1)) + 1
				q := serve.Query{Kind: "tdsp",
					Source: int64(tmpl.VertexID(si)),
					Target: int64(tmpl.VertexID(0))}
				t0 := time.Now()
				_, err := s.Submit(context.Background(), q)
				d := time.Since(t0)
				qmu.Lock()
				if err != nil && qerr == nil {
					qerr = err
				}
				qlats = append(qlats, d)
				qmu.Unlock()
			}
		}(c)
	}

	alats := make([]time.Duration, 0, appends)
	srcIdx := tmpl.VertexIndex(graph.VertexID(mutSrc))
	lo, hi := tmpl.OutEdges(srcIdx)
	start := time.Now()
	for i := 0; i < appends; i++ {
		// Rotate the mutated edge so deltas stay small but non-trivial.
		e := lo + i%(hi-lo)
		mut := &ingest.Mutation{Edges: []ingest.EdgeSet{{
			Src: mutSrc, Dst: int64(tmpl.VertexID(tmpl.Target(e))),
			Attr:  gen.AttrLatency,
			Value: json.RawMessage(fmt.Sprintf("%.3f", latMin+float64(i%16))),
		}}}
		t0 := time.Now()
		if _, err := ing.Apply(mut); err != nil {
			writerDone.Store(true)
			wg.Wait()
			return IngestRow{}, fmt.Errorf("ingest cell conc=%d append %d: %w", conc, i, err)
		}
		alats = append(alats, time.Since(t0))
	}
	elapsed := time.Since(start)
	writerDone.Store(true)
	wg.Wait()
	if qerr != nil {
		return IngestRow{}, fmt.Errorf("ingest cell conc=%d query: %w", conc, qerr)
	}

	row := IngestRow{
		Concurrency:    conc,
		Appends:        appends,
		Elapsed:        elapsed,
		AppendsPerSec:  float64(appends) / elapsed.Seconds(),
		AppendP50:      quantileDur(alats, 0.50),
		AppendP99:      quantileDur(alats, 0.99),
		Queries:        len(qlats),
		FinalWatermark: ing.Watermark(),
	}
	if len(qlats) > 0 {
		row.QueryP50 = quantileDur(qlats, 0.50)
		row.QueryP99 = quantileDur(qlats, 0.99)
	}
	return row, nil
}

func quantileDur(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

// RenderIngestBench writes the live-ingestion benchmark as text.
func RenderIngestBench(w io.Writer, rows []IngestRow) {
	fmt.Fprintf(w, "== Extension: live ingestion (tsserve -ingest) — sustained appends vs query latency ==\n")
	fmt.Fprintf(w, "%-5s %8s %10s %11s %10s %10s %8s %10s %10s %6s\n",
		"conc", "appends", "elapsed", "appends/s", "app p50", "app p99", "queries", "qry p50", "qry p99", "wm")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5d %8d %10s %11.1f %10s %10s %8d %10s %10s %6d\n",
			r.Concurrency, r.Appends, r.Elapsed.Round(time.Millisecond), r.AppendsPerSec,
			r.AppendP50.Round(time.Microsecond), r.AppendP99.Round(time.Microsecond),
			r.Queries, r.QueryP50.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond),
			r.FinalWatermark)
	}
}
