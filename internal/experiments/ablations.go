package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gofs"
	"tsgraph/internal/graph"
	"tsgraph/internal/partition"
	"tsgraph/internal/subgraph"
)

// PartitionerAblationRow compares partitioning strategies end to end:
// edge cut and TDSP run time under each.
type PartitionerAblationRow struct {
	Partitioner string
	Graph       string
	K           int
	CutPct      float64
	TDSPSim     time.Duration
	Supersteps  int
}

// PartitionerAblation runs TDSP under hash, BFS-grow and multilevel
// partitioning (DESIGN.md §5).
func PartitionerAblation(ds *Dataset, k int, cfg bsp.Config, seed int64) ([]PartitionerAblationRow, error) {
	parters := []partition.Partitioner{
		partition.Hash{},
		partition.BFSGrow{},
		partition.Multilevel{Seed: seed},
	}
	var rows []PartitionerAblationRow
	for _, p := range parters {
		a, err := p.Partition(ds.Template, k)
		if err != nil {
			return nil, err
		}
		parts, err := subgraph.Build(ds.Template, a)
		if err != nil {
			return nil, err
		}
		_, res, err := algorithms.RunTDSP(ds.Template, parts, ds.SourceVertex,
			core.MemorySource{C: ds.Latencies}, ds.Delta, "latency", cfg, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionerAblationRow{
			Partitioner: p.Name(), Graph: ds.Name, K: k,
			CutPct:  a.CutFraction(ds.Template) * 100,
			TDSPSim: res.SimTime, Supersteps: res.Supersteps,
		})
	}
	return rows, nil
}

// RenderPartitionerAblation writes the ablation as text.
func RenderPartitionerAblation(w io.Writer, rows []PartitionerAblationRow) {
	fmt.Fprintf(w, "== Ablation: partitioning strategy (TDSP end-to-end) ==\n")
	fmt.Fprintf(w, "%-12s %-12s %8s %12s %10s\n", "Partitioner", "Graph", "Cut%", "TDSP time", "Supersteps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %7.3f%% %12s %10d\n",
			r.Partitioner, r.Graph, r.CutPct, r.TDSPSim.Round(time.Millisecond), r.Supersteps)
	}
}

// TemporalParallelismRow measures the eventually dependent HASH algorithm
// with and without temporal parallelism — the optimization the paper notes
// GoFFish does not exploit ("there is the possibility of pleasingly
// parallelizing each timestep before the merge. However, this is currently
// not exploited").
type TemporalParallelismRow struct {
	Graph       string
	Parallelism int
	// SimTime models the instances pipelined over the parallel slots.
	SimTime time.Duration
	Wall    time.Duration
}

// TemporalParallelismAblation runs HASH at several temporal parallelism
// degrees. The engine's simulated cluster time is accumulated per instance;
// with P-way temporal parallelism the cluster overlaps P instances, so the
// modeled time divides by min(P, instances), an idealized upper bound on
// the win the paper leaves on the table.
func TemporalParallelismAblation(ds *Dataset, k int, degrees []int, cfg bsp.Config, seed int64) ([]TemporalParallelismRow, error) {
	parts, _, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	var rows []TemporalParallelismRow
	for _, par := range degrees {
		rec := newRecorder(k)
		wallStart := time.Now()
		_, res, err := algorithms.RunHashtag(ds.Template, parts, ds.Meme, "tweets",
			core.MemorySource{C: ds.Tweets}, cfg, rec, par)
		if err != nil {
			return nil, err
		}
		sim := res.SimTime
		if par > 1 {
			slots := par
			if n := ds.Tweets.NumInstances(); slots > n {
				slots = n
			}
			sim = res.SimTime / time.Duration(slots)
		}
		rows = append(rows, TemporalParallelismRow{
			Graph: ds.Name, Parallelism: par,
			SimTime: sim, Wall: time.Since(wallStart),
		})
	}
	return rows, nil
}

// RenderTemporalParallelism writes the ablation as text.
func RenderTemporalParallelism(w io.Writer, rows []TemporalParallelismRow) {
	fmt.Fprintf(w, "== Ablation: temporal parallelism for eventually-dependent HASH ==\n")
	fmt.Fprintf(w, "%-12s %12s %14s\n", "Graph", "Parallelism", "Modeled time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %14s\n", r.Graph, r.Parallelism, r.SimTime.Round(time.Millisecond))
	}
}

// PackingRow measures GoFS temporal packing: steady-state per-timestep time
// vs load-spike amplitude.
type PackingRow struct {
	Pack int
	// MeanLoad is the average per-timestep load share; SpikeLoad is the
	// maximum (the pack-boundary spike).
	MeanLoad  time.Duration
	SpikeLoad time.Duration
	// SliceReads counts slice-file reads over the whole run.
	SliceReads int
	TotalSim   time.Duration
}

// PackingAblation sweeps the temporal packing factor (DESIGN.md §5) running
// TDSP over GoFS-backed data.
func PackingAblation(ds *Dataset, k int, packs []int, dir string, cfg bsp.Config, seed int64) ([]PackingRow, error) {
	parts, a, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	var rows []PackingRow
	for _, pack := range packs {
		dsDir := filepath.Join(dir, fmt.Sprintf("packing_%d", pack))
		if err := gofs.WriteDataset(dsDir, ds.Latencies, a, pack, gofs.DefaultBin); err != nil {
			return nil, err
		}
		store, err := gofs.Open(dsDir)
		if err != nil {
			return nil, err
		}
		loader := gofs.NewLoader(store)
		rec := newRecorder(k)
		job := &core.Job{
			Template: ds.Template,
			Parts:    parts,
			Source:   loader,
			Program:  algorithms.NewTDSP(parts, ds.SourceVertex, ds.Delta, "latency"),
			Pattern:  core.SequentiallyDependent,
			Config:   cfg,
			Recorder: rec,
		}
		if _, err := core.Run(job); err != nil {
			return nil, err
		}
		row := PackingRow{Pack: pack, SliceReads: loader.Loads}
		var total time.Duration
		n := rec.NumTimesteps()
		for i := 0; i < n; i++ {
			step := rec.Step(i)
			load := step.Load / time.Duration(k)
			total += load
			if load > row.SpikeLoad {
				row.SpikeLoad = load
			}
			row.TotalSim += step.SimWall
		}
		if n > 0 {
			row.MeanLoad = total / time.Duration(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPackingAblation writes the ablation as text.
func RenderPackingAblation(w io.Writer, rows []PackingRow) {
	fmt.Fprintf(w, "== Ablation: GoFS temporal packing (TDSP, load share per host) ==\n")
	fmt.Fprintf(w, "%6s %12s %12s %12s %12s\n", "pack", "mean load", "spike load", "slice reads", "total sim")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12s %12s %12d %12s\n",
			r.Pack, r.MeanLoad.Round(time.Microsecond), r.SpikeLoad.Round(time.Microsecond),
			r.SliceReads, r.TotalSim.Round(time.Millisecond))
	}
}

// CompressionRow compares raw vs gzip slice storage: bytes on disk and full
// sequential load time, for both instance data styles (dense random
// latencies vs sparse tweets).
type CompressionRow struct {
	Data     string
	Compress bool
	Bytes    int64
	LoadTime time.Duration
}

// CompressionAblation writes each dataset both ways and measures size and
// load cost.
func CompressionAblation(ds *Dataset, k int, dir string, seed int64) ([]CompressionRow, error) {
	_, a, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	var rows []CompressionRow
	for _, spec := range []struct {
		name string
		coll *graph.Collection
	}{{"latencies", ds.Latencies}, {"tweets", ds.Tweets}} {
		for _, compress := range []bool{false, true} {
			dsDir := filepath.Join(dir, fmt.Sprintf("cmp_%s_%v", spec.name, compress))
			if err := gofs.WriteDatasetOptions(dsDir, spec.coll, a, gofs.Options{
				Pack: gofs.DefaultPack, Bin: gofs.DefaultBin, Compress: compress,
			}); err != nil {
				return nil, err
			}
			var bytes int64
			filepath.WalkDir(dsDir, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() {
					if fi, err := d.Info(); err == nil {
						bytes += fi.Size()
					}
				}
				return nil
			})
			store, err := gofs.Open(dsDir)
			if err != nil {
				return nil, err
			}
			loader := gofs.NewLoader(store)
			start := time.Now()
			for ts := 0; ts < store.Timesteps(); ts++ {
				if _, err := loader.Load(ts); err != nil {
					return nil, err
				}
			}
			rows = append(rows, CompressionRow{
				Data: spec.name, Compress: compress,
				Bytes: bytes, LoadTime: time.Since(start),
			})
			os.RemoveAll(dsDir)
		}
	}
	return rows, nil
}

// RenderCompressionAblation writes the ablation as text.
func RenderCompressionAblation(w io.Writer, rows []CompressionRow) {
	fmt.Fprintf(w, "== Ablation: GoFS slice compression (storage vs load-time tradeoff) ==\n")
	fmt.Fprintf(w, "%-12s %-10s %14s %12s\n", "Data", "Compress", "Bytes", "Load time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10v %14d %12s\n", r.Data, r.Compress, r.Bytes, r.LoadTime.Round(time.Millisecond))
	}
}
