package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/bsp"
	"tsgraph/internal/core"
	"tsgraph/internal/gen"
	"tsgraph/internal/obs/diag"
	"tsgraph/internal/serve"
	"tsgraph/internal/subgraph"
)

// ObsLiveRow is one cell of the live-observability overhead ablation: the
// serving benchmark's closed-loop workload with the lifecycle recorder on
// versus off, at one concurrency level.
type ObsLiveRow struct {
	Concurrency int
	// Live marks whether the lifecycle recorder (per-query tracing, tail
	// sampling, histograms, SLO accounting) was active.
	Live    bool
	Queries int
	Elapsed time.Duration
	QPS     float64
	// OverheadPct is the QPS cost of the recorder relative to the disabled
	// cell at the same concurrency (only set on Live rows; negative values
	// are run-to-run noise).
	OverheadPct float64
}

// ObsLiveAblation measures what always-on serving observability costs: the
// ServeBench workload (closed-loop TDSP clients, batching on, cache off so
// every query is a real sweep) run twice per concurrency level — once with
// the lifecycle recorder disabled and once enabled. The per-query recorder
// cost is one allocation plus scalar atomic stores (~1µs; see
// BenchmarkQueryLifecycle), so against multi-superstep sweeps the measured
// overhead should sit well inside the documented <=3% bound.
func ObsLiveAblation(concurrencies []int, queriesPerCell int, cfg bsp.Config, seed int64) ([]ObsLiveRow, error) {
	ds, err := BuildRoad(serveScale)
	if err != nil {
		return nil, err
	}
	parts, _, err := buildParts(ds, 3, seed)
	if err != nil {
		return nil, err
	}
	src := core.MemorySource{C: ds.Latencies}
	if queriesPerCell <= 0 {
		queriesPerCell = 256
	}
	nv := ds.Template.NumVertices()
	pairs := make([][2]int64, queriesPerCell)
	for i := range pairs {
		si := ((i % serveSourcePool) * 97) % nv
		ti := (nv - 1 - (i*53)%nv)
		if ti == si {
			ti = (ti + 1) % nv
		}
		pairs[i] = [2]int64{
			int64(ds.Template.VertexID(si)),
			int64(ds.Template.VertexID(ti)),
		}
	}

	var rows []ObsLiveRow
	for _, conc := range concurrencies {
		var base float64
		for _, enabled := range []bool{false, true} {
			row, err := obsLiveCell(ds, parts, src, cfg, pairs, conc, enabled)
			if err != nil {
				return nil, err
			}
			if !enabled {
				base = row.QPS
			} else if base > 0 {
				row.OverheadPct = 100 * (base - row.QPS) / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func obsLiveCell(ds *Dataset, parts []*subgraph.PartitionData, src core.InstanceSource, cfg bsp.Config, pairs [][2]int64, conc int, enabled bool) (ObsLiveRow, error) {
	linger := time.Duration(0)
	if conc > 1 {
		linger = 2 * time.Millisecond
	}
	s, err := serve.New(serve.Options{
		Template:        ds.Template,
		Parts:           parts,
		Source:          src,
		Delta:           ds.Delta,
		WeightAttr:      gen.AttrLatency,
		Cores:           cfg.CoresPerHost,
		MaxBatch:        64,
		BatchLinger:     linger,
		QueueCap:        len(pairs) + conc,
		Workers:         2,
		ResultCacheSize: 0,
		DefaultDeadline: 10 * time.Minute,
		DisableLive:     !enabled,
	})
	if err != nil {
		return ObsLiveRow{}, err
	}
	defer s.Close()

	// The enabled cell runs with the anomaly detectors armed on a fast
	// cadence, so the measured overhead covers the whole self-diagnosis
	// path (recorder + detector evaluation), not just the recorder.
	if enabled {
		sampler := diag.NewRuntimeSampler()
		mon := &diag.Monitor{
			Interval: 100 * time.Millisecond,
			Detectors: []*diag.Detector{
				{Name: "slo_burn", Signal: s.Live().SLO().BurnRate, Threshold: 1},
				{Name: "queue_wait", Signal: func() float64 { return s.MaxQueueWait().Seconds() }, Factor: 4, Min: 0.05, Consecutive: 2},
				{Name: "goroutines", Signal: sampler.Goroutines, Factor: 3, Min: 200, Consecutive: 2},
				{Name: "heap_bytes", Signal: sampler.HeapBytes, Factor: 2.5, Min: 256 << 20, Consecutive: 2},
			},
		}
		mon.Start()
		defer mon.Close()
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		execErr error
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				q := serve.Query{Kind: "tdsp", Source: pairs[i][0], Target: pairs[i][1]}
				if _, err := s.Submit(context.Background(), q); err != nil {
					mu.Lock()
					if execErr == nil {
						execErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if execErr != nil {
		return ObsLiveRow{}, fmt.Errorf("obslive cell c=%d live=%v: %w", conc, enabled, execErr)
	}
	return ObsLiveRow{
		Concurrency: conc,
		Live:        enabled,
		Queries:     len(pairs),
		Elapsed:     elapsed,
		QPS:         float64(len(pairs)) / elapsed.Seconds(),
	}, nil
}

// RenderObsLive writes the overhead ablation as text.
func RenderObsLive(w io.Writer, rows []ObsLiveRow) {
	fmt.Fprintf(w, "== Ablation: live observability overhead — lifecycle recorder off vs on ==\n")
	fmt.Fprintf(w, "%-5s %-5s %7s %10s %9s %9s\n",
		"conc", "live", "queries", "elapsed", "qps", "overhead")
	for _, r := range rows {
		over := ""
		if r.Live {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(w, "%-5d %-5v %7d %10s %9.1f %9s\n",
			r.Concurrency, r.Live, r.Queries,
			r.Elapsed.Round(time.Millisecond), r.QPS, over)
	}
}
