package experiments

import (
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"tsgraph/internal/algorithms"
	"tsgraph/internal/bsp"
	"tsgraph/internal/chaos"
	"tsgraph/internal/cluster"
	"tsgraph/internal/core"
	"tsgraph/internal/subgraph"
)

// ChaosRow is one fault-rate point of the fault-tolerance experiment: a
// distributed TDSP run under a seeded per-frame fault probability, with the
// transport's recovery work and the cost it added.
type ChaosRow struct {
	// FaultRate is the per-frame probability that a send severs its
	// connection (the wire.send failpoint; wire.recv runs at half this).
	FaultRate float64
	// Faults is the number of injected faults that actually fired.
	Faults int64
	// Retries / Reconnects / DupFrames are the transport's recovery
	// counters summed over all ranks.
	Retries    int64
	Reconnects int64
	DupFrames  int64
	// Recoveries counts completed down->up incidents; MeanRecovery is the
	// mean time a lost inbound link stayed down before its replacement
	// landed (the paper-style recovery latency).
	Recoveries   int64
	MeanRecovery time.Duration
	// Wall is the slowest rank's wall time for the whole run.
	Wall time.Duration
	// Correct reports whether the run's arrivals matched the fault-free
	// reference exactly.
	Correct bool
}

// ChaosTable runs distributed TDSP over a loopback mesh at each fault rate
// and reports recovery work, recovery latency, and wall-time overhead. The
// first rate should be 0: it doubles as the correctness reference.
func ChaosTable(ds *Dataset, nodesN, k int, cfg bsp.Config, seed int64, rates []float64) ([]ChaosRow, error) {
	if nodesN < 2 {
		nodesN = 2
	}
	parts, _, err := buildParts(ds, k, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosRow, 0, len(rates))
	var reference []float64
	for _, rate := range rates {
		row, arrivals, err := runChaosTDSP(ds, parts, nodesN, k, cfg, seed, rate)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos at rate %g: %w", rate, err)
		}
		if reference == nil {
			reference = arrivals
			row.Correct = true
		} else {
			row.Correct = sameArrivals(reference, arrivals)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func sameArrivals(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.IsInf(a[i], 1) != math.IsInf(b[i], 1) {
			return false
		}
		if !math.IsInf(a[i], 1) && a[i] != b[i] {
			return false
		}
	}
	return true
}

// runChaosTDSP executes one fault-rate point: a nodes-way loopback mesh
// with the resilient transport enabled and a seeded injector per rank.
func runChaosTDSP(ds *Dataset, parts []*subgraph.PartitionData, nodesN, k int, cfg bsp.Config, seed int64, rate float64) (ChaosRow, []float64, error) {
	row := ChaosRow{FaultRate: rate}
	owner := make([]int32, k)
	for p := range owner {
		owner[p] = int32(p % nodesN)
	}
	listeners := make([]net.Listener, nodesN)
	addrs := make([]string, nodesN)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return row, nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	injectors := make([]*chaos.Injector, nodesN)
	nodes := make([]*cluster.Node, nodesN)
	for i := range nodes {
		if rate > 0 {
			injectors[i] = chaos.New(seed+int64(i)).
				SetProb(chaos.SiteWireSend, rate).
				SetProb(chaos.SiteWireRecv, rate/2)
		}
		n, err := cluster.New(cluster.Config{
			Rank: i, Addrs: addrs, Listener: listeners[i], Owner: owner,
			Resilience: &cluster.Resilience{
				BackoffBase:    2 * time.Millisecond,
				BackoffCap:     100 * time.Millisecond,
				RecoveryWindow: 30 * time.Second,
			},
			Chaos: injectors[i],
		})
		if err != nil {
			return row, nil, err
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var startWG sync.WaitGroup
	startErrs := make([]error, nodesN)
	for i, n := range nodes {
		startWG.Add(1)
		go func(i int, n *cluster.Node) {
			defer startWG.Done()
			startErrs[i] = n.Start()
		}(i, n)
	}
	startWG.Wait()
	for i, err := range startErrs {
		if err != nil {
			return row, nil, fmt.Errorf("node %d start: %w", i, err)
		}
	}

	total := subgraph.TotalSubgraphs(parts)
	merged := make([]float64, ds.Template.NumVertices())
	for i := range merged {
		merged[i] = math.Inf(1)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, nodesN)
	walls := make([]time.Duration, nodesN)
	for r := 0; r < nodesN; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var local []*subgraph.PartitionData
			for _, pd := range parts {
				if int(owner[pd.PID]) == r {
					local = append(local, pd)
				}
			}
			prog := algorithms.NewTDSP(local, ds.SourceVertex, ds.Delta, "latency")
			engine := bsp.NewEngineRemote(local, cfg, nodes[r])
			nodes[r].Bind(engine)
			wallStart := time.Now()
			_, err := core.RunWithEngine(&core.Job{
				Template:        ds.Template,
				Parts:           local,
				Source:          core.MemorySource{C: ds.Latencies},
				Program:         prog,
				Pattern:         core.SequentiallyDependent,
				Config:          cfg,
				Remote:          nodes[r],
				Coordinator:     nodes[r],
				GlobalSubgraphs: total,
			}, engine)
			walls[r] = time.Since(wallStart)
			if err != nil {
				errs[r] = err
				nodes[r].Close() // fail loudly: unblock the peers
				return
			}
			arr := prog.Arrivals(local, ds.Template)
			mu.Lock()
			for _, pd := range local {
				for _, g := range pd.GlobalIdx {
					merged[g] = arr[g]
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return row, nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}

	var downTotal time.Duration
	for r, n := range nodes {
		retries, reconnects, dups, recoveries, down := n.RecoveryStats()
		row.Retries += retries
		row.Reconnects += reconnects
		row.DupFrames += dups
		row.Recoveries += recoveries
		downTotal += down
		if walls[r] > row.Wall {
			row.Wall = walls[r]
		}
		if inj := injectors[r]; inj != nil {
			for _, hf := range inj.Stats() {
				row.Faults += hf[1]
			}
		}
	}
	if row.Recoveries > 0 {
		row.MeanRecovery = downTotal / time.Duration(row.Recoveries)
	}
	return row, merged, nil
}

// RenderChaosTable writes the fault-tolerance table.
func RenderChaosTable(w io.Writer, nodesN int, rows []ChaosRow) {
	fmt.Fprintf(w, "== Fault tolerance: TDSP under injected wire faults (%d-node loopback mesh) ==\n", nodesN)
	fmt.Fprintf(w, "%9s %7s %8s %10s %6s %11s %9s %9s %8s\n",
		"rate", "faults", "retries", "reconnects", "dups", "recoveries", "meanrec", "wall", "correct")
	for _, r := range rows {
		fmt.Fprintf(w, "%9g %7d %8d %10d %6d %11d %9s %9s %8v\n",
			r.FaultRate, r.Faults, r.Retries, r.Reconnects, r.DupFrames, r.Recoveries,
			r.MeanRecovery.Round(time.Microsecond), r.Wall.Round(time.Millisecond), r.Correct)
	}
}
