package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// shard builds a synthetic TraceShard for merge tests. Spans are given as
// (kind, part, start, dur) on the rank's local epoch-relative timeline.
func shard(rank int, epoch, offset int64, spans ...Span) TraceShard {
	return TraceShard{Rank: rank, EpochUnixNano: epoch, OffsetNanos: offset, Spans: spans}
}

func TestMergeTracesAlignsClockOffsets(t *testing.T) {
	// Rank 1's clock runs 500ns ahead of rank 0's: identical physical
	// instants appear 500ns later on its local timeline + epoch, so the
	// merge must subtract the offset to line them up.
	s0 := shard(0, 1_000_000, 0,
		Span{Kind: SpanComputePhase, Part: 0, TS: 0, Step: 0, Start: 0, Dur: 100},
		Span{Kind: SpanWireSend, Part: 1, TS: 0, Step: 0, SID: PackWireID(0, 1), Start: 100, Dur: 10},
	)
	s1 := shard(1, 1_000_500, 500,
		Span{Kind: SpanWireRecv, Part: 0, TS: 0, Step: 0, SID: PackWireID(0, 1), Start: 150, Dur: 0},
		Span{Kind: SpanComputePhase, Part: 1, TS: 0, Step: 0, Start: 200, Dur: 80},
	)
	m := MergeTraces([]TraceShard{s1, s0}) // out of order on purpose
	if len(m.Ranks) != 2 || m.Ranks[0] != 0 || m.Ranks[1] != 1 {
		t.Fatalf("Ranks = %v", m.Ranks)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Rank 1's aligned base equals rank 0's (1_000_500 - 500), so its recv
	// at local 150 must land at aligned 150.
	for _, sp := range m.Spans {
		if sp.Kind == SpanWireRecv && sp.Start != 150 {
			t.Fatalf("wire-recv aligned to %d, want 150", sp.Start)
		}
	}
	prev := int64(-1)
	for _, sp := range m.Spans {
		if sp.Start < prev {
			t.Fatalf("merged spans not monotonic: %d after %d", sp.Start, prev)
		}
		prev = sp.Start
	}
}

func TestMergeTracesClampsSubEpochJitter(t *testing.T) {
	// An overestimated offset can push a span before the merged epoch of
	// the reference rank; the merge clamps rather than going negative.
	s0 := shard(0, 1_000, 0, Span{Kind: SpanComputePhase, Part: 0, Start: 50, Dur: 10})
	s1 := shard(1, 1_000, 900, Span{Kind: SpanComputePhase, Part: 0, Start: 20, Dur: 10})
	m := MergeTraces([]TraceShard{s0, s1})
	for _, sp := range m.Spans {
		if sp.Start < 0 {
			t.Fatalf("negative aligned start %d", sp.Start)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsUnresolvedWireRecv(t *testing.T) {
	s0 := shard(0, 0, 0, Span{Kind: SpanComputePhase, Part: 0, Start: 0, Dur: 1})
	s1 := shard(1, 0, 0, Span{Kind: SpanWireRecv, Part: 0, SID: PackWireID(0, 7), Start: 5, Dur: 0})
	m := MergeTraces([]TraceShard{s0, s1})
	if err := m.Validate(); err == nil {
		t.Fatal("recv without matching send passed validation")
	}
}

func TestValidateRejectsEmptyRank(t *testing.T) {
	s0 := shard(0, 0, 0, Span{Kind: SpanComputePhase, Part: 0, Start: 0, Dur: 1})
	s1 := shard(1, 0, 0)
	m := MergeTraces([]TraceShard{s0, s1})
	if err := m.Validate(); err == nil {
		t.Fatal("rank without spans passed validation")
	}
}

func TestPackWireIDRoundTrip(t *testing.T) {
	for _, c := range []struct {
		rank int
		seq  int64
	}{{0, 1}, {3, 42}, {255, 1 << 40}, {1, 0}} {
		rank, seq := UnpackWireID(PackWireID(c.rank, c.seq))
		if rank != c.rank || seq != c.seq {
			t.Fatalf("roundtrip (%d,%d) = (%d,%d)", c.rank, c.seq, rank, seq)
		}
	}
}

func TestMergedChromeTraceHasOneProcessRowPerRank(t *testing.T) {
	shards := []TraceShard{
		shard(0, 0, 0,
			Span{Kind: SpanComputePhase, Part: 0, TS: 0, Step: 0, Start: 0, Dur: 100},
			Span{Kind: SpanWireSend, Part: 1, SID: PackWireID(0, 1), Start: 100, Dur: 5},
			Span{Kind: SpanStall, Part: 1, TS: 0, Step: 1, Start: 200, Dur: 50},
		),
		shard(1, 0, 0,
			Span{Kind: SpanWireRecv, Part: 0, SID: PackWireID(0, 1), Start: 110, Dur: 0},
			Span{Kind: SpanComputePhase, Part: 1, TS: 0, Step: 0, Start: 120, Dur: 90},
		),
	}
	m := MergeTraces(shards)
	var sb strings.Builder
	if err := m.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, sb.String())
	}
	procs := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			procs[args["name"].(string)] = true
		}
	}
	for _, want := range []string{"rank 0 driver", "rank 1 driver"} {
		if !procs[want] {
			t.Fatalf("missing process row %q in %v", want, procs)
		}
	}
	out := sb.String()
	if !strings.Contains(out, `"stall: party 1"`) {
		t.Fatal("stall instant event missing")
	}
	if !strings.Contains(out, `"wire-send peer 1"`) || !strings.Contains(out, `"wire-recv peer 0"`) {
		t.Fatal("wire spans missing")
	}
}

func TestClusterSkewDecomposition(t *testing.T) {
	// Three ranks, one superstep. Rank 0 has three partitions with 100,
	// 100, 400ns compute — a 4x intra-rank straggler — while ranks 1 and 2
	// each run one balanced 100ns partition and then idle 300ns behind
	// rank 0's makespan at the global barrier.
	m := &MergedTrace{
		Ranks: []int{0, 1, 2},
		Stats: []RankStepStat{
			{Rank: 0, StepStat: StepStat{TS: 0, Step: 0, Part: 0, Compute: 100}},
			{Rank: 0, StepStat: StepStat{TS: 0, Step: 0, Part: 1, Compute: 100}},
			{Rank: 0, StepStat: StepStat{TS: 0, Step: 0, Part: 2, Compute: 400}},
			{Rank: 1, StepStat: StepStat{TS: 0, Step: 0, Part: 3, Compute: 100}},
			{Rank: 2, StepStat: StepStat{TS: 0, Step: 0, Part: 4, Compute: 100}},
		},
	}
	rep := m.ClusterSkew()
	if rep.Ranks != 3 || rep.Supersteps != 1 {
		t.Fatalf("shape: %+v", rep)
	}
	// Intra: (400+100+100)/(100+100+100) over the per-rank medians.
	if rep.IntraRatio != 2.0 {
		t.Fatalf("IntraRatio = %v, want 2.0", rep.IntraRatio)
	}
	if rep.IntraExcess != 300*time.Nanosecond {
		t.Fatalf("IntraExcess = %v, want 300ns", rep.IntraExcess)
	}
	// Inter: rank makespans [400, 100, 100] -> max/median = 4, and ranks 1
	// and 2 each wait 300ns.
	if rep.InterRatio != 4.0 {
		t.Fatalf("InterRatio = %v, want 4.0", rep.InterRatio)
	}
	if rep.InterWait != 600*time.Nanosecond {
		t.Fatalf("InterWait = %v, want 600ns", rep.InterWait)
	}
	if len(rep.PerRank) != 3 || rep.PerRank[1].InterWait != 300*time.Nanosecond {
		t.Fatalf("PerRank = %+v", rep.PerRank)
	}
}

func TestClusterSkewDegenerateInputs(t *testing.T) {
	empty := (&MergedTrace{Ranks: []int{0}}).ClusterSkew()
	if empty.Supersteps != 0 {
		t.Fatalf("empty stats: %+v", empty)
	}
	// Zero-compute supersteps must not divide by zero.
	zero := (&MergedTrace{
		Ranks: []int{0, 1},
		Stats: []RankStepStat{
			{Rank: 0, StepStat: StepStat{TS: 0, Step: 0, Part: 0}},
			{Rank: 1, StepStat: StepStat{TS: 0, Step: 0, Part: 1}},
		},
	}).ClusterSkew()
	if zero.IntraRatio != 1 || zero.InterRatio != 1 {
		t.Fatalf("zero-compute ratios = %v / %v, want 1 / 1", zero.IntraRatio, zero.InterRatio)
	}
}

func TestShardCollectorEmitsPerRankSamples(t *testing.T) {
	c := ShardCollector{Shards: []TraceShard{
		{Rank: 0, Spans: make([]Span, 3), Stats: []StepStat{{Compute: int64(time.Second)}}},
		{Rank: 2, OffsetNanos: int64(time.Millisecond)},
	}}
	var names []string
	byRank := map[string]float64{}
	c.CollectObs(func(s Sample) {
		names = append(names, s.Name)
		if s.Name == "tsgraph_cluster_spans_total" {
			byRank[s.Labels[0].Value] = s.Value
		}
	})
	if byRank["0"] != 3 || byRank["2"] != 0 {
		t.Fatalf("span counts by rank = %v", byRank)
	}
	found := false
	for _, n := range names {
		if n == "tsgraph_cluster_clock_offset_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("clock offset gauge missing")
	}
}
