package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/subgraph"
)

func TestNilTracerIsSafeAndInert(t *testing.T) {
	var tr *Tracer
	if tr.Active() {
		t.Fatal("nil tracer reports active")
	}
	tr.Enable()
	tr.Disable()
	tr.Reset()
	tr.RecordSpan(SpanCompute, 0, 0, 0, 0, time.Now(), time.Microsecond)
	tr.RecordStepStat(0, 0, 0, 1, 1, 1)
	tr.RecordPhases(0, 0, 0, time.Now(), time.Now(), time.Now())
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans() = %v, want nil", got)
	}
	if got := tr.StepStats(); got != nil {
		t.Fatalf("nil tracer StepStats() = %v, want nil", got)
	}
	if tr.SpansRecorded() != 0 || tr.SpansDropped() != 0 {
		t.Fatal("nil tracer reports recorded spans")
	}
	if rep := tr.Skew(); rep.Supersteps != 0 {
		t.Fatalf("nil tracer Skew() = %+v, want empty", rep)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(0)
	tr.RecordSpan(SpanCompute, 0, 0, 0, 0, time.Now(), time.Microsecond)
	tr.RecordStepStat(0, 0, 0, 1, 1, 1)
	tr.RecordPhases(0, 0, 0, time.Now(), time.Now(), time.Now())
	if tr.SpansRecorded() != 0 || len(tr.StepStats()) != 0 {
		t.Fatal("disabled tracer recorded data")
	}
	tr.Enable()
	tr.RecordSpan(SpanCompute, 0, 0, 0, 0, time.Now(), time.Microsecond)
	if tr.SpansRecorded() != 1 {
		t.Fatalf("enabled tracer recorded %d spans, want 1", tr.SpansRecorded())
	}
	tr.Disable()
	tr.RecordSpan(SpanCompute, 0, 0, 0, 0, time.Now(), time.Microsecond)
	if tr.SpansRecorded() != 1 {
		t.Fatal("disabled tracer kept recording")
	}
}

func TestSpanRingWrapKeepsNewestInOrder(t *testing.T) {
	tr := NewTracer(16) // floor: 256 entries per shard
	tr.Enable()
	const n = 300 // all into partition 1's shard, so the ring wraps
	for i := 0; i < n; i++ {
		tr.RecordSpan(SpanCompute, 1, 0, int32(i), 0, tr.Epoch().Add(time.Duration(i)), time.Nanosecond)
	}
	if got := tr.SpansRecorded(); got != n {
		t.Fatalf("SpansRecorded() = %d, want %d", got, n)
	}
	if got := tr.SpansDropped(); got != n-256 {
		t.Fatalf("SpansDropped() = %d, want %d", got, n-256)
	}
	spans := tr.Spans()
	if len(spans) != 256 {
		t.Fatalf("len(Spans()) = %d, want 256", len(spans))
	}
	for i, sp := range spans {
		if want := int32(n - 256 + i); sp.Step != want {
			t.Fatalf("spans[%d].Step = %d, want %d (oldest surviving entry first)", i, sp.Step, want)
		}
	}

	tr.Reset()
	if tr.SpansRecorded() != 0 || len(tr.Spans()) != 0 || len(tr.StepStats()) != 0 {
		t.Fatal("Reset left recorded data behind")
	}
	if !tr.Active() {
		t.Fatal("Reset cleared the enabled flag")
	}
}

func TestSpansMergeShardsByStartTime(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	// Interleave two partitions (distinct shards) with distinct start times.
	for i := 0; i < 10; i++ {
		part := int32(i % 2)
		tr.RecordSpan(SpanCompute, part, 0, int32(i), 0, tr.Epoch().Add(time.Duration(10-i)*time.Millisecond), time.Microsecond)
	}
	spans := tr.Spans()
	if len(spans) != 10 {
		t.Fatalf("len(Spans()) = %d, want 10", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("Spans() not sorted by start: [%d]=%d after %d", i, spans[i].Start, spans[i-1].Start)
		}
	}
}

func TestRecordPhasesEmitsComputeAndFlushSpans(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	base := tr.Epoch()
	tr.RecordPhases(2, 7, 3, base.Add(100*time.Nanosecond), base.Add(400*time.Nanosecond), base.Add(600*time.Nanosecond))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("RecordPhases produced %d spans, want 2", len(spans))
	}
	phase, flush := spans[0], spans[1]
	if phase.Kind != SpanComputePhase || flush.Kind != SpanFlush {
		t.Fatalf("kinds = %v, %v; want compute-phase, flush", phase.Kind, flush.Kind)
	}
	if phase.Part != 2 || phase.TS != 7 || phase.Step != 3 {
		t.Fatalf("phase span coordinates = %+v", phase)
	}
	if phase.Start != 100 || phase.Dur != 300 {
		t.Fatalf("phase span interval = [%d, +%d], want [100, +300]", phase.Start, phase.Dur)
	}
	if flush.Start != 400 || flush.Dur != 200 {
		t.Fatalf("flush span interval = [%d, +%d], want [400, +200]", flush.Start, flush.Dur)
	}
}

func TestSkewReportMath(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	// Superstep 0: computes 1,2,4 ms -> max/median = 2. Superstep 1:
	// computes 2,2,6 ms -> max/median = 3 (the worst).
	ms := time.Millisecond
	tr.RecordStepStat(0, 0, 0, 1*ms, 0, 5*ms)
	tr.RecordStepStat(0, 0, 1, 2*ms, 0, 4*ms)
	tr.RecordStepStat(0, 0, 2, 4*ms, 0, 2*ms)
	tr.RecordStepStat(0, 1, 0, 2*ms, 0, 4*ms)
	tr.RecordStepStat(0, 1, 1, 2*ms, 0, 4*ms)
	tr.RecordStepStat(0, 1, 2, 6*ms, 0, 0)
	// Subgraph attribution: 1/0 is the slowest by total compute.
	slow := subgraph.MakeID(1, 0)
	fast := subgraph.MakeID(0, 1)
	tr.RecordSpan(SpanCompute, 1, 0, 0, int64(slow), tr.Epoch(), 4*ms)
	tr.RecordSpan(SpanCompute, 0, 0, 0, int64(fast), tr.Epoch(), 1*ms)
	tr.RecordSpan(SpanCompute, 1, 0, 1, int64(slow), tr.Epoch(), 6*ms)

	rep := tr.Skew()
	if rep.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2", rep.Supersteps)
	}
	// Weighted ratio: (4+6) / (2+2) = 2.5.
	if rep.MaxMedianRatio != 2.5 {
		t.Fatalf("MaxMedianRatio = %v, want 2.5", rep.MaxMedianRatio)
	}
	// Worst superstep by absolute excess: superstep 1 (6-2=4ms over 0's 2ms).
	if rep.WorstRatio != 3 || rep.WorstExcess != 4*ms || rep.WorstTS != 0 || rep.WorstStep != 1 {
		t.Fatalf("worst = %.2fx (+%v) at t%d s%d, want 3.00x (+4ms) at t0 s1",
			rep.WorstRatio, rep.WorstExcess, rep.WorstTS, rep.WorstStep)
	}
	if rep.TotalCompute != 17*ms || rep.TotalBarrier != 19*ms {
		t.Fatalf("totals = compute %v, barrier %v; want 17ms, 19ms", rep.TotalCompute, rep.TotalBarrier)
	}
	if got := rep.ComputeByPart[2]; got != 10*ms {
		t.Fatalf("ComputeByPart[2] = %v, want 10ms", got)
	}
	if frac := rep.BarrierFrac(); frac < 0.52 || frac > 0.53 {
		t.Fatalf("BarrierFrac() = %v, want 19/36", frac)
	}
	if rep.SlowestSubgraph != "1/0" || rep.SlowestSubgraphCompute != 10*ms {
		t.Fatalf("slowest subgraph = %q (%v), want 1/0 (10ms)", rep.SlowestSubgraph, rep.SlowestSubgraphCompute)
	}
	str := rep.String()
	for _, want := range []string{"2 supersteps", "worst 3.00x, +4ms at t0 s1", "slowest subgraph 1/0"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q, missing %q", str, want)
		}
	}
}

// chromeTrace mirrors the trace_event JSON array format for validation.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string  `json:"ph"`
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	base := tr.Epoch()
	tr.RecordSpan(SpanTimestep, -1, 3, -1, 0, base, 10*time.Millisecond)
	tr.RecordSpan(SpanLoad, -1, 3, -1, 0, base, 2*time.Millisecond)
	tr.RecordSpan(SpanExchange, -1, 3, -1, 0, base.Add(10*time.Millisecond), time.Millisecond)
	tr.RecordPhases(0, 3, 0, base.Add(2*time.Millisecond), base.Add(8*time.Millisecond), base.Add(9*time.Millisecond))
	tr.RecordSpan(SpanBarrier, 0, 3, 0, 0, base.Add(9*time.Millisecond), time.Millisecond)
	tr.RecordSpan(SpanCompute, 0, 3, 0, int64(subgraph.MakeID(0, 2)), base.Add(2*time.Millisecond), 5*time.Millisecond)

	var buf strings.Builder
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	byName := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		byName[ev.Name] = true
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 7 {
		t.Fatalf("got %d complete events, want 7", complete)
	}
	if meta < 3 {
		t.Fatalf("got %d metadata events, want process/thread names", meta)
	}
	for _, want := range []string{"timestep 3", "load 3", "exchange 3", "compute-phase", "flush", "barrier", "compute 0/2"} {
		if !byName[want] {
			t.Fatalf("trace missing event %q (have %v)", want, byName)
		}
	}
	// The subgraph compute span must sit on its own lane of the partition's
	// process: pid = part+1, tid = 1+subgraph index.
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "compute 0/2" {
			if ev.Pid != 1 || ev.Tid != 3 {
				t.Fatalf("compute span on pid=%d tid=%d, want pid=1 tid=3", ev.Pid, ev.Tid)
			}
		}
	}

	// A nil tracer must still produce a loadable (metadata-only) trace.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("empty chrome trace invalid: %v", err)
	}
}
