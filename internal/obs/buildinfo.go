package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the Go toolchain that built it
// and the VCS revision it was built from (falling back to "unknown" for
// non-VCS builds such as `go test` binaries).
type BuildInfo struct {
	GoVersion string
	GitSHA    string
	Modified  bool // VCS checkout had local modifications
}

// ReadBuildInfo extracts the binary's build identity from the runtime's
// embedded module info.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version(), GitSHA: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.GitSHA = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the build identity for -version output.
func (b BuildInfo) String() string {
	sha := b.GitSHA
	if b.Modified {
		sha += "+dirty"
	}
	return fmt.Sprintf("%s (%s)", sha, b.GoVersion)
}

// CollectObs implements Collector with the conventional info-metric shape:
// a constant-1 gauge whose labels carry the identity, so every scrape of an
// obs-enabled binary records exactly which build produced the numbers.
func (b BuildInfo) CollectObs(emit func(Sample)) {
	emit(Sample{
		Name: "tsgraph_build_info",
		Help: "Build identity of the exporting binary (constant 1; identity in labels).",
		Kind: "gauge",
		Labels: []Label{
			{Key: "go_version", Value: b.GoVersion},
			{Key: "git_sha", Value: b.GitSHA},
		},
		Value: 1,
	})
}
