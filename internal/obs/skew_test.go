package obs

import (
	"math"
	"testing"
	"time"
)

// TestSkewReportDegenerateInputs drives Skew through the windows that used
// to risk a divide-by-zero or a meaningless ratio: a single partition (max
// == median by construction), supersteps whose compute is entirely zero,
// and a one-timestep one-superstep run.
func TestSkewReportDegenerateInputs(t *testing.T) {
	type stat struct {
		ts, step, part          int32
		compute, flush, barrier time.Duration
	}
	cases := []struct {
		name       string
		stats      []stat
		wantSteps  int
		wantRatio  float64
		wantWorst  float64
		wantExcess time.Duration
	}{
		{
			name:      "no stats at all",
			stats:     nil,
			wantSteps: 0, wantRatio: 0, wantWorst: 0,
		},
		{
			name: "single partition",
			stats: []stat{
				{0, 0, 0, 5 * time.Millisecond, 0, 0},
				{0, 1, 0, 7 * time.Millisecond, 0, 0},
			},
			wantSteps: 2, wantRatio: 1, wantWorst: 0, wantExcess: 0,
		},
		{
			name: "zero-compute supersteps",
			stats: []stat{
				{0, 0, 0, 0, 0, time.Millisecond},
				{0, 0, 1, 0, 0, time.Millisecond},
				{1, 0, 0, 0, 0, time.Millisecond},
				{1, 0, 1, 0, 0, time.Millisecond},
			},
			wantSteps: 2, wantRatio: 1, wantWorst: 0, wantExcess: 0,
		},
		{
			name: "one-timestep run with spread",
			stats: []stat{
				{0, 0, 0, 1 * time.Millisecond, 0, time.Millisecond},
				{0, 0, 1, 1 * time.Millisecond, 0, time.Millisecond},
				{0, 0, 2, 2 * time.Millisecond, 0, 0},
			},
			wantSteps: 1, wantRatio: 2, wantWorst: 2, wantExcess: time.Millisecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracer(0)
			tr.Enable()
			for _, s := range tc.stats {
				tr.RecordStepStat(s.ts, s.step, s.part, s.compute, s.flush, s.barrier)
			}
			rep := tr.Skew()
			if math.IsNaN(rep.MaxMedianRatio) || math.IsInf(rep.MaxMedianRatio, 0) ||
				math.IsNaN(rep.WorstRatio) || math.IsInf(rep.WorstRatio, 0) {
				t.Fatalf("non-finite ratios: %+v", rep)
			}
			if rep.Supersteps != tc.wantSteps {
				t.Fatalf("Supersteps = %d, want %d", rep.Supersteps, tc.wantSteps)
			}
			if rep.MaxMedianRatio != tc.wantRatio {
				t.Fatalf("MaxMedianRatio = %v, want %v", rep.MaxMedianRatio, tc.wantRatio)
			}
			if rep.WorstRatio != tc.wantWorst {
				t.Fatalf("WorstRatio = %v, want %v", rep.WorstRatio, tc.wantWorst)
			}
			if rep.WorstExcess != tc.wantExcess {
				t.Fatalf("WorstExcess = %v, want %v", rep.WorstExcess, tc.wantExcess)
			}
			// The report must always render without panicking.
			_ = rep.String()
		})
	}
}

func TestRatioOrUnit(t *testing.T) {
	for _, c := range []struct {
		max, med int64
		want     float64
	}{
		{0, 0, 1},
		{5, 0, 5},
		{6, 3, 2},
		{3, 3, 1},
	} {
		if got := ratioOrUnit(c.max, c.med); got != c.want {
			t.Fatalf("ratioOrUnit(%d, %d) = %v, want %v", c.max, c.med, got, c.want)
		}
	}
}
