package obs

import (
	"bufio"
	"fmt"
	"io"

	"tsgraph/internal/subgraph"
)

// WriteChromeTrace renders the tracer's spans in the Chrome trace_event
// JSON format (the "JSON Array Format with metadata" variant), loadable in
// chrome://tracing and Perfetto.
//
// Layout: pid 0 is the driver (timestep / load / exchange lanes); each
// partition is its own pid (1+partition) with tid 0 for the superstep
// phase lanes (compute window, flush, barrier) and tid 1+index for each
// subgraph's Compute spans, so per-subgraph stragglers are visible as long
// bars next to their partition's barrier wait.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	spans := t.Spans()
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}

	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name the driver process and every partition seen.
	emit(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"driver"}}`)
	emit(`{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"timesteps"}}`)
	seenPart := map[int32]bool{}
	seenServe := false
	for _, s := range spans {
		if !seenServe && (s.Kind == SpanQuery || s.Kind == SpanBatch) {
			seenServe = true
			emit(`{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"serving"}}`)
		}
		// Wire, stall, and serving spans carry no partition in Part.
		if s.Kind == SpanWireSend || s.Kind == SpanWireRecv || s.Kind == SpanStall ||
			s.Kind == SpanQuery || s.Kind == SpanBatch {
			continue
		}
		if s.Part >= 0 && !seenPart[s.Part] {
			seenPart[s.Part] = true
			emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"partition %d"}}`, s.Part+1, s.Part)
			emit(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"supersteps"}}`, s.Part+1)
		}
	}

	for _, s := range spans {
		pid, tid := int32(0), int32(0)
		name := s.Kind.String()
		switch s.Kind {
		case SpanTimestep:
			name = fmt.Sprintf("timestep %d", s.TS)
		case SpanLoad:
			name = fmt.Sprintf("load %d", s.TS)
		case SpanExchange:
			name = fmt.Sprintf("exchange %d", s.TS)
		case SpanComputePhase, SpanFlush, SpanBarrier:
			pid = s.Part + 1
		case SpanCompute:
			pid = s.Part + 1
			sid := subgraph.ID(s.SID)
			tid = int32(1 + sid.Index())
			name = fmt.Sprintf("compute %s", sid)
		case SpanStall:
			emit(`{"ph":"i","s":"g","name":"stall: party %d","cat":"stall","pid":0,"tid":0,"ts":%.3f,"args":{"timestep":%d,"superstep":%d,"waited_ms":%.3f}}`,
				s.Part, float64(s.Start+s.Dur)/1e3, s.TS, s.Step, float64(s.Dur)/1e6)
			continue
		case SpanQuery:
			tid = 2
			name = fmt.Sprintf("query %d", s.SID)
		case SpanBatch:
			tid = 2
			name = fmt.Sprintf("batch x%d", s.SID)
		case SpanWireSend, SpanWireRecv:
			sender, seq := UnpackWireID(s.SID)
			emit(`{"ph":"X","name":%q,"cat":%q,"pid":0,"tid":1,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d,"peer":%d,"sender":%d,"seq":%d}}`,
				fmt.Sprintf("%s peer %d", s.Kind, s.Part), s.Kind.String(), float64(s.Start)/1e3, float64(s.Dur)/1e3, s.TS, s.Step, s.Part, sender, seq)
			continue
		}
		emit(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d}}`,
			name, s.Kind.String(), pid, tid,
			float64(s.Start)/1e3, float64(s.Dur)/1e3, s.TS, s.Step)
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
