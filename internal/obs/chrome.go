package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"tsgraph/internal/subgraph"
)

// ChromeWriter streams Chrome trace_event JSON (the "JSON Object Format"
// variant: a traceEvents array plus arbitrary metadata keys), loadable in
// chrome://tracing and Perfetto. It is the shared back end of the run-level
// trace export (WriteChromeTrace) and the serving layer's per-query flight
// recorder export, which interleaves its own lifecycle events with tracer
// spans from the same time window.
type ChromeWriter struct {
	bw    *bufio.Writer
	first bool
	meta  map[string]any
	err   error
}

// NewChromeWriter starts a trace document on w. Call Close to finish it.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{bw: bufio.NewWriter(w), first: true}
	_, cw.err = cw.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return cw
}

// Event emits one raw trace event; format must produce a JSON object.
func (c *ChromeWriter) Event(format string, args ...any) {
	if c.err != nil {
		return
	}
	if !c.first {
		c.bw.WriteByte(',')
	}
	c.first = false
	fmt.Fprintf(c.bw, format, args...)
}

// SetMetadata attaches a top-level metadata key to the trace document
// (rendered after traceEvents; viewers ignore keys they don't know).
func (c *ChromeWriter) SetMetadata(key string, v any) {
	if c.meta == nil {
		c.meta = map[string]any{}
	}
	c.meta[key] = v
}

// Close terminates the traceEvents array, writes any metadata keys, and
// flushes.
func (c *ChromeWriter) Close() error {
	if c.err != nil {
		return c.err
	}
	c.bw.WriteString("]")
	for _, kv := range sortedMeta(c.meta) {
		data, err := json.Marshal(kv.v)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.bw, ",%q:%s", kv.k, data)
	}
	if _, err := c.bw.WriteString("}\n"); err != nil {
		return err
	}
	return c.bw.Flush()
}

type metaKV struct {
	k string
	v any
}

func sortedMeta(m map[string]any) []metaKV {
	out := make([]metaKV, 0, len(m))
	for k, v := range m {
		out = append(out, metaKV{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].k < out[j-1].k; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Span emits one tracer span with the standard lane layout: pid 0 is the
// driver (timestep / load / exchange lanes, wire rows, the serving lane);
// each partition is its own pid (1+partition) with tid 0 for the superstep
// phase lanes and tid 1+index per subgraph.
func (c *ChromeWriter) Span(s Span) {
	pid, tid := int32(0), int32(0)
	name := s.Kind.String()
	switch s.Kind {
	case SpanTimestep:
		name = fmt.Sprintf("timestep %d", s.TS)
	case SpanLoad:
		name = fmt.Sprintf("load %d", s.TS)
	case SpanExchange:
		name = fmt.Sprintf("exchange %d", s.TS)
	case SpanComputePhase, SpanFlush, SpanBarrier:
		pid = s.Part + 1
	case SpanCompute:
		pid = s.Part + 1
		sid := subgraph.ID(s.SID)
		tid = int32(1 + sid.Index())
		name = fmt.Sprintf("compute %s", sid)
	case SpanStall:
		c.Event(`{"ph":"i","s":"g","name":"stall: party %d","cat":"stall","pid":0,"tid":0,"ts":%.3f,"args":{"timestep":%d,"superstep":%d,"waited_ms":%.3f}}`,
			s.Part, float64(s.Start+s.Dur)/1e3, s.TS, s.Step, float64(s.Dur)/1e6)
		return
	case SpanQuery:
		tid = 2
		name = fmt.Sprintf("query %d", s.SID)
	case SpanBatch:
		tid = 2
		name = fmt.Sprintf("batch x%d", s.SID)
	case SpanWireSend, SpanWireRecv:
		sender, seq := UnpackWireID(s.SID)
		c.Event(`{"ph":"X","name":%q,"cat":%q,"pid":0,"tid":1,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d,"peer":%d,"sender":%d,"seq":%d}}`,
			fmt.Sprintf("%s peer %d", s.Kind, s.Part), s.Kind.String(), float64(s.Start)/1e3, float64(s.Dur)/1e3, s.TS, s.Step, s.Part, sender, seq)
		return
	}
	c.Event(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d}}`,
		name, s.Kind.String(), pid, tid,
		float64(s.Start)/1e3, float64(s.Dur)/1e3, s.TS, s.Step)
}

// ProcessMeta names the standard driver/partition rows for a span set.
func (c *ChromeWriter) ProcessMeta(spans []Span) {
	c.Event(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"driver"}}`)
	c.Event(`{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"timesteps"}}`)
	seenPart := map[int32]bool{}
	seenServe := false
	for _, s := range spans {
		if !seenServe && (s.Kind == SpanQuery || s.Kind == SpanBatch) {
			seenServe = true
			c.Event(`{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"serving"}}`)
		}
		// Wire, stall, and serving spans carry no partition in Part.
		if s.Kind == SpanWireSend || s.Kind == SpanWireRecv || s.Kind == SpanStall ||
			s.Kind == SpanQuery || s.Kind == SpanBatch {
			continue
		}
		if s.Part >= 0 && !seenPart[s.Part] {
			seenPart[s.Part] = true
			c.Event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"partition %d"}}`, s.Part+1, s.Part)
			c.Event(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"supersteps"}}`, s.Part+1)
		}
	}
}

// WriteChromeTrace renders the tracer's spans as a Chrome trace. The
// document's metadata block carries the tracer's span accounting — in
// particular spans_dropped, so a trace whose ring wrapped is never
// mistaken for a complete record.
//
// Layout: pid 0 is the driver (timestep / load / exchange lanes); each
// partition is its own pid (1+partition) with tid 0 for the superstep
// phase lanes (compute window, flush, barrier) and tid 1+index for each
// subgraph's Compute spans, so per-subgraph stragglers are visible as long
// bars next to their partition's barrier wait.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	cw := NewChromeWriter(w)
	spans := t.Spans()
	cw.ProcessMeta(spans)
	for _, s := range spans {
		cw.Span(s)
	}
	cw.SetMetadata("spans_recorded", t.SpansRecorded())
	cw.SetMetadata("spans_dropped", t.SpansDropped())
	return cw.Close()
}
