package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink for watchdog warnings.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestWatchdogFiresExactlyOncePerStalledParty(t *testing.T) {
	tracer := NewTracer(0)
	tracer.Enable()
	log := &syncBuffer{}
	wd := NewWatchdog(WatchdogConfig{
		Parties: 3,
		MinWait: 20 * time.Millisecond,
		Poll:    2 * time.Millisecond,
		Tracer:  tracer,
		Log:     log,
		Describe: func(p int) string {
			if p == 2 {
				return "rank 2 (partitions [2 5])"
			}
			return "rank ?"
		},
	})
	defer wd.Close()

	wd.StepBegin(1, 4)
	wd.Arrive(4, 0)
	wd.Arrive(4, 1)
	// Party 2 stalls: a 10x-threshold wait must produce exactly one warning
	// even though the monitor keeps polling.
	if !waitFor(t, 2*time.Second, func() bool { return len(wd.Warnings()) >= 1 }) {
		t.Fatal("watchdog never fired")
	}
	time.Sleep(200 * time.Millisecond) // 10x the threshold; dedupe must hold
	warns := wd.Warnings()
	if len(warns) != 1 {
		t.Fatalf("got %d warnings, want exactly 1: %+v", len(warns), warns)
	}
	w := warns[0]
	if w.Party != 2 || w.TS != 1 || w.Step != 4 {
		t.Fatalf("warning = %+v, want party 2 at t1 s4", w)
	}
	if !strings.Contains(log.String(), "rank 2 (partitions [2 5])") {
		t.Fatalf("log does not name the suspect: %q", log.String())
	}
	stalls := 0
	for _, sp := range tracer.Spans() {
		if sp.Kind == SpanStall {
			stalls++
			if sp.Part != 2 || sp.TS != 1 || sp.Step != 4 {
				t.Fatalf("stall span = %+v", sp)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("recorded %d stall spans, want 1", stalls)
	}

	// Late completion clears the window for the next step.
	wd.Arrive(4, 2)
	wd.StepEnd(4)
	wd.StepBegin(1, 5)
	wd.Arrive(5, 0)
	wd.Arrive(5, 1)
	wd.Arrive(5, 2)
	wd.StepEnd(5)
	if got := len(wd.Warnings()); got != 1 {
		t.Fatalf("healthy step added warnings: %d", got)
	}
}

func TestWatchdogQuietOnHealthySteps(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{
		Parties: 2,
		MinWait: 20 * time.Millisecond,
		Poll:    2 * time.Millisecond,
		Log:     io.Discard,
	})
	defer wd.Close()
	for step := 0; step < 20; step++ {
		wd.StepBegin(0, step)
		wd.Arrive(step, 0)
		wd.Arrive(step, 1)
		wd.StepEnd(step)
	}
	time.Sleep(60 * time.Millisecond)
	if warns := wd.Warnings(); len(warns) != 0 {
		t.Fatalf("healthy run fired %+v", warns)
	}
}

func TestWatchdogCreditsEarlyArrivals(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{
		Parties: 2,
		MinWait: 25 * time.Millisecond,
		Poll:    2 * time.Millisecond,
		Log:     io.Discard,
	})
	defer wd.Close()
	// A fast peer's EOS frame can land before this coordinator enters the
	// barrier; the arrival must be buffered, not lost.
	wd.Arrive(0, 1)
	wd.StepBegin(0, 0)
	wd.Arrive(0, 0)
	time.Sleep(80 * time.Millisecond)
	if warns := wd.Warnings(); len(warns) != 0 {
		t.Fatalf("buffered arrival was lost: %+v", warns)
	}
	wd.StepEnd(0)
}

func TestWatchdogNilSafe(t *testing.T) {
	var wd *Watchdog
	wd.StepBegin(0, 0)
	wd.Arrive(0, 0)
	wd.StepEnd(0)
	wd.Close()
	if wd.Warnings() != nil {
		t.Fatal("nil watchdog returned warnings")
	}
	wd.CollectObs(func(Sample) { t.Fatal("nil watchdog emitted a sample") })
}

func TestWatchdogThresholdTracksTrailingMedian(t *testing.T) {
	log := &syncBuffer{}
	wd := NewWatchdog(WatchdogConfig{
		Parties: 2,
		Factor:  4,
		MinWait: 40 * time.Millisecond,
		Poll:    2 * time.Millisecond,
		Log:     log,
	})
	defer wd.Close()
	// Train the window with ~20ms steps (under MinWait, so training itself
	// cannot fire): threshold becomes ~4x20ms = 80ms, so a 50ms wait — over
	// MinWait but under 4x the trailing median — must NOT fire.
	for step := 0; step < 5; step++ {
		wd.StepBegin(0, step)
		wd.Arrive(step, 0)
		time.Sleep(20 * time.Millisecond)
		wd.Arrive(step, 1)
		wd.StepEnd(step)
	}
	wd.StepBegin(0, 5)
	wd.Arrive(5, 0)
	time.Sleep(50 * time.Millisecond)
	if warns := wd.Warnings(); len(warns) != 0 {
		t.Fatalf("fired below 4x trailing median: %+v", warns)
	}
	wd.Arrive(5, 1)
	wd.StepEnd(5)
}
