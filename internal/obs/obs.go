// Package obs is the observability layer of the TI-BSP stack: a
// low-overhead hierarchical tracer (run → timestep → superstep →
// (partition, subgraph) spans), metric exporters (Prometheus text format,
// JSON snapshots, Chrome trace_event JSON), an optional HTTP debug
// endpoint, and straggler/skew analysis over the recorded superstep
// schedule.
//
// The design constraint is the one Kairos-style instrumentation papers
// insist on: measuring the hot path must not distort it. The Tracer stores
// spans in preallocated rings written with a single atomic increment plus a
// struct store — no locks, no allocation, no formatting — and every
// recording site is gated on an atomic enabled flag so a disabled tracer
// costs one predicted branch. All rendering (JSON, Prometheus text, skew
// aggregation) happens at export time, off the measured path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"tsgraph/internal/metrics"
)

// Sample is one exported metric observation. Kind follows the Prometheus
// exposition format ("counter", "gauge", or "histogram").
type Sample struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// Family, when set, is the metric family the sample belongs to and the
	// name the HELP/TYPE headers are written under. Histogram series use it:
	// the _bucket/_sum/_count samples all carry Family "foo" while Name is
	// "foo_bucket" etc., which is what the exposition format requires.
	Family string `json:"family,omitempty"`
}

// familyName returns the name HELP/TYPE headers group under.
func (s Sample) familyName() string {
	if s.Family != "" {
		return s.Family
	}
	return s.Name
}

// EmitHistogram renders one histogram family as exposition-format samples:
// cumulative _bucket series (le-labeled, ending in +Inf), then _sum and
// _count. buckets[i] is the cumulative count at bound les[i] (seconds);
// the +Inf bucket is count. Labels are attached to every series.
func EmitHistogram(emit func(Sample), family, help string, labels []Label, les []float64, buckets []uint64, sumSeconds float64, count uint64) {
	for i, le := range les {
		bl := make([]Label, 0, len(labels)+1)
		bl = append(bl, labels...)
		bl = append(bl, Label{Key: "le", Value: formatValue(le)})
		emit(Sample{Family: family, Name: family + "_bucket", Help: help, Kind: "histogram",
			Labels: bl, Value: float64(buckets[i])})
	}
	infl := make([]Label, 0, len(labels)+1)
	infl = append(infl, labels...)
	infl = append(infl, Label{Key: "le", Value: "+Inf"})
	emit(Sample{Family: family, Name: family + "_bucket", Help: help, Kind: "histogram",
		Labels: infl, Value: float64(count)})
	emit(Sample{Family: family, Name: family + "_sum", Help: help, Kind: "histogram",
		Labels: labels, Value: sumSeconds})
	emit(Sample{Family: family, Name: family + "_count", Help: help, Kind: "histogram",
		Labels: labels, Value: float64(count)})
}

// Label is one metric label pair.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Collector is implemented by subsystems that export metrics through a
// Registry (e.g. cluster.Node's per-peer wire counters).
type Collector interface {
	// CollectObs emits the subsystem's current samples.
	CollectObs(emit func(Sample))
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(emit func(Sample))

// CollectObs implements Collector.
func (f CollectorFunc) CollectObs(emit func(Sample)) { f(emit) }

// Registry aggregates every observable source of a process — the tracer,
// the current run's metrics recorder, and any registered collectors — and
// renders them in Prometheus text format or as a JSON snapshot. All methods
// are safe for concurrent use and nil-safe on the receiver, so call sites
// never need an "is observability on" guard.
type Registry struct {
	mu         sync.Mutex
	tracer     *Tracer
	rec        *metrics.Recorder
	collectors []Collector
	shardFn    func() TraceShard
}

// NewRegistry creates a registry over an optional tracer.
func NewRegistry(t *Tracer) *Registry { return &Registry{tracer: t} }

// Tracer returns the registry's tracer (nil when tracing is off).
func (g *Registry) Tracer() *Tracer {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tracer
}

// ObserveRecorder points the registry at a run's metrics recorder; scrapes
// reflect the most recently observed recorder. Nil-safe.
func (g *Registry) ObserveRecorder(rec *metrics.Recorder) {
	if g == nil || rec == nil {
		return
	}
	g.mu.Lock()
	g.rec = rec
	g.mu.Unlock()
}

// Register adds a collector (e.g. a cluster node's wire metrics). Nil-safe.
func (g *Registry) Register(c Collector) {
	if g == nil || c == nil {
		return
	}
	g.mu.Lock()
	g.collectors = append(g.collectors, c)
	g.mu.Unlock()
}

// SetShardSource installs the provider behind the /debug/trace.shard pull
// endpoint: a distributed process points it at its cluster node so a remote
// merger can fetch the rank's trace shard (spans + clock offset) over HTTP
// instead of the cluster wire. Nil-safe.
func (g *Registry) SetShardSource(fn func() TraceShard) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.shardFn = fn
	g.mu.Unlock()
}

// Shard returns the registry's trace shard: the installed shard source's,
// else the bare tracer's (rank 0, zero offset). Nil-safe.
func (g *Registry) Shard() TraceShard {
	if g == nil {
		return TraceShard{}
	}
	g.mu.Lock()
	fn, tracer := g.shardFn, g.tracer
	g.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return tracer.Shard(0, 0)
}

// Samples gathers the current samples from every source.
func (g *Registry) Samples() []Sample {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	rec, tracer := g.rec, g.tracer
	collectors := append([]Collector(nil), g.collectors...)
	g.mu.Unlock()

	var out []Sample
	emit := func(s Sample) { out = append(out, s) }
	if rec != nil {
		recorderSamples(rec, emit)
	}
	if tracer != nil {
		tracer.CollectObs(emit)
	}
	for _, c := range collectors {
		c.CollectObs(emit)
	}
	return out
}

// recorderSamples converts a metrics.Recorder into exported samples: the
// run totals, the per-partition §IV-D time decomposition, message traffic,
// prefetch overlap, and every application counter.
func recorderSamples(rec *metrics.Recorder, emit func(Sample)) {
	emit(Sample{Name: "tsgraph_timesteps_total", Help: "Timesteps recorded by the current run.", Kind: "counter", Value: float64(rec.NumTimesteps())})
	emit(Sample{Name: "tsgraph_supersteps_total", Help: "BSP supersteps executed across all timesteps.", Kind: "counter", Value: float64(rec.TotalSupersteps())})
	emit(Sample{Name: "tsgraph_wall_seconds_total", Help: "Real wall time across all timesteps.", Kind: "counter", Value: rec.TotalWall().Seconds()})
	emit(Sample{Name: "tsgraph_sim_wall_seconds_total", Help: "Simulated cluster time across all timesteps.", Kind: "counter", Value: rec.TotalSimWall().Seconds()})
	emit(Sample{Name: "tsgraph_msgs_total", Help: "Messages sent across all partitions and timesteps.", Kind: "counter", Value: float64(rec.TotalMessages())})
	emit(Sample{Name: "tsgraph_msgs_dropped_total", Help: "Messages to unknown destinations discarded by the engine.", Kind: "counter", Value: float64(rec.TotalMsgsDropped())})
	emit(Sample{Name: "tsgraph_load_seconds_total", Help: "Time blocked materializing instances (GoFS loads).", Kind: "counter", Value: sumDurations(rec.LoadSeries())})
	emit(Sample{Name: "tsgraph_load_overlap_seconds_total", Help: "Instance decode time hidden behind compute by prefetching.", Kind: "counter", Value: rec.TotalLoadOverlap().Seconds()})
	emit(Sample{Name: "tsgraph_prefetched_timesteps_total", Help: "Timesteps whose instance was served by the prefetch pipeline.", Kind: "counter", Value: float64(rec.PrefetchedTimesteps())})
	emit(Sample{Name: "tsgraph_compute_skew_ratio", Help: "Max/median per-partition total compute time (1.0 = perfectly balanced).", Kind: "gauge", Value: rec.ComputeSkew()})

	for _, u := range rec.Utilizations() {
		part := fmt.Sprintf("%d", u.Partition)
		labels := []Label{{Key: "partition", Value: part}}
		emit(Sample{Name: "tsgraph_compute_seconds_total", Help: "Per-partition time inside user Compute calls.", Kind: "counter", Labels: labels, Value: u.Compute.Seconds()})
		emit(Sample{Name: "tsgraph_flush_seconds_total", Help: "Per-partition overhead routing messages after compute.", Kind: "counter", Labels: labels, Value: u.Flush.Seconds()})
		emit(Sample{Name: "tsgraph_barrier_seconds_total", Help: "Per-partition superstep barrier wait (sync overhead).", Kind: "counter", Labels: labels, Value: u.Barrier.Seconds()})
	}
	sent, recv := rec.PartMessages()
	for p := range sent {
		labels := []Label{{Key: "partition", Value: fmt.Sprintf("%d", p)}}
		emit(Sample{Name: "tsgraph_msgs_sent_total", Help: "Messages sent per partition.", Kind: "counter", Labels: labels, Value: float64(sent[p])})
		emit(Sample{Name: "tsgraph_msgs_recv_total", Help: "Messages received per partition.", Kind: "counter", Labels: labels, Value: float64(recv[p])})
	}
	for _, name := range rec.CounterNames() {
		emit(Sample{
			Name: "tsgraph_app_counter_total", Help: "Application-defined per-run counters.",
			Kind:   "counter",
			Labels: []Label{{Key: "counter", Value: name}},
			Value:  float64(rec.CounterTotal(name)),
		})
	}
}

func sumDurations(ds []time.Duration) float64 {
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total.Seconds()
}

// WritePrometheus renders the current samples in the Prometheus text
// exposition format (one HELP/TYPE header per family, families sorted).
// Samples sharing a Family (histogram _bucket/_sum/_count series) are
// grouped under one header in emission order.
func (g *Registry) WritePrometheus(w io.Writer) error {
	samples := g.Samples()
	byName := map[string][]Sample{}
	var names []string
	for _, s := range samples {
		key := s.familyName()
		if _, seen := byName[key]; !seen {
			names = append(names, key)
		}
		byName[key] = append(byName[key], s)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if group[0].Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(group[0].Help)); err != nil {
				return err
			}
		}
		kind := group[0].Kind
		if kind == "" {
			kind = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		for _, s := range group {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, formatLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLabels renders {k="v",...} with exposition-format escaping, or ""
// for unlabeled samples.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the exposition format (backslash and
// newline only; quotes are legal in help text).
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders the current samples as a JSON snapshot.
func (g *Registry) WriteJSON(w io.Writer) error {
	samples := g.Samples()
	if samples == nil {
		samples = []Sample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Samples []Sample `json:"samples"`
	}{samples})
}
