package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/metrics"
)

// sampleRecorder builds a recorder with one populated timestep so every
// exported family has a value.
func sampleRecorder() *metrics.Recorder {
	rec := metrics.NewRecorder(2)
	tr := rec.BeginTimestep(0)
	tr.Supersteps = 4
	tr.Wall = 20 * time.Millisecond
	tr.SimWall = 10 * time.Millisecond
	tr.Load = 3 * time.Millisecond
	tr.LoadOverlapped = 2 * time.Millisecond
	tr.Prefetched = true
	tr.MsgsDropped = 1
	tr.Parts[0].Compute = 6 * time.Millisecond
	tr.Parts[0].MsgsSent = 10
	tr.Parts[1].Compute = 2 * time.Millisecond
	tr.Parts[1].Barrier = 4 * time.Millisecond
	tr.Parts[1].MsgsRecv = 10
	tr.Parts[1].Counters = map[string]int64{"finalized": 7}
	return rec
}

func TestNilRegistryIsSafe(t *testing.T) {
	var g *Registry
	if g.Samples() != nil || g.Tracer() != nil {
		t.Fatal("nil registry returned data")
	}
	g.ObserveRecorder(metrics.NewRecorder(1))
	g.Register(CollectorFunc(func(emit func(Sample)) {}))
}

func TestRegistrySamplesAndPrometheus(t *testing.T) {
	tracer := NewTracer(0)
	tracer.Enable()
	tracer.RecordSpan(SpanCompute, 0, 0, 0, 0, tracer.Epoch(), time.Millisecond)

	g := NewRegistry(tracer)
	g.ObserveRecorder(sampleRecorder())
	g.Register(CollectorFunc(func(emit func(Sample)) {
		emit(Sample{
			Name: "tsgraph_wire_bytes_sent_total", Help: "test collector", Kind: "counter",
			Labels: []Label{{Key: "peer", Value: `a"b\c`}},
			Value:  123,
		})
	}))

	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP tsgraph_supersteps_total",
		"# TYPE tsgraph_supersteps_total counter",
		"tsgraph_supersteps_total 4",
		"tsgraph_msgs_dropped_total 1",
		"tsgraph_load_overlap_seconds_total 0.002",
		"tsgraph_prefetched_timesteps_total 1",
		"# TYPE tsgraph_compute_skew_ratio gauge",
		`tsgraph_compute_seconds_total{partition="0"} 0.006`,
		`tsgraph_msgs_sent_total{partition="0"} 10`,
		`tsgraph_msgs_recv_total{partition="1"} 10`,
		`tsgraph_app_counter_total{counter="finalized"} 7`,
		"tsgraph_trace_spans_total 1",
		"tsgraph_trace_enabled 1",
		`tsgraph_wire_bytes_sent_total{peer="a\"b\\c"} 123`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Families must be emitted as contiguous sorted blocks with exactly one
	// TYPE header each.
	if strings.Count(out, "# TYPE tsgraph_compute_seconds_total") != 1 {
		t.Fatal("family header repeated")
	}
	var prevFamily string
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		family := strings.Fields(line)[2]
		if prevFamily != "" && family < prevFamily {
			t.Fatalf("families not sorted: %s after %s", family, prevFamily)
		}
		prevFamily = family
	}

	buf.Reset()
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snapshot struct {
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &snapshot); err != nil {
		t.Fatalf("JSON snapshot invalid: %v", err)
	}
	if len(snapshot.Samples) == 0 {
		t.Fatal("JSON snapshot empty")
	}
}

func TestObserveRecorderFollowsLatest(t *testing.T) {
	g := NewRegistry(nil)
	g.ObserveRecorder(sampleRecorder())
	second := metrics.NewRecorder(1)
	second.BeginTimestep(0).Supersteps = 99
	g.ObserveRecorder(second)
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tsgraph_supersteps_total 99") {
		t.Fatalf("scrape does not reflect the latest recorder:\n%s", buf.String())
	}
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	tracer := NewTracer(0)
	tracer.Enable()
	tracer.RecordStepStat(0, 0, 0, time.Millisecond, 0, time.Millisecond)
	g := NewRegistry(tracer)
	g.ObserveRecorder(sampleRecorder())
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "tsgraph_supersteps_total") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body := get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("/metrics.json not valid JSON: %s", body)
	}
	code, body = get("/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d", code)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("/debug/trace not valid JSON: %s", body)
	}
	if code, body := get("/debug/skew"); code != http.StatusOK || !strings.Contains(body, "supersteps") {
		t.Fatalf("/debug/skew = %d:\n%s", code, body)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/no-such-page"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}
