package obs

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/metrics"
)

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestPrometheusExpositionCompliance scrapes a registry populated by every
// collector in the tree and checks the exposition-format rules a real
// Prometheus server enforces: each family has HELP and TYPE headers before
// its samples, counters end in _total, duration metrics use _seconds (no
// raw nanosecond exports), names and label syntax are legal, and values
// parse (including NaN/Inf spellings).
func TestPrometheusExpositionCompliance(t *testing.T) {
	tracer := NewTracer(0)
	tracer.Enable()
	tracer.RecordStepStat(0, 0, 0, time.Millisecond, time.Microsecond, time.Millisecond)
	reg := NewRegistry(tracer)

	rec := metrics.NewRecorder(2)
	reg.ObserveRecorder(rec)

	wd := NewWatchdog(WatchdogConfig{Parties: 2, MinWait: time.Hour})
	defer wd.Close()
	reg.Register(wd)
	reg.Register(ShardCollector{Shards: []TraceShard{{Rank: 0, Spans: make([]Span, 1)}}})
	// A pathological collector: escaping-hostile help/labels and non-finite
	// values must still render legally.
	reg.Register(CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "tsgraph_test_gauge", Help: "line1\nline2 with \\ backslash", Kind: "gauge",
			Labels: []Label{{Key: "path", Value: "a\"b\\c\nd"}}, Value: math.NaN()})
		emit(Sample{Name: "tsgraph_test_inf_gauge", Help: "inf", Kind: "gauge", Value: math.Inf(1)})
	}))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	help := map[string]bool{}
	typ := map[string]string{}
	sampleLineRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]Inf|-?[0-9.eE+-]+)$`)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if strings.ContainsAny(parts[1], "\n") {
				t.Fatalf("unescaped newline in HELP: %q", line)
			}
			help[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram" && parts[1] != "untyped" {
				t.Fatalf("illegal TYPE %q", line)
			}
			typ[parts[0]] = parts[1]
			continue
		}
		m := sampleLineRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("sample line does not match the exposition grammar: %q", line)
		}
		name := m[1]
		if !metricNameRE.MatchString(name) {
			t.Fatalf("illegal metric name %q", name)
		}
		// Histogram families declare HELP/TYPE under the base name; their
		// sample lines carry the _bucket/_sum/_count suffixes.
		headerName := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typ[base] == "histogram" {
				headerName = base
				break
			}
		}
		if !help[headerName] {
			t.Fatalf("sample %q has no preceding HELP header", name)
		}
		kind, ok := typ[headerName]
		if !ok {
			t.Fatalf("sample %q has no preceding TYPE header", name)
		}
		if kind == "histogram" && headerName == name {
			t.Fatalf("histogram family %q exported a raw sample without a _bucket/_sum/_count suffix", name)
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("counter %q does not end in _total", name)
		}
		if strings.Contains(name, "_nanos") || strings.Contains(name, "_ns_") ||
			strings.HasSuffix(name, "_ns") || strings.Contains(name, "_millis") {
			t.Fatalf("metric %q uses a non-base unit; durations must be _seconds", name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// The families this PR's collectors contribute must be present.
	for _, want := range []string{
		"tsgraph_stall_warnings_total",
		"tsgraph_cluster_spans_total",
		"tsgraph_cluster_clock_offset_seconds",
		"tsgraph_trace_spans_total",
	} {
		if !help[want] {
			t.Fatalf("scrape missing family %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "NaN") || !strings.Contains(out, "+Inf") {
		t.Fatalf("non-finite values not rendered: %s", out)
	}
}
