package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/obs"
)

// testClock is a manually-advanced clock so retention and burn-rate
// decisions are deterministic.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// finishAfter runs one query to completion with the given simulated latency.
func finishAfter(r *Recorder, clk *testClock, class int, lat time.Duration, status Status, err error) *Query {
	q := r.Begin()
	q.SetClass(class)
	q.Stage(StageQueue, clk.now(), lat/4)
	q.Stage(StageSweep, clk.now().Add(lat/4), lat/2)
	clk.advance(lat)
	q.Finish(status, err)
	return q
}

func testRecorder(clk *testClock, cfg Config) *Recorder {
	cfg.Classes = []string{"tdsp", "topn"}
	cfg.Now = clk.now
	return NewRecorder(cfg)
}

// TestTailSamplingDeterministic: under a seeded clock and sampler, exactly
// the slow, errored, rejected, and head-sampled queries are retained, and
// the drop counter accounts for every discarded trace.
func TestTailSamplingDeterministic(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{SlowThreshold: 100 * time.Millisecond, Seed: 7})

	fast := finishAfter(r, clk, 0, 5*time.Millisecond, StatusOK, nil)                   // dropped
	slow := finishAfter(r, clk, 0, 250*time.Millisecond, StatusOK, nil)                 // retained: slow
	errd := finishAfter(r, clk, 1, 5*time.Millisecond, StatusError, fmt.Errorf("boom")) // retained: error
	shed := finishAfter(r, clk, 1, time.Millisecond, StatusRejected, nil)               // retained: 429
	drain := finishAfter(r, clk, 0, time.Millisecond, StatusDraining, nil)              // retained: 503
	bad := finishAfter(r, clk, 0, time.Millisecond, StatusBadQuery, nil)                // dropped

	for _, c := range []struct {
		q    *Query
		want bool
	}{{fast, false}, {slow, true}, {errd, true}, {shed, true}, {drain, true}, {bad, false}} {
		_, ok := r.Trace(c.q.IDString())
		if ok != c.want {
			t.Errorf("query %s retained=%v, want %v", c.q.IDString(), ok, c.want)
		}
	}
	total, dropped, evicted, retained := r.Counters()
	if total != 6 || dropped != 2 || evicted != 0 || retained != 4 {
		t.Fatalf("counters = (%d,%d,%d,%d), want (6,2,0,4)", total, dropped, evicted, retained)
	}

	// Rerunning the same sequence against the same seed retains the same
	// set — the sampler is deterministic.
	for run := 0; run < 2; run++ {
		clk2 := newTestClock()
		r2 := testRecorder(clk2, Config{SlowThreshold: 100 * time.Millisecond, HeadSampleRate: 0.3, Seed: 42})
		var got []string
		for i := 0; i < 50; i++ {
			q := finishAfter(r2, clk2, 0, time.Millisecond, StatusOK, nil)
			if _, ok := r2.Trace(q.IDString()); ok {
				got = append(got, q.IDString())
			}
		}
		if len(got) == 0 || len(got) == 50 {
			t.Fatalf("head sampling at 0.3 retained %d/50", len(got))
		}
		if run == 0 {
			t.Logf("head-sampled set: %v", got)
		}
		// Determinism across runs: stash then compare.
		if run == 1 {
			clk3 := newTestClock()
			r3 := testRecorder(clk3, Config{SlowThreshold: 100 * time.Millisecond, HeadSampleRate: 0.3, Seed: 42})
			var again []string
			for i := 0; i < 50; i++ {
				q := finishAfter(r3, clk3, 0, time.Millisecond, StatusOK, nil)
				if _, ok := r3.Trace(q.IDString()); ok {
					again = append(again, q.IDString())
				}
			}
			if strings.Join(got, ",") != strings.Join(again, ",") {
				t.Fatalf("seeded head sampling not deterministic:\n%v\n%v", got, again)
			}
		}
	}
}

// TestFlightEvictionOrder: the retained store is FIFO — when the cap is
// exceeded the oldest trace goes first, and the eviction counter tracks it.
func TestFlightEvictionOrder(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{SlowThreshold: time.Millisecond, RetainCap: 3})

	var ids []string
	for i := 0; i < 5; i++ { // all slow → all retained → 2 evictions
		q := finishAfter(r, clk, 0, 10*time.Millisecond, StatusOK, nil)
		ids = append(ids, q.IDString())
	}
	retained := r.Retained()
	if len(retained) != 3 {
		t.Fatalf("retained %d traces, want 3", len(retained))
	}
	for i, tr := range retained {
		if tr.ID != ids[i+2] {
			t.Errorf("retained[%d] = %s, want %s (oldest-first FIFO)", i, tr.ID, ids[i+2])
		}
	}
	for _, id := range ids[:2] {
		if _, ok := r.Trace(id); ok {
			t.Errorf("evicted trace %s still resolvable", id)
		}
	}
	if _, _, evicted, _ := r.Counters(); evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
}

// TestSummaryRing: the always-on ring keeps the last SummaryCap queries,
// oldest first, regardless of retention.
func TestSummaryRing(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{SlowThreshold: time.Hour, SummaryCap: 4})
	var ids []string
	for i := 0; i < 6; i++ {
		q := finishAfter(r, clk, i%2, time.Millisecond, StatusOK, nil)
		ids = append(ids, q.IDString())
	}
	sums := r.Summaries()
	if len(sums) != 4 {
		t.Fatalf("got %d summaries, want 4", len(sums))
	}
	for i, s := range sums {
		if s.ID != ids[i+2] {
			t.Errorf("summaries[%d] = %s, want %s", i, s.ID, ids[i+2])
		}
		if s.Retained {
			t.Errorf("summary %s marked retained with an unreachable threshold", s.ID)
		}
	}
}

// TestFinishIdempotent: double Finish counts once; nil queries are no-ops.
func TestFinishIdempotent(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{})
	q := r.Begin()
	q.SetClass(0)
	q.Finish(StatusOK, nil)
	q.Finish(StatusError, fmt.Errorf("late"))
	if total, _, _, _ := r.Counters(); total != 1 {
		t.Fatalf("double Finish counted twice")
	}

	var nilQ *Query
	nilQ.SetClass(1)
	nilQ.Stage(StageSweep, time.Now(), time.Second)
	nilQ.SetBatch(1, 2)
	nilQ.SetCacheHit()
	nilQ.Finish(StatusOK, nil)
	if nilQ.ID() != 0 || nilQ.IDString() != "" {
		t.Fatal("nil query not inert")
	}
	var nilR *Recorder
	if nilR.Begin() != nil {
		t.Fatal("nil recorder returned a live query")
	}
	nilR.CollectObs(func(obs.Sample) { t.Fatal("nil recorder emitted") })
}

// TestHistogramQuantile: observations land in the right buckets and the
// interpolated quantiles are monotone and within bucket bounds.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	for i := 0; i < 900; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if p50 < 64*time.Microsecond || p50 > 256*time.Microsecond {
		t.Errorf("p50 = %v, want ~100µs bucket", p50)
	}
	if p99 < 16*time.Millisecond || p99 > 128*time.Millisecond {
		t.Errorf("p99 = %v, want ~50ms bucket", p99)
	}
	// Overflow beyond the last finite bound still counts and clamps.
	h.Observe(10 * time.Minute)
	s = h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("overflow observation lost: count=%d", s.Count)
	}
}

// TestSLOBurnRate: burn rate reflects the windowed bad ratio over the
// budget, and old slots age out under the injected clock.
func TestSLOBurnRate(t *testing.T) {
	clk := newTestClock()
	s := NewSLO(100*time.Millisecond, 0.1, clk.now)
	for i := 0; i < 90; i++ {
		s.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		s.Observe(time.Second, false) // over target → bad
	}
	if br := s.BurnRate(); br < 0.99 || br > 1.01 {
		t.Fatalf("burn rate = %v, want 1.0 (10%% bad over 10%% budget)", br)
	}
	total, bad := s.Totals()
	if total != 100 || bad != 10 {
		t.Fatalf("totals = (%d,%d)", total, bad)
	}
	// Jump past the window: the bad slots age out.
	clk.advance(2 * sloSlots * sloSlotWidth)
	s.Observe(time.Millisecond, false)
	if br := s.BurnRate(); br != 0 {
		t.Fatalf("burn rate after window aged out = %v, want 0", br)
	}
}

// TestPrometheusHistogramExposition is the golden-format check: the
// recorder's scrape must contain a well-formed histogram family — buckets
// cumulative and monotone, +Inf bucket equal to _count, _sum consistent
// with the observations, one series per class/stage label set — plus the
// flight and SLO families.
func TestPrometheusHistogramExposition(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{SlowThreshold: 50 * time.Millisecond})
	finishAfter(r, clk, 0, 10*time.Millisecond, StatusOK, nil)
	finishAfter(r, clk, 0, 100*time.Millisecond, StatusOK, nil)
	finishAfter(r, clk, 1, time.Millisecond, StatusError, fmt.Errorf("x"))

	reg := obs.NewRegistry(nil)
	reg.Register(r)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.Contains(out, "# TYPE tsserve_latency_seconds histogram") {
		t.Fatalf("missing histogram TYPE header:\n%s", out)
	}
	for _, want := range []string{
		"tsserve_flight_dropped_traces_total",
		"tsserve_flight_queries_total 3",
		"tsserve_slo_burn_rate",
		"tsserve_slo_target_latency_seconds 0.05",
		`tsserve_latency_seconds_bucket{class="tdsp",stage="total",le="+Inf"} 2`,
		`tsserve_latency_seconds_count{class="tdsp",stage="total"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Per-series bucket monotonicity and _sum/_count consistency.
	type series struct {
		buckets []float64 // in le order as emitted
		lastLe  float64
		infSeen bool
		inf     float64
		sum     float64
		sumSeen bool
		count   float64
		cntSeen bool
	}
	bySeries := map[string]*series{}
	get := func(lbl string) *series {
		s, ok := bySeries[lbl]
		if !ok {
			s = &series{lastLe: -1}
			bySeries[lbl] = s
		}
		return s
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "tsserve_latency_seconds") || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, "{")
		lblEnd := strings.Index(rest, "}")
		labels, valStr := rest[:lblEnd], strings.TrimSpace(rest[lblEnd+1:])
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch name {
		case "tsserve_latency_seconds_bucket":
			le := labels[strings.Index(labels, `le="`)+4:]
			le = le[:strings.Index(le, `"`)]
			key := strings.Replace(labels, `,le="`+le+`"`, "", 1)
			s := get(key)
			if le == "+Inf" {
				s.infSeen, s.inf = true, val
				break
			}
			leV, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("unparseable le %q", le)
			}
			if leV <= s.lastLe {
				t.Fatalf("le bounds not increasing in series %s: %v after %v", key, leV, s.lastLe)
			}
			if n := len(s.buckets); n > 0 && val < s.buckets[n-1] {
				t.Fatalf("bucket counts not cumulative in series %s: %v after %v", key, val, s.buckets[n-1])
			}
			s.lastLe = leV
			s.buckets = append(s.buckets, val)
		case "tsserve_latency_seconds_sum":
			s := get(labels)
			s.sum, s.sumSeen = val, true
		case "tsserve_latency_seconds_count":
			s := get(labels)
			s.count, s.cntSeen = val, true
		default:
			t.Fatalf("unexpected histogram sample name %q", name)
		}
	}
	if len(bySeries) != 6 { // 2 classes × 3 stages
		t.Fatalf("got %d series, want 6: %v", len(bySeries), bySeries)
	}
	for key, s := range bySeries {
		if !s.infSeen || !s.sumSeen || !s.cntSeen {
			t.Fatalf("series %s missing +Inf/_sum/_count", key)
		}
		if s.inf != s.count {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", key, s.inf, s.count)
		}
		if n := len(s.buckets); n > 0 && s.buckets[n-1] > s.inf {
			t.Fatalf("series %s: last finite bucket %v exceeds +Inf %v", key, s.buckets[n-1], s.inf)
		}
		if s.count > 0 && s.sum < 0 {
			t.Fatalf("series %s: negative _sum", key)
		}
	}
}

// TestFlightHandler: the snapshot lists summaries and retained ids; a
// retained id round-trips to parseable Chrome trace JSON containing the
// lifecycle stages and the query id; unknown ids 404.
func TestFlightHandler(t *testing.T) {
	clk := newTestClock()
	r := testRecorder(clk, Config{SlowThreshold: 50 * time.Millisecond})
	finishAfter(r, clk, 0, time.Millisecond, StatusOK, nil)
	slow := finishAfter(r, clk, 0, 200*time.Millisecond, StatusOK, nil)

	h := Handler(r, nil)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/flight", nil))
	if rw.Code != 200 {
		t.Fatalf("snapshot status %d", rw.Code)
	}
	var snap flightSnapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.QueriesTotal != 2 || len(snap.Summaries) != 2 || len(snap.Retained) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Retained[0].ID != slow.IDString() || !snap.Retained[0].Slow {
		t.Fatalf("retained entry = %+v, want slow query %s", snap.Retained[0], slow.IDString())
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/flight?id="+slow.IDString(), nil))
	if rw.Code != 200 {
		t.Fatalf("trace status %d: %s", rw.Code, rw.Body.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		QueryID string `json:"query_id"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, rw.Body.String())
	}
	if doc.QueryID != slow.IDString() {
		t.Fatalf("trace metadata query_id = %q", doc.QueryID)
	}
	stageSeen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			stageSeen[ev.Name] = true
			if got := ev.Args["query"]; got != slow.IDString() {
				t.Fatalf("stage event %s tagged %v, want %s", ev.Name, got, slow.IDString())
			}
		}
	}
	for _, want := range []string{"queue", "sweep"} {
		if !stageSeen[want] {
			t.Errorf("trace missing %s stage event; saw %v", want, stageSeen)
		}
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/flight?id=q12345678", nil))
	if rw.Code != 404 {
		t.Fatalf("unknown id status %d", rw.Code)
	}
}

// TestLogger: level filtering and both output formats.
func TestLogger(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("visible", "query", "q00000001")
	out := sb.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Fatalf("level filter broken: %q", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("json handler output not JSON: %v", err)
	}
	if rec["query"] != "q00000001" {
		t.Fatalf("structured field lost: %v", rec)
	}
	if _, err := NewLogger(&sb, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&sb, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

// BenchmarkQueryLifecycle measures the full per-query recorder cost —
// Begin, class, five stages, Finish on the dropped (common) path — against
// the nil-recorder no-op path. This is the absolute overhead the serving
// layer adds per request when live observability is on.
func BenchmarkQueryLifecycle(b *testing.B) {
	run := func(b *testing.B, r *Recorder) {
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := r.Begin()
			q.SetClass(0)
			q.Stage(StageAdmit, start, time.Microsecond)
			q.Stage(StageCache, start, time.Microsecond)
			q.Stage(StageQueue, start, time.Millisecond)
			q.Stage(StageSweep, start, time.Millisecond)
			q.Stage(StageEncode, start, time.Microsecond)
			q.SetBatch(1, 4)
			q.Finish(StatusOK, nil)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, NewRecorder(Config{Classes: []string{"tdsp"}}))
	})
}
