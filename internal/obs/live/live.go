// Package live is the continuous-observability layer for long-running
// daemons, complementing internal/obs (which is run-scoped: one bounded
// job, one ring, one export at exit). A serving process handles millions
// of queries and the interesting trace is the one slow or failed request —
// so live keeps a per-query lifecycle trace (admission → queue → coalesce →
// sweep → encode) for every in-flight request, then *tail-samples* at
// completion: traces of slow, errored, rejected, or randomly head-sampled
// queries are retained in a bounded store, boring ones are dropped with an
// explicit counter so loss is never silent. A flight recorder exposes the
// last N query summaries and any retained trace as Chrome trace_event JSON
// (see Handler), latencies feed log-bucketed Prometheus histograms per
// class and stage, and an SLO tracker turns them into a burn-rate gauge.
//
// The hot-path contract matches internal/obs: a nil *Recorder is valid and
// permanently disabled, every Query method is nil-safe, and the per-query
// cost when enabled is one small allocation at Begin plus scalar stores —
// no locks until Finish, which runs once per query off the sweep path.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// Stage indexes one segment of a query's lifecycle.
type Stage uint8

const (
	// StageAdmit is validation + normalization (request arrival to
	// admission decision).
	StageAdmit Stage = iota
	// StageCache is the result-cache + single-flight lookup.
	StageCache
	// StageQueue is the wait in the class queue (or on an identical
	// in-flight query) until a worker picks the request up.
	StageQueue
	// StageSweep is the TI-BSP micro-batch execution answering the query.
	StageSweep
	// StageEncode is response serialization and flush.
	StageEncode

	numStages
)

var stageNames = [numStages]string{"admit", "cache", "queue", "sweep", "encode"}

// String names the stage (also the Prometheus "stage" label value).
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return "unknown"
}

// Status classifies how a query ended; the tail sampler keys retention off
// it.
type Status uint8

const (
	// StatusOK answered successfully (HTTP 200).
	StatusOK Status = iota
	// StatusBadQuery failed validation (HTTP 400).
	StatusBadQuery
	// StatusRejected was shed by admission control (HTTP 429).
	StatusRejected
	// StatusDraining arrived during shutdown (HTTP 503).
	StatusDraining
	// StatusCanceled lost its client before completion.
	StatusCanceled
	// StatusError failed during execution (HTTP 500).
	StatusError

	numStatuses
)

var statusNames = [numStatuses]string{"ok", "bad_query", "rejected", "draining", "canceled", "error"}

// String names the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// Config parameterizes a Recorder.
type Config struct {
	// Classes names the query classes; stage/class histograms are
	// preallocated per entry and Query.SetClass indexes into it.
	Classes []string

	// SlowThreshold retains any query at least this slow (0 = 1s).
	SlowThreshold time.Duration
	// HeadSampleRate retains a random fraction of ordinary queries so the
	// store always holds a baseline of healthy traces to compare a slow one
	// against (0 = no head sampling).
	HeadSampleRate float64
	// Seed seeds the head sampler (deterministic retention for tests).
	Seed int64

	// RetainCap bounds the retained-trace store (0 = 64); the oldest
	// retained trace is evicted first. SummaryCap bounds the always-on
	// query summary ring (0 = 256).
	RetainCap  int
	SummaryCap int

	// SLOTarget and SLOErrorBudget configure the burn-rate gauge: target
	// latency (0 = SlowThreshold) and tolerated bad-request fraction
	// (0 = 0.01).
	SLOTarget      time.Duration
	SLOErrorBudget float64

	// MetricPrefix prefixes exported metric families (default "tsserve").
	MetricPrefix string

	// Now is the clock (nil = time.Now); injectable so retention and
	// burn-rate behavior are testable under a seeded clock.
	Now func() time.Time
}

// stageSpan is one recorded lifecycle segment, relative to the query start.
type stageSpan struct {
	startNS, durNS int64
	set            bool
}

// atomicStage is the in-flight form of a stageSpan. Queue and sweep stages
// are written by the worker that executed the query's batch, while Finish
// may run on the request goroutine after a context cancellation — with no
// happens-before edge between them in that path — so the fields are
// atomics rather than relying on the done-channel ordering of the normal
// path. set is stored last, so a reader seeing set also sees the times.
type atomicStage struct {
	startNS, durNS atomic.Int64
	set            atomic.Bool
}

func (a *atomicStage) snapshot() stageSpan {
	if !a.set.Load() {
		return stageSpan{}
	}
	return stageSpan{startNS: a.startNS.Load(), durNS: a.durNS.Load(), set: true}
}

// Query accumulates one request's lifecycle trace. Methods are nil-safe so
// instrumented code needs no "is live observability on" branches.
type Query struct {
	r     *Recorder
	id    uint64
	class atomic.Int32
	start time.Time

	stages    [numStages]atomicStage
	batchSeq  atomic.Int64
	batchSize atomic.Int32
	cacheHit  atomic.Bool

	headSampled bool
	finished    atomic.Bool
}

// Summary is one completed query's flight-recorder record.
type Summary struct {
	ID        string    `json:"id"`
	Class     string    `json:"class"`
	Status    string    `json:"status"`
	Start     time.Time `json:"start"`
	LatencyMS float64   `json:"latency_ms"`
	QueueMS   float64   `json:"queue_ms,omitempty"`
	SweepMS   float64   `json:"sweep_ms,omitempty"`
	BatchSeq  int64     `json:"batch_seq,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	CacheHit  bool      `json:"cache_hit,omitempty"`
	Retained  bool      `json:"retained"`
	Slow      bool      `json:"slow,omitempty"`
	Err       string    `json:"error,omitempty"`
}

// Trace is a retained query lifecycle: the summary plus the stage spans.
type Trace struct {
	Summary
	start  time.Time
	stages [numStages]stageSpan
}

// Recorder is the continuous observability sink of one daemon. A nil
// *Recorder is valid and disabled.
type Recorder struct {
	cfg     Config
	classes []string
	now     func() time.Time
	slo     *SLO

	nextID atomic.Uint64

	// hists[class][0..2] are the queue/sweep/total latency histograms.
	hists [][3]*Histogram

	total         atomic.Uint64 // queries finished
	dropped       atomic.Uint64 // traces not retained (tail-sampled away)
	evicted       atomic.Uint64 // retained traces pushed out by the cap
	retainedTotal atomic.Uint64

	mu        sync.Mutex
	rng       *rand.Rand
	summaries []Summary // ring
	sumNext   int
	sumCount  int
	retained  []*Trace // FIFO, oldest first
	byID      map[uint64]*Trace
}

// histStage maps a Stage to its histogram slot; -1 = not histogrammed.
func histStage(st Stage) int {
	switch st {
	case StageQueue:
		return 0
	case StageSweep:
		return 1
	}
	return -1
}

// histStageNames label the exported histogram's stage dimension.
var histStageNames = [3]string{"queue", "sweep", "total"}

// NewRecorder builds a recorder; see Config for defaults.
func NewRecorder(cfg Config) *Recorder {
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = time.Second
	}
	if cfg.RetainCap <= 0 {
		cfg.RetainCap = 64
	}
	if cfg.SummaryCap <= 0 {
		cfg.SummaryCap = 256
	}
	if cfg.SLOTarget <= 0 {
		cfg.SLOTarget = cfg.SlowThreshold
	}
	if cfg.SLOErrorBudget <= 0 {
		cfg.SLOErrorBudget = 0.01
	}
	if cfg.MetricPrefix == "" {
		cfg.MetricPrefix = "tsserve"
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	r := &Recorder{
		cfg:       cfg,
		classes:   append([]string(nil), cfg.Classes...),
		now:       now,
		slo:       NewSLO(cfg.SLOTarget, cfg.SLOErrorBudget, now),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		summaries: make([]Summary, cfg.SummaryCap),
		byID:      make(map[uint64]*Trace),
	}
	r.hists = make([][3]*Histogram, len(r.classes))
	for c := range r.hists {
		for i := range r.hists[c] {
			r.hists[c][i] = &Histogram{}
		}
	}
	return r
}

// Begin opens a lifecycle trace for one arriving request. Nil-safe: a nil
// recorder returns a nil Query whose methods are all no-ops.
func (r *Recorder) Begin() *Query {
	if r == nil {
		return nil
	}
	q := &Query{
		r:     r,
		id:    r.nextID.Add(1),
		start: r.now(),
	}
	q.class.Store(-1)
	if r.cfg.HeadSampleRate > 0 {
		r.mu.Lock()
		q.headSampled = r.rng.Float64() < r.cfg.HeadSampleRate
		r.mu.Unlock()
	}
	return q
}

// FormatID renders a query id the way headers, logs, and the flight
// recorder spell it.
func FormatID(id uint64) string { return fmt.Sprintf("q%08x", id) }

// ID returns the query's numeric id (0 for a nil query).
func (q *Query) ID() uint64 {
	if q == nil {
		return 0
	}
	return q.id
}

// IDString returns the query's formatted id ("" for a nil query).
func (q *Query) IDString() string {
	if q == nil {
		return ""
	}
	return FormatID(q.id)
}

// Start returns when the trace began.
func (q *Query) Start() time.Time {
	if q == nil {
		return time.Time{}
	}
	return q.start
}

// SetClass resolves the query's class once admission validated it.
func (q *Query) SetClass(class int) {
	if q == nil {
		return
	}
	q.class.Store(int32(class))
}

// ClassName returns the query's class label ("unknown" before SetClass,
// "" for a nil query).
func (q *Query) ClassName() string {
	if q == nil {
		return ""
	}
	if c := int(q.class.Load()); c >= 0 && c < len(q.r.classes) {
		return q.r.classes[c]
	}
	return "unknown"
}

// Stage records one lifecycle segment.
func (q *Query) Stage(st Stage, start time.Time, dur time.Duration) {
	if q == nil || st >= numStages {
		return
	}
	a := &q.stages[st]
	a.startNS.Store(start.Sub(q.start).Nanoseconds())
	a.durNS.Store(dur.Nanoseconds())
	a.set.Store(true)
}

// SetBatch records the coalescing decision: which micro-batch answered the
// query and how many co-riders shared the sweep.
func (q *Query) SetBatch(seq int64, size int) {
	if q == nil {
		return
	}
	q.batchSeq.Store(seq)
	q.batchSize.Store(int32(size))
}

// SetCacheHit marks the query as answered from the result cache.
func (q *Query) SetCacheHit() {
	if q == nil {
		return
	}
	q.cacheHit.Store(true)
}

// Finish completes the trace: observes histograms and the SLO, appends the
// summary to the flight-recorder ring, and makes the retention decision
// (keep slow / errored / rejected / head-sampled traces, drop the rest
// with accounting). Idempotent; only the first call wins.
func (q *Query) Finish(status Status, err error) {
	if q == nil || !q.finished.CompareAndSwap(false, true) {
		return
	}
	r := q.r
	end := r.now()
	total := end.Sub(q.start)

	var stages [numStages]stageSpan
	for i := range q.stages {
		stages[i] = q.stages[i].snapshot()
	}
	class := int(q.class.Load())

	className := "unknown"
	if class >= 0 && class < len(r.classes) {
		className = r.classes[class]
		h := &r.hists[class]
		h[2].Observe(total)
		if sp := stages[StageQueue]; sp.set {
			h[0].Observe(time.Duration(sp.durNS))
		}
		if sp := stages[StageSweep]; sp.set {
			h[1].Observe(time.Duration(sp.durNS))
		}
	}
	if status != StatusCanceled {
		r.slo.Observe(total, status != StatusOK && status != StatusBadQuery)
	}
	r.total.Add(1)

	slow := total >= r.cfg.SlowThreshold
	retain := slow || q.headSampled ||
		status == StatusError || status == StatusRejected || status == StatusDraining

	sum := Summary{
		ID:        FormatID(q.id),
		Class:     className,
		Status:    status.String(),
		Start:     q.start,
		LatencyMS: float64(total) / float64(time.Millisecond),
		BatchSeq:  q.batchSeq.Load(),
		BatchSize: int(q.batchSize.Load()),
		CacheHit:  q.cacheHit.Load(),
		Retained:  retain,
		Slow:      slow,
	}
	if err != nil {
		sum.Err = err.Error()
	}
	if sp := stages[StageQueue]; sp.set {
		sum.QueueMS = float64(sp.durNS) / float64(time.Millisecond)
	}
	if sp := stages[StageSweep]; sp.set {
		sum.SweepMS = float64(sp.durNS) / float64(time.Millisecond)
	}

	r.mu.Lock()
	r.summaries[r.sumNext] = sum
	r.sumNext = (r.sumNext + 1) % len(r.summaries)
	if r.sumCount < len(r.summaries) {
		r.sumCount++
	}
	if retain {
		tr := &Trace{Summary: sum, start: q.start, stages: stages}
		r.retained = append(r.retained, tr)
		r.byID[q.id] = tr
		r.retainedTotal.Add(1)
		if len(r.retained) > r.cfg.RetainCap {
			old := r.retained[0]
			// Shift rather than reslice so the backing array never pins
			// evicted traces.
			copy(r.retained, r.retained[1:])
			r.retained = r.retained[:len(r.retained)-1]
			delete(r.byID, parseID(old.ID))
			r.evicted.Add(1)
		}
	} else {
		r.dropped.Add(1)
	}
	r.mu.Unlock()
}

// parseID inverts FormatID.
func parseID(s string) uint64 {
	var id uint64
	fmt.Sscanf(s, "q%08x", &id)
	return id
}

// Summaries returns the flight-recorder ring, oldest first.
func (r *Recorder) Summaries() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, r.sumCount)
	start := r.sumNext - r.sumCount
	for i := 0; i < r.sumCount; i++ {
		out = append(out, r.summaries[(start+i+len(r.summaries))%len(r.summaries)])
	}
	return out
}

// Retained returns the retained traces, oldest first.
func (r *Recorder) Retained() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.retained...)
}

// Trace looks a retained trace up by formatted id (e.g. "q0000002a").
func (r *Recorder) Trace(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[parseID(id)]
	return t, ok
}

// Quantile estimates a latency quantile for one class and histogram stage
// (0 queue, 1 sweep, 2 total). Zero for unknown classes.
func (r *Recorder) Quantile(class, stage int, q float64) time.Duration {
	if r == nil || class < 0 || class >= len(r.hists) || stage < 0 || stage > 2 {
		return 0
	}
	return r.hists[class][stage].Snapshot().Quantile(q)
}

// SLO exposes the recorder's SLO tracker (nil when the recorder is nil).
func (r *Recorder) SLO() *SLO {
	if r == nil {
		return nil
	}
	return r.slo
}

// SlowThreshold returns the tail-sampling latency threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SlowThreshold
}

// Counters returns (finished, dropped, evicted, retainedTotal).
func (r *Recorder) Counters() (total, dropped, evicted, retained uint64) {
	if r == nil {
		return
	}
	return r.total.Load(), r.dropped.Load(), r.evicted.Load(), r.retainedTotal.Load()
}

// CollectObs implements obs.Collector: the per-class/per-stage latency
// histograms, the flight-recorder retention accounting, and the SLO
// family.
func (r *Recorder) CollectObs(emit func(obs.Sample)) {
	if r == nil {
		return
	}
	p := r.cfg.MetricPrefix
	for c, name := range r.classes {
		for st, stageName := range histStageNames {
			r.hists[c][st].emit(emit, p+"_latency_seconds",
				"Query latency by class and lifecycle stage (log-bucketed).",
				[]obs.Label{{Key: "class", Value: name}, {Key: "stage", Value: stageName}})
		}
	}
	total, dropped, evicted, retainedTotal := r.Counters()
	r.mu.Lock()
	resident := len(r.retained)
	r.mu.Unlock()
	emit(obs.Sample{Name: p + "_flight_queries_total", Help: "Queries whose lifecycle trace completed.",
		Kind: "counter", Value: float64(total)})
	emit(obs.Sample{Name: p + "_flight_dropped_traces_total", Help: "Completed traces the tail sampler discarded (boring: fast, successful, not head-sampled).",
		Kind: "counter", Value: float64(dropped)})
	emit(obs.Sample{Name: p + "_flight_evicted_traces_total", Help: "Retained traces evicted by the store's capacity bound.",
		Kind: "counter", Value: float64(evicted)})
	emit(obs.Sample{Name: p + "_flight_retained_traces_total", Help: "Traces the tail sampler retained (slow, errored, shed, or head-sampled).",
		Kind: "counter", Value: float64(retainedTotal)})
	emit(obs.Sample{Name: p + "_flight_resident_traces", Help: "Traces currently held in the flight recorder.",
		Kind: "gauge", Value: float64(resident)})

	sloTotal, sloBad := r.slo.Totals()
	emit(obs.Sample{Name: p + "_slo_target_latency_seconds", Help: "SLO latency target.",
		Kind: "gauge", Value: r.slo.Target().Seconds()})
	emit(obs.Sample{Name: p + "_slo_error_budget", Help: "Tolerated bad-request fraction.",
		Kind: "gauge", Value: r.slo.Budget()})
	emit(obs.Sample{Name: p + "_slo_requests_total", Help: "Requests counted toward the SLO.",
		Kind: "counter", Value: float64(sloTotal)})
	emit(obs.Sample{Name: p + "_slo_violations_total", Help: "Requests that failed or exceeded the SLO target latency.",
		Kind: "counter", Value: float64(sloBad)})
	emit(obs.Sample{Name: p + "_slo_burn_rate", Help: "Windowed bad-request ratio divided by the error budget (>1 = consuming future budget).",
		Kind: "gauge", Value: r.slo.BurnRate()})
}
