package live

import (
	"sync"
	"time"
)

// sloSlots × sloSlotWidth is the burn-rate window: violations are
// aggregated into rotating fixed-width slots so the rate reflects the last
// ~minute of traffic rather than the process lifetime.
const (
	sloSlots     = 6
	sloSlotWidth = 10 * time.Second
)

// SLO tracks a latency/availability service-level objective: a request is
// "good" when it succeeds within the target latency. The burn rate is the
// windowed bad-request ratio divided by the error budget — burn rate 1.0
// means the budget is being consumed exactly as provisioned, >1 means the
// service is eating future budget (the standard multiwindow-burn-rate
// alerting input).
type SLO struct {
	target time.Duration
	budget float64
	now    func() time.Time

	mu       sync.Mutex
	slots    [sloSlots]sloSlot
	cur      int
	total    uint64 // lifetime requests counted toward the SLO
	violated uint64 // lifetime bad requests
}

type sloSlot struct {
	start      time.Time
	total, bad uint64
}

// NewSLO creates a tracker for a target latency and an error budget (the
// tolerated bad-request fraction, e.g. 0.01 for 99% good). now is the
// clock, nil for time.Now.
func NewSLO(target time.Duration, budget float64, now func() time.Time) *SLO {
	if now == nil {
		now = time.Now
	}
	if budget <= 0 {
		budget = 0.01
	}
	s := &SLO{target: target, budget: budget, now: now}
	s.slots[0].start = now()
	return s
}

// Target returns the SLO latency target.
func (s *SLO) Target() time.Duration { return s.target }

// Budget returns the error budget fraction.
func (s *SLO) Budget() float64 { return s.budget }

// Observe counts one request: bad when it failed or exceeded the target.
func (s *SLO) Observe(lat time.Duration, failed bool) {
	bad := failed || (s.target > 0 && lat > s.target)
	s.mu.Lock()
	s.rotate(s.now())
	s.slots[s.cur].total++
	s.total++
	if bad {
		s.slots[s.cur].bad++
		s.violated++
	}
	s.mu.Unlock()
}

// rotate advances to a fresh slot when the current one's width elapsed,
// reclaiming slots that fell out of the window. Callers hold mu.
func (s *SLO) rotate(now time.Time) {
	for now.Sub(s.slots[s.cur].start) >= sloSlotWidth {
		next := (s.cur + 1) % sloSlots
		s.slots[next] = sloSlot{start: s.slots[s.cur].start.Add(sloSlotWidth)}
		s.cur = next
	}
}

// BurnRate returns the windowed bad-request ratio divided by the error
// budget. Zero traffic in the window burns nothing.
func (s *SLO) BurnRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.rotate(now)
	var total, bad uint64
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.total == 0 && sl.bad == 0 {
			continue
		}
		if now.Sub(sl.start) <= sloSlots*sloSlotWidth {
			total += sl.total
			bad += sl.bad
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / s.budget
}

// Totals returns the lifetime (requests, violations) counters.
func (s *SLO) Totals() (total, violated uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, s.violated
}
