package live

import (
	"sync/atomic"
	"time"

	"tsgraph/internal/obs"
)

// numLatencyBuckets log-spaced bounds cover the serving latency range: the
// first bound is baseLatencyBucket and each subsequent bound doubles, so
// 64µs·2^19 ≈ 33.6s is the last finite bound. Everything slower lands in
// +Inf. Log spacing keeps relative error constant across four decades,
// which is what tail-latency analysis needs (a fixed-width ring can't
// resolve both a 200µs cache hit and a 4s straggler sweep).
const (
	numLatencyBuckets = 20
	baseLatencyBucket = 64 * time.Microsecond
)

// latencyBounds returns the finite bucket bounds in nanoseconds.
func latencyBounds() [numLatencyBuckets]int64 {
	var b [numLatencyBuckets]int64
	bound := int64(baseLatencyBucket)
	for i := range b {
		b[i] = bound
		bound *= 2
	}
	return b
}

var bounds = latencyBounds()

// LatencyBucketBounds returns the finite histogram bounds in seconds, as
// exported in the Prometheus le labels.
func LatencyBucketBounds() []float64 {
	out := make([]float64, numLatencyBuckets)
	for i, b := range bounds {
		out[i] = time.Duration(b).Seconds()
	}
	return out
}

// Histogram is a fixed-bound, log-bucketed latency histogram. Observe is
// lock-free and allocation-free: one bounded scan over 20 int64 bounds,
// two atomic adds. The zero value is ready to use.
type Histogram struct {
	counts [numLatencyBuckets + 1]atomic.Uint64 // per-bucket (non-cumulative); last = overflow
	sumNS  atomic.Int64
	count  atomic.Uint64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < numLatencyBuckets && ns > bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

// Snapshot is a consistent-enough copy for export: per-bucket counts read
// with atomic loads (a concurrent Observe may straddle the copy; the skew
// is at most the in-flight observations, never a torn value).
type Snapshot struct {
	// Cumulative[i] is the count of observations ≤ bounds[i]; the +Inf
	// count equals Count.
	Cumulative [numLatencyBuckets]uint64
	SumNS      int64
	Count      uint64
}

// Snapshot captures the histogram's current state with cumulative buckets.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	var cum uint64
	for i := 0; i < numLatencyBuckets; i++ {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.SumNS = h.sumNS.Load()
	s.Count = cum + h.counts[numLatencyBuckets].Load()
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket the rank falls in. Observations beyond the last finite
// bound clamp to it. Returns 0 for an empty histogram.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	lower := int64(0)
	for i := 0; i < numLatencyBuckets; i++ {
		cum := s.Cumulative[i]
		if float64(cum) >= rank {
			inBucket := cum - prevCum
			if inBucket == 0 {
				return time.Duration(bounds[i])
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return time.Duration(lower + int64(frac*float64(bounds[i]-lower)))
		}
		prevCum = cum
		lower = bounds[i]
	}
	return time.Duration(bounds[numLatencyBuckets-1])
}

// emit renders the histogram as one Prometheus family member with labels.
func (h *Histogram) emit(emitFn func(obs.Sample), family, help string, labels []obs.Label) {
	s := h.Snapshot()
	cum := make([]uint64, numLatencyBuckets)
	copy(cum, s.Cumulative[:])
	obs.EmitHistogram(emitFn, family, help, labels, LatencyBucketBounds(), cum,
		time.Duration(s.SumNS).Seconds(), s.Count)
}
