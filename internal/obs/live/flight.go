package live

import (
	"encoding/json"
	"net/http"
	"time"

	"tsgraph/internal/obs"
)

// flightSnapshot is the /debug/flight JSON document.
type flightSnapshot struct {
	Now             time.Time `json:"now"`
	SlowThresholdMS float64   `json:"slow_threshold_ms"`
	QueriesTotal    uint64    `json:"queries_total"`
	DroppedTraces   uint64    `json:"dropped_traces"`
	EvictedTraces   uint64    `json:"evicted_traces"`
	RetainedTraces  uint64    `json:"retained_traces"`
	// Retained lists the traces currently in the store (oldest first); any
	// listed id can be fetched as a Chrome trace with ?id=.
	Retained []Summary `json:"retained"`
	// Summaries is the always-on last-N query ring, oldest first.
	Summaries []Summary `json:"summaries"`
}

// Handler serves the flight recorder.
//
//	GET /debug/flight           the snapshot: last-N query summaries plus
//	                            the retained-trace index, as JSON
//	GET /debug/flight?id=qXXXX  one retained query's lifecycle as Chrome
//	                            trace_event JSON (open in Perfetto or
//	                            chrome://tracing), with any tracer spans
//	                            from the query's time window interleaved
//	                            so the sweep that answered it is visible
//	                            next to its queue wait
//
// tracer may be nil; the per-query export then contains only the lifecycle
// stages.
func Handler(rec *Recorder, tracer *obs.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if rec == nil {
			http.Error(w, "live observability disabled", http.StatusNotFound)
			return
		}
		if id := req.URL.Query().Get("id"); id != "" {
			tr, ok := rec.Trace(id)
			if !ok {
				http.Error(w, "trace not retained (evicted, dropped, or never existed)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			writeQueryTrace(w, tr, tracer)
			return
		}
		total, dropped, evicted, retainedTotal := rec.Counters()
		snap := flightSnapshot{
			Now:             rec.now(),
			SlowThresholdMS: float64(rec.SlowThreshold()) / float64(time.Millisecond),
			QueriesTotal:    total,
			DroppedTraces:   dropped,
			EvictedTraces:   evicted,
			RetainedTraces:  retainedTotal,
			Summaries:       rec.Summaries(),
		}
		for _, tr := range rec.Retained() {
			snap.Retained = append(snap.Retained, tr.Summary)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// writeQueryTrace renders one retained trace as a Chrome trace document.
// Timestamps are microseconds since the tracer epoch (so lifecycle stages
// and tracer spans share one time base); without a tracer the query start
// is the origin.
func writeQueryTrace(w http.ResponseWriter, tr *Trace, tracer *obs.Tracer) {
	var originOffsetNS int64 // query start relative to the trace origin
	var spans []obs.Span
	if tracer != nil && tracer.Active() {
		originOffsetNS = tr.start.Sub(tracer.Epoch()).Nanoseconds()
		endNS := originOffsetNS + int64(tr.LatencyMS*1e6)
		for _, s := range tracer.Spans() {
			// Keep spans overlapping the query's lifetime window.
			if s.Start <= endNS && s.Start+s.Dur >= originOffsetNS {
				spans = append(spans, s)
			}
		}
	}

	cw := obs.NewChromeWriter(w)
	cw.ProcessMeta(spans)
	if len(spans) == 0 {
		// No tracer rows: still name the serving lane the stages render in.
		cw.Event(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"driver"}}`)
		cw.Event(`{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"serving"}}`)
	}
	for st := Stage(0); st < numStages; st++ {
		sp := tr.stages[st]
		if !sp.set {
			continue
		}
		cw.Event(`{"ph":"X","name":%q,"cat":"lifecycle","pid":0,"tid":2,"ts":%.3f,"dur":%.3f,"args":{"query":%q,"class":%q,"batch_seq":%d,"batch_size":%d}}`,
			st.String(), float64(originOffsetNS+sp.startNS)/1e3, float64(sp.durNS)/1e3,
			tr.ID, tr.Class, tr.BatchSeq, tr.BatchSize)
	}
	for _, s := range spans {
		cw.Span(s)
	}
	cw.SetMetadata("query_id", tr.ID)
	cw.SetMetadata("class", tr.Class)
	cw.SetMetadata("status", tr.Status)
	cw.SetMetadata("latency_ms", tr.LatencyMS)
	cw.SetMetadata("cache_hit", tr.CacheHit)
	if tr.Err != "" {
		cw.SetMetadata("error", tr.Err)
	}
	if tracer != nil {
		cw.SetMetadata("spans_recorded", tracer.SpansRecorded())
		cw.SetMetadata("spans_dropped", tracer.SpansDropped())
	}
	cw.Close()
}
