package live

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w.
//
//	level:  debug | info | warn | error (default info)
//	format: text | json                 (default text)
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}

// InitLogging installs a process-wide default logger. slog.SetDefault also
// rewires the stdlib log package, so existing log.Printf call sites emit
// through the structured handler at info level without per-site changes.
func InitLogging(w io.Writer, level, format string) (*slog.Logger, error) {
	l, err := NewLogger(w, level, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}
