package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// SpanKind classifies a trace span. Kinds are fixed so recording stores a
// byte instead of a string; names are resolved at export time.
type SpanKind uint8

const (
	// SpanTimestep covers one whole TI-BSP timestep (driver lane).
	SpanTimestep SpanKind = iota
	// SpanLoad is the blocked instance-load portion of a timestep.
	SpanLoad
	// SpanComputePhase is one partition worker's compute window of one
	// superstep (dispatch of all active subgraphs until the last returns).
	SpanComputePhase
	// SpanCompute is a single subgraph's Compute invocation.
	SpanCompute
	// SpanFlush is one worker's message-routing window after compute.
	SpanFlush
	// SpanBarrier is one worker's synchronization window: from its flush end
	// to its next compute dispatch (end barrier, coordinator routing,
	// snapshot) — the wall-clock "sync overhead" of a superstep.
	SpanBarrier
	// SpanExchange is a between-timesteps temporal/coordination exchange.
	SpanExchange
	// SpanWireSend is one cross-rank frame group leaving this rank: Part is
	// the destination rank and SID the packed (sender rank, send seq) wire
	// id (see PackWireID), so the matching SpanWireRecv on the destination
	// resolves back to it.
	SpanWireSend
	// SpanWireRecv is one cross-rank frame group arriving at this rank:
	// Part is the sender rank and SID the sender's packed wire id.
	SpanWireRecv
	// SpanStall is a watchdog warning: a superstep made no progress because
	// the rank/partition in Part never arrived at the barrier. Start is the
	// barrier-wait start and Dur the wait observed when the warning fired;
	// Chrome export renders it as an instant event.
	SpanStall
	// SpanQuery is one served query's residence in the serving layer
	// (internal/serve), admission to response. Part is -1 (driver lane), TS
	// the query class, and SID a serial query id.
	SpanQuery
	// SpanBatch is one micro-batch execution in the serving layer: a single
	// TI-BSP sweep answering SID coalesced queries of class TS. Part is -1.
	SpanBatch
	// SpanShard is one rank's share of a scatter/gathered sweep in the
	// sharded serving tier: Part is the executing rank, TS the query class,
	// SID the router's sweep serial. The router records these from the
	// ranks' self-reported sweep times so one flight-recorder trace shows
	// where a distributed query's wall time went.
	SpanShard

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"timestep", "load", "compute-phase", "compute", "flush", "barrier", "exchange",
	"wire-send", "wire-recv", "stall", "query", "batch", "shard",
}

// PackWireID packs a sender rank and its logical send sequence into the SID
// of a wire span. The pair uniquely names one frame group cluster-wide, so a
// receiver's SpanWireRecv carries the same packed id as the sender's
// SpanWireSend.
func PackWireID(rank int, seq int64) int64 {
	return int64(rank)<<48 | (seq & (1<<48 - 1))
}

// UnpackWireID splits a packed wire id into (sender rank, send seq).
func UnpackWireID(id int64) (rank int, seq int64) {
	return int(id >> 48), id & (1<<48 - 1)
}

// String names the kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// Span is one completed trace interval. All fields are plain scalars so a
// recording is a single struct store into the preallocated ring.
type Span struct {
	Kind SpanKind
	// Part is the partition the span belongs to, or -1 for driver-level
	// spans (timestep, load, exchange).
	Part int32
	// TS is the TI-BSP timestep, or -1 when unknown (e.g. raw engine runs).
	TS int32
	// Step is the superstep within the timestep, or -1 where not
	// applicable.
	Step int32
	// SID is the packed subgraph.ID for SpanCompute spans, 0 otherwise.
	SID int64
	// Start is nanoseconds since the tracer's epoch.
	Start int64
	// Dur is the span length in nanoseconds.
	Dur int64
}

// StepStat is one partition's simulated-schedule decomposition of one
// superstep, recorded by the engine coordinator. It is the per-superstep
// refinement of metrics.PartitionStep and the input to skew analysis: the
// barrier component is exactly how long this partition idled waiting for
// the superstep's straggler.
type StepStat struct {
	TS, Step, Part          int32
	Compute, Flush, Barrier int64 // nanoseconds, simulated schedule
}

// Tracer records spans and superstep stats into fixed-size rings. Recording
// is lock-free and allocation-free: a single atomic counter increment
// claims a slot, and the ring overwrites the oldest entries when full (the
// tail of a long run is usually what an investigation needs). The span ring
// is sharded by partition so concurrent workers never contend on one
// cursor's cache line; exporting while a run is in flight is best-effort (a
// slot being overwritten during the copy can tear), so export after the run
// or from a quiesced engine for exact traces.
//
// A nil *Tracer is valid and permanently disabled, so instrumented code
// needs no configuration branches beyond the Active check.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time

	shards [spanShards]spanShard

	stats    []StepStat
	statMask uint64
	statCur  atomic.Uint64
}

// spanShards is the number of independent span rings (power of two).
// Partition p records into shard (p+1)&(spanShards-1); driver-level spans
// (Part = -1) land in shard 0.
const spanShards = 16

type spanShard struct {
	cur atomic.Uint64
	// Pad the cursor onto its own cache line; shards sit in an array, so
	// without this every worker's counter increment would invalidate its
	// neighbors'.
	_    [56]byte
	ring []Span
	mask uint64
}

// DefaultSpanCapacity is the default total span capacity (entries across
// all shards, rounded up so each shard is a power of two). 1<<16 spans
// ≈ 3 MB — enough for ~250 supersteps of a 64-subgraph run before wrapping.
const DefaultSpanCapacity = 1 << 16

// NewTracer creates a tracer with the given total span capacity (entries;
// ≤0 means DefaultSpanCapacity), split evenly across the partition shards.
// The superstep-stat ring is sized at a quarter of the span capacity. The
// tracer starts disabled.
func NewTracer(spanCap int) *Tracer {
	if spanCap <= 0 {
		spanCap = DefaultSpanCapacity
	}
	perShard := ceilPow2((spanCap + spanShards - 1) / spanShards)
	if perShard < 256 {
		perShard = 256
	}
	statCap := ceilPow2(spanCap / 4)
	if statCap < 1024 {
		statCap = 1024
	}
	t := &Tracer{
		epoch:    time.Now(),
		stats:    make([]StepStat, statCap),
		statMask: uint64(statCap - 1),
	}
	for i := range t.shards {
		t.shards[i].ring = make([]Span, perShard)
		t.shards[i].mask = uint64(perShard - 1)
	}
	return t
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Active reports whether recording is on. Nil-safe; this is the gate every
// instrumentation site checks before doing any measurement work.
func (t *Tracer) Active() bool { return t != nil && t.enabled.Load() }

// Enable turns recording on. Nil-safe no-op.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable turns recording off; already-recorded data stays exportable.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// RecordSpan records a completed interval. Allocation-free; safe for
// concurrent use (each partition writes its own shard). No-op when the
// tracer is nil or disabled.
func (t *Tracer) RecordSpan(kind SpanKind, part, ts, step int32, sid int64, start time.Time, dur time.Duration) {
	if !t.Active() {
		return
	}
	s := &t.shards[uint32(part+1)&(spanShards-1)]
	i := s.cur.Add(1) - 1
	s.ring[i&s.mask] = Span{
		Kind: kind, Part: part, TS: ts, Step: step, SID: sid,
		Start: start.Sub(t.epoch).Nanoseconds(), Dur: dur.Nanoseconds(),
	}
}

// RecordPhases records one worker superstep's compute-phase and flush
// windows with a single slot claim (both spans share the worker's shard).
// Allocation-free; no-op when the tracer is nil or disabled.
func (t *Tracer) RecordPhases(part, ts, step int32, phaseStart, computeDone, flushDone time.Time) {
	if !t.Active() {
		return
	}
	s := &t.shards[uint32(part+1)&(spanShards-1)]
	i := s.cur.Add(2) - 2
	start := phaseStart.Sub(t.epoch).Nanoseconds()
	mid := computeDone.Sub(t.epoch).Nanoseconds()
	s.ring[i&s.mask] = Span{
		Kind: SpanComputePhase, Part: part, TS: ts, Step: step,
		Start: start, Dur: mid - start,
	}
	s.ring[(i+1)&s.mask] = Span{
		Kind: SpanFlush, Part: part, TS: ts, Step: step,
		Start: mid, Dur: flushDone.Sub(t.epoch).Nanoseconds() - mid,
	}
}

// RecordStepStat records one partition's simulated decomposition of one
// superstep. Allocation-free; safe for concurrent use.
func (t *Tracer) RecordStepStat(ts, step, part int32, compute, flush, barrier time.Duration) {
	if !t.Active() {
		return
	}
	i := t.statCur.Add(1) - 1
	t.stats[i&t.statMask] = StepStat{
		TS: ts, Step: step, Part: part,
		Compute: compute.Nanoseconds(), Flush: flush.Nanoseconds(), Barrier: barrier.Nanoseconds(),
	}
}

// ringSnapshot copies the live entries of a ring in record order.
func ringSnapshot[T any](ring []T, cur uint64, mask uint64) []T {
	n := cur
	capacity := uint64(len(ring))
	if n == 0 {
		return nil
	}
	if n <= capacity {
		out := make([]T, n)
		copy(out, ring[:n])
		return out
	}
	// Wrapped: oldest surviving entry is at cur&mask.
	out := make([]T, capacity)
	head := cur & mask
	copy(out, ring[head:])
	copy(out[capacity-head:], ring[:head])
	return out
}

// Spans returns a snapshot of the recorded spans merged across shards and
// sorted by start time. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		s := &t.shards[i]
		out = append(out, ringSnapshot(s.ring, s.cur.Load(), s.mask)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// StepStats returns a snapshot of the recorded superstep stats, oldest
// first. Nil-safe.
func (t *Tracer) StepStats() []StepStat {
	if t == nil {
		return nil
	}
	return ringSnapshot(t.stats, t.statCur.Load(), t.statMask)
}

// SpansRecorded returns how many spans were ever recorded (including
// entries the rings have since overwritten).
func (t *Tracer) SpansRecorded() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.shards {
		n += t.shards[i].cur.Load()
	}
	return n
}

// SpansDropped returns how many spans the rings overwrote.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	var dropped uint64
	for i := range t.shards {
		s := &t.shards[i]
		if n, c := s.cur.Load(), uint64(len(s.ring)); n > c {
			dropped += n - c
		}
	}
	return dropped
}

// Summary renders a one-line human summary of the tracer's ring
// accounting, including the dropped-span count so a wrapped ring (spans
// silently overwritten) is visible wherever run summaries are printed.
// Nil-safe.
func (t *Tracer) Summary() string {
	if t == nil {
		return "tracer off"
	}
	return fmt.Sprintf("spans=%d dropped=%d", t.SpansRecorded(), t.SpansDropped())
}

// Reset discards all recorded data (the enabled flag is unchanged).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		t.shards[i].cur.Store(0)
	}
	t.statCur.Store(0)
	t.epoch = time.Now()
}

// Shard snapshots the tracer's recorded data as one rank's shard of a
// cluster trace, ready to ship to the merging rank. offset is the estimated
// clock offset of this rank relative to the merge reference (local clock
// minus reference clock; see cluster.Node.OffsetToRank0). Nil-safe.
func (t *Tracer) Shard(rank int, offset time.Duration) TraceShard {
	s := TraceShard{Rank: rank, OffsetNanos: offset.Nanoseconds()}
	if t == nil {
		return s
	}
	s.EpochUnixNano = t.epoch.UnixNano()
	s.Spans = t.Spans()
	s.Stats = t.StepStats()
	return s
}

// CollectObs implements Collector with the tracer's own bookkeeping.
func (t *Tracer) CollectObs(emit func(Sample)) {
	if t == nil {
		return
	}
	emit(Sample{Name: "tsgraph_trace_spans_total", Help: "Trace spans recorded since the last reset.", Kind: "counter", Value: float64(t.SpansRecorded())})
	emit(Sample{Name: "tsgraph_trace_spans_dropped_total", Help: "Trace spans overwritten by the ring buffer.", Kind: "counter", Value: float64(t.SpansDropped())})
	emit(Sample{Name: "tsgraph_trace_enabled", Help: "Whether span recording is currently enabled.", Kind: "gauge", Value: boolToFloat(t.enabled.Load())})
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
