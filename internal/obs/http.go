package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewHandler builds the debug HTTP handler for a registry:
//
//	/metrics            Prometheus text-format scrape
//	/metrics.json       JSON snapshot of the same samples
//	/debug/trace        Chrome trace_event JSON of the tracer's rings
//	/debug/trace.shard  this rank's TraceShard as JSON (cluster-merge pull)
//	/debug/skew         human-readable SkewReport
//	/debug/pprof/*      the standard runtime profiles
//
// The handler is safe to serve while a run is executing; exports are
// best-effort snapshots (see Tracer).
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="tsgraph-trace.json"`)
		_ = WriteChromeTrace(w, reg.Tracer())
	})
	mux.HandleFunc("/debug/trace.shard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(reg.Shard())
	})
	mux.HandleFunc("/debug/skew", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, reg.Tracer().Skew())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>tsgraph observability</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text format)</li>
<li><a href="/metrics.json">/metrics.json</a> (JSON snapshot)</li>
<li><a href="/debug/trace">/debug/trace</a> (Chrome trace_event JSON; load in Perfetto)</li>
<li><a href="/debug/trace.shard">/debug/trace.shard</a> (this rank's trace shard for cluster merge)</li>
<li><a href="/debug/skew">/debug/skew</a> (straggler report)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	return mux
}

// Serve starts the debug endpoint on addr (e.g. ":9188" or
// "127.0.0.1:0") in a background goroutine and returns the bound address.
// The returned server can be Closed by the caller; serving errors after a
// successful bind are discarded (the endpoint is best-effort tooling).
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
