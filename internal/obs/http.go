package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Endpoint is one extra debug endpoint a daemon contributes to the shared
// debug mux: the serving layer's flight recorder, the diagnostic-bundle
// handler, and so on. Keeping the construction here — rather than each cmd
// hand-assembling its own mux — is what guarantees tsrun/tsbench's -obs
// server and tsserve expose the same endpoint set.
type Endpoint struct {
	// Pattern is the mux pattern (e.g. "/debug/flight").
	Pattern string
	// Handler serves it.
	Handler http.Handler
	// Index, when non-empty, is the one-line description shown on the
	// index page ("" keeps the endpoint off the index).
	Index string
}

// NewHandler builds the debug HTTP handler for a registry:
//
//	/metrics            Prometheus text-format scrape
//	/metrics.json       JSON snapshot of the same samples
//	/debug/trace        Chrome trace_event JSON of the tracer's rings
//	/debug/trace.shard  this rank's TraceShard as JSON (cluster-merge pull)
//	/debug/skew         human-readable SkewReport
//	/debug/pprof/*      the standard runtime profiles
//
// plus any extra endpoints (flight recorder, diagnostic bundles). The
// handler is safe to serve while a run is executing; exports are
// best-effort snapshots (see Tracer).
func NewHandler(reg *Registry, extras ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="tsgraph-trace.json"`)
		_ = WriteChromeTrace(w, reg.Tracer())
	})
	mux.HandleFunc("/debug/trace.shard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(reg.Shard())
	})
	mux.HandleFunc("/debug/skew", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, reg.Tracer().Skew())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	type indexEntry struct{ pattern, desc string }
	entries := []indexEntry{
		{"/metrics", "Prometheus text format"},
		{"/metrics.json", "JSON snapshot"},
		{"/debug/trace", "Chrome trace_event JSON; load in Perfetto"},
		{"/debug/trace.shard", "this rank's trace shard for cluster merge"},
		{"/debug/skew", "straggler report"},
		{"/debug/pprof/", "runtime profiles"},
	}
	for _, e := range extras {
		if e.Handler == nil {
			continue
		}
		mux.Handle(e.Pattern, e.Handler)
		if e.Index != "" {
			entries = append(entries, indexEntry{e.Pattern, e.Index})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].pattern < entries[j].pattern })

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>tsgraph observability</h1><ul>\n")
		for _, e := range entries {
			fmt.Fprintf(w, `<li><a href="%s">%s</a> (%s)</li>`+"\n", e.pattern, e.pattern, e.desc)
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
	return mux
}

// Serve starts the debug endpoint on addr (e.g. ":9188" or
// "127.0.0.1:0") in a background goroutine and returns the bound address.
// The returned server can be Closed by the caller; serving errors after a
// successful bind are discarded (the endpoint is best-effort tooling).
func Serve(addr string, reg *Registry, extras ...Endpoint) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(reg, extras...)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
