package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// WatchdogConfig parameterizes a stall watchdog.
type WatchdogConfig struct {
	// Parties is how many arrivals complete one step (ranks in a
	// distributed barrier, partition workers in a local engine).
	Parties int
	// Factor is the stall threshold multiplier k: a step is suspect once
	// its wait exceeds k x the trailing median of completed step durations.
	// <=0 means 4.
	Factor float64
	// MinWait is the absolute threshold floor, so microsecond-scale steps
	// never trip the watchdog on scheduler noise. <=0 means 250ms.
	MinWait time.Duration
	// Poll is the monitor goroutine's check interval. <=0 means MinWait/4.
	Poll time.Duration
	// Window bounds the trailing-median sample count. <=0 means 64.
	Window int
	// Describe, when non-nil, names a party in warnings (e.g. "rank 2
	// (partitions [2 6])"); the default is "party N".
	Describe func(party int) string
	// Tracer, when non-nil, receives a SpanStall event per warning.
	Tracer *Tracer
	// Log receives the one-line stderr report per warning. Nil means
	// os.Stderr; io.Discard silences it.
	Log io.Writer
}

// StallWarning is one fired watchdog warning: the suspect party and the
// step it failed to arrive at within the threshold. Recovering marks a
// party the transport had flagged as mid-reconnect when the warning fired —
// late because its link is being re-established, not silently stalled.
type StallWarning struct {
	TS, Step   int
	Party      int
	Waited     time.Duration
	Recovering bool
}

// Watchdog detects supersteps that stop making progress: the coordinator
// (engine Run loop or cluster barrier) brackets each step with StepBegin
// and StepEnd and reports per-party arrivals, and a background monitor
// fires a structured warning — one per (step, party), into the tracer and
// the log — when a party's arrival is overdue by Factor x the trailing
// median step duration. All methods are safe for concurrent use and
// nil-safe on the receiver, so instrumented code needs no configuration
// branches.
type Watchdog struct {
	cfg WatchdogConfig

	mu         sync.Mutex
	ts         int
	step       int
	began      time.Time
	waiting    bool
	arrived    map[int]bool
	pending    map[int]map[int]bool // early arrivals keyed by step
	warned     map[[2]int]bool      // (step, party) pairs already reported
	recovering map[int]bool         // parties mid-reconnect (see SetRecovering)
	window     []time.Duration
	warnings   []StallWarning

	stop chan struct{}
	done chan struct{}
}

// NewWatchdog creates a watchdog and starts its monitor goroutine. Close
// must be called to stop it.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Factor <= 0 {
		cfg.Factor = 4
	}
	if cfg.MinWait <= 0 {
		cfg.MinWait = 250 * time.Millisecond
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.MinWait / 4
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.Log == nil {
		cfg.Log = os.Stderr
	}
	w := &Watchdog{
		cfg:        cfg,
		pending:    map[int]map[int]bool{},
		warned:     map[[2]int]bool{},
		recovering: map[int]bool{},
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go w.monitor()
	return w
}

// StepBegin marks the start of a step's barrier window: subsequent Arrive
// calls for this step count toward completion, and the monitor starts
// timing. Arrivals that raced ahead of StepBegin (a fast peer's frame) are
// credited immediately. Nil-safe.
func (w *Watchdog) StepBegin(ts, step int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.ts, w.step = ts, step
	w.began = time.Now()
	w.waiting = true
	w.arrived = w.pending[step]
	delete(w.pending, step)
	if w.arrived == nil {
		w.arrived = map[int]bool{}
	}
	w.mu.Unlock()
}

// Arrive records that a party reached the barrier of a step. Steps ahead of
// the current one are buffered (a fast peer can finish step s+1 before this
// coordinator begins it). Nil-safe.
func (w *Watchdog) Arrive(step, party int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.waiting && step == w.step {
		w.arrived[party] = true
	} else if !w.waiting || step > w.step {
		m := w.pending[step]
		if m == nil {
			m = map[int]bool{}
			w.pending[step] = m
		}
		m[party] = true
	}
	w.mu.Unlock()
}

// SetRecovering marks a party as mid-reconnect (the transport lost its
// connection and is re-establishing it) or clears the mark. While set, an
// overdue arrival from the party is reported as *recovering* rather than
// stalled, so a transient fault does not read like a hung rank. Nil-safe.
func (w *Watchdog) SetRecovering(party int, on bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if on {
		w.recovering[party] = true
	} else {
		delete(w.recovering, party)
	}
	w.mu.Unlock()
}

// StepEnd marks the step complete, feeding its duration into the trailing
// median window. Nil-safe.
func (w *Watchdog) StepEnd(step int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.waiting && step == w.step {
		w.waiting = false
		w.window = append(w.window, time.Since(w.began))
		if len(w.window) > w.cfg.Window {
			w.window = w.window[len(w.window)-w.cfg.Window:]
		}
	}
	w.mu.Unlock()
}

// Warnings returns the warnings fired so far, in firing order. Nil-safe.
func (w *Watchdog) Warnings() []StallWarning {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]StallWarning(nil), w.warnings...)
}

// Close stops the monitor goroutine. Nil-safe; idempotent calls panic
// (close of closed channel), so call it once.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// threshold computes the current stall threshold: Factor x trailing median,
// floored at MinWait. Caller holds mu.
func (w *Watchdog) threshold() time.Duration {
	th := w.cfg.MinWait
	if n := len(w.window); n > 0 {
		sorted := append([]time.Duration(nil), w.window...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if scaled := time.Duration(w.cfg.Factor * float64(sorted[n/2])); scaled > th {
			th = scaled
		}
	}
	return th
}

// monitor is the watchdog goroutine: it wakes every Poll and fires one
// warning per overdue (step, party).
func (w *Watchdog) monitor() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		w.mu.Lock()
		if !w.waiting {
			w.mu.Unlock()
			continue
		}
		waited := time.Since(w.began)
		if waited < w.threshold() {
			w.mu.Unlock()
			continue
		}
		var fired []StallWarning
		for p := 0; p < w.cfg.Parties; p++ {
			if w.arrived[p] || w.warned[[2]int{w.step, p}] {
				continue
			}
			w.warned[[2]int{w.step, p}] = true
			warn := StallWarning{TS: w.ts, Step: w.step, Party: p, Waited: waited, Recovering: w.recovering[p]}
			w.warnings = append(w.warnings, warn)
			fired = append(fired, warn)
			if t := w.cfg.Tracer; t.Active() {
				t.RecordSpan(SpanStall, int32(p), int32(w.ts), int32(w.step), 0, w.began, waited)
			}
		}
		began := w.began
		w.mu.Unlock()
		for _, warn := range fired {
			name := fmt.Sprintf("party %d", warn.Party)
			if w.cfg.Describe != nil {
				name = w.cfg.Describe(warn.Party)
			}
			verb := "stalled"
			if warn.Recovering {
				verb = "recovering: reconnect in progress,"
			}
			fmt.Fprintf(w.cfg.Log, "tsgraph watchdog: timestep %d superstep %d %s %v waiting for %s (barrier began %s)\n",
				warn.TS, warn.Step, verb, warn.Waited.Round(time.Millisecond), name, began.Format(time.RFC3339))
		}
	}
}

// CollectObs implements Collector with the watchdog's firing count.
func (w *Watchdog) CollectObs(emit func(Sample)) {
	if w == nil {
		return
	}
	w.mu.Lock()
	n := len(w.warnings)
	w.mu.Unlock()
	emit(Sample{Name: "tsgraph_stall_warnings_total", Help: "Stall warnings fired by the superstep watchdog.", Kind: "counter", Value: float64(n)})
}
