package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tsgraph/internal/subgraph"
)

// SkewReport is the straggler analysis of a run's superstep schedule: how
// unbalanced compute was across partitions (GoFFish attributes most of its
// residual overhead to exactly this skew), where the worst superstep was,
// how the barrier wait distributed across partitions, and which single
// subgraph cost the most compute time.
type SkewReport struct {
	// Supersteps is how many (timestep, superstep) groups were analyzed.
	Supersteps int
	// MaxMedianRatio is the compute-weighted straggler ratio:
	// Σ_supersteps(max partition compute) / Σ_supersteps(median partition
	// compute). 1.0 is a perfectly balanced schedule. Weighting by compute
	// keeps trivial microsecond supersteps from dominating the statistic.
	MaxMedianRatio float64
	// WorstRatio is the max/median compute ratio of the superstep with the
	// largest absolute straggler excess (max − median compute), at
	// (WorstTS, WorstStep); WorstExcess is that excess — the wall time the
	// superstep would save with a perfectly balanced schedule.
	WorstRatio         float64
	WorstExcess        time.Duration
	WorstTS, WorstStep int32
	// BarrierByPart is each partition's total simulated barrier wait.
	BarrierByPart []time.Duration
	// ComputeByPart is each partition's total simulated compute time.
	ComputeByPart []time.Duration
	// TotalBarrier and TotalCompute sum the respective components over all
	// partitions and supersteps.
	TotalBarrier, TotalCompute time.Duration
	// SlowestSubgraph names the subgraph with the largest total measured
	// Compute time ("" when no compute spans were recorded), and
	// SlowestSubgraphCompute is that total.
	SlowestSubgraph        string
	SlowestSubgraphCompute time.Duration
}

// BarrierFrac returns barrier wait as a fraction of barrier+compute time
// (0 when empty) — the schedule's aggregate skew cost.
func (s *SkewReport) BarrierFrac() float64 {
	total := s.TotalBarrier + s.TotalCompute
	if total == 0 {
		return 0
	}
	return float64(s.TotalBarrier) / float64(total)
}

// String renders the report for CLI output.
func (s *SkewReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "skew: %d supersteps, max/median compute %.2fx (worst %.2fx, +%v at t%d s%d), barrier %.1f%% of schedule",
		s.Supersteps, s.MaxMedianRatio, s.WorstRatio,
		s.WorstExcess.Round(time.Microsecond), s.WorstTS, s.WorstStep, s.BarrierFrac()*100)
	if s.SlowestSubgraph != "" {
		fmt.Fprintf(&b, ", slowest subgraph %s (%v compute)",
			s.SlowestSubgraph, s.SlowestSubgraphCompute.Round(time.Microsecond))
	}
	return b.String()
}

// Skew aggregates the tracer's superstep stats (and, when present, its
// per-subgraph compute spans) into a SkewReport. Nil-safe: returns an
// empty report when no data was recorded.
func (t *Tracer) Skew() *SkewReport {
	rep := &SkewReport{}
	stats := t.StepStats()
	if len(stats) == 0 {
		return rep
	}

	type stepKey struct{ ts, step int32 }
	groups := map[stepKey][]int64{}
	var order []stepKey
	maxPart := int32(0)
	for _, st := range stats {
		if st.Part > maxPart {
			maxPart = st.Part
		}
	}
	rep.BarrierByPart = make([]time.Duration, maxPart+1)
	rep.ComputeByPart = make([]time.Duration, maxPart+1)
	for _, st := range stats {
		k := stepKey{st.TS, st.Step}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], st.Compute)
		rep.BarrierByPart[st.Part] += time.Duration(st.Barrier)
		rep.ComputeByPart[st.Part] += time.Duration(st.Compute)
		rep.TotalBarrier += time.Duration(st.Barrier)
		rep.TotalCompute += time.Duration(st.Compute)
	}

	var maxSum, medSum int64
	for _, k := range order {
		computes := groups[k]
		sort.Slice(computes, func(i, j int) bool { return computes[i] < computes[j] })
		med := computes[len(computes)/2]
		max := computes[len(computes)-1]
		maxSum += max
		medSum += med
		if excess := time.Duration(max - med); excess > rep.WorstExcess {
			rep.WorstExcess = excess
			rep.WorstRatio = ratioOrUnit(max, med)
			rep.WorstTS, rep.WorstStep = k.ts, k.step
		}
	}
	rep.Supersteps = len(order)
	// Degenerate windows — a single partition (median == max), zero-compute
	// supersteps (median == 0), or a one-timestep run — must yield finite
	// ratios rather than divide by zero: ratioOrUnit reports 1 when there
	// is no spread to measure.
	rep.MaxMedianRatio = ratioOrUnit(maxSum, medSum)

	// Attribute the slowest subgraph from per-subgraph compute spans.
	totals := map[int64]int64{}
	for _, sp := range t.Spans() {
		if sp.Kind == SpanCompute {
			totals[sp.SID] += sp.Dur
		}
	}
	var worstSID int64
	var worstDur int64 = -1
	for sid, d := range totals {
		if d > worstDur || (d == worstDur && sid < worstSID) {
			worstSID, worstDur = sid, d
		}
	}
	if worstDur >= 0 {
		rep.SlowestSubgraph = subgraph.ID(worstSID).String()
		rep.SlowestSubgraphCompute = time.Duration(worstDur)
	}
	return rep
}
