package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"tsgraph/internal/subgraph"
)

// TraceShard is one rank's contribution to a cluster-wide trace: its spans
// and superstep stats, its tracer epoch, and the rank's estimated clock
// offset relative to the merge reference (rank 0). Shards travel over the
// cluster wire (gob) or the /debug/trace.shard endpoint (JSON), so all
// fields are plain data.
type TraceShard struct {
	Rank int `json:"rank"`
	// EpochUnixNano is the shard tracer's epoch on the rank's own clock.
	EpochUnixNano int64 `json:"epoch_unix_nano"`
	// OffsetNanos is the estimated clock offset of this rank relative to
	// the reference rank: local clock minus reference clock. Subtracting it
	// from a local timestamp converts it onto the reference timeline.
	OffsetNanos int64      `json:"offset_nanos"`
	Spans       []Span     `json:"spans"`
	Stats       []StepStat `json:"stats"`
}

// MergedSpan is one span of a merged cluster trace: the original span plus
// its owning rank, with Start re-based onto the shared aligned timeline
// (nanoseconds since the merged epoch, always >= 0).
type MergedSpan struct {
	Rank int
	Span
}

// MergedTrace is the clock-aligned union of several ranks' trace shards.
type MergedTrace struct {
	// Ranks lists the contributing ranks in ascending order.
	Ranks []int
	// Spans holds every shard's spans on the aligned timeline, sorted by
	// Start (monotonic by construction).
	Spans []MergedSpan
	// Stats holds every shard's superstep stats tagged with their rank,
	// ordered by (rank, record order).
	Stats []RankStepStat
	// EpochUnixNano is the merged timeline's origin on the reference
	// rank's clock.
	EpochUnixNano int64
}

// RankStepStat is a StepStat tagged with the rank that recorded it.
type RankStepStat struct {
	Rank int
	StepStat
}

// MergeTraces aligns per-rank trace shards onto one timeline: each shard's
// timestamps are shifted by its epoch and estimated clock offset, the
// earliest aligned instant becomes the merged epoch, and all spans are
// sorted so the result is monotonic. Shards may arrive in any order; an
// empty input yields an empty trace.
func MergeTraces(shards []TraceShard) *MergedTrace {
	m := &MergedTrace{}
	if len(shards) == 0 {
		return m
	}
	ordered := append([]TraceShard(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Rank < ordered[j].Rank })

	// A shard's span at local epoch-relative time s sits at
	// Epoch + s - Offset on the reference clock.
	base := func(sh *TraceShard) int64 { return sh.EpochUnixNano - sh.OffsetNanos }
	epoch := int64(0)
	first := true
	for i := range ordered {
		sh := &ordered[i]
		for _, sp := range sh.Spans {
			if at := base(sh) + sp.Start; first || at < epoch {
				epoch, first = at, false
			}
		}
	}
	m.EpochUnixNano = epoch

	for i := range ordered {
		sh := &ordered[i]
		m.Ranks = append(m.Ranks, sh.Rank)
		for _, sp := range sh.Spans {
			sp.Start = base(sh) + sp.Start - epoch
			if sp.Start < 0 {
				sp.Start = 0 // clamp sub-epoch jitter from offset estimation
			}
			m.Spans = append(m.Spans, MergedSpan{Rank: sh.Rank, Span: sp})
		}
		for _, st := range sh.Stats {
			m.Stats = append(m.Stats, RankStepStat{Rank: sh.Rank, StepStat: st})
		}
	}
	sort.SliceStable(m.Spans, func(i, j int) bool { return m.Spans[i].Start < m.Spans[j].Start })
	return m
}

// Validate checks the structural invariants a merged cluster trace must
// satisfy: every rank contributed at least one span, aligned timestamps are
// non-negative and monotonic, and every wire-recv span resolves to the
// matching wire-send span recorded by its sender. It returns nil when all
// hold, else an error naming the first violation.
func (m *MergedTrace) Validate() error {
	if len(m.Ranks) == 0 {
		return fmt.Errorf("obs: merged trace has no ranks")
	}
	spansByRank := map[int]int{}
	sends := map[int64]int{} // packed wire id -> sender rank
	prev := int64(-1)
	for _, sp := range m.Spans {
		if sp.Start < 0 {
			return fmt.Errorf("obs: rank %d %s span at negative aligned time %d", sp.Rank, sp.Kind, sp.Start)
		}
		if sp.Start < prev {
			return fmt.Errorf("obs: merged trace not monotonic at rank %d %s span (%d < %d)", sp.Rank, sp.Kind, sp.Start, prev)
		}
		prev = sp.Start
		spansByRank[sp.Rank]++
		if sp.Kind == SpanWireSend {
			sends[sp.SID] = sp.Rank
		}
	}
	for _, r := range m.Ranks {
		if spansByRank[r] == 0 {
			return fmt.Errorf("obs: rank %d contributed no spans", r)
		}
	}
	for _, sp := range m.Spans {
		if sp.Kind != SpanWireRecv {
			continue
		}
		sender, seq := UnpackWireID(sp.SID)
		from, ok := sends[sp.SID]
		if !ok {
			return fmt.Errorf("obs: rank %d wire-recv (sender %d, seq %d) has no matching wire-send span", sp.Rank, sender, seq)
		}
		if from != sender {
			return fmt.Errorf("obs: wire id (sender %d, seq %d) recorded by rank %d", sender, seq, from)
		}
	}
	return nil
}

// WriteChromeTrace renders a merged cluster trace in the Chrome trace_event
// JSON format with one process row per (rank, partition) and one per rank's
// driver, so an N-rank run shows N aligned swim-lane groups in Perfetto.
// Stall warnings become global instant events; wire spans carry peer and
// sequence args so sender/receiver pairs are inspectable.
func (m *MergedTrace) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// pid layout: rank r's driver is r*pidStride, its partition p is
	// r*pidStride + 1 + p. Ranks therefore occupy disjoint pid blocks and
	// render as distinct process rows.
	const pidStride = 1 << 16
	type procKey struct{ rank, pid int32 }
	seen := map[procKey]bool{}
	for _, r := range m.Ranks {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"rank %d driver"}}`, r*pidStride, r)
		emit(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"timesteps"}}`, r*pidStride)
		seen[procKey{int32(r), int32(r * pidStride)}] = true
	}
	for _, sp := range m.Spans {
		if sp.Part < 0 || sp.Kind == SpanWireSend || sp.Kind == SpanWireRecv || sp.Kind == SpanStall {
			continue
		}
		pid := int32(sp.Rank*pidStride) + 1 + sp.Part
		k := procKey{int32(sp.Rank), pid}
		if !seen[k] {
			seen[k] = true
			emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"rank %d partition %d"}}`, pid, sp.Rank, sp.Part)
			emit(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"supersteps"}}`, pid)
		}
	}

	for _, sp := range m.Spans {
		driverPID := int32(sp.Rank * pidStride)
		pid, tid := driverPID, int32(0)
		name := sp.Kind.String()
		switch sp.Kind {
		case SpanTimestep:
			name = fmt.Sprintf("timestep %d", sp.TS)
		case SpanLoad:
			name = fmt.Sprintf("load %d", sp.TS)
		case SpanExchange:
			name = fmt.Sprintf("exchange %d", sp.TS)
		case SpanComputePhase, SpanFlush, SpanBarrier:
			pid = driverPID + 1 + sp.Part
		case SpanCompute:
			pid = driverPID + 1 + sp.Part
			sid := subgraph.ID(sp.SID)
			tid = int32(1 + sid.Index())
			name = fmt.Sprintf("compute %s", sid)
		case SpanStall:
			emit(`{"ph":"i","s":"g","name":"stall: party %d","cat":"stall","pid":%d,"tid":0,"ts":%.3f,"args":{"timestep":%d,"superstep":%d,"waited_ms":%.3f}}`,
				sp.Part, driverPID, float64(sp.Start+sp.Dur)/1e3, sp.TS, sp.Step, float64(sp.Dur)/1e6)
			continue
		case SpanWireSend, SpanWireRecv:
			sender, seq := UnpackWireID(sp.SID)
			emit(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":1,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d,"peer":%d,"sender":%d,"seq":%d}}`,
				fmt.Sprintf("%s peer %d", sp.Kind, sp.Part), sp.Kind.String(), driverPID,
				float64(sp.Start)/1e3, float64(sp.Dur)/1e3, sp.TS, sp.Step, sp.Part, sender, seq)
			continue
		}
		emit(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"timestep":%d,"superstep":%d,"rank":%d}}`,
			name, sp.Kind.String(), pid, tid,
			float64(sp.Start)/1e3, float64(sp.Dur)/1e3, sp.TS, sp.Step, sp.Rank)
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// RankSkew is one rank's share of a cluster skew decomposition.
type RankSkew struct {
	Rank int
	// Compute is the rank's total simulated compute time (sum over its
	// partitions and supersteps); Makespan sums the rank's per-superstep
	// critical path (max partition compute+flush).
	Compute, Makespan time.Duration
	// InterWait is how long the rank idled at global barriers behind
	// slower ranks, summed over supersteps.
	InterWait time.Duration
}

// ClusterSkewReport splits a multi-rank run's imbalance into the two layers
// the paper's §IV utilization plots distinguish: intra-partition compute
// skew (stragglers among partitions of the same rank, fixable by
// re-partitioning within a host) and inter-rank barrier wait (whole hosts
// idling behind the cluster's slowest rank, fixable only by re-balancing
// partition ownership).
type ClusterSkewReport struct {
	Ranks, Supersteps int
	// IntraRatio is the compute-weighted max/median partition-compute
	// ratio within ranks: Sigma(max partition compute per rank-superstep) /
	// Sigma(median). 1.0 means every rank's partitions are balanced.
	IntraRatio float64
	// InterRatio is the same statistic across ranks, over per-rank
	// superstep makespans: how much the slowest host dominates the median
	// host.
	InterRatio float64
	// IntraExcess sums (max - median) partition compute within ranks: the
	// schedule time attributable to intra-rank stragglers. InterWait sums
	// every rank's idle time behind the per-superstep slowest rank.
	IntraExcess, InterWait time.Duration
	PerRank                []RankSkew
}

// String renders the cluster report for CLI output.
func (c *ClusterSkewReport) String() string {
	return fmt.Sprintf("cluster skew: %d ranks, %d supersteps, intra-partition %.2fx (+%v), inter-rank %.2fx (%v barrier wait)",
		c.Ranks, c.Supersteps, c.IntraRatio, c.IntraExcess.Round(time.Microsecond),
		c.InterRatio, c.InterWait.Round(time.Microsecond))
}

// ClusterSkew aggregates a merged trace's superstep stats into the
// two-layer skew decomposition. Degenerate inputs (no stats, one rank, one
// partition per rank) yield a report with ratio 1 components where the
// corresponding layer has no spread.
func (m *MergedTrace) ClusterSkew() *ClusterSkewReport {
	rep := &ClusterSkewReport{Ranks: len(m.Ranks)}
	if len(m.Stats) == 0 {
		return rep
	}
	type stepKey struct {
		rank     int
		ts, step int32
	}
	type globalKey struct{ ts, step int32 }
	perRankStep := map[stepKey][]int64{} // partition compute samples
	rankSpan := map[stepKey]int64{}      // rank superstep makespan (compute+flush critical path)
	globalSteps := map[globalKey][]int{} // ranks seen per global superstep
	byRank := map[int]*RankSkew{}
	for _, r := range m.Ranks {
		byRank[r] = &RankSkew{Rank: r}
	}
	for _, st := range m.Stats {
		k := stepKey{st.Rank, st.TS, st.Step}
		perRankStep[k] = append(perRankStep[k], st.Compute)
		if span := st.Compute + st.Flush; span > rankSpan[k] {
			rankSpan[k] = span
		}
		if rs := byRank[st.Rank]; rs != nil {
			rs.Compute += time.Duration(st.Compute)
		}
	}

	var intraMaxSum, intraMedSum int64
	for k, computes := range perRankStep {
		sort.Slice(computes, func(i, j int) bool { return computes[i] < computes[j] })
		med, max := computes[len(computes)/2], computes[len(computes)-1]
		intraMaxSum += max
		intraMedSum += med
		rep.IntraExcess += time.Duration(max - med)
		gk := globalKey{k.ts, k.step}
		globalSteps[gk] = append(globalSteps[gk], k.rank)
		if rs := byRank[k.rank]; rs != nil {
			rs.Makespan += time.Duration(rankSpan[k])
		}
	}
	rep.IntraRatio = ratioOrUnit(intraMaxSum, intraMedSum)

	var interMaxSum, interMedSum int64
	for gk, ranks := range globalSteps {
		spans := make([]int64, 0, len(ranks))
		for _, r := range ranks {
			spans = append(spans, rankSpan[stepKey{r, gk.ts, gk.step}])
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
		med, max := spans[len(spans)/2], spans[len(spans)-1]
		interMaxSum += max
		interMedSum += med
		for _, r := range ranks {
			wait := time.Duration(max - rankSpan[stepKey{r, gk.ts, gk.step}])
			rep.InterWait += wait
			if rs := byRank[r]; rs != nil {
				rs.InterWait += wait
			}
		}
	}
	rep.InterRatio = ratioOrUnit(interMaxSum, interMedSum)
	rep.Supersteps = len(globalSteps)
	for _, r := range m.Ranks {
		rep.PerRank = append(rep.PerRank, *byRank[r])
	}
	return rep
}

// ratioOrUnit returns max/med, or 1 when there is no spread to measure
// (an all-zero window divides by zero otherwise).
func ratioOrUnit(max, med int64) float64 {
	if med > 0 {
		return float64(max) / float64(med)
	}
	if max > 0 {
		return float64(max) // effectively infinite spread; report the mass
	}
	return 1
}

// ShardCollector exports a gathered cluster trace as /metrics samples, so
// the merging rank's scrape carries the cluster-wide view: per-rank span
// counts and compute/barrier seconds from every shard, not just the local
// process.
type ShardCollector struct {
	Shards []TraceShard
}

// CollectObs implements Collector.
func (c ShardCollector) CollectObs(emit func(Sample)) {
	for _, sh := range c.Shards {
		labels := []Label{{Key: "rank", Value: strconv.Itoa(sh.Rank)}}
		var compute, barrier int64
		for _, st := range sh.Stats {
			compute += st.Compute
			barrier += st.Barrier
		}
		emit(Sample{Name: "tsgraph_cluster_spans_total", Help: "Trace spans gathered from each rank's shard.", Kind: "counter", Labels: labels, Value: float64(len(sh.Spans))})
		emit(Sample{Name: "tsgraph_cluster_compute_seconds_total", Help: "Simulated compute time aggregated from each rank's gathered shard.", Kind: "counter", Labels: labels, Value: time.Duration(compute).Seconds()})
		emit(Sample{Name: "tsgraph_cluster_barrier_seconds_total", Help: "Simulated barrier wait aggregated from each rank's gathered shard.", Kind: "counter", Labels: labels, Value: time.Duration(barrier).Seconds()})
		emit(Sample{Name: "tsgraph_cluster_clock_offset_seconds", Help: "Estimated clock offset of each rank relative to the merge reference.", Kind: "gauge", Labels: labels, Value: time.Duration(sh.OffsetNanos).Seconds()})
	}
}
