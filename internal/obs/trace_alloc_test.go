// Exact allocation counting is skipped under the race detector, whose
// instrumentation can add bookkeeping allocations.
//go:build !race

package obs

import (
	"testing"
	"time"
)

func TestRecordingIsAllocationFree(t *testing.T) {
	tr := NewTracer(0)
	tr.Enable()
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordSpan(SpanCompute, 1, 0, 0, 42, start, time.Microsecond)
	}); n != 0 {
		t.Fatalf("RecordSpan allocates %.1f times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordPhases(1, 0, 0, start, start, start)
	}); n != 0 {
		t.Fatalf("RecordPhases allocates %.1f times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordStepStat(0, 0, 1, time.Millisecond, time.Microsecond, time.Millisecond)
	}); n != 0 {
		t.Fatalf("RecordStepStat allocates %.1f times per call", n)
	}
}
