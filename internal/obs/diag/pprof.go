package diag

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// A minimal pprof profile.proto reader, enough for triage: per-function
// flat sample values attributed to the leaf frame. The repo's no-new-deps
// rule means we can't import github.com/google/pprof, and the full format
// is far richer than a triage summary needs — this walks exactly the
// fields it uses (sample_type=1, sample=2, location=4, function=5,
// string_table=6; inside them the id/name/value/line subfields) and skips
// everything else wire-compatibly.

// ProfileSummary is the parsed-down view of a pprof profile.
type ProfileSummary struct {
	// SampleTypes are the value column names, e.g. ["samples", "cpu"].
	SampleTypes []string
	// Unit per column, e.g. ["count", "nanoseconds"].
	SampleUnits []string
	// TotalValue is the column sum used for ranking (the last column:
	// cpu nanoseconds for CPU profiles, bytes for heap).
	TotalValue int64
	// Frames are leaf-attributed flat totals, descending.
	Frames []FrameTotal
}

// FrameTotal is one function's leaf-attributed total.
type FrameTotal struct {
	Function string
	Value    int64
}

type protoReader struct {
	buf []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.buf) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("diag: varint overflow")
		}
	}
}

// field reads the next tag and returns (fieldNum, wireType, payload).
// payload is the raw bytes for wire type 2, the varint value for type 0.
func (r *protoReader) field() (num int, wire int, val uint64, payload []byte, err error) {
	tag, err := r.varint()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	num, wire = int(tag>>3), int(tag&7)
	switch wire {
	case 0: // varint
		val, err = r.varint()
	case 1: // fixed64
		if r.pos+8 > len(r.buf) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 8
	case 2: // length-delimited
		var n uint64
		n, err = r.varint()
		if err == nil {
			if uint64(r.pos)+n > uint64(len(r.buf)) {
				return 0, 0, 0, nil, io.ErrUnexpectedEOF
			}
			payload = r.buf[r.pos : r.pos+int(n)]
			r.pos += int(n)
		}
	case 5: // fixed32
		if r.pos+4 > len(r.buf) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 4
	default:
		err = fmt.Errorf("diag: unsupported wire type %d", wire)
	}
	return num, wire, val, payload, err
}

// packedVarints decodes a packed repeated varint payload.
func packedVarints(payload []byte) ([]uint64, error) {
	r := &protoReader{buf: payload}
	var out []uint64
	for !r.done() {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseProfile reads a (gzipped or raw) pprof profile.proto stream and
// returns the triage summary with frames ranked by leaf flat value of the
// last sample-type column.
func ParseProfile(r io.Reader) (*ProfileSummary, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("diag: gunzip profile: %w", err)
		}
		raw, err = io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("diag: gunzip profile: %w", err)
		}
	}

	var strTable []string
	type sample struct {
		locs   []uint64
		values []int64
	}
	var samples []sample
	locFunc := map[uint64]uint64{}  // location id → leaf function id
	funcName := map[uint64]uint64{} // function id → name string index
	var typeIdx, unitIdx []uint64   // sample_type {type,unit} string indexes

	top := &protoReader{buf: raw}
	for !top.done() {
		num, wire, val, payload, err := top.field()
		if err != nil {
			return nil, fmt.Errorf("diag: parse profile: %w", err)
		}
		_ = val
		if wire != 2 {
			continue
		}
		switch num {
		case 1: // ValueType sample_type
			vt := &protoReader{buf: payload}
			var t, u uint64
			for !vt.done() {
				n, w, v, _, err := vt.field()
				if err != nil {
					return nil, err
				}
				if w == 0 {
					switch n {
					case 1:
						t = v
					case 2:
						u = v
					}
				}
			}
			typeIdx = append(typeIdx, t)
			unitIdx = append(unitIdx, u)
		case 2: // Sample
			sr := &protoReader{buf: payload}
			var s sample
			for !sr.done() {
				n, w, v, p, err := sr.field()
				if err != nil {
					return nil, err
				}
				switch {
				case n == 1 && w == 2: // packed location_id
					ids, err := packedVarints(p)
					if err != nil {
						return nil, err
					}
					s.locs = append(s.locs, ids...)
				case n == 1 && w == 0:
					s.locs = append(s.locs, v)
				case n == 2 && w == 2: // packed value
					vals, err := packedVarints(p)
					if err != nil {
						return nil, err
					}
					for _, u := range vals {
						s.values = append(s.values, int64(u))
					}
				case n == 2 && w == 0:
					s.values = append(s.values, int64(v))
				}
			}
			samples = append(samples, s)
		case 4: // Location
			lr := &protoReader{buf: payload}
			var id, fn uint64
			seenLine := false
			for !lr.done() {
				n, w, v, p, err := lr.field()
				if err != nil {
					return nil, err
				}
				switch {
				case n == 1 && w == 0:
					id = v
				case n == 4 && w == 2 && !seenLine: // first Line = innermost frame
					seenLine = true
					ln := &protoReader{buf: p}
					for !ln.done() {
						n2, w2, v2, _, err := ln.field()
						if err != nil {
							return nil, err
						}
						if n2 == 1 && w2 == 0 {
							fn = v2
						}
					}
				}
			}
			locFunc[id] = fn
		case 5: // Function
			fr := &protoReader{buf: payload}
			var id, name uint64
			for !fr.done() {
				n, w, v, _, err := fr.field()
				if err != nil {
					return nil, err
				}
				if w == 0 {
					switch n {
					case 1:
						id = v
					case 2:
						name = v
					}
				}
			}
			funcName[id] = name
		case 6: // string_table
			strTable = append(strTable, string(payload))
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strTable)) {
			return strTable[i]
		}
		return ""
	}
	sum := &ProfileSummary{}
	for i := range typeIdx {
		sum.SampleTypes = append(sum.SampleTypes, str(typeIdx[i]))
		sum.SampleUnits = append(sum.SampleUnits, str(unitIdx[i]))
	}
	col := len(typeIdx) - 1 // by convention the most meaningful column is last
	if col < 0 {
		col = 0
	}

	flat := map[string]int64{}
	for _, s := range samples {
		if col >= len(s.values) || len(s.locs) == 0 {
			continue
		}
		v := s.values[col]
		sum.TotalValue += v
		// locs[0] is the leaf (innermost) frame.
		name := str(funcName[locFunc[s.locs[0]]])
		if name == "" {
			name = fmt.Sprintf("location#%d", s.locs[0])
		}
		flat[name] += v
	}
	for name, v := range flat {
		sum.Frames = append(sum.Frames, FrameTotal{Function: name, Value: v})
	}
	sort.Slice(sum.Frames, func(i, j int) bool {
		if sum.Frames[i].Value != sum.Frames[j].Value {
			return sum.Frames[i].Value > sum.Frames[j].Value
		}
		return sum.Frames[i].Function < sum.Frames[j].Function
	})
	return sum, nil
}
