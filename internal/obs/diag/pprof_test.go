package diag

import (
	"bytes"
	"runtime/pprof"
	"testing"
	"time"
)

// spin burns CPU so the profiler has something to sample.
func spin(d time.Duration) float64 {
	x := 1.0
	for end := time.Now().Add(d); time.Now().Before(end); {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 0.0000001
		}
	}
	return x
}

// TestParseProfileCPU: a real CPU profile from this process parses, with
// cpu/nanoseconds sample types and (when samples landed) leaf frames.
func TestParseProfileCPU(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	spin(150 * time.Millisecond)
	pprof.StopCPUProfile()

	sum, err := ParseProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	foundCPU := false
	for _, st := range sum.SampleTypes {
		if st == "cpu" || st == "samples" {
			foundCPU = true
		}
	}
	if !foundCPU {
		t.Fatalf("sample types = %v", sum.SampleTypes)
	}
	// Frame attribution is best-effort (a quiet machine can sample
	// nothing), but when samples exist the hot frame should be resolvable.
	if sum.TotalValue > 0 && len(sum.Frames) == 0 {
		t.Fatalf("profile has %d total value but no frames", sum.TotalValue)
	}
	for _, fr := range sum.Frames {
		if fr.Function == "" {
			t.Fatalf("frame with empty function name: %+v", sum.Frames)
		}
	}
}

// TestParseProfileHeap: the uncompressed-vs-gzip sniffing and the proto
// walk also handle a heap profile (different sample types, inuse layout).
func TestParseProfileHeap(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := ParseProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.SampleTypes) == 0 {
		t.Fatal("heap profile has no sample types")
	}
}

// TestParseProfileGarbage: junk input errors instead of panicking.
func TestParseProfileGarbage(t *testing.T) {
	if _, err := ParseProfile(bytes.NewReader([]byte{0x1f, 0x8b, 0x00, 0x01, 0x02})); err == nil {
		t.Fatal("gzip garbage parsed")
	}
	if _, err := ParseProfile(bytes.NewReader(bytes.Repeat([]byte{0xff}, 64))); err == nil {
		t.Fatal("proto garbage parsed")
	}
}
