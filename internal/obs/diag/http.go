package diag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"

	"tsgraph/internal/obs"
)

// Handler serves /debug/bundle:
//
//	GET  /debug/bundle          JSON list of retained bundles
//	GET  /debug/bundle?name=X   download one bundle (tar.gz)
//	POST /debug/bundle          capture a manual bundle now
func Handler(b *Bundler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			path, err := b.Capture(Trigger{Cause: "manual"})
			if err != nil {
				status := http.StatusInternalServerError
				if errors.Is(err, ErrBusy) {
					status = http.StatusConflict
				}
				http.Error(w, err.Error(), status)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusCreated)
			_ = json.NewEncoder(w).Encode(struct {
				Bundle string `json:"bundle"`
			}{Bundle: path})
		case http.MethodGet:
			if name := r.URL.Query().Get("name"); name != "" {
				f, err := b.Open(name)
				if err != nil {
					status := http.StatusNotFound
					if !os.IsNotExist(err) {
						status = http.StatusBadRequest
					}
					http.Error(w, err.Error(), status)
					return
				}
				defer f.Close()
				w.Header().Set("Content-Type", "application/gzip")
				w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
				_, _ = io.Copy(w, f)
				return
			}
			bundles, err := b.List()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if bundles == nil {
				bundles = []BundleInfo{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Dir     string       `json:"dir"`
				Bundles []BundleInfo `json:"bundles"`
			}{Dir: b.Dir, Bundles: bundles})
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// Endpoints returns the debug-mux endpoints a bundler contributes, for
// obs.NewHandler/obs.Serve.
func Endpoints(b *Bundler) []obs.Endpoint {
	if b == nil {
		return nil
	}
	return []obs.Endpoint{{
		Pattern: "/debug/bundle",
		Handler: Handler(b),
		Index:   "diagnostic bundles: GET lists, ?name= downloads, POST captures",
	}}
}

// HandlerSection adapts an existing http.Handler into a bundle Section by
// issuing a synthetic GET against it and archiving the response body —
// flight.json and stats.json reuse the daemon's real endpoints so the
// bundle never diverges from what an operator would have curled.
func HandlerSection(name string, h http.Handler, target string) Section {
	return Section{Name: name, Write: func(w io.Writer) error {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", target, rec.Code)
		}
		_, err := w.Write(rec.Body.Bytes())
		return err
	}}
}

// ArmSIGQUIT captures a bundle whenever the process receives SIGQUIT.
// Note the runtime's default stack-dump-and-exit behavior is replaced:
// the signal is consumed and the bundle (which includes the goroutine
// profile) is the dump. Returns a stop function that restores default
// handling.
func ArmSIGQUIT(b *Bundler) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		for {
			select {
			case <-done:
				return
			case <-ch:
				if path, err := b.Capture(Trigger{Cause: "signal"}); err != nil {
					slog.Warn("diag: SIGQUIT bundle capture failed", "err", err)
				} else {
					slog.Info("diag: SIGQUIT bundle captured", "bundle", path)
				}
			}
		}
	}()
	// stop waits out an in-flight capture: a SIGQUIT racing the process's
	// natural exit (the cmds defer this) must still land its bundle rather
	// than die mid-write as a torn .tmp.
	return func() {
		signal.Stop(ch)
		close(done)
		<-idle
	}
}
