package diag

import (
	"strings"
	"testing"

	"tsgraph/internal/obs"
)

// feed drives one detector through a sequence of readings and returns
// which indices tripped.
func feed(d *Detector, readings []float64) []int {
	i := 0
	d.Signal = func() float64 { return readings[i] }
	var tripped []int
	for i = 0; i < len(readings); i++ {
		if _, ok := d.evaluate(); ok {
			tripped = append(tripped, i)
		}
	}
	return tripped
}

// TestDetectorThreshold: absolute thresholds arm immediately, no baseline
// warmup required.
func TestDetectorThreshold(t *testing.T) {
	d := &Detector{Name: "slo_burn", Threshold: 1}
	got := feed(d, []float64{0.2, 0.9, 1.5, 0.3})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("tripped at %v, want [2]", got)
	}
}

// TestDetectorThresholdBelow: Below inverts the comparison.
func TestDetectorThresholdBelow(t *testing.T) {
	d := &Detector{Name: "hit_rate", Threshold: 0.5, Below: true}
	got := feed(d, []float64{0.9, 0.8, 0.1})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("tripped at %v, want [2]", got)
	}
}

// TestDetectorFactorSpike: factor comparisons need MinSamples of baseline
// first, then trip on a spike over Factor x baseline (gated by Min).
func TestDetectorFactorSpike(t *testing.T) {
	d := &Detector{Name: "queue_wait", Factor: 3, Min: 0.5, MinSamples: 3}
	// Baseline ~1.0; 10 is a 10x spike but readings 0-2 are warmup.
	got := feed(d, []float64{1.0, 1.1, 0.9, 1.0, 10.0})
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("tripped at %v, want [4]", got)
	}
	// The same spike under the Min floor is not an anomaly.
	d2 := &Detector{Name: "tiny", Factor: 3, Min: 100, MinSamples: 3}
	if got := feed(d2, []float64{1.0, 1.1, 0.9, 1.0, 10.0}); got != nil {
		t.Fatalf("sub-floor spike tripped at %v, want none", got)
	}
}

// TestDetectorFactorCollapse: Below + Factor trips when the value falls
// under baseline/Factor, but only once the baseline itself is over Min
// (a collapse from nothing is not a collapse).
func TestDetectorFactorCollapse(t *testing.T) {
	d := &Detector{Name: "hit_rate", Factor: 2, Min: 0.5, Below: true, MinSamples: 3}
	got := feed(d, []float64{0.9, 0.95, 0.9, 0.92, 0.1})
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("tripped at %v, want [4]", got)
	}
	// Baseline below Min: collapses are suppressed.
	d2 := &Detector{Name: "cold", Factor: 2, Min: 0.5, Below: true, MinSamples: 3}
	if got := feed(d2, []float64{0.2, 0.25, 0.2, 0.22, 0.01}); got != nil {
		t.Fatalf("cold-baseline collapse tripped at %v, want none", got)
	}
}

// TestDetectorDelta: Delta detectors difference a monotone counter and
// prime silently on the first reading.
func TestDetectorDelta(t *testing.T) {
	d := &Detector{Name: "watchdog_stalls", Delta: true, Threshold: 0.5}
	// Counter: 0, 0, 2 (two new warnings), 2.
	got := feed(d, []float64{0, 0, 2, 2})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("tripped at %v, want [2]", got)
	}
}

// TestDetectorConsecutive: single anomalous samples ride out; N in a row
// trip, and a persisting anomaly re-trips after N more.
func TestDetectorConsecutive(t *testing.T) {
	d := &Detector{Name: "noisy", Threshold: 1, Consecutive: 2}
	got := feed(d, []float64{2, 0.5, 2, 2, 2, 2})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("tripped at %v, want [3 5]", got)
	}
}

// TestDetectorBaselineIgnoresAnomalies: a persisting anomaly must not
// drag the baseline up until the detector accepts it as normal.
func TestDetectorBaselineIgnoresAnomalies(t *testing.T) {
	d := &Detector{Name: "spike", Factor: 2, Min: 0, MinSamples: 2}
	readings := []float64{1, 1, 100, 100, 100, 100}
	i := 0
	d.Signal = func() float64 { return readings[i] }
	trips := 0
	for i = 0; i < len(readings); i++ {
		if _, ok := d.evaluate(); ok {
			trips++
		}
	}
	if trips != 4 {
		t.Fatalf("persisting anomaly tripped %d times, want 4 (every reading)", trips)
	}
	if d.baseline > 2 {
		t.Fatalf("baseline crept to %v under a persisting anomaly", d.baseline)
	}
}

// TestMonitorEvaluateAndCollect: Evaluate returns the round's evidence and
// CollectObs exports signal/baseline/trips per detector.
func TestMonitorEvaluateAndCollect(t *testing.T) {
	v := 0.0
	m := &Monitor{Detectors: []*Detector{
		{Name: "a", Signal: func() float64 { return v }, Threshold: 1},
		{Name: "b", Signal: func() float64 { return 0 }, Threshold: 1},
	}}
	if evs := m.Evaluate(); evs != nil {
		t.Fatalf("healthy round returned %v", evs)
	}
	v = 5
	evs := m.Evaluate()
	if len(evs) != 1 || evs[0].Detector != "a" || evs[0].Value != 5 {
		t.Fatalf("evidence = %+v, want one trip of a at 5", evs)
	}
	if s := evs[0].String(); !strings.Contains(s, "a:") || !strings.Contains(s, "threshold") {
		t.Fatalf("evidence renders %q", s)
	}

	byName := map[string]float64{}
	m.CollectObs(func(s obs.Sample) {
		if s.Name == "tsgraph_diag_trips_total" {
			byName[s.Labels[0].Value] = s.Value
		}
	})
	if byName["a"] != 1 || byName["b"] != 0 {
		t.Fatalf("trips_total = %v", byName)
	}
}
