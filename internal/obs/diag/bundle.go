package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"tsgraph/internal/obs"
)

// Trigger records why a bundle was captured.
type Trigger struct {
	// Cause is "detector", "signal", or "manual".
	Cause string `json:"cause"`
	// Evidence is the tripped detectors' state (Cause "detector").
	Evidence []Evidence `json:"evidence,omitempty"`
}

// Meta is the bundle's meta.json: the trigger, capture time, build
// identity, and any capture-time degradations (e.g. the CPU profile was
// unavailable because another profiler held it).
type Meta struct {
	Tool     string     `json:"tool"` // process name, e.g. "tsserve"
	Build    string     `json:"build"`
	Captured time.Time  `json:"captured"`
	Cause    string     `json:"cause"`
	Evidence []Evidence `json:"evidence,omitempty"`
	// CPUProfileSeconds is how long the CPU profile sampled (0 if skipped).
	CPUProfileSeconds float64 `json:"cpu_profile_seconds"`
	// Degraded lists sections that could not be captured, with the error.
	Degraded map[string]string `json:"degraded,omitempty"`
	// Sections lists every member file written into the archive.
	Sections []string `json:"sections"`
}

// Section is one extra file a daemon contributes to its bundles — the
// flight-recorder snapshot, /stats JSON, the Chrome trace window. Write
// renders the section's current content; a failing section degrades the
// bundle (recorded in meta) instead of aborting it.
type Section struct {
	// Name is the member filename inside the archive (e.g. "flight.json").
	Name string
	// Write renders the section.
	Write func(w io.Writer) error
}

// Bundler captures diagnostic bundles into Dir with disk-capped retention.
// Concurrency-safe; overlapping capture requests coalesce into one bundle
// (the CPU profiler is a process-wide singleton anyway).
type Bundler struct {
	// Dir is where bundles live. Created on first capture.
	Dir string
	// Tool names the process in bundle filenames and meta ("tsserve").
	Tool string
	// MaxBundles bounds how many bundles are retained (default 8).
	MaxBundles int
	// MaxBytes bounds the total bundle bytes retained (default 256 MiB).
	// Oldest bundles are deleted first; the newest always survives.
	MaxBytes int64
	// ProfileDuration is the CPU profile window (default 2s).
	ProfileDuration time.Duration
	// MinInterval rate-limits detector-triggered captures (default 1m).
	// Manual and signal captures bypass it.
	MinInterval time.Duration
	// Registry, when set, contributes metrics.prom (the full scrape).
	Registry *obs.Registry
	// LogRing, when set, contributes logs.jsonl (the recent record tail).
	LogRing *LogRing
	// Sections are the daemon-specific extras.
	Sections []Section
	// Now is the injectable clock (tests); defaults to time.Now.
	Now func() time.Time

	mu       sync.Mutex
	last     time.Time
	inflight bool
	seq      int
	captures uint64
	limited  uint64
}

func (b *Bundler) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

const bundleSuffix = ".tar.gz"

// Capture snapshots the process's diagnostic surface into one tar.gz under
// Dir and returns its path. Rate limiting applies only to detector-caused
// captures; a second capture arriving while one is in flight returns
// ErrBusy rather than queueing (the anomaly it would document is already
// being documented).
func (b *Bundler) Capture(tr Trigger) (string, error) {
	b.mu.Lock()
	if b.inflight {
		b.mu.Unlock()
		return "", ErrBusy
	}
	now := b.now()
	if tr.Cause == "detector" {
		interval := b.MinInterval
		if interval <= 0 {
			interval = time.Minute
		}
		if !b.last.IsZero() && now.Sub(b.last) < interval {
			b.limited++
			b.mu.Unlock()
			return "", ErrRateLimited
		}
	}
	b.inflight = true
	b.last = now
	b.seq++
	seq := b.seq
	b.mu.Unlock()

	path, err := b.capture(tr, now, seq)

	b.mu.Lock()
	b.inflight = false
	if err == nil {
		b.captures++
	}
	b.mu.Unlock()
	return path, err
}

// Sentinel capture outcomes.
var (
	ErrBusy        = errBusy{}
	ErrRateLimited = errRateLimited{}
)

type errBusy struct{}

func (errBusy) Error() string { return "diag: a bundle capture is already in flight" }

type errRateLimited struct{}

func (errRateLimited) Error() string { return "diag: detector capture suppressed by rate limit" }

func (b *Bundler) capture(tr Trigger, now time.Time, seq int) (string, error) {
	if err := os.MkdirAll(b.Dir, 0o755); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	tool := b.Tool
	if tool == "" {
		tool = "tsgraph"
	}
	name := fmt.Sprintf("%s-%s-%03d-%s%s", tool, now.UTC().Format("20060102T150405Z"), seq, tr.Cause, bundleSuffix)
	final := filepath.Join(b.Dir, name)
	tmp := final + ".tmp"

	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename

	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)

	meta := Meta{
		Tool:     tool,
		Build:    obs.ReadBuildInfo().String(),
		Captured: now.UTC(),
		Cause:    tr.Cause,
		Evidence: tr.Evidence,
		Degraded: map[string]string{},
	}
	addFile := func(name string, content []byte) error {
		hdr := &tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(content)),
			ModTime: now, Typeflag: tar.TypeReg,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(content); err != nil {
			return err
		}
		meta.Sections = append(meta.Sections, name)
		return nil
	}
	addSection := func(name string, write func(io.Writer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			meta.Degraded[name] = err.Error()
			return
		}
		if err := addFile(name, buf.Bytes()); err != nil {
			meta.Degraded[name] = err.Error()
		}
	}

	// CPU profile first — it's the only section that takes wall time, and
	// sampling while the anomaly is still hot is the whole point.
	dur := b.ProfileDuration
	if dur <= 0 {
		dur = 2 * time.Second
	}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// Another profiler (e.g. /debug/pprof/profile) holds the singleton.
		meta.Degraded["cpu.pprof"] = err.Error()
	} else {
		time.Sleep(dur)
		pprof.StopCPUProfile()
		meta.CPUProfileSeconds = dur.Seconds()
		if err := addFile("cpu.pprof", cpu.Bytes()); err != nil {
			meta.Degraded["cpu.pprof"] = err.Error()
		}
	}

	for _, prof := range []string{"heap", "goroutine", "mutex"} {
		p := pprof.Lookup(prof)
		if p == nil {
			meta.Degraded[prof+".pprof"] = "profile not registered"
			continue
		}
		addSection(prof+".pprof", func(w io.Writer) error { return p.WriteTo(w, 0) })
	}

	if b.Registry != nil {
		addSection("metrics.prom", func(w io.Writer) error { return b.Registry.WritePrometheus(w) })
	}
	if b.LogRing != nil {
		addSection("logs.jsonl", func(w io.Writer) error { _, err := b.LogRing.WriteTo(w); return err })
	}
	for _, s := range b.Sections {
		addSection(s.Name, s.Write)
	}

	if len(meta.Degraded) == 0 {
		meta.Degraded = nil
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	if err := addFile("meta.json", mb); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}

	if err := tw.Close(); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	if err := gz.Close(); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("diag: %w", err)
	}
	b.enforceRetention()
	return final, nil
}

// BundleInfo describes one retained bundle.
type BundleInfo struct {
	Name  string    `json:"name"`
	Bytes int64     `json:"bytes"`
	MTime time.Time `json:"mtime"`
}

// List returns the retained bundles, newest first.
func (b *Bundler) List() ([]BundleInfo, error) {
	entries, err := os.ReadDir(b.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []BundleInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), bundleSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, BundleInfo{Name: e.Name(), Bytes: info.Size(), MTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].MTime.Equal(out[j].MTime) {
			return out[i].MTime.After(out[j].MTime)
		}
		return out[i].Name > out[j].Name
	})
	return out, nil
}

// Open opens a retained bundle by bare name, rejecting path traversal.
func (b *Bundler) Open(name string) (*os.File, error) {
	if name != filepath.Base(name) || !strings.HasSuffix(name, bundleSuffix) {
		return nil, fmt.Errorf("diag: invalid bundle name %q", name)
	}
	return os.Open(filepath.Join(b.Dir, name))
}

// enforceRetention deletes oldest bundles beyond the count and byte caps.
// The newest bundle always survives, even if alone over MaxBytes.
func (b *Bundler) enforceRetention() {
	maxN := b.MaxBundles
	if maxN <= 0 {
		maxN = 8
	}
	maxBytes := b.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	bundles, err := b.List() // newest first
	if err != nil {
		return
	}
	// Sweep .tmp orphans from a capture that died mid-write (crash or
	// kill): anything older than a profile window can't still be live.
	if tmps, err := filepath.Glob(filepath.Join(b.Dir, "*"+bundleSuffix+".tmp")); err == nil {
		for _, tmp := range tmps {
			if st, err := os.Stat(tmp); err == nil && b.now().Sub(st.ModTime()) > time.Minute {
				os.Remove(tmp)
			}
		}
	}
	var total int64
	for i, info := range bundles {
		total += info.Bytes
		if i == 0 {
			continue
		}
		if i >= maxN || total > maxBytes {
			os.Remove(filepath.Join(b.Dir, info.Name))
		}
	}
}

// Counters reports capture/rate-limit totals (exported via CollectObs).
func (b *Bundler) Counters() (captures, limited uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.captures, b.limited
}

// CollectObs implements obs.Collector.
func (b *Bundler) CollectObs(emit func(obs.Sample)) {
	captures, limited := b.Counters()
	emit(obs.Sample{Name: "tsgraph_diag_bundles_total", Help: "Diagnostic bundles captured.",
		Kind: "counter", Value: float64(captures)})
	emit(obs.Sample{Name: "tsgraph_diag_bundles_rate_limited_total", Help: "Detector-triggered captures suppressed by the rate limit.",
		Kind: "counter", Value: float64(limited)})
}
