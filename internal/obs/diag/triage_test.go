package diag

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestSummarizeAndRender: a captured bundle round-trips through the
// offline triage path — meta, CPU profile, flight queries sorted by
// latency, log/metric counts — and Render prints the lot.
func TestSummarizeAndRender(t *testing.T) {
	b := testBundler(t, t.TempDir())
	b.Sections = append(b.Sections, Section{
		Name: "stats.json",
		Write: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"batches": 3}`)
			return err
		},
	})
	ev := []Evidence{{Detector: "queue_wait", Value: 2.5, Baseline: 0.02, Factor: 4}}
	path, err := b.Capture(Trigger{Cause: "detector", Evidence: ev})
	if err != nil {
		t.Fatal(err)
	}

	tri, err := Summarize(path)
	if err != nil {
		t.Fatal(err)
	}
	if tri.Meta.Cause != "detector" || len(tri.Meta.Evidence) != 1 {
		t.Fatalf("meta = %+v", tri.Meta)
	}
	if tri.CPU == nil {
		t.Fatal("CPU profile not summarized")
	}
	if len(tri.SlowestQueries) != 1 || tri.SlowestQueries[0].ID != "q1" || tri.SlowestQueries[0].LatencyMS != 1500 {
		t.Fatalf("slowest queries = %+v", tri.SlowestQueries)
	}
	if tri.LogRecords < 1 {
		t.Fatalf("log records = %d", tri.LogRecords)
	}
	if tri.MetricFamilies < 1 {
		t.Fatalf("metric families = %d", tri.MetricFamilies)
	}
	if len(tri.MetricDeltas) != 1 || tri.MetricDeltas[0].Detector != "queue_wait" {
		t.Fatalf("metric deltas = %+v", tri.MetricDeltas)
	}

	var sb strings.Builder
	tri.Render(&sb)
	out := sb.String()
	for _, want := range []string{"detector", "queue_wait", "q1", "1500"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered triage missing %q:\n%s", want, out)
		}
	}
}

// TestSummarizeRejectsNonBundle: a file without meta.json is an error,
// not a zero triage.
func TestSummarizeRejectsNonBundle(t *testing.T) {
	b := &Bundler{Dir: t.TempDir(), Tool: "x", ProfileDuration: time.Millisecond}
	if _, err := Summarize(b.Dir + "/nope.tar.gz"); err == nil {
		t.Fatal("missing file summarized")
	}
}
