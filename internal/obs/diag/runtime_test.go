package diag

import (
	"strings"
	"testing"

	"tsgraph/internal/obs"
)

// TestRuntimeSamplerFamilies: the sampler exports the documented gauge,
// counter, and histogram families with sane values.
func TestRuntimeSamplerFamilies(t *testing.T) {
	s := NewRuntimeSampler()
	if g := s.Goroutines(); g < 1 {
		t.Fatalf("Goroutines() = %v", g)
	}
	if h := s.HeapBytes(); h <= 0 {
		t.Fatalf("HeapBytes() = %v", h)
	}

	reg := obs.NewRegistry(nil)
	reg.Register(s)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{
		"tsgraph_go_goroutines",
		"tsgraph_go_heap_objects_bytes",
		"tsgraph_go_heap_goal_bytes",
		"tsgraph_go_gc_cycles_total",
		"tsgraph_go_alloc_bytes_total",
		"tsgraph_go_gc_pause_seconds_bucket",
		"tsgraph_go_sched_latency_seconds_bucket",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("scrape missing %s", family)
		}
	}
	// Histograms must end in a +Inf bucket (Prometheus requirement).
	if !strings.Contains(out, `tsgraph_go_gc_pause_seconds_bucket{le="+Inf"}`) {
		t.Errorf("gc pause histogram missing +Inf bucket:\n%s", out)
	}
}
