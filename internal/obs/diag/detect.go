package diag

import (
	"fmt"
	"sync"
	"time"

	"tsgraph/internal/obs"
)

// Detector is one anomaly rule over a scalar signal. Every evaluation
// reads Signal once, optionally differences it against the previous
// reading (Delta, for monotone counters like watchdog firings), and then
// tests the reading against an absolute threshold, a rolling-baseline
// multiple, or both. The rolling baseline is an exponentially weighted
// moving average updated only on non-anomalous readings, so an anomaly
// that persists does not talk the baseline into accepting it.
type Detector struct {
	// Name identifies the detector in metrics, bundle metadata, and logs
	// (e.g. "slo_burn", "queue_wait", "cache_hit_rate").
	Name string
	// Signal reads the current value. Called at most once per Evaluate.
	Signal func() float64
	// Delta, when true, evaluates the difference between consecutive
	// readings instead of the reading itself (for cumulative counters).
	Delta bool
	// Threshold, when > 0, trips the detector whenever the value exceeds
	// it (or drops below it if Below), regardless of baseline.
	Threshold float64
	// Factor, when > 0, trips when the value exceeds Factor× the rolling
	// baseline (or falls below baseline/Factor if Below). Gated by Min.
	Factor float64
	// Min suppresses Factor trips while the value is under this floor
	// (a 3× spike from 2µs to 6µs is not an anomaly).
	Min float64
	// Below inverts the comparison: anomalies are collapses, not spikes
	// (cache hit rate).
	Below bool
	// MinSamples is how many readings the baseline needs before Factor
	// comparisons arm (default 5). Threshold comparisons arm immediately.
	MinSamples int
	// Consecutive is how many successive anomalous readings are required
	// to trip (default 1); rides out single-sample noise.
	Consecutive int

	// mutable state, owned by the Monitor goroutine (or test caller).
	prev        float64
	hasPrev     bool
	baseline    float64
	samples     int
	anomalyRun  int
	lastValue   float64
	tripsTotal  uint64
	lastEvalled bool
}

// baselineAlpha is the EWMA weight of the newest non-anomalous reading.
// At a few-second cadence, 0.2 settles the baseline in ~30s and forgets a
// transient within a couple of minutes.
const baselineAlpha = 0.2

// Evidence is what a tripped detector records into the bundle: enough to
// reconstruct why it fired without the live process.
type Evidence struct {
	Detector  string  `json:"detector"`
	Value     float64 `json:"value"`
	Baseline  float64 `json:"baseline"`
	Threshold float64 `json:"threshold,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	Below     bool    `json:"below,omitempty"`
}

// String renders the evidence for logs and triage output.
func (e Evidence) String() string {
	cmp := ">"
	if e.Below {
		cmp = "<"
	}
	switch {
	case e.Threshold > 0 && e.Factor > 0:
		return fmt.Sprintf("%s: value %.4g %s threshold %.4g (baseline %.4g, factor %.3g)",
			e.Detector, e.Value, cmp, e.Threshold, e.Baseline, e.Factor)
	case e.Factor > 0:
		return fmt.Sprintf("%s: value %.4g %s %.3gx baseline %.4g",
			e.Detector, e.Value, cmp, e.Factor, e.Baseline)
	default:
		return fmt.Sprintf("%s: value %.4g %s threshold %.4g", e.Detector, e.Value, cmp, e.Threshold)
	}
}

// evaluate takes one reading and reports whether the detector trips on it.
func (d *Detector) evaluate() (Evidence, bool) {
	raw := d.Signal()
	v := raw
	if d.Delta {
		if !d.hasPrev {
			d.prev, d.hasPrev = raw, true
			return Evidence{}, false
		}
		v = raw - d.prev
		d.prev = raw
	}
	d.lastValue = v

	minSamples := d.MinSamples
	if minSamples <= 0 {
		minSamples = 5
	}
	anomalous := false
	if d.Threshold > 0 {
		if d.Below {
			anomalous = v < d.Threshold
		} else {
			anomalous = v > d.Threshold
		}
	}
	if !anomalous && d.Factor > 0 && d.samples >= minSamples {
		if d.Below {
			anomalous = d.baseline > 0 && v < d.baseline/d.Factor && d.baseline >= d.Min
		} else {
			anomalous = v > d.baseline*d.Factor && v >= d.Min
		}
	}

	if !anomalous {
		// Baseline learns only from healthy readings.
		if d.samples == 0 {
			d.baseline = v
		} else {
			d.baseline = (1-baselineAlpha)*d.baseline + baselineAlpha*v
		}
		d.samples++
		d.anomalyRun = 0
		d.lastEvalled = true
		return Evidence{}, false
	}

	d.anomalyRun++
	d.lastEvalled = true
	need := d.Consecutive
	if need <= 0 {
		need = 1
	}
	if d.anomalyRun < need {
		return Evidence{}, false
	}
	d.anomalyRun = 0 // re-arm: a persisting anomaly retrips after Consecutive more readings
	d.tripsTotal++
	return Evidence{
		Detector: d.Name, Value: v, Baseline: d.baseline,
		Threshold: d.Threshold, Factor: d.Factor, Below: d.Below,
	}, true
}

// Monitor evaluates a set of detectors on a fixed cadence and invokes
// OnTrip with the evidence of everything that fired in that round. One
// goroutine owns all detector state; Evaluate can also be driven manually
// (tests, single-shot probes) when the background loop isn't started.
type Monitor struct {
	Detectors []*Detector
	// Interval between evaluation rounds (default 5s).
	Interval time.Duration
	// OnTrip receives the evidence of a round's tripped detectors.
	OnTrip func([]Evidence)

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Evaluate runs one evaluation round over every detector and returns the
// evidence that tripped (after Consecutive gating). Safe to call from
// tests or callers that pace evaluation themselves; must not race the
// background loop (Start owns the cadence once called).
func (m *Monitor) Evaluate() []Evidence {
	m.mu.Lock()
	defer m.mu.Unlock()
	var tripped []Evidence
	for _, d := range m.Detectors {
		if d.Signal == nil {
			continue
		}
		if ev, ok := d.evaluate(); ok {
			tripped = append(tripped, ev)
		}
	}
	return tripped
}

// Start launches the background evaluation loop. Close stops it.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()

	interval := m.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if tripped := m.Evaluate(); len(tripped) > 0 && m.OnTrip != nil {
					m.OnTrip(tripped)
				}
			}
		}
	}()
}

// Close stops the background loop and waits for it to exit.
func (m *Monitor) Close() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// CollectObs exports each detector's last value, rolling baseline, and
// cumulative trip count (tsgraph_diag_*).
func (m *Monitor) CollectObs(emit func(obs.Sample)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.Detectors {
		if !d.lastEvalled {
			continue
		}
		labels := []obs.Label{{Key: "detector", Value: d.Name}}
		emit(obs.Sample{Name: "tsgraph_diag_signal", Help: "Last value each anomaly detector evaluated.",
			Kind: "gauge", Labels: labels, Value: d.lastValue})
		emit(obs.Sample{Name: "tsgraph_diag_baseline", Help: "Rolling EWMA baseline each detector compares against.",
			Kind: "gauge", Labels: labels, Value: d.baseline})
		emit(obs.Sample{Name: "tsgraph_diag_trips_total", Help: "Times each anomaly detector has tripped.",
			Kind: "counter", Labels: labels, Value: float64(d.tripsTotal)})
	}
}
