package diag

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tsgraph/internal/obs"
)

// testBundler builds a fast bundler (short CPU window) with a registry,
// log ring, and one custom section.
func testBundler(t *testing.T, dir string) *Bundler {
	t.Helper()
	reg := obs.NewRegistry(nil)
	reg.Register(obs.CollectorFunc(func(emit func(obs.Sample)) {
		emit(obs.Sample{Name: "test_metric", Help: "h", Kind: "gauge", Value: 42})
	}))
	ring := NewLogRing(16)
	slog.New(ring).Info("before the anomaly", "k", "v")
	return &Bundler{
		Dir: dir, Tool: "testtool",
		ProfileDuration: 50 * time.Millisecond,
		Registry:        reg,
		LogRing:         ring,
		Sections: []Section{
			{Name: "flight.json", Write: func(w io.Writer) error {
				_, err := io.WriteString(w, `{"retained":[{"id":"q1","class":"tdsp","status":"slow","latency_ms":1500}]}`)
				return err
			}},
			{Name: "broken.json", Write: func(w io.Writer) error { return errors.New("boom") }},
		},
	}
}

// readTar returns the bundle's members by name.
func readTar(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	members := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		members[hdr.Name] = b
	}
	return members
}

// TestBundleCaptureContents: one capture yields a tar.gz holding profiles,
// the metrics scrape, the log tail, the custom sections, and a meta.json
// that records the trigger plus the degraded section.
func TestBundleCaptureContents(t *testing.T) {
	dir := t.TempDir()
	b := testBundler(t, dir)
	ev := []Evidence{{Detector: "slo_burn", Value: 3.2, Baseline: 0.1, Threshold: 1}}
	path, err := b.Capture(Trigger{Cause: "detector", Evidence: ev})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "detector") {
		t.Fatalf("bundle path %q", path)
	}
	members := readTar(t, path)
	for _, want := range []string{"cpu.pprof", "heap.pprof", "goroutine.pprof", "metrics.prom", "logs.jsonl", "flight.json", "meta.json"} {
		if _, ok := members[want]; !ok {
			t.Errorf("bundle missing %s (has %v)", want, keys(members))
		}
	}
	if _, ok := members["broken.json"]; ok {
		t.Error("failing section must be omitted, not empty")
	}
	var meta Meta
	if err := json.Unmarshal(members["meta.json"], &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Tool != "testtool" || meta.Cause != "detector" {
		t.Fatalf("meta = %+v", meta)
	}
	if len(meta.Evidence) != 1 || meta.Evidence[0].Detector != "slo_burn" {
		t.Fatalf("meta evidence = %+v", meta.Evidence)
	}
	if meta.Degraded["broken.json"] != "boom" {
		t.Fatalf("degraded = %v", meta.Degraded)
	}
	if !strings.Contains(string(members["metrics.prom"]), "test_metric 42") {
		t.Errorf("metrics.prom missing registered collector:\n%s", members["metrics.prom"])
	}
	if !strings.Contains(string(members["logs.jsonl"]), "before the anomaly") {
		t.Errorf("logs.jsonl missing ring records:\n%s", members["logs.jsonl"])
	}
	// The CPU profile must be a parseable pprof proto.
	if sum, err := ParseProfile(strings.NewReader(string(members["cpu.pprof"]))); err != nil {
		t.Errorf("cpu.pprof unparseable: %v", err)
	} else if len(sum.SampleTypes) == 0 {
		t.Errorf("cpu.pprof has no sample types")
	}
	if b.captures != 1 {
		t.Fatalf("captures = %d", b.captures)
	}
}

// TestBundleRateLimit: detector captures are rate-limited; manual and
// signal captures bypass the limit.
func TestBundleRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	b := testBundler(t, t.TempDir())
	b.MinInterval = time.Minute
	b.Now = func() time.Time { return now }
	if _, err := b.Capture(Trigger{Cause: "detector"}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := b.Capture(Trigger{Cause: "detector"}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second detector capture: %v, want ErrRateLimited", err)
	}
	if _, err := b.Capture(Trigger{Cause: "manual"}); err != nil {
		t.Fatalf("manual capture rate-limited: %v", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := b.Capture(Trigger{Cause: "detector"}); err != nil {
		t.Fatalf("detector capture after interval: %v", err)
	}
	if _, limited := b.Counters(); limited != 1 {
		t.Fatalf("limited = %d, want 1", limited)
	}
}

// TestBundleRetention: oldest bundles are deleted beyond MaxBundles; the
// newest always survives even over the byte cap.
func TestBundleRetention(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(2000, 0)
	b := testBundler(t, dir)
	b.MaxBundles = 2
	b.MinInterval = time.Nanosecond
	b.Now = func() time.Time { return now }
	for i := 0; i < 4; i++ {
		if _, err := b.Capture(Trigger{Cause: "manual"}); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	got, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("retained %d bundles, want 2: %v", len(got), got)
	}
	// Byte cap of 1: everything but the newest goes.
	b.MaxBytes = 1
	if _, err := b.Capture(Trigger{Cause: "manual"}); err != nil {
		t.Fatal(err)
	}
	if got, _ = b.List(); len(got) != 1 {
		t.Fatalf("retained %d bundles under 1-byte cap, want 1", len(got))
	}
}

// TestBundleHTTP: POST captures, GET lists, GET?name= downloads, and path
// traversal is rejected.
func TestBundleHTTP(t *testing.T) {
	b := testBundler(t, t.TempDir())
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	resp, err := http.Post(srv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Bundle string `json:"bundle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Bundle == "" {
		t.Fatalf("POST -> %d %+v", resp.StatusCode, created)
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Bundles []BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Bundles) != 1 {
		t.Fatalf("GET listed %d bundles, want 1", len(listed.Bundles))
	}

	resp, err = http.Get(srv.URL + "?name=" + listed.Bundles[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("download -> %d, %d bytes", resp.StatusCode, len(body))
	}
	if body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("download is not gzip (starts %x)", body[:2])
	}

	resp, err = http.Get(srv.URL + "?name=../../etc/passwd.tar.gz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal -> %d, want 400", resp.StatusCode)
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
