package diag

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"sync"
)

// LogRing is a slog.Handler that keeps the last N rendered records in a
// ring so a diagnostic bundle can include the log tail that led up to the
// anomaly. Records are rendered to JSON lines at Handle time (rendering is
// off the serving hot path: slog only calls Handle for enabled levels).
// Use Tee to fan records out to the process's primary handler as well.
type LogRing struct {
	mu    sync.Mutex
	lines [][]byte
	next  int
	full  bool
	buf   bytes.Buffer
	json  *slog.Logger // renders into buf under mu
}

// NewLogRing creates a ring retaining the last capacity records.
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = 256
	}
	r := &LogRing{lines: make([][]byte, capacity)}
	r.json = slog.New(slog.NewJSONHandler(&r.buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	return r
}

// Enabled implements slog.Handler: the ring captures every level — level
// filtering belongs to the primary handler it tees with.
func (r *LogRing) Enabled(context.Context, slog.Level) bool { return true }

// Handle implements slog.Handler.
func (r *LogRing) Handle(ctx context.Context, rec slog.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.Reset()
	if err := r.json.Handler().Handle(ctx, rec); err != nil {
		return err
	}
	line := make([]byte, r.buf.Len())
	copy(line, r.buf.Bytes())
	r.lines[r.next] = line
	r.next = (r.next + 1) % len(r.lines)
	if r.next == 0 {
		r.full = true
	}
	return nil
}

// WithAttrs implements slog.Handler. The ring intentionally flattens
// groups/attrs into the rendered record only (attrs arrive via the
// teeHandler's wrapped primary); returning the ring itself keeps one
// shared buffer.
func (r *LogRing) WithAttrs(attrs []slog.Attr) slog.Handler { return r }

// WithGroup implements slog.Handler.
func (r *LogRing) WithGroup(name string) slog.Handler { return r }

// WriteTo dumps the retained records, oldest first, as JSON lines.
func (r *LogRing) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	write := func(line []byte) error {
		if line == nil {
			return nil
		}
		n, err := w.Write(line)
		total += int64(n)
		return err
	}
	if r.full {
		for i := r.next; i < len(r.lines); i++ {
			if err := write(r.lines[i]); err != nil {
				return total, err
			}
		}
	}
	for i := 0; i < r.next; i++ {
		if err := write(r.lines[i]); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Len reports how many records are retained.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.lines)
	}
	return r.next
}

// teeHandler fans each record out to the primary handler and the ring.
type teeHandler struct {
	primary slog.Handler
	ring    *LogRing
}

// Tee wraps primary so every record it would handle is also retained in
// the ring. The ring additionally captures records below the primary's
// level (debug detail an operator wants in the bundle but not on stderr).
func (r *LogRing) Tee(primary slog.Handler) slog.Handler {
	return &teeHandler{primary: primary, ring: r}
}

func (t *teeHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return true // the ring takes everything; Handle re-checks the primary
}

func (t *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	_ = t.ring.Handle(ctx, rec)
	if t.primary.Enabled(ctx, rec.Level) {
		return t.primary.Handle(ctx, rec)
	}
	return nil
}

func (t *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &teeHandler{primary: t.primary.WithAttrs(attrs), ring: t.ring}
}

func (t *teeHandler) WithGroup(name string) slog.Handler {
	return &teeHandler{primary: t.primary.WithGroup(name), ring: t.ring}
}
