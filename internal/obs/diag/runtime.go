// Package diag is the self-diagnosis layer: rolling-baseline anomaly
// detectors over the signals the system already exports (SLO burn rate,
// scheduler queue wait, stall-watchdog firings, instance-cache hit rate),
// a runtime/metrics sampler for Go runtime health (GC pauses, heap
// growth, goroutines, scheduler latency), and a bundle capturer that —
// when a detector trips, on SIGQUIT, or on a manual POST — snapshots the
// process's whole diagnostic surface (profiles, flight recorder, trace
// window, metrics, logs) into one tar.gz an operator can pull later and
// open offline with cmd/tsdiag. The design goal is black-box operation:
// nobody has to be watching when the anomaly happens.
package diag

import (
	"math"
	"runtime/metrics"

	"tsgraph/internal/obs"
)

// The runtime/metrics names the sampler reads. Histogram metrics are
// rebucketed (runtime buckets are irregular) into log-2 bounds so they
// export as ordinary Prometheus histograms. Names absent from the running
// toolchain degrade silently: runtime/metrics returns KindBad and the
// sampler skips the family.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapGoal    = "/gc/heap/goal:bytes"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmAllocBytes  = "/gc/heap/allocs:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
	rmGCPausesOld = "/gc/pauses:seconds" // pre-1.22 fallback
	rmSchedLat    = "/sched/latencies:seconds"
)

// runtimeBounds are the finite export bounds for rebucketed runtime
// histograms: 20 log-2 buckets from 1µs, so the last finite bound is
// ~0.52s. GC pauses and sched latencies beyond that land in +Inf.
func runtimeBounds() []float64 {
	out := make([]float64, 20)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// RuntimeSampler exports Go runtime health as Prometheus families
// (tsgraph_go_*) and doubles as a detector signal source (Goroutines,
// HeapBytes). Reads go straight to runtime/metrics on every collection;
// at scrape/detector cadence (seconds) that costs microseconds.
type RuntimeSampler struct {
	samples []metrics.Sample
	pauses  string // resolved GC-pause metric name ("" if unsupported)
}

// NewRuntimeSampler builds a sampler, resolving which metric names the
// running toolchain supports.
func NewRuntimeSampler() *RuntimeSampler {
	s := &RuntimeSampler{}
	supported := map[string]bool{}
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	switch {
	case supported[rmGCPauses]:
		s.pauses = rmGCPauses
	case supported[rmGCPausesOld]:
		s.pauses = rmGCPausesOld
	}
	for _, name := range []string{rmGoroutines, rmHeapObjects, rmHeapGoal, rmGCCycles, rmAllocBytes, rmSchedLat} {
		if supported[name] {
			s.samples = append(s.samples, metrics.Sample{Name: name})
		}
	}
	if s.pauses != "" {
		s.samples = append(s.samples, metrics.Sample{Name: s.pauses})
	}
	return s
}

// read refreshes every sample and returns them indexed by name.
func (s *RuntimeSampler) read() map[string]metrics.Value {
	metrics.Read(s.samples)
	out := make(map[string]metrics.Value, len(s.samples))
	for _, sm := range s.samples {
		out[sm.Name] = sm.Value
	}
	return out
}

// Goroutines returns the live goroutine count (detector signal).
func (s *RuntimeSampler) Goroutines() float64 {
	one := []metrics.Sample{{Name: rmGoroutines}}
	metrics.Read(one)
	if one[0].Value.Kind() == metrics.KindUint64 {
		return float64(one[0].Value.Uint64())
	}
	return 0
}

// HeapBytes returns the live heap-object bytes (detector signal).
func (s *RuntimeSampler) HeapBytes() float64 {
	one := []metrics.Sample{{Name: rmHeapObjects}}
	metrics.Read(one)
	if one[0].Value.Kind() == metrics.KindUint64 {
		return float64(one[0].Value.Uint64())
	}
	return 0
}

// CollectObs implements obs.Collector.
func (s *RuntimeSampler) CollectObs(emit func(obs.Sample)) {
	vals := s.read()
	gauge := func(name, help, rm string) {
		if v, ok := vals[rm]; ok && v.Kind() == metrics.KindUint64 {
			emit(obs.Sample{Name: name, Help: help, Kind: "gauge", Value: float64(v.Uint64())})
		}
	}
	counter := func(name, help, rm string) {
		if v, ok := vals[rm]; ok && v.Kind() == metrics.KindUint64 {
			emit(obs.Sample{Name: name, Help: help, Kind: "counter", Value: float64(v.Uint64())})
		}
	}
	gauge("tsgraph_go_goroutines", "Live goroutines.", rmGoroutines)
	gauge("tsgraph_go_heap_objects_bytes", "Bytes of live heap objects.", rmHeapObjects)
	gauge("tsgraph_go_heap_goal_bytes", "Heap size the GC is pacing toward.", rmHeapGoal)
	counter("tsgraph_go_gc_cycles_total", "Completed GC cycles.", rmGCCycles)
	counter("tsgraph_go_alloc_bytes_total", "Cumulative bytes allocated on the heap.", rmAllocBytes)

	if s.pauses != "" {
		if v, ok := vals[s.pauses]; ok && v.Kind() == metrics.KindFloat64Histogram {
			emitRuntimeHistogram(emit, "tsgraph_go_gc_pause_seconds",
				"Stop-the-world GC pause durations.", v.Float64Histogram())
		}
	}
	if v, ok := vals[rmSchedLat]; ok && v.Kind() == metrics.KindFloat64Histogram {
		emitRuntimeHistogram(emit, "tsgraph_go_sched_latency_seconds",
			"Time goroutines spend runnable before running.", v.Float64Histogram())
	}
}

// emitRuntimeHistogram rebuckets a runtime Float64Histogram (irregular
// bounds, ±Inf sentinels) into the fixed log-2 export bounds. Each runtime
// bucket's count is assigned by its midpoint; the sum is midpoint-estimated
// (runtime histograms carry no exact sum).
func emitRuntimeHistogram(emit func(obs.Sample), family, help string, h *metrics.Float64Histogram) {
	les := runtimeBounds()
	buckets := make([]uint64, len(les))
	var count uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := bucketMid(lo, hi)
		count += c
		sum += mid * float64(c)
		for j, le := range les {
			if mid <= le {
				buckets[j] += c
				break
			}
		}
	}
	// Make buckets cumulative, as EmitHistogram expects.
	var cum uint64
	for i := range buckets {
		cum += buckets[i]
		buckets[i] = cum
	}
	obs.EmitHistogram(emit, family, help, nil, les, buckets, sum, count)
}

// bucketMid estimates a representative value for a runtime histogram
// bucket, tolerating the ±Inf edge sentinels.
func bucketMid(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	}
	return (lo + hi) / 2
}
