package diag

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Triage is the offline view of one bundle: what cmd/tsdiag prints.
// It is built purely from the archive — no live process needed.
type Triage struct {
	Path string `json:"path"`
	Meta Meta   `json:"meta"`
	// CPU is the parsed CPU profile (nil when the bundle has none).
	CPU *ProfileSummary `json:"cpu,omitempty"`
	// SlowestQueries are the flight recorder's retained queries by
	// latency, slowest first (nil without a flight.json section).
	SlowestQueries []TriageQuery `json:"slowest_queries,omitempty"`
	// MetricDeltas compares each detector's captured value against its
	// rolling baseline at capture time (from the trigger evidence).
	MetricDeltas []MetricDelta `json:"metric_deltas,omitempty"`
	// LogRecords is how many slog records the bundle retained.
	LogRecords int `json:"log_records"`
	// MetricFamilies is how many Prometheus families metrics.prom holds.
	MetricFamilies int `json:"metric_families"`
}

// TriageQuery is one retained query from the bundled flight snapshot.
type TriageQuery struct {
	ID        string  `json:"id"`
	Class     string  `json:"class"`
	Status    string  `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	QueueMS   float64 `json:"queue_ms,omitempty"`
	SweepMS   float64 `json:"sweep_ms,omitempty"`
	Err       string  `json:"error,omitempty"`
}

// MetricDelta is a detector value vs. its baseline at capture time.
type MetricDelta struct {
	Detector string  `json:"detector"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	// Ratio is Value/Baseline (0 when the baseline is 0).
	Ratio float64 `json:"ratio"`
}

// flightDoc mirrors the fields of obs/live's /debug/flight snapshot that
// triage consumes (kept structurally, not by import, so a bundle from a
// newer daemon still parses).
type flightDoc struct {
	Retained []TriageQuery `json:"retained"`
}

// Summarize opens a bundle tar.gz and builds its triage view.
func Summarize(path string) (*Triage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("diag: %s is not a gzip stream: %w", path, err)
	}
	defer gz.Close()

	t := &Triage{Path: path}
	sawMeta := false
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("diag: reading %s: %w", path, err)
		}
		switch hdr.Name {
		case "meta.json":
			if err := json.NewDecoder(tr).Decode(&t.Meta); err != nil {
				return nil, fmt.Errorf("diag: bad meta.json: %w", err)
			}
			sawMeta = true
		case "cpu.pprof":
			cpu, err := ParseProfile(tr)
			if err != nil {
				return nil, fmt.Errorf("diag: bad cpu.pprof: %w", err)
			}
			t.CPU = cpu
		case "flight.json":
			var doc flightDoc
			if err := json.NewDecoder(tr).Decode(&doc); err != nil {
				return nil, fmt.Errorf("diag: bad flight.json: %w", err)
			}
			t.SlowestQueries = doc.Retained
			sort.Slice(t.SlowestQueries, func(i, j int) bool {
				return t.SlowestQueries[i].LatencyMS > t.SlowestQueries[j].LatencyMS
			})
		case "logs.jsonl":
			n, err := countLines(tr)
			if err != nil {
				return nil, fmt.Errorf("diag: bad logs.jsonl: %w", err)
			}
			t.LogRecords = n
		case "metrics.prom":
			n, err := countMetricFamilies(tr)
			if err != nil {
				return nil, fmt.Errorf("diag: bad metrics.prom: %w", err)
			}
			t.MetricFamilies = n
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("diag: %s has no meta.json — not a diagnostic bundle", path)
	}
	for _, ev := range t.Meta.Evidence {
		ratio := 0.0
		if ev.Baseline != 0 {
			ratio = ev.Value / ev.Baseline
		}
		t.MetricDeltas = append(t.MetricDeltas, MetricDelta{
			Detector: ev.Detector, Value: ev.Value, Baseline: ev.Baseline, Ratio: ratio,
		})
	}
	return t, nil
}

func countLines(r io.Reader) (int, error) {
	buf := make([]byte, 32<<10)
	n := 0
	for {
		c, err := r.Read(buf)
		for _, b := range buf[:c] {
			if b == '\n' {
				n++
			}
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

func countMetricFamilies(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			n++
		}
	}
	return n, nil
}

// Render writes the human triage summary cmd/tsdiag prints.
func (t *Triage) Render(w io.Writer) {
	fmt.Fprintf(w, "bundle: %s\n", t.Path)
	fmt.Fprintf(w, "tool: %s  build: %s  captured: %s\n",
		t.Meta.Tool, t.Meta.Build, t.Meta.Captured.Format(time.RFC3339))
	fmt.Fprintf(w, "trigger: %s\n", t.Meta.Cause)
	for _, ev := range t.Meta.Evidence {
		fmt.Fprintf(w, "  evidence: %s\n", ev.String())
	}
	if len(t.Meta.Degraded) > 0 {
		keys := make([]string, 0, len(t.Meta.Degraded))
		for k := range t.Meta.Degraded {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  degraded: %s: %s\n", k, t.Meta.Degraded[k])
		}
	}
	fmt.Fprintf(w, "sections: %s\n", strings.Join(t.Meta.Sections, ", "))

	if len(t.MetricDeltas) > 0 {
		fmt.Fprintf(w, "\nmetric deltas vs. rolling baseline at capture:\n")
		for _, d := range t.MetricDeltas {
			fmt.Fprintf(w, "  %-16s value %-12.4g baseline %-12.4g ratio %.2fx\n",
				d.Detector, d.Value, d.Baseline, d.Ratio)
		}
	}

	if t.CPU != nil {
		fmt.Fprintf(w, "\ncpu profile: %d sample columns", len(t.CPU.SampleTypes))
		if n := len(t.CPU.SampleTypes); n > 0 {
			unit := ""
			if n == len(t.CPU.SampleUnits) {
				unit = t.CPU.SampleUnits[n-1]
			}
			fmt.Fprintf(w, ", total %d %s", t.CPU.TotalValue, unit)
		}
		fmt.Fprintf(w, " (%.1fs window)\n", t.Meta.CPUProfileSeconds)
		top := t.CPU.Frames
		if len(top) > 10 {
			top = top[:10]
		}
		for i, fr := range top {
			pct := 0.0
			if t.CPU.TotalValue > 0 {
				pct = 100 * float64(fr.Value) / float64(t.CPU.TotalValue)
			}
			fmt.Fprintf(w, "  #%-2d %5.1f%%  %s\n", i+1, pct, fr.Function)
		}
		if len(t.CPU.Frames) == 0 {
			fmt.Fprintf(w, "  (no samples — the process was idle during the profile window)\n")
		}
	}

	if len(t.SlowestQueries) > 0 {
		fmt.Fprintf(w, "\nslowest retained queries:\n")
		top := t.SlowestQueries
		if len(top) > 5 {
			top = top[:5]
		}
		for _, q := range top {
			fmt.Fprintf(w, "  %-10s %-5s %-8s %8.1fms (queue %.1fms, sweep %.1fms)",
				q.ID, q.Class, q.Status, q.LatencyMS, q.QueueMS, q.SweepMS)
			if q.Err != "" {
				fmt.Fprintf(w, "  err=%s", q.Err)
			}
			fmt.Fprintln(w)
		}
	}

	fmt.Fprintf(w, "\nlogs: %d records retained; metrics: %d families\n", t.LogRecords, t.MetricFamilies)
}
