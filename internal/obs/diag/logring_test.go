package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

// TestLogRingWrap: the ring keeps the newest N records, oldest first on
// dump, every line valid JSON.
func TestLogRingWrap(t *testing.T) {
	r := NewLogRing(4)
	l := slog.New(r)
	for i := 0; i < 10; i++ {
		l.Info("rec", "i", i)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dumped %d lines, want 4", len(lines))
	}
	for k, line := range lines {
		var rec struct {
			Msg string  `json:"msg"`
			I   float64 `json:"i"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", k, err, line)
		}
		if want := float64(6 + k); rec.I != want {
			t.Fatalf("line %d has i=%v, want %v (oldest first)", k, rec.I, want)
		}
	}
}

// TestLogRingTee: the tee forwards level-enabled records to the primary
// handler while the ring captures everything, including debug records the
// primary drops.
func TestLogRingTee(t *testing.T) {
	r := NewLogRing(8)
	var primary bytes.Buffer
	ph := slog.NewTextHandler(&primary, &slog.HandlerOptions{Level: slog.LevelInfo})
	l := slog.New(r.Tee(ph)).With("tool", "test")
	l.Debug("hidden")
	l.Info("visible")
	if got := primary.String(); strings.Contains(got, "hidden") || !strings.Contains(got, "visible") {
		t.Fatalf("primary saw:\n%s", got)
	}
	if !strings.Contains(got(r), "hidden") || !strings.Contains(got(r), "visible") {
		t.Fatalf("ring saw:\n%s", got(r))
	}
	// With() attrs must still reach the primary through the tee.
	if !strings.Contains(primary.String(), "tool=test") {
		t.Fatalf("primary lost WithAttrs attrs:\n%s", primary.String())
	}
}

func got(r *LogRing) string {
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		return fmt.Sprintf("WriteTo error: %v", err)
	}
	return buf.String()
}
