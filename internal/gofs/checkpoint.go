package gofs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint storage: one file per (rank, timestep) under a checkpoint
// directory, holding an opaque payload the TI-BSP runner serializes at the
// timestep boundary (temporal messages, program state, result
// accumulators). The format follows the other GoFS files — magic, version,
// identity header, trailing CRC-32 — and every write goes to a temp file
// first and is renamed into place, so a crash mid-write never leaves a
// readable-but-partial checkpoint: either the complete file exists or it
// does not.
const (
	checkpointMagic = 0x476F434B // "GoCK"
	// checkpointVersion is the checkpoint format version, independent of
	// the dataset formatVersion: resume refuses payloads written by a
	// different (stale or future) layout.
	checkpointVersion = 1
	// checkpointKeep is how many most-recent checkpoints survive pruning
	// per rank. Two, because in a distributed run ranks can be at most one
	// timestep apart at a kill, and the cluster-wide resume point is the
	// minimum — every rank must still hold that slightly older state.
	checkpointKeep = 2
)

// CheckpointPath returns the path of rank's checkpoint for a timestep.
func CheckpointPath(dir string, rank, timestep int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt_r%d_t%08d.ckpt", rank, timestep))
}

// WriteCheckpoint atomically persists a rank's timestep-boundary state:
// the payload is framed (magic, version, rank, timestep, length, CRC-32),
// written to a temp file in dir, fsynced, and renamed into place; older
// checkpoints of the rank beyond the retention window are then pruned.
func WriteCheckpoint(dir string, rank, timestep int, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, fmt.Sprintf(".ckpt_r%d_*", rank))
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	w := newWriter(tmp)
	w.u32(checkpointMagic)
	w.u32(checkpointVersion)
	w.u32(uint32(rank))
	w.u64(uint64(timestep))
	w.u64(uint64(len(payload)))
	w.write(payload)
	if err := w.finish(); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing checkpoint t%d: %w", timestep, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: writing checkpoint t%d: %w", timestep, err)
	}
	if err := os.Rename(tmpName, CheckpointPath(dir, rank, timestep)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("gofs: publishing checkpoint t%d: %w", timestep, err)
	}
	pruneCheckpoints(dir, rank, checkpointKeep)
	return nil
}

// ReadCheckpoint loads and verifies one rank's checkpoint for a specific
// timestep. Truncated files, checksum mismatches, and version/identity
// mismatches all return an error and never a partial payload.
func ReadCheckpoint(dir string, rank, timestep int) ([]byte, error) {
	path := CheckpointPath(dir, rank, timestep)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := newReader(f)
	if m := r.u32(); r.err == nil && m != checkpointMagic {
		return nil, fmt.Errorf("gofs: %s: bad magic %08x", path, m)
	}
	if v := r.u32(); r.err == nil && v != checkpointVersion {
		return nil, fmt.Errorf("gofs: %s: unsupported checkpoint version %d (want %d)", path, v, checkpointVersion)
	}
	if got := int(r.u32()); r.err == nil && got != rank {
		return nil, fmt.Errorf("gofs: %s: checkpoint belongs to rank %d, want %d", path, got, rank)
	}
	if got := int(r.u64()); r.err == nil && got != timestep {
		return nil, fmt.Errorf("gofs: %s: checkpoint covers timestep %d, want %d", path, got, timestep)
	}
	n := r.u64()
	if r.err == nil && n > maxListLen {
		return nil, fmt.Errorf("gofs: %s: payload length %d exceeds format limit", path, n)
	}
	payload := make([]byte, n)
	r.read(payload)
	if err := r.verifyCRC(); err != nil {
		return nil, fmt.Errorf("gofs: %s: %w", path, err)
	}
	return payload, nil
}

// CheckpointTimesteps lists the timesteps for which rank has a checkpoint
// file in dir, ascending. A missing directory is an empty list, not an
// error (a first run has no checkpoints yet).
func CheckpointTimesteps(dir string, rank int) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range entries {
		var r, ts int
		if _, err := fmt.Sscanf(e.Name(), "ckpt_r%d_t%08d.ckpt", &r, &ts); err == nil && r == rank {
			steps = append(steps, ts)
		}
	}
	sort.Ints(steps)
	return steps, nil
}

// LatestCheckpoint returns the newest checkpoint of rank that loads
// cleanly, walking backwards past corrupt files (truncation, bad CRC,
// stale version): recovery falls back to the previous complete checkpoint
// rather than failing or loading partial state. It returns timestep -1
// (and a nil payload) when no usable checkpoint exists; err is non-nil
// only for directory-level failures.
func LatestCheckpoint(dir string, rank int) (timestep int, payload []byte, err error) {
	steps, err := CheckpointTimesteps(dir, rank)
	if err != nil {
		return -1, nil, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		payload, err := ReadCheckpoint(dir, rank, steps[i])
		if err == nil {
			return steps[i], payload, nil
		}
	}
	return -1, nil, nil
}

// pruneCheckpoints removes all but the keep most recent checkpoints of a
// rank. Removal failures are ignored: pruning is best-effort hygiene, and
// a leftover old checkpoint is harmless.
func pruneCheckpoints(dir string, rank, keep int) {
	steps, err := CheckpointTimesteps(dir, rank)
	if err != nil || len(steps) <= keep {
		return
	}
	for _, ts := range steps[:len(steps)-keep] {
		os.Remove(CheckpointPath(dir, rank, ts))
	}
}
